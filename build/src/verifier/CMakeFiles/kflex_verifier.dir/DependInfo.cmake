
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verifier/state.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/state.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/state.cc.o.d"
  "/root/repo/src/verifier/tnum.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/tnum.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/tnum.cc.o.d"
  "/root/repo/src/verifier/verifier.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/verifier.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebpf/CMakeFiles/kflex_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kflex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
