// Quickstart: write a tiny KFlex extension, load it through the full
// verify -> instrument -> run pipeline, and watch the safety machinery work.
//
//   $ ./build/examples/quickstart
//
// The extension keeps a per-event counter in its heap, walks a (potentially
// unbounded) loop, and returns the running total. We then demonstrate what
// the paper's mechanisms buy you:
//   1. a buggy variant with an out-of-bounds pointer is contained by SFI;
//   2. an infinite-loop variant is cancelled and the kernel stays quiescent.
#include <cstdio>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"

using namespace kflex;

namespace {

constexpr uint64_t kHeap = 1 << 20;  // 1 MB extension heap

// A well-behaved extension: counter@64 += ctx[0]; returns the new counter.
Program CounterExtension() {
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);     // amount from the event context
  a.LoadHeapAddr(R3, 64);       // &counter (extension heap global)
  a.Ldx(BPF_DW, R4, R3, 0);
  a.Add(R4, R2);
  a.Stx(BPF_DW, R3, 0, R4);
  a.Mov(R0, R4);
  a.Exit();
  return a.Finish("counter", Hook::kTracepoint, ExtensionMode::kKflex, kHeap).value();
}

// A buggy extension: dereferences counter + attacker-controlled offset.
// eBPF would reject this program; KFlex runs it safely (SFI masks the
// address into the heap).
Program BuggyExtension() {
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);  // attacker-controlled offset
  a.LoadHeapAddr(R3, 64);
  a.Add(R3, R2);             // counter + offset: possibly out of bounds!
  a.StImm(BPF_DW, R3, 0, 0xDEAD);
  a.MovImm(R0, 0);
  a.Exit();
  return a.Finish("buggy", Hook::kTracepoint, ExtensionMode::kKflex, kHeap).value();
}

// A runaway extension: while (true) {} — impossible under eBPF, cancellable
// under KFlex.
Program RunawayExtension() {
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  return a.Finish("runaway", Hook::kTracepoint, ExtensionMode::kKflex, kHeap).value();
}

}  // namespace

int main() {
  MockKernel kernel;
  Runtime& rt = kernel.runtime();

  // ---- 1. Load and run the counter extension ----
  auto id = rt.Load(CounterExtension(), LoadOptions{});
  if (!id.ok()) {
    std::fprintf(stderr, "load failed: %s\n", id.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded 'counter' (%zu insns after instrumentation, %zu guards elided)\n",
              rt.instrumented(*id).program.insns.size(), rt.instrumented(*id).stats.guards_elided);

  uint64_t ctx[8] = {0};
  for (uint64_t amount : {5, 10, 27}) {
    ctx[0] = amount;
    InvokeResult r = rt.Invoke(*id, /*cpu=*/0, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
    std::printf("  event +%llu -> counter = %lld\n", static_cast<unsigned long long>(amount),
                static_cast<long long>(r.verdict));
  }

  // ---- 2. The buggy extension cannot corrupt kernel memory ----
  auto buggy = rt.Load(BuggyExtension(), LoadOptions{});
  std::printf("\nloaded 'buggy' (%zu SFI guards emitted)\n",
              rt.instrumented(*buggy).stats.guards_emitted);
  ctx[0] = 0xFFFF'FFFF'0000ULL;  // wild offset
  InvokeResult r = rt.Invoke(*buggy, 0, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
  std::printf("  wild store -> outcome=%s (contained: %s)\n", VmOutcomeName(r.outcome),
              r.cancelled ? "cancelled at a C2 point" : "masked into the extension heap");

  // ---- 3. The runaway extension is cancelled, kernel stays quiescent ----
  auto runaway = rt.Load(RunawayExtension(), LoadOptions{});
  std::printf("\nloaded 'runaway' (%zu cancellation points)\n",
              rt.instrumented(*runaway).stats.cancellation_points);
  rt.Cancel(*runaway);  // what the watchdog does after the quantum (§4.3)
  r = rt.Invoke(*runaway, 0, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
  std::printf("  infinite loop -> cancelled=%d after %llu insns, kernel quiescent=%d\n",
              r.cancelled ? 1 : 0, static_cast<unsigned long long>(r.insns),
              kernel.Quiescent() ? 1 : 0);
  return 0;
}
