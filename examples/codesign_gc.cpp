// Co-designing extensions with user-space code (§5.3): the Memcached fast
// path runs in the kernel while a user-space garbage collector walks the
// same hash table through the shared heap mapping, following the
// translate-on-store pointers the extension published (§3.4).
//
//   $ ./build/examples/codesign_gc
#include <cstdio>

#include "src/apps/codesign.h"

using namespace kflex;

int main() {
  MockKernel kernel;
  auto app = CodesignMemcached::Create(kernel);
  if (!app.ok()) {
    std::fprintf(stderr, "codesign: %s\n", app.status().ToString().c_str());
    return 1;
  }
  std::printf("co-designed Memcached: fast path at XDP, GC in user space\n");

  // Populate: epoch-10 entries expire at epoch 12; epoch-20 ones at 22.
  for (uint64_t key = 0; key < 100; key++) {
    app->Set(0, key, "short-lived", /*expiry_epoch=*/12);
  }
  for (uint64_t key = 100; key < 200; key++) {
    app->Set(0, key, "long-lived", /*expiry_epoch=*/22);
  }
  std::printf("  populated %llu entries via the kernel fast path\n",
              static_cast<unsigned long long>(app->Count()));

  // The user-space collector wakes up (paper: every 1 s), takes the shared
  // spin lock under a time-slice extension, and walks every bucket through
  // the user-space heap mapping.
  auto gc = app->RunGc(/*current_epoch=*/15, /*now_ns=*/0);
  std::printf("  user-space GC: scanned %llu entries, evicted %llu expired ones\n",
              static_cast<unsigned long long>(gc.scanned),
              static_cast<unsigned long long>(gc.evicted));
  std::printf("  live entries now: %llu\n", static_cast<unsigned long long>(app->Count()));

  // The fast path keeps working over the GC-mutated table — including
  // reusing the memory the collector returned to the allocator.
  auto survivor = app->Get(0, 150);
  std::printf("  GET key=150 (long-lived) -> hit=%d value=\"%s\"\n", survivor.hit,
              survivor.value.c_str());
  auto evicted = app->Get(0, 50);
  std::printf("  GET key=50 (expired)     -> hit=%d\n", evicted.hit);
  app->Set(0, 500, "recycled", 30);
  std::printf("  SET key=500 reuses GC-freed heap memory -> hit=%d\n",
              app->Get(0, 500).hit);

  std::printf("\nwithout KFlex's shared pointers, Memcached would have to run entirely\n");
  std::printf("in user space just to support this background functionality (SS5.3)\n");
  return 0;
}
