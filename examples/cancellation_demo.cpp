// Extension cancellations end-to-end (§3.3, §4.3): a Listing-1-style
// extension acquires a kernel socket reference and a spin lock, then hangs.
// The watchdog detects the stall, arms the terminate slot, and the runtime
// unwinds via the statically computed object table — releasing the socket
// and the lock so the kernel returns to a quiescent state.
//
//   $ ./build/examples/cancellation_demo
#include <chrono>
#include <cstdio>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/spinlock.h"

using namespace kflex;

int main() {
  RuntimeOptions opts;
  opts.num_cpus = 2;
  opts.quantum_ns = 50'000'000;  // 50 ms watchdog quantum (paper: seconds)
  MockKernel kernel{opts};
  kernel.sockets().Bind(0x0A000001, 7000, kProtoUdp);

  // Listing 1, condensed: look up a socket, take a lock, then loop forever.
  Assembler a;
  a.StImm(BPF_W, R10, -16, 0x0A000001);
  a.StImm(BPF_W, R10, -12, 7000);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto have_socket = a.IfImm(BPF_JNE, R0, 0);
  {
    a.Mov(R6, R0);  // hold the referenced socket
    a.LoadHeapAddr(R1, 64);
    a.Call(kHelperKflexSpinLock);  // hold a KFlex spin lock too
    a.MovImm(R0, 0);
    auto head = a.NewLabel();
    a.Bind(head);
    a.AddImm(R0, 1);  // "while (node->next != NULL)" gone wrong
    a.Jmp(head);
  }
  a.Else(have_socket);
  a.MovImm(R0, 0);
  a.EndIf(have_socket);
  a.Exit();
  auto program = a.Finish("listing1_hang", Hook::kXdp, ExtensionMode::kKflex, 1 << 20);

  auto id = kernel.runtime().Load(*program, LoadOptions{});
  if (!id.ok()) {
    std::fprintf(stderr, "load: %s\n", id.status().ToString().c_str());
    return 1;
  }
  kernel.Attach(*id).ok();
  const InstrumentedProgram& ip = kernel.runtime().instrumented(*id);
  std::printf("verified + instrumented: %zu cancellation points, %zu object tables\n",
              ip.stats.cancellation_points, ip.object_tables.size());
  for (const auto& [pc, table] : ip.object_tables) {
    std::printf("  Cp at pc %zu releases %zu resource(s)\n", pc, table.size());
  }

  std::printf("\ninvoking the extension; the watchdog will cancel it...\n");
  kernel.runtime().StartWatchdog();
  KvPacket pkt;
  pkt.SetTuple(0x0A000001, 40000, 7000);
  auto start = std::chrono::steady_clock::now();
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  kernel.runtime().StopWatchdog();

  auto stats = kernel.runtime().GetStats(*id);
  std::printf("cancelled=%d after %lld ms and %llu insns\n", r.cancelled ? 1 : 0,
              static_cast<long long>(ms), static_cast<unsigned long long>(r.insns));
  std::printf("verdict=%lld (XDP default: pass the packet up the stack)\n",
              static_cast<long long>(r.verdict));
  std::printf("resources released via the object table: %llu\n",
              static_cast<unsigned long long>(stats.resources_released_on_cancel));
  std::printf("socket refcounts balanced: %d, lock free: %d, kernel quiescent: %d\n",
              kernel.sockets().Quiescent() ? 1 : 0,
              !SpinLockOps::IsHeld(kernel.runtime().heap(*id)->HostAt(64)) ? 1 : 0,
              kernel.Quiescent() ? 1 : 0);
  std::printf("extension unloaded (cancellation is extension-wide): %d; heap preserved: %d\n",
              kernel.runtime().IsUnloaded(*id) ? 1 : 0,
              kernel.runtime().heap(*id) != nullptr ? 1 : 0);
  return 0;
}
