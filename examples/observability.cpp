// Observability + security extensions (§1's production use cases): a
// syscall deny-list enforced at the LSM hook with live user-space policy
// updates through the shared heap, and an in-kernel latency histogram read
// directly by user space.
//
//   $ ./build/examples/observability
#include <cstdio>

#include "src/apps/tracer.h"
#include "src/base/rng.h"

using namespace kflex;

int main() {
  MockKernel kernel;

  // ---- Syscall filter at the LSM hook ----
  auto filter = SyscallFilter::Create(kernel);
  if (!filter.ok()) {
    std::fprintf(stderr, "filter: %s\n", filter.status().ToString().c_str());
    return 1;
  }
  std::printf("syscall filter attached at the LSM hook\n");
  std::printf("  execve(59) before policy: verdict=%lld\n",
              static_cast<long long>(filter->Check(0, 59)));
  filter->Deny(59);  // user space flips a bit in the mapped heap — no reload
  std::printf("  user space denies 59 via the shared heap\n");
  std::printf("  execve(59) after policy:  verdict=%lld (denied)\n",
              static_cast<long long>(filter->Check(0, 59)));
  filter->Allow(59);
  std::printf("  policy reverted live:     verdict=%lld\n\n",
              static_cast<long long>(filter->Check(0, 59)));

  // ---- Latency histogram at a tracepoint ----
  auto tracer = LatencyTracer::Create(kernel);
  if (!tracer.ok()) {
    std::fprintf(stderr, "tracer: %s\n", tracer.status().ToString().c_str());
    return 1;
  }
  std::printf("latency tracer attached at a tracepoint (all accesses verified\n");
  std::printf("statically: zero SFI guards, zero cancellation points)\n");
  Rng rng(3);
  for (int i = 0; i < 50000; i++) {
    // Bimodal latencies: fast path ~1 us, slow tail ~1 ms.
    uint64_t lat = rng.NextBounded(100) < 95 ? 800 + rng.NextBounded(600)
                                             : 700'000 + rng.NextBounded(600'000);
    tracer->Record(0, lat);
  }
  std::printf("  recorded %llu events, mean %.1f ns\n",
              static_cast<unsigned long long>(tracer->TotalCount()),
              static_cast<double>(tracer->TotalSum()) /
                  static_cast<double>(tracer->TotalCount()));
  std::printf("  log2 histogram (user space reads the extension heap directly):\n");
  for (int b = 0; b < 64; b++) {
    uint64_t count = tracer->BucketCount(b);
    if (count == 0) {
      continue;
    }
    int stars = static_cast<int>(1 + count * 40 / tracer->TotalCount());
    std::printf("    2^%-2d ns %8llu ", b, static_cast<unsigned long long>(count));
    for (int s = 0; s < stars; s++) {
      std::printf("*");
    }
    std::printf("\n");
  }
  return 0;
}
