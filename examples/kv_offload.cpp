// Offloading a key-value store (the paper's headline use case, §5.1):
// runs the full Memcached extension — packet parsing, socket validation,
// spin lock, heap-allocated hash table — plus the Redis ZADD offload with
// its on-demand skip lists (§5.2).
//
//   $ ./build/examples/kv_offload
#include <cstdio>

#include "src/apps/memcached.h"
#include "src/apps/redis.h"

using namespace kflex;

int main() {
  // ---- Memcached: GETs and SETs fully served at the XDP hook ----
  MockKernel kernel;
  auto memcached = KflexMemcachedDriver::Create(kernel);
  if (!memcached.ok()) {
    std::fprintf(stderr, "memcached: %s\n", memcached.status().ToString().c_str());
    return 1;
  }
  std::printf("KFlex-Memcached attached at the XDP hook\n");

  memcached->Set(0, 42, "hello from the kernel");
  auto got = memcached->Get(0, 42);
  std::printf("  SET key=42; GET -> hit=%d value=\"%s\" (%llu insns at the hook)\n", got.hit,
              got.value.c_str(), static_cast<unsigned long long>(got.insns));
  auto miss = memcached->Get(0, 999);
  std::printf("  GET key=999 -> hit=%d (served at XDP without touching user space)\n",
              miss.hit);
  memcached->Del(0, 42);
  std::printf("  DEL key=42 -> next GET hit=%d\n", memcached->Get(0, 42).hit);
  std::printf("  socket refs balanced after every request: quiescent=%d\n\n",
              kernel.Quiescent() ? 1 : 0);

  // ---- Redis: ZADD builds sorted sets with extension-defined skip lists ----
  MockKernel redis_kernel;
  auto redis = KflexRedisDriver::Create(redis_kernel);
  if (!redis.ok()) {
    std::fprintf(stderr, "redis: %s\n", redis.status().ToString().c_str());
    return 1;
  }
  std::printf("KFlex-Redis attached at the sk_skb hook\n");
  redis->Zadd(0, /*key=*/7, /*score=*/300, /*member=*/1003);
  redis->Zadd(0, 7, 100, 1001);
  redis->Zadd(0, 7, 200, 1002);
  std::printf("  ZADD x3 into zset 7 (skip list allocated on demand in the fast path)\n");
  std::printf("  sorted contents:");
  for (const auto& [score, member] : redis->ReadZset(7)) {
    std::printf("  (score=%llu, member=%llu)", static_cast<unsigned long long>(score),
                static_cast<unsigned long long>(member));
  }
  std::printf("\n");
  std::printf("  this operation is infeasible under vanilla eBPF: no extension-defined\n");
  std::printf("  data structures, no fast-path allocation (SS5.2)\n");
  return 0;
}
