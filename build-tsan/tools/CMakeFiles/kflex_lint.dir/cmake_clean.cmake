file(REMOVE_RECURSE
  "CMakeFiles/kflex_lint.dir/kflex_lint.cc.o"
  "CMakeFiles/kflex_lint.dir/kflex_lint.cc.o.d"
  "kflex-lint"
  "kflex-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
