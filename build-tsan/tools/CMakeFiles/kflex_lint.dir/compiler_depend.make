# Empty compiler generated dependencies file for kflex_lint.
# This may be replaced when dependencies are built.
