file(REMOVE_RECURSE
  "CMakeFiles/kflex_top.dir/kflex_top.cc.o"
  "CMakeFiles/kflex_top.dir/kflex_top.cc.o.d"
  "kflex-top"
  "kflex-top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
