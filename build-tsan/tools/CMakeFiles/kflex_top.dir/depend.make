# Empty dependencies file for kflex_top.
# This may be replaced when dependencies are built.
