file(REMOVE_RECURSE
  "CMakeFiles/kflex_run.dir/kflex_run.cc.o"
  "CMakeFiles/kflex_run.dir/kflex_run.cc.o.d"
  "kflex_run"
  "kflex_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
