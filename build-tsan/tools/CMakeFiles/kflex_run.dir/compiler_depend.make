# Empty compiler generated dependencies file for kflex_run.
# This may be replaced when dependencies are built.
