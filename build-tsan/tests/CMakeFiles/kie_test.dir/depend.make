# Empty dependencies file for kie_test.
# This may be replaced when dependencies are built.
