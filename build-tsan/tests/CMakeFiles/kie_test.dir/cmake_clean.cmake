file(REMOVE_RECURSE
  "CMakeFiles/kie_test.dir/kie_test.cc.o"
  "CMakeFiles/kie_test.dir/kie_test.cc.o.d"
  "kie_test"
  "kie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
