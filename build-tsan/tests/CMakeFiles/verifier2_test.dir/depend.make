# Empty dependencies file for verifier2_test.
# This may be replaced when dependencies are built.
