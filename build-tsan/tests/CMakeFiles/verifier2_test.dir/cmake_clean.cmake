file(REMOVE_RECURSE
  "CMakeFiles/verifier2_test.dir/verifier2_test.cc.o"
  "CMakeFiles/verifier2_test.dir/verifier2_test.cc.o.d"
  "verifier2_test"
  "verifier2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
