file(REMOVE_RECURSE
  "CMakeFiles/tnum_test.dir/tnum_test.cc.o"
  "CMakeFiles/tnum_test.dir/tnum_test.cc.o.d"
  "tnum_test"
  "tnum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
