# Empty compiler generated dependencies file for tnum_test.
# This may be replaced when dependencies are built.
