file(REMOVE_RECURSE
  "CMakeFiles/cfg_test.dir/cfg_test.cc.o"
  "CMakeFiles/cfg_test.dir/cfg_test.cc.o.d"
  "cfg_test"
  "cfg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
