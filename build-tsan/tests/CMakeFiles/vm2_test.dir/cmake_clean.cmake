file(REMOVE_RECURSE
  "CMakeFiles/vm2_test.dir/vm2_test.cc.o"
  "CMakeFiles/vm2_test.dir/vm2_test.cc.o.d"
  "vm2_test"
  "vm2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
