# Empty compiler generated dependencies file for vm2_test.
# This may be replaced when dependencies are built.
