# Empty dependencies file for ds_test.
# This may be replaced when dependencies are built.
