file(REMOVE_RECURSE
  "CMakeFiles/ds_test.dir/ds_test.cc.o"
  "CMakeFiles/ds_test.dir/ds_test.cc.o.d"
  "ds_test"
  "ds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
