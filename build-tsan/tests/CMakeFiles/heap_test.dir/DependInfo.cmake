
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heap_test.cc" "tests/CMakeFiles/heap_test.dir/heap_test.cc.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/runtime/CMakeFiles/kflex_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kie/CMakeFiles/kflex_kie.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verifier/CMakeFiles/kflex_verifier.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ebpf/CMakeFiles/kflex_ebpf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/kflex_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/kflex_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/kflex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
