# Empty compiler generated dependencies file for ebpf_compat_test.
# This may be replaced when dependencies are built.
