file(REMOVE_RECURSE
  "CMakeFiles/ebpf_compat_test.dir/ebpf_compat_test.cc.o"
  "CMakeFiles/ebpf_compat_test.dir/ebpf_compat_test.cc.o.d"
  "ebpf_compat_test"
  "ebpf_compat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
