# Empty compiler generated dependencies file for golden_trace_test.
# This may be replaced when dependencies are built.
