file(REMOVE_RECURSE
  "CMakeFiles/golden_trace_test.dir/golden_trace_test.cc.o"
  "CMakeFiles/golden_trace_test.dir/golden_trace_test.cc.o.d"
  "golden_trace_test"
  "golden_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
