file(REMOVE_RECURSE
  "CMakeFiles/memcached_test.dir/memcached_test.cc.o"
  "CMakeFiles/memcached_test.dir/memcached_test.cc.o.d"
  "memcached_test"
  "memcached_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
