# Empty dependencies file for memcached_test.
# This may be replaced when dependencies are built.
