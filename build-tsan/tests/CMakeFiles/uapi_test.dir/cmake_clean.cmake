file(REMOVE_RECURSE
  "CMakeFiles/uapi_test.dir/uapi_test.cc.o"
  "CMakeFiles/uapi_test.dir/uapi_test.cc.o.d"
  "uapi_test"
  "uapi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uapi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
