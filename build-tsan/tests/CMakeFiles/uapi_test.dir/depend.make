# Empty dependencies file for uapi_test.
# This may be replaced when dependencies are built.
