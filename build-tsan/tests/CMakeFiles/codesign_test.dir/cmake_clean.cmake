file(REMOVE_RECURSE
  "CMakeFiles/codesign_test.dir/codesign_test.cc.o"
  "CMakeFiles/codesign_test.dir/codesign_test.cc.o.d"
  "codesign_test"
  "codesign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
