# Empty compiler generated dependencies file for codesign_test.
# This may be replaced when dependencies are built.
