file(REMOVE_RECURSE
  "CMakeFiles/redis_test.dir/redis_test.cc.o"
  "CMakeFiles/redis_test.dir/redis_test.cc.o.d"
  "redis_test"
  "redis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
