# Empty compiler generated dependencies file for redis_test.
# This may be replaced when dependencies are built.
