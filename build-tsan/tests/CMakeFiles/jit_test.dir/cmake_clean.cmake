file(REMOVE_RECURSE
  "CMakeFiles/jit_test.dir/jit_test.cc.o"
  "CMakeFiles/jit_test.dir/jit_test.cc.o.d"
  "jit_test"
  "jit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
