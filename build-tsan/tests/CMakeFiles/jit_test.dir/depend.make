# Empty dependencies file for jit_test.
# This may be replaced when dependencies are built.
