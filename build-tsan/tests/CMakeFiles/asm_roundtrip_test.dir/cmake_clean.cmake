file(REMOVE_RECURSE
  "CMakeFiles/asm_roundtrip_test.dir/asm_roundtrip_test.cc.o"
  "CMakeFiles/asm_roundtrip_test.dir/asm_roundtrip_test.cc.o.d"
  "asm_roundtrip_test"
  "asm_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
