# Empty compiler generated dependencies file for asm_roundtrip_test.
# This may be replaced when dependencies are built.
