file(REMOVE_RECURSE
  "CMakeFiles/ringbuf_test.dir/ringbuf_test.cc.o"
  "CMakeFiles/ringbuf_test.dir/ringbuf_test.cc.o.d"
  "ringbuf_test"
  "ringbuf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringbuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
