# Empty compiler generated dependencies file for ringbuf_test.
# This may be replaced when dependencies are built.
