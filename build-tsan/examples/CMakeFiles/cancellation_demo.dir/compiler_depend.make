# Empty compiler generated dependencies file for cancellation_demo.
# This may be replaced when dependencies are built.
