file(REMOVE_RECURSE
  "CMakeFiles/cancellation_demo.dir/cancellation_demo.cpp.o"
  "CMakeFiles/cancellation_demo.dir/cancellation_demo.cpp.o.d"
  "cancellation_demo"
  "cancellation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancellation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
