file(REMOVE_RECURSE
  "CMakeFiles/codesign_gc.dir/codesign_gc.cpp.o"
  "CMakeFiles/codesign_gc.dir/codesign_gc.cpp.o.d"
  "codesign_gc"
  "codesign_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
