# Empty dependencies file for codesign_gc.
# This may be replaced when dependencies are built.
