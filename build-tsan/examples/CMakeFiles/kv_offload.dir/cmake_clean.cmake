file(REMOVE_RECURSE
  "CMakeFiles/kv_offload.dir/kv_offload.cpp.o"
  "CMakeFiles/kv_offload.dir/kv_offload.cpp.o.d"
  "kv_offload"
  "kv_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
