# Empty compiler generated dependencies file for kv_offload.
# This may be replaced when dependencies are built.
