file(REMOVE_RECURSE
  "CMakeFiles/observability.dir/observability.cpp.o"
  "CMakeFiles/observability.dir/observability.cpp.o.d"
  "observability"
  "observability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
