# Empty dependencies file for observability.
# This may be replaced when dependencies are built.
