# Empty compiler generated dependencies file for fig2_memcached_8t.
# This may be replaced when dependencies are built.
