file(REMOVE_RECURSE
  "CMakeFiles/fig2_memcached_8t.dir/fig2_memcached_8t.cc.o"
  "CMakeFiles/fig2_memcached_8t.dir/fig2_memcached_8t.cc.o.d"
  "fig2_memcached_8t"
  "fig2_memcached_8t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_memcached_8t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
