# Empty compiler generated dependencies file for fig5_datastructures.
# This may be replaced when dependencies are built.
