file(REMOVE_RECURSE
  "CMakeFiles/fig5_datastructures.dir/fig5_datastructures.cc.o"
  "CMakeFiles/fig5_datastructures.dir/fig5_datastructures.cc.o.d"
  "fig5_datastructures"
  "fig5_datastructures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_datastructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
