file(REMOVE_RECURSE
  "CMakeFiles/microbench_vm.dir/microbench_vm.cc.o"
  "CMakeFiles/microbench_vm.dir/microbench_vm.cc.o.d"
  "microbench_vm"
  "microbench_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
