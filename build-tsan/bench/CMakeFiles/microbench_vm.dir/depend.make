# Empty dependencies file for microbench_vm.
# This may be replaced when dependencies are built.
