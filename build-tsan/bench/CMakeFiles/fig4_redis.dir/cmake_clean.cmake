file(REMOVE_RECURSE
  "CMakeFiles/fig4_redis.dir/fig4_redis.cc.o"
  "CMakeFiles/fig4_redis.dir/fig4_redis.cc.o.d"
  "fig4_redis"
  "fig4_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
