# Empty dependencies file for fig4_redis.
# This may be replaced when dependencies are built.
