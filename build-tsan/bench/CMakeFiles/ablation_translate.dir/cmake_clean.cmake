file(REMOVE_RECURSE
  "CMakeFiles/ablation_translate.dir/ablation_translate.cc.o"
  "CMakeFiles/ablation_translate.dir/ablation_translate.cc.o.d"
  "ablation_translate"
  "ablation_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
