# Empty compiler generated dependencies file for ablation_translate.
# This may be replaced when dependencies are built.
