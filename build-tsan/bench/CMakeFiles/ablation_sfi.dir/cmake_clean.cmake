file(REMOVE_RECURSE
  "CMakeFiles/ablation_sfi.dir/ablation_sfi.cc.o"
  "CMakeFiles/ablation_sfi.dir/ablation_sfi.cc.o.d"
  "ablation_sfi"
  "ablation_sfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
