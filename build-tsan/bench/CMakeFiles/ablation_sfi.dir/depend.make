# Empty dependencies file for ablation_sfi.
# This may be replaced when dependencies are built.
