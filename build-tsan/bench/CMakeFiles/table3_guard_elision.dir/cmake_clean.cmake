file(REMOVE_RECURSE
  "CMakeFiles/table3_guard_elision.dir/table3_guard_elision.cc.o"
  "CMakeFiles/table3_guard_elision.dir/table3_guard_elision.cc.o.d"
  "table3_guard_elision"
  "table3_guard_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_guard_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
