# Empty dependencies file for table3_guard_elision.
# This may be replaced when dependencies are built.
