file(REMOVE_RECURSE
  "CMakeFiles/fig3_memcached_16t.dir/fig3_memcached_16t.cc.o"
  "CMakeFiles/fig3_memcached_16t.dir/fig3_memcached_16t.cc.o.d"
  "fig3_memcached_16t"
  "fig3_memcached_16t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_memcached_16t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
