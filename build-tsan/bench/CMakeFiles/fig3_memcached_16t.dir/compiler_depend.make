# Empty compiler generated dependencies file for fig3_memcached_16t.
# This may be replaced when dependencies are built.
