file(REMOVE_RECURSE
  "CMakeFiles/fig6_zadd.dir/fig6_zadd.cc.o"
  "CMakeFiles/fig6_zadd.dir/fig6_zadd.cc.o.d"
  "fig6_zadd"
  "fig6_zadd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_zadd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
