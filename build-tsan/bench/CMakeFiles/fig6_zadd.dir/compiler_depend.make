# Empty compiler generated dependencies file for fig6_zadd.
# This may be replaced when dependencies are built.
