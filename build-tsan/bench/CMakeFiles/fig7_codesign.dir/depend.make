# Empty dependencies file for fig7_codesign.
# This may be replaced when dependencies are built.
