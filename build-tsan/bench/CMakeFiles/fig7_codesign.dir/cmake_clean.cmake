file(REMOVE_RECURSE
  "CMakeFiles/fig7_codesign.dir/fig7_codesign.cc.o"
  "CMakeFiles/fig7_codesign.dir/fig7_codesign.cc.o.d"
  "fig7_codesign"
  "fig7_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
