
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/code_cache.cc" "src/jit/CMakeFiles/kflex_jit.dir/code_cache.cc.o" "gcc" "src/jit/CMakeFiles/kflex_jit.dir/code_cache.cc.o.d"
  "/root/repo/src/jit/codegen.cc" "src/jit/CMakeFiles/kflex_jit.dir/codegen.cc.o" "gcc" "src/jit/CMakeFiles/kflex_jit.dir/codegen.cc.o.d"
  "/root/repo/src/jit/trampoline.cc" "src/jit/CMakeFiles/kflex_jit.dir/trampoline.cc.o" "gcc" "src/jit/CMakeFiles/kflex_jit.dir/trampoline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
