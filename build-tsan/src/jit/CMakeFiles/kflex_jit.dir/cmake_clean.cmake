file(REMOVE_RECURSE
  "CMakeFiles/kflex_jit.dir/code_cache.cc.o"
  "CMakeFiles/kflex_jit.dir/code_cache.cc.o.d"
  "CMakeFiles/kflex_jit.dir/codegen.cc.o"
  "CMakeFiles/kflex_jit.dir/codegen.cc.o.d"
  "CMakeFiles/kflex_jit.dir/trampoline.cc.o"
  "CMakeFiles/kflex_jit.dir/trampoline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
