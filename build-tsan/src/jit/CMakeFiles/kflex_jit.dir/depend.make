# Empty dependencies file for kflex_jit.
# This may be replaced when dependencies are built.
