file(REMOVE_RECURSE
  "libkflex_audit.a"
)
