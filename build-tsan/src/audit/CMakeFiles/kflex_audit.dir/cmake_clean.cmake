file(REMOVE_RECURSE
  "CMakeFiles/kflex_audit.dir/replay.cc.o"
  "CMakeFiles/kflex_audit.dir/replay.cc.o.d"
  "libkflex_audit.a"
  "libkflex_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
