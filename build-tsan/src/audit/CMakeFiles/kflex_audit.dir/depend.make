# Empty dependencies file for kflex_audit.
# This may be replaced when dependencies are built.
