# Empty dependencies file for kflex_ebpf.
# This may be replaced when dependencies are built.
