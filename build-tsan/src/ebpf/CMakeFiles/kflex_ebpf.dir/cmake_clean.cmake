file(REMOVE_RECURSE
  "CMakeFiles/kflex_ebpf.dir/assembler.cc.o"
  "CMakeFiles/kflex_ebpf.dir/assembler.cc.o.d"
  "CMakeFiles/kflex_ebpf.dir/disasm.cc.o"
  "CMakeFiles/kflex_ebpf.dir/disasm.cc.o.d"
  "CMakeFiles/kflex_ebpf.dir/helper_contracts.cc.o"
  "CMakeFiles/kflex_ebpf.dir/helper_contracts.cc.o.d"
  "CMakeFiles/kflex_ebpf.dir/text_asm.cc.o"
  "CMakeFiles/kflex_ebpf.dir/text_asm.cc.o.d"
  "libkflex_ebpf.a"
  "libkflex_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
