
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/assembler.cc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/assembler.cc.o" "gcc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/assembler.cc.o.d"
  "/root/repo/src/ebpf/disasm.cc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/disasm.cc.o" "gcc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/disasm.cc.o.d"
  "/root/repo/src/ebpf/helper_contracts.cc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/helper_contracts.cc.o" "gcc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/helper_contracts.cc.o.d"
  "/root/repo/src/ebpf/text_asm.cc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/text_asm.cc.o" "gcc" "src/ebpf/CMakeFiles/kflex_ebpf.dir/text_asm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/base/CMakeFiles/kflex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
