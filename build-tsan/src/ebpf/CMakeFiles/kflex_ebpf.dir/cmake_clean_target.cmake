file(REMOVE_RECURSE
  "libkflex_ebpf.a"
)
