file(REMOVE_RECURSE
  "libkflex_base.a"
)
