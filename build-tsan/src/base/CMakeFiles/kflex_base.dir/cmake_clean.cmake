file(REMOVE_RECURSE
  "CMakeFiles/kflex_base.dir/histogram.cc.o"
  "CMakeFiles/kflex_base.dir/histogram.cc.o.d"
  "CMakeFiles/kflex_base.dir/json.cc.o"
  "CMakeFiles/kflex_base.dir/json.cc.o.d"
  "CMakeFiles/kflex_base.dir/logging.cc.o"
  "CMakeFiles/kflex_base.dir/logging.cc.o.d"
  "CMakeFiles/kflex_base.dir/zipf.cc.o"
  "CMakeFiles/kflex_base.dir/zipf.cc.o.d"
  "libkflex_base.a"
  "libkflex_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
