# Empty dependencies file for kflex_base.
# This may be replaced when dependencies are built.
