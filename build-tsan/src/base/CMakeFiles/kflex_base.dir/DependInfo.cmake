
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/histogram.cc" "src/base/CMakeFiles/kflex_base.dir/histogram.cc.o" "gcc" "src/base/CMakeFiles/kflex_base.dir/histogram.cc.o.d"
  "/root/repo/src/base/json.cc" "src/base/CMakeFiles/kflex_base.dir/json.cc.o" "gcc" "src/base/CMakeFiles/kflex_base.dir/json.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/base/CMakeFiles/kflex_base.dir/logging.cc.o" "gcc" "src/base/CMakeFiles/kflex_base.dir/logging.cc.o.d"
  "/root/repo/src/base/zipf.cc" "src/base/CMakeFiles/kflex_base.dir/zipf.cc.o" "gcc" "src/base/CMakeFiles/kflex_base.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
