file(REMOVE_RECURSE
  "libkflex_kernel.a"
)
