# Empty dependencies file for kflex_kernel.
# This may be replaced when dependencies are built.
