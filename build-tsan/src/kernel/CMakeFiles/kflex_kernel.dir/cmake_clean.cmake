file(REMOVE_RECURSE
  "CMakeFiles/kflex_kernel.dir/kernel.cc.o"
  "CMakeFiles/kflex_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/kflex_kernel.dir/packet.cc.o"
  "CMakeFiles/kflex_kernel.dir/packet.cc.o.d"
  "CMakeFiles/kflex_kernel.dir/socket.cc.o"
  "CMakeFiles/kflex_kernel.dir/socket.cc.o.d"
  "libkflex_kernel.a"
  "libkflex_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
