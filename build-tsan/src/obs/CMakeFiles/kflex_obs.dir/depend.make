# Empty dependencies file for kflex_obs.
# This may be replaced when dependencies are built.
