file(REMOVE_RECURSE
  "CMakeFiles/kflex_obs.dir/obs.cc.o"
  "CMakeFiles/kflex_obs.dir/obs.cc.o.d"
  "libkflex_obs.a"
  "libkflex_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
