file(REMOVE_RECURSE
  "libkflex_obs.a"
)
