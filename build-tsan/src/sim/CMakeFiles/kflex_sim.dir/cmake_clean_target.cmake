file(REMOVE_RECURSE
  "libkflex_sim.a"
)
