file(REMOVE_RECURSE
  "CMakeFiles/kflex_sim.dir/closedloop.cc.o"
  "CMakeFiles/kflex_sim.dir/closedloop.cc.o.d"
  "CMakeFiles/kflex_sim.dir/kv_models.cc.o"
  "CMakeFiles/kflex_sim.dir/kv_models.cc.o.d"
  "libkflex_sim.a"
  "libkflex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
