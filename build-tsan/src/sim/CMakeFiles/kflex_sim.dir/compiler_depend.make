# Empty compiler generated dependencies file for kflex_sim.
# This may be replaced when dependencies are built.
