
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/codesign.cc" "src/apps/CMakeFiles/kflex_apps.dir/codesign.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/codesign.cc.o.d"
  "/root/repo/src/apps/ds/harness.cc" "src/apps/CMakeFiles/kflex_apps.dir/ds/harness.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/ds/harness.cc.o.d"
  "/root/repo/src/apps/ds/hashmap.cc" "src/apps/CMakeFiles/kflex_apps.dir/ds/hashmap.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/ds/hashmap.cc.o.d"
  "/root/repo/src/apps/ds/linked_list.cc" "src/apps/CMakeFiles/kflex_apps.dir/ds/linked_list.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/ds/linked_list.cc.o.d"
  "/root/repo/src/apps/ds/rbtree.cc" "src/apps/CMakeFiles/kflex_apps.dir/ds/rbtree.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/ds/rbtree.cc.o.d"
  "/root/repo/src/apps/ds/sketch.cc" "src/apps/CMakeFiles/kflex_apps.dir/ds/sketch.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/ds/sketch.cc.o.d"
  "/root/repo/src/apps/ds/skiplist.cc" "src/apps/CMakeFiles/kflex_apps.dir/ds/skiplist.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/ds/skiplist.cc.o.d"
  "/root/repo/src/apps/memcached.cc" "src/apps/CMakeFiles/kflex_apps.dir/memcached.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/memcached.cc.o.d"
  "/root/repo/src/apps/redis.cc" "src/apps/CMakeFiles/kflex_apps.dir/redis.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/redis.cc.o.d"
  "/root/repo/src/apps/tracer.cc" "src/apps/CMakeFiles/kflex_apps.dir/tracer.cc.o" "gcc" "src/apps/CMakeFiles/kflex_apps.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/dsl/CMakeFiles/kflex_dsl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kernel/CMakeFiles/kflex_kernel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/kflex_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/uapi/CMakeFiles/kflex_uapi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/kie/CMakeFiles/kflex_kie.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verifier/CMakeFiles/kflex_verifier.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ebpf/CMakeFiles/kflex_ebpf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/kflex_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/kflex_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/kflex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
