file(REMOVE_RECURSE
  "libkflex_apps.a"
)
