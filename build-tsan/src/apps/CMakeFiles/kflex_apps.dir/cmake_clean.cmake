file(REMOVE_RECURSE
  "CMakeFiles/kflex_apps.dir/codesign.cc.o"
  "CMakeFiles/kflex_apps.dir/codesign.cc.o.d"
  "CMakeFiles/kflex_apps.dir/ds/harness.cc.o"
  "CMakeFiles/kflex_apps.dir/ds/harness.cc.o.d"
  "CMakeFiles/kflex_apps.dir/ds/hashmap.cc.o"
  "CMakeFiles/kflex_apps.dir/ds/hashmap.cc.o.d"
  "CMakeFiles/kflex_apps.dir/ds/linked_list.cc.o"
  "CMakeFiles/kflex_apps.dir/ds/linked_list.cc.o.d"
  "CMakeFiles/kflex_apps.dir/ds/rbtree.cc.o"
  "CMakeFiles/kflex_apps.dir/ds/rbtree.cc.o.d"
  "CMakeFiles/kflex_apps.dir/ds/sketch.cc.o"
  "CMakeFiles/kflex_apps.dir/ds/sketch.cc.o.d"
  "CMakeFiles/kflex_apps.dir/ds/skiplist.cc.o"
  "CMakeFiles/kflex_apps.dir/ds/skiplist.cc.o.d"
  "CMakeFiles/kflex_apps.dir/memcached.cc.o"
  "CMakeFiles/kflex_apps.dir/memcached.cc.o.d"
  "CMakeFiles/kflex_apps.dir/redis.cc.o"
  "CMakeFiles/kflex_apps.dir/redis.cc.o.d"
  "CMakeFiles/kflex_apps.dir/tracer.cc.o"
  "CMakeFiles/kflex_apps.dir/tracer.cc.o.d"
  "libkflex_apps.a"
  "libkflex_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
