# Empty compiler generated dependencies file for kflex_apps.
# This may be replaced when dependencies are built.
