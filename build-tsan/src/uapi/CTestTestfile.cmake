# CMake generated Testfile for 
# Source directory: /root/repo/src/uapi
# Build directory: /root/repo/build-tsan/src/uapi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
