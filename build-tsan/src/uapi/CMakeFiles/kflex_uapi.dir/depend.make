# Empty dependencies file for kflex_uapi.
# This may be replaced when dependencies are built.
