file(REMOVE_RECURSE
  "CMakeFiles/kflex_uapi.dir/user_heap.cc.o"
  "CMakeFiles/kflex_uapi.dir/user_heap.cc.o.d"
  "libkflex_uapi.a"
  "libkflex_uapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_uapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
