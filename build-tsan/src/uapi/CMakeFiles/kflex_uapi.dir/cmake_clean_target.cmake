file(REMOVE_RECURSE
  "libkflex_uapi.a"
)
