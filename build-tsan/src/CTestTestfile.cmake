# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("obs")
subdirs("fault")
subdirs("ebpf")
subdirs("verifier")
subdirs("kie")
subdirs("jit")
subdirs("runtime")
subdirs("kernel")
subdirs("audit")
subdirs("uapi")
subdirs("dsl")
subdirs("apps")
subdirs("sim")
