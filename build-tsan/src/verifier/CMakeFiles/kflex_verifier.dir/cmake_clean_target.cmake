file(REMOVE_RECURSE
  "libkflex_verifier.a"
)
