# Empty dependencies file for kflex_verifier.
# This may be replaced when dependencies are built.
