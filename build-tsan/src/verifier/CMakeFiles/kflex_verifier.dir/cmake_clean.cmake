file(REMOVE_RECURSE
  "CMakeFiles/kflex_verifier.dir/audit.cc.o"
  "CMakeFiles/kflex_verifier.dir/audit.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/cfg.cc.o"
  "CMakeFiles/kflex_verifier.dir/cfg.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/concurrency.cc.o"
  "CMakeFiles/kflex_verifier.dir/concurrency.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/dataflow.cc.o"
  "CMakeFiles/kflex_verifier.dir/dataflow.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/lint.cc.o"
  "CMakeFiles/kflex_verifier.dir/lint.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/opt.cc.o"
  "CMakeFiles/kflex_verifier.dir/opt.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/state.cc.o"
  "CMakeFiles/kflex_verifier.dir/state.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/tnum.cc.o"
  "CMakeFiles/kflex_verifier.dir/tnum.cc.o.d"
  "CMakeFiles/kflex_verifier.dir/verifier.cc.o"
  "CMakeFiles/kflex_verifier.dir/verifier.cc.o.d"
  "libkflex_verifier.a"
  "libkflex_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
