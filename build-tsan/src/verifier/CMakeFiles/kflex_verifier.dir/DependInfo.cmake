
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verifier/audit.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/audit.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/audit.cc.o.d"
  "/root/repo/src/verifier/cfg.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/cfg.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/cfg.cc.o.d"
  "/root/repo/src/verifier/concurrency.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/concurrency.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/concurrency.cc.o.d"
  "/root/repo/src/verifier/dataflow.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/dataflow.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/dataflow.cc.o.d"
  "/root/repo/src/verifier/lint.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/lint.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/lint.cc.o.d"
  "/root/repo/src/verifier/opt.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/opt.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/opt.cc.o.d"
  "/root/repo/src/verifier/state.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/state.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/state.cc.o.d"
  "/root/repo/src/verifier/tnum.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/tnum.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/tnum.cc.o.d"
  "/root/repo/src/verifier/verifier.cc" "src/verifier/CMakeFiles/kflex_verifier.dir/verifier.cc.o" "gcc" "src/verifier/CMakeFiles/kflex_verifier.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ebpf/CMakeFiles/kflex_ebpf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/kflex_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/kflex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
