
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/allocator.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/allocator.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/allocator.cc.o.d"
  "/root/repo/src/runtime/heap.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/heap.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/heap.cc.o.d"
  "/root/repo/src/runtime/helpers.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/helpers.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/helpers.cc.o.d"
  "/root/repo/src/runtime/maps.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/maps.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/maps.cc.o.d"
  "/root/repo/src/runtime/object_registry.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/object_registry.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/object_registry.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/spinlock.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/spinlock.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/spinlock.cc.o.d"
  "/root/repo/src/runtime/vm.cc" "src/runtime/CMakeFiles/kflex_runtime.dir/vm.cc.o" "gcc" "src/runtime/CMakeFiles/kflex_runtime.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/kie/CMakeFiles/kflex_kie.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/verifier/CMakeFiles/kflex_verifier.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ebpf/CMakeFiles/kflex_ebpf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/kflex_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/kflex_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/kflex_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
