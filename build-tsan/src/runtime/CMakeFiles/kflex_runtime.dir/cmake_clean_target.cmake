file(REMOVE_RECURSE
  "libkflex_runtime.a"
)
