# Empty dependencies file for kflex_runtime.
# This may be replaced when dependencies are built.
