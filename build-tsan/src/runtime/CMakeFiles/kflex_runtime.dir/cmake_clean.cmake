file(REMOVE_RECURSE
  "CMakeFiles/kflex_runtime.dir/allocator.cc.o"
  "CMakeFiles/kflex_runtime.dir/allocator.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/heap.cc.o"
  "CMakeFiles/kflex_runtime.dir/heap.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/helpers.cc.o"
  "CMakeFiles/kflex_runtime.dir/helpers.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/maps.cc.o"
  "CMakeFiles/kflex_runtime.dir/maps.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/object_registry.cc.o"
  "CMakeFiles/kflex_runtime.dir/object_registry.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/runtime.cc.o"
  "CMakeFiles/kflex_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/spinlock.cc.o"
  "CMakeFiles/kflex_runtime.dir/spinlock.cc.o.d"
  "CMakeFiles/kflex_runtime.dir/vm.cc.o"
  "CMakeFiles/kflex_runtime.dir/vm.cc.o.d"
  "libkflex_runtime.a"
  "libkflex_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
