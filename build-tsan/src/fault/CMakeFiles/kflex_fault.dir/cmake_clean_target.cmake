file(REMOVE_RECURSE
  "libkflex_fault.a"
)
