file(REMOVE_RECURSE
  "CMakeFiles/kflex_fault.dir/fault.cc.o"
  "CMakeFiles/kflex_fault.dir/fault.cc.o.d"
  "libkflex_fault.a"
  "libkflex_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
