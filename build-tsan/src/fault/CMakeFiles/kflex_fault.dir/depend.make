# Empty dependencies file for kflex_fault.
# This may be replaced when dependencies are built.
