# Empty dependencies file for kflex_dsl.
# This may be replaced when dependencies are built.
