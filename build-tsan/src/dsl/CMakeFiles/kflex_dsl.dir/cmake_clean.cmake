file(REMOVE_RECURSE
  "CMakeFiles/kflex_dsl.dir/emit.cc.o"
  "CMakeFiles/kflex_dsl.dir/emit.cc.o.d"
  "libkflex_dsl.a"
  "libkflex_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
