file(REMOVE_RECURSE
  "libkflex_dsl.a"
)
