# Empty dependencies file for kflex_kie.
# This may be replaced when dependencies are built.
