file(REMOVE_RECURSE
  "CMakeFiles/kflex_kie.dir/kie.cc.o"
  "CMakeFiles/kflex_kie.dir/kie.cc.o.d"
  "libkflex_kie.a"
  "libkflex_kie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kflex_kie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
