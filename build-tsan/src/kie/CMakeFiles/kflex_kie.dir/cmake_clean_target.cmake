file(REMOVE_RECURSE
  "libkflex_kie.a"
)
