#include "src/sim/closedloop.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/zipf.h"
#include "src/obs/obs.h"

namespace kflex {

namespace {

struct SendEvent {
  uint64_t time_ns;
  int client;
  bool operator>(const SendEvent& other) const { return time_ns > other.time_ns; }
};

}  // namespace

ClosedLoopResult RunClosedLoop(ServiceModel& model, const ClosedLoopConfig& config,
                               const BackgroundTask* background) {
  KFLEX_CHECK(config.server_threads > 0);
  KFLEX_CHECK(config.clients > 0);

  Rng rng(config.seed);
  ZipfGenerator zipf(config.key_space, config.zipf_theta);

  std::priority_queue<SendEvent, std::vector<SendEvent>, std::greater<SendEvent>> events;
  std::vector<uint64_t> busy_until(static_cast<size_t>(config.server_threads), 0);

  // Stagger the initial sends slightly so queues do not start in lockstep.
  for (int c = 0; c < config.clients; c++) {
    events.push(SendEvent{rng.NextBounded(config.rtt_ns + 1), c});
  }

  ClosedLoopResult result;
  uint64_t completed = 0;
  uint64_t warmup_count = config.total_requests * static_cast<uint64_t>(config.warmup_pct) / 100;
  uint64_t measure_start_ns = 0;
  uint64_t last_completion_ns = 0;
  uint64_t next_background_ns =
      background != nullptr && background->interval_ns > 0 ? background->interval_ns : ~0ULL;

  while (completed < config.total_requests && !events.empty()) {
    SendEvent ev = events.top();
    events.pop();

    // Fire any due background task (it blocks every server thread: the
    // collector holds the same lock the fast path needs).
    while (ev.time_ns >= next_background_ns) {
      uint64_t blocked = background->run(next_background_ns);
      for (uint64_t& busy : busy_until) {
        busy = std::max(busy, next_background_ns) + blocked;
      }
      next_background_ns += background->interval_ns;
    }

    uint64_t key = zipf.Next(rng);
    KvOp op;
    if (config.op_for_request) {
      op = config.op_for_request(completed, key);
    } else {
      op = rng.NextDouble() < config.get_fraction ? KvOp::kGet : KvOp::kSet;
    }

    int thread = ev.client % config.server_threads;
    uint64_t arrival = ev.time_ns + config.rtt_ns / 2;
    uint64_t start = std::max(arrival, busy_until[static_cast<size_t>(thread)]);
    uint64_t service = model.ServeNs(thread, op, key);
    uint64_t done = start + service;
    busy_until[static_cast<size_t>(thread)] = done;
    uint64_t response_at = done + config.rtt_ns / 2;

    completed++;
    // Coarse progress beacon (every 2^14 completions) so long closed-loop
    // sims are observable without per-request trace volume.
    if ((completed & 0x3fff) == 0) {
      KFLEX_TRACE(ObsEvent::kSimProgress, completed, events.size());
    }
    if (completed == warmup_count) {
      measure_start_ns = done;
      result.latency.Reset();
    }
    result.latency.Record(response_at - ev.time_ns);
    last_completion_ns = std::max(last_completion_ns, done);

    events.push(SendEvent{response_at, ev.client});
  }

  result.measured_requests = completed - warmup_count;
  result.simulated_ns = last_completion_ns > measure_start_ns
                            ? last_completion_ns - measure_start_ns
                            : 1;
  result.throughput_mops = static_cast<double>(result.measured_requests) * 1000.0 /
                           static_cast<double>(result.simulated_ns);
  return result;
}

}  // namespace kflex
