// Closed-loop load-generator simulation (the paper's testbed, §5): N clients
// each keep one request outstanding against S server threads; requests carry
// Zipfian keys (s = 0.99) and a configurable GET:SET mix. Every simulated
// request is *actually executed* on the system under test (the extension
// runs through the verifier/Kie/VM pipeline; baselines run their real data
// planes), and its measured compute is combined with the kernel-path cost
// model to produce a service time. The first 10% of samples are discarded as
// warm-up, as in §5.
#ifndef SRC_SIM_CLOSEDLOOP_H_
#define SRC_SIM_CLOSEDLOOP_H_

#include <cstdint>
#include <functional>

#include "src/base/histogram.h"
#include "src/kernel/packet.h"

namespace kflex {

// A system under test: executes one request and returns its service time in
// simulated nanoseconds on the given server thread.
class ServiceModel {
 public:
  virtual ~ServiceModel() = default;
  virtual uint64_t ServeNs(int cpu, KvOp op, uint64_t key) = 0;
};

// An optional background activity (e.g., the co-design experiment's 1 Hz
// user-space garbage collector, §5.3). Invoked every `interval_ns` of
// simulated time; returns how long it blocked the server (lock held).
struct BackgroundTask {
  uint64_t interval_ns = 0;
  std::function<uint64_t(uint64_t now_ns)> run;
};

struct ClosedLoopConfig {
  int server_threads = 8;
  int clients = 1024;  // paper: 64 threads x 16 clients
  uint64_t total_requests = 200'000;
  double get_fraction = 0.9;
  uint64_t key_space = 10'000;
  double zipf_theta = 0.99;
  uint64_t rtt_ns = 10'000;  // client <-> server network round trip
  uint64_t seed = 42;
  // Fraction (percent) of leading samples discarded as warm-up.
  int warmup_pct = 10;
  // Request mix override: when nonnull, returns the op for request i.
  std::function<KvOp(uint64_t i, uint64_t key)> op_for_request;
};

struct ClosedLoopResult {
  double throughput_mops = 0;  // million requests / simulated second
  Histogram latency;           // client-observed latency (ns)
  uint64_t simulated_ns = 0;
  uint64_t measured_requests = 0;
};

ClosedLoopResult RunClosedLoop(ServiceModel& model, const ClosedLoopConfig& config,
                               const BackgroundTask* background = nullptr);

}  // namespace kflex

#endif  // SRC_SIM_CLOSEDLOOP_H_
