// Open-loop burst load generation against the sharded dispatcher
// (docs/sharding.md; the scaling experiments behind BENCH_scale.json).
//
// Unlike the closed loop (closedloop.h), arrivals here are independent of
// completions: a population of 10^5-10^6 clients emits bursts on an
// exponential schedule, so queueing delay is visible (the open-loop property
// the tail-at-scale literature insists on). Every request is *actually
// executed* through the real threaded ShardedRuntime — steering decisions,
// ingress rings, batches, forward/steal counters are all real — and its
// measured instruction count prices the request in simulated time, the same
// single currency the closed-loop sims use (CostModel::ns_per_insn). The
// host has however many cores it has (often one); throughput and latency
// come from the discrete-event replay over per-shard virtual clocks, so the
// reported scaling reflects the dispatcher's steering balance and the
// workload's shard-parallelism, not the build machine.
//
// Two phases per run:
//   1. capacity: execute all requests, accumulate per-shard busy time;
//      saturated throughput = requests / busiest-shard-busy-ns (the
//      bottleneck shard governs, which is what pins serial-only extensions
//      to the single-shard figure).
//   2. latency replay: re-run arithmetic only, with the burst arrival
//      schedule offered at `offered_load` x the measured capacity, giving
//      the latency distribution at a sane operating point.
#ifndef SRC_SIM_OPENLOOP_H_
#define SRC_SIM_OPENLOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/histogram.h"
#include "src/shard/shard.h"

namespace kflex {

struct OpenLoopConfig {
  // Distinct clients (flows). Steering sees this many different 5-tuples;
  // the scale bench runs 10^5 (smoke) to 10^6 (full).
  uint64_t clients = 1'000'000;
  uint64_t total_requests = 100'000;
  // Requests arrive in bursts of this size (one burst = one arrival event),
  // modelling coalesced NIC RX and the bursty arrivals of many independent
  // clients.
  int burst_size = 8;
  // Offered load for the latency replay, as a fraction of measured capacity.
  double offered_load = 0.7;
  // Heavy-tailed key popularity (paper: Zipf s = 0.99).
  uint64_t key_space = 100'000;
  double zipf_theta = 0.99;
  uint64_t seed = 42;
  // Fraction (percent) of leading samples discarded as warm-up.
  int warmup_pct = 10;
  // Execution window: requests submitted to the dispatcher before each
  // drain barrier. Bounded so a million-request run needs O(window) memory.
  uint64_t window = 2048;
  // Simulated-time pricing: fixed per-request kernel-path cost plus the
  // measured instructions at ns_per_insn (CostModel currency).
  uint64_t fixed_ns = 550;  // driver_rx + xdp_tx
  double ns_per_insn = 2.5;
  double instrumentation_cost_factor = 0.25;
};

// Fills the ctx buffer for request i and returns its flow hash (what the
// caller would pass to ShardedRuntime::Submit).
using RequestBuilder = std::function<uint64_t(uint64_t i, uint64_t key, uint64_t client,
                                              uint8_t* ctx, uint32_t ctx_size)>;

struct OpenLoopResult {
  // Saturated capacity (million requests per simulated second): the scaling
  // figure (Fig. 8/9 analogue).
  double throughput_mops = 0;
  // Latency distribution at offered_load x capacity (simulated ns).
  Histogram latency;
  uint64_t measured_requests = 0;
  uint64_t simulated_busy_ns = 0;  // busiest shard's busy time
  uint64_t total_insns = 0;
  // Dispatcher counters after the run (forward/steal/drop/batch occupancy).
  std::vector<ShardStats> shard_stats;
};

OpenLoopResult RunOpenLoop(ShardedRuntime& sharded, ShardExtId ext,
                           const OpenLoopConfig& config, uint32_t ctx_size,
                           const RequestBuilder& build);

}  // namespace kflex

#endif  // SRC_SIM_OPENLOOP_H_
