#include "src/sim/kv_models.h"

#include "src/base/logging.h"
#include "src/base/rng.h"

namespace kflex {

std::string ValueForKey(uint64_t key) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "value-%016llx----------", static_cast<unsigned long long>(key));
  return std::string(buf, 32);
}

KieOptions KmodKieOptions() {
  KieOptions kie;
  kie.sfi = false;
  kie.cancellation = false;
  return kie;
}

// ---- KflexMemcachedSystem ------------------------------------------------------

StatusOr<std::unique_ptr<KflexMemcachedSystem>> KflexMemcachedSystem::Create(
    const CostModel& cost, int server_threads, const KieOptions& kie) {
  auto system = std::unique_ptr<KflexMemcachedSystem>(new KflexMemcachedSystem(cost));
  system->kernel_ =
      std::make_unique<MockKernel>(RuntimeOptions{server_threads, 1'000'000'000ULL});
  auto driver = KflexMemcachedDriver::Create(*system->kernel_, {}, kie);
  if (!driver.ok()) {
    return driver.status();
  }
  system->driver_ = std::make_unique<KflexMemcachedDriver>(std::move(driver).value());
  return system;
}

void KflexMemcachedSystem::Prepopulate(uint64_t key_space) {
  for (uint64_t key = 0; key < key_space; key++) {
    driver_->Set(0, key, ValueForKey(key));
  }
}

uint64_t KflexMemcachedSystem::ServeNs(int cpu, KvOp op, uint64_t key) {
  if (op == KvOp::kGet) {
    auto r = driver_->Get(cpu, key);
    return cost_.XdpPathUdp() + cost_.ComputeNs(r.insns, r.instr_insns);
  }
  auto r = driver_->Set(cpu, key, ValueForKey(key));
  return cost_.XdpPathTcp() + cost_.ComputeNs(r.insns, r.instr_insns);
}

// ---- UserMemcachedSystem -------------------------------------------------------

StatusOr<std::unique_ptr<UserMemcachedSystem>> UserMemcachedSystem::Create(
    const CostModel& cost, int server_threads) {
  auto system = std::unique_ptr<UserMemcachedSystem>(new UserMemcachedSystem(cost));
  system->kernel_ =
      std::make_unique<MockKernel>(RuntimeOptions{server_threads, 1'000'000'000ULL});
  // Identical application logic as trusted native code: no socket hook
  // business, no instrumentation.
  MemcachedBuildOptions build;
  build.socket_check = false;
  auto proxy = KflexMemcachedDriver::Create(*system->kernel_, build, KmodKieOptions());
  if (!proxy.ok()) {
    return proxy.status();
  }
  system->proxy_ = std::make_unique<KflexMemcachedDriver>(std::move(proxy).value());
  return system;
}

void UserMemcachedSystem::Prepopulate(uint64_t key_space) {
  for (uint64_t key = 0; key < key_space; key++) {
    proxy_->Set(0, key, ValueForKey(key));
  }
}

uint64_t UserMemcachedSystem::ServeNs(int cpu, KvOp op, uint64_t key) {
  if (op == KvOp::kGet) {
    auto r = proxy_->Get(cpu, key);
    get_insns_total_ += r.insns;
    get_ops_++;
    return cost_.UserPathUdp() + cost_.ComputeNs(r.insns, r.instr_insns);
  }
  auto r = proxy_->Set(cpu, key, ValueForKey(key));
  set_insns_total_ += r.insns;
  set_ops_++;
  return cost_.UserPathTcp() + cost_.ComputeNs(r.insns, r.instr_insns);
}

double UserMemcachedSystem::mean_get_insns() const {
  return get_ops_ == 0 ? 0 : static_cast<double>(get_insns_total_) /
                                 static_cast<double>(get_ops_);
}
double UserMemcachedSystem::mean_set_insns() const {
  return set_ops_ == 0 ? 0 : static_cast<double>(set_insns_total_) /
                                 static_cast<double>(set_ops_);
}

// ---- BmcSystem -----------------------------------------------------------------

StatusOr<std::unique_ptr<BmcSystem>> BmcSystem::Create(const CostModel& cost,
                                                       int server_threads) {
  auto system = std::unique_ptr<BmcSystem>(new BmcSystem(cost));
  system->kernel_ =
      std::make_unique<MockKernel>(RuntimeOptions{server_threads, 1'000'000'000ULL});
  auto driver = BmcDriver::Create(*system->kernel_);
  if (!driver.ok()) {
    return driver.status();
  }
  system->driver_ = std::make_unique<BmcDriver>(std::move(driver).value());
  system->Calibrate();
  return system;
}

void BmcSystem::Calibrate() {
  // Measure the user-space Memcached compute with a throwaway KMod proxy.
  MockKernel kernel{RuntimeOptions{1, 1'000'000'000ULL}};
  MemcachedBuildOptions build;
  build.socket_check = false;
  auto proxy = KflexMemcachedDriver::Create(kernel, build, KmodKieOptions());
  KFLEX_CHECK(proxy.ok());
  Rng rng(7);
  uint64_t get_total = 0;
  uint64_t set_total = 0;
  constexpr int kSamples = 200;
  for (int i = 0; i < kSamples; i++) {
    uint64_t key = rng.NextBounded(512);
    set_total += proxy->Set(0, key, ValueForKey(key)).insns;
    get_total += proxy->Get(0, key).insns;
  }
  user_get_insns_ = static_cast<double>(get_total) / kSamples;
  user_set_insns_ = static_cast<double>(set_total) / kSamples;
}

void BmcSystem::Prepopulate(uint64_t key_space) {
  for (uint64_t key = 0; key < key_space; key++) {
    driver_->Set(0, key, ValueForKey(key));
    driver_->Get(0, key);  // warm the look-aside cache
  }
}

uint64_t BmcSystem::ServeNs(int cpu, KvOp op, uint64_t key) {
  if (op == KvOp::kGet) {
    auto r = driver_->Get(cpu, key);
    if (r.served_at_xdp) {
      return cost_.XdpPathUdp() + cost_.ComputeNs(r.xdp_insns, r.instr_insns);
    }
    // Miss: the packet continued through the full stack to user space.
    return cost_.UserPathUdp() + cost_.ComputeNs(r.xdp_insns, r.instr_insns) +
           static_cast<uint64_t>(user_get_insns_ * cost_.ns_per_insn);
  }
  // SET: BMC only invalidates at XDP; user space processes the write.
  auto r = driver_->Set(cpu, key, ValueForKey(key));
  return cost_.UserPathTcp() + cost_.ComputeNs(r.xdp_insns, r.instr_insns) +
         static_cast<uint64_t>(user_set_insns_ * cost_.ns_per_insn);
}

// ---- KflexRedisSystem ----------------------------------------------------------

StatusOr<std::unique_ptr<KflexRedisSystem>> KflexRedisSystem::Create(const CostModel& cost,
                                                                     int server_threads,
                                                                     const KieOptions& kie) {
  auto system = std::unique_ptr<KflexRedisSystem>(new KflexRedisSystem(cost));
  system->kernel_ =
      std::make_unique<MockKernel>(RuntimeOptions{server_threads, 1'000'000'000ULL});
  auto driver = KflexRedisDriver::Create(*system->kernel_, {}, kie);
  if (!driver.ok()) {
    return driver.status();
  }
  system->driver_ = std::make_unique<KflexRedisDriver>(std::move(driver).value());
  return system;
}

void KflexRedisSystem::Prepopulate(uint64_t key_space) {
  for (uint64_t key = 0; key < key_space; key++) {
    driver_->Set(0, key, ValueForKey(key));
  }
}

uint64_t KflexRedisSystem::ServeNs(int cpu, KvOp op, uint64_t key) {
  uint64_t insns = 0;
  uint64_t instr = 0;
  KflexRedisDriver::OpResult r;
  switch (op) {
    case KvOp::kGet:
      r = driver_->Get(cpu, key);
      break;
    case KvOp::kSet:
      r = driver_->Set(cpu, key, ValueForKey(key));
      break;
    case KvOp::kZadd:
      r = driver_->Zadd(cpu, key & 4095, zadd_counter_++ % 24, key);
      break;
    default:
      break;
  }
  insns = r.insns;
  instr = r.instr_insns;
  return cost_.SkSkbPathTcp() + cost_.ComputeNs(insns, instr);
}

// ---- UserRedisSystem -----------------------------------------------------------

StatusOr<std::unique_ptr<UserRedisSystem>> UserRedisSystem::Create(const CostModel& cost,
                                                                   int server_threads) {
  auto system = std::unique_ptr<UserRedisSystem>(new UserRedisSystem(cost));
  system->kernel_ =
      std::make_unique<MockKernel>(RuntimeOptions{server_threads, 1'000'000'000ULL});
  auto proxy = KflexRedisDriver::Create(*system->kernel_, {}, KmodKieOptions());
  if (!proxy.ok()) {
    return proxy.status();
  }
  system->proxy_ = std::make_unique<KflexRedisDriver>(std::move(proxy).value());
  return system;
}

void UserRedisSystem::Prepopulate(uint64_t key_space) {
  for (uint64_t key = 0; key < key_space; key++) {
    proxy_->Set(0, key, ValueForKey(key));
  }
}

uint64_t UserRedisSystem::ServeNs(int cpu, KvOp op, uint64_t key) {
  uint64_t insns = 0;
  switch (op) {
    case KvOp::kGet:
      insns = proxy_->Get(cpu, key).insns;
      break;
    case KvOp::kSet:
      insns = proxy_->Set(cpu, key, ValueForKey(key)).insns;
      break;
    case KvOp::kZadd:
      insns = proxy_->Zadd(cpu, key & 4095, zadd_counter_++ % 24, key).insns;
      break;
    default:
      break;
  }
  return cost_.UserPathTcp() + cost_.ComputeNs(insns, 0);
}

// ---- CodesignSystem ------------------------------------------------------------

StatusOr<std::unique_ptr<CodesignSystem>> CodesignSystem::Create(const CostModel& cost,
                                                                 int server_threads) {
  auto system = std::unique_ptr<CodesignSystem>(new CodesignSystem(cost));
  system->kernel_ =
      std::make_unique<MockKernel>(RuntimeOptions{server_threads, 1'000'000'000ULL});
  auto app = CodesignMemcached::Create(*system->kernel_);
  if (!app.ok()) {
    return app.status();
  }
  system->app_ = std::make_unique<CodesignMemcached>(std::move(app).value());
  return system;
}

void CodesignSystem::Prepopulate(uint64_t key_space) {
  for (uint64_t key = 0; key < key_space; key++) {
    app_->Set(0, key, ValueForKey(key), epoch_ + 5);
  }
}

uint64_t CodesignSystem::ServeNs(int cpu, KvOp op, uint64_t key) {
  if (op == KvOp::kGet) {
    auto r = app_->Get(cpu, key);
    return cost_.XdpPathUdp() + cost_.ComputeNs(r.insns, r.instr_insns);
  }
  auto r = app_->Set(cpu, key, ValueForKey(key), epoch_ + 5);
  return cost_.XdpPathTcp() + cost_.ComputeNs(r.insns, r.instr_insns);
}

BackgroundTask CodesignSystem::GcTask(uint64_t interval_ns) {
  BackgroundTask task;
  task.interval_ns = interval_ns;
  task.run = [this](uint64_t now_ns) -> uint64_t {
    epoch_++;
    auto r = app_->RunGc(epoch_ > 5 ? epoch_ - 5 : 0, now_ns);
    // The collector held the shared lock for roughly this long.
    return r.scanned * 20 + 16384 * 2;
  };
  return task;
}

}  // namespace kflex
