// Service models wiring the real application data planes into the
// closed-loop simulator. Each request is executed for real; its measured
// instruction count (converted at CostModel::ns_per_insn) is added to the
// kernel-path cost of the system under test:
//
//   KFlex-Memcached  XDP hook            driver_rx + [tcp fastpath] + xdp_tx
//   BMC              XDP hit / user miss full user path on misses and SETs
//   User Memcached   full kernel stack   udp/tcp rx + wakeup + syscalls
//   KFlex-Redis      sk_skb hook         rx stack + kernel tx (no syscalls)
//   KeyDB            full kernel stack
//
// User-space baselines run the identical application logic as trusted
// uninstrumented code (the KMod flavour) so all compute is measured in the
// same currency and relative overheads are preserved.
#ifndef SRC_SIM_KV_MODELS_H_
#define SRC_SIM_KV_MODELS_H_

#include <memory>
#include <string>

#include "src/apps/codesign.h"
#include "src/apps/memcached.h"
#include "src/apps/redis.h"
#include "src/kernel/costmodel.h"
#include "src/sim/closedloop.h"

namespace kflex {

// Deterministic value payload for a key (32 B, as in §5.1's workloads).
std::string ValueForKey(uint64_t key);

KieOptions KmodKieOptions();

// ---- Memcached systems --------------------------------------------------------

class KflexMemcachedSystem : public ServiceModel {
 public:
  static StatusOr<std::unique_ptr<KflexMemcachedSystem>> Create(const CostModel& cost,
                                                                int server_threads,
                                                                const KieOptions& kie = {});
  void Prepopulate(uint64_t key_space);
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override;

 private:
  KflexMemcachedSystem(const CostModel& cost) : cost_(cost) {}
  CostModel cost_;
  std::unique_ptr<MockKernel> kernel_;
  std::unique_ptr<KflexMemcachedDriver> driver_;
};

// User-space Memcached: the same logic as trusted native code behind the
// full kernel stack.
class UserMemcachedSystem : public ServiceModel {
 public:
  static StatusOr<std::unique_ptr<UserMemcachedSystem>> Create(const CostModel& cost,
                                                               int server_threads);
  void Prepopulate(uint64_t key_space);
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override;
  // Average compute (insns) per op, used by the BMC model's miss path.
  double mean_get_insns() const;
  double mean_set_insns() const;

 private:
  UserMemcachedSystem(const CostModel& cost) : cost_(cost) {}
  CostModel cost_;
  std::unique_ptr<MockKernel> kernel_;
  std::unique_ptr<KflexMemcachedDriver> proxy_;
  uint64_t get_insns_total_ = 0;
  uint64_t get_ops_ = 0;
  uint64_t set_insns_total_ = 0;
  uint64_t set_ops_ = 0;
};

class BmcSystem : public ServiceModel {
 public:
  static StatusOr<std::unique_ptr<BmcSystem>> Create(const CostModel& cost,
                                                     int server_threads);
  void Prepopulate(uint64_t key_space);
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override;

 private:
  BmcSystem(const CostModel& cost) : cost_(cost) {}
  // Calibrated user-space compute for the miss path.
  void Calibrate();
  CostModel cost_;
  std::unique_ptr<MockKernel> kernel_;
  std::unique_ptr<BmcDriver> driver_;
  double user_get_insns_ = 0;
  double user_set_insns_ = 0;
};

// ---- Redis systems ------------------------------------------------------------

class KflexRedisSystem : public ServiceModel {
 public:
  static StatusOr<std::unique_ptr<KflexRedisSystem>> Create(const CostModel& cost,
                                                            int server_threads,
                                                            const KieOptions& kie = {});
  void Prepopulate(uint64_t key_space);
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override;

 private:
  KflexRedisSystem(const CostModel& cost) : cost_(cost) {}
  CostModel cost_;
  std::unique_ptr<MockKernel> kernel_;
  std::unique_ptr<KflexRedisDriver> driver_;
  uint64_t zadd_counter_ = 0;
};

// KeyDB-style baseline: parallel user-space Redis.
class UserRedisSystem : public ServiceModel {
 public:
  static StatusOr<std::unique_ptr<UserRedisSystem>> Create(const CostModel& cost,
                                                           int server_threads);
  void Prepopulate(uint64_t key_space);
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override;

 private:
  UserRedisSystem(const CostModel& cost) : cost_(cost) {}
  CostModel cost_;
  std::unique_ptr<MockKernel> kernel_;
  std::unique_ptr<KflexRedisDriver> proxy_;
  uint64_t zadd_counter_ = 0;
};

// ---- Co-designed Memcached (§5.3) ----------------------------------------------

class CodesignSystem : public ServiceModel {
 public:
  static StatusOr<std::unique_ptr<CodesignSystem>> Create(const CostModel& cost,
                                                          int server_threads);
  void Prepopulate(uint64_t key_space);
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override;
  // Background GC activity for the simulator: evicts entries older than 5
  // epochs and reports the virtual stall it imposes.
  BackgroundTask GcTask(uint64_t interval_ns);

 private:
  CodesignSystem(const CostModel& cost) : cost_(cost) {}
  CostModel cost_;
  std::unique_ptr<MockKernel> kernel_;
  std::unique_ptr<CodesignMemcached> app_;
  uint64_t epoch_ = 10;  // advanced by the GC task
};

}  // namespace kflex

#endif  // SRC_SIM_KV_MODELS_H_
