#include "src/sim/openloop.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/zipf.h"
#include "src/obs/obs.h"

namespace kflex {

namespace {

struct Slot {
  InvokeResult result;
};

void WriteSlot(const InvokeResult& result, void* user) {
  static_cast<Slot*>(user)->result = result;
}

// Per-request pricing record kept for the latency replay.
struct Priced {
  uint32_t service_ns = 0;
  uint8_t shard = 0;
};

}  // namespace

OpenLoopResult RunOpenLoop(ShardedRuntime& sharded, ShardExtId ext,
                           const OpenLoopConfig& config, uint32_t ctx_size,
                           const RequestBuilder& build) {
  KFLEX_CHECK(config.total_requests > 0 && config.window > 0 && ctx_size > 0);
  const int num_shards = sharded.num_shards();
  const ShardPlacement& place = sharded.placement(ext);

  Rng rng(config.seed);
  ZipfGenerator zipf(config.key_space, config.zipf_theta);

  // ---- phase 1: capacity (real execution, per-shard busy accounting) ----
  OpenLoopResult result;
  std::vector<Priced> priced(config.total_requests);
  std::vector<uint64_t> busy(static_cast<size_t>(num_shards), 0);
  std::vector<uint8_t> ctx_pool(config.window * ctx_size);
  std::vector<Slot> slots(config.window);
  std::vector<uint64_t> flows(config.window);

  uint64_t submitted = 0;
  while (submitted < config.total_requests) {
    uint64_t n = std::min(config.window, config.total_requests - submitted);
    for (uint64_t w = 0; w < n; w++) {
      uint64_t i = submitted + w;
      uint64_t key = zipf.Next(rng);
      uint64_t client = rng.Next() % std::max<uint64_t>(1, config.clients);
      uint8_t* ctx = ctx_pool.data() + w * ctx_size;
      std::fill(ctx, ctx + ctx_size, 0);
      flows[w] = build(i, key, client, ctx, ctx_size);
      slots[w].result = InvokeResult{};
      ShardRequest req;
      req.ext = ext;
      req.ctx = ctx;
      req.ctx_size = ctx_size;
      req.flow_hash = flows[w];
      req.on_done = WriteSlot;
      req.user = &slots[w];
      // The generator is open-loop in simulated time; in host time we
      // backpressure on a full ring rather than drop (drops here would just
      // measure the build machine).
      while (!sharded.Submit(req)) {
        std::this_thread::yield();
      }
    }
    sharded.Flush();
    for (uint64_t w = 0; w < n; w++) {
      uint64_t i = submitted + w;
      const InvokeResult& r = slots[w].result;
      // A cancellation here means the workload is misconfigured (e.g. writes
      // outside the populated heap); the generator has no recovery story.
      KFLEX_CHECK(r.attached && !r.cancelled);
      double plain = static_cast<double>(r.insns - r.instr_insns);
      double instr =
          static_cast<double>(r.instr_insns) * config.instrumentation_cost_factor;
      uint64_t service =
          config.fixed_ns +
          static_cast<uint64_t>((plain + instr) * config.ns_per_insn);
      int shard = place.replicated ? ShardForHash(flows[w], num_shards)
                                   : place.home_shard;
      priced[i].service_ns = static_cast<uint32_t>(service);
      priced[i].shard = static_cast<uint8_t>(shard);
      busy[static_cast<size_t>(shard)] += service;
      result.total_insns += r.insns;
    }
    submitted += n;
    KFLEX_TRACE(ObsEvent::kSimProgress, submitted, 0);
  }

  result.measured_requests = config.total_requests;
  result.simulated_busy_ns = *std::max_element(busy.begin(), busy.end());
  if (result.simulated_busy_ns == 0) {
    result.simulated_busy_ns = 1;
  }
  result.throughput_mops = static_cast<double>(result.measured_requests) * 1000.0 /
                           static_cast<double>(result.simulated_busy_ns);

  // ---- phase 2: latency replay at offered_load x capacity ----
  // Burst arrivals on an exponential schedule: one burst every
  // burst_size / offered_rate ns on average.
  double offered_rate =  // requests per simulated ns
      config.offered_load * static_cast<double>(result.measured_requests) /
      static_cast<double>(result.simulated_busy_ns);
  double mean_burst_gap =
      static_cast<double>(std::max(1, config.burst_size)) / offered_rate;
  std::vector<uint64_t> clock(static_cast<size_t>(num_shards), 0);
  Rng replay_rng(config.seed ^ 0x5eedULL);
  double arrival = 0;
  uint64_t warmup = config.total_requests * static_cast<uint64_t>(config.warmup_pct) / 100;
  for (uint64_t i = 0; i < config.total_requests; i++) {
    if (i % static_cast<uint64_t>(std::max(1, config.burst_size)) == 0) {
      double u = replay_rng.NextDouble();
      arrival += -std::log(u <= 0 ? 1e-12 : u) * mean_burst_gap;
    }
    const Priced& p = priced[i];
    uint64_t at = static_cast<uint64_t>(arrival);
    uint64_t start = std::max(at, clock[p.shard]);
    uint64_t done = start + p.service_ns;
    clock[p.shard] = done;
    if (i == warmup) {
      result.latency.Reset();
    }
    result.latency.Record(done - at);
  }

  result.shard_stats = sharded.SnapshotStats();
  return result;
}

}  // namespace kflex
