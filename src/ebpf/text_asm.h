// Textual assembly for extensions (.kasm).
//
// KFlex's practicality story is that extensions are just bytecode — any
// toolchain can produce it. Besides the C++ Assembler, this module provides
// a human-writable text format (closely following the kernel's BPF assembly
// style) with a parser, so extensions can be written in an editor and
// loaded by tools/kflex_run without recompiling anything:
//
//   .name   kv_counter
//   .hook   tracepoint
//   .mode   kflex
//   .heap   1048576
//
//   r2 = heap 64             ; address of a heap global
//   r3 = *(u64*)(r2 + 0)
//   r3 += 1
//   *(u64*)(r2 + 0) = r3
//   if r3 > 100 goto saturate
//   r0 = r3
//   exit
//   saturate:
//   r0 = 100
//   exit
//
// Supported statements: `rD = imm|rS|heap OFF|imm64 V|map ID`, compound
// assignments (+= -= *= /= %= &= |= ^= <<= >>= s>>=) with imm or reg,
// `rD = -rD`, loads `rD = *(u8|u16|u32|u64*)(rS + OFF)`, stores
// `*(SZ*)(rD + OFF) = rS|imm`, atomics `lock *(SZ*)(rD + OFF) += rS`,
// `rS = lock_fetch_add|lock_xchg|lock_cmpxchg *(SZ*)(rD + OFF)` (rS supplies
// the operand and receives the old value; cmpxchg compares against r0),
// conditional jumps `if rA OP rB|imm goto LABEL` with
// == != > >= < <= s> s>= s< s<= &, `goto LABEL`, `call ID|NAME`, `exit`,
// labels (`name:`), comments (`;` to end of line). 32-bit ALU and JMP32
// forms use `wN` registers in place of `rN`: `w2 += 5`, `w3 = w4`,
// `w2 = -w2`, `if w1 == 7 goto out`.
#ifndef SRC_EBPF_TEXT_ASM_H_
#define SRC_EBPF_TEXT_ASM_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/ebpf/program.h"

namespace kflex {

// Parses a .kasm source into a Program. Errors carry the offending line.
StatusOr<Program> ParseTextProgram(std::string_view source);

// Renders a Program back to parser-compatible .kasm text, synthesizing
// labels (L0, L1, ...) at jump targets. The writer is a fixpoint partner of
// the parser: ParseTextProgram(ProgramToTextAsm(p)) reproduces p's
// instructions exactly, and re-rendering the parsed program reproduces the
// text byte for byte (property-tested over the differential-fuzz corpus by
// asm_roundtrip_test). Fails on programs containing instructions the text
// format cannot express (Kie instrumentation pseudo-instructions).
StatusOr<std::string> ProgramToTextAsm(const Program& program);

}  // namespace kflex

#endif  // SRC_EBPF_TEXT_ASM_H_
