// Extension program container: bytecode plus load-time metadata.
#ifndef SRC_EBPF_PROGRAM_H_
#define SRC_EBPF_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"

namespace kflex {

// Kernel event hooks an extension may attach to (§2: extensions are event
// handlers). Default verdicts on cancellation depend on the hook (§4.3):
// network hooks pass by default, security hooks deny by default.
enum class Hook {
  kXdp,         // Ethernet RX, before the kernel network stack (§5.1 Memcached).
  kSkSkb,       // Post-transport-layer TCP payload hook (§5.1 Redis).
  kTracepoint,  // Observability events.
  kLsm,         // Security decision hook.
};

const char* HookName(Hook hook);

// Default verdict returned to the kernel when an extension is cancelled at
// this hook ("security extensions must deny by default, and network
// extensions should pass packets by default", §4.3).
int64_t HookDefaultVerdict(Hook hook);

// Verification / execution mode.
enum class ExtensionMode {
  // Strict eBPF semantics: no extension heap, loops must have statically
  // computable bounds, at most one lock held, only kernel-provided maps.
  kEbpf,
  // KFlex semantics: extension heap, unbounded (cancellable) loops, multiple
  // KFlex spin locks; correctness enforced by Kie instrumentation + runtime.
  kKflex,
};

struct Program {
  std::string name;
  Hook hook = Hook::kXdp;
  ExtensionMode mode = ExtensionMode::kKflex;
  // Size in bytes of the extension heap declared with kflex_heap(). The
  // paper's macro takes GB; tests and benchmarks use smaller, still
  // size-aligned heaps. Zero means no heap (plain eBPF program).
  uint64_t heap_size = 0;
  std::vector<Insn> insns;

  size_t size() const { return insns.size(); }
};

std::string ProgramToString(const Program& program);

}  // namespace kflex

#endif  // SRC_EBPF_PROGRAM_H_
