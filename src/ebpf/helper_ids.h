// Helper-function identifiers and their verifier-visible contracts.
//
// Extensions may only touch kernel-owned resources through helper functions
// with well-defined semantics; this is what lets the verifier "precisely
// track the set of resources held by the extension at each cancellation
// point, as well as the destructor required to release these resources"
// (§3.3). Contracts are shared between the verifier (argument/return typing,
// acquire/release semantics) and the runtime (the actual implementations).
#ifndef SRC_EBPF_HELPER_IDS_H_
#define SRC_EBPF_HELPER_IDS_H_

#include <cstddef>
#include <cstdint>

namespace kflex {

enum HelperId : int32_t {
  // ---- eBPF-compatible kernel helpers ----
  kHelperMapLookupElem = 1,   // (map, key*) -> map value ptr or NULL
  kHelperMapUpdateElem = 2,   // (map, key*, value*, flags) -> int
  kHelperMapDeleteElem = 3,   // (map, key*) -> int
  kHelperKtimeGetNs = 4,      // () -> u64 virtual nanoseconds
  kHelperGetPrandomU32 = 5,   // () -> u32
  kHelperSkLookupUdp = 6,     // (ctx, tuple*, size, netns, flags) -> socket or NULL; ACQUIRES
  kHelperSkRelease = 7,       // (socket) -> void; RELEASES
  kHelperGetSmpProcessorId = 8,  // () -> u32 current cpu
  kHelperRingbufOutput = 9,      // (ringbuf map, data*, size, flags) -> 0 / -ENOSPC

  // ---- KFlex runtime APIs (Table 2) ----
  kHelperKflexMalloc = 100,     // (size) -> heap ptr or NULL
  kHelperKflexFree = 101,       // (heap ptr) -> void
  kHelperKflexSpinLock = 102,   // (lock*) -> void; ACQUIRES lock
  kHelperKflexSpinUnlock = 103  // (lock*) -> void; RELEASES lock
};

// Argument type classes the verifier checks helper calls against.
enum class HelperArgType {
  kNone,          // argument slot unused
  kScalar,        // any initialized scalar
  kConstScalar,   // scalar with a statically known value
  kPtrToCtx,
  kConstMapPtr,
  kStackMem,      // stack pointer; byte count given by the *next* argument
  kMemSize,       // constant size paired with the preceding kStackMem
  kHeapAddr,      // heap pointer, or (KFlex mode) untrusted scalar address
  kHeapConstAddr, // heap pointer with statically known offset (lock identity)
  kSocket,        // non-null referenced socket
};

enum class HelperRetType {
  kVoid,             // R0 clobbered to unknown scalar, must not be relied on
  kScalar,
  kMapValueOrNull,
  kHeapPtrOrNull,
  kSocketOrNull,
};

// Kinds of kernel-owned resources an extension can hold. These appear in
// cancellation object tables.
enum class ResourceKind : uint8_t {
  kNone = 0,
  kSocket,
  kLock,
};

struct HelperContract {
  HelperId id;
  const char* name;
  HelperArgType args[5];
  HelperRetType ret;
  // Resource behaviour.
  ResourceKind acquires = ResourceKind::kNone;
  ResourceKind releases = ResourceKind::kNone;
  // Helper invoked by the runtime to destroy an acquired-but-unreleased
  // resource on cancellation (e.g., bpf_sk_release for sockets).
  HelperId destructor = static_cast<HelperId>(0);
  // Allowed in strict eBPF mode? KFlex-only APIs are not.
  bool ebpf_compatible = true;
};

// Returns the contract for `id`, or nullptr if unknown.
const HelperContract* FindHelperContract(int32_t id);

// The full contract catalog (pointer to first entry + count), for clients
// that derive tables from it (the contract-audit subsystem, drift
// self-checks) rather than looking helpers up one id at a time.
struct HelperContractSpan {
  const HelperContract* data;
  size_t size;
  const HelperContract* begin() const { return data; }
  const HelperContract* end() const { return data + size; }
};
HelperContractSpan AllHelperContracts();

}  // namespace kflex

#endif  // SRC_EBPF_HELPER_IDS_H_
