// Bytecode assembler with labels and structured control-flow helpers.
//
// KFlex keeps eBPF's toolchain story: extensions are compiled to bytecode by
// arbitrary compilers. In this reproduction the "compiler" is this assembler:
// applications and data structures are written against it (see src/dsl and
// src/apps/ds), then flow through the real verifier / Kie / runtime pipeline.
#ifndef SRC_EBPF_ASSEMBLER_H_
#define SRC_EBPF_ASSEMBLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"

namespace kflex {

class Assembler {
 public:
  using Label = int;

  Assembler() = default;

  // ---- Labels ----
  Label NewLabel();
  // Binds `label` to the next emitted instruction.
  void Bind(Label label);

  // ---- ALU ----
  void AluImm(AluOp op, Reg dst, int32_t imm, bool is64 = true);
  void AluReg(AluOp op, Reg dst, Reg src, bool is64 = true);
  void Mov(Reg dst, Reg src) { AluReg(BPF_MOV, dst, src); }
  void MovImm(Reg dst, int32_t imm) { AluImm(BPF_MOV, dst, imm); }
  void Mov32(Reg dst, Reg src) { AluReg(BPF_MOV, dst, src, /*is64=*/false); }
  void Add(Reg dst, Reg src) { AluReg(BPF_ADD, dst, src); }
  void AddImm(Reg dst, int32_t imm) { AluImm(BPF_ADD, dst, imm); }
  void Sub(Reg dst, Reg src) { AluReg(BPF_SUB, dst, src); }
  void SubImm(Reg dst, int32_t imm) { AluImm(BPF_SUB, dst, imm); }
  void Mul(Reg dst, Reg src) { AluReg(BPF_MUL, dst, src); }
  void MulImm(Reg dst, int32_t imm) { AluImm(BPF_MUL, dst, imm); }
  void AndImm(Reg dst, int32_t imm) { AluImm(BPF_AND, dst, imm); }
  void And(Reg dst, Reg src) { AluReg(BPF_AND, dst, src); }
  void OrImm(Reg dst, int32_t imm) { AluImm(BPF_OR, dst, imm); }
  void Or(Reg dst, Reg src) { AluReg(BPF_OR, dst, src); }
  void Xor(Reg dst, Reg src) { AluReg(BPF_XOR, dst, src); }
  void XorImm(Reg dst, int32_t imm) { AluImm(BPF_XOR, dst, imm); }
  void LshImm(Reg dst, int32_t imm) { AluImm(BPF_LSH, dst, imm); }
  void Lsh(Reg dst, Reg src) { AluReg(BPF_LSH, dst, src); }
  void RshImm(Reg dst, int32_t imm) { AluImm(BPF_RSH, dst, imm); }
  void Rsh(Reg dst, Reg src) { AluReg(BPF_RSH, dst, src); }
  void ArshImm(Reg dst, int32_t imm) { AluImm(BPF_ARSH, dst, imm); }
  void ModImm(Reg dst, int32_t imm) { AluImm(BPF_MOD, dst, imm); }
  void Mod(Reg dst, Reg src) { AluReg(BPF_MOD, dst, src); }
  void DivImm(Reg dst, int32_t imm) { AluImm(BPF_DIV, dst, imm); }
  void Neg(Reg dst, bool is64 = true) { insns_.push_back(NegInsn(dst, is64)); }

  // ---- 64-bit immediates and pseudo loads ----
  void LoadImm64(Reg dst, uint64_t imm);
  // dst = address of heap offset `heap_off` (typed PTR_TO_HEAP by the
  // verifier). This is how kflex_heap() globals are referenced.
  void LoadHeapAddr(Reg dst, uint64_t heap_off);
  // dst = pointer to the kernel-provided map with id `map_id`.
  void LoadMapPtr(Reg dst, uint32_t map_id);

  // ---- Memory ----
  void Ldx(MemSize size, Reg dst, Reg src, int16_t off);
  void Stx(MemSize size, Reg dst, int16_t off, Reg src);
  void StImm(MemSize size, Reg dst, int16_t off, int32_t imm);
  void AtomicAdd(MemSize size, Reg dst, int16_t off, Reg src, bool fetch = false);
  void AtomicXchg(MemSize size, Reg dst, int16_t off, Reg src);
  void AtomicCmpXchg(MemSize size, Reg dst, int16_t off, Reg src);

  // ---- Control flow ----
  void Jmp(Label target);
  void JmpImm(JmpOp op, Reg dst, int32_t imm, Label target, bool is64 = true);
  void JmpReg(JmpOp op, Reg dst, Reg src, Label target, bool is64 = true);
  void Call(int32_t helper_id);
  void Exit();

  // ---- Structured control flow ----
  //
  //   auto loop = a.LoopBegin();               // loop head
  //   a.LoopBreakIf(loop, BPF_JEQ, R1, 0);     // exit condition
  //   ...body...
  //   a.LoopEnd(loop);                         // back edge -> head
  struct LoopScope {
    Label head;
    Label done;
  };
  LoopScope LoopBegin();
  void LoopBreakIfImm(const LoopScope& loop, JmpOp op, Reg dst, int32_t imm);
  void LoopBreakIfReg(const LoopScope& loop, JmpOp op, Reg dst, Reg src);
  void LoopContinue(const LoopScope& loop);
  void LoopBreak(const LoopScope& loop);
  void LoopEnd(const LoopScope& loop);

  //   auto iff = a.IfImm(BPF_JEQ, R1, 0);   // then-branch runs when R1 == 0
  //   ...then...
  //   a.Else(iff);                           // optional
  //   ...else...
  //   a.EndIf(iff);
  struct IfScope {
    Label else_label;
    Label end_label;
    bool has_else = false;
  };
  IfScope IfImm(JmpOp cond_true, Reg dst, int32_t imm);
  IfScope IfReg(JmpOp cond_true, Reg dst, Reg src);
  void Else(IfScope& scope);
  void EndIf(IfScope& scope);

  size_t CurrentPc() const { return insns_.size(); }

  // Resolves labels into relative jump offsets and returns the program.
  // Fails if a referenced label is unbound or a jump offset overflows 16 bits.
  StatusOr<Program> Finish(std::string name, Hook hook, ExtensionMode mode,
                           uint64_t heap_size = 0);

 private:
  struct Fixup {
    size_t insn_index;
    Label label;
  };

  void EmitJump(Insn insn, Label target);

  std::vector<Insn> insns_;
  std::vector<int64_t> label_pc_;  // -1 while unbound.
  std::vector<Fixup> fixups_;
};

}  // namespace kflex

#endif  // SRC_EBPF_ASSEMBLER_H_
