#include <cinttypes>
#include <cstdio>

#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"

namespace kflex {

namespace {

const char* AluOpName(uint8_t op) {
  switch (op) {
    case BPF_ADD:
      return "add";
    case BPF_SUB:
      return "sub";
    case BPF_MUL:
      return "mul";
    case BPF_DIV:
      return "div";
    case BPF_OR:
      return "or";
    case BPF_AND:
      return "and";
    case BPF_LSH:
      return "lsh";
    case BPF_RSH:
      return "rsh";
    case BPF_NEG:
      return "neg";
    case BPF_MOD:
      return "mod";
    case BPF_XOR:
      return "xor";
    case BPF_MOV:
      return "mov";
    case BPF_ARSH:
      return "arsh";
  }
  return "alu?";
}

const char* JmpOpName(uint8_t op) {
  switch (op) {
    case BPF_JA:
      return "ja";
    case BPF_JEQ:
      return "jeq";
    case BPF_JGT:
      return "jgt";
    case BPF_JGE:
      return "jge";
    case BPF_JSET:
      return "jset";
    case BPF_JNE:
      return "jne";
    case BPF_JSGT:
      return "jsgt";
    case BPF_JSGE:
      return "jsge";
    case BPF_JLT:
      return "jlt";
    case BPF_JLE:
      return "jle";
    case BPF_JSLT:
      return "jslt";
    case BPF_JSLE:
      return "jsle";
  }
  return "jmp?";
}

const char* SizeName(uint8_t size) {
  switch (size) {
    case BPF_B:
      return "u8";
    case BPF_H:
      return "u16";
    case BPF_W:
      return "u32";
    case BPF_DW:
      return "u64";
  }
  return "u?";
}

}  // namespace

std::string InsnToString(const Insn& insn) {
  char buf[128];
  // Kie instrumentation pseudo-instructions (insn.h): LD-class encodings
  // that are not LD_IMM64; print them by name rather than as raw bytes.
  if (insn.opcode == kKieSanitizeOpcode) {
    std::snprintf(buf, sizeof(buf), "sanitize r%d", insn.dst);
    return buf;
  }
  if (insn.opcode == kKieTranslateOpcode) {
    std::snprintf(buf, sizeof(buf), "translate r%d", insn.dst);
    return buf;
  }
  if (insn.opcode == kKieFuelCheckOpcode) {
    std::snprintf(buf, sizeof(buf), "fuelcheck");
    return buf;
  }
  if (insn.IsLdImm64()) {
    std::snprintf(buf, sizeof(buf), "r%d = imm64(lo=0x%x, pseudo=%d)", insn.dst,
                  static_cast<uint32_t>(insn.imm), insn.src);
    return buf;
  }
  switch (insn.Class()) {
    case BPF_ALU:
    case BPF_ALU64: {
      const char* suffix = insn.Class() == BPF_ALU ? "32" : "";
      if (insn.AluOpField() == BPF_NEG) {
        std::snprintf(buf, sizeof(buf), "r%d = -r%d%s", insn.dst, insn.dst, suffix);
      } else if (insn.SrcField() == BPF_X) {
        std::snprintf(buf, sizeof(buf), "%s%s r%d, r%d", AluOpName(insn.AluOpField()), suffix,
                      insn.dst, insn.src);
      } else {
        std::snprintf(buf, sizeof(buf), "%s%s r%d, %d", AluOpName(insn.AluOpField()), suffix,
                      insn.dst, insn.imm);
      }
      return buf;
    }
    case BPF_LDX:
      std::snprintf(buf, sizeof(buf), "r%d = *(%s*)(r%d %+d)", insn.dst,
                    SizeName(insn.SizeField()), insn.src, insn.off);
      return buf;
    case BPF_ST:
      std::snprintf(buf, sizeof(buf), "*(%s*)(r%d %+d) = %d", SizeName(insn.SizeField()),
                    insn.dst, insn.off, insn.imm);
      return buf;
    case BPF_STX:
      if (insn.IsAtomic()) {
        std::snprintf(buf, sizeof(buf), "atomic(%s) *(%s*)(r%d %+d), r%d",
                      insn.imm == BPF_ATOMIC_XCHG      ? "xchg"
                      : insn.imm == BPF_ATOMIC_CMPXCHG ? "cmpxchg"
                      : (insn.imm & BPF_ATOMIC_FETCH)  ? "add_fetch"
                                                       : "add",
                      SizeName(insn.SizeField()), insn.dst, insn.off, insn.src);
      } else {
        std::snprintf(buf, sizeof(buf), "*(%s*)(r%d %+d) = r%d", SizeName(insn.SizeField()),
                      insn.dst, insn.off, insn.src);
      }
      return buf;
    case BPF_JMP:
    case BPF_JMP32: {
      uint8_t op = insn.AluOpField();
      if (op == BPF_CALL) {
        std::snprintf(buf, sizeof(buf), "call %d", insn.imm);
      } else if (op == BPF_EXIT) {
        std::snprintf(buf, sizeof(buf), "exit");
      } else if (op == BPF_JA) {
        std::snprintf(buf, sizeof(buf), "goto %+d", insn.off);
      } else if (insn.SrcField() == BPF_X) {
        std::snprintf(buf, sizeof(buf), "if r%d %s r%d goto %+d", insn.dst, JmpOpName(op),
                      insn.src, insn.off);
      } else {
        std::snprintf(buf, sizeof(buf), "if r%d %s %d goto %+d", insn.dst, JmpOpName(op),
                      insn.imm, insn.off);
      }
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "invalid opcode 0x%02x", insn.opcode);
  return buf;
}

const char* HookName(Hook hook) {
  switch (hook) {
    case Hook::kXdp:
      return "xdp";
    case Hook::kSkSkb:
      return "sk_skb";
    case Hook::kTracepoint:
      return "tracepoint";
    case Hook::kLsm:
      return "lsm";
  }
  return "?";
}

int64_t HookDefaultVerdict(Hook hook) {
  switch (hook) {
    case Hook::kXdp:
      return 2;  // XDP_PASS: let the packet continue up the stack.
    case Hook::kSkSkb:
      return 0;  // SK_PASS equivalent.
    case Hook::kTracepoint:
      return 0;
    case Hook::kLsm:
      return -1;  // -EPERM: deny by default.
  }
  return 0;
}

std::string ProgramToString(const Program& program) {
  std::string out = "; program " + program.name + " hook=" + HookName(program.hook) + "\n";
  for (size_t i = 0; i < program.insns.size(); i++) {
    char line[160];
    std::snprintf(line, sizeof(line), "%4zu: %s\n", i, InsnToString(program.insns[i]).c_str());
    out += line;
    if (program.insns[i].IsLdImm64()) {
      i++;  // Skip the second slot of the pair.
    }
  }
  return out;
}

}  // namespace kflex
