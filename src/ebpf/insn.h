// eBPF instruction set (the subset KFlex relies on), with Linux-compatible
// encoding: 8-bit opcode, 4-bit dst/src registers, 16-bit signed offset and
// 32-bit immediate. 64-bit immediates (BPF_LD | BPF_IMM | BPF_DW) occupy two
// instruction slots, exactly as in the kernel.
//
// KFlex "retains the instruction set of eBPF's bytecode" (§3); this module is
// the substrate both the verifier and the instrumentation engine (Kie)
// operate on.
#ifndef SRC_EBPF_INSN_H_
#define SRC_EBPF_INSN_H_

#include <cstdint>
#include <string>

namespace kflex {

// ---- Registers -------------------------------------------------------------

// R0: return value / scratch. R1-R5: arguments, caller-saved. R6-R9:
// callee-saved. R10: read-only frame pointer. R11 (AX) is reserved for the
// instrumentation engine; user programs naming it are rejected by the
// verifier, mirroring how the x86 JIT reserves R9/R12 for the SFI mask and
// heap base (§4.2).
enum Reg : uint8_t {
  R0 = 0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
  RAX = 11,  // Kie scratch register (address sanitization).
  RBX = 12,  // Second Kie scratch (translate-on-store combined with a guard).
};

inline constexpr int kNumRegs = 13;
inline constexpr int kMaxUserReg = 10;   // R10 is the highest user-visible register.
inline constexpr int kStackSize = 512;   // Bytes of extension stack frame.

// ---- Opcode fields ----------------------------------------------------------

// Instruction classes (low 3 bits of the opcode).
inline constexpr uint8_t BPF_LD = 0x00;
inline constexpr uint8_t BPF_LDX = 0x01;
inline constexpr uint8_t BPF_ST = 0x02;
inline constexpr uint8_t BPF_STX = 0x03;
inline constexpr uint8_t BPF_ALU = 0x04;  // 32-bit ALU.
inline constexpr uint8_t BPF_JMP = 0x05;
inline constexpr uint8_t BPF_JMP32 = 0x06;
inline constexpr uint8_t BPF_ALU64 = 0x07;

// Size field for memory instructions (bits 3-4).
enum MemSize : uint8_t {
  BPF_W = 0x00,   // 4 bytes
  BPF_H = 0x08,   // 2 bytes
  BPF_B = 0x10,   // 1 byte
  BPF_DW = 0x18,  // 8 bytes
};

// Mode field for load/store instructions (bits 5-7).
inline constexpr uint8_t BPF_IMM = 0x00;
inline constexpr uint8_t BPF_MEM = 0x60;
inline constexpr uint8_t BPF_ATOMIC = 0xC0;

// Source operand flag (bit 3) for ALU/JMP.
inline constexpr uint8_t BPF_K = 0x00;  // use 32-bit immediate
inline constexpr uint8_t BPF_X = 0x08;  // use src register

// ALU operations (bits 4-7).
enum AluOp : uint8_t {
  BPF_ADD = 0x00,
  BPF_SUB = 0x10,
  BPF_MUL = 0x20,
  BPF_DIV = 0x30,
  BPF_OR = 0x40,
  BPF_AND = 0x50,
  BPF_LSH = 0x60,
  BPF_RSH = 0x70,
  BPF_NEG = 0x80,
  BPF_MOD = 0x90,
  BPF_XOR = 0xA0,
  BPF_MOV = 0xB0,
  BPF_ARSH = 0xC0,
};

// Jump operations (bits 4-7).
enum JmpOp : uint8_t {
  BPF_JA = 0x00,
  BPF_JEQ = 0x10,
  BPF_JGT = 0x20,
  BPF_JGE = 0x30,
  BPF_JSET = 0x40,
  BPF_JNE = 0x50,
  BPF_JSGT = 0x60,
  BPF_JSGE = 0x70,
  BPF_CALL = 0x80,
  BPF_EXIT = 0x90,
  BPF_JLT = 0xA0,
  BPF_JLE = 0xB0,
  BPF_JSLT = 0xC0,
  BPF_JSLE = 0xD0,
};

// Atomic operation encodings carried in the immediate of
// BPF_STX | BPF_ATOMIC instructions.
inline constexpr int32_t BPF_ATOMIC_ADD = 0x00;
inline constexpr int32_t BPF_ATOMIC_FETCH = 0x01;  // OR-ed flag: fetch old value.
inline constexpr int32_t BPF_ATOMIC_XCHG = 0xE1;
inline constexpr int32_t BPF_ATOMIC_CMPXCHG = 0xF1;

// Pseudo source-register values for BPF_LD | BPF_IMM | BPF_DW, mirroring
// BPF_PSEUDO_MAP_FD et al. in the kernel.
enum LdImmPseudo : uint8_t {
  kPseudoNone = 0,
  // imm64 is an offset into the extension heap; the verifier types the
  // destination register PTR_TO_HEAP. This is how heap globals (list heads,
  // locks, bucket arrays) declared by kflex_heap() are addressed.
  kPseudoHeapVar = 1,
  // imm64 is a map id; destination typed CONST_PTR_TO_MAP.
  kPseudoMapId = 2,
};

// ---- Instruction -------------------------------------------------------------

struct Insn {
  uint8_t opcode = 0;
  uint8_t dst = 0;  // 4 bits in the wire format.
  uint8_t src = 0;  // 4 bits in the wire format.
  int16_t off = 0;
  int32_t imm = 0;

  uint8_t Class() const { return opcode & 0x07; }
  uint8_t SizeField() const { return opcode & 0x18; }
  uint8_t ModeField() const { return opcode & 0xE0; }
  uint8_t AluOpField() const { return opcode & 0xF0; }
  uint8_t SrcField() const { return opcode & 0x08; }

  bool IsAlu() const { return Class() == BPF_ALU || Class() == BPF_ALU64; }
  bool IsJmp() const { return Class() == BPF_JMP || Class() == BPF_JMP32; }
  bool IsLdImm64() const { return opcode == (BPF_LD | BPF_IMM | BPF_DW); }
  bool IsLoad() const { return Class() == BPF_LDX && ModeField() == BPF_MEM; }
  bool IsStore() const {
    return (Class() == BPF_ST || Class() == BPF_STX) && ModeField() == BPF_MEM;
  }
  bool IsAtomic() const { return Class() == BPF_STX && ModeField() == BPF_ATOMIC; }
  bool IsCall() const { return Class() == BPF_JMP && AluOpField() == BPF_CALL; }
  bool IsExit() const { return Class() == BPF_JMP && AluOpField() == BPF_EXIT; }
  bool IsUncondJmp() const { return Class() == BPF_JMP && AluOpField() == BPF_JA; }
  bool IsCondJmp() const {
    if (!IsJmp()) {
      return false;
    }
    uint8_t op = AluOpField();
    return op != BPF_JA && op != BPF_CALL && op != BPF_EXIT;
  }

  // Access width in bytes for memory instructions.
  int AccessSize() const {
    switch (SizeField()) {
      case BPF_B:
        return 1;
      case BPF_H:
        return 2;
      case BPF_W:
        return 4;
      case BPF_DW:
        return 8;
    }
    return 0;
  }

  bool operator==(const Insn& other) const = default;
};

// ---- Constructors ------------------------------------------------------------

inline Insn AluRegInsn(AluOp op, Reg dst, Reg src, bool is64 = true) {
  return Insn{static_cast<uint8_t>((is64 ? BPF_ALU64 : BPF_ALU) | BPF_X | op), dst, src, 0, 0};
}
inline Insn AluImmInsn(AluOp op, Reg dst, int32_t imm, bool is64 = true) {
  return Insn{static_cast<uint8_t>((is64 ? BPF_ALU64 : BPF_ALU) | BPF_K | op), dst, 0, 0, imm};
}
inline Insn MovRegInsn(Reg dst, Reg src, bool is64 = true) {
  return AluRegInsn(BPF_MOV, dst, src, is64);
}
inline Insn MovImmInsn(Reg dst, int32_t imm, bool is64 = true) {
  return AluImmInsn(BPF_MOV, dst, imm, is64);
}
inline Insn NegInsn(Reg dst, bool is64 = true) {
  return Insn{static_cast<uint8_t>((is64 ? BPF_ALU64 : BPF_ALU) | BPF_NEG), dst, 0, 0, 0};
}

// Memory: LDX dst = *(size*)(src + off)
inline Insn LdxInsn(MemSize size, Reg dst, Reg src, int16_t off) {
  return Insn{static_cast<uint8_t>(BPF_LDX | BPF_MEM | size), dst, src, off, 0};
}
// STX *(size*)(dst + off) = src
inline Insn StxInsn(MemSize size, Reg dst, int16_t off, Reg src) {
  return Insn{static_cast<uint8_t>(BPF_STX | BPF_MEM | size), dst, src, off, 0};
}
// ST *(size*)(dst + off) = imm
inline Insn StImmInsn(MemSize size, Reg dst, int16_t off, int32_t imm) {
  return Insn{static_cast<uint8_t>(BPF_ST | BPF_MEM | size), dst, 0, off, imm};
}
// Atomic: *(size*)(dst + off) op= src (optionally fetching old value into src).
inline Insn AtomicInsn(MemSize size, Reg dst, int16_t off, Reg src, int32_t atomic_op) {
  return Insn{static_cast<uint8_t>(BPF_STX | BPF_ATOMIC | size), dst, src, off, atomic_op};
}

// LD_IMM64: returns the first of two slots; the second is LdImm64Hi.
inline Insn LdImm64Insn(Reg dst, uint64_t imm, LdImmPseudo pseudo = kPseudoNone) {
  return Insn{static_cast<uint8_t>(BPF_LD | BPF_IMM | BPF_DW), dst,
              static_cast<uint8_t>(pseudo), 0, static_cast<int32_t>(imm & 0xFFFFFFFFULL)};
}
inline Insn LdImm64HiInsn(uint64_t imm) {
  return Insn{0, 0, 0, 0, static_cast<int32_t>(imm >> 32)};
}

inline Insn JmpAlwaysInsn(int16_t off) {
  return Insn{static_cast<uint8_t>(BPF_JMP | BPF_JA), 0, 0, off, 0};
}
inline Insn JmpImmInsn(JmpOp op, Reg dst, int32_t imm, int16_t off, bool is64 = true) {
  return Insn{static_cast<uint8_t>((is64 ? BPF_JMP : BPF_JMP32) | BPF_K | op), dst, 0, off, imm};
}
inline Insn JmpRegInsn(JmpOp op, Reg dst, Reg src, int16_t off, bool is64 = true) {
  return Insn{static_cast<uint8_t>((is64 ? BPF_JMP : BPF_JMP32) | BPF_X | op), dst, src, off, 0};
}
inline Insn CallInsn(int32_t helper_id) {
  return Insn{static_cast<uint8_t>(BPF_JMP | BPF_CALL), 0, 0, 0, helper_id};
}
inline Insn ExitInsn() { return Insn{static_cast<uint8_t>(BPF_JMP | BPF_EXIT), 0, 0, 0, 0}; }

// Reads the full 64-bit immediate from an LD_IMM64 pair.
inline uint64_t LdImm64Value(const Insn& lo, const Insn& hi) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(hi.imm)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(lo.imm));
}

// Human-readable rendering of one instruction (for diagnostics and tests).
std::string InsnToString(const Insn& insn);

// ---- Kie instrumentation pseudo-instructions ---------------------------------
// Encoded in otherwise-unused LD-class opcodes; emitted only by the Kie
// instrumentation engine (src/kie) and executed only by the KFlex-extended VM.
// The encodings live here, at the ISA layer, so the disassembler can name
// them without depending on Kie.
//
//   SANITIZE dst: dst = heap_kernel_base + (dst & (heap_size - 1))
//   TRANSLATE dst: dst = heap_user_base + (dst & (heap_size - 1))
//   FUELCHECK: trap when the invocation exceeded its cycle quantum
inline constexpr uint8_t kKieSanitizeOpcode = BPF_LD | BPF_DW | 0x20;   // 0x38
inline constexpr uint8_t kKieTranslateOpcode = BPF_LD | BPF_DW | 0x40;  // 0x58
inline constexpr uint8_t kKieFuelCheckOpcode = BPF_LD | BPF_DW | 0x60;  // 0x78

inline Insn KieSanitizeInsn(Reg dst) { return Insn{kKieSanitizeOpcode, dst, 0, 0, 0}; }
inline Insn KieTranslateInsn(Reg dst) { return Insn{kKieTranslateOpcode, dst, 0, 0, 0}; }
inline Insn KieFuelCheckInsn() { return Insn{kKieFuelCheckOpcode, 0, 0, 0, 0}; }

}  // namespace kflex

#endif  // SRC_EBPF_INSN_H_
