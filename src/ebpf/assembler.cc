#include "src/ebpf/assembler.h"

#include <limits>

#include "src/base/logging.h"

namespace kflex {

namespace {

// Returns the jump condition that is true exactly when `op` is false.
JmpOp InvertJmpOp(JmpOp op) {
  switch (op) {
    case BPF_JEQ:
      return BPF_JNE;
    case BPF_JNE:
      return BPF_JEQ;
    case BPF_JGT:
      return BPF_JLE;
    case BPF_JLE:
      return BPF_JGT;
    case BPF_JGE:
      return BPF_JLT;
    case BPF_JLT:
      return BPF_JGE;
    case BPF_JSGT:
      return BPF_JSLE;
    case BPF_JSLE:
      return BPF_JSGT;
    case BPF_JSGE:
      return BPF_JSLT;
    case BPF_JSLT:
      return BPF_JSGE;
    default:
      KFLEX_CHECK(false && "condition has no inverse");
      return BPF_JA;
  }
}

}  // namespace

Assembler::Label Assembler::NewLabel() {
  label_pc_.push_back(-1);
  return static_cast<Label>(label_pc_.size() - 1);
}

void Assembler::Bind(Label label) {
  KFLEX_CHECK(label >= 0 && static_cast<size_t>(label) < label_pc_.size());
  KFLEX_CHECK(label_pc_[static_cast<size_t>(label)] == -1 && "label bound twice");
  label_pc_[static_cast<size_t>(label)] = static_cast<int64_t>(insns_.size());
}

void Assembler::AluImm(AluOp op, Reg dst, int32_t imm, bool is64) {
  insns_.push_back(AluImmInsn(op, dst, imm, is64));
}

void Assembler::AluReg(AluOp op, Reg dst, Reg src, bool is64) {
  insns_.push_back(AluRegInsn(op, dst, src, is64));
}

void Assembler::LoadImm64(Reg dst, uint64_t imm) {
  insns_.push_back(LdImm64Insn(dst, imm));
  insns_.push_back(LdImm64HiInsn(imm));
}

void Assembler::LoadHeapAddr(Reg dst, uint64_t heap_off) {
  insns_.push_back(LdImm64Insn(dst, heap_off, kPseudoHeapVar));
  insns_.push_back(LdImm64HiInsn(heap_off));
}

void Assembler::LoadMapPtr(Reg dst, uint32_t map_id) {
  insns_.push_back(LdImm64Insn(dst, map_id, kPseudoMapId));
  insns_.push_back(LdImm64HiInsn(map_id));
}

void Assembler::Ldx(MemSize size, Reg dst, Reg src, int16_t off) {
  insns_.push_back(LdxInsn(size, dst, src, off));
}

void Assembler::Stx(MemSize size, Reg dst, int16_t off, Reg src) {
  insns_.push_back(StxInsn(size, dst, off, src));
}

void Assembler::StImm(MemSize size, Reg dst, int16_t off, int32_t imm) {
  insns_.push_back(StImmInsn(size, dst, off, imm));
}

void Assembler::AtomicAdd(MemSize size, Reg dst, int16_t off, Reg src, bool fetch) {
  insns_.push_back(
      AtomicInsn(size, dst, off, src, BPF_ATOMIC_ADD | (fetch ? BPF_ATOMIC_FETCH : 0)));
}

void Assembler::AtomicXchg(MemSize size, Reg dst, int16_t off, Reg src) {
  insns_.push_back(AtomicInsn(size, dst, off, src, BPF_ATOMIC_XCHG));
}

void Assembler::AtomicCmpXchg(MemSize size, Reg dst, int16_t off, Reg src) {
  insns_.push_back(AtomicInsn(size, dst, off, src, BPF_ATOMIC_CMPXCHG));
}

void Assembler::EmitJump(Insn insn, Label target) {
  fixups_.push_back(Fixup{insns_.size(), target});
  insns_.push_back(insn);
}

void Assembler::Jmp(Label target) { EmitJump(JmpAlwaysInsn(0), target); }

void Assembler::JmpImm(JmpOp op, Reg dst, int32_t imm, Label target, bool is64) {
  EmitJump(JmpImmInsn(op, dst, imm, 0, is64), target);
}

void Assembler::JmpReg(JmpOp op, Reg dst, Reg src, Label target, bool is64) {
  EmitJump(JmpRegInsn(op, dst, src, 0, is64), target);
}

void Assembler::Call(int32_t helper_id) { insns_.push_back(CallInsn(helper_id)); }

void Assembler::Exit() { insns_.push_back(ExitInsn()); }

Assembler::LoopScope Assembler::LoopBegin() {
  LoopScope scope{NewLabel(), NewLabel()};
  Bind(scope.head);
  return scope;
}

void Assembler::LoopBreakIfImm(const LoopScope& loop, JmpOp op, Reg dst, int32_t imm) {
  JmpImm(op, dst, imm, loop.done);
}

void Assembler::LoopBreakIfReg(const LoopScope& loop, JmpOp op, Reg dst, Reg src) {
  JmpReg(op, dst, src, loop.done);
}

void Assembler::LoopContinue(const LoopScope& loop) { Jmp(loop.head); }

void Assembler::LoopBreak(const LoopScope& loop) { Jmp(loop.done); }

void Assembler::LoopEnd(const LoopScope& loop) {
  Jmp(loop.head);
  Bind(loop.done);
}

Assembler::IfScope Assembler::IfImm(JmpOp cond_true, Reg dst, int32_t imm) {
  IfScope scope{NewLabel(), NewLabel()};
  JmpImm(InvertJmpOp(cond_true), dst, imm, scope.else_label);
  return scope;
}

Assembler::IfScope Assembler::IfReg(JmpOp cond_true, Reg dst, Reg src) {
  IfScope scope{NewLabel(), NewLabel()};
  JmpReg(InvertJmpOp(cond_true), dst, src, scope.else_label);
  return scope;
}

void Assembler::Else(IfScope& scope) {
  Jmp(scope.end_label);
  Bind(scope.else_label);
  scope.has_else = true;
}

void Assembler::EndIf(IfScope& scope) {
  if (!scope.has_else) {
    Bind(scope.else_label);
  }
  Bind(scope.end_label);
}

StatusOr<Program> Assembler::Finish(std::string name, Hook hook, ExtensionMode mode,
                                    uint64_t heap_size) {
  for (const Fixup& fixup : fixups_) {
    int64_t pc = label_pc_[static_cast<size_t>(fixup.label)];
    if (pc < 0) {
      return InvalidArgument("unbound label in program '" + name + "'");
    }
    // eBPF jump offsets are relative to the *next* instruction.
    int64_t rel = pc - static_cast<int64_t>(fixup.insn_index) - 1;
    if (rel < std::numeric_limits<int16_t>::min() || rel > std::numeric_limits<int16_t>::max()) {
      return OutOfRange("jump offset overflow in program '" + name + "'");
    }
    insns_[fixup.insn_index].off = static_cast<int16_t>(rel);
  }
  Program program;
  program.name = std::move(name);
  program.hook = hook;
  program.mode = mode;
  program.heap_size = heap_size;
  program.insns = std::move(insns_);
  insns_.clear();
  fixups_.clear();
  label_pc_.clear();
  return program;
}

}  // namespace kflex
