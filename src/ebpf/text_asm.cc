#include "src/ebpf/text_asm.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <set>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {

namespace {

// A tiny cursor-based tokenizer over one line.
class Line {
 public:
  explicit Line(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  // Consumes `token` if it is next (longest-match callers order checks).
  bool Eat(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  // Parses an identifier [A-Za-z_][A-Za-z0-9_]*.
  std::optional<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      pos_++;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                     text_[pos_] == '_')) {
        pos_++;
      }
      return std::string(text_.substr(start, pos_ - start));
    }
    return std::nullopt;
  }

  // Parses a (possibly negative, possibly 0x-prefixed) integer.
  std::optional<int64_t> Int() {
    SkipSpace();
    size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      negative = text_[pos_] == '-';
      pos_++;
    }
    int base = 10;
    if (text_.substr(pos_, 2) == "0x" || text_.substr(pos_, 2) == "0X") {
      base = 16;
      pos_ += 2;
    }
    uint64_t value = 0;
    size_t digits_start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        break;
      }
      value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
      pos_++;
    }
    if (pos_ == digits_start) {
      pos_ = start;
      return std::nullopt;
    }
    int64_t signed_value = static_cast<int64_t>(value);
    return negative ? -signed_value : signed_value;
  }

  // Parses rN.
  std::optional<Reg> Register() {
    SkipSpace();
    size_t save = pos_;
    if (pos_ < text_.size() && (text_[pos_] == 'r' || text_[pos_] == 'R')) {
      pos_++;
      auto num = Int();
      if (num.has_value() && *num >= 0 && *num <= 10) {
        // Must not be followed by an identifier character (e.g. "r2x").
        if (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                    text_[pos_] == '_')) {
          pos_ = save;
          return std::nullopt;
        }
        return static_cast<Reg>(*num);
      }
    }
    pos_ = save;
    return std::nullopt;
  }

  // Parses a memory operand: *(u8|u16|u32|u64*)(rN +/- off). Returns false
  // without consuming on mismatch of the leading "*(".
  bool MemOperand(MemSize& size, Reg& base, int16_t& off, std::string& error) {
    SkipSpace();
    if (!Eat("*(")) {
      return false;
    }
    if (Eat("u8")) {
      size = BPF_B;
    } else if (Eat("u16")) {
      size = BPF_H;
    } else if (Eat("u32")) {
      size = BPF_W;
    } else if (Eat("u64")) {
      size = BPF_DW;
    } else {
      error = "expected u8/u16/u32/u64";
      return false;
    }
    if (!Eat("*)") && !(Eat("*") && Eat(")"))) {
      error = "expected '*)'";
      return false;
    }
    if (!Eat("(")) {
      error = "expected '('";
      return false;
    }
    auto reg = Register();
    if (!reg.has_value()) {
      error = "expected register";
      return false;
    }
    base = *reg;
    int64_t offset = 0;
    if (Eat("+")) {
      auto v = Int();
      if (!v.has_value()) {
        error = "expected offset";
        return false;
      }
      offset = *v;
    } else if (Eat("-")) {
      auto v = Int();
      if (!v.has_value()) {
        error = "expected offset";
        return false;
      }
      offset = -*v;
    }
    if (offset < INT16_MIN || offset > INT16_MAX) {
      error = "offset out of range";
      return false;
    }
    off = static_cast<int16_t>(offset);
    if (!Eat(")")) {
      error = "expected ')'";
      return false;
    }
    return true;
  }

  std::string Rest() {
    SkipSpace();
    return std::string(text_.substr(pos_));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

struct OpSpec {
  const char* token;
  AluOp op;
};

// Ordered longest-first so "<<=" is tried before "<=".
constexpr OpSpec kCompoundOps[] = {
    {"<<=", BPF_LSH}, {">>=", BPF_RSH}, {"s>>=", BPF_ARSH}, {"+=", BPF_ADD},
    {"-=", BPF_SUB},  {"*=", BPF_MUL},  {"/=", BPF_DIV},    {"%=", BPF_MOD},
    {"&=", BPF_AND},  {"|=", BPF_OR},   {"^=", BPF_XOR},
};

struct CondSpec {
  const char* token;
  JmpOp op;
};

constexpr CondSpec kConds[] = {
    {"==", BPF_JEQ},  {"!=", BPF_JNE},  {"s>=", BPF_JSGE}, {"s<=", BPF_JSLE},
    {"s>", BPF_JSGT}, {"s<", BPF_JSLT}, {">=", BPF_JGE},   {"<=", BPF_JLE},
    {">", BPF_JGT},   {"<", BPF_JLT},   {"&", BPF_JSET},
};

const HelperContract* FindHelperByName(const std::string& name) {
  // Probe the known id ranges; contracts are the single source of truth.
  for (int32_t id = 1; id <= 200; id++) {
    const HelperContract* contract = FindHelperContract(id);
    if (contract != nullptr && name == contract->name) {
      return contract;
    }
  }
  return nullptr;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : source_(source) {}

  StatusOr<Program> Parse() {
    std::string name = "kasm";
    Hook hook = Hook::kXdp;
    ExtensionMode mode = ExtensionMode::kKflex;
    uint64_t heap = 0;

    size_t line_no = 0;
    size_t start = 0;
    while (start <= source_.size()) {
      size_t end = source_.find('\n', start);
      if (end == std::string_view::npos) {
        end = source_.size();
      }
      std::string_view raw = source_.substr(start, end - start);
      start = end + 1;
      line_no++;
      // Strip comments.
      size_t semi = raw.find(';');
      if (semi != std::string_view::npos) {
        raw = raw.substr(0, semi);
      }
      Line line(raw);
      if (line.AtEnd()) {
        if (end == source_.size()) {
          break;
        }
        continue;
      }

      Status status = OkStatus();
      if (line.Eat(".name")) {
        name = line.Rest();
      } else if (line.Eat(".hook")) {
        std::string h = line.Rest();
        if (h == "xdp") {
          hook = Hook::kXdp;
        } else if (h == "sk_skb") {
          hook = Hook::kSkSkb;
        } else if (h == "tracepoint") {
          hook = Hook::kTracepoint;
        } else if (h == "lsm") {
          hook = Hook::kLsm;
        } else {
          status = InvalidArgument("unknown hook '" + h + "'");
        }
      } else if (line.Eat(".mode")) {
        std::string m = line.Rest();
        if (m == "kflex") {
          mode = ExtensionMode::kKflex;
        } else if (m == "ebpf") {
          mode = ExtensionMode::kEbpf;
        } else {
          status = InvalidArgument("unknown mode '" + m + "'");
        }
      } else if (line.Eat(".heap")) {
        auto v = line.Int();
        if (!v.has_value() || *v <= 0) {
          status = InvalidArgument("bad .heap size");
        } else {
          heap = static_cast<uint64_t>(*v);
        }
      } else {
        status = ParseStatement(line);
      }
      if (!status.ok()) {
        return Status(status.code(),
                      "line " + std::to_string(line_no) + ": " + status.message());
      }
      if (end == source_.size()) {
        break;
      }
    }
    return asm_.Finish(name, hook, mode, heap);
  }

 private:
  Assembler::Label LabelFor(const std::string& name) {
    auto it = labels_.find(name);
    if (it != labels_.end()) {
      return it->second;
    }
    Assembler::Label label = asm_.NewLabel();
    labels_[name] = label;
    return label;
  }

  Status ParseStatement(Line& line) {
    // goto / call / exit / lock / store / label / register statement.
    if (line.Eat("goto")) {
      auto label = line.Ident();
      if (!label.has_value()) {
        return InvalidArgument("goto needs a label");
      }
      asm_.Jmp(LabelFor(*label));
      return OkStatus();
    }
    if (line.Eat("exit")) {
      asm_.Exit();
      return OkStatus();
    }
    if (line.Eat("call")) {
      auto id = line.Int();
      if (id.has_value()) {
        asm_.Call(static_cast<int32_t>(*id));
        return OkStatus();
      }
      auto ident = line.Ident();
      if (!ident.has_value()) {
        return InvalidArgument("call needs a helper id or name");
      }
      const HelperContract* contract = FindHelperByName(*ident);
      if (contract == nullptr) {
        return InvalidArgument("unknown helper '" + *ident + "'");
      }
      asm_.Call(contract->id);
      return OkStatus();
    }
    if (line.Eat("if")) {
      return ParseCond(line);
    }
    if (line.Eat("lock")) {
      MemSize size;
      Reg base;
      int16_t off;
      std::string error;
      if (!line.MemOperand(size, base, off, error)) {
        return InvalidArgument("lock: " + (error.empty() ? "expected memory operand" : error));
      }
      if (!line.Eat("+=")) {
        return InvalidArgument("lock supports '+=' only");
      }
      auto src = line.Register();
      if (!src.has_value()) {
        return InvalidArgument("lock: expected source register");
      }
      asm_.AtomicAdd(size, base, off, *src);
      return OkStatus();
    }
    {
      // Store: *(SZ*)(rD + off) = rS | imm
      MemSize size;
      Reg base;
      int16_t off;
      std::string error;
      Line probe = line;
      if (probe.MemOperand(size, base, off, error)) {
        if (!probe.Eat("=")) {
          return InvalidArgument("store: expected '='");
        }
        auto src = probe.Register();
        if (src.has_value()) {
          asm_.Stx(size, base, off, *src);
          return OkStatus();
        }
        auto imm = probe.Int();
        if (imm.has_value()) {
          asm_.StImm(size, base, off, static_cast<int32_t>(*imm));
          return OkStatus();
        }
        return InvalidArgument("store: expected register or immediate");
      }
      if (!error.empty()) {
        return InvalidArgument("store: " + error);
      }
    }

    // rD ... forms.
    auto dst = line.Register();
    if (dst.has_value()) {
      if (line.Eat("=")) {
        return ParseAssignment(line, *dst);
      }
      for (const OpSpec& spec : kCompoundOps) {
        if (line.Eat(spec.token)) {
          auto src = line.Register();
          if (src.has_value()) {
            asm_.AluReg(spec.op, *dst, *src);
            return OkStatus();
          }
          auto imm = line.Int();
          if (imm.has_value()) {
            asm_.AluImm(spec.op, *dst, static_cast<int32_t>(*imm));
            return OkStatus();
          }
          return InvalidArgument("expected register or immediate operand");
        }
      }
      return InvalidArgument("unknown operator after register");
    }

    // label:
    auto ident = line.Ident();
    if (ident.has_value() && line.Eat(":")) {
      Assembler::Label label = LabelFor(*ident);
      if (bound_.count(*ident) != 0) {
        return InvalidArgument("label '" + *ident + "' bound twice");
      }
      bound_.insert(*ident);
      asm_.Bind(label);
      return OkStatus();
    }
    return InvalidArgument("unparseable statement");
  }

  Status ParseAssignment(Line& line, Reg dst) {
    // rD = -rD
    if (line.Eat("-r") || line.Eat("-R")) {
      auto n = line.Int();
      if (n.has_value() && *n == dst) {
        asm_.Neg(dst);
        return OkStatus();
      }
      return InvalidArgument("only 'rD = -rD' negation is supported");
    }
    if (line.Eat("heap")) {
      auto off = line.Int();
      if (!off.has_value() || *off < 0) {
        return InvalidArgument("heap address needs a non-negative offset");
      }
      asm_.LoadHeapAddr(dst, static_cast<uint64_t>(*off));
      return OkStatus();
    }
    if (line.Eat("imm64")) {
      auto v = line.Int();
      if (!v.has_value()) {
        return InvalidArgument("imm64 needs a value");
      }
      asm_.LoadImm64(dst, static_cast<uint64_t>(*v));
      return OkStatus();
    }
    if (line.Eat("map")) {
      auto id = line.Int();
      if (!id.has_value() || *id <= 0) {
        return InvalidArgument("map needs a positive id");
      }
      asm_.LoadMapPtr(dst, static_cast<uint32_t>(*id));
      return OkStatus();
    }
    {
      MemSize size;
      Reg base;
      int16_t off;
      std::string error;
      if (line.MemOperand(size, base, off, error)) {
        asm_.Ldx(size, dst, base, off);
        return OkStatus();
      }
      if (!error.empty()) {
        return InvalidArgument("load: " + error);
      }
    }
    auto src = line.Register();
    if (src.has_value()) {
      asm_.Mov(dst, *src);
      return OkStatus();
    }
    auto imm = line.Int();
    if (imm.has_value()) {
      if (*imm >= INT32_MIN && *imm <= INT32_MAX) {
        asm_.MovImm(dst, static_cast<int32_t>(*imm));
      } else {
        asm_.LoadImm64(dst, static_cast<uint64_t>(*imm));
      }
      return OkStatus();
    }
    return InvalidArgument("unparseable assignment source");
  }

  Status ParseCond(Line& line) {
    auto lhs = line.Register();
    if (!lhs.has_value()) {
      return InvalidArgument("if needs a register on the left");
    }
    const CondSpec* cond = nullptr;
    for (const CondSpec& spec : kConds) {
      if (line.Eat(spec.token)) {
        cond = &spec;
        break;
      }
    }
    if (cond == nullptr) {
      return InvalidArgument("unknown comparison operator");
    }
    auto rhs_reg = line.Register();
    std::optional<int64_t> rhs_imm;
    if (!rhs_reg.has_value()) {
      rhs_imm = line.Int();
      if (!rhs_imm.has_value()) {
        return InvalidArgument("if needs a register or immediate on the right");
      }
    }
    if (!line.Eat("goto")) {
      return InvalidArgument("if needs 'goto LABEL'");
    }
    auto label = line.Ident();
    if (!label.has_value()) {
      return InvalidArgument("goto needs a label");
    }
    if (rhs_reg.has_value()) {
      asm_.JmpReg(cond->op, *lhs, *rhs_reg, LabelFor(*label));
    } else {
      asm_.JmpImm(cond->op, *lhs, static_cast<int32_t>(*rhs_imm), LabelFor(*label));
    }
    return OkStatus();
  }

  std::string_view source_;
  Assembler asm_;
  std::map<std::string, Assembler::Label> labels_;
  std::set<std::string> bound_;
};

}  // namespace

StatusOr<Program> ParseTextProgram(std::string_view source) {
  Parser parser(source);
  return parser.Parse();
}

}  // namespace kflex
