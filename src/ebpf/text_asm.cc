#include "src/ebpf/text_asm.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <set>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {

namespace {

// A tiny cursor-based tokenizer over one line.
class Line {
 public:
  explicit Line(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  // Consumes `token` if it is next (longest-match callers order checks).
  bool Eat(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  // Parses an identifier [A-Za-z_][A-Za-z0-9_]*.
  std::optional<std::string> Ident() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      pos_++;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                     text_[pos_] == '_')) {
        pos_++;
      }
      return std::string(text_.substr(start, pos_ - start));
    }
    return std::nullopt;
  }

  // Parses a (possibly negative, possibly 0x-prefixed) integer.
  std::optional<int64_t> Int() {
    SkipSpace();
    size_t start = pos_;
    bool negative = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      negative = text_[pos_] == '-';
      pos_++;
    }
    int base = 10;
    if (text_.substr(pos_, 2) == "0x" || text_.substr(pos_, 2) == "0X") {
      base = 16;
      pos_ += 2;
    }
    uint64_t value = 0;
    size_t digits_start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        break;
      }
      value = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
      pos_++;
    }
    if (pos_ == digits_start) {
      pos_ = start;
      return std::nullopt;
    }
    int64_t signed_value = static_cast<int64_t>(value);
    return negative ? -signed_value : signed_value;
  }

  // Parses rN.
  std::optional<Reg> Register() { return RegisterPrefixed('r', 'R'); }

  // Parses wN: the 32-bit view of rN, selecting ALU32/JMP32 encodings.
  std::optional<Reg> RegisterW() { return RegisterPrefixed('w', 'W'); }

  std::optional<Reg> RegisterPrefixed(char lo, char hi) {
    SkipSpace();
    size_t save = pos_;
    if (pos_ < text_.size() && (text_[pos_] == lo || text_[pos_] == hi)) {
      pos_++;
      auto num = Int();
      if (num.has_value() && *num >= 0 && *num <= 10) {
        // Must not be followed by an identifier character (e.g. "r2x").
        if (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                    text_[pos_] == '_')) {
          pos_ = save;
          return std::nullopt;
        }
        return static_cast<Reg>(*num);
      }
    }
    pos_ = save;
    return std::nullopt;
  }

  // Parses a memory operand: *(u8|u16|u32|u64*)(rN +/- off). Returns false
  // without consuming on mismatch of the leading "*(".
  bool MemOperand(MemSize& size, Reg& base, int16_t& off, std::string& error) {
    SkipSpace();
    if (!Eat("*(")) {
      return false;
    }
    if (Eat("u8")) {
      size = BPF_B;
    } else if (Eat("u16")) {
      size = BPF_H;
    } else if (Eat("u32")) {
      size = BPF_W;
    } else if (Eat("u64")) {
      size = BPF_DW;
    } else {
      error = "expected u8/u16/u32/u64";
      return false;
    }
    if (!Eat("*)") && !(Eat("*") && Eat(")"))) {
      error = "expected '*)'";
      return false;
    }
    if (!Eat("(")) {
      error = "expected '('";
      return false;
    }
    auto reg = Register();
    if (!reg.has_value()) {
      error = "expected register";
      return false;
    }
    base = *reg;
    int64_t offset = 0;
    if (Eat("+")) {
      auto v = Int();
      if (!v.has_value()) {
        error = "expected offset";
        return false;
      }
      offset = *v;
    } else if (Eat("-")) {
      auto v = Int();
      if (!v.has_value()) {
        error = "expected offset";
        return false;
      }
      offset = -*v;
    }
    if (offset < INT16_MIN || offset > INT16_MAX) {
      error = "offset out of range";
      return false;
    }
    off = static_cast<int16_t>(offset);
    if (!Eat(")")) {
      error = "expected ')'";
      return false;
    }
    return true;
  }

  std::string Rest() {
    SkipSpace();
    return std::string(text_.substr(pos_));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

struct OpSpec {
  const char* token;
  AluOp op;
};

// Ordered longest-first so "<<=" is tried before "<=".
constexpr OpSpec kCompoundOps[] = {
    {"<<=", BPF_LSH}, {">>=", BPF_RSH}, {"s>>=", BPF_ARSH}, {"+=", BPF_ADD},
    {"-=", BPF_SUB},  {"*=", BPF_MUL},  {"/=", BPF_DIV},    {"%=", BPF_MOD},
    {"&=", BPF_AND},  {"|=", BPF_OR},   {"^=", BPF_XOR},
};

struct CondSpec {
  const char* token;
  JmpOp op;
};

constexpr CondSpec kConds[] = {
    {"==", BPF_JEQ},  {"!=", BPF_JNE},  {"s>=", BPF_JSGE}, {"s<=", BPF_JSLE},
    {"s>", BPF_JSGT}, {"s<", BPF_JSLT}, {">=", BPF_JGE},   {"<=", BPF_JLE},
    {">", BPF_JGT},   {"<", BPF_JLT},   {"&", BPF_JSET},
};

const HelperContract* FindHelperByName(const std::string& name) {
  // Probe the known id ranges; contracts are the single source of truth.
  for (int32_t id = 1; id <= 200; id++) {
    const HelperContract* contract = FindHelperContract(id);
    if (contract != nullptr && name == contract->name) {
      return contract;
    }
  }
  return nullptr;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : source_(source) {}

  StatusOr<Program> Parse() {
    std::string name = "kasm";
    Hook hook = Hook::kXdp;
    ExtensionMode mode = ExtensionMode::kKflex;
    uint64_t heap = 0;

    size_t line_no = 0;
    size_t start = 0;
    while (start <= source_.size()) {
      size_t end = source_.find('\n', start);
      if (end == std::string_view::npos) {
        end = source_.size();
      }
      std::string_view raw = source_.substr(start, end - start);
      start = end + 1;
      line_no++;
      // Strip comments.
      size_t semi = raw.find(';');
      if (semi != std::string_view::npos) {
        raw = raw.substr(0, semi);
      }
      Line line(raw);
      if (line.AtEnd()) {
        if (end == source_.size()) {
          break;
        }
        continue;
      }

      Status status = OkStatus();
      if (line.Eat(".name")) {
        name = line.Rest();
      } else if (line.Eat(".hook")) {
        std::string h = line.Rest();
        if (h == "xdp") {
          hook = Hook::kXdp;
        } else if (h == "sk_skb") {
          hook = Hook::kSkSkb;
        } else if (h == "tracepoint") {
          hook = Hook::kTracepoint;
        } else if (h == "lsm") {
          hook = Hook::kLsm;
        } else {
          status = InvalidArgument("unknown hook '" + h + "'");
        }
      } else if (line.Eat(".mode")) {
        std::string m = line.Rest();
        if (m == "kflex") {
          mode = ExtensionMode::kKflex;
        } else if (m == "ebpf") {
          mode = ExtensionMode::kEbpf;
        } else {
          status = InvalidArgument("unknown mode '" + m + "'");
        }
      } else if (line.Eat(".heap")) {
        auto v = line.Int();
        if (!v.has_value() || *v <= 0) {
          status = InvalidArgument("bad .heap size");
        } else {
          heap = static_cast<uint64_t>(*v);
        }
      } else {
        status = ParseStatement(line);
      }
      if (!status.ok()) {
        return Status(status.code(),
                      "line " + std::to_string(line_no) + ": " + status.message());
      }
      if (end == source_.size()) {
        break;
      }
    }
    return asm_.Finish(name, hook, mode, heap);
  }

 private:
  Assembler::Label LabelFor(const std::string& name) {
    auto it = labels_.find(name);
    if (it != labels_.end()) {
      return it->second;
    }
    Assembler::Label label = asm_.NewLabel();
    labels_[name] = label;
    return label;
  }

  Status ParseStatement(Line& line) {
    // goto / call / exit / lock / store / label / register statement.
    if (line.Eat("goto")) {
      auto label = line.Ident();
      if (!label.has_value()) {
        return InvalidArgument("goto needs a label");
      }
      asm_.Jmp(LabelFor(*label));
      return OkStatus();
    }
    if (line.Eat("exit")) {
      asm_.Exit();
      return OkStatus();
    }
    if (line.Eat("call")) {
      auto id = line.Int();
      if (id.has_value()) {
        asm_.Call(static_cast<int32_t>(*id));
        return OkStatus();
      }
      auto ident = line.Ident();
      if (!ident.has_value()) {
        return InvalidArgument("call needs a helper id or name");
      }
      const HelperContract* contract = FindHelperByName(*ident);
      if (contract == nullptr) {
        return InvalidArgument("unknown helper '" + *ident + "'");
      }
      asm_.Call(contract->id);
      return OkStatus();
    }
    if (line.Eat("if")) {
      return ParseCond(line);
    }
    if (line.Eat("lock")) {
      MemSize size;
      Reg base;
      int16_t off;
      std::string error;
      if (!line.MemOperand(size, base, off, error)) {
        return InvalidArgument("lock: " + (error.empty() ? "expected memory operand" : error));
      }
      if (!line.Eat("+=")) {
        return InvalidArgument("lock supports '+=' only");
      }
      auto src = line.Register();
      if (!src.has_value()) {
        return InvalidArgument("lock: expected source register");
      }
      asm_.AtomicAdd(size, base, off, *src);
      return OkStatus();
    }
    {
      // Store: *(SZ*)(rD + off) = rS | imm
      MemSize size;
      Reg base;
      int16_t off;
      std::string error;
      Line probe = line;
      if (probe.MemOperand(size, base, off, error)) {
        if (!probe.Eat("=")) {
          return InvalidArgument("store: expected '='");
        }
        auto src = probe.Register();
        if (src.has_value()) {
          asm_.Stx(size, base, off, *src);
          return OkStatus();
        }
        auto imm = probe.Int();
        if (imm.has_value()) {
          asm_.StImm(size, base, off, static_cast<int32_t>(*imm));
          return OkStatus();
        }
        return InvalidArgument("store: expected register or immediate");
      }
      if (!error.empty()) {
        return InvalidArgument("store: " + error);
      }
    }

    // rD ... forms.
    auto dst = line.Register();
    if (dst.has_value()) {
      if (line.Eat("=")) {
        return ParseAssignment(line, *dst);
      }
      for (const OpSpec& spec : kCompoundOps) {
        if (line.Eat(spec.token)) {
          auto src = line.Register();
          if (src.has_value()) {
            asm_.AluReg(spec.op, *dst, *src);
            return OkStatus();
          }
          auto imm = line.Int();
          if (imm.has_value()) {
            asm_.AluImm(spec.op, *dst, static_cast<int32_t>(*imm));
            return OkStatus();
          }
          return InvalidArgument("expected register or immediate operand");
        }
      }
      return InvalidArgument("unknown operator after register");
    }

    // wD ... forms: the 32-bit ALU encodings.
    auto wdst = line.RegisterW();
    if (wdst.has_value()) {
      if (line.Eat("=")) {
        return ParseAssignment32(line, *wdst);
      }
      for (const OpSpec& spec : kCompoundOps) {
        if (line.Eat(spec.token)) {
          auto src = line.RegisterW();
          if (src.has_value()) {
            asm_.AluReg(spec.op, *wdst, *src, /*is64=*/false);
            return OkStatus();
          }
          auto imm = line.Int();
          if (imm.has_value()) {
            asm_.AluImm(spec.op, *wdst, static_cast<int32_t>(*imm), /*is64=*/false);
            return OkStatus();
          }
          return InvalidArgument("expected w-register or immediate operand");
        }
      }
      return InvalidArgument("unknown operator after register");
    }

    // label:
    auto ident = line.Ident();
    if (ident.has_value() && line.Eat(":")) {
      Assembler::Label label = LabelFor(*ident);
      if (bound_.count(*ident) != 0) {
        return InvalidArgument("label '" + *ident + "' bound twice");
      }
      bound_.insert(*ident);
      asm_.Bind(label);
      return OkStatus();
    }
    return InvalidArgument("unparseable statement");
  }

  Status ParseAssignment(Line& line, Reg dst) {
    // rD = -rD
    if (line.Eat("-r") || line.Eat("-R")) {
      auto n = line.Int();
      if (n.has_value() && *n == dst) {
        asm_.Neg(dst);
        return OkStatus();
      }
      return InvalidArgument("only 'rD = -rD' negation is supported");
    }
    // Atomic read-modify-write assignments: the LHS register supplies the
    // operand and receives the memory's old value (cmpxchg compares r0).
    // Checked before the keyword forms; "lock_" cannot collide with them.
    if (line.Eat("lock_fetch_add")) {
      return ParseAtomicAssign(line, dst, AtomicForm::kFetchAdd);
    }
    if (line.Eat("lock_xchg")) {
      return ParseAtomicAssign(line, dst, AtomicForm::kXchg);
    }
    if (line.Eat("lock_cmpxchg")) {
      return ParseAtomicAssign(line, dst, AtomicForm::kCmpXchg);
    }
    if (line.Eat("heap")) {
      auto off = line.Int();
      if (!off.has_value() || *off < 0) {
        return InvalidArgument("heap address needs a non-negative offset");
      }
      asm_.LoadHeapAddr(dst, static_cast<uint64_t>(*off));
      return OkStatus();
    }
    if (line.Eat("imm64")) {
      auto v = line.Int();
      if (!v.has_value()) {
        return InvalidArgument("imm64 needs a value");
      }
      asm_.LoadImm64(dst, static_cast<uint64_t>(*v));
      return OkStatus();
    }
    if (line.Eat("map")) {
      auto id = line.Int();
      if (!id.has_value() || *id <= 0) {
        return InvalidArgument("map needs a positive id");
      }
      asm_.LoadMapPtr(dst, static_cast<uint32_t>(*id));
      return OkStatus();
    }
    {
      MemSize size;
      Reg base;
      int16_t off;
      std::string error;
      if (line.MemOperand(size, base, off, error)) {
        asm_.Ldx(size, dst, base, off);
        return OkStatus();
      }
      if (!error.empty()) {
        return InvalidArgument("load: " + error);
      }
    }
    auto src = line.Register();
    if (src.has_value()) {
      asm_.Mov(dst, *src);
      return OkStatus();
    }
    auto imm = line.Int();
    if (imm.has_value()) {
      if (*imm >= INT32_MIN && *imm <= INT32_MAX) {
        asm_.MovImm(dst, static_cast<int32_t>(*imm));
      } else {
        asm_.LoadImm64(dst, static_cast<uint64_t>(*imm));
      }
      return OkStatus();
    }
    return InvalidArgument("unparseable assignment source");
  }

  // wD = wS | imm | -wD (ALU32 MOV / NEG).
  Status ParseAssignment32(Line& line, Reg dst) {
    if (line.Eat("-w") || line.Eat("-W")) {
      auto n = line.Int();
      if (n.has_value() && *n == dst) {
        asm_.Neg(dst, /*is64=*/false);
        return OkStatus();
      }
      return InvalidArgument("only 'wD = -wD' negation is supported");
    }
    auto src = line.RegisterW();
    if (src.has_value()) {
      asm_.AluReg(BPF_MOV, dst, *src, /*is64=*/false);
      return OkStatus();
    }
    auto imm = line.Int();
    if (imm.has_value()) {
      if (*imm < INT32_MIN || *imm > INT32_MAX) {
        return InvalidArgument("32-bit move immediate out of range");
      }
      asm_.AluImm(BPF_MOV, dst, static_cast<int32_t>(*imm), /*is64=*/false);
      return OkStatus();
    }
    return InvalidArgument("unparseable 32-bit assignment source");
  }

  enum class AtomicForm { kFetchAdd, kXchg, kCmpXchg };

  Status ParseAtomicAssign(Line& line, Reg operand, AtomicForm form) {
    MemSize size;
    Reg base;
    int16_t off;
    std::string error;
    if (!line.MemOperand(size, base, off, error)) {
      return InvalidArgument("atomic: " +
                             (error.empty() ? "expected memory operand" : error));
    }
    switch (form) {
      case AtomicForm::kFetchAdd:
        asm_.AtomicAdd(size, base, off, operand, /*fetch=*/true);
        break;
      case AtomicForm::kXchg:
        asm_.AtomicXchg(size, base, off, operand);
        break;
      case AtomicForm::kCmpXchg:
        asm_.AtomicCmpXchg(size, base, off, operand);
        break;
    }
    return OkStatus();
  }

  Status ParseCond(Line& line) {
    bool is64 = true;
    auto lhs = line.Register();
    if (!lhs.has_value()) {
      lhs = line.RegisterW();
      if (lhs.has_value()) {
        is64 = false;  // JMP32: compare the low 32 bits
      } else {
        return InvalidArgument("if needs a register on the left");
      }
    }
    const CondSpec* cond = nullptr;
    for (const CondSpec& spec : kConds) {
      if (line.Eat(spec.token)) {
        cond = &spec;
        break;
      }
    }
    if (cond == nullptr) {
      return InvalidArgument("unknown comparison operator");
    }
    auto rhs_reg = is64 ? line.Register() : line.RegisterW();
    std::optional<int64_t> rhs_imm;
    if (!rhs_reg.has_value()) {
      rhs_imm = line.Int();
      if (!rhs_imm.has_value()) {
        return InvalidArgument("if needs a matching register or immediate on the right");
      }
    }
    if (!line.Eat("goto")) {
      return InvalidArgument("if needs 'goto LABEL'");
    }
    auto label = line.Ident();
    if (!label.has_value()) {
      return InvalidArgument("goto needs a label");
    }
    if (rhs_reg.has_value()) {
      asm_.JmpReg(cond->op, *lhs, *rhs_reg, LabelFor(*label), is64);
    } else {
      asm_.JmpImm(cond->op, *lhs, static_cast<int32_t>(*rhs_imm), LabelFor(*label), is64);
    }
    return OkStatus();
  }

  std::string_view source_;
  Assembler asm_;
  std::map<std::string, Assembler::Label> labels_;
  std::set<std::string> bound_;
};

// ---- Writer ----------------------------------------------------------------

const char* SizeName(uint8_t size_field) {
  switch (size_field) {
    case BPF_B:
      return "u8";
    case BPF_H:
      return "u16";
    case BPF_W:
      return "u32";
    case BPF_DW:
      return "u64";
  }
  return nullptr;
}

const char* AluToken(uint8_t op) {
  switch (op) {
    case BPF_ADD:
      return "+=";
    case BPF_SUB:
      return "-=";
    case BPF_MUL:
      return "*=";
    case BPF_DIV:
      return "/=";
    case BPF_MOD:
      return "%=";
    case BPF_AND:
      return "&=";
    case BPF_OR:
      return "|=";
    case BPF_XOR:
      return "^=";
    case BPF_LSH:
      return "<<=";
    case BPF_RSH:
      return ">>=";
    case BPF_ARSH:
      return "s>>=";
  }
  return nullptr;
}

const char* CondToken(uint8_t op) {
  switch (op) {
    case BPF_JEQ:
      return "==";
    case BPF_JNE:
      return "!=";
    case BPF_JGT:
      return ">";
    case BPF_JGE:
      return ">=";
    case BPF_JLT:
      return "<";
    case BPF_JLE:
      return "<=";
    case BPF_JSGT:
      return "s>";
    case BPF_JSGE:
      return "s>=";
    case BPF_JSLT:
      return "s<";
    case BPF_JSLE:
      return "s<=";
    case BPF_JSET:
      return "&";
  }
  return nullptr;
}

std::string RegName(uint8_t reg, bool is64) {
  return (is64 ? "r" : "w") + std::to_string(reg);
}

// Renders "*(uN*)(rB + off)"; negative offsets become "(rB - X)", which the
// parser's MemOperand accepts symmetrically.
std::string MemRef(uint8_t size_field, uint8_t base, int16_t off) {
  std::string s = "*(";
  s += SizeName(size_field);
  s += "*)(r";
  s += std::to_string(base);
  if (off < 0) {
    s += " - " + std::to_string(-static_cast<int32_t>(off));
  } else {
    s += " + " + std::to_string(off);
  }
  s += ")";
  return s;
}

std::string HexImm64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

Status Inexpressible(size_t index, const Insn& insn, const std::string& why) {
  return InvalidArgument("insn " + std::to_string(index) + " (" + InsnToString(insn) +
                         ") not expressible in text assembly: " + why);
}

}  // namespace

StatusOr<Program> ParseTextProgram(std::string_view source) {
  Parser parser(source);
  return parser.Parse();
}

StatusOr<std::string> ProgramToTextAsm(const Program& program) {
  const std::vector<Insn>& insns = program.insns;
  if (program.name.find('\n') != std::string::npos ||
      program.name.find(';') != std::string::npos) {
    return InvalidArgument("program name not expressible in text assembly");
  }

  // Mark the data slots of LD_IMM64 pairs; they are not instructions.
  std::vector<bool> is_hi_slot(insns.size(), false);
  for (size_t i = 0; i < insns.size(); i++) {
    if (is_hi_slot[i]) {
      continue;
    }
    if (insns[i].IsLdImm64()) {
      if (i + 1 >= insns.size()) {
        return InvalidArgument("truncated ld_imm64 pair at insn " + std::to_string(i));
      }
      is_hi_slot[i + 1] = true;
    }
  }

  // Discover jump targets and name them L0, L1, ... in ascending target
  // order, so rendering is deterministic (the round-trip fixpoint depends on
  // the parsed program re-rendering byte for byte).
  std::set<size_t> targets;
  for (size_t i = 0; i < insns.size(); i++) {
    if (is_hi_slot[i]) {
      continue;
    }
    const Insn& insn = insns[i];
    if (insn.IsCondJmp() || insn.IsUncondJmp()) {
      int64_t target = static_cast<int64_t>(i) + 1 + insn.off;
      if (target < 0 || target > static_cast<int64_t>(insns.size())) {
        return InvalidArgument("jump target out of range at insn " + std::to_string(i));
      }
      if (target < static_cast<int64_t>(insns.size()) && is_hi_slot[target]) {
        return InvalidArgument("jump into ld_imm64 pair at insn " + std::to_string(i));
      }
      targets.insert(static_cast<size_t>(target));
    }
  }
  std::map<size_t, std::string> label_names;
  {
    size_t next = 0;
    for (size_t t : targets) {
      label_names[t] = "L" + std::to_string(next++);
    }
  }

  std::string out;
  out += ".name " + program.name + "\n";
  out += ".hook " + std::string(HookName(program.hook)) + "\n";
  out += ".mode " + std::string(program.mode == ExtensionMode::kKflex ? "kflex" : "ebpf") + "\n";
  if (program.heap_size > 0) {
    out += ".heap " + std::to_string(program.heap_size) + "\n";
  }
  out += "\n";

  for (size_t i = 0; i < insns.size(); i++) {
    if (is_hi_slot[i]) {
      continue;
    }
    auto label_it = label_names.find(i);
    if (label_it != label_names.end()) {
      out += label_it->second + ":\n";
    }
    const Insn& insn = insns[i];
    if (insn.dst > kMaxUserReg || insn.src > kMaxUserReg) {
      if (!insn.IsLdImm64()) {  // ld_imm64 carries a pseudo tag in src.
        return Inexpressible(i, insn, "uses a reserved register");
      }
    }
    switch (insn.Class()) {
      case BPF_ALU:
      case BPF_ALU64: {
        const bool is64 = insn.Class() == BPF_ALU64;
        const uint8_t op = insn.AluOpField();
        if (insn.off != 0) {
          return Inexpressible(i, insn, "nonzero offset on ALU op");
        }
        const std::string dst = RegName(insn.dst, is64);
        if (op == BPF_NEG) {
          if (insn.SrcField() != BPF_K || insn.src != 0 || insn.imm != 0) {
            return Inexpressible(i, insn, "malformed NEG encoding");
          }
          out += dst + " = -" + dst + "\n";
          break;
        }
        const bool use_reg = insn.SrcField() == BPF_X;
        if (use_reg && insn.imm != 0) {
          return Inexpressible(i, insn, "register ALU op with nonzero immediate");
        }
        if (!use_reg && insn.src != 0) {
          return Inexpressible(i, insn, "immediate ALU op with nonzero src register");
        }
        const std::string rhs =
            use_reg ? RegName(insn.src, is64) : std::to_string(insn.imm);
        if (op == BPF_MOV) {
          out += dst + " = " + rhs + "\n";
        } else {
          const char* token = AluToken(op);
          if (token == nullptr) {
            return Inexpressible(i, insn, "unknown ALU op");
          }
          out += dst + " " + token + " " + rhs + "\n";
        }
        break;
      }
      case BPF_LD: {
        if (!insn.IsLdImm64()) {
          return Inexpressible(i, insn, "Kie instrumentation pseudo-instruction");
        }
        const Insn& hi = insns[i + 1];
        if (insn.off != 0 || hi.opcode != 0 || hi.dst != 0 || hi.src != 0 || hi.off != 0) {
          return Inexpressible(i, insn, "malformed ld_imm64 pair");
        }
        const uint64_t value = LdImm64Value(insn, hi);
        const std::string dst = RegName(insn.dst, /*is64=*/true);
        switch (insn.src) {
          case kPseudoNone:
            out += dst + " = imm64 " + HexImm64(value) + "\n";
            break;
          case kPseudoHeapVar:
            if (value > static_cast<uint64_t>(INT64_MAX)) {
              return Inexpressible(i, insn, "heap offset out of range");
            }
            out += dst + " = heap " + std::to_string(value) + "\n";
            break;
          case kPseudoMapId:
            if (value == 0 || value > UINT32_MAX) {
              return Inexpressible(i, insn, "map id out of range");
            }
            out += dst + " = map " + std::to_string(value) + "\n";
            break;
          default:
            return Inexpressible(i, insn, "unknown ld_imm64 pseudo tag");
        }
        break;
      }
      case BPF_LDX: {
        if (!insn.IsLoad() || SizeName(insn.SizeField()) == nullptr) {
          return Inexpressible(i, insn, "unknown load encoding");
        }
        if (insn.imm != 0) {
          return Inexpressible(i, insn, "load with nonzero immediate");
        }
        out += RegName(insn.dst, /*is64=*/true) + " = " +
               MemRef(insn.SizeField(), insn.src, insn.off) + "\n";
        break;
      }
      case BPF_ST: {
        if (!insn.IsStore()) {
          return Inexpressible(i, insn, "unknown store encoding");
        }
        if (insn.src != 0) {
          return Inexpressible(i, insn, "immediate store with nonzero src register");
        }
        out += MemRef(insn.SizeField(), insn.dst, insn.off) + " = " +
               std::to_string(insn.imm) + "\n";
        break;
      }
      case BPF_STX: {
        if (insn.IsStore()) {
          if (insn.imm != 0) {
            return Inexpressible(i, insn, "register store with nonzero immediate");
          }
          out += MemRef(insn.SizeField(), insn.dst, insn.off) + " = " +
                 RegName(insn.src, /*is64=*/true) + "\n";
          break;
        }
        if (!insn.IsAtomic()) {
          return Inexpressible(i, insn, "unknown STX encoding");
        }
        const std::string mem = MemRef(insn.SizeField(), insn.dst, insn.off);
        const std::string src = RegName(insn.src, /*is64=*/true);
        switch (insn.imm) {
          case BPF_ATOMIC_ADD:
            out += "lock " + mem + " += " + src + "\n";
            break;
          case BPF_ATOMIC_ADD | BPF_ATOMIC_FETCH:
            out += src + " = lock_fetch_add " + mem + "\n";
            break;
          case BPF_ATOMIC_XCHG:
            out += src + " = lock_xchg " + mem + "\n";
            break;
          case BPF_ATOMIC_CMPXCHG:
            out += src + " = lock_cmpxchg " + mem + "\n";
            break;
          default:
            return Inexpressible(i, insn, "unknown atomic operation");
        }
        break;
      }
      case BPF_JMP:
      case BPF_JMP32: {
        if (insn.IsExit()) {
          if (insn.dst != 0 || insn.src != 0 || insn.off != 0 || insn.imm != 0) {
            return Inexpressible(i, insn, "malformed exit");
          }
          out += "exit\n";
          break;
        }
        if (insn.IsCall()) {
          if (insn.dst != 0 || insn.src != 0 || insn.off != 0) {
            return Inexpressible(i, insn, "malformed call");
          }
          out += "call " + std::to_string(insn.imm) + "\n";
          break;
        }
        if (insn.IsUncondJmp()) {
          if (insn.dst != 0 || insn.src != 0 || insn.imm != 0) {
            return Inexpressible(i, insn, "malformed goto");
          }
          out += "goto " + label_names.at(i + 1 + insn.off) + "\n";
          break;
        }
        if (!insn.IsCondJmp()) {
          return Inexpressible(i, insn, "unknown jump encoding");
        }
        const bool is64 = insn.Class() == BPF_JMP;
        const char* token = CondToken(insn.AluOpField());
        if (token == nullptr) {
          return Inexpressible(i, insn, "unknown comparison");
        }
        const bool use_reg = insn.SrcField() == BPF_X;
        if (use_reg && insn.imm != 0) {
          return Inexpressible(i, insn, "register compare with nonzero immediate");
        }
        if (!use_reg && insn.src != 0) {
          return Inexpressible(i, insn, "immediate compare with nonzero src register");
        }
        const std::string rhs =
            use_reg ? RegName(insn.src, is64) : std::to_string(insn.imm);
        out += "if " + RegName(insn.dst, is64) + " " + token + " " + rhs + " goto " +
               label_names.at(i + 1 + insn.off) + "\n";
        break;
      }
      default:
        return Inexpressible(i, insn, "unknown instruction class");
    }
  }
  auto trailing = label_names.find(insns.size());
  if (trailing != label_names.end()) {
    out += trailing->second + ":\n";
  }
  return out;
}

}  // namespace kflex
