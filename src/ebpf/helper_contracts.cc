#include "src/ebpf/helper_ids.h"

namespace kflex {

namespace {

using A = HelperArgType;

constexpr HelperContract kContracts[] = {
    {kHelperMapLookupElem,
     "bpf_map_lookup_elem",
     {A::kConstMapPtr, A::kStackMem, A::kNone, A::kNone, A::kNone},
     HelperRetType::kMapValueOrNull},
    {kHelperMapUpdateElem,
     "bpf_map_update_elem",
     {A::kConstMapPtr, A::kStackMem, A::kStackMem, A::kScalar, A::kNone},
     HelperRetType::kScalar},
    {kHelperMapDeleteElem,
     "bpf_map_delete_elem",
     {A::kConstMapPtr, A::kStackMem, A::kNone, A::kNone, A::kNone},
     HelperRetType::kScalar},
    {kHelperKtimeGetNs,
     "bpf_ktime_get_ns",
     {A::kNone, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kScalar},
    {kHelperGetPrandomU32,
     "bpf_get_prandom_u32",
     {A::kNone, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kScalar},
    {kHelperSkLookupUdp,
     "bpf_sk_lookup_udp",
     {A::kPtrToCtx, A::kStackMem, A::kMemSize, A::kScalar, A::kScalar},
     HelperRetType::kSocketOrNull,
     /*acquires=*/ResourceKind::kSocket,
     /*releases=*/ResourceKind::kNone,
     /*destructor=*/kHelperSkRelease},
    {kHelperSkRelease,
     "bpf_sk_release",
     {A::kSocket, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kVoid,
     /*acquires=*/ResourceKind::kNone,
     /*releases=*/ResourceKind::kSocket},
    {kHelperGetSmpProcessorId,
     "bpf_get_smp_processor_id",
     {A::kNone, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kScalar},
    {kHelperRingbufOutput,
     "bpf_ringbuf_output",
     {A::kConstMapPtr, A::kStackMem, A::kMemSize, A::kScalar, A::kNone},
     HelperRetType::kScalar},
    {kHelperKflexMalloc,
     "kflex_malloc",
     {A::kScalar, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kHeapPtrOrNull,
     ResourceKind::kNone,
     ResourceKind::kNone,
     static_cast<HelperId>(0),
     /*ebpf_compatible=*/false},
    {kHelperKflexFree,
     "kflex_free",
     {A::kHeapAddr, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kVoid,
     ResourceKind::kNone,
     ResourceKind::kNone,
     static_cast<HelperId>(0),
     /*ebpf_compatible=*/false},
    {kHelperKflexSpinLock,
     "kflex_spin_lock",
     {A::kHeapConstAddr, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kVoid,
     /*acquires=*/ResourceKind::kLock,
     /*releases=*/ResourceKind::kNone,
     /*destructor=*/kHelperKflexSpinUnlock,
     /*ebpf_compatible=*/false},
    {kHelperKflexSpinUnlock,
     "kflex_spin_unlock",
     {A::kHeapConstAddr, A::kNone, A::kNone, A::kNone, A::kNone},
     HelperRetType::kVoid,
     /*acquires=*/ResourceKind::kNone,
     /*releases=*/ResourceKind::kLock,
     static_cast<HelperId>(0),
     /*ebpf_compatible=*/false},
};

}  // namespace

HelperContractSpan AllHelperContracts() {
  return {kContracts, sizeof(kContracts) / sizeof(kContracts[0])};
}

const HelperContract* FindHelperContract(int32_t id) {
  for (const HelperContract& contract : kContracts) {
    if (contract.id == id) {
      return &contract;
    }
  }
  return nullptr;
}

}  // namespace kflex
