// Observability subsystem: lock-free per-CPU trace rings, a per-extension
// metrics registry, and the stable event catalog every layer of the stack
// emits into (verifier decisions, Kie instrumentation, JIT compiles and
// fallbacks, runtime hot paths, fault injection, sim progress).
//
// Design constraints (docs/observability.md):
//  * Disabled cost on hot paths is a single relaxed atomic load + one
//    predictable branch (KFLEX_TRACE / KFLEX_OBS_COUNT expand to exactly
//    that). BENCH_obs.json proves the JIT/interpreter numbers are unmoved.
//  * Trace events are fixed-size 32-byte binary records written into
//    per-CPU rings with a wrapping atomic head; overflow overwrites the
//    oldest slot and is drop-counted, never blocks a writer.
//  * Event codes are a stable (subsystem, id) catalog, append-only, mirrored
//    by the obs-selfcheck test so drift fails CI (same pattern as the fault
//    point catalog and chaos-selfcheck).
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/histogram.h"

namespace kflex {

// ---------------------------------------------------------------------------
// Enable flags. One process-global word; hot paths issue a single relaxed
// load and test a bit. Both default to off.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kObsTraceBit = 1u << 0;
inline constexpr uint32_t kObsMetricsBit = 1u << 1;

extern std::atomic<uint32_t> g_obs_flags;

inline bool ObsTraceEnabled() {
  return (g_obs_flags.load(std::memory_order_relaxed) & kObsTraceBit) != 0;
}
inline bool ObsMetricsEnabled() {
  return (g_obs_flags.load(std::memory_order_relaxed) & kObsMetricsBit) != 0;
}

// ---------------------------------------------------------------------------
// Event catalog. Codes are (subsystem << 8) | id and are append-only: a
// shipped code never changes meaning. obs-selfcheck mirrors this table.
// ---------------------------------------------------------------------------

enum class ObsSubsystem : uint8_t {
  kRuntime = 0,
  kVerifier = 1,
  kKie = 2,
  kJit = 3,
  kHeap = 4,
  kAlloc = 5,
  kLock = 6,
  kHelper = 7,
  kCancel = 8,
  kFault = 9,
  kSim = 10,
  kShard = 11,
  kCount = 12,
};

const char* ObsSubsystemName(ObsSubsystem s);

enum class ObsEvent : uint16_t {
  // runtime: extension lifecycle.
  kRuntimeLoad = (0 << 8) | 1,      // a0 = obs ext id, a1 = insn count
  kRuntimeUnload = (0 << 8) | 2,    // a0 = obs ext id, a1 = cancellations
  // verifier: per-load decision summary.
  kVerifierAccept = (1 << 8) | 1,   // a0 = pointer guard sites, a1 = pruned object entries
  kVerifierReject = (1 << 8) | 2,   // a0 = insn count, a1 = 0
  // kie: instrumentation summary.
  kKieInstrument = (2 << 8) | 1,    // a0 = guards emitted, a1 = guards elided+dominated
  // jit.
  kJitCompile = (3 << 8) | 1,       // a0 = code bytes, a1 = compile ns
  kJitFallback = (3 << 8) | 2,      // a0 = insn count, a1 = 0 (reason in EngineInfo)
  // heap (engine-shared slow paths: identical across interp and JIT).
  kHeapPageIn = (4 << 8) | 1,       // a0 = first page index, a1 = page count
  kHeapGuardTrip = (4 << 8) | 2,    // a0 = MemFaultKind, a1 = faulting va
  // allocator.
  kAllocRefill = (5 << 8) | 1,      // a0 = size class bytes, a1 = objects pulled
  kAllocCarve = (5 << 8) | 2,       // a0 = size class bytes, a1 = objects per page
  kAllocFail = (5 << 8) | 3,        // a0 = requested bytes, a1 = 0
  // spin locks.
  kLockContended = (6 << 8) | 1,    // a0 = acquirer owner tag, a1 = spin rounds
  kLockOrderEdge = (6 << 8) | 2,    // a0 = outer lock heap off, a1 = inner lock heap off
  kLockCycle = (6 << 8) | 3,        // a0 = cycle edge count, a1 = distinct programs
  // helpers (emitted in VmCallHelper, shared by both engines).
  kHelperCall = (7 << 8) | 1,       // a0 = helper id, a1 = return value
  // cancellation / watchdog.
  kCancelRequested = (8 << 8) | 1,  // a0 = obs ext id, a1 = 0
  kCancelUnwound = (8 << 8) | 2,    // a0 = fault pc, a1 = released resources
  kWatchdogFired = (8 << 8) | 3,    // a0 = obs ext id, a1 = overrun ns
  // fault injection.
  kFaultFired = (9 << 8) | 1,       // a0 = fault point index, a1 = hit number
  // sim.
  kSimProgress = (10 << 8) | 1,     // a0 = completed requests, a1 = in flight
  // sharded dispatcher (src/shard, docs/sharding.md).
  kShardStart = (11 << 8) | 1,      // a0 = shard index, a1 = num shards
  kShardBatch = (11 << 8) | 2,      // a0 = shard index, a1 = batch occupancy
  kShardForward = (11 << 8) | 3,    // a0 = steered shard, a1 = home shard
  kShardDrop = (11 << 8) | 4,       // a0 = shard index, a1 = queue capacity
  kShardSteal = (11 << 8) | 5,      // a0 = thief shard, a1 = victim shard
  kShardQuiesce = (11 << 8) | 6,    // a0 = shard index, a1 = drained invocations
};

struct ObsEventDef {
  ObsEvent event;
  const char* name;  // "subsystem.event", stable
  const char* arg0;
  const char* arg1;
};

// Full catalog, ordered by code.
const std::vector<ObsEventDef>& ObsEventCatalog();
// nullptr when the code is unknown.
const ObsEventDef* FindObsEvent(uint16_t code);

inline constexpr ObsSubsystem ObsEventSubsystem(ObsEvent e) {
  return static_cast<ObsSubsystem>(static_cast<uint16_t>(e) >> 8);
}

// ---------------------------------------------------------------------------
// Per-extension counters. Each has a home subsystem for the JSON rollup.
// ---------------------------------------------------------------------------

enum class ObsCounter : uint8_t {
  kInvocations = 0,
  kCancellations,
  kHelperCalls,
  kPageIns,
  kGuardTrips,
  kAllocRefills,
  kAllocFailures,
  kLockContended,
  kFaultsFired,
  kWatchdogFires,
  kJitFallbacks,
  kCount,
};

struct ObsCounterDef {
  ObsCounter counter;
  ObsSubsystem subsystem;
  const char* name;  // short name within the subsystem
};

const std::vector<ObsCounterDef>& ObsCounterCatalog();

// ---------------------------------------------------------------------------
// Trace events and rings.
// ---------------------------------------------------------------------------

struct TraceEvent {
  uint64_t ts_ns = 0;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint32_t ext = 0;   // obs extension id; 0 = unattributed
  uint16_t code = 0;  // (subsystem << 8) | id
  uint16_t cpu = 0;   // kObsNoCpu when not on an invocation CPU
};
static_assert(sizeof(TraceEvent) == 32, "trace events are fixed-size binary records");

inline constexpr uint16_t kObsNoCpu = 0xffff;

// Single-producer-per-CPU ring in the common case (invocations pin a CPU),
// but writes are safe under concurrency: slots are claimed with a wrapping
// fetch_add on the head. Readers snapshot quiesced (tests, kflex_run exit,
// kflex-top); a racing reader can observe a torn in-flight slot, never a
// crash.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 4096;  // events; power of two

  void Emit(const TraceEvent& e);
  // Events currently resident, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  uint64_t dropped() const;
  uint64_t emitted() const { return head_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> head_{0};
  TraceEvent slots_[kCapacity] = {};
};

// ---------------------------------------------------------------------------
// Metrics registry. Slot 0 is the process-global/unattributed extension;
// Runtime::Load registers one slot per loaded extension (obs ids are global
// across Runtime instances — tests create many runtimes).
// ---------------------------------------------------------------------------

class ExtMetrics {
 public:
  explicit ExtMetrics(uint32_t id, std::string label)
      : id_(id), label_(std::move(label)) {}

  void Bump(ObsCounter c, uint64_t delta = 1) {
    counters_[static_cast<size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Get(ObsCounter c) const {
    return counters_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }
  void RecordInvokeNs(uint64_t ns) {
    std::lock_guard<std::mutex> lock(mu_);
    invoke_ns_.Record(ns);
  }
  Histogram InvokeHistogram() const {
    std::lock_guard<std::mutex> lock(mu_);
    return invoke_ns_;
  }
  void Reset();

  uint32_t id() const { return id_; }
  const std::string& label() const { return label_; }

 private:
  uint32_t id_;
  std::string label_;
  std::atomic<uint64_t> counters_[static_cast<size_t>(ObsCounter::kCount)] = {};
  mutable std::mutex mu_;
  Histogram invoke_ns_;
};

// Thread-local attribution installed by Runtime::Invoke (and load paths):
// hot-path emit sites stamp extension identity and CPU without threading a
// Runtime pointer through every layer.
struct ObsThreadContext {
  uint32_t ext = 0;
  uint16_t cpu = kObsNoCpu;
  ExtMetrics* metrics = nullptr;  // resolved once per scope; never freed
};

extern thread_local ObsThreadContext g_obs_tls;

class ObsInvokeScope {
 public:
  ObsInvokeScope(uint32_t ext, uint16_t cpu);
  ~ObsInvokeScope();

  ObsInvokeScope(const ObsInvokeScope&) = delete;
  ObsInvokeScope& operator=(const ObsInvokeScope&) = delete;

 private:
  ObsThreadContext saved_;
};

// ---------------------------------------------------------------------------
// Snapshots (JSON surface of kflex_run --metrics=json; schema is a stable
// contract validated by kflex-top --check-schema).
// ---------------------------------------------------------------------------

struct ObsExtSnapshot {
  uint32_t id = 0;
  std::string label;
  uint64_t counters[static_cast<size_t>(ObsCounter::kCount)] = {};
  Histogram invoke_ns;
};

struct ObsSnapshot {
  bool trace_enabled = false;
  bool metrics_enabled = false;
  uint64_t trace_emitted = 0;
  uint64_t trace_dropped = 0;
  uint64_t trace_resident = 0;
  // extensions[0] is the global/unattributed slot.
  std::vector<ObsExtSnapshot> extensions;
};

// Renders the stable JSON document. Required keys (schema contract):
// "obs", "trace" (with "emitted"/"dropped"/"resident"), "subsystems"
// (per-subsystem counter rollup), "extensions" (per-extension counters +
// "invoke_latency_ns" with count/p50/p99/p999/max).
std::string ObsSnapshotToJson(const ObsSnapshot& snap);

// ---------------------------------------------------------------------------
// The process-global observability hub.
// ---------------------------------------------------------------------------

class Obs {
 public:
  static Obs& Instance();

  void EnableTrace(bool on);
  void EnableMetrics(bool on);

  // Registers a metrics slot; returns the process-globally-unique obs id.
  uint32_t RegisterExtension(const std::string& label);
  // Never fails: unknown ids resolve to the global slot 0.
  ExtMetrics* Metrics(uint32_t id);

  // All trace events currently resident across CPU rings, sorted by
  // timestamp. Intended for quiesced readers.
  std::vector<TraceEvent> SnapshotTrace() const;
  uint64_t TraceDropped() const;
  uint64_t TraceEmitted() const;

  // Full snapshot: all registered extensions. ids: restrict to these obs
  // ids (plus the global slot) — Runtime::SnapshotMetrics passes its own.
  ObsSnapshot SnapshotMetrics() const;
  ObsSnapshot SnapshotMetrics(const std::vector<uint32_t>& ids) const;

  // Clears rings, counters and histograms (not registrations). Tests only.
  void ResetAll();

  // Internal: the ring for the calling thread's context.
  void EmitLocked(uint16_t code, uint64_t a0, uint64_t a1);

 private:
  Obs();

  static constexpr size_t kNumRings = 16;  // power of two; cpu & (kNumRings-1)

  std::unique_ptr<TraceRing[]> rings_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ExtMetrics>> metrics_;  // index = obs id
};

// Emit entry point behind the macros; resolves TLS attribution + timestamp.
void ObsEmit(ObsEvent event, uint64_t a0, uint64_t a1);

// Test helper: flips flags on construction, restores and (optionally)
// resets data on destruction.
class ScopedObsEnable {
 public:
  explicit ScopedObsEnable(bool trace = true, bool metrics = true);
  ~ScopedObsEnable();

  ScopedObsEnable(const ScopedObsEnable&) = delete;
  ScopedObsEnable& operator=(const ScopedObsEnable&) = delete;

 private:
  uint32_t saved_;
};

}  // namespace kflex

// Hot-path macros: one relaxed load, one branch when disabled.
#define KFLEX_TRACE(event, a0, a1)                                      \
  do {                                                                  \
    if (::kflex::ObsTraceEnabled()) {                                   \
      ::kflex::ObsEmit((event), static_cast<uint64_t>(a0),              \
                       static_cast<uint64_t>(a1));                      \
    }                                                                   \
  } while (0)

#define KFLEX_OBS_COUNT(counter)                                        \
  do {                                                                  \
    if (::kflex::ObsMetricsEnabled()) {                                 \
      ::kflex::ExtMetrics* m = ::kflex::g_obs_tls.metrics;              \
      if (m == nullptr) m = ::kflex::Obs::Instance().Metrics(0);        \
      m->Bump(::kflex::ObsCounter::counter);                            \
    }                                                                   \
  } while (0)

#endif  // SRC_OBS_OBS_H_
