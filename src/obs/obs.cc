#include "src/obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace kflex {

std::atomic<uint32_t> g_obs_flags{0};
thread_local ObsThreadContext g_obs_tls;

namespace {

uint64_t ObsNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* ObsSubsystemName(ObsSubsystem s) {
  switch (s) {
    case ObsSubsystem::kRuntime: return "runtime";
    case ObsSubsystem::kVerifier: return "verifier";
    case ObsSubsystem::kKie: return "kie";
    case ObsSubsystem::kJit: return "jit";
    case ObsSubsystem::kHeap: return "heap";
    case ObsSubsystem::kAlloc: return "alloc";
    case ObsSubsystem::kLock: return "lock";
    case ObsSubsystem::kHelper: return "helper";
    case ObsSubsystem::kCancel: return "cancel";
    case ObsSubsystem::kFault: return "fault";
    case ObsSubsystem::kSim: return "sim";
    case ObsSubsystem::kShard: return "shard";
    case ObsSubsystem::kCount: break;
  }
  return "?";
}

const std::vector<ObsEventDef>& ObsEventCatalog() {
  static const std::vector<ObsEventDef> kCatalog = {
      {ObsEvent::kRuntimeLoad, "runtime.load", "obs_ext_id", "insns"},
      {ObsEvent::kRuntimeUnload, "runtime.unload", "obs_ext_id", "cancellations"},
      {ObsEvent::kVerifierAccept, "verifier.accept", "guard_sites", "pruned_object_entries"},
      {ObsEvent::kVerifierReject, "verifier.reject", "insns", "unused"},
      {ObsEvent::kKieInstrument, "kie.instrument", "guards_emitted", "guards_removed"},
      {ObsEvent::kJitCompile, "jit.compile", "code_bytes", "compile_ns"},
      {ObsEvent::kJitFallback, "jit.fallback", "insns", "unused"},
      {ObsEvent::kHeapPageIn, "heap.pagein", "first_page", "pages"},
      {ObsEvent::kHeapGuardTrip, "heap.guard_trip", "fault_kind", "va"},
      {ObsEvent::kAllocRefill, "alloc.refill", "size_class", "objects"},
      {ObsEvent::kAllocCarve, "alloc.carve", "size_class", "objects_per_page"},
      {ObsEvent::kAllocFail, "alloc.fail", "bytes", "unused"},
      {ObsEvent::kLockContended, "lock.contended", "owner_tag", "rounds"},
      {ObsEvent::kLockOrderEdge, "lock.order_edge", "outer_off", "inner_off"},
      {ObsEvent::kLockCycle, "lock.cycle", "edges", "programs"},
      {ObsEvent::kHelperCall, "helper.call", "helper_id", "ret"},
      {ObsEvent::kCancelRequested, "cancel.requested", "obs_ext_id", "unused"},
      {ObsEvent::kCancelUnwound, "cancel.unwound", "fault_pc", "released"},
      {ObsEvent::kWatchdogFired, "cancel.watchdog", "obs_ext_id", "overrun_ns"},
      {ObsEvent::kFaultFired, "fault.fired", "point_index", "hit"},
      {ObsEvent::kSimProgress, "sim.progress", "completed", "in_flight"},
      {ObsEvent::kShardStart, "shard.start", "shard", "num_shards"},
      {ObsEvent::kShardBatch, "shard.batch", "shard", "occupancy"},
      {ObsEvent::kShardForward, "shard.forward", "steered_shard", "home_shard"},
      {ObsEvent::kShardDrop, "shard.drop", "shard", "capacity"},
      {ObsEvent::kShardSteal, "shard.steal", "thief_shard", "victim_shard"},
      {ObsEvent::kShardQuiesce, "shard.quiesce", "shard", "drained"},
  };
  return kCatalog;
}

const ObsEventDef* FindObsEvent(uint16_t code) {
  for (const ObsEventDef& def : ObsEventCatalog()) {
    if (static_cast<uint16_t>(def.event) == code) {
      return &def;
    }
  }
  return nullptr;
}

const std::vector<ObsCounterDef>& ObsCounterCatalog() {
  static const std::vector<ObsCounterDef> kCatalog = {
      {ObsCounter::kInvocations, ObsSubsystem::kRuntime, "invocations"},
      {ObsCounter::kCancellations, ObsSubsystem::kCancel, "cancellations"},
      {ObsCounter::kHelperCalls, ObsSubsystem::kHelper, "calls"},
      {ObsCounter::kPageIns, ObsSubsystem::kHeap, "pageins"},
      {ObsCounter::kGuardTrips, ObsSubsystem::kHeap, "guard_trips"},
      {ObsCounter::kAllocRefills, ObsSubsystem::kAlloc, "refills"},
      {ObsCounter::kAllocFailures, ObsSubsystem::kAlloc, "failures"},
      {ObsCounter::kLockContended, ObsSubsystem::kLock, "contended"},
      {ObsCounter::kFaultsFired, ObsSubsystem::kFault, "fired"},
      {ObsCounter::kWatchdogFires, ObsSubsystem::kCancel, "watchdog_fires"},
      {ObsCounter::kJitFallbacks, ObsSubsystem::kJit, "fallbacks"},
  };
  return kCatalog;
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

void TraceRing::Emit(const TraceEvent& e) {
  uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  slots_[seq & (kCapacity - 1)] = e;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t resident = std::min<uint64_t>(head, kCapacity);
  std::vector<TraceEvent> out;
  out.reserve(resident);
  for (uint64_t seq = head - resident; seq != head; seq++) {
    out.push_back(slots_[seq & (kCapacity - 1)]);
  }
  return out;
}

uint64_t TraceRing::dropped() const {
  uint64_t head = head_.load(std::memory_order_relaxed);
  return head > kCapacity ? head - kCapacity : 0;
}

void TraceRing::Reset() {
  head_.store(0, std::memory_order_relaxed);
  std::memset(static_cast<void*>(slots_), 0, sizeof(slots_));
}

// ---------------------------------------------------------------------------
// ExtMetrics / ObsInvokeScope
// ---------------------------------------------------------------------------

void ExtMetrics::Reset() {
  for (auto& c : counters_) {
    c.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  invoke_ns_.Reset();
}

ObsInvokeScope::ObsInvokeScope(uint32_t ext, uint16_t cpu) : saved_(g_obs_tls) {
  g_obs_tls.ext = ext;
  g_obs_tls.cpu = cpu;
  g_obs_tls.metrics = Obs::Instance().Metrics(ext);
}

ObsInvokeScope::~ObsInvokeScope() { g_obs_tls = saved_; }

// ---------------------------------------------------------------------------
// Obs hub
// ---------------------------------------------------------------------------

Obs::Obs() : rings_(new TraceRing[kNumRings]) {
  metrics_.push_back(std::make_unique<ExtMetrics>(0, "(global)"));
}

Obs& Obs::Instance() {
  static Obs* instance = new Obs();  // never destroyed: emitters may outlive main
  return *instance;
}

void Obs::EnableTrace(bool on) {
  if (on) {
    g_obs_flags.fetch_or(kObsTraceBit, std::memory_order_relaxed);
  } else {
    g_obs_flags.fetch_and(~kObsTraceBit, std::memory_order_relaxed);
  }
}

void Obs::EnableMetrics(bool on) {
  if (on) {
    g_obs_flags.fetch_or(kObsMetricsBit, std::memory_order_relaxed);
  } else {
    g_obs_flags.fetch_and(~kObsMetricsBit, std::memory_order_relaxed);
  }
}

uint32_t Obs::RegisterExtension(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id = static_cast<uint32_t>(metrics_.size());
  metrics_.push_back(std::make_unique<ExtMetrics>(id, label));
  return id;
}

ExtMetrics* Obs::Metrics(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= metrics_.size()) {
    id = 0;
  }
  return metrics_[id].get();
}

void Obs::EmitLocked(uint16_t code, uint64_t a0, uint64_t a1) {
  TraceEvent e;
  e.ts_ns = ObsNowNs();
  e.a0 = a0;
  e.a1 = a1;
  e.ext = g_obs_tls.ext;
  e.code = code;
  e.cpu = g_obs_tls.cpu;
  size_t ring = (e.cpu == kObsNoCpu) ? kNumRings - 1
                                     : (static_cast<size_t>(e.cpu) & (kNumRings - 1));
  rings_[ring].Emit(e);
}

std::vector<TraceEvent> Obs::SnapshotTrace() const {
  std::vector<TraceEvent> all;
  for (size_t i = 0; i < kNumRings; i++) {
    std::vector<TraceEvent> part = rings_[i].Snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return all;
}

uint64_t Obs::TraceDropped() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumRings; i++) {
    total += rings_[i].dropped();
  }
  return total;
}

uint64_t Obs::TraceEmitted() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumRings; i++) {
    total += rings_[i].emitted();
  }
  return total;
}

ObsSnapshot Obs::SnapshotMetrics() const {
  std::vector<uint32_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 1; i < metrics_.size(); i++) {
      ids.push_back(static_cast<uint32_t>(i));
    }
  }
  return SnapshotMetrics(ids);
}

ObsSnapshot Obs::SnapshotMetrics(const std::vector<uint32_t>& ids) const {
  ObsSnapshot snap;
  uint32_t flags = g_obs_flags.load(std::memory_order_relaxed);
  snap.trace_enabled = (flags & kObsTraceBit) != 0;
  snap.metrics_enabled = (flags & kObsMetricsBit) != 0;
  snap.trace_emitted = TraceEmitted();
  snap.trace_dropped = TraceDropped();
  snap.trace_resident = snap.trace_emitted - snap.trace_dropped;

  std::lock_guard<std::mutex> lock(mu_);
  auto append = [&](uint32_t id) {
    if (id >= metrics_.size()) {
      return;
    }
    const ExtMetrics& m = *metrics_[id];
    ObsExtSnapshot ext;
    ext.id = m.id();
    ext.label = m.label();
    for (size_t c = 0; c < static_cast<size_t>(ObsCounter::kCount); c++) {
      ext.counters[c] = m.Get(static_cast<ObsCounter>(c));
    }
    ext.invoke_ns = m.InvokeHistogram();
    snap.extensions.push_back(std::move(ext));
  };
  append(0);
  for (uint32_t id : ids) {
    if (id != 0) {
      append(id);
    }
  }
  return snap;
}

void Obs::ResetAll() {
  for (size_t i = 0; i < kNumRings; i++) {
    rings_[i].Reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& m : metrics_) {
    m->Reset();
  }
}

void ObsEmit(ObsEvent event, uint64_t a0, uint64_t a1) {
  Obs::Instance().EmitLocked(static_cast<uint16_t>(event), a0, a1);
}

ScopedObsEnable::ScopedObsEnable(bool trace, bool metrics)
    : saved_(g_obs_flags.load(std::memory_order_relaxed)) {
  Obs::Instance().EnableTrace(trace);
  Obs::Instance().EnableMetrics(metrics);
}

ScopedObsEnable::~ScopedObsEnable() {
  g_obs_flags.store(saved_, std::memory_order_relaxed);
  Obs::Instance().ResetAll();
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string ObsSnapshotToJson(const ObsSnapshot& snap) {
  std::string out = "{\n";
  out += "  \"obs\": {\"trace_enabled\": ";
  out += snap.trace_enabled ? "true" : "false";
  out += ", \"metrics_enabled\": ";
  out += snap.metrics_enabled ? "true" : "false";
  out += "},\n";

  out += "  \"trace\": {\"emitted\": ";
  AppendU64(out, snap.trace_emitted);
  out += ", \"dropped\": ";
  AppendU64(out, snap.trace_dropped);
  out += ", \"resident\": ";
  AppendU64(out, snap.trace_resident);
  out += "},\n";

  // Per-subsystem rollup across all extensions in the snapshot.
  uint64_t by_counter[static_cast<size_t>(ObsCounter::kCount)] = {};
  for (const ObsExtSnapshot& ext : snap.extensions) {
    for (size_t c = 0; c < static_cast<size_t>(ObsCounter::kCount); c++) {
      by_counter[c] += ext.counters[c];
    }
  }
  out += "  \"subsystems\": {";
  bool first_sub = true;
  for (size_t s = 0; s < static_cast<size_t>(ObsSubsystem::kCount); s++) {
    ObsSubsystem sub = static_cast<ObsSubsystem>(s);
    std::string body;
    bool first_ctr = true;
    for (const ObsCounterDef& def : ObsCounterCatalog()) {
      if (def.subsystem != sub) {
        continue;
      }
      if (!first_ctr) body += ", ";
      first_ctr = false;
      AppendJsonString(body, def.name);
      body += ": ";
      AppendU64(body, by_counter[static_cast<size_t>(def.counter)]);
    }
    if (body.empty()) {
      continue;
    }
    if (!first_sub) out += ", ";
    first_sub = false;
    out += "\n    ";
    AppendJsonString(out, ObsSubsystemName(sub));
    out += ": {" + body + "}";
  }
  out += "\n  },\n";

  out += "  \"extensions\": [";
  for (size_t i = 0; i < snap.extensions.size(); i++) {
    const ObsExtSnapshot& ext = snap.extensions[i];
    if (i != 0) out += ",";
    out += "\n    {\"id\": ";
    AppendU64(out, ext.id);
    out += ", \"label\": ";
    AppendJsonString(out, ext.label);
    out += ", \"counters\": {";
    bool first = true;
    for (const ObsCounterDef& def : ObsCounterCatalog()) {
      if (!first) out += ", ";
      first = false;
      std::string key = std::string(ObsSubsystemName(def.subsystem)) + "." + def.name;
      AppendJsonString(out, key);
      out += ": ";
      AppendU64(out, ext.counters[static_cast<size_t>(def.counter)]);
    }
    out += "}, \"invoke_latency_ns\": {\"count\": ";
    AppendU64(out, ext.invoke_ns.count());
    out += ", \"p50\": ";
    AppendU64(out, ext.invoke_ns.Percentile(0.5));
    out += ", \"p99\": ";
    AppendU64(out, ext.invoke_ns.Percentile(0.99));
    out += ", \"p999\": ";
    AppendU64(out, ext.invoke_ns.Percentile(0.999));
    out += ", \"max\": ";
    AppendU64(out, ext.invoke_ns.max());
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace kflex
