// Redis offload (§5.1, §5.2).
//
// The KFlex extension attaches to the sk_skb hook (all Redis traffic runs
// over TCP, so requests traverse the kernel TCP stack before reaching it)
// and serves GET / SET / ZADD. ZADD is the flexibility showcase: it looks up
// the key's sorted set in the hash table and inserts (score, member) into a
// skip list, allocating both hash nodes and skip-list nodes on demand from
// the extension heap — the operation the paper calls "currently unsupported"
// under eBPF.
//
// ZADD semantics note (documented substitution): real Redis keys sorted sets
// by member with a member->score dict plus a score-ordered skiplist. This
// reproduction keys the skiplist by score and updates the member on an equal
// score, which exercises the identical code path (hash lookup -> on-demand
// allocation -> skiplist search/splice) with simpler bookkeeping.
#ifndef SRC_APPS_REDIS_H_
#define SRC_APPS_REDIS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/runtime.h"

namespace kflex {

struct RedisLayout {
  static constexpr uint64_t kLockOff = 64;
  static constexpr uint64_t kRngOff = 72;
  static constexpr uint64_t kZaddScratchOff = 80;  // update[16] for splicing
  static constexpr uint64_t kBucketsOff = 256;
  static constexpr int kNumBuckets = 16384;
  static constexpr uint64_t kStaticBytes =
      kBucketsOff + static_cast<uint64_t>(kNumBuckets) * 8 - 64;
  // Hash node (120 B): next@0, key@8 (32 B), vallen@40, value@48 (64 B),
  // zset root@112.
  static constexpr int16_t kNodeNext = 0;
  static constexpr int16_t kNodeKey = 8;
  static constexpr int16_t kNodeValLen = 40;
  static constexpr int16_t kNodeValue = 48;
  static constexpr int16_t kNodeZRoot = 112;
  static constexpr int32_t kNodeSize = 120;
  // Skip-list node (144 B): score@0, member@8, forward[16]@16.
  static constexpr int16_t kZKey = 0;
  static constexpr int16_t kZMember = 8;
  static constexpr int16_t kZFwd = 16;
  static constexpr int kZLevels = 16;
  static constexpr int32_t kZNodeSize = 144;
};

struct RedisBuildOptions {
  uint64_t heap_size = 1ULL << 26;  // 64 MB
};

Program BuildRedisExtension(const RedisBuildOptions& options = {});

// Native user-space Redis (single data plane; the KeyDB multi-threaded
// baseline is modeled by running several server threads over it in the
// closed-loop simulation).
class UserRedis {
 public:
  bool Set(uint64_t key_id, std::string_view value);
  std::optional<std::string> Get(uint64_t key_id) const;
  // Returns true if a new (score) entry was created, false if updated.
  bool Zadd(uint64_t key_id, uint64_t score, uint64_t member);
  const std::map<uint64_t, uint64_t>* Zset(uint64_t key_id) const;

 private:
  std::unordered_map<uint64_t, std::string> strings_;
  std::unordered_map<uint64_t, std::map<uint64_t, uint64_t>> zsets_;
};

class KflexRedisDriver {
 public:
  struct OpResult {
    bool served = false;
    bool hit = false;
    uint64_t insns = 0;
    uint64_t instr_insns = 0;
    std::string value;
  };

  static StatusOr<KflexRedisDriver> Create(MockKernel& kernel,
                                           const RedisBuildOptions& options = {},
                                           const KieOptions& kie = {});

  OpResult Set(int cpu, uint64_t key_id, std::string_view value);
  OpResult Get(int cpu, uint64_t key_id);
  OpResult Zadd(int cpu, uint64_t key_id, uint64_t score, uint64_t member);

  ExtensionId id() const { return id_; }

  // Reads a zset's (score -> member) entries by walking the skip list from
  // the host (correctness oracle support).
  std::map<uint64_t, uint64_t> ReadZset(uint64_t key_id);

 private:
  KflexRedisDriver(MockKernel& kernel, ExtensionId id) : kernel_(&kernel), id_(id) {}

  OpResult Deliver(int cpu, KvPacket& pkt);

  MockKernel* kernel_;
  ExtensionId id_;
};

}  // namespace kflex

#endif  // SRC_APPS_REDIS_H_
