// Skip list as a KFlex extension (the structure behind Redis ZADD, §5.2).
//
// Heap layout:
//   @64   head node (same layout as ordinary nodes; key/value unused)
//   @208  u64 xorshift state for the level generator
//   @216  u64 update[16] scratch (single-threaded, like the paper's
//         non-hashmap data structures)
// Node (144 bytes, size class 256):
//   @0 key  @8 value  @16 forward[16]
#include "src/apps/ds/ds.h"

#include "src/base/logging.h"
#include "src/dsl/emit.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"

namespace kflex {

namespace {

constexpr uint64_t kHeadOff = 64;
constexpr uint64_t kRngOff = 208;
constexpr uint64_t kUpdateOff = 216;
constexpr int kMaxLevel = 16;
constexpr int16_t kKey = 0;
constexpr int16_t kValue = 8;
constexpr int16_t kFwd = 16;
constexpr int32_t kNodeSize = kFwd + kMaxLevel * 8;  // 144

constexpr uint64_t kStaticBytes = kUpdateOff + kMaxLevel * 8 - 64;

void EmitFail(Assembler& a) {
  a.StImm(BPF_DW, R6, kDsOffResult, 0);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitSuccess(Assembler& a) {
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

// Walks the list for R7 = key. Leaves the level-0 predecessor in R8 and, if
// record_updates, stores the per-level predecessors in update[].
// R9 is clobbered (level counter).
void EmitWalk(Assembler& a, bool record_updates) {
  a.LoadHeapAddr(R8, kHeadOff);
  a.OrImm(R8, 0);  // launder: cur flows between typed and loaded pointers
  a.MovImm(R9, kMaxLevel - 1);
  auto levels = a.LoopBegin();
  a.LoopBreakIfImm(levels, BPF_JSLT, R9, 0);
  {
    auto walk = a.LoopBegin();
    // t = cur->forward[i]
    a.Mov(R2, R9);
    a.LshImm(R2, 3);
    a.Add(R2, R8);
    a.Ldx(BPF_DW, R3, R2, kFwd);
    a.LoopBreakIfImm(walk, BPF_JEQ, R3, 0);
    a.Ldx(BPF_DW, R4, R3, kKey);
    a.LoopBreakIfReg(walk, BPF_JGE, R4, R7);
    a.Mov(R8, R3);
    a.LoopEnd(walk);
  }
  if (record_updates) {
    a.LoadHeapAddr(R2, kUpdateOff);
    a.Mov(R3, R9);
    a.LshImm(R3, 3);
    a.Add(R2, R3);
    a.Stx(BPF_DW, R2, 0, R8);  // update[i] = cur (elided: bounded index)
  }
  a.SubImm(R9, 1);
  a.LoopEnd(levels);
}

// Loads the level-0 successor of R8 into R9 and jumps to `nomatch` unless
// its key equals R7.
void EmitCandidate(Assembler& a, Assembler::Label nomatch) {
  a.Ldx(BPF_DW, R9, R8, kFwd);  // forward[0]
  a.JmpImm(BPF_JEQ, R9, 0, nomatch);
  a.Ldx(BPF_DW, R2, R9, kKey);
  a.JmpReg(BPF_JNE, R2, R7, nomatch);
}

void EmitUpdate(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  EmitWalk(a, /*record_updates=*/true);

  auto insert = a.NewLabel();
  EmitCandidate(a, insert);
  // Key exists: update in place.
  a.Ldx(BPF_DW, R2, R6, kDsOffValue);
  a.Stx(BPF_DW, R9, kValue, R2);
  EmitSuccess(a);

  a.Bind(insert);
  // Seed the level generator on first use.
  a.LoadHeapAddr(R2, kRngOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  {
    auto unseeded = a.IfImm(BPF_JEQ, R3, 0);
    a.LoadImm64(R4, 0x9E3779B97F4A7C15ULL);
    a.Stx(BPF_DW, R2, 0, R4);
    a.EndIf(unseeded);
  }
  EmitXorshiftHeap(a, R0, kRngOff, R2, R3);
  // h = 1; while ((rand & 1) && h < kMaxLevel) { rand >>= 1; h++ }
  a.MovImm(R9, 1);
  {
    auto levelgen = a.LoopBegin();
    a.LoopBreakIfImm(levelgen, BPF_JEQ, R9, kMaxLevel);
    a.Mov(R2, R0);
    a.AndImm(R2, 1);
    a.LoopBreakIfImm(levelgen, BPF_JEQ, R2, 0);
    a.RshImm(R0, 1);
    a.AddImm(R9, 1);
    a.LoopEnd(levelgen);
  }
  a.Stx(BPF_DW, R10, -8, R9);  // spill h

  a.MovImm(R1, kNodeSize);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  EmitFail(a);
  a.EndIf(null);
  a.Stx(BPF_DW, R0, kKey, R7);
  a.Ldx(BPF_DW, R2, R6, kDsOffValue);
  a.Stx(BPF_DW, R0, kValue, R2);
  a.Mov(R8, R0);
  a.OrImm(R8, 0);  // launder node
  a.Ldx(BPF_DW, R9, R10, -8);  // h

  // Splice levels 0..h-1.
  a.MovImm(R7, 0);  // i (key no longer needed)
  {
    auto splice = a.LoopBegin();
    a.LoopBreakIfReg(splice, BPF_JGE, R7, R9);
    a.Mov(R2, R7);
    a.LshImm(R2, 3);
    a.LoadHeapAddr(R3, kUpdateOff);
    a.Add(R3, R2);
    a.Ldx(BPF_DW, R4, R3, 0);      // u = update[i] (elided)
    a.Mov(R5, R7);
    a.LshImm(R5, 3);
    a.Add(R5, R4);                 // u + i*8
    a.Ldx(BPF_DW, R0, R5, kFwd);   // u->forward[i]
    a.Mov(R2, R7);
    a.LshImm(R2, 3);
    a.Add(R2, R8);                 // node + i*8
    a.Stx(BPF_DW, R2, kFwd, R0);   // node->forward[i] = u->forward[i]
    a.Stx(BPF_DW, R5, kFwd, R8);   // u->forward[i] = node
    a.AddImm(R7, 1);
    a.LoopEnd(splice);
  }
  EmitSuccess(a);
}

void EmitLookup(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  EmitWalk(a, /*record_updates=*/false);
  auto miss = a.NewLabel();
  EmitCandidate(a, miss);
  a.Ldx(BPF_DW, R2, R9, kValue);
  a.Stx(BPF_DW, R6, kDsOffAux, R2);
  EmitSuccess(a);
  a.Bind(miss);
  EmitFail(a);
}

void EmitDelete(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  EmitWalk(a, /*record_updates=*/true);
  auto miss = a.NewLabel();
  EmitCandidate(a, miss);
  // Unlink R9 from every level where update[i]->forward[i] == R9.
  a.Mov(R8, R9);  // target
  a.MovImm(R7, 0);
  {
    auto unlink = a.LoopBegin();
    a.LoopBreakIfImm(unlink, BPF_JEQ, R7, kMaxLevel);
    a.Mov(R2, R7);
    a.LshImm(R2, 3);
    a.LoadHeapAddr(R3, kUpdateOff);
    a.Add(R3, R2);
    a.Ldx(BPF_DW, R4, R3, 0);  // u = update[i]
    a.Mov(R5, R7);
    a.LshImm(R5, 3);
    a.Add(R5, R4);
    a.Ldx(BPF_DW, R0, R5, kFwd);  // u->forward[i]
    {
      auto linked = a.IfReg(BPF_JEQ, R0, R8);
      a.Mov(R2, R7);
      a.LshImm(R2, 3);
      a.Add(R2, R8);
      a.Ldx(BPF_DW, R3, R2, kFwd);   // target->forward[i]
      a.Stx(BPF_DW, R5, kFwd, R3);   // u->forward[i] = it
      a.EndIf(linked);
    }
    a.AddImm(R7, 1);
    a.LoopEnd(unlink);
  }
  a.Mov(R1, R8);
  a.Call(kHelperKflexFree);
  EmitSuccess(a);
  a.Bind(miss);
  EmitFail(a);
}

}  // namespace

DsBuild BuildSkipList(DsOp op, uint64_t heap_size) {
  Assembler a;
  switch (op) {
    case DsOp::kUpdate:
      EmitUpdate(a);
      break;
    case DsOp::kLookup:
      EmitLookup(a);
      break;
    case DsOp::kDelete:
      EmitDelete(a);
      break;
  }
  auto p = a.Finish(std::string("skiplist_") + DsOpName(op), Hook::kTracepoint,
                    ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return DsBuild{std::move(p).value(), kStaticBytes};
}

}  // namespace kflex
