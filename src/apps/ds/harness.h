// Host-side driver for a data-structure extension: loads the update /
// lookup / delete programs against one shared heap and exposes typed ops.
// Used by correctness tests, Figure 5 benchmarks, and Table 3 statistics.
#ifndef SRC_APPS_DS_HARNESS_H_
#define SRC_APPS_DS_HARNESS_H_

#include <functional>
#include <optional>
#include <string>

#include "src/apps/ds/ds.h"
#include "src/kernel/packet.h"
#include "src/runtime/runtime.h"

namespace kflex {

using DsBuilder = std::function<DsBuild(DsOp, uint64_t)>;

class DsInstance {
 public:
  // Loads the three per-op programs into `runtime` with shared heap.
  // `kie` selects the instrumentation flavour (KFlex / KFlex-PM / KMod);
  // `engine` the optimizer / execution-engine configuration.
  static StatusOr<DsInstance> Create(Runtime& runtime, const DsBuilder& builder,
                                     const KieOptions& kie = {},
                                     uint64_t heap_size = kDsHeapSize,
                                     const EngineChoice& engine = {});

  bool Update(uint64_t key, uint64_t value);
  std::optional<uint64_t> Lookup(uint64_t key);
  bool Delete(uint64_t key);

  // Executed-instruction count of the most recent operation.
  uint64_t last_insns() const { return last_insns_; }
  uint64_t last_instr_insns() const { return last_instr_insns_; }
  bool last_cancelled() const { return last_cancelled_; }

  ExtensionId id(DsOp op) const { return ids_[static_cast<size_t>(op)]; }
  Runtime& runtime() { return *runtime_; }

 private:
  DsInstance(Runtime& runtime) : runtime_(&runtime) {}

  InvokeResult Run(DsOp op, DsCtx& ctx);

  Runtime* runtime_;
  ExtensionId ids_[3] = {0, 0, 0};
  uint64_t last_insns_ = 0;
  uint64_t last_instr_insns_ = 0;
  bool last_cancelled_ = false;
};

}  // namespace kflex

#endif  // SRC_APPS_DS_HARNESS_H_
