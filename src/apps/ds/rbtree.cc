// Red-black tree as a KFlex extension: CLRS-style insert and delete with
// full rebalancing fixups, entirely in extension bytecode. This is the data
// structure eBPF cannot express without kernel support (§2.2 cites the
// verifier-side rbtree effort [31]); KFlex runs it as plain extension code.
//
// Heap layout:
//   @64  u64 root
// Node (48 bytes, size class 64):
//   @0 left  @8 right  @16 parent  @24 color (1=red, 0=black)
//   @32 key  @40 value
#include "src/apps/ds/ds.h"

#include "src/base/logging.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"

namespace kflex {

namespace {

constexpr uint64_t kRootOff = 64;
constexpr int16_t kL = 0;
constexpr int16_t kR = 8;
constexpr int16_t kP = 16;
constexpr int16_t kC = 24;
constexpr int16_t kK = 32;
constexpr int16_t kV = 40;
constexpr int32_t kNodeSize = 48;

void EmitFail(Assembler& a) {
  a.StImm(BPF_DW, R6, kDsOffResult, 0);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitSuccess(Assembler& a) {
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

// Rotates around the node in `x` (left rotation if `left`). Clobbers y, t, u.
// x itself is preserved.
void EmitRotate(Assembler& a, bool left, Reg x, Reg y, Reg t, Reg u) {
  int16_t side = left ? kR : kL;     // the child that moves up
  int16_t other = left ? kL : kR;
  a.Ldx(BPF_DW, y, x, side);         // y = x.side
  a.Ldx(BPF_DW, t, y, other);        // t = y.other
  a.Stx(BPF_DW, x, side, t);         // x.side = t
  auto t_nonnull = a.IfImm(BPF_JNE, t, 0);
  a.Stx(BPF_DW, t, kP, x);
  a.EndIf(t_nonnull);
  a.Ldx(BPF_DW, t, x, kP);           // t = x.parent
  a.Stx(BPF_DW, y, kP, t);           // y.parent = t
  auto had_parent = a.IfImm(BPF_JNE, t, 0);
  {
    a.Ldx(BPF_DW, u, t, kL);
    auto was_left = a.IfReg(BPF_JEQ, u, x);
    a.Stx(BPF_DW, t, kL, y);
    a.Else(was_left);
    a.Stx(BPF_DW, t, kR, y);
    a.EndIf(was_left);
  }
  a.Else(had_parent);
  a.LoadHeapAddr(u, kRootOff);
  a.Stx(BPF_DW, u, 0, y);
  a.EndIf(had_parent);
  a.Stx(BPF_DW, y, other, x);        // y.other = x
  a.Stx(BPF_DW, x, kP, y);
}

// transplant(u, v): replaces subtree rooted at `u_reg` by `v_reg`.
// Clobbers t, t2; preserves u_reg/v_reg.
void EmitTransplant(Assembler& a, Reg u_reg, Reg v_reg, Reg t, Reg t2) {
  a.Ldx(BPF_DW, t, u_reg, kP);
  auto had_parent = a.IfImm(BPF_JNE, t, 0);
  {
    a.Ldx(BPF_DW, t2, t, kL);
    auto was_left = a.IfReg(BPF_JEQ, t2, u_reg);
    a.Stx(BPF_DW, t, kL, v_reg);
    a.Else(was_left);
    a.Stx(BPF_DW, t, kR, v_reg);
    a.EndIf(was_left);
  }
  a.Else(had_parent);
  a.LoadHeapAddr(t2, kRootOff);
  a.Stx(BPF_DW, t2, 0, v_reg);
  a.EndIf(had_parent);
  auto v_nonnull = a.IfImm(BPF_JNE, v_reg, 0);
  a.Stx(BPF_DW, v_reg, kP, t);
  a.EndIf(v_nonnull);
}

// One side of the insert rebalancing loop. Expects z in R9, parent in R8,
// grandparent in R7. `left` = parent is grandparent's left child.
void EmitInsertFixArm(Assembler& a, bool left, Assembler::Label loop_head,
                      Assembler::Label done) {
  int16_t other = left ? kR : kL;
  a.Ldx(BPF_DW, R4, R7, other);  // uncle
  auto uncle_present = a.IfImm(BPF_JNE, R4, 0);
  {
    a.Ldx(BPF_DW, R5, R4, kC);
    auto uncle_red = a.IfImm(BPF_JEQ, R5, 1);
    // Case 1: recolor and move z to grandparent.
    a.StImm(BPF_DW, R8, kC, 0);
    a.StImm(BPF_DW, R4, kC, 0);
    a.StImm(BPF_DW, R7, kC, 1);
    a.Mov(R9, R7);
    a.Jmp(loop_head);
    a.EndIf(uncle_red);
  }
  a.EndIf(uncle_present);
  // Case 2: z is the inner child -> rotate parent toward `side`.
  a.Ldx(BPF_DW, R4, R8, other);
  auto inner = a.IfReg(BPF_JEQ, R9, R4);
  a.Mov(R9, R8);
  EmitRotate(a, /*left=*/left, R9, R2, R3, R4);
  a.EndIf(inner);
  // Case 3: recolor and rotate grandparent toward `other`.
  a.Ldx(BPF_DW, R8, R9, kP);
  auto p_ok = a.IfImm(BPF_JEQ, R8, 0);
  a.Jmp(done);
  a.EndIf(p_ok);
  a.Ldx(BPF_DW, R7, R8, kP);
  auto g_ok = a.IfImm(BPF_JEQ, R7, 0);
  a.Jmp(done);
  a.EndIf(g_ok);
  a.StImm(BPF_DW, R8, kC, 0);
  a.StImm(BPF_DW, R7, kC, 1);
  a.Mov(R2, R7);
  EmitRotate(a, /*left=*/!left, R2, R3, R4, R5);
  a.Jmp(loop_head);
}

void EmitUpdate(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.MovImm(R8, 0);  // parent
  a.LoadHeapAddr(R2, kRootOff);
  a.Ldx(BPF_DW, R9, R2, 0);  // cur

  auto place = a.NewLabel();
  {
    auto descend = a.LoopBegin();
    a.LoopBreakIfImm(descend, BPF_JEQ, R9, 0);
    a.Ldx(BPF_DW, R3, R9, kK);
    {
      auto eq = a.IfReg(BPF_JEQ, R3, R7);
      a.Ldx(BPF_DW, R4, R6, kDsOffValue);
      a.Stx(BPF_DW, R9, kV, R4);
      EmitSuccess(a);
      a.EndIf(eq);
    }
    a.Mov(R8, R9);
    {
      auto lt = a.IfReg(BPF_JLT, R7, R3);
      a.Ldx(BPF_DW, R9, R9, kL);
      a.Else(lt);
      a.Ldx(BPF_DW, R9, R9, kR);
      a.EndIf(lt);
    }
    a.LoopEnd(descend);
  }
  a.Bind(place);

  a.MovImm(R1, kNodeSize);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  EmitFail(a);
  a.EndIf(null);
  a.Stx(BPF_DW, R0, kK, R7);
  a.Ldx(BPF_DW, R2, R6, kDsOffValue);
  a.Stx(BPF_DW, R0, kV, R2);
  a.StImm(BPF_DW, R0, kL, 0);
  a.StImm(BPF_DW, R0, kR, 0);
  a.StImm(BPF_DW, R0, kC, 1);  // red
  a.Stx(BPF_DW, R0, kP, R8);
  {
    auto has_parent = a.IfImm(BPF_JNE, R8, 0);
    {
      a.Ldx(BPF_DW, R3, R8, kK);
      auto lt = a.IfReg(BPF_JLT, R7, R3);
      a.Stx(BPF_DW, R8, kL, R0);
      a.Else(lt);
      a.Stx(BPF_DW, R8, kR, R0);
      a.EndIf(lt);
    }
    a.Else(has_parent);
    a.LoadHeapAddr(R2, kRootOff);
    a.Stx(BPF_DW, R2, 0, R0);
    a.EndIf(has_parent);
  }
  a.Mov(R9, R0);
  a.OrImm(R9, 0);  // launder z: all fixup accesses are formation-guarded

  // Rebalance.
  auto done = a.NewLabel();
  auto loop_head = a.NewLabel();
  a.Bind(loop_head);
  a.Ldx(BPF_DW, R8, R9, kP);
  a.JmpImm(BPF_JEQ, R8, 0, done);
  a.Ldx(BPF_DW, R2, R8, kC);
  a.JmpImm(BPF_JEQ, R2, 0, done);  // parent black
  a.Ldx(BPF_DW, R7, R8, kP);
  a.JmpImm(BPF_JEQ, R7, 0, done);
  a.Ldx(BPF_DW, R3, R7, kL);
  {
    auto parent_left = a.IfReg(BPF_JEQ, R8, R3);
    EmitInsertFixArm(a, /*left=*/true, loop_head, done);
    a.Else(parent_left);
    EmitInsertFixArm(a, /*left=*/false, loop_head, done);
    a.EndIf(parent_left);
  }
  a.Jmp(loop_head);

  a.Bind(done);
  a.LoadHeapAddr(R2, kRootOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  {
    auto nonempty = a.IfImm(BPF_JNE, R3, 0);
    a.StImm(BPF_DW, R3, kC, 0);  // root is black
    a.EndIf(nonempty);
  }
  EmitSuccess(a);
}

void EmitLookup(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.LoadHeapAddr(R2, kRootOff);
  a.Ldx(BPF_DW, R9, R2, 0);
  auto miss = a.NewLabel();
  auto found = a.NewLabel();
  {
    auto descend = a.LoopBegin();
    a.LoopBreakIfImm(descend, BPF_JEQ, R9, 0);
    a.Ldx(BPF_DW, R3, R9, kK);
    a.JmpReg(BPF_JEQ, R3, R7, found);
    {
      auto lt = a.IfReg(BPF_JLT, R7, R3);
      a.Ldx(BPF_DW, R9, R9, kL);
      a.Else(lt);
      a.Ldx(BPF_DW, R9, R9, kR);
      a.EndIf(lt);
    }
    a.LoopEnd(descend);
  }
  a.Jmp(miss);
  a.Bind(found);
  a.Ldx(BPF_DW, R2, R9, kV);
  a.Stx(BPF_DW, R6, kDsOffAux, R2);
  EmitSuccess(a);
  a.Bind(miss);
  EmitFail(a);
}

// One side of the delete rebalancing loop. x in R7 (may be 0), x's parent in
// R8 (non-null). `left` = x is the left child.
void EmitDeleteFixArm(Assembler& a, bool left, Assembler::Label loop_head,
                      Assembler::Label fix_done) {
  int16_t side = left ? kL : kR;
  int16_t other = left ? kR : kL;
  (void)side;
  a.Ldx(BPF_DW, R9, R8, other);  // w = sibling
  a.JmpImm(BPF_JEQ, R9, 0, fix_done);  // corrupted tree: bail safely
  {
    a.Ldx(BPF_DW, R4, R9, kC);
    auto w_red = a.IfImm(BPF_JEQ, R4, 1);
    // Case 1: sibling red.
    a.StImm(BPF_DW, R9, kC, 0);
    a.StImm(BPF_DW, R8, kC, 1);
    a.Mov(R2, R8);
    EmitRotate(a, /*left=*/left, R2, R3, R4, R5);
    a.Ldx(BPF_DW, R9, R8, other);
    a.JmpImm(BPF_JEQ, R9, 0, fix_done);
    a.EndIf(w_red);
  }
  // R2 = w.left-side child color is red?, R3 = w.other-side child red?
  a.Ldx(BPF_DW, R4, R9, left ? kL : kR);   // w's near child
  a.Ldx(BPF_DW, R5, R9, left ? kR : kL);   // w's far child
  a.MovImm(R2, 0);
  {
    auto near_nonnull = a.IfImm(BPF_JNE, R4, 0);
    a.Ldx(BPF_DW, R0, R4, kC);
    auto near_red = a.IfImm(BPF_JEQ, R0, 1);
    a.MovImm(R2, 1);
    a.EndIf(near_red);
    a.EndIf(near_nonnull);
  }
  a.MovImm(R3, 0);
  {
    auto far_nonnull = a.IfImm(BPF_JNE, R5, 0);
    a.Ldx(BPF_DW, R0, R5, kC);
    auto far_red = a.IfImm(BPF_JEQ, R0, 1);
    a.MovImm(R3, 1);
    a.EndIf(far_red);
    a.EndIf(far_nonnull);
  }
  {
    auto near_black = a.IfImm(BPF_JEQ, R2, 0);
    auto far_black = a.IfImm(BPF_JEQ, R3, 0);
    // Case 2: both of w's children black -> recolor w, move x up.
    a.StImm(BPF_DW, R9, kC, 1);
    a.Mov(R7, R8);
    a.Ldx(BPF_DW, R8, R7, kP);
    a.Jmp(loop_head);
    a.EndIf(far_black);
    a.EndIf(near_black);
  }
  {
    // Case 3: far child black (near child red) -> rotate w away.
    auto far_black2 = a.IfImm(BPF_JEQ, R3, 0);
    a.StImm(BPF_DW, R4, kC, 0);  // near child black
    a.StImm(BPF_DW, R9, kC, 1);  // w red
    EmitRotate(a, /*left=*/!left, R9, R2, R3, R5);
    a.Ldx(BPF_DW, R9, R8, other);
    a.JmpImm(BPF_JEQ, R9, 0, fix_done);
    a.EndIf(far_black2);
  }
  // Case 4: far child red.
  a.Ldx(BPF_DW, R4, R8, kC);
  a.Stx(BPF_DW, R9, kC, R4);   // w.color = xp.color
  a.StImm(BPF_DW, R8, kC, 0);  // xp black
  a.Ldx(BPF_DW, R5, R9, other);
  {
    auto far_nonnull = a.IfImm(BPF_JNE, R5, 0);
    a.StImm(BPF_DW, R5, kC, 0);
    a.EndIf(far_nonnull);
  }
  a.Mov(R2, R8);
  EmitRotate(a, /*left=*/left, R2, R3, R4, R5);
  // x = root terminates the loop.
  a.LoadHeapAddr(R2, kRootOff);
  a.Ldx(BPF_DW, R7, R2, 0);
  a.Ldx(BPF_DW, R8, R7, kP);  // 0 for the root; loop exits immediately
  a.Jmp(loop_head);
}

void EmitDelete(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.LoadHeapAddr(R2, kRootOff);
  a.Ldx(BPF_DW, R9, R2, 0);
  auto miss = a.NewLabel();
  auto found = a.NewLabel();
  {
    auto descend = a.LoopBegin();
    a.LoopBreakIfImm(descend, BPF_JEQ, R9, 0);
    a.Ldx(BPF_DW, R3, R9, kK);
    a.JmpReg(BPF_JEQ, R3, R7, found);
    {
      auto lt = a.IfReg(BPF_JLT, R7, R3);
      a.Ldx(BPF_DW, R9, R9, kL);
      a.Else(lt);
      a.Ldx(BPF_DW, R9, R9, kR);
      a.EndIf(lt);
    }
    a.LoopEnd(descend);
  }
  a.Jmp(miss);

  a.Bind(found);
  // z = R9. Stack slot [-8] holds the removed color; R7 becomes x,
  // R8 becomes x's parent.
  auto free_z = a.NewLabel();
  a.Ldx(BPF_DW, R2, R9, kL);
  a.Ldx(BPF_DW, R3, R9, kR);
  {
    auto no_left = a.IfImm(BPF_JEQ, R2, 0);
    {
      // x = z.right, x_parent = z.parent.
      a.Mov(R7, R3);
      a.Ldx(BPF_DW, R8, R9, kP);
      a.Ldx(BPF_DW, R4, R9, kC);
      a.Stx(BPF_DW, R10, -8, R4);
      EmitTransplant(a, R9, R7, R4, R5);
      a.Jmp(free_z);
    }
    a.EndIf(no_left);
  }
  {
    auto no_right = a.IfImm(BPF_JEQ, R3, 0);
    {
      a.Mov(R7, R2);
      a.Ldx(BPF_DW, R8, R9, kP);
      a.Ldx(BPF_DW, R4, R9, kC);
      a.Stx(BPF_DW, R10, -8, R4);
      EmitTransplant(a, R9, R7, R4, R5);
      a.Jmp(free_z);
    }
    a.EndIf(no_right);
  }
  // Two children: y = minimum(z.right) (R5).
  a.Mov(R5, R3);
  {
    auto minloop = a.LoopBegin();
    a.Ldx(BPF_DW, R4, R5, kL);
    a.LoopBreakIfImm(minloop, BPF_JEQ, R4, 0);
    a.Mov(R5, R4);
    a.LoopEnd(minloop);
  }
  a.Ldx(BPF_DW, R4, R5, kC);
  a.Stx(BPF_DW, R10, -8, R4);  // y's original color
  a.Ldx(BPF_DW, R7, R5, kR);   // x = y.right
  a.Ldx(BPF_DW, R2, R5, kP);
  {
    auto y_child_of_z = a.IfReg(BPF_JEQ, R2, R9);
    a.Mov(R8, R5);  // x_parent = y
    a.Else(y_child_of_z);
    a.Mov(R8, R2);  // x_parent = y.parent
    EmitTransplant(a, R5, R7, R4, R0);
    a.Ldx(BPF_DW, R3, R9, kR);
    a.Stx(BPF_DW, R5, kR, R3);
    a.Stx(BPF_DW, R3, kP, R5);
    a.EndIf(y_child_of_z);
  }
  EmitTransplant(a, R9, R5, R4, R0);
  a.Ldx(BPF_DW, R3, R9, kL);
  a.Stx(BPF_DW, R5, kL, R3);
  a.Stx(BPF_DW, R3, kP, R5);
  a.Ldx(BPF_DW, R4, R9, kC);
  a.Stx(BPF_DW, R5, kC, R4);

  a.Bind(free_z);
  a.Mov(R1, R9);
  a.Call(kHelperKflexFree);
  a.Ldx(BPF_DW, R4, R10, -8);
  auto fix_done = a.NewLabel();
  a.JmpImm(BPF_JEQ, R4, 1, fix_done);  // removed a red node: nothing to fix

  auto loop_head = a.NewLabel();
  a.Bind(loop_head);
  a.LoadHeapAddr(R2, kRootOff);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.JmpReg(BPF_JEQ, R7, R3, fix_done);  // x == root (covers empty tree)
  {
    auto x_nonnull = a.IfImm(BPF_JNE, R7, 0);
    a.Ldx(BPF_DW, R4, R7, kC);
    a.JmpImm(BPF_JEQ, R4, 1, fix_done);  // x is red: recolor at fix_done
    a.EndIf(x_nonnull);
  }
  a.JmpImm(BPF_JEQ, R8, 0, fix_done);  // defensive: lost the parent chain
  a.Ldx(BPF_DW, R4, R8, kL);
  {
    auto x_left = a.IfReg(BPF_JEQ, R7, R4);
    EmitDeleteFixArm(a, /*left=*/true, loop_head, fix_done);
    a.Else(x_left);
    EmitDeleteFixArm(a, /*left=*/false, loop_head, fix_done);
    a.EndIf(x_left);
  }
  a.Jmp(loop_head);

  a.Bind(fix_done);
  {
    auto x_nonnull = a.IfImm(BPF_JNE, R7, 0);
    a.StImm(BPF_DW, R7, kC, 0);  // x black
    a.EndIf(x_nonnull);
  }
  EmitSuccess(a);

  a.Bind(miss);
  EmitFail(a);
}

}  // namespace

DsBuild BuildRbTree(DsOp op, uint64_t heap_size) {
  Assembler a;
  switch (op) {
    case DsOp::kUpdate:
      EmitUpdate(a);
      break;
    case DsOp::kLookup:
      EmitLookup(a);
      break;
    case DsOp::kDelete:
      EmitDelete(a);
      break;
  }
  auto p = a.Finish(std::string("rbtree_") + DsOpName(op), Hook::kTracepoint,
                    ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return DsBuild{std::move(p).value(), /*static_bytes=*/64};
}

}  // namespace kflex
