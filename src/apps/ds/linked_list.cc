// Doubly linked list as a KFlex extension.
//
// Heap layout:
//   @64  u64 head
// Node (32 bytes, size class 32):
//   @0 next  @8 prev  @16 key  @24 value
#include "src/apps/ds/ds.h"

#include "src/base/logging.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"

namespace kflex {

namespace {

constexpr uint64_t kHeadOff = 64;
constexpr int16_t kNext = 0;
constexpr int16_t kPrev = 8;
constexpr int16_t kKey = 16;
constexpr int16_t kValue = 24;
constexpr int32_t kNodeSize = 32;

void EmitFail(Assembler& a) {
  a.StImm(BPF_DW, R6, kDsOffResult, 0);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitUpdate(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.MovImm(R1, kNodeSize);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  EmitFail(a);
  a.EndIf(null);
  // R0 is a typed heap pointer: field initialization is guard-elided.
  a.Stx(BPF_DW, R0, kKey, R7);
  a.Ldx(BPF_DW, R2, R6, kDsOffValue);
  a.Stx(BPF_DW, R0, kValue, R2);
  a.StImm(BPF_DW, R0, kPrev, 0);
  a.LoadHeapAddr(R8, kHeadOff);
  a.Ldx(BPF_DW, R3, R8, 0);       // old head (untrusted scalar)
  a.Stx(BPF_DW, R0, kNext, R3);
  auto nonempty = a.IfImm(BPF_JNE, R3, 0);
  a.Stx(BPF_DW, R3, kPrev, R0);   // old->prev = node (formation guard)
  a.EndIf(nonempty);
  a.Stx(BPF_DW, R8, 0, R0);       // head = node (stores a heap pointer)
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

// Emits the search loop: on exit-with-match, R9 holds the matching node and
// control continues; on miss, control is at `miss` (caller binds).
void EmitSearch(Assembler& a, Assembler::Label miss) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.LoadHeapAddr(R8, kHeadOff);
  a.Ldx(BPF_DW, R9, R8, 0);  // e = head
  auto found = a.NewLabel();
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R9, 0);
  a.Ldx(BPF_DW, R2, R9, kKey);
  a.JmpReg(BPF_JEQ, R2, R7, found);
  a.Ldx(BPF_DW, R9, R9, kNext);
  a.LoopEnd(loop);
  a.Jmp(miss);
  a.Bind(found);
}

void EmitLookup(Assembler& a) {
  auto miss = a.NewLabel();
  EmitSearch(a, miss);
  a.Ldx(BPF_DW, R2, R9, kValue);
  a.Stx(BPF_DW, R6, kDsOffAux, R2);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(miss);
  EmitFail(a);
}

void EmitDelete(Assembler& a) {
  auto miss = a.NewLabel();
  EmitSearch(a, miss);
  a.Ldx(BPF_DW, R2, R9, kNext);
  a.Ldx(BPF_DW, R3, R9, kPrev);
  auto has_prev = a.IfImm(BPF_JNE, R3, 0);
  a.Stx(BPF_DW, R3, kNext, R2);  // prev->next = next
  a.Else(has_prev);
  a.Stx(BPF_DW, R8, 0, R2);      // head = next
  a.EndIf(has_prev);
  auto has_next = a.IfImm(BPF_JNE, R2, 0);
  a.Stx(BPF_DW, R2, kPrev, R3);  // next->prev = prev
  a.EndIf(has_next);
  a.Mov(R1, R9);
  a.Call(kHelperKflexFree);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(miss);
  EmitFail(a);
}

}  // namespace

const char* DsOpName(DsOp op) {
  switch (op) {
    case DsOp::kUpdate:
      return "update";
    case DsOp::kLookup:
      return "lookup";
    case DsOp::kDelete:
      return "delete";
  }
  return "?";
}

DsBuild BuildLinkedList(DsOp op, uint64_t heap_size) {
  Assembler a;
  switch (op) {
    case DsOp::kUpdate:
      EmitUpdate(a);
      break;
    case DsOp::kLookup:
      EmitLookup(a);
      break;
    case DsOp::kDelete:
      EmitDelete(a);
      break;
  }
  auto p = a.Finish(std::string("list_") + DsOpName(op), Hook::kTracepoint,
                    ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return DsBuild{std::move(p).value(), /*static_bytes=*/64};
}

}  // namespace kflex
