#include "src/apps/ds/harness.h"

namespace kflex {

StatusOr<DsInstance> DsInstance::Create(Runtime& runtime, const DsBuilder& builder,
                                        const KieOptions& kie, uint64_t heap_size,
                                        const EngineChoice& engine) {
  DsInstance instance(runtime);
  ExtensionId heap_owner = 0;
  for (DsOp op : {DsOp::kUpdate, DsOp::kLookup, DsOp::kDelete}) {
    DsBuild build = builder(op, heap_size);
    LoadOptions lo;
    lo.kie = kie;
    lo.heap_static_bytes = build.static_bytes;
    lo.share_heap_with = heap_owner;
    lo.optimize = engine.optimize;
    lo.engine = engine.engine;
    lo.jit = engine.jit;
    StatusOr<ExtensionId> id = runtime.Load(build.program, lo);
    if (!id.ok()) {
      return Status(id.status().code(),
                    build.program.name + ": " + id.status().message());
    }
    instance.ids_[static_cast<size_t>(op)] = *id;
    if (heap_owner == 0) {
      heap_owner = *id;
    }
  }
  return instance;
}

InvokeResult DsInstance::Run(DsOp op, DsCtx& ctx) {
  ctx.op = static_cast<uint64_t>(op);
  InvokeResult r =
      runtime_->Invoke(ids_[static_cast<size_t>(op)], /*cpu=*/0, ctx.bytes(), kDsCtxSize);
  last_insns_ = r.insns;
  last_instr_insns_ = r.instr_insns;
  last_cancelled_ = r.cancelled;
  return r;
}

bool DsInstance::Update(uint64_t key, uint64_t value) {
  DsCtx ctx;
  ctx.key = key;
  ctx.value = value;
  InvokeResult r = Run(DsOp::kUpdate, ctx);
  return r.attached && !r.cancelled && ctx.result == 1;
}

std::optional<uint64_t> DsInstance::Lookup(uint64_t key) {
  DsCtx ctx;
  ctx.key = key;
  InvokeResult r = Run(DsOp::kLookup, ctx);
  if (!r.attached || r.cancelled || ctx.result != 1) {
    return std::nullopt;
  }
  return ctx.aux;
}

bool DsInstance::Delete(uint64_t key) {
  DsCtx ctx;
  ctx.key = key;
  InvokeResult r = Run(DsOp::kDelete, ctx);
  return r.attached && !r.cancelled && ctx.result == 1;
}

}  // namespace kflex
