// Network sketches as KFlex extensions: count-min and count sketch (§5.2).
// All counter accesses use masked indices into static rows, so the verifier
// proves every access safe and the SFI emits zero guards — exactly the
// paper's observation that "the safety of all memory accesses in the sketch
// can be verified statically" (Table 3 caption).
//
// Heap layout (both sketches): 4 rows x 2048 u64 counters @64.
// update: add ctx.value for ctx.key.  lookup: estimate into ctx.aux.
// delete: not meaningful; reports result = 0.
#include "src/apps/ds/ds.h"

#include "src/base/logging.h"
#include "src/dsl/emit.h"
#include "src/ebpf/assembler.h"
#include "src/kernel/packet.h"

namespace kflex {

namespace {

constexpr uint64_t kRowsOff = 64;
constexpr int kRows = 4;
constexpr int kWidth = 2048;
constexpr uint64_t kRowBytes = kWidth * 8;
constexpr uint64_t kStaticBytes = kRows * kRowBytes;

constexpr uint64_t kSeeds[kRows] = {0x9E3779B97F4A7C15ULL, 0xC2B2AE3D27D4EB4FULL,
                                    0x165667B19E3779F9ULL, 0x27D4EB2F165667C5ULL};

void EmitNoop(Assembler& a) {
  a.Mov(R6, R1);
  a.StImm(BPF_DW, R6, kDsOffResult, 0);
  a.MovImm(R0, 0);
  a.Exit();
}

// Leaves &row[r][hash(key) & (kWidth-1)] in `dst` (typed heap pointer whose
// bounds the verifier proves). Key expected in R7. Clobbers R2, R3.
void EmitCounterAddr(Assembler& a, int row, Reg dst) {
  a.Mov(R2, R7);
  a.LoadImm64(R3, kSeeds[row]);
  a.Xor(R2, R3);
  EmitHashFinalize(a, R2, R3);
  a.AndImm(R2, kWidth - 1);
  a.LshImm(R2, 3);
  a.LoadHeapAddr(dst, kRowsOff + static_cast<uint64_t>(row) * kRowBytes);
  a.Add(dst, R2);
}

// The count-sketch sign for `row`: +1/-1 derived from one hash bit.
// Leaves 0 (positive) or 1 (negative) in `dst`. Clobbers R2, R3.
void EmitSignBit(Assembler& a, int row, Reg dst) {
  a.Mov(R2, R7);
  a.LoadImm64(R3, kSeeds[row] ^ 0xABCDEF0123456789ULL);
  a.Xor(R2, R3);
  EmitHashFinalize(a, R2, R3);
  a.Mov(dst, R2);
  a.RshImm(dst, 17);
  a.AndImm(dst, 1);
}

void EmitCmUpdate(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.Ldx(BPF_DW, R8, R6, kDsOffValue);
  for (int row = 0; row < kRows; row++) {
    EmitCounterAddr(a, row, R4);
    a.AtomicAdd(BPF_DW, R4, 0, R8);
  }
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitCmLookup(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.LoadImm64(R8, ~0ULL);  // running minimum
  for (int row = 0; row < kRows; row++) {
    EmitCounterAddr(a, row, R4);
    a.Ldx(BPF_DW, R5, R4, 0);
    auto smaller = a.IfReg(BPF_JLT, R5, R8);
    a.Mov(R8, R5);
    a.EndIf(smaller);
  }
  a.Stx(BPF_DW, R6, kDsOffAux, R8);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitCsUpdate(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  for (int row = 0; row < kRows; row++) {
    a.Ldx(BPF_DW, R8, R6, kDsOffValue);
    EmitSignBit(a, row, R9);
    {
      auto negative = a.IfImm(BPF_JEQ, R9, 1);
      a.Neg(R8);
      a.EndIf(negative);
    }
    EmitCounterAddr(a, row, R4);
    a.AtomicAdd(BPF_DW, R4, 0, R8);
  }
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitCsLookup(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  // Per-row signed estimates spilled to the stack, then median-of-4
  // computed as (sum - min - max) / 2.
  for (int row = 0; row < kRows; row++) {
    EmitCounterAddr(a, row, R4);
    a.Ldx(BPF_DW, R5, R4, 0);
    EmitSignBit(a, row, R9);
    {
      auto negative = a.IfImm(BPF_JEQ, R9, 1);
      a.Neg(R5);
      a.EndIf(negative);
    }
    a.Stx(BPF_DW, R10, static_cast<int16_t>(-8 * (row + 1)), R5);
  }
  // sum -> R8, min -> R9, max -> R7.
  a.Ldx(BPF_DW, R8, R10, -8);
  a.Mov(R9, R8);
  a.Mov(R7, R8);
  for (int row = 1; row < kRows; row++) {
    a.Ldx(BPF_DW, R2, R10, static_cast<int16_t>(-8 * (row + 1)));
    a.Add(R8, R2);
    {
      auto lt = a.IfReg(BPF_JSLT, R2, R9);
      a.Mov(R9, R2);
      a.EndIf(lt);
    }
    {
      auto gt = a.IfReg(BPF_JSGT, R2, R7);
      a.Mov(R7, R2);
      a.EndIf(gt);
    }
  }
  a.Sub(R8, R9);
  a.Sub(R8, R7);
  a.ArshImm(R8, 1);
  a.Stx(BPF_DW, R6, kDsOffAux, R8);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

DsBuild FinishSketch(Assembler& a, const char* name, DsOp op, uint64_t heap_size) {
  auto p = a.Finish(std::string(name) + "_" + DsOpName(op), Hook::kTracepoint,
                    ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return DsBuild{std::move(p).value(), kStaticBytes};
}

}  // namespace

DsBuild BuildCountMinSketch(DsOp op, uint64_t heap_size) {
  Assembler a;
  switch (op) {
    case DsOp::kUpdate:
      EmitCmUpdate(a);
      break;
    case DsOp::kLookup:
      EmitCmLookup(a);
      break;
    case DsOp::kDelete:
      EmitNoop(a);
      break;
  }
  return FinishSketch(a, "countmin", op, heap_size);
}

DsBuild BuildCountSketch(DsOp op, uint64_t heap_size) {
  Assembler a;
  switch (op) {
    case DsOp::kUpdate:
      EmitCsUpdate(a);
      break;
    case DsOp::kLookup:
      EmitCsLookup(a);
      break;
    case DsOp::kDelete:
      EmitNoop(a);
      break;
  }
  return FinishSketch(a, "countsketch", op, heap_size);
}

}  // namespace kflex
