// Chained hash map as a KFlex extension.
//
// Heap layout:
//   @64            u64 element count
//   @128           u64 buckets[4096]   (static, 32 KB)
// Node (24 bytes, size class 32):
//   @0 next  @8 key  @16 value
//
// The bucket-array access is the showcase for guard elision via range
// analysis (§3.2): index = hash & 4095 is provably in bounds, so the bucket
// load/store needs no guard. Chain-node accesses are formation guards.
#include "src/apps/ds/ds.h"

#include "src/base/logging.h"
#include "src/dsl/emit.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"

namespace kflex {

namespace {

constexpr uint64_t kCountOff = 64;
constexpr uint64_t kBucketsOff = 128;
constexpr int kNumBuckets = 4096;
constexpr int16_t kNext = 0;
constexpr int16_t kKey = 8;
constexpr int16_t kValue = 16;
constexpr int32_t kNodeSize = 24;

constexpr uint64_t kStaticBytes = kBucketsOff - 64 + kNumBuckets * 8;

void EmitFail(Assembler& a) {
  a.StImm(BPF_DW, R6, kDsOffResult, 0);
  a.MovImm(R0, 0);
  a.Exit();
}

// R6 = ctx, R7 = key, R8 = bucket address (typed heap pointer, elided).
void EmitBucketAddr(Assembler& a) {
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R7, R6, kDsOffKey);
  a.Mov(R3, R7);
  EmitHashFinalize(a, R3, R4);
  a.AndImm(R3, kNumBuckets - 1);
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R8, kBucketsOff);
  a.Add(R8, R3);
}

// Walks the chain; on match R9 = node and fall-through, else jumps to miss.
// R5 tracks the previous node (0 for bucket head) for delete.
void EmitChainSearch(Assembler& a, Assembler::Label miss) {
  a.Ldx(BPF_DW, R9, R8, 0);  // e = bucket head (elided: R8 provably in bounds)
  a.MovImm(R5, 0);           // prev
  auto found = a.NewLabel();
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R9, 0);
  a.Ldx(BPF_DW, R2, R9, kKey);
  a.JmpReg(BPF_JEQ, R2, R7, found);
  a.Mov(R5, R9);
  a.Ldx(BPF_DW, R9, R9, kNext);
  a.LoopEnd(loop);
  a.Jmp(miss);
  a.Bind(found);
}

void EmitUpdate(Assembler& a) {
  EmitBucketAddr(a);
  auto insert = a.NewLabel();
  EmitChainSearch(a, insert);
  // Key exists: update in place.
  a.Ldx(BPF_DW, R2, R6, kDsOffValue);
  a.Stx(BPF_DW, R9, kValue, R2);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();

  a.Bind(insert);
  a.MovImm(R1, kNodeSize);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  EmitFail(a);
  a.EndIf(null);
  a.Stx(BPF_DW, R0, kKey, R7);
  a.Ldx(BPF_DW, R2, R6, kDsOffValue);
  a.Stx(BPF_DW, R0, kValue, R2);
  a.Ldx(BPF_DW, R3, R8, 0);   // old chain head
  a.Stx(BPF_DW, R0, kNext, R3);
  a.Stx(BPF_DW, R8, 0, R0);   // bucket = node
  a.LoadHeapAddr(R2, kCountOff);
  a.MovImm(R3, 1);
  a.AtomicAdd(BPF_DW, R2, 0, R3);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
}

void EmitLookup(Assembler& a) {
  EmitBucketAddr(a);
  auto miss = a.NewLabel();
  EmitChainSearch(a, miss);
  a.Ldx(BPF_DW, R2, R9, kValue);
  a.Stx(BPF_DW, R6, kDsOffAux, R2);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(miss);
  EmitFail(a);
}

void EmitDelete(Assembler& a) {
  EmitBucketAddr(a);
  auto miss = a.NewLabel();
  EmitChainSearch(a, miss);
  a.Ldx(BPF_DW, R2, R9, kNext);
  auto had_prev = a.IfImm(BPF_JNE, R5, 0);
  a.Stx(BPF_DW, R5, kNext, R2);  // prev->next = next
  a.Else(had_prev);
  a.Stx(BPF_DW, R8, 0, R2);      // bucket = next
  a.EndIf(had_prev);
  a.Mov(R1, R9);
  a.Call(kHelperKflexFree);
  a.LoadHeapAddr(R2, kCountOff);
  a.LoadImm64(R3, static_cast<uint64_t>(-1));
  a.AtomicAdd(BPF_DW, R2, 0, R3);
  a.StImm(BPF_DW, R6, kDsOffResult, 1);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(miss);
  EmitFail(a);
}

}  // namespace

DsBuild BuildHashMap(DsOp op, uint64_t heap_size) {
  Assembler a;
  switch (op) {
    case DsOp::kUpdate:
      EmitUpdate(a);
      break;
    case DsOp::kLookup:
      EmitLookup(a);
      break;
    case DsOp::kDelete:
      EmitDelete(a);
      break;
  }
  auto p = a.Finish(std::string("hashmap_") + DsOpName(op), Hook::kTracepoint,
                    ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return DsBuild{std::move(p).value(), kStaticBytes};
}

}  // namespace kflex
