// Extension-defined data structures (§5.2): hash table, linked list,
// red-black tree, skip list, and two network sketches — each implemented
// entirely inside extension bytecode, with nodes allocated from the
// extension heap via kflex_malloc(). These are the workloads of Figure 5 and
// Table 3.
//
// Each data structure ships one program per operation (update / lookup /
// delete) so that guard statistics can be reported per operation as in
// Table 3. All programs of one data structure share a heap
// (LoadOptions::share_heap_with) and use the tracepoint DsCtx input
// (src/kernel/packet.h):
//
//   ctx.op (unused: the program IS the op), ctx.key, ctx.value
//   ctx.result <- 1 on hit/success, 0 otherwise; ctx.aux <- looked-up value
//
// Register conventions: R6 = saved ctx pointer; R7-R9 locals; loaded node
// pointers are "laundered" to untrusted scalars so every node-field access
// goes through a formation guard, exactly as loads from user-shared memory
// must (§5.4).
#ifndef SRC_APPS_DS_DS_H_
#define SRC_APPS_DS_DS_H_

#include <cstdint>

#include "src/ebpf/program.h"

namespace kflex {

enum class DsOp { kUpdate = 0, kLookup = 1, kDelete = 2 };

const char* DsOpName(DsOp op);

struct DsBuild {
  Program program;
  uint64_t static_bytes = 0;  // heap bytes reserved for the DS's globals
};

// Default heap for the Fig. 5 workloads (64 K elements).
inline constexpr uint64_t kDsHeapSize = 1ULL << 24;  // 16 MB

// ---- Linked list (doubly linked; update pushes front, lookup/delete
// traverse, as in Fig. 5's caption) ----
DsBuild BuildLinkedList(DsOp op, uint64_t heap_size = kDsHeapSize);

// ---- Chained hash map with a static bucket array (4096 buckets) ----
DsBuild BuildHashMap(DsOp op, uint64_t heap_size = kDsHeapSize);

// ---- Red-black tree (CLRS insert/delete with full fixups) ----
DsBuild BuildRbTree(DsOp op, uint64_t heap_size = kDsHeapSize);

// ---- Skip list (16 levels, xorshift level generator in the heap) ----
DsBuild BuildSkipList(DsOp op, uint64_t heap_size = kDsHeapSize);

// ---- Network sketches: update adds `value` for `key`; lookup estimates.
// Delete is not meaningful and maps to a no-op program. ----
DsBuild BuildCountMinSketch(DsOp op, uint64_t heap_size = kDsHeapSize);
DsBuild BuildCountSketch(DsOp op, uint64_t heap_size = kDsHeapSize);

}  // namespace kflex

#endif  // SRC_APPS_DS_DS_H_
