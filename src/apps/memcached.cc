#include "src/apps/memcached.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/dsl/emit.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {

namespace {

using L = MemcachedLayout;

constexpr uint32_t kServerIp = 0x0A000001;
constexpr uint16_t kServerPort = 11211;

// Emits the common epilogue: unlock, release the socket (if validated), and
// transmit the reply from the hook.
void EmitFinish(Assembler& a, bool socket_check) {
  a.LoadHeapAddr(R1, L::kLockOff);
  a.Call(kHelperKflexSpinUnlock);
  if (socket_check) {
    a.Mov(R1, R7);
    a.Call(kHelperSkRelease);
  }
  a.MovImm(R0, static_cast<int32_t>(kXdpTx));
  a.Exit();
}

}  // namespace

Program BuildMemcachedExtension(const MemcachedBuildOptions& options) {
  Assembler a;
  a.Mov(R6, R1);

  if (options.socket_check) {
    // Listing-1 style flow validation: only serve packets addressed to an
    // existing UDP socket; otherwise hand the packet to the kernel stack.
    a.Ldx(BPF_W, R2, R6, kOffSrcIp);
    a.Stx(BPF_W, R10, -16, R2);
    a.Ldx(BPF_H, R3, R6, kOffDstPort);
    a.Stx(BPF_H, R10, -12, R3);
    a.StImm(BPF_H, R10, -10, 0);
    a.Mov(R1, R6);
    a.Mov(R2, R10);
    a.AddImm(R2, -16);
    a.MovImm(R3, 8);
    a.MovImm(R4, 0);
    a.MovImm(R5, 0);
    a.Call(kHelperSkLookupUdp);
    a.Mov(R7, R0);
    {
      auto no_socket = a.IfImm(BPF_JEQ, R7, 0);
      a.MovImm(R0, static_cast<int32_t>(kXdpPass));
      a.Exit();
      a.EndIf(no_socket);
    }
  }

  // Bucket address from the 32-byte key.
  EmitHashKey32(a, R2, R6, kOffKey, R3);
  a.AndImm(R2, L::kNumBuckets - 1);
  a.LshImm(R2, 3);
  a.LoadHeapAddr(R9, L::kBucketsOff);
  a.Add(R9, R2);

  a.LoadHeapAddr(R1, L::kLockOff);
  a.Call(kHelperKflexSpinLock);

  auto set_label = a.NewLabel();
  auto del_label = a.NewLabel();
  auto finish_hit = a.NewLabel();
  auto finish_miss = a.NewLabel();
  a.Ldx(BPF_B, R2, R6, kOffOp);
  a.JmpImm(BPF_JEQ, R2, static_cast<int32_t>(KvOp::kSet), set_label);
  a.JmpImm(BPF_JEQ, R2, static_cast<int32_t>(KvOp::kDel), del_label);

  // ---- GET ----
  {
    a.Ldx(BPF_DW, R8, R9, 0);
    auto loop_head = a.NewLabel();
    a.Bind(loop_head);
    a.JmpImm(BPF_JEQ, R8, 0, finish_miss);
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R8, L::kNodeKey, R6, kOffKey, differ, R2, R3);
    a.Ldx(BPF_DW, R2, R8, L::kNodeValLen);
    a.Stx(BPF_H, R6, kOffValLen, R2);
    EmitCopyWords(a, R6, kOffResp, R8, L::kNodeValue, 8, R3);
    a.Jmp(finish_hit);
    a.Bind(differ);
    a.Ldx(BPF_DW, R8, R8, L::kNodeNext);
    a.Jmp(loop_head);
  }

  // ---- SET ----
  a.Bind(set_label);
  {
    a.Ldx(BPF_DW, R8, R9, 0);
    auto loop_head = a.NewLabel();
    auto insert = a.NewLabel();
    a.Bind(loop_head);
    a.JmpImm(BPF_JEQ, R8, 0, insert);
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R8, L::kNodeKey, R6, kOffKey, differ, R2, R3);
    // Update in place.
    a.Ldx(BPF_H, R2, R6, kOffValLen);
    a.Stx(BPF_DW, R8, L::kNodeValLen, R2);
    EmitCopyWords(a, R8, L::kNodeValue, R6, kOffValue, 8, R3);
    if (options.with_expiry) {
      a.Ldx(BPF_DW, R2, R6, kOffZScore);
      a.Stx(BPF_DW, R8, L::kNodeExpiry, R2);
    }
    a.Jmp(finish_hit);
    a.Bind(differ);
    a.Ldx(BPF_DW, R8, R8, L::kNodeNext);
    a.Jmp(loop_head);

    a.Bind(insert);
    a.MovImm(R1, L::kNodeSize);
    a.Call(kHelperKflexMalloc);
    {
      auto null = a.IfImm(BPF_JEQ, R0, 0);
      a.Jmp(finish_miss);
      a.EndIf(null);
    }
    EmitCopyWords(a, R0, L::kNodeKey, R6, kOffKey, 4, R2);
    a.Ldx(BPF_H, R2, R6, kOffValLen);
    a.Stx(BPF_DW, R0, L::kNodeValLen, R2);
    EmitCopyWords(a, R0, L::kNodeValue, R6, kOffValue, 8, R2);
    if (options.with_expiry) {
      a.Ldx(BPF_DW, R2, R6, kOffZScore);
      a.Stx(BPF_DW, R0, L::kNodeExpiry, R2);
    }
    a.Ldx(BPF_DW, R3, R9, 0);
    a.Stx(BPF_DW, R0, L::kNodeNext, R3);
    a.Stx(BPF_DW, R9, 0, R0);  // bucket head = node (stores a heap pointer)
    a.LoadHeapAddr(R2, L::kCountOff);
    a.Ldx(BPF_DW, R3, R2, 0);
    a.AddImm(R3, 1);
    a.Stx(BPF_DW, R2, 0, R3);
    a.Jmp(finish_hit);
  }

  // ---- DEL ----
  a.Bind(del_label);
  {
    a.Ldx(BPF_DW, R8, R9, 0);
    a.MovImm(R5, 0);  // prev
    auto loop_head = a.NewLabel();
    a.Bind(loop_head);
    a.JmpImm(BPF_JEQ, R8, 0, finish_miss);
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R8, L::kNodeKey, R6, kOffKey, differ, R2, R3);
    a.Ldx(BPF_DW, R2, R8, L::kNodeNext);
    {
      auto had_prev = a.IfImm(BPF_JNE, R5, 0);
      a.Stx(BPF_DW, R5, L::kNodeNext, R2);
      a.Else(had_prev);
      a.Stx(BPF_DW, R9, 0, R2);
      a.EndIf(had_prev);
    }
    a.Mov(R1, R8);
    a.Call(kHelperKflexFree);
    a.LoadHeapAddr(R2, L::kCountOff);
    a.Ldx(BPF_DW, R3, R2, 0);
    a.SubImm(R3, 1);
    a.Stx(BPF_DW, R2, 0, R3);
    a.Jmp(finish_hit);
    a.Bind(differ);
    a.Mov(R5, R8);
    a.Ldx(BPF_DW, R8, R8, L::kNodeNext);
    a.Jmp(loop_head);
  }

  a.Bind(finish_hit);
  a.StImm(BPF_B, R6, kOffRespFlag, 1);
  EmitFinish(a, options.socket_check);

  a.Bind(finish_miss);
  a.StImm(BPF_B, R6, kOffRespFlag, 0);
  EmitFinish(a, options.socket_check);

  auto p = a.Finish("kflex_memcached", Hook::kXdp, ExtensionMode::kKflex, options.heap_size);
  KFLEX_CHECK(p.ok());
  return std::move(p).value();
}

Program BuildBmcProgram(uint32_t map_id) {
  Assembler a;
  a.Mov(R6, R1);
  auto pass = a.NewLabel();
  auto set_label = a.NewLabel();
  a.Ldx(BPF_B, R2, R6, kOffOp);
  a.JmpImm(BPF_JEQ, R2, static_cast<int32_t>(KvOp::kSet), set_label);
  a.JmpImm(BPF_JEQ, R2, static_cast<int32_t>(KvOp::kDel), pass);

  // GET: key to the stack, look aside in the kernel map.
  EmitCopyWords(a, R10, -48, R6, kOffKey, 4, R3);
  a.LoadMapPtr(R1, map_id);
  a.Mov(R2, R10);
  a.AddImm(R2, -48);
  a.Call(kHelperMapLookupElem);
  {
    auto hit = a.IfImm(BPF_JNE, R0, 0);
    a.Ldx(BPF_DW, R2, R0, 0);  // vallen
    a.Stx(BPF_H, R6, kOffValLen, R2);
    EmitCopyWords(a, R6, kOffResp, R0, 8, 8, R3);
    a.StImm(BPF_B, R6, kOffRespFlag, 1);
    a.MovImm(R0, static_cast<int32_t>(kXdpTx));
    a.Exit();
    a.EndIf(hit);
  }
  a.Jmp(pass);  // miss: user space serves it (and the TX path fills the cache)

  // SET: invalidate the cached entry, then let user space process it.
  a.Bind(set_label);
  EmitCopyWords(a, R10, -48, R6, kOffKey, 4, R3);
  a.LoadMapPtr(R1, map_id);
  a.Mov(R2, R10);
  a.AddImm(R2, -48);
  a.Call(kHelperMapDeleteElem);

  a.Bind(pass);
  a.MovImm(R0, static_cast<int32_t>(kXdpPass));
  a.Exit();

  auto p = a.Finish("bmc", Hook::kXdp, ExtensionMode::kEbpf, /*heap=*/0);
  KFLEX_CHECK(p.ok());
  return std::move(p).value();
}

std::array<uint8_t, 32> MakeKey32(uint64_t id) {
  std::array<uint8_t, 32> key{};
  std::memcpy(key.data(), &id, 8);
  for (int i = 8; i < 32; i++) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(0xA5 ^ i);
  }
  return key;
}

// ---- UserMemcached -----------------------------------------------------------

bool UserMemcached::Set(uint64_t key_id, std::string_view value) {
  if (value.size() > 64) {
    return false;
  }
  Value v;
  v.len = static_cast<uint16_t>(value.size());
  std::memcpy(v.bytes.data(), value.data(), value.size());
  table_[key_id] = v;
  return true;
}

std::optional<std::string> UserMemcached::Get(uint64_t key_id) const {
  auto it = table_.find(key_id);
  if (it == table_.end()) {
    return std::nullopt;
  }
  return std::string(reinterpret_cast<const char*>(it->second.bytes.data()), it->second.len);
}

bool UserMemcached::Del(uint64_t key_id) { return table_.erase(key_id) == 1; }

// ---- KflexMemcachedDriver ------------------------------------------------------

StatusOr<KflexMemcachedDriver> KflexMemcachedDriver::Create(
    MockKernel& kernel, const MemcachedBuildOptions& options, const KieOptions& kie,
    const EngineChoice& engine) {
  kernel.sockets().Bind(kServerIp, kServerPort, kProtoUdp);
  Program program = BuildMemcachedExtension(options);
  LoadOptions lo;
  lo.kie = kie;
  lo.heap_static_bytes = L::kStaticBytes;
  lo.optimize = engine.optimize;
  lo.engine = engine.engine;
  lo.jit = engine.jit;
  StatusOr<ExtensionId> id = kernel.runtime().Load(program, lo);
  if (!id.ok()) {
    return id.status();
  }
  KFLEX_RETURN_IF_ERROR(kernel.Attach(*id));
  return KflexMemcachedDriver(kernel, *id);
}

KflexMemcachedDriver::OpResult KflexMemcachedDriver::Deliver(int cpu, KvPacket& pkt) {
  pkt.SetTuple(kServerIp, 40000, kServerPort);
  InvokeResult r = kernel_->Deliver(Hook::kXdp, cpu, pkt.data(), pkt.size());
  OpResult out;
  out.served = r.attached && !r.cancelled && r.verdict == kXdpTx;
  out.insns = r.insns;
  out.instr_insns = r.instr_insns;
  out.hit = pkt.resp_flag() == 1;
  if (out.hit) {
    out.value = std::string(pkt.resp());
  }
  return out;
}

KflexMemcachedDriver::OpResult KflexMemcachedDriver::Set(int cpu, uint64_t key_id,
                                                         std::string_view value,
                                                         uint64_t expiry) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kSet);
  pkt.SetProto(kProtoTcp);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  pkt.SetValue(value);
  pkt.SetZScore(expiry);
  return Deliver(cpu, pkt);
}

KflexMemcachedDriver::OpResult KflexMemcachedDriver::Get(int cpu, uint64_t key_id) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kGet);
  pkt.SetProto(kProtoUdp);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  return Deliver(cpu, pkt);
}

KflexMemcachedDriver::OpResult KflexMemcachedDriver::Del(int cpu, uint64_t key_id) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kDel);
  pkt.SetProto(kProtoTcp);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  return Deliver(cpu, pkt);
}

// ---- BmcDriver -----------------------------------------------------------------

StatusOr<BmcDriver> BmcDriver::Create(MockKernel& kernel) {
  auto desc = kernel.runtime().maps().CreateHash(32, kBmcValueSize, 1 << 16);
  if (!desc.ok()) {
    return desc.status();
  }
  Program program = BuildBmcProgram(desc->id);
  StatusOr<ExtensionId> id = kernel.runtime().Load(program, LoadOptions{});
  if (!id.ok()) {
    return id.status();
  }
  KFLEX_RETURN_IF_ERROR(kernel.Attach(*id));
  return BmcDriver(kernel, *id, desc->id);
}

void BmcDriver::FillCache(uint64_t key_id, const UserMemcached::Value& value) {
  Map* map = kernel_->runtime().maps().Find(map_id_);
  KFLEX_CHECK(map != nullptr);
  auto key = MakeKey32(key_id);
  uint8_t entry[kBmcValueSize] = {0};
  uint64_t len = value.len;
  std::memcpy(entry, &len, 8);
  std::memcpy(entry + 8, value.bytes.data(), 64);
  map->Update(key.data(), entry);
}

BmcDriver::OpResult BmcDriver::Deliver(int cpu, KvPacket& pkt) {
  InvokeResult r = kernel_->Deliver(Hook::kXdp, cpu, pkt.data(), pkt.size());
  OpResult out;
  out.xdp_insns = r.insns;
  out.instr_insns = r.instr_insns;
  out.served_at_xdp = r.attached && !r.cancelled && r.verdict == kXdpTx;
  out.hit = pkt.resp_flag() == 1;
  if (out.hit) {
    out.value = std::string(pkt.resp());
  }
  return out;
}

BmcDriver::OpResult BmcDriver::Get(int cpu, uint64_t key_id) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kGet);
  pkt.SetProto(kProtoUdp);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  OpResult out = Deliver(cpu, pkt);
  if (out.served_at_xdp) {
    return out;
  }
  // Miss: served by the user-space Memcached; BMC's TX-side program caches
  // the reply.
  auto value = backend_.Get(key_id);
  out.hit = value.has_value();
  if (value.has_value()) {
    out.value = *value;
    UserMemcached::Value v;
    v.len = static_cast<uint16_t>(value->size());
    std::memcpy(v.bytes.data(), value->data(), value->size());
    FillCache(key_id, v);
  }
  return out;
}

BmcDriver::OpResult BmcDriver::Set(int cpu, uint64_t key_id, std::string_view value) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kSet);
  pkt.SetProto(kProtoTcp);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  pkt.SetValue(value);
  OpResult out = Deliver(cpu, pkt);  // invalidates, then passes to user space
  backend_.Set(key_id, value);
  out.hit = true;
  return out;
}

BmcDriver::OpResult BmcDriver::Del(int cpu, uint64_t key_id) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kDel);
  pkt.SetProto(kProtoTcp);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  OpResult out = Deliver(cpu, pkt);
  out.hit = backend_.Del(key_id);
  // Invalidate the look-aside entry as well.
  Map* map = kernel_->runtime().maps().Find(map_id_);
  map->Delete(MakeKey32(key_id).data());
  return out;
}

}  // namespace kflex
