// Memcached offloads (§5.1).
//
// Three systems, as in the paper's evaluation:
//  * KFlex-Memcached: GET + SET + DEL fully offloaded in one XDP extension
//    (heap-backed chained hash table, kflex_malloc'd entries, spin lock,
//    socket validation a la Listing 1). TCP SETs are handled at the XDP hook
//    through the TCP fast path.
//  * BMC: an eBPF-mode look-aside cache that serves GET hits from a
//    pre-allocated kernel hash map and passes everything else to user space
//    (SETs invalidate the cached entry).
//  * User-space Memcached: a native C++ implementation behind the full
//    kernel stack.
#ifndef SRC_APPS_MEMCACHED_H_
#define SRC_APPS_MEMCACHED_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/runtime.h"

namespace kflex {

struct MemcachedBuildOptions {
  // Validate that a bound UDP socket exists for the flow before serving
  // (Listing 1); exercises kernel references on the hot path.
  bool socket_check = true;
  // Stamp entries with ctx.zscore as an expiry epoch (used by the co-design
  // experiment's user-space garbage collector, §5.3).
  bool with_expiry = false;
  uint64_t heap_size = 1ULL << 26;  // 64 MB
};

// Extension heap layout (offsets), exposed for the user-space GC (§5.3).
struct MemcachedLayout {
  static constexpr uint64_t kLockOff = 64;
  static constexpr uint64_t kCountOff = 72;
  static constexpr uint64_t kBucketsOff = 128;
  static constexpr int kNumBuckets = 16384;
  static constexpr uint64_t kStaticBytes =
      kBucketsOff + static_cast<uint64_t>(kNumBuckets) * 8 - 64;
  // Node field offsets.
  static constexpr int16_t kNodeNext = 0;
  static constexpr int16_t kNodeKey = 8;     // 32 bytes
  static constexpr int16_t kNodeValLen = 40;
  static constexpr int16_t kNodeValue = 48;  // 64 bytes
  static constexpr int16_t kNodeExpiry = 112;
  static constexpr int32_t kNodeSize = 120;
};

Program BuildMemcachedExtension(const MemcachedBuildOptions& options = {});

// BMC-style GET cache in strict eBPF mode over kernel map `map_id`
// (key 32 B, value kBmcValueSize).
inline constexpr uint32_t kBmcValueSize = 72;  // u64 vallen + 64 B value
Program BuildBmcProgram(uint32_t map_id);

// Deterministic 32-byte key for a numeric key id.
std::array<uint8_t, 32> MakeKey32(uint64_t id);

// Native user-space Memcached (baseline data plane + correctness oracle).
class UserMemcached {
 public:
  struct Value {
    uint16_t len = 0;
    std::array<uint8_t, 64> bytes{};
  };

  bool Set(uint64_t key_id, std::string_view value);
  std::optional<std::string> Get(uint64_t key_id) const;
  bool Del(uint64_t key_id);
  size_t size() const { return table_.size(); }

 private:
  std::unordered_map<uint64_t, Value> table_;
};

// Host-side driver for the KFlex extension: builds packets, delivers them to
// the XDP hook, decodes replies. Also used (with KMod instrumentation
// options) as the trusted-baseline compute proxy.
class KflexMemcachedDriver {
 public:
  struct OpResult {
    bool served = false;  // consumed at the hook (XDP_TX)
    bool hit = false;     // resp_flag
    uint64_t insns = 0;
    uint64_t instr_insns = 0;
    std::string value;
  };

  // Loads the extension into `kernel` and attaches it. Binds the UDP socket
  // the extension validates against. `engine` selects the optimizer /
  // execution-engine configuration (chaos matrix runs all three).
  static StatusOr<KflexMemcachedDriver> Create(MockKernel& kernel,
                                               const MemcachedBuildOptions& options = {},
                                               const KieOptions& kie = {},
                                               const EngineChoice& engine = {});

  OpResult Set(int cpu, uint64_t key_id, std::string_view value, uint64_t expiry = 0);
  OpResult Get(int cpu, uint64_t key_id);
  OpResult Del(int cpu, uint64_t key_id);

  ExtensionId id() const { return id_; }
  MockKernel& kernel() { return *kernel_; }

 private:
  KflexMemcachedDriver(MockKernel& kernel, ExtensionId id) : kernel_(&kernel), id_(id) {}

  OpResult Deliver(int cpu, KvPacket& pkt);

  MockKernel* kernel_;
  ExtensionId id_;
};

// Host-side driver for BMC: the XDP program serves GET hits; misses, SETs
// and DELs fall through to a user-space Memcached, and the host mimics BMC's
// TX-side cache fill.
class BmcDriver {
 public:
  struct OpResult {
    bool served_at_xdp = false;
    bool hit = false;
    uint64_t xdp_insns = 0;  // instructions spent in the eBPF program
    uint64_t instr_insns = 0;
    std::string value;
  };

  static StatusOr<BmcDriver> Create(MockKernel& kernel);

  OpResult Set(int cpu, uint64_t key_id, std::string_view value);
  OpResult Get(int cpu, uint64_t key_id);
  OpResult Del(int cpu, uint64_t key_id);

  UserMemcached& backend() { return backend_; }

 private:
  BmcDriver(MockKernel& kernel, ExtensionId id, uint32_t map_id)
      : kernel_(&kernel), id_(id), map_id_(map_id) {}

  void FillCache(uint64_t key_id, const UserMemcached::Value& value);
  OpResult Deliver(int cpu, KvPacket& pkt);

  MockKernel* kernel_;
  ExtensionId id_;
  uint32_t map_id_;
  UserMemcached backend_;
};

}  // namespace kflex

#endif  // SRC_APPS_MEMCACHED_H_
