#include "src/apps/codesign.h"

#include "src/base/logging.h"
#include "src/runtime/spinlock.h"

namespace kflex {

namespace {
using L = MemcachedLayout;
}  // namespace

StatusOr<CodesignMemcached> CodesignMemcached::Create(MockKernel& kernel,
                                                      const KieOptions& kie) {
  MemcachedBuildOptions build;
  build.with_expiry = true;
  KieOptions options = kie;
  // Shared pointers: the collector must be able to follow stored node
  // pointers from user space.
  options.translate_on_store = true;
  StatusOr<KflexMemcachedDriver> driver = KflexMemcachedDriver::Create(kernel, build, options);
  if (!driver.ok()) {
    return driver.status();
  }
  ExtensionHeap* heap = kernel.runtime().heap(driver->id());
  HeapAllocator* allocator = kernel.runtime().allocator(driver->id());
  return CodesignMemcached(std::move(driver).value(), heap, allocator);
}

KflexMemcachedDriver::OpResult CodesignMemcached::Set(int cpu, uint64_t key_id,
                                                      std::string_view value,
                                                      uint64_t expiry_epoch) {
  return driver_.Set(cpu, key_id, value, expiry_epoch);
}

KflexMemcachedDriver::OpResult CodesignMemcached::Get(int cpu, uint64_t key_id) {
  return driver_.Get(cpu, key_id);
}

KflexMemcachedDriver::OpResult CodesignMemcached::Del(int cpu, uint64_t key_id) {
  return driver_.Del(cpu, key_id);
}

uint64_t CodesignMemcached::Count() {
  uint64_t count = 0;
  view_.Load(view_.AddrOf(L::kCountOff), count);
  return count;
}

CodesignMemcached::GcResult CodesignMemcached::RunGc(uint64_t current_epoch,
                                                     uint64_t now_ns) {
  GcResult result;
  ExtensionHeap* heap = view_.heap();
  void* lock_word = heap->HostAt(L::kLockOff);

  // User-space critical section under a time-slice extension (§3.4/§4.4):
  // the fast path cannot sleep, so both sides use the shared spin lock.
  slice_.EnterCritical(now_ns);
  SpinLockOps::Acquire(lock_word, SpinLockOps::kUserOwner, nullptr);

  for (int bucket = 0; bucket < L::kNumBuckets; bucket++) {
    uint64_t slot_off = L::kBucketsOff + static_cast<uint64_t>(bucket) * 8;
    uint64_t prev_user_va = 0;  // 0: the bucket slot itself
    uint64_t node = view_.LoadPointerAt(slot_off);
    while (node != 0) {
      if (!view_.Contains(node)) {
        // The store was made without translation (or corrupted); normalize
        // through the shared-heap mask, the same sanitization the kernel
        // side applies.
        node = view_.base() + view_.OffsetOf(node);
      }
      result.scanned++;
      uint64_t expiry = 0;
      uint64_t next = 0;
      view_.Load(node + L::kNodeExpiry, expiry);
      view_.Load(node + L::kNodeNext, next);
      if (expiry < current_epoch) {
        // Unlink from user space; stores keep user VAs so later user-space
        // walks still work, and the extension re-masks them on dereference.
        if (prev_user_va == 0) {
          view_.Store(view_.AddrOf(slot_off), next);
        } else {
          view_.Store(prev_user_va + L::kNodeNext, next);
        }
        // Return the node to the KFlex allocator (its user-space backend,
        // §4.1).
        allocator_->Free(/*cpu=*/0, view_.OffsetOf(node));
        uint64_t count = 0;
        view_.Load(view_.AddrOf(L::kCountOff), count);
        view_.Store(view_.AddrOf(L::kCountOff), count - 1);
        result.evicted++;
      } else {
        prev_user_va = node;
      }
      node = next;
    }
  }

  // Virtual critical-section duration: ~20 ns per scanned entry plus the
  // bucket sweep. If it exceeds the granted slice the scheduler would
  // forcefully preempt the collector (§4.4).
  uint64_t virtual_duration = result.scanned * 20 + L::kNumBuckets * 2;
  if (slice_.ShouldPreempt(now_ns + virtual_duration)) {
    slice_.MarkPreempted();
    result.preempt_flagged = true;
  }
  SpinLockOps::Release(lock_word);
  slice_.LeaveCritical();
  return result;
}

}  // namespace kflex
