#include "src/apps/redis.h"

#include <cstring>

#include "src/apps/memcached.h"  // MakeKey32
#include "src/base/logging.h"
#include "src/dsl/emit.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {

namespace {

using L = RedisLayout;

}  // namespace

Program BuildRedisExtension(const RedisBuildOptions& options) {
  Assembler a;
  a.Mov(R6, R1);

  // Bucket address from the 32-byte key.
  EmitHashKey32(a, R2, R6, kOffKey, R3);
  a.AndImm(R2, L::kNumBuckets - 1);
  a.LshImm(R2, 3);
  a.LoadHeapAddr(R9, L::kBucketsOff);
  a.Add(R9, R2);

  a.LoadHeapAddr(R1, L::kLockOff);
  a.Call(kHelperKflexSpinLock);

  auto set_label = a.NewLabel();
  auto zadd_label = a.NewLabel();
  auto finish_hit = a.NewLabel();
  auto finish_miss = a.NewLabel();
  a.Ldx(BPF_B, R2, R6, kOffOp);
  a.JmpImm(BPF_JEQ, R2, static_cast<int32_t>(KvOp::kSet), set_label);
  a.JmpImm(BPF_JEQ, R2, static_cast<int32_t>(KvOp::kZadd), zadd_label);

  // ---- GET ----
  {
    a.Ldx(BPF_DW, R8, R9, 0);
    auto loop_head = a.NewLabel();
    a.Bind(loop_head);
    a.JmpImm(BPF_JEQ, R8, 0, finish_miss);
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R8, L::kNodeKey, R6, kOffKey, differ, R2, R3);
    a.Ldx(BPF_DW, R2, R8, L::kNodeValLen);
    a.Stx(BPF_H, R6, kOffValLen, R2);
    EmitCopyWords(a, R6, kOffResp, R8, L::kNodeValue, 8, R3);
    a.Jmp(finish_hit);
    a.Bind(differ);
    a.Ldx(BPF_DW, R8, R8, L::kNodeNext);
    a.Jmp(loop_head);
  }

  // ---- SET ----
  a.Bind(set_label);
  {
    a.Ldx(BPF_DW, R8, R9, 0);
    auto loop_head = a.NewLabel();
    auto insert = a.NewLabel();
    a.Bind(loop_head);
    a.JmpImm(BPF_JEQ, R8, 0, insert);
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R8, L::kNodeKey, R6, kOffKey, differ, R2, R3);
    a.Ldx(BPF_H, R2, R6, kOffValLen);
    a.Stx(BPF_DW, R8, L::kNodeValLen, R2);
    EmitCopyWords(a, R8, L::kNodeValue, R6, kOffValue, 8, R3);
    a.Jmp(finish_hit);
    a.Bind(differ);
    a.Ldx(BPF_DW, R8, R8, L::kNodeNext);
    a.Jmp(loop_head);

    a.Bind(insert);
    a.MovImm(R1, L::kNodeSize);
    a.Call(kHelperKflexMalloc);
    {
      auto null = a.IfImm(BPF_JEQ, R0, 0);
      a.Jmp(finish_miss);
      a.EndIf(null);
    }
    EmitCopyWords(a, R0, L::kNodeKey, R6, kOffKey, 4, R2);
    a.Ldx(BPF_H, R2, R6, kOffValLen);
    a.Stx(BPF_DW, R0, L::kNodeValLen, R2);
    EmitCopyWords(a, R0, L::kNodeValue, R6, kOffValue, 8, R2);
    a.StImm(BPF_DW, R0, L::kNodeZRoot, 0);
    a.Ldx(BPF_DW, R3, R9, 0);
    a.Stx(BPF_DW, R0, L::kNodeNext, R3);
    a.Stx(BPF_DW, R9, 0, R0);
    a.Jmp(finish_hit);
  }

  // ---- ZADD ----
  a.Bind(zadd_label);
  {
    auto have_node = a.NewLabel();
    // Find or create the hash node for the key.
    a.Ldx(BPF_DW, R8, R9, 0);
    auto loop_head = a.NewLabel();
    auto create = a.NewLabel();
    a.Bind(loop_head);
    a.JmpImm(BPF_JEQ, R8, 0, create);
    auto differ = a.NewLabel();
    EmitKeyCompare32(a, R8, L::kNodeKey, R6, kOffKey, differ, R2, R3);
    a.Ldx(BPF_DW, R7, R8, L::kNodeZRoot);
    a.Jmp(have_node);
    a.Bind(differ);
    a.Ldx(BPF_DW, R8, R8, L::kNodeNext);
    a.Jmp(loop_head);

    a.Bind(create);
    a.MovImm(R1, L::kNodeSize);
    a.Call(kHelperKflexMalloc);
    {
      auto null = a.IfImm(BPF_JEQ, R0, 0);
      a.Jmp(finish_miss);
      a.EndIf(null);
    }
    EmitCopyWords(a, R0, L::kNodeKey, R6, kOffKey, 4, R2);
    a.StImm(BPF_DW, R0, L::kNodeValLen, 0);
    a.StImm(BPF_DW, R0, L::kNodeZRoot, 0);
    a.Ldx(BPF_DW, R3, R9, 0);
    a.Stx(BPF_DW, R0, L::kNodeNext, R3);
    a.Stx(BPF_DW, R9, 0, R0);
    a.Mov(R8, R0);
    a.OrImm(R8, 0);  // launder to match the found path
    a.MovImm(R7, 0);

    a.Bind(have_node);
    // R8 = hash node, R7 = zset root (0 if absent).
    {
      auto has_root = a.IfImm(BPF_JNE, R7, 0);
      a.Else(has_root);
      // Allocate + zero the skip-list head; plant it in the hash node.
      a.MovImm(R1, L::kZNodeSize);
      a.Call(kHelperKflexMalloc);
      {
        auto null = a.IfImm(BPF_JEQ, R0, 0);
        a.Jmp(finish_miss);
        a.EndIf(null);
      }
      for (int off = 0; off < L::kZNodeSize; off += 8) {
        a.StImm(BPF_DW, R0, static_cast<int16_t>(off), 0);
      }
      a.Stx(BPF_DW, R8, L::kNodeZRoot, R0);
      a.Mov(R7, R0);
      a.OrImm(R7, 0);
      a.EndIf(has_root);
    }

    // ---- Skip-list insert of (score = ctx.zscore, member = value[0:8]) ----
    // Walk: cur = head; record predecessors in the scratch array.
    a.Mov(R8, R7);  // cur
    a.MovImm(R9, L::kZLevels - 1);
    {
      auto levels = a.LoopBegin();
      a.LoopBreakIfImm(levels, BPF_JSLT, R9, 0);
      {
        auto walk = a.LoopBegin();
        a.Mov(R2, R9);
        a.LshImm(R2, 3);
        a.Add(R2, R8);
        a.Ldx(BPF_DW, R3, R2, L::kZFwd);
        a.LoopBreakIfImm(walk, BPF_JEQ, R3, 0);
        a.Ldx(BPF_DW, R4, R3, L::kZKey);
        a.Ldx(BPF_DW, R5, R6, kOffZScore);
        a.LoopBreakIfReg(walk, BPF_JGE, R4, R5);
        a.Mov(R8, R3);
        a.LoopEnd(walk);
      }
      a.LoadHeapAddr(R2, L::kZaddScratchOff);
      a.Mov(R3, R9);
      a.LshImm(R3, 3);
      a.Add(R2, R3);
      a.Stx(BPF_DW, R2, 0, R8);
      a.SubImm(R9, 1);
      a.LoopEnd(levels);
    }
    // Equal-score candidate: update its member in place.
    a.Ldx(BPF_DW, R3, R8, L::kZFwd);
    {
      auto cand = a.IfImm(BPF_JNE, R3, 0);
      a.Ldx(BPF_DW, R4, R3, L::kZKey);
      a.Ldx(BPF_DW, R5, R6, kOffZScore);
      auto same = a.IfReg(BPF_JEQ, R4, R5);
      a.Ldx(BPF_DW, R2, R6, kOffValue);
      a.Stx(BPF_DW, R3, L::kZMember, R2);
      a.Jmp(finish_hit);
      a.EndIf(same);
      a.EndIf(cand);
    }
    // Random level.
    a.LoadHeapAddr(R2, L::kRngOff);
    a.Ldx(BPF_DW, R3, R2, 0);
    {
      auto unseeded = a.IfImm(BPF_JEQ, R3, 0);
      a.LoadImm64(R4, 0x2545F4914F6CDD1DULL);
      a.Stx(BPF_DW, R2, 0, R4);
      a.EndIf(unseeded);
    }
    EmitXorshiftHeap(a, R0, L::kRngOff, R2, R3);
    a.MovImm(R9, 1);
    {
      auto levelgen = a.LoopBegin();
      a.LoopBreakIfImm(levelgen, BPF_JEQ, R9, L::kZLevels);
      a.Mov(R2, R0);
      a.AndImm(R2, 1);
      a.LoopBreakIfImm(levelgen, BPF_JEQ, R2, 0);
      a.RshImm(R0, 1);
      a.AddImm(R9, 1);
      a.LoopEnd(levelgen);
    }
    a.Stx(BPF_DW, R10, -8, R9);  // h

    a.MovImm(R1, L::kZNodeSize);
    a.Call(kHelperKflexMalloc);
    {
      auto null = a.IfImm(BPF_JEQ, R0, 0);
      a.Jmp(finish_miss);
      a.EndIf(null);
    }
    a.Ldx(BPF_DW, R2, R6, kOffZScore);
    a.Stx(BPF_DW, R0, L::kZKey, R2);
    a.Ldx(BPF_DW, R3, R6, kOffValue);
    a.Stx(BPF_DW, R0, L::kZMember, R3);
    a.Mov(R8, R0);
    a.OrImm(R8, 0);
    a.Ldx(BPF_DW, R9, R10, -8);  // h

    a.MovImm(R7, 0);  // i
    {
      auto splice = a.LoopBegin();
      a.LoopBreakIfReg(splice, BPF_JGE, R7, R9);
      a.Mov(R2, R7);
      a.LshImm(R2, 3);
      a.LoadHeapAddr(R3, L::kZaddScratchOff);
      a.Add(R3, R2);
      a.Ldx(BPF_DW, R4, R3, 0);     // u = update[i]
      a.Mov(R5, R7);
      a.LshImm(R5, 3);
      a.Add(R5, R4);
      a.Ldx(BPF_DW, R0, R5, L::kZFwd);
      a.Mov(R2, R7);
      a.LshImm(R2, 3);
      a.Add(R2, R8);
      a.Stx(BPF_DW, R2, L::kZFwd, R0);
      a.Stx(BPF_DW, R5, L::kZFwd, R8);
      a.AddImm(R7, 1);
      a.LoopEnd(splice);
    }
    a.Jmp(finish_hit);
  }

  a.Bind(finish_hit);
  a.StImm(BPF_B, R6, kOffRespFlag, 1);
  a.LoadHeapAddr(R1, L::kLockOff);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);  // SK_PASS-style verdict with the reply in the ctx
  a.Exit();

  a.Bind(finish_miss);
  a.StImm(BPF_B, R6, kOffRespFlag, 0);
  a.LoadHeapAddr(R1, L::kLockOff);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();

  auto p = a.Finish("kflex_redis", Hook::kSkSkb, ExtensionMode::kKflex, options.heap_size);
  KFLEX_CHECK(p.ok());
  return std::move(p).value();
}

// ---- UserRedis -----------------------------------------------------------------

bool UserRedis::Set(uint64_t key_id, std::string_view value) {
  if (value.size() > 64) {
    return false;
  }
  strings_[key_id] = std::string(value);
  return true;
}

std::optional<std::string> UserRedis::Get(uint64_t key_id) const {
  auto it = strings_.find(key_id);
  if (it == strings_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool UserRedis::Zadd(uint64_t key_id, uint64_t score, uint64_t member) {
  auto& zset = zsets_[key_id];
  auto [it, inserted] = zset.insert_or_assign(score, member);
  (void)it;
  return inserted;
}

const std::map<uint64_t, uint64_t>* UserRedis::Zset(uint64_t key_id) const {
  auto it = zsets_.find(key_id);
  return it == zsets_.end() ? nullptr : &it->second;
}

// ---- KflexRedisDriver ------------------------------------------------------------

StatusOr<KflexRedisDriver> KflexRedisDriver::Create(MockKernel& kernel,
                                                    const RedisBuildOptions& options,
                                                    const KieOptions& kie) {
  Program program = BuildRedisExtension(options);
  LoadOptions lo;
  lo.kie = kie;
  lo.heap_static_bytes = L::kStaticBytes;
  StatusOr<ExtensionId> id = kernel.runtime().Load(program, lo);
  if (!id.ok()) {
    return id.status();
  }
  KFLEX_RETURN_IF_ERROR(kernel.Attach(*id));
  return KflexRedisDriver(kernel, *id);
}

KflexRedisDriver::OpResult KflexRedisDriver::Deliver(int cpu, KvPacket& pkt) {
  pkt.SetProto(kProtoTcp);
  InvokeResult r = kernel_->Deliver(Hook::kSkSkb, cpu, pkt.data(), pkt.size());
  OpResult out;
  out.served = r.attached && !r.cancelled;
  out.insns = r.insns;
  out.instr_insns = r.instr_insns;
  out.hit = pkt.resp_flag() == 1;
  if (out.hit) {
    out.value = std::string(pkt.resp());
  }
  return out;
}

KflexRedisDriver::OpResult KflexRedisDriver::Set(int cpu, uint64_t key_id,
                                                 std::string_view value) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kSet);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  pkt.SetValue(value);
  return Deliver(cpu, pkt);
}

KflexRedisDriver::OpResult KflexRedisDriver::Get(int cpu, uint64_t key_id) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kGet);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  return Deliver(cpu, pkt);
}

KflexRedisDriver::OpResult KflexRedisDriver::Zadd(int cpu, uint64_t key_id, uint64_t score,
                                                  uint64_t member) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kZadd);
  auto key = MakeKey32(key_id);
  pkt.SetKey(std::string_view(reinterpret_cast<const char*>(key.data()), key.size()));
  uint8_t member_bytes[8];
  std::memcpy(member_bytes, &member, 8);
  pkt.SetValue(std::string_view(reinterpret_cast<const char*>(member_bytes), 8));
  pkt.SetZScore(score);
  return Deliver(cpu, pkt);
}

std::map<uint64_t, uint64_t> KflexRedisDriver::ReadZset(uint64_t key_id) {
  std::map<uint64_t, uint64_t> out;
  ExtensionHeap* heap = kernel_->runtime().heap(id_);
  const HeapLayout& layout = heap->layout();
  auto key = MakeKey32(key_id);
  uint64_t words[4];
  std::memcpy(words, key.data(), 32);
  uint64_t hash = words[0];
  for (int w = 1; w < 4; w++) {
    hash = (hash * 0x100000001B3ULL) ^ words[w];
  }
  hash ^= hash >> 30;
  hash *= 0xBF58476D1CE4E5B9ULL;
  hash ^= hash >> 27;
  hash *= 0x94D049BB133111EBULL;
  hash ^= hash >> 31;
  uint64_t bucket_off = L::kBucketsOff + (hash & (L::kNumBuckets - 1)) * 8;

  auto load = [&](uint64_t off) {
    uint64_t v;
    std::memcpy(&v, heap->HostAt(off & layout.mask()), 8);
    return v;
  };
  uint64_t node = load(bucket_off);
  while (node != 0) {
    uint8_t stored[32];
    std::memcpy(stored, heap->HostAt((node & layout.mask()) + L::kNodeKey), 32);
    if (std::memcmp(stored, key.data(), 32) == 0) {
      break;
    }
    node = load((node & layout.mask()) + L::kNodeNext);
  }
  if (node == 0) {
    return out;
  }
  uint64_t head = load((node & layout.mask()) + L::kNodeZRoot);
  if (head == 0) {
    return out;
  }
  uint64_t cur = load((head & layout.mask()) + L::kZFwd);
  while (cur != 0) {
    uint64_t score = load((cur & layout.mask()) + L::kZKey);
    uint64_t member = load((cur & layout.mask()) + L::kZMember);
    out[score] = member;
    cur = load((cur & layout.mask()) + L::kZFwd);
  }
  return out;
}

}  // namespace kflex
