#include "src/apps/tracer.h"

#include "src/base/logging.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {

namespace {
using SF = SyscallFilterLayout;
using LT = LatencyTracerLayout;
}  // namespace

Program BuildSyscallFilterExtension(uint64_t heap_size) {
  Assembler a;
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R2, R6, 0);  // syscall nr
  auto allow = a.NewLabel();
  a.JmpImm(BPF_JGE, R2, SF::kMaxSyscalls, allow);
  // word = bitmap[nr >> 6] — bounded index, guard elided.
  a.Mov(R3, R2);
  a.RshImm(R3, 6);
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R4, SF::kBitmapOff);
  a.Add(R4, R3);
  a.Ldx(BPF_DW, R5, R4, 0);
  a.AndImm(R2, 63);
  a.Rsh(R5, R2);
  a.AndImm(R5, 1);
  {
    auto denied = a.IfImm(BPF_JEQ, R5, 1);
    a.LoadHeapAddr(R3, SF::kDeniedCountOff);
    a.MovImm(R4, 1);
    a.AtomicAdd(BPF_DW, R3, 0, R4);
    a.LoadImm64(R0, static_cast<uint64_t>(-1));  // -EPERM
    a.Exit();
    a.EndIf(denied);
  }
  a.Bind(allow);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("syscall_filter", Hook::kLsm, ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return std::move(p).value();
}

StatusOr<SyscallFilter> SyscallFilter::Create(MockKernel& kernel) {
  LoadOptions lo;
  lo.heap_static_bytes = SF::kStaticBytes;
  StatusOr<ExtensionId> id = kernel.runtime().Load(BuildSyscallFilterExtension(), lo);
  if (!id.ok()) {
    return id.status();
  }
  KFLEX_RETURN_IF_ERROR(kernel.Attach(*id));
  return SyscallFilter(kernel, *id);
}

int64_t SyscallFilter::Check(int cpu, uint64_t syscall_nr, uint64_t uid) {
  uint64_t ctx[8] = {syscall_nr, uid};
  InvokeResult r =
      kernel_->Deliver(Hook::kLsm, cpu, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
  return r.verdict;
}

void SyscallFilter::Deny(uint64_t syscall_nr) {
  KFLEX_CHECK(syscall_nr < SF::kMaxSyscalls);
  uint64_t addr = view_.AddrOf(SF::kBitmapOff + (syscall_nr >> 6) * 8);
  uint64_t word = 0;
  view_.Load(addr, word);
  word |= 1ULL << (syscall_nr & 63);
  view_.Store(addr, word);
}

void SyscallFilter::Allow(uint64_t syscall_nr) {
  KFLEX_CHECK(syscall_nr < SF::kMaxSyscalls);
  uint64_t addr = view_.AddrOf(SF::kBitmapOff + (syscall_nr >> 6) * 8);
  uint64_t word = 0;
  view_.Load(addr, word);
  word &= ~(1ULL << (syscall_nr & 63));
  view_.Store(addr, word);
}

bool SyscallFilter::IsDenied(uint64_t syscall_nr) const {
  uint64_t word = 0;
  view_.Load(view_.AddrOf(SF::kBitmapOff + (syscall_nr >> 6) * 8), word);
  return (word >> (syscall_nr & 63)) & 1;
}

uint64_t SyscallFilter::denied_hits() const {
  uint64_t count = 0;
  view_.Load(view_.AddrOf(SF::kDeniedCountOff), count);
  return count;
}

Program BuildLatencyTracerExtension(uint64_t heap_size) {
  Assembler a;
  a.Mov(R6, R1);
  a.Ldx(BPF_DW, R2, R6, 0);  // latency_ns
  a.Mov(R7, R2);             // keep the original for the sum
  // bucket = floor(log2(latency)), clamped to 63; bounded shift loop.
  a.MovImm(R3, 0);
  {
    auto loop = a.LoopBegin();
    a.LoopBreakIfImm(loop, BPF_JLE, R2, 1);
    a.LoopBreakIfImm(loop, BPF_JEQ, R3, LT::kBuckets - 1);
    a.RshImm(R2, 1);
    a.AddImm(R3, 1);
    a.LoopEnd(loop);
  }
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R4, LT::kBucketsOff);
  a.Add(R4, R3);  // bounded: guard elided
  a.MovImm(R5, 1);
  a.AtomicAdd(BPF_DW, R4, 0, R5);
  a.LoadHeapAddr(R4, LT::kCountOff);
  a.MovImm(R5, 1);
  a.AtomicAdd(BPF_DW, R4, 0, R5);
  a.LoadHeapAddr(R4, LT::kSumOff);
  a.AtomicAdd(BPF_DW, R4, 0, R7);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("latency_tracer", Hook::kTracepoint, ExtensionMode::kKflex, heap_size);
  KFLEX_CHECK(p.ok());
  return std::move(p).value();
}

StatusOr<LatencyTracer> LatencyTracer::Create(MockKernel& kernel) {
  LoadOptions lo;
  lo.heap_static_bytes = LT::kStaticBytes;
  StatusOr<ExtensionId> id = kernel.runtime().Load(BuildLatencyTracerExtension(), lo);
  if (!id.ok()) {
    return id.status();
  }
  KFLEX_RETURN_IF_ERROR(kernel.Attach(*id));
  return LatencyTracer(kernel, *id);
}

void LatencyTracer::Record(int cpu, uint64_t latency_ns) {
  uint64_t ctx[8] = {latency_ns};
  kernel_->Deliver(Hook::kTracepoint, cpu, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
}

uint64_t LatencyTracer::BucketCount(int bucket) const {
  uint64_t count = 0;
  view_.Load(view_.AddrOf(LT::kBucketsOff + static_cast<uint64_t>(bucket) * 8), count);
  return count;
}

uint64_t LatencyTracer::TotalCount() const {
  uint64_t count = 0;
  view_.Load(view_.AddrOf(LT::kCountOff), count);
  return count;
}

uint64_t LatencyTracer::TotalSum() const {
  uint64_t sum = 0;
  view_.Load(view_.AddrOf(LT::kSumOff), sum);
  return sum;
}

}  // namespace kflex
