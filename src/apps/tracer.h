// Observability & security extensions: the other big production uses of
// kernel extensibility the paper motivates (§1: "better observability ...
// improved security").
//
//  * SyscallFilter (LSM hook): denies syscalls present in a heap-resident
//    deny bitmap. The policy lives in the shared heap, so user space updates
//    it live through the mapped heap — no reload, no maps syscalls (§3.4).
//    On cancellation the hook denies by default (§4.3).
//  * LatencyTracer (tracepoint hook): log2 latency histogram maintained in
//    extension memory with statically verified (guard-free) counter updates,
//    read directly by user space.
#ifndef SRC_APPS_TRACER_H_
#define SRC_APPS_TRACER_H_

#include <array>
#include <cstdint>

#include "src/kernel/kernel.h"
#include "src/uapi/user_heap.h"

namespace kflex {

// ---- Syscall filter ------------------------------------------------------------

struct SyscallFilterLayout {
  static constexpr uint64_t kBitmapOff = 64;       // 512 x u64 = bits for 32768 nrs
  static constexpr int kMaxSyscalls = 32768;
  static constexpr uint64_t kDeniedCountOff = 64 + 4096;
  static constexpr uint64_t kStaticBytes = 4096 + 8;
};

// LSM ctx: u64 syscall_nr @0, u64 uid @8.
Program BuildSyscallFilterExtension(uint64_t heap_size = 1 << 20);

class SyscallFilter {
 public:
  static StatusOr<SyscallFilter> Create(MockKernel& kernel);

  // Returns the hook verdict: 0 = allow, -1 = deny.
  int64_t Check(int cpu, uint64_t syscall_nr, uint64_t uid = 0);

  // Live policy updates from user space through the mapped heap.
  void Deny(uint64_t syscall_nr);
  void Allow(uint64_t syscall_nr);
  bool IsDenied(uint64_t syscall_nr) const;
  uint64_t denied_hits() const;

  ExtensionId id() const { return id_; }

 private:
  SyscallFilter(MockKernel& kernel, ExtensionId id)
      : kernel_(&kernel), id_(id), view_(kernel.runtime().heap(id)) {}

  MockKernel* kernel_;
  ExtensionId id_;
  UserHeapView view_;
};

// ---- Latency tracer ------------------------------------------------------------

struct LatencyTracerLayout {
  static constexpr int kBuckets = 64;              // log2 buckets
  static constexpr uint64_t kBucketsOff = 64;      // u64[64]
  static constexpr uint64_t kCountOff = 64 + 64 * 8;
  static constexpr uint64_t kSumOff = kCountOff + 8;
  static constexpr uint64_t kStaticBytes = 64 * 8 + 16;
};

// Tracepoint ctx: u64 latency_ns @0.
Program BuildLatencyTracerExtension(uint64_t heap_size = 1 << 20);

class LatencyTracer {
 public:
  static StatusOr<LatencyTracer> Create(MockKernel& kernel);

  void Record(int cpu, uint64_t latency_ns);

  // User-space reads through the shared heap.
  uint64_t BucketCount(int bucket) const;
  uint64_t TotalCount() const;
  uint64_t TotalSum() const;

  ExtensionId id() const { return id_; }

 private:
  LatencyTracer(MockKernel& kernel, ExtensionId id)
      : kernel_(&kernel), id_(id), view_(kernel.runtime().heap(id)) {}

  MockKernel* kernel_;
  ExtensionId id_;
  UserHeapView view_;
};

}  // namespace kflex

#endif  // SRC_APPS_TRACER_H_
