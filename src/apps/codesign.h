// Co-designed Memcached (§5.3): the GET/SET fast path runs as a KFlex
// extension while a user-space thread performs garbage collection over the
// same hash table through the shared heap mapping — the pattern that is
// impossible without KFlex's shared pointers (§3.4).
//
// Entries carry an expiry epoch (SET stamps ctx.zscore); the collector walks
// every bucket from user space, unlinks expired entries and returns them to
// the allocator, holding the same spin lock as the extension under an
// rseq-style time-slice extension.
#ifndef SRC_APPS_CODESIGN_H_
#define SRC_APPS_CODESIGN_H_

#include <cstdint>

#include "src/apps/memcached.h"
#include "src/uapi/user_heap.h"

namespace kflex {

class CodesignMemcached {
 public:
  static StatusOr<CodesignMemcached> Create(MockKernel& kernel,
                                            const KieOptions& kie = {});

  // Fast path (extension).
  KflexMemcachedDriver::OpResult Set(int cpu, uint64_t key_id, std::string_view value,
                                     uint64_t expiry_epoch);
  KflexMemcachedDriver::OpResult Get(int cpu, uint64_t key_id);
  KflexMemcachedDriver::OpResult Del(int cpu, uint64_t key_id);

  // Slow path (user space): evicts entries with expiry < current_epoch.
  // Returns the number of evicted entries. `now_ns` drives the time-slice
  // extension bookkeeping.
  struct GcResult {
    uint64_t scanned = 0;
    uint64_t evicted = 0;
    bool preempt_flagged = false;  // exceeded the 50 us slice
  };
  GcResult RunGc(uint64_t current_epoch, uint64_t now_ns = 0);

  // Live entry count as maintained by the extension.
  uint64_t Count();

  KflexMemcachedDriver& driver() { return driver_; }
  UserHeapView& view() { return view_; }

 private:
  CodesignMemcached(KflexMemcachedDriver driver, ExtensionHeap* heap,
                    HeapAllocator* allocator)
      : driver_(std::move(driver)), view_(heap), allocator_(allocator) {}

  KflexMemcachedDriver driver_;
  UserHeapView view_;
  HeapAllocator* allocator_;
  TimeSliceExtension slice_;
};

}  // namespace kflex

#endif  // SRC_APPS_CODESIGN_H_
