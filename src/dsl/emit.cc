#include "src/dsl/emit.h"

namespace kflex {

void EmitHashFinalize(Assembler& a, Reg dst, Reg tmp) {
  // dst ^= dst >> 30; dst *= K1; dst ^= dst >> 27; dst *= K2; dst ^= dst >> 31
  a.Mov(tmp, dst);
  a.RshImm(tmp, 30);
  a.Xor(dst, tmp);
  a.LoadImm64(tmp, 0xBF58476D1CE4E5B9ULL);
  a.Mul(dst, tmp);
  a.Mov(tmp, dst);
  a.RshImm(tmp, 27);
  a.Xor(dst, tmp);
  a.LoadImm64(tmp, 0x94D049BB133111EBULL);
  a.Mul(dst, tmp);
  a.Mov(tmp, dst);
  a.RshImm(tmp, 31);
  a.Xor(dst, tmp);
}

void EmitHashKey32(Assembler& a, Reg dst, Reg ctx_reg, int16_t key_off, Reg tmp) {
  // dst = k0; dst = dst * P + k_i for the remaining words; finalize.
  a.Ldx(BPF_DW, dst, ctx_reg, key_off);
  for (int word = 1; word < 4; word++) {
    a.LoadImm64(tmp, 0x100000001B3ULL);
    a.Mul(dst, tmp);
    a.Ldx(BPF_DW, tmp, ctx_reg, static_cast<int16_t>(key_off + word * 8));
    a.Xor(dst, tmp);
  }
  EmitHashFinalize(a, dst, tmp);
}

void EmitCopyWords(Assembler& a, Reg dst_reg, int16_t dst_off, Reg src_reg, int16_t src_off,
                   int words, Reg tmp) {
  for (int w = 0; w < words; w++) {
    a.Ldx(BPF_DW, tmp, src_reg, static_cast<int16_t>(src_off + w * 8));
    a.Stx(BPF_DW, dst_reg, static_cast<int16_t>(dst_off + w * 8), tmp);
  }
}

void EmitKeyCompare32(Assembler& a, Reg a_reg, int16_t a_off, Reg b_reg, int16_t b_off,
                      Assembler::Label differ, Reg tmp1, Reg tmp2) {
  for (int w = 0; w < 4; w++) {
    a.Ldx(BPF_DW, tmp1, a_reg, static_cast<int16_t>(a_off + w * 8));
    a.Ldx(BPF_DW, tmp2, b_reg, static_cast<int16_t>(b_off + w * 8));
    a.JmpReg(BPF_JNE, tmp1, tmp2, differ);
  }
}

void EmitXorshiftHeap(Assembler& a, Reg dst, uint64_t heap_off, Reg state_ptr, Reg tmp) {
  a.LoadHeapAddr(state_ptr, heap_off);
  a.Ldx(BPF_DW, dst, state_ptr, 0);
  // x ^= x << 13; x ^= x >> 7; x ^= x << 17
  a.Mov(tmp, dst);
  a.LshImm(tmp, 13);
  a.Xor(dst, tmp);
  a.Mov(tmp, dst);
  a.RshImm(tmp, 7);
  a.Xor(dst, tmp);
  a.Mov(tmp, dst);
  a.LshImm(tmp, 17);
  a.Xor(dst, tmp);
  a.Stx(BPF_DW, state_ptr, 0, dst);
}

}  // namespace kflex
