// Reusable bytecode emitters: the "compiler intrinsics" extension authors
// get on top of the raw assembler. KFlex keeps eBPF's toolchain story —
// extensions are arbitrary bytecode — and in this reproduction that bytecode
// is produced by these emitters plus the builders in src/apps.
#ifndef SRC_DSL_EMIT_H_
#define SRC_DSL_EMIT_H_

#include <cstdint>

#include "src/ebpf/assembler.h"

namespace kflex {

// dst = splitmix64-style finalizer(dst): a strong 64-bit hash usable for
// bucket indices and sketch rows. Clobbers `tmp`.
void EmitHashFinalize(Assembler& a, Reg dst, Reg tmp);

// dst = hash of the 32-byte key at ctx_reg[key_off..key_off+32) (four
// 64-bit words folded then finalized). Clobbers tmp.
void EmitHashKey32(Assembler& a, Reg dst, Reg ctx_reg, int16_t key_off, Reg tmp);

// Copies `words` 8-byte words from src_reg[src_off] to dst_reg[dst_off]
// using `tmp` (straight-line, no loop).
void EmitCopyWords(Assembler& a, Reg dst_reg, int16_t dst_off, Reg src_reg, int16_t src_off,
                   int words, Reg tmp);

// Jumps to `differ` if the 32-byte keys at a_reg[a_off] and b_reg[b_off]
// differ. Clobbers tmp1/tmp2.
void EmitKeyCompare32(Assembler& a, Reg a_reg, int16_t a_off, Reg b_reg, int16_t b_off,
                      Assembler::Label differ, Reg tmp1, Reg tmp2);

// xorshift64 step on the heap global at heap_off: loads the state, advances
// it, stores it back, and leaves the new value in dst. Clobbers
// state_ptr/tmp.
void EmitXorshiftHeap(Assembler& a, Reg dst, uint64_t heap_off, Reg state_ptr, Reg tmp);

}  // namespace kflex

#endif  // SRC_DSL_EMIT_H_
