// x86-64 template JIT backend (§4.2).
//
// JitCompile translates a verified + optimized + instrumented program — the
// exact instruction stream the interpreter would execute, including Kie's
// SANITIZE/TRANSLATE/FUELCHECK pseudo-instructions and C1 terminate loads —
// into native code in an mmap'd W^X code cache. The paper's register
// discipline is mirrored: r12 is pinned to the sanitized heap base for the
// whole invocation and r9 backs the bytecode-level RAX scratch register, so
// the optimizer's GuardPlan dominance elision (one SANITIZE, many reuses)
// becomes real native register reuse.
//
// The backend is a template JIT: each bytecode instruction expands to a fixed
// native sequence; memory accesses get an inline region fast path selected by
// Kie's per-instruction region hints, with a cold out-of-line stub that calls
// back into the interpreter's shared access routine for bit-for-bit parity on
// every slow or faulting case. Anything the templates cannot express reports
// a fallback reason and the runtime quietly keeps the interpreter.
#ifndef SRC_JIT_CODEGEN_H_
#define SRC_JIT_CODEGEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/jit/code_cache.h"
#include "src/runtime/layout.h"

namespace kflex {

struct InstrumentedProgram;
struct JitState;

// Which execution engine runs an extension's instrumented bytecode.
enum class ExecEngine : uint8_t {
  kInterp = 0,  // switch-dispatch interpreter (Vm)
  kJit = 1,     // native x86-64 template JIT, interpreter fallback
};

const char* ExecEngineName(ExecEngine engine);

struct JitOptions {
  // Emit inline region fast paths for memory accesses (heap/stack/ctx).
  // When false every access goes through the out-of-line interpreter stub —
  // still native dispatch, useful for isolating fast-path bugs.
  bool fast_paths = true;
  // Test hook: refuse to compile, as if the host were unsupported.
  bool force_fallback = false;
};

struct JitCompileStats {
  uint64_t code_bytes = 0;    // sealed native code size
  uint64_t compile_ns = 0;    // wall time spent in JitCompile
  uint64_t insns_compiled = 0;
  uint64_t mem_sites = 0;          // memory accesses with a cold stub
  uint64_t helper_sites = 0;       // helper call sites
  uint64_t inline_fast_paths = 0;  // accesses with an inline region check
};

// A compiled extension: sealed native code plus the bytecode copy the cold
// stubs re-decode for slow-path parity. Owned by the runtime's Extension.
struct JitProgram {
  using EntryFn = void (*)(JitState*);

  std::vector<Insn> insns;  // instrumented stream (stub re-decode source)
  HeapLayout heap;          // layout baked into the code (r12, SFI imms)
  CodeBuffer code;
  EntryFn entry = nullptr;
  JitCompileStats stats;
};

struct JitCompileResult {
  std::unique_ptr<JitProgram> program;  // null → fall back to interpreter
  std::string fallback_reason;          // set when program is null
};

// True when this build can emit and execute native code (x86-64 with mmap).
bool JitHostSupported();

// Compiles the instrumented program. On any unsupported construct returns a
// null program with a human-readable fallback reason; never throws.
JitCompileResult JitCompile(const InstrumentedProgram& iprog,
                            const JitOptions& options);

}  // namespace kflex

#endif  // SRC_JIT_CODEGEN_H_
