// JIT ⇄ C++ boundary: the invocation state block native code runs against,
// the cold-path entry points compiled code calls back into, and JitRun — the
// engine-dispatch twin of VmRun.
//
// Native code addresses everything through one POD block (JitState) whose
// field offsets are baked into the emitted instructions; the static_asserts
// below pin the layout so codegen.cc and this header cannot drift. Helper
// calls and slow/faulting memory accesses spill the bytecode register file to
// env->regs first, so the cancellation manager's object-table unwinding and
// the helper trampoline observe exactly the state the interpreter would have.
#ifndef SRC_JIT_TRAMPOLINE_H_
#define SRC_JIT_TRAMPOLINE_H_

#include <cstddef>
#include <cstdint>

#include "src/jit/codegen.h"
#include "src/runtime/vm.h"

namespace kflex {

// Everything a compiled extension touches at run time. rbp points here for
// the whole invocation; offsets below are hard-coded by the emitter.
struct JitState {
  uint64_t* regs;                       // +0   env->regs (spill area)
  uint8_t* stack_host;                  // +8   env->stack
  uint8_t* ctx_host;                    // +16  context bytes (may be null)
  uint64_t ctx_size;                    // +24
  uint8_t* heap_host;                   // +32  heap host base (may be null)
  const uint8_t* present;               // +40  per-page presence bytes
  uint64_t heap_kernel_base;            // +48  pinned into r12
  uint64_t insn_count;                  // +56  executed bytecode insns
  uint64_t instr_count;                 // +64  executed instrumentation insns
  uint64_t fuel_quantum;                // +72  0 = FUELCHECK ignores fuel
  const volatile uint8_t* cancel_flag;  // +80  never null (zero byte if unset)
  uint64_t insn_budget;                 // +88  0 = unlimited
  uint64_t ret;                         // +96  R0 at EXIT
  uint32_t exit_code;                   // +104 VmResult::Outcome as int
  uint32_t fault_kind;                  // +108 MemFaultKind as int
  uint64_t fault_pc;                    // +112
  uint64_t fault_va;                    // +120
  VmEnv* env;                           // +128 full env for cold paths
  const JitProgram* prog;               // +136 bytecode for stub re-decode
};

static_assert(offsetof(JitState, regs) == 0);
static_assert(offsetof(JitState, stack_host) == 8);
static_assert(offsetof(JitState, ctx_host) == 16);
static_assert(offsetof(JitState, ctx_size) == 24);
static_assert(offsetof(JitState, heap_host) == 32);
static_assert(offsetof(JitState, present) == 40);
static_assert(offsetof(JitState, heap_kernel_base) == 48);
static_assert(offsetof(JitState, insn_count) == 56);
static_assert(offsetof(JitState, instr_count) == 64);
static_assert(offsetof(JitState, fuel_quantum) == 72);
static_assert(offsetof(JitState, cancel_flag) == 80);
static_assert(offsetof(JitState, insn_budget) == 88);
static_assert(offsetof(JitState, ret) == 96);
static_assert(offsetof(JitState, exit_code) == 104);
static_assert(offsetof(JitState, fault_kind) == 108);
static_assert(offsetof(JitState, fault_pc) == 112);
static_assert(offsetof(JitState, fault_va) == 120);
static_assert(offsetof(JitState, env) == 128);
static_assert(offsetof(JitState, prog) == 136);

// Cold memory path: registers are already spilled to env->regs; re-executes
// the access at `pc` through the interpreter's shared routine. Returns 0 to
// resume native code, nonzero after filling the fault fields (native code
// then unwinds to its epilogue).
extern "C" uint32_t kflex_jit_mem(JitState* st, uint32_t pc);

// Helper trampoline: registers spilled; resolves and invokes the HelperFn at
// `pc` exactly like the interpreter's CALL case (virtual cost, trace append,
// HelperOutcome decode). Returns 0 to resume, nonzero on fault/cancel.
extern "C" uint32_t kflex_jit_helper(JitState* st, uint32_t pc);

// Runs a compiled program against `env` with interpreter-identical observable
// behavior (result fields, counters, env->regs/stack/heap side effects).
VmResult JitRun(const JitProgram& prog, VmEnv& env);

}  // namespace kflex

#endif  // SRC_JIT_TRAMPOLINE_H_
