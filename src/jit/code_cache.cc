#include "src/jit/code_cache.h"

#include <cstring>
#include <utility>

#include "src/fault/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define KFLEX_JIT_HAVE_MMAP 1
#endif

namespace kflex {
namespace {

std::atomic<uint64_t> g_live_bytes{0};
std::atomic<uint64_t> g_total_bytes{0};

size_t PageRound(size_t n) {
  size_t page = 4096;
#if defined(KFLEX_JIT_HAVE_MMAP)
  long sys = sysconf(_SC_PAGESIZE);
  if (sys > 0) page = static_cast<size_t>(sys);
#endif
  return (n + page - 1) & ~(page - 1);
}

}  // namespace

CodeBuffer::~CodeBuffer() { Release(); }

CodeBuffer::CodeBuffer(CodeBuffer&& other) noexcept
    : data_(other.data_),
      mapped_size_(other.mapped_size_),
      code_size_(other.code_size_) {
  other.data_ = nullptr;
  other.mapped_size_ = 0;
  other.code_size_ = 0;
}

CodeBuffer& CodeBuffer::operator=(CodeBuffer&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    mapped_size_ = std::exchange(other.mapped_size_, 0);
    code_size_ = std::exchange(other.code_size_, 0);
  }
  return *this;
}

bool CodeBuffer::Allocate(size_t size) {
  Release();
  if (size == 0) return false;
  // Injected mapping refusal: behaves exactly like an mmap failure (RWX
  // policy, address-space exhaustion); the caller falls back to the
  // interpreter and records the reason in EngineInfo.
  if (KFLEX_FAULT_FIRE("jit.mmap")) return false;
#if defined(KFLEX_JIT_HAVE_MMAP)
  size_t rounded = PageRound(size);
  void* p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return false;
  data_ = static_cast<uint8_t*>(p);
  mapped_size_ = rounded;
  CodeCache::OnMap(rounded);
  return true;
#else
  return false;
#endif
}

bool CodeBuffer::Seal(const uint8_t* code, size_t size) {
#if defined(KFLEX_JIT_HAVE_MMAP)
  if (data_ == nullptr || size > mapped_size_) return false;
  // Injected W^X seal refusal: as if mprotect(PROT_READ|PROT_EXEC) were
  // denied after the code was copied in; the mapping is torn down, never
  // left writable+executable.
  if (KFLEX_FAULT_FIRE("jit.mprotect")) {
    Release();
    return false;
  }
  std::memcpy(data_, code, size);
  code_size_ = size;
  if (mprotect(data_, mapped_size_, PROT_READ | PROT_EXEC) != 0) {
    Release();
    return false;
  }
  return true;
#else
  (void)code;
  (void)size;
  return false;
#endif
}

void CodeBuffer::Release() {
#if defined(KFLEX_JIT_HAVE_MMAP)
  if (data_ != nullptr) {
    munmap(data_, mapped_size_);
    CodeCache::OnUnmap(mapped_size_);
  }
#endif
  data_ = nullptr;
  mapped_size_ = 0;
  code_size_ = 0;
}

void CodeCache::OnMap(size_t bytes) {
  g_live_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_total_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void CodeCache::OnUnmap(size_t bytes) {
  g_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t CodeCache::live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

uint64_t CodeCache::total_mapped_bytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

}  // namespace kflex
