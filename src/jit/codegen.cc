#include "src/jit/codegen.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "src/jit/trampoline.h"
#include "src/kie/kie.h"
#include "src/obs/obs.h"
#include "src/runtime/maps.h"
#include "src/verifier/analysis.h"

namespace kflex {

const char* ExecEngineName(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::kInterp:
      return "interp";
    case ExecEngine::kJit:
      return "jit";
  }
  return "?";
}

bool JitHostSupported() {
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  return true;
#else
  return false;
#endif
}

#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))

namespace {

// Host register encodings.
constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRsp = 4, kRbp = 5,
              kRsi = 6, kRdi = 7, kR8 = 8, kR9 = 9, kR10 = 10, kR11 = 11,
              kR12 = 12, kR13 = 13, kR14 = 14, kR15 = 15;

// Bytecode register → host register. R10 is a compile-time constant
// (kStackRegion + kStackSize, never written by verified code), RAX (the
// Kie/optimizer SFI scratch) gets the paper's r9, RBX spills to env->regs[12]
// memory. r12 is pinned to the sanitized heap base; rbp holds JitState*;
// r10/r11 are emitter temporaries.
constexpr int kHostOf[kNumRegs] = {
    kRax,  // R0
    kRdi,  // R1
    kRsi,  // R2
    kRdx,  // R3
    kRcx,  // R4
    kR8,   // R5
    kRbx,  // R6
    kR13,  // R7
    kR14,  // R8
    kR15,  // R9
    -1,    // R10 (frame pointer: compile-time constant)
    kR9,   // RAX scratch (paper's r9)
    -1,    // RBX scratch (memory-backed)
};

constexpr uint64_t kStackTopVa = kStackRegion + kStackSize;
constexpr int kRegsSlotRbx = static_cast<int>(RBX) * 8;

// JitState field offsets (pinned by static_asserts in trampoline.h).
constexpr int32_t kOffRegs = 0, kOffStack = 8, kOffCtx = 16, kOffCtxSize = 24,
                  kOffHeapHost = 32, kOffPresent = 40, kOffHeapBase = 48,
                  kOffInsnCount = 56, kOffInstrCount = 64, kOffFuel = 72,
                  kOffCancel = 80, kOffBudget = 88, kOffRet = 96,
                  kOffExit = 104, kOffFaultKind = 108, kOffFaultPc = 112,
                  kOffFaultVa = 120;

// Condition codes (second opcode byte of jcc rel32).
constexpr uint8_t kCcB = 0x82, kCcAe = 0x83, kCcE = 0x84, kCcNe = 0x85,
                  kCcBe = 0x86, kCcA = 0x87, kCcL = 0x8C, kCcGe = 0x8D,
                  kCcLe = 0x8E, kCcG = 0x8F;

struct Label {
  int64_t pos = -1;
  std::vector<size_t> refs;  // rel32 fixup positions
};

// Minimal x86-64 assembler over a byte vector. Memory operands always use
// mod=10 (disp32) addressing — simplicity over density; template JITs trade
// code size for compile speed.
class Asm {
 public:
  std::vector<uint8_t> buf;

  size_t size() const { return buf.size(); }
  void u8(uint8_t v) { buf.push_back(v); }
  void u16(uint16_t v) {
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; i++) u8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; i++) u8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void Rex(bool w, int reg, int rm, bool force = false) {
    uint8_t rex = 0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | (rm >> 3);
    if (rex != 0x40 || force) u8(rex);
  }
  void ModRM(int mod, int reg, int rm) {
    u8(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  // [base + disp32]; SIB escape when base is rsp/r12-encoded.
  void MemOp(int reg, int base, int32_t disp) {
    ModRM(2, reg, base);
    if ((base & 7) == 4) u8(0x24);
    u32(static_cast<uint32_t>(disp));
  }

  void MovRR(int dst, int src, bool w) {
    Rex(w, src, dst);
    u8(0x89);
    ModRM(3, src, dst);
  }
  void MovRI64(int dst, uint64_t imm) {
    if (imm <= 0xFFFFFFFFull) {
      Rex(false, 0, dst);
      u8(0xB8 + (dst & 7));
      u32(static_cast<uint32_t>(imm));
    } else if (static_cast<int64_t>(imm) == static_cast<int32_t>(imm)) {
      Rex(true, 0, dst);
      u8(0xC7);
      ModRM(3, 0, dst);
      u32(static_cast<uint32_t>(imm));
    } else {
      Rex(true, 0, dst);
      u8(0xB8 + (dst & 7));
      u64(imm);
    }
  }
  void MovRI32(int dst, uint32_t imm) {  // zero-extends
    Rex(false, 0, dst);
    u8(0xB8 + (dst & 7));
    u32(imm);
  }
  void MovRI32s(int dst, int32_t imm) {  // sign-extends to 64
    Rex(true, 0, dst);
    u8(0xC7);
    ModRM(3, 0, dst);
    u32(static_cast<uint32_t>(imm));
  }

  // op r/m(dst), reg(src): add 01, or 09, and 21, sub 29, xor 31, cmp 39,
  // test 85.
  void AluRR(uint8_t opc, int dst, int src, bool w) {
    Rex(w, src, dst);
    u8(opc);
    ModRM(3, src, dst);
  }
  // 81 /ext: add 0, or 1, and 4, sub 5, xor 6, cmp 7 (imm32, sign-extended
  // when w).
  void AluRI(int ext, int dst, int32_t imm, bool w) {
    Rex(w, 0, dst);
    u8(0x81);
    ModRM(3, ext, dst);
    u32(static_cast<uint32_t>(imm));
  }
  void TestRI(int r, int32_t imm, bool w) {
    Rex(w, 0, r);
    u8(0xF7);
    ModRM(3, 0, r);
    u32(static_cast<uint32_t>(imm));
  }
  // reg(dst) ← reg OP [base+disp]: add 03, mov(load) 8B.
  void AluRM(uint8_t opc, int dst, int base, int32_t disp, bool w) {
    Rex(w, dst, base);
    u8(opc);
    MemOp(dst, base, disp);
  }
  void ImulRR(int dst, int src, bool w) {
    Rex(w, dst, src);
    u8(0x0F);
    u8(0xAF);
    ModRM(3, dst, src);
  }
  void Neg(int r, bool w) {
    Rex(w, 0, r);
    u8(0xF7);
    ModRM(3, 3, r);
  }
  void ShiftCl(int ext, int r, bool w) {  // shl 4, shr 5, sar 7
    Rex(w, 0, r);
    u8(0xD3);
    ModRM(3, ext, r);
  }
  void ShiftImm(int ext, int r, int imm, bool w) {
    Rex(w, 0, r);
    u8(0xC1);
    ModRM(3, ext, r);
    u8(static_cast<uint8_t>(imm));
  }
  void DivR(int r, bool w) {  // unsigned rdx:rax / r
    Rex(w, 0, r);
    u8(0xF7);
    ModRM(3, 6, r);
  }

  void LoadMem(int sz, int dst, int base, int32_t disp) {
    switch (sz) {
      case 1:
        Rex(false, dst, base);
        u8(0x0F);
        u8(0xB6);
        break;
      case 2:
        Rex(false, dst, base);
        u8(0x0F);
        u8(0xB7);
        break;
      case 4:
        Rex(false, dst, base);
        u8(0x8B);
        break;
      default:
        Rex(true, dst, base);
        u8(0x8B);
        break;
    }
    MemOp(dst, base, disp);
  }
  void StoreMemR(int sz, int base, int32_t disp, int src) {
    switch (sz) {
      case 1:
        // sil/dil need a REX prefix even without extension bits.
        Rex(false, src, base, /*force=*/src >= 4 && src <= 7);
        u8(0x88);
        break;
      case 2:
        u8(0x66);
        Rex(false, src, base);
        u8(0x89);
        break;
      case 4:
        Rex(false, src, base);
        u8(0x89);
        break;
      default:
        Rex(true, src, base);
        u8(0x89);
        break;
    }
    MemOp(src, base, disp);
  }
  void StoreMemI(int sz, int base, int32_t disp, int64_t imm) {
    switch (sz) {
      case 1:
        Rex(false, 0, base);
        u8(0xC6);
        MemOp(0, base, disp);
        u8(static_cast<uint8_t>(imm));
        break;
      case 2:
        u8(0x66);
        Rex(false, 0, base);
        u8(0xC7);
        MemOp(0, base, disp);
        u16(static_cast<uint16_t>(imm));
        break;
      case 4:
        Rex(false, 0, base);
        u8(0xC7);
        MemOp(0, base, disp);
        u32(static_cast<uint32_t>(imm));
        break;
      default:
        Rex(true, 0, base);
        u8(0xC7);
        MemOp(0, base, disp);
        u32(static_cast<uint32_t>(imm));  // sign-extended by hardware
        break;
    }
  }
  void Lea(int dst, int base, int32_t disp) {
    Rex(true, dst, base);
    u8(0x8D);
    MemOp(dst, base, disp);
  }
  void LoadRbp(int dst, int32_t disp) { LoadMem(8, dst, kRbp, disp); }
  void StoreRbp(int32_t disp, int src) { StoreMemR(8, kRbp, disp, src); }
  void AddMemI32(int32_t disp, int32_t imm) {  // add qword [rbp+disp], imm32
    Rex(true, 0, kRbp);
    u8(0x81);
    MemOp(0, kRbp, disp);
    u32(static_cast<uint32_t>(imm));
  }
  void SubMemI32(int32_t disp, int32_t imm) {
    Rex(true, 0, kRbp);
    u8(0x81);
    MemOp(5, kRbp, disp);
    u32(static_cast<uint32_t>(imm));
  }
  void MovMem32I(int32_t disp, int32_t imm) {  // mov dword [rbp+disp], imm
    Rex(false, 0, kRbp);
    u8(0xC7);
    MemOp(0, kRbp, disp);
    u32(static_cast<uint32_t>(imm));
  }
  void MovMem64I(int32_t disp, int32_t imm) {  // sign-extended qword store
    Rex(true, 0, kRbp);
    u8(0xC7);
    MemOp(0, kRbp, disp);
    u32(static_cast<uint32_t>(imm));
  }
  void CmpMem8I(int base, int32_t disp, uint8_t imm) {
    Rex(false, 7, base);
    u8(0x80);
    MemOp(7, base, disp);
    u8(imm);
  }
  void Push(int r) {
    if (r >= 8) u8(0x41);
    u8(0x50 + (r & 7));
  }
  void Pop(int r) {
    if (r >= 8) u8(0x41);
    u8(0x58 + (r & 7));
  }
  void CallR(int r) {
    Rex(false, 0, r);
    u8(0xFF);
    ModRM(3, 2, r);
  }
  void Ret() { u8(0xC3); }
  void Lock() { u8(0xF0); }
  void Xadd(bool w, int base, int32_t disp, int src) {
    Lock();
    Rex(w, src, base);
    u8(0x0F);
    u8(0xC1);
    MemOp(src, base, disp);
  }
  void XchgM(bool w, int base, int32_t disp, int src) {  // implicitly locked
    Rex(w, src, base);
    u8(0x87);
    MemOp(src, base, disp);
  }
  void AddM(bool w, int base, int32_t disp, int src) {
    Lock();
    Rex(w, src, base);
    u8(0x01);
    MemOp(src, base, disp);
  }
  void CmpxchgM(bool w, int base, int32_t disp, int src) {
    Lock();
    Rex(w, src, base);
    u8(0x0F);
    u8(0xB1);
    MemOp(src, base, disp);
  }

  size_t Jcc(uint8_t cc) {  // returns rel32 fixup position
    u8(0x0F);
    u8(cc);
    u32(0);
    return size() - 4;
  }
  size_t Jmp() {
    u8(0xE9);
    u32(0);
    return size() - 4;
  }
  void Patch(size_t pos, size_t target) {
    int64_t rel = static_cast<int64_t>(target) - static_cast<int64_t>(pos + 4);
    uint32_t v = static_cast<uint32_t>(static_cast<int32_t>(rel));
    std::memcpy(&buf[pos], &v, 4);
  }
  void JccTo(uint8_t cc, Label& l) {
    size_t p = Jcc(cc);
    if (l.pos >= 0) {
      Patch(p, static_cast<size_t>(l.pos));
    } else {
      l.refs.push_back(p);
    }
  }
  void JmpTo(Label& l) {
    size_t p = Jmp();
    if (l.pos >= 0) {
      Patch(p, static_cast<size_t>(l.pos));
    } else {
      l.refs.push_back(p);
    }
  }
  void Bind(Label& l) {
    l.pos = static_cast<int64_t>(size());
    for (size_t p : l.refs) Patch(p, size());
    l.refs.clear();
  }
};

class Compiler {
 public:
  Compiler(const InstrumentedProgram& ip, const JitOptions& opts,
           JitProgram* out)
      : insns_(ip.program.insns),
        mask_(ip.instrumentation_mask),
        hints_(ip.region_hints),
        heap_(ip.heap),
        opts_(opts),
        out_(out) {}

  // Empty string on success; otherwise the fallback reason.
  std::string Compile() {
    if (opts_.force_fallback) return "forced fallback (test hook)";
    size_t n = insns_.size();
    if (n == 0) return "empty program";
    if (heap_.size > (1ull << 31)) {
      return "heap too large for imm32 SFI bounds";
    }
    std::string err = Prescan();
    if (!err.empty()) return err;

    pc_off_.assign(n + 1, 0);
    EmitPrologue();
    for (size_t pc = 0; pc < n; pc++) {
      if (hi_slot_[pc]) continue;
      if (is_target_[pc]) FlushCounts();
      pc_off_[pc] = a_.size();
      if (is_back_target_[pc]) EmitBudgetCheck();
      pending_++;
      if (pc < mask_.size() && mask_[pc] != 0) pending_instr_++;
      if (!EmitInsn(pc)) return fallback_;
    }
    // Fell off the end: interpreter faults with pc == n.
    FlushCounts();
    pc_off_[n] = a_.size();
    EmitInlineFault(n, MemFaultKind::kBadAddress);
    EmitTails();
    EmitStubs();
    for (const auto& [pos, target] : branch_fixups_) {
      a_.Patch(pos, pc_off_[target]);
    }

    out_->stats.insns_compiled = n;
    out_->stats.mem_sites = mem_sites_;
    out_->stats.helper_sites = helper_sites_;
    out_->stats.inline_fast_paths = inline_fast_paths_;
    return "";
  }

  const std::vector<uint8_t>& bytes() const { return a_.buf; }

 private:
  // ---- prescan -----------------------------------------------------------

  std::string Prescan() {
    size_t n = insns_.size();
    hi_slot_.assign(n, 0);
    is_target_.assign(n + 1, 0);
    is_back_target_.assign(n + 1, 0);
    for (size_t pc = 0; pc < n; pc++) {
      const Insn& insn = insns_[pc];
      if (insn.dst >= kNumRegs || insn.src >= kNumRegs) {
        // Only the Kie pseudo-ops and ld_imm64 overload src beyond the
        // register file; those classes never reach here with src >= 13
        // except ld_imm64 pseudo kinds, which are fine.
        if (!(insn.Class() == BPF_LD) || insn.dst >= kNumRegs) {
          return "register index out of range";
        }
      }
      if (insn.IsLdImm64()) {
        if (pc + 1 >= n) return "truncated ld_imm64";
        hi_slot_[pc + 1] = 1;
        pc++;
        continue;
      }
      uint8_t cls = insn.Class();
      if (cls != BPF_JMP && cls != BPF_JMP32) continue;
      uint8_t op = insn.AluOpField();
      if (op == BPF_CALL || op == BPF_EXIT) continue;
      bool known = op == BPF_JA || op == BPF_JEQ || op == BPF_JNE ||
                   op == BPF_JGT || op == BPF_JGE || op == BPF_JLT ||
                   op == BPF_JLE || op == BPF_JSET || op == BPF_JSGT ||
                   op == BPF_JSGE || op == BPF_JSLT || op == BPF_JSLE;
      if (!known) continue;  // interpreter falls through; no target
      int64_t t = static_cast<int64_t>(pc) + 1 + insn.off;
      if (t < 0 || t > static_cast<int64_t>(n)) {
        return "jump target out of range";
      }
      if (t < static_cast<int64_t>(n) && hi_slot_[t]) {
        return "jump into ld_imm64 pair";
      }
      is_target_[t] = 1;
      if (t <= static_cast<int64_t>(pc)) is_back_target_[t] = 1;
    }
    return "";
  }

  uint8_t Hint(size_t pc) const {
    return pc < hints_.size() ? hints_[pc] : 0;
  }

  // ---- counters ----------------------------------------------------------

  void FlushCounts() {
    if (pending_ != 0) {
      a_.AddMemI32(kOffInsnCount, static_cast<int32_t>(pending_));
      pending_ = 0;
    }
    if (pending_instr_ != 0) {
      a_.AddMemI32(kOffInstrCount, static_cast<int32_t>(pending_instr_));
      pending_instr_ = 0;
    }
  }

  // ---- register file helpers --------------------------------------------

  void SpillAll() {
    a_.LoadRbp(kR11, kOffRegs);
    for (int r = 0; r < kNumRegs; r++) {
      if (kHostOf[r] >= 0) a_.StoreMemR(8, kR11, r * 8, kHostOf[r]);
    }
  }
  void ReloadAll() {
    a_.LoadRbp(kR11, kOffRegs);
    for (int r = 0; r < kNumRegs; r++) {
      if (kHostOf[r] >= 0) a_.LoadMem(8, kHostOf[r], kR11, r * 8);
    }
  }

  // Value of bytecode register `r`, materializing unmapped registers into
  // `temp` (always a full 64-bit value).
  int GetVal(int r, int temp) {
    if (kHostOf[r] >= 0) return kHostOf[r];
    if (r == R10) {
      a_.MovRI64(temp, kStackTopVa);
      return temp;
    }
    a_.LoadRbp(temp, kOffRegs);
    a_.LoadMem(8, temp, temp, kRegsSlotRbx);
    return temp;
  }

  // Stores `src` (host reg) into memory-backed bytecode register RBX using
  // `temp` for the slot pointer.
  void PutRbx(int src, int temp) {
    a_.LoadRbp(temp, kOffRegs);
    a_.StoreMemR(8, temp, kRegsSlotRbx, src);
  }

  bool Fallback(const char* reason) {
    fallback_ = reason;
    return false;
  }

  // ---- shared emission pieces -------------------------------------------

  void EmitInlineFault(size_t pc, MemFaultKind kind) {
    a_.MovMem32I(kOffExit, static_cast<int32_t>(VmResult::Outcome::kFault));
    a_.MovMem32I(kOffFaultKind, static_cast<int32_t>(kind));
    a_.MovMem64I(kOffFaultPc, static_cast<int32_t>(pc));
    a_.MovMem64I(kOffFaultVa, 0);
    a_.JmpTo(l_sync_);
  }

  void EmitBudgetCheck() {
    // Interpreter checks the budget every instruction; compiled code checks
    // at loop back-edges only (under the runtime the budget is always 0).
    a_.LoadRbp(kR10, kOffBudget);
    a_.AluRR(0x85, kR10, kR10, true);
    Label ok;
    a_.JccTo(kCcE, ok);
    a_.LoadRbp(kR11, kOffInsnCount);
    a_.AluRR(0x39, kR11, kR10, true);  // cmp executed, budget
    a_.JccTo(kCcA, l_budget_);
    a_.Bind(ok);
  }

  void EmitCallOut(void* fn, uint32_t arg) {
    SpillAll();
    a_.MovRR(kRdi, kRbp, true);
    a_.MovRI32(kRsi, arg);
    a_.MovRI64(kRax, reinterpret_cast<uint64_t>(fn));
    a_.CallR(kRax);
    a_.AluRR(0x85, kRax, kRax, false);  // test eax, eax
    a_.JccTo(kCcNe, l_return_);         // nonzero: fault fields already set
  }

  // ---- top-level per-instruction dispatch -------------------------------

  bool EmitInsn(size_t pc) {
    const Insn& insn = insns_[pc];
    switch (insn.Class()) {
      case BPF_ALU64:
      case BPF_ALU:
        return EmitAlu(pc);
      case BPF_LD:
        return EmitLd(pc);
      case BPF_LDX:
      case BPF_ST:
      case BPF_STX:
        return EmitMem(pc), true;
      case BPF_JMP:
      case BPF_JMP32:
        return EmitJmp(pc);
      default:
        FlushCounts();
        EmitInlineFault(pc, MemFaultKind::kBadAddress);
        return true;
    }
  }

  // ---- ALU ---------------------------------------------------------------

  bool EmitAlu(size_t pc) {
    const Insn& insn = insns_[pc];
    bool is64 = insn.Class() == BPF_ALU64;
    uint8_t op = insn.AluOpField();
    if (op == BPF_MOV) return EmitMov(insn, is64);
    if (insn.dst == R10) return Fallback("ALU write to frame pointer");
    if (insn.dst == RBX) return Fallback("non-MOV ALU on memory-backed RBX");
    int d = kHostOf[insn.dst];

    if (op == BPF_NEG) {
      a_.Neg(d, is64);  // neg r32 zero-extends on x86-64
      return true;
    }
    if (op == BPF_DIV || op == BPF_MOD) {
      EmitDivMod(insn, d, is64, op == BPF_MOD);
      return true;
    }
    if (op == BPF_LSH || op == BPF_RSH || op == BPF_ARSH) {
      EmitShift(insn, d, is64);
      return true;
    }

    bool from_reg = insn.SrcField() == BPF_X;
    uint8_t rr = 0;
    int ext = -1;
    switch (op) {
      case BPF_ADD:
        rr = 0x01;
        ext = 0;
        break;
      case BPF_SUB:
        rr = 0x29;
        ext = 5;
        break;
      case BPF_OR:
        rr = 0x09;
        ext = 1;
        break;
      case BPF_AND:
        rr = 0x21;
        ext = 4;
        break;
      case BPF_XOR:
        rr = 0x31;
        ext = 6;
        break;
      case BPF_MUL:
        if (from_reg) {
          int s = GetVal(insn.src, kR10);
          a_.ImulRR(d, s, is64);
        } else {
          a_.MovRI32s(kR10, insn.imm);  // imm semantics match interp casts
          a_.ImulRR(d, kR10, is64);
        }
        return true;
      default:
        // Unknown ALU op: AluEval returns 0 → dst = 0 (32-bit zero-extends
        // too, so one xor covers both widths).
        a_.AluRR(0x31, d, d, false);
        return true;
    }
    if (from_reg) {
      int s = GetVal(insn.src, kR10);
      a_.AluRR(rr, d, s, is64);
    } else {
      a_.AluRI(ext, d, insn.imm, is64);
    }
    return true;
  }

  bool EmitMov(const Insn& insn, bool is64) {
    if (insn.dst == R10) return Fallback("MOV to frame pointer");
    bool from_reg = insn.SrcField() == BPF_X;
    if (insn.dst == RBX) {
      if (from_reg) {
        int s = GetVal(insn.src, kR10);
        a_.MovRR(kR10, s, is64);  // 32-bit form zero-extends
      } else if (is64) {
        a_.MovRI32s(kR10, insn.imm);
      } else {
        a_.MovRI32(kR10, static_cast<uint32_t>(insn.imm));
      }
      PutRbx(kR10, kR11);
      return true;
    }
    int d = kHostOf[insn.dst];
    if (from_reg) {
      if (kHostOf[insn.src] >= 0) {
        a_.MovRR(d, kHostOf[insn.src], is64);
      } else {
        GetVal(insn.src, d);  // materializes directly into d
        if (!is64) a_.MovRR(d, d, false);
      }
    } else if (is64) {
      a_.MovRI32s(d, insn.imm);
    } else {
      a_.MovRI32(d, static_cast<uint32_t>(insn.imm));
    }
    return true;
  }

  void EmitShift(const Insn& insn, int d, bool is64) {
    uint8_t op = insn.AluOpField();
    int ext = op == BPF_LSH ? 4 : (op == BPF_RSH ? 5 : 7);
    if (insn.SrcField() != BPF_X) {
      int m = insn.imm & (is64 ? 63 : 31);
      if (m != 0) a_.ShiftImm(ext, d, m, is64);
      // 32-bit shifts must zero-extend even for count 0 (x86 shift-by-0
      // does not write the destination).
      if (!is64) a_.MovRR(d, d, false);
      return;
    }
    int s = GetVal(insn.src, kR11);
    // x86 shifts only take CL; juggle around whichever of d/s is rcx.
    if (d == kRcx) {
      a_.MovRR(kR10, kRcx, true);
      if (s != kRcx) a_.MovRR(kRcx, s, true);
      a_.ShiftCl(ext, kR10, is64);
      a_.MovRR(kRcx, kR10, true);
      if (!is64) a_.MovRR(kRcx, kRcx, false);
      return;
    }
    if (s == kRcx) {
      a_.ShiftCl(ext, d, is64);
    } else {
      a_.MovRR(kR10, kRcx, true);
      a_.MovRR(kRcx, s, true);
      a_.ShiftCl(ext, d, is64);
      a_.MovRR(kRcx, kR10, true);
    }
    if (!is64) a_.MovRR(d, d, false);
  }

  void EmitDivMod(const Insn& insn, int d, bool is64, bool is_mod) {
    bool from_reg = insn.SrcField() == BPF_X;
    if (!from_reg && insn.imm == 0) {
      // Compile-time zero divisor: div → 0, mod → dividend (32-bit
      // truncated).
      if (!is_mod) {
        a_.AluRR(0x31, d, d, false);
      } else if (!is64) {
        a_.MovRR(d, d, false);
      }
      return;
    }
    // Divisor into r10 before any clobbering.
    if (from_reg) {
      int s = GetVal(insn.src, kR10);
      if (s != kR10) a_.MovRR(kR10, s, true);
    } else if (is64) {
      a_.MovRI32s(kR10, insn.imm);
    } else {
      a_.MovRI32(kR10, static_cast<uint32_t>(insn.imm));
    }
    Label done, nonzero;
    if (from_reg) {
      a_.AluRR(0x85, kR10, kR10, is64);
      a_.JccTo(kCcNe, nonzero);
      if (!is_mod) {
        a_.AluRR(0x31, d, d, false);
      } else if (!is64) {
        a_.MovRR(d, d, false);
      }
      a_.JmpTo(done);
      a_.Bind(nonzero);
    }
    a_.MovRR(kR11, kRax, true);  // save R0
    a_.Push(kRdx);               // save R3
    if (d != kRax) {
      a_.MovRR(kRax, d, is64);  // 32-bit mov zero-extends the dividend
    } else if (!is64) {
      a_.MovRR(kRax, kRax, false);
    }
    a_.AluRR(0x31, kRdx, kRdx, false);  // xor edx, edx
    a_.DivR(kR10, is64);
    a_.MovRR(kR10, is_mod ? kRdx : kRax, true);  // 32-bit results already
                                                 // zero-extended by div
    a_.Pop(kRdx);
    a_.MovRR(kRax, kR11, true);
    a_.MovRR(d, kR10, true);
    a_.Bind(done);
  }

  // ---- LD class (ld_imm64 + Kie pseudo-instructions) --------------------

  bool EmitLd(size_t pc) {
    const Insn& insn = insns_[pc];
    if (insn.IsLdImm64()) {
      uint64_t imm = LdImm64Value(insn, insns_[pc + 1]);
      uint64_t val;
      if (insn.src == kPseudoMapId) {
        val = MapRegistry::HandleVaForId(static_cast<uint32_t>(imm));
      } else if (insn.src == kPseudoHeapVar) {
        val = (heap_.size != 0 ? heap_.kernel_base : 0) + imm;
      } else {
        val = imm;
      }
      if (insn.dst == R10) return Fallback("ld_imm64 to frame pointer");
      if (insn.dst == RBX) {
        a_.MovRI64(kR10, val);
        PutRbx(kR10, kR11);
      } else {
        a_.MovRI64(kHostOf[insn.dst], val);
      }
      return true;
    }
    if (insn.opcode == kKieFuelCheckOpcode) {
      EmitFuelCheck(pc);
      return true;
    }
    if (insn.opcode == kKieSanitizeOpcode ||
        insn.opcode == kKieTranslateOpcode) {
      return EmitSanitize(pc);
    }
    FlushCounts();
    EmitInlineFault(pc, MemFaultKind::kBadAddress);
    return true;
  }

  void EmitFuelCheck(size_t pc) {
    // Counts include the FUELCHECK itself before comparing, matching the
    // interpreter's executed++-then-test order.
    FlushCounts();
    Label no_fuel, trap, ok;
    a_.LoadRbp(kR10, kOffFuel);
    a_.AluRR(0x85, kR10, kR10, true);
    a_.JccTo(kCcE, no_fuel);
    a_.LoadRbp(kR11, kOffInsnCount);
    a_.AluRR(0x39, kR11, kR10, true);  // cmp executed, fuel_quantum
    a_.JccTo(kCcA, trap);
    a_.Bind(no_fuel);
    a_.LoadRbp(kR10, kOffCancel);
    a_.CmpMem8I(kR10, 0, 0);
    a_.JccTo(kCcE, ok);
    a_.Bind(trap);
    EmitInlineFault(pc, MemFaultKind::kTerminate);
    a_.Bind(ok);
  }

  bool EmitSanitize(size_t pc) {
    const Insn& insn = insns_[pc];
    if (insn.dst == R10) return Fallback("SANITIZE of frame pointer");
    if (heap_.size == 0) {
      FlushCounts();
      EmitInlineFault(pc, MemFaultKind::kBadAddress);
      return true;
    }
    uint64_t base = insn.opcode == kKieSanitizeOpcode ? heap_.kernel_base
                                                      : heap_.user_base;
    int32_t mask = static_cast<int32_t>(heap_.mask());  // size ≤ 2^31
    if (insn.dst == RBX) {
      int v = GetVal(RBX, kR10);
      a_.AluRI(4, v, mask, true);
      a_.MovRI64(kR11, base);
      a_.AluRR(0x01, v, kR11, true);
      PutRbx(v, kR11);
      return true;
    }
    int d = kHostOf[insn.dst];
    a_.AluRI(4, d, mask, true);  // and d, mask (mask < 2^31: positive imm)
    a_.MovRI64(kR10, base);
    a_.AluRR(0x01, d, kR10, true);
    return true;
  }

  // ---- memory accesses ---------------------------------------------------

  struct SlowStub {
    uint32_t pc = 0;
    uint32_t pend = 0;
    uint32_t pend_instr = 0;
    std::vector<size_t> jumps;  // fixups from the fast path's guard jcc's
    size_t resume = 0;          // native offset just past the fast access
  };

  void EmitMem(size_t pc) {
    const Insn& insn = insns_[pc];
    int size = insn.AccessSize();
    bool is_load = insn.Class() == BPF_LDX;
    bool is_atomic = insn.IsAtomic();
    int base = is_load ? insn.src : insn.dst;
    mem_sites_++;

    bool slow_only = !opts_.fast_paths;
    // Register-shape constraints for the inline templates.
    if (is_load && (insn.dst == R10 || insn.dst == RBX)) slow_only = true;
    if (is_atomic &&
        (insn.src == R10 || insn.src == RBX || size < 4)) {
      slow_only = true;
    }

    // Static stack slot through R10: compile-time bounds, no checks at all.
    if (!slow_only && base == R10) {
      int64_t soff = static_cast<int64_t>(kStackSize) + insn.off;
      if (soff >= 0 && soff + size <= static_cast<int64_t>(kStackSize)) {
        inline_fast_paths_++;
        a_.LoadRbp(kR11, kOffStack);
        EmitAccess(insn, kR11, static_cast<int32_t>(soff));
        return;
      }
      slow_only = true;  // out of frame: let the interpreter path fault
    }
    if (base == RBX && is_atomic) slow_only = true;  // keep templates simple

    uint8_t hint = Hint(pc);
    int path = 0;  // 0 slow, 1 heap, 2 stack, 3 ctx
    if (!slow_only) {
      if (hint == static_cast<uint8_t>(MemRegion::kHeap) && heap_.size != 0) {
        path = 1;
      } else if (hint == static_cast<uint8_t>(MemRegion::kStack)) {
        path = 2;
      } else if (hint == static_cast<uint8_t>(MemRegion::kCtx)) {
        path = 3;
      }
    }

    if (path == 0) {
      FlushCounts();
      EmitCallOut(reinterpret_cast<void*>(&kflex_jit_mem),
                  static_cast<uint32_t>(pc));
      ReloadAll();
      return;
    }

    inline_fast_paths_++;
    SlowStub stub;
    stub.pc = static_cast<uint32_t>(pc);
    stub.pend = pending_;
    stub.pend_instr = pending_instr_;

    // va into r11.
    if (kHostOf[base] >= 0) {
      a_.Lea(kR11, kHostOf[base], insn.off);
    } else {  // base == RBX
      a_.LoadRbp(kR11, kOffRegs);
      a_.LoadMem(8, kR11, kR11, kRegsSlotRbx);
      if (insn.off != 0) a_.AluRI(0, kR11, insn.off, true);
    }

    if (path == 1) {
      // Heap: r10 = va - r12 (pinned base); one unsigned compare covers both
      // bounds, then software page-presence bytes for first and last byte.
      a_.MovRR(kR10, kR11, true);
      a_.AluRR(0x29, kR10, kR12, true);
      a_.AluRI(7, kR10, static_cast<int32_t>(heap_.size) - size, true);
      stub.jumps.push_back(a_.Jcc(kCcA));
      a_.MovRR(kR11, kR10, true);
      a_.ShiftImm(5, kR11, 12, true);  // kHeapPageSize == 4096
      a_.AluRM(0x03, kR11, kRbp, kOffPresent, true);
      a_.CmpMem8I(kR11, 0, 0);
      stub.jumps.push_back(a_.Jcc(kCcE));
      if (size > 1) {
        a_.Lea(kR11, kR10, size - 1);
        a_.ShiftImm(5, kR11, 12, true);
        a_.AluRM(0x03, kR11, kRbp, kOffPresent, true);
        a_.CmpMem8I(kR11, 0, 0);
        stub.jumps.push_back(a_.Jcc(kCcE));
      }
      a_.AluRM(0x03, kR10, kRbp, kOffHeapHost, true);
      EmitAccess(insn, kR10, 0);
    } else if (path == 2) {
      a_.MovRI64(kR10, kStackRegion);
      a_.AluRR(0x29, kR11, kR10, true);
      a_.AluRI(7, kR11, static_cast<int32_t>(kStackSize) - size, true);
      stub.jumps.push_back(a_.Jcc(kCcA));
      a_.AluRM(0x03, kR11, kRbp, kOffStack, true);
      EmitAccess(insn, kR11, 0);
    } else {
      a_.MovRI64(kR10, kCtxRegion);
      a_.AluRR(0x29, kR11, kR10, true);
      a_.LoadRbp(kR10, kOffCtxSize);
      a_.AluRI(5, kR10, size, true);
      stub.jumps.push_back(a_.Jcc(kCcB));  // ctx_size < size underflows
      a_.AluRR(0x39, kR11, kR10, true);
      stub.jumps.push_back(a_.Jcc(kCcA));
      a_.AluRM(0x03, kR11, kRbp, kOffCtx, true);
      EmitAccess(insn, kR11, 0);
    }
    stub.resume = a_.size();
    stubs_.push_back(std::move(stub));
  }

  // The access proper against host address [addr + disp]. `addr` is r10 or
  // r11; the other temp is free.
  void EmitAccess(const Insn& insn, int addr, int32_t disp) {
    int size = insn.AccessSize();
    int temp = addr == kR10 ? kR11 : kR10;
    if (insn.IsAtomic()) {
      int hs = kHostOf[insn.src];  // src ∈ mapped regs (checked by caller)
      bool w = size == 8;
      if (insn.imm == BPF_ATOMIC_CMPXCHG) {
        a_.CmpxchgM(w, addr, disp, hs);
        if (!w) a_.MovRR(kRax, kRax, false);  // interp zero-extends R0
      } else if (insn.imm == BPF_ATOMIC_XCHG) {
        a_.XchgM(w, addr, disp, hs);
      } else if ((insn.imm & BPF_ATOMIC_FETCH) != 0) {
        a_.Xadd(w, addr, disp, hs);
      } else {
        a_.AddM(w, addr, disp, hs);
      }
      return;
    }
    if (insn.Class() == BPF_LDX) {
      a_.LoadMem(size, kHostOf[insn.dst], addr, disp);
      return;
    }
    if (insn.Class() == BPF_ST) {
      a_.StoreMemI(size, addr, disp, insn.imm);
      return;
    }
    int hs = kHostOf[insn.src];
    if (hs < 0) {
      if (insn.src == R10) {
        a_.MovRI64(temp, kStackTopVa);
      } else {
        a_.LoadRbp(temp, kOffRegs);
        a_.LoadMem(8, temp, temp, kRegsSlotRbx);
      }
      hs = temp;
    }
    a_.StoreMemR(size, addr, disp, hs);
  }

  // ---- jumps -------------------------------------------------------------

  bool EmitJmp(size_t pc) {
    const Insn& insn = insns_[pc];
    bool is64 = insn.Class() == BPF_JMP;
    uint8_t op = insn.AluOpField();
    if (op == BPF_CALL) {
      FlushCounts();
      helper_sites_++;
      EmitCallOut(reinterpret_cast<void*>(&kflex_jit_helper),
                  static_cast<uint32_t>(pc));
      ReloadAll();
      return true;
    }
    if (op == BPF_EXIT) {
      FlushCounts();
      a_.JmpTo(l_exit_ok_);
      return true;
    }
    size_t target = static_cast<size_t>(static_cast<int64_t>(pc) + 1 +
                                        insn.off);
    if (op == BPF_JA) {
      FlushCounts();
      branch_fixups_.emplace_back(a_.Jmp(), target);
      return true;
    }
    uint8_t cc = 0;
    switch (op) {
      case BPF_JEQ:
        cc = kCcE;
        break;
      case BPF_JNE:
        cc = kCcNe;
        break;
      case BPF_JGT:
        cc = kCcA;
        break;
      case BPF_JGE:
        cc = kCcAe;
        break;
      case BPF_JLT:
        cc = kCcB;
        break;
      case BPF_JLE:
        cc = kCcBe;
        break;
      case BPF_JSGT:
        cc = kCcG;
        break;
      case BPF_JSGE:
        cc = kCcGe;
        break;
      case BPF_JSLT:
        cc = kCcL;
        break;
      case BPF_JSLE:
        cc = kCcLe;
        break;
      case BPF_JSET:
        cc = kCcNe;
        break;
      default:
        return true;  // JmpEval returns false: fall through, no flush needed
    }
    FlushCounts();
    int da = GetVal(insn.dst, kR10);
    uint8_t opc = op == BPF_JSET ? 0x85 : 0x39;  // test vs cmp
    if (insn.SrcField() == BPF_X) {
      int sb = GetVal(insn.src, kR11);
      a_.AluRR(opc, da, sb, is64);
    } else if (op == BPF_JSET) {
      a_.TestRI(da, insn.imm, is64);
    } else {
      a_.AluRI(7, da, insn.imm, is64);
    }
    branch_fixups_.emplace_back(a_.Jcc(cc), target);
    return true;
  }

  // ---- prologue / tails / stubs -----------------------------------------

  void EmitPrologue() {
    a_.Push(kRbp);
    a_.Push(kRbx);
    a_.Push(kR12);
    a_.Push(kR13);
    a_.Push(kR14);
    a_.Push(kR15);
    a_.AluRI(5, kRsp, 8, true);  // 16-align rsp for call-outs
    a_.MovRR(kRbp, kRdi, true);
    a_.LoadRbp(kR11, kOffRegs);
    for (int r = 0; r < kNumRegs; r++) {
      if (r == R1 || kHostOf[r] < 0) continue;
      a_.LoadMem(8, kHostOf[r], kR11, r * 8);
    }
    a_.LoadMem(8, kHostOf[R1], kR11, R1 * 8);  // rdi last: it held JitState*
    a_.LoadRbp(kR12, kOffHeapBase);
  }

  void EmitTails() {
    a_.Bind(l_exit_ok_);
    SpillAll();
    a_.StoreRbp(kOffRet, kRax);
    a_.MovMem32I(kOffExit, static_cast<int32_t>(VmResult::Outcome::kOk));
    a_.JmpTo(l_return_);

    a_.Bind(l_sync_);  // inline-fault exits: fault fields already stored
    SpillAll();
    a_.JmpTo(l_return_);

    a_.Bind(l_budget_);
    SpillAll();
    a_.MovMem32I(kOffExit,
                 static_cast<int32_t>(VmResult::Outcome::kBudgetExceeded));

    a_.Bind(l_return_);
    a_.AluRI(0, kRsp, 8, true);
    a_.Pop(kR15);
    a_.Pop(kR14);
    a_.Pop(kR13);
    a_.Pop(kR12);
    a_.Pop(kRbx);
    a_.Pop(kRbp);
    a_.Ret();
  }

  void EmitStubs() {
    for (SlowStub& s : stubs_) {
      size_t here = a_.size();
      for (size_t pos : s.jumps) a_.Patch(pos, here);
      // Counts pending at the site (including this access) must be visible
      // to the C++ path; on resume they are subtracted back so the fast
      // path's own later flush does not double-count.
      if (s.pend != 0) {
        a_.AddMemI32(kOffInsnCount, static_cast<int32_t>(s.pend));
      }
      if (s.pend_instr != 0) {
        a_.AddMemI32(kOffInstrCount, static_cast<int32_t>(s.pend_instr));
      }
      EmitCallOut(reinterpret_cast<void*>(&kflex_jit_mem), s.pc);
      ReloadAll();
      if (s.pend != 0) {
        a_.SubMemI32(kOffInsnCount, static_cast<int32_t>(s.pend));
      }
      if (s.pend_instr != 0) {
        a_.SubMemI32(kOffInstrCount, static_cast<int32_t>(s.pend_instr));
      }
      a_.Patch(a_.Jmp(), s.resume);
    }
  }

  const std::vector<Insn>& insns_;
  const std::vector<uint8_t>& mask_;
  const std::vector<uint8_t>& hints_;
  HeapLayout heap_;
  JitOptions opts_;
  JitProgram* out_;

  Asm a_;
  std::string fallback_;
  std::vector<uint8_t> hi_slot_;
  std::vector<uint8_t> is_target_;
  std::vector<uint8_t> is_back_target_;
  std::vector<size_t> pc_off_;
  std::vector<std::pair<size_t, size_t>> branch_fixups_;  // (fixup, bpf pc)
  std::vector<SlowStub> stubs_;
  Label l_exit_ok_, l_sync_, l_budget_, l_return_;
  uint32_t pending_ = 0;
  uint32_t pending_instr_ = 0;
  uint64_t mem_sites_ = 0;
  uint64_t helper_sites_ = 0;
  uint64_t inline_fast_paths_ = 0;
};

}  // namespace

JitCompileResult JitCompile(const InstrumentedProgram& iprog,
                            const JitOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  auto prog = std::make_unique<JitProgram>();
  prog->insns = iprog.program.insns;
  prog->heap = iprog.heap;
  Compiler compiler(iprog, options, prog.get());
  std::string err = compiler.Compile();
  if (!err.empty()) {
    KFLEX_TRACE(ObsEvent::kJitFallback, iprog.program.insns.size(), 0);
    KFLEX_OBS_COUNT(kJitFallbacks);
    return {nullptr, std::move(err)};
  }
  const std::vector<uint8_t>& bytes = compiler.bytes();
  if (!prog->code.Allocate(bytes.size())) {
    KFLEX_TRACE(ObsEvent::kJitFallback, iprog.program.insns.size(), 0);
    KFLEX_OBS_COUNT(kJitFallbacks);
    return {nullptr, "executable mapping refused by host (mmap)"};
  }
  if (!prog->code.Seal(bytes.data(), bytes.size())) {
    KFLEX_TRACE(ObsEvent::kJitFallback, iprog.program.insns.size(), 0);
    KFLEX_OBS_COUNT(kJitFallbacks);
    return {nullptr, "W^X seal refused by host (mprotect)"};
  }
  prog->entry = reinterpret_cast<JitProgram::EntryFn>(
      const_cast<uint8_t*>(prog->code.data()));
  prog->stats.code_bytes = prog->code.code_size();
  prog->stats.compile_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  KFLEX_TRACE(ObsEvent::kJitCompile, prog->stats.code_bytes, prog->stats.compile_ns);
  return {std::move(prog), ""};
}

#else  // !x86-64: compile-time fallback

JitCompileResult JitCompile(const InstrumentedProgram& iprog,
                            const JitOptions& options) {
  (void)options;
  KFLEX_TRACE(ObsEvent::kJitFallback, iprog.program.insns.size(), 0);
  KFLEX_OBS_COUNT(kJitFallbacks);
  return {nullptr, "host architecture is not x86-64"};
}

#endif

}  // namespace kflex
