// Executable code cache for the template JIT (§4.2).
//
// Compiled extensions live in mmap'd regions the backend fills while they are
// writable and then seals to PROT_READ|PROT_EXEC before first execution
// (W^X: the region is never writable and executable at the same time). Each
// compiled program owns one CodeBuffer; the process-wide CodeCache tracks
// aggregate footprint for --jit-stats and tests.
#ifndef SRC_JIT_CODE_CACHE_H_
#define SRC_JIT_CODE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kflex {

// One executable mapping holding the native code of a single compiled
// extension. Movable, not copyable; unmaps on destruction.
class CodeBuffer {
 public:
  CodeBuffer() = default;
  ~CodeBuffer();

  CodeBuffer(CodeBuffer&& other) noexcept;
  CodeBuffer& operator=(CodeBuffer&& other) noexcept;
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  // Maps a writable region of at least `size` bytes (page-rounded). Returns
  // false if the host refuses (no mmap, RWX policy, ...), in which case the
  // caller falls back to the interpreter.
  bool Allocate(size_t size);

  // Copies `code` into the mapping and flips it to PROT_READ|PROT_EXEC.
  // After sealing the buffer is immutable.
  bool Seal(const uint8_t* code, size_t size);

  const uint8_t* data() const { return data_; }
  size_t code_size() const { return code_size_; }
  size_t mapped_size() const { return mapped_size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void Release();

  uint8_t* data_ = nullptr;
  size_t mapped_size_ = 0;
  size_t code_size_ = 0;
};

// Process-wide accounting of live JIT code (diagnostics only).
class CodeCache {
 public:
  static void OnMap(size_t bytes);
  static void OnUnmap(size_t bytes);
  static uint64_t live_bytes();
  static uint64_t total_mapped_bytes();
};

}  // namespace kflex

#endif  // SRC_JIT_CODE_CACHE_H_
