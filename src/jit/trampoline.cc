#include "src/jit/trampoline.h"

#include "src/ebpf/insn.h"
#include "src/runtime/layout.h"

namespace kflex {

extern "C" uint32_t kflex_jit_mem(JitState* st, uint32_t pc) {
  VmEnv& env = *st->env;
  const Insn& insn = st->prog->insns[pc];
  MemFaultKind fault = MemFaultKind::kNone;
  uint64_t va = 0;
  if (VmExecMemInsn(env, insn, fault, va)) return 0;
  st->exit_code = static_cast<uint32_t>(VmResult::Outcome::kFault);
  st->fault_kind = static_cast<uint32_t>(fault);
  st->fault_pc = pc;
  st->fault_va = va;
  return 1;
}

extern "C" uint32_t kflex_jit_helper(JitState* st, uint32_t pc) {
  VmEnv& env = *st->env;
  const Insn& insn = st->prog->insns[pc];
  const HelperTable::Entry* helper =
      env.helpers != nullptr ? env.helpers->Find(insn.imm) : nullptr;
  if (helper == nullptr) {
    st->exit_code = static_cast<uint32_t>(VmResult::Outcome::kFault);
    st->fault_kind = static_cast<uint32_t>(MemFaultKind::kBadAddress);
    st->fault_pc = pc;
    st->fault_va = static_cast<uint64_t>(insn.imm);
    return 1;
  }
  st->insn_count += helper->virtual_cost;
  uint64_t* regs = env.regs;
  uint64_t args[5] = {regs[R1], regs[R2], regs[R3], regs[R4], regs[R5]};
  HelperOutcome out = VmCallHelper(env, insn.imm, *helper, args);
  if (env.helper_trace != nullptr) {
    env.helper_trace->emplace_back(insn.imm, out.ret);
  }
  if (out.cancel) {
    st->exit_code = static_cast<uint32_t>(VmResult::Outcome::kHelperCancel);
    st->fault_pc = pc;
    return 1;
  }
  if (out.fault) {
    st->exit_code = static_cast<uint32_t>(VmResult::Outcome::kHelperFault);
    st->fault_pc = pc;
    return 1;
  }
  regs[R0] = out.ret;
  return 0;
}

VmResult JitRun(const JitProgram& prog, VmEnv& env) {
  // FUELCHECK reads the cancel byte unconditionally; point it at a constant
  // zero when the invocation has no cancel flag.
  static const uint8_t kNoCancel = 0;

  VmResult result;
  if (prog.entry == nullptr) {
    result.outcome = VmResult::Outcome::kFault;
    result.fault_kind = MemFaultKind::kBadAddress;
    return result;
  }
  env.regs[R1] = kCtxRegion;
  env.regs[R10] = kStackRegion + kStackSize;
  if (env.maps != nullptr && env.map_windows == nullptr) {
    env.map_windows = env.maps->ValueWindows();
  }

  JitState st{};
  st.regs = env.regs;
  st.stack_host = env.stack;
  st.ctx_host = env.ctx;
  st.ctx_size = env.ctx_size;
  if (env.heap != nullptr) {
    st.heap_host = env.heap->HostAt(0);
    st.present = env.heap->present_bytes();
    st.heap_kernel_base = env.heap->layout().kernel_base;
  }
  st.fuel_quantum = env.fuel_quantum;
  st.cancel_flag =
      env.cancel != nullptr
          ? reinterpret_cast<const volatile uint8_t*>(env.cancel)
          : &kNoCancel;
  st.insn_budget = env.insn_budget;
  st.env = &env;
  st.prog = &prog;

  prog.entry(&st);

  result.outcome = static_cast<VmResult::Outcome>(st.exit_code);
  result.ret = static_cast<int64_t>(st.ret);
  result.fault_pc = st.fault_pc;
  result.fault_kind = static_cast<MemFaultKind>(st.fault_kind);
  result.fault_va = st.fault_va;
  result.insns_executed = st.insn_count;
  result.instr_insns_executed = st.instr_count;
  return result;
}

}  // namespace kflex
