#include "src/uapi/user_heap.h"

namespace kflex {

void TimeSliceExtension::EnterCritical(uint64_t now_ns) {
  if (depth_ == 0) {
    slice_start_ns_ = now_ns;
    preempted_ = false;
  }
  depth_++;
}

void TimeSliceExtension::LeaveCritical() {
  if (depth_ > 0) {
    depth_--;
  }
}

bool TimeSliceExtension::ShouldPreempt(uint64_t now_ns) const {
  return depth_ > 0 && now_ns > slice_start_ns_ && now_ns - slice_start_ns_ > kSliceNs;
}

}  // namespace kflex
