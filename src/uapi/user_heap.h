// User-space side of KFlex (§3.4): applications map extension heaps into
// their own address space and follow shared pointers directly. With
// translate-on-store enabled, pointers the extension stores into the heap
// are user-space virtual addresses, so unmodified user code can walk
// extension-built data structures.
#ifndef SRC_UAPI_USER_HEAP_H_
#define SRC_UAPI_USER_HEAP_H_

#include <cstdint>
#include <cstring>

#include "src/runtime/heap.h"

namespace kflex {

// The application's mmap()ed view of an extension heap. All accesses go
// through user VAs exactly as a real process would issue them.
class UserHeapView {
 public:
  explicit UserHeapView(ExtensionHeap* heap) : heap_(heap) {}

  uint64_t base() const { return heap_->layout().user_base; }
  uint64_t size() const { return heap_->size(); }
  // User VA of a heap offset (how the application names extension globals).
  uint64_t AddrOf(uint64_t heap_off) const { return base() + heap_off; }
  bool Contains(uint64_t user_va) const {
    return user_va >= base() && user_va < base() + size();
  }

  // Typed loads/stores through user VAs. Return false on faults (address
  // outside the mapping or a page the kernel has not populated).
  template <typename T>
  bool Load(uint64_t user_va, T& out) const {
    MemFaultKind fk = MemFaultKind::kNone;
    const uint8_t* p = heap_->TranslateUser(user_va, sizeof(T), fk);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(&out, p, sizeof(T));
    return true;
  }

  template <typename T>
  bool Store(uint64_t user_va, const T& value) {
    MemFaultKind fk = MemFaultKind::kNone;
    uint8_t* p = heap_->TranslateUser(user_va, sizeof(T), fk);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(p, &value, sizeof(T));
    return true;
  }

  bool LoadBytes(uint64_t user_va, void* out, uint64_t len) const {
    MemFaultKind fk = MemFaultKind::kNone;
    const uint8_t* p = heap_->TranslateUser(user_va, len, fk);
    if (p == nullptr) {
      return false;
    }
    std::memcpy(out, p, len);
    return true;
  }

  // The raw word at a heap offset interpreted as a shared pointer; returns
  // 0 if the slot cannot be read.
  uint64_t LoadPointerAt(uint64_t heap_off) const {
    uint64_t v = 0;
    Load(AddrOf(heap_off), v);
    return v;
  }

  // Converts a user VA back to a heap offset (e.g., to kflex_free an object
  // from the user-space allocator backend, §4.1).
  uint64_t OffsetOf(uint64_t user_va) const { return user_va & (size() - 1); }

  ExtensionHeap* heap() { return heap_; }

 private:
  ExtensionHeap* heap_;
};

// rseq-style time slice extension (§3.4, §4.4): user threads bump a
// critical-section counter around spin-lock acquisition; while the counter
// is nonzero the scheduler grants up to one extra slice (50 us) before
// forcefully preempting. Nested locks are counted correctly.
class TimeSliceExtension {
 public:
  static constexpr uint64_t kSliceNs = 50'000;

  // Called by user code when entering/leaving a critical section.
  void EnterCritical(uint64_t now_ns);
  void LeaveCritical();

  bool InCritical() const { return depth_ > 0; }
  int depth() const { return depth_; }

  // Scheduler-side check: true if the thread exhausted its extension and
  // must be preempted (leaving any held locks stuck until cancellation
  // recovers the waiters, §4.4).
  bool ShouldPreempt(uint64_t now_ns) const;

  bool preempted() const { return preempted_; }
  void MarkPreempted() { preempted_ = true; }

 private:
  int depth_ = 0;
  uint64_t slice_start_ns_ = 0;
  bool preempted_ = false;
};

}  // namespace kflex

#endif  // SRC_UAPI_USER_HEAP_H_
