#include "src/kie/kie.h"

#include <limits>

#include "src/base/logging.h"
#include "src/obs/obs.h"

namespace kflex {

namespace {

// Per-original-instruction replacement sequence.
struct Replacement {
  std::vector<Insn> insns;
  size_t anchor = 0;          // Index of the original instruction within insns.
  int terminate_load = -1;    // Index of the C1 terminate load, if inserted.
  bool skip = false;          // Second slot of an ld_imm64 pair.
};

bool IsMemAccess(const Insn& insn) {
  return insn.IsLoad() || insn.IsStore() || insn.IsAtomic();
}

}  // namespace

StatusOr<InstrumentedProgram> Instrument(const Program& program, const Analysis& analysis,
                                         const HeapLayout& heap, const KieOptions& options,
                                         const GuardPlan* plan) {
  if (plan != nullptr && (plan->dominated.size() != program.insns.size() ||
                          plan->removed.size() != program.insns.size())) {
    return InvalidArgument("guard plan does not match program");
  }
  // Dominated-guard elision is only sound under the option combination the
  // optimizer's availability model assumed: every guarded site writes RAX via
  // MOV+SANITIZE (no translate scratch use, no read-skipping performance
  // mode, no forced guards on elided sites). Removal of dead instructions is
  // valid regardless.
  const bool use_plan = plan != nullptr && options.sfi && options.elide_guards &&
                        !options.performance_mode && !options.translate_on_store;
  if (program.heap_size != 0) {
    if (heap.size != program.heap_size) {
      return InvalidArgument("heap layout size does not match program declaration");
    }
    if ((heap.kernel_base & heap.mask()) != 0 || (heap.user_base & heap.mask()) != 0) {
      return InvalidArgument("heap bases must be aligned to the heap size");
    }
  }
  if (analysis.mem.size() != program.insns.size()) {
    return InvalidArgument("analysis does not match program");
  }

  InstrumentedProgram out;
  out.heap = heap;
  out.stats.insns_in = program.insns.size();

  const uint64_t terminate_slot_va = heap.kernel_base + kTerminateSlotOff;

  std::vector<Replacement> repl(program.insns.size());
  for (size_t pc = 0; pc < program.insns.size(); pc++) {
    const Insn& insn = program.insns[pc];
    Replacement& r = repl[pc];

    if (plan != nullptr && plan->removed[pc]) {
      // Semantic no-op (folded fall-through branch, dead stack store, or
      // unreachable code): contribute zero instructions. Jumps whose target
      // was removed land on the next retained instruction, which is exactly
      // where execution would have continued.
      if (insn.IsLdImm64()) {
        repl[pc + 1].skip = true;
        pc++;
      }
      continue;
    }

    if (insn.IsLdImm64()) {
      uint64_t imm = LdImm64Value(insn, program.insns[pc + 1]);
      if (insn.src == kPseudoHeapVar) {
        // Concretize the heap variable to its absolute kernel VA (§4.1).
        uint64_t va = heap.kernel_base + imm;
        r.insns.push_back(LdImm64Insn(static_cast<Reg>(insn.dst), va));
        r.insns.push_back(LdImm64HiInsn(va));
      } else {
        r.insns.push_back(insn);
        r.insns.push_back(program.insns[pc + 1]);
      }
      repl[pc + 1].skip = true;
      pc++;
      continue;
    }

    if (IsMemAccess(insn) && analysis.mem[pc].visited &&
        analysis.mem[pc].region == MemRegion::kHeap) {
      const MemAccessInfo& info = analysis.mem[pc];
      bool pure_load = insn.IsLoad();
      bool unsafe_site = info.formation || info.needs_guard || !options.elide_guards;
      bool guard = options.sfi && unsafe_site && !(options.performance_mode && pure_load);
      bool translate = options.translate_on_store && insn.Class() == BPF_STX &&
                       !insn.IsAtomic() && insn.AccessSize() == 8 && info.stores_heap_ptr &&
                       !info.stores_mixed;
      // A dominated site (opt.h): RAX still holds sanitize(base) from an
      // earlier guard on every path here, so the MOV+SANITIZE pair is
      // skipped and the access goes through RAX directly. Formation guards
      // are never in the plan (§5.4), but keep the belt-and-suspenders check.
      bool dominated = use_plan && plan->dominated[pc] && guard && !info.formation;

      // Table 3 accounting: guards on pointer manipulation vs. guards forming
      // a new heap pointer (the latter are never elidable).
      if (info.formation) {
        out.stats.formation_guards++;
      } else {
        out.stats.pointer_guard_sites++;
        if (dominated) {
          out.stats.guards_dominated++;
        } else if (guard) {
          out.stats.guards_emitted++;
        } else if (options.sfi && !info.needs_guard) {
          out.stats.guards_elided++;
        }
      }

      Reg base = static_cast<Reg>(pure_load ? insn.src : insn.dst);
      if (dominated) {
        Insn anchored = insn;
        if (pure_load) {
          anchored.src = RAX;
        } else {
          anchored.dst = RAX;
        }
        r.insns.push_back(anchored);
      } else if (guard && translate) {
        out.stats.translations++;
        r.insns.push_back(MovRegInsn(RAX, static_cast<Reg>(insn.src)));
        r.insns.push_back(KieTranslateInsn(RAX));
        r.insns.push_back(MovRegInsn(RBX, base));
        r.insns.push_back(KieSanitizeInsn(RBX));
        Insn anchored = insn;
        anchored.dst = RBX;
        anchored.src = RAX;
        r.anchor = r.insns.size();
        r.insns.push_back(anchored);
      } else if (guard) {
        r.insns.push_back(MovRegInsn(RAX, base));
        r.insns.push_back(KieSanitizeInsn(RAX));
        Insn anchored = insn;
        if (pure_load) {
          anchored.src = RAX;
        } else {
          anchored.dst = RAX;
        }
        r.anchor = r.insns.size();
        r.insns.push_back(anchored);
      } else if (translate) {
        out.stats.translations++;
        r.insns.push_back(MovRegInsn(RAX, static_cast<Reg>(insn.src)));
        r.insns.push_back(KieTranslateInsn(RAX));
        Insn anchored = insn;
        anchored.src = RAX;
        r.anchor = r.insns.size();
        r.insns.push_back(anchored);
      } else {
        r.insns.push_back(insn);
      }
      continue;
    }

    if (options.cancellation && analysis.cancellation_back_edges.count(pc) != 0) {
      out.stats.cancellation_points++;
      if (options.cancellation_mode == CancellationMode::kClockSampled) {
        // §6 alternative: one clock-sample check per back edge.
        r.terminate_load = static_cast<int>(r.insns.size());
        r.insns.push_back(KieFuelCheckInsn());
      } else {
        // C1 cancellation point: load through the terminate slot before
        // taking the back edge. The slot holds a valid heap address; the
        // runtime zeroes it to make the second load fault (§3.3).
        r.insns.push_back(LdImm64Insn(RAX, terminate_slot_va));
        r.insns.push_back(LdImm64HiInsn(terminate_slot_va));
        r.insns.push_back(LdxInsn(BPF_DW, RAX, RAX, 0));
        r.terminate_load = static_cast<int>(r.insns.size());
        r.insns.push_back(LdxInsn(BPF_DW, RAX, RAX, 0));
      }
      r.anchor = r.insns.size();
      r.insns.push_back(insn);
      continue;
    }

    r.insns.push_back(insn);
  }

  // Layout pass: original pc -> new start pc.
  std::vector<size_t> new_start(program.insns.size() + 1, 0);
  size_t cursor = 0;
  for (size_t pc = 0; pc < program.insns.size(); pc++) {
    new_start[pc] = cursor;
    cursor += repl[pc].insns.size();
  }
  new_start[program.insns.size()] = cursor;

  // Emission + jump retargeting.
  out.program.name = program.name;
  out.program.hook = program.hook;
  out.program.mode = program.mode;
  out.program.heap_size = program.heap_size;
  out.program.insns.reserve(cursor);
  out.instrumentation_mask.assign(cursor, 0);
  out.region_hints.assign(cursor, 0);
  out.pc_map.resize(program.insns.size(), 0);

  for (size_t pc = 0; pc < program.insns.size(); pc++) {
    const Replacement& r = repl[pc];
    if (r.skip) {
      continue;
    }
    size_t anchor_new = new_start[pc] + r.anchor;
    out.pc_map[pc] = anchor_new;
    // Everything Kie inserts precedes the original (anchor) instruction.
    for (size_t i = 0; i < r.anchor; i++) {
      out.instrumentation_mask[new_start[pc] + i] = 1;
    }
    for (size_t i = 0; i < r.insns.size(); i++) {
      Insn insn = r.insns[i];
      if (i == r.anchor && insn.IsJmp() && !insn.IsCall() && !insn.IsExit()) {
        int64_t old_target = static_cast<int64_t>(pc) + 1 + insn.off;
        int64_t rel =
            static_cast<int64_t>(new_start[static_cast<size_t>(old_target)]) -
            (static_cast<int64_t>(anchor_new) + 1);
        if (rel < std::numeric_limits<int16_t>::min() ||
            rel > std::numeric_limits<int16_t>::max()) {
          return OutOfRange("instrumentation overflows a jump offset");
        }
        insn.off = static_cast<int16_t>(rel);
      }
      out.program.insns.push_back(insn);
    }
    if (r.terminate_load >= 0) {
      size_t tl = new_start[pc] + static_cast<size_t>(r.terminate_load);
      out.terminate_load_pcs.insert(tl);
      if (options.cancellation_mode == CancellationMode::kTerminateLoad) {
        // The C1 pair (slot load + Cp deref) reads heap VAs; hint both so
        // the JIT compiles its heap fast path for them.
        out.region_hints[tl] = static_cast<uint8_t>(MemRegion::kHeap);
        if (tl > 0) {
          out.region_hints[tl - 1] = static_cast<uint8_t>(MemRegion::kHeap);
        }
      }
    }
    if (!r.insns.empty() && IsMemAccess(r.insns[r.anchor]) &&
        pc < analysis.mem.size() && analysis.mem[pc].visited) {
      out.region_hints[anchor_new] =
          static_cast<uint8_t>(analysis.mem[pc].region);
    }
  }
  out.stats.insns_out = out.program.insns.size();

  // Remap object tables to instrumented pcs. For C1 back edges the table
  // attaches to the terminate load (where the fault surfaces); for C2 heap
  // accesses it attaches to the (possibly rewritten) access itself.
  for (const auto& [old_pc, table] : analysis.object_tables) {
    size_t new_pc;
    if (analysis.cancellation_back_edges.count(old_pc) != 0) {
      if (!options.cancellation) {
        continue;
      }
      new_pc = new_start[old_pc] + static_cast<size_t>(repl[old_pc].terminate_load);
    } else {
      new_pc = out.pc_map[old_pc];
    }
    out.object_tables[new_pc] = table;
  }

  out.stats.pruned_back_edges = analysis.pruned_back_edges;
  out.stats.pruned_object_entries = analysis.pruned_object_entries;
  if (plan != nullptr) {
    out.stats.const_branches_folded = plan->stats.const_branches_folded;
    out.stats.dead_stores_removed = plan->stats.dead_stores_removed;
  }
  for (const auto& [pc, table] : out.object_tables) {
    out.stats.object_table_entries += table.size();
  }

  KFLEX_TRACE(ObsEvent::kKieInstrument, out.stats.guards_emitted,
              out.stats.guards_elided + out.stats.guards_dominated);
  return out;
}

}  // namespace kflex
