// Kie — the KFlex instrumentation engine (§3, Figure 1).
//
// Kie consumes verified bytecode plus the verifier's analysis and emits
// instrumented bytecode that the runtime can execute safely:
//
//  * SFI guards: every heap access whose bounds the verifier could not prove
//    is rewritten to go through a sanitized address (mask + heap base). The
//    verifier's range analysis elides guards for provably-safe accesses
//    (§3.2); guards that form a new heap pointer from an untrusted scalar
//    are never elided (§5.4).
//  * Cancellation points: loop back edges with unprovable termination get a
//    *terminate heap load; the runtime zeroes the terminate slot to force a
//    fault at the Cp and then releases held kernel resources using the
//    statically computed object tables (§3.3).
//  * Translate-on-store: stores of heap pointers are rewritten to store the
//    user-space alias so applications sharing the heap can follow them
//    (§3.4).
//
// Heap-variable LD_IMM64 pseudo instructions are concretized to absolute
// simulated VAs here, mirroring how the real KFlex bakes the mapping base
// into JITed code (§4.1).
#ifndef SRC_KIE_KIE_H_
#define SRC_KIE_KIE_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"
#include "src/runtime/layout.h"
#include "src/verifier/analysis.h"
#include "src/verifier/concurrency.h"
#include "src/verifier/opt.h"

namespace kflex {

// The instrumentation pseudo-instructions (SANITIZE/TRANSLATE/FUELCHECK) are
// understood only by the KFlex-extended VM ("we augment the eBPF JIT to
// ensure that the added instrumentation is correctly compiled", §3). Their
// encodings and constructors live in src/ebpf/insn.h so the disassembler can
// print them by name. On real hardware SANITIZE compiles to a single AND
// plus indexed addressing with the base held in a reserved register (§4.2);
// FUELCHECK models the clock-sampling back-edge checks the paper proposes
// for sub-second stall recovery (§6) and compiles to a TSC read + compare.

// How C1 cancellation points are realized (§3.3 vs §6).
enum class CancellationMode {
  // The paper's default: a *terminate heap load the runtime poisons.
  kTerminateLoad,
  // Future-work alternative: sample a clock (here: the instruction counter)
  // at back edges and trap past the quantum. Recovers without a watchdog.
  kClockSampled,
};

struct KieOptions {
  // Emit SFI guards at all (false = "KMod" unsafe baseline: trusted native
  // kernel-module code with zero runtime checks).
  bool sfi = true;
  // Performance mode (§3.2/§4.2): reads are not sanitized; unmapped reads
  // trap (SMAP analogue) and cancel the extension. Stores remain sanitized.
  bool performance_mode = false;
  // Honor verifier elision. Disabling this guards *every* heap access — the
  // "no co-design" ablation quantifying §5.4.
  bool elide_guards = true;
  // Insert cancellation points at unbounded-loop back edges.
  bool cancellation = true;
  CancellationMode cancellation_mode = CancellationMode::kTerminateLoad;
  // Translate heap pointers to user-space aliases when stored (§3.4).
  // Developers may disable this on performance-critical paths.
  bool translate_on_store = false;
};

struct KieStats {
  // Static counts over instruction sites (Table 3 accounting).
  size_t pointer_guard_sites = 0;  // heap accesses via typed heap pointers
  size_t guards_elided = 0;        // of those, elided by range analysis
  size_t guards_emitted = 0;       // of those, materialized as SANITIZE
  size_t formation_guards = 0;     // untrusted-scalar guards (never elided)
  // Optimizer (opt.h) contributions, present when a GuardPlan was consumed:
  // guard sites whose SANITIZE is covered by a dominating guard (the access
  // is rewritten through the still-sanitized scratch register instead), plus
  // the SCCP/DSE static counts copied from the plan.
  size_t guards_dominated = 0;
  size_t const_branches_folded = 0;
  size_t dead_stores_removed = 0;
  size_t translations = 0;
  size_t cancellation_points = 0;  // C1 back-edge Cps inserted
  size_t insns_in = 0;
  size_t insns_out = 0;
  // CFG/liveness refinements reported by the verifier (analysis.h): back
  // edges the natural-loop scoping proved need no Cp, and object-table
  // entries liveness redirected away from dead handle locations.
  size_t pruned_back_edges = 0;
  size_t pruned_object_entries = 0;
  // Total object-table entries across all Cps of the instrumented program.
  size_t object_table_entries = 0;
};

struct InstrumentedProgram {
  Program program;
  // Per-instrumented-pc flag: true for instructions Kie inserted (guards,
  // translations, terminate loads). The VM counts them separately so cost
  // models can weight instrumentation work below ordinary instructions
  // (hardware hides most of a guard's AND behind out-of-order execution).
  std::vector<uint8_t> instrumentation_mask;
  // Object tables keyed by *instrumented* pc of each cancellation point
  // (both C1 terminate loads and C2 heap accesses). The runtime consults the
  // faulting pc's table to release held kernel resources.
  std::map<size_t, std::set<ObjectTableEntry>> object_tables;
  // Instrumented pcs of C1 terminate loads (for tests/diagnostics).
  std::set<size_t> terminate_load_pcs;
  // Mapping from original pc to instrumented anchor pc.
  std::vector<size_t> pc_map;
  // Per-instrumented-pc memory-region hint (verifier MemRegion as uint8_t,
  // 0 = none/unknown) for memory-access instructions: the verified region of
  // the rewritten access, plus kHeap for the C1 terminate-load pair. The JIT
  // backend selects its inline fast path from these; a wrong or missing hint
  // only costs speed (the inline check fails into the slow path), never
  // safety.
  std::vector<uint8_t> region_hints;
  KieStats stats;
  HeapLayout heap;
  // Shard-safety certificate (concurrency.h), filled in by Runtime::Load
  // from the verified program: the load-time gate the sharded dispatcher
  // (ROADMAP item 1) consults before running invocations concurrently.
  ConcurrencyReport concurrency;
};

// Instruments `program` using the verifier's `analysis`. `heap` must describe
// the already-created extension heap (empty layout allowed iff the program
// declares no heap).
//
// `plan`, when non-null, is the optimizer's output for this exact
// program/analysis pair (pass the three members of one OptResult together):
// instructions the plan marks removed are dropped during relayout, and —
// when the option combination matches the availability model the optimizer
// assumed (sfi + elide_guards, no performance mode, no translate-on-store) —
// dominated guard sites skip their MOV+SANITIZE and access the heap through
// the scratch register still holding the dominating guard's result.
StatusOr<InstrumentedProgram> Instrument(const Program& program, const Analysis& analysis,
                                         const HeapLayout& heap, const KieOptions& options,
                                         const GuardPlan* plan = nullptr);

}  // namespace kflex

#endif  // SRC_KIE_KIE_H_
