#include "src/runtime/maps.h"

#include <cstring>

#include "src/fault/fault.h"

namespace kflex {

namespace {

uint64_t HashKey(const uint8_t* key, uint32_t len) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (uint32_t i = 0; i < len; i++) {
    h ^= key[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

// ---- ArrayMap ----------------------------------------------------------------

ArrayMap::ArrayMap(MapDescriptor desc, uint64_t handle_va)
    : Map(desc, handle_va), values_(desc.max_entries * desc.value_size, 0) {}

uint64_t ArrayMap::Lookup(const uint8_t* key) {
  uint32_t idx;
  std::memcpy(&idx, key, sizeof(idx));
  if (idx >= desc_.max_entries) {
    return 0;
  }
  return value_area_va() + static_cast<uint64_t>(idx) * desc_.value_size;
}

int ArrayMap::Update(const uint8_t* key, const uint8_t* value) {
  // Injected update failure: -ENOMEM, as if the kernel could not allocate
  // the element (the real bpf_map_update_elem contract).
  if (KFLEX_FAULT_FIRE("map.update")) {
    return -12;  // -ENOMEM
  }
  uint32_t idx;
  std::memcpy(&idx, key, sizeof(idx));
  if (idx >= desc_.max_entries) {
    return -1;
  }
  std::memcpy(values_.data() + static_cast<uint64_t>(idx) * desc_.value_size, value,
              desc_.value_size);
  return 0;
}

int ArrayMap::Delete(const uint8_t* key) {
  return -1;  // Array elements cannot be deleted (eBPF semantics).
}

uint8_t* ArrayMap::TranslateValue(uint64_t va, uint64_t size) {
  uint64_t base = value_area_va();
  uint64_t total = static_cast<uint64_t>(desc_.max_entries) * desc_.value_size;
  if (va < base || va + size > base + total) {
    return nullptr;
  }
  return values_.data() + (va - base);
}

bool ArrayMap::ValueWindow(VaWindow* out) {
  out->start = value_area_va();
  out->end = out->start + values_.size();
  out->host = values_.data();
  return true;
}

// ---- BpfHashMap --------------------------------------------------------------

BpfHashMap::BpfHashMap(MapDescriptor desc, uint64_t handle_va)
    : Map(desc, handle_va),
      slots_(desc.max_entries * 2),
      values_(desc.max_entries * 2 * desc.value_size, 0),
      capacity_(desc.max_entries * 2) {}

size_t BpfHashMap::FindSlot(const uint8_t* key, bool for_insert, bool& found) {
  uint64_t h = HashKey(key, desc_.key_size);
  size_t first_free = capacity_;
  for (size_t probe = 0; probe < capacity_; probe++) {
    size_t idx = (h + probe) % capacity_;
    Slot& slot = slots_[idx];
    if (!slot.used) {
      if (first_free == capacity_) {
        first_free = idx;
      }
      if (slot.key.empty()) {
        break;  // Never-used slot terminates the probe chain.
      }
      continue;  // Tombstone: keep probing.
    }
    if (std::memcmp(slot.key.data(), key, desc_.key_size) == 0) {
      found = true;
      return idx;
    }
  }
  found = false;
  return for_insert ? first_free : capacity_;
}

uint64_t BpfHashMap::Lookup(const uint8_t* key) {
  std::lock_guard<std::mutex> lock(mu_);
  bool found = false;
  size_t idx = FindSlot(key, /*for_insert=*/false, found);
  if (!found) {
    return 0;
  }
  return value_area_va() + idx * desc_.value_size;
}

int BpfHashMap::Update(const uint8_t* key, const uint8_t* value) {
  if (KFLEX_FAULT_FIRE("map.update")) {
    return -12;  // -ENOMEM
  }
  std::lock_guard<std::mutex> lock(mu_);
  bool found = false;
  size_t idx = FindSlot(key, /*for_insert=*/true, found);
  if (idx >= capacity_) {
    return -1;
  }
  if (!found) {
    if (size_ >= desc_.max_entries) {
      return -1;
    }
    slots_[idx].used = true;
    slots_[idx].key.assign(key, key + desc_.key_size);
    size_++;
  }
  std::memcpy(values_.data() + idx * desc_.value_size, value, desc_.value_size);
  return 0;
}

int BpfHashMap::Delete(const uint8_t* key) {
  std::lock_guard<std::mutex> lock(mu_);
  bool found = false;
  size_t idx = FindSlot(key, /*for_insert=*/false, found);
  if (!found) {
    return -1;
  }
  slots_[idx].used = false;  // Tombstone (key kept non-empty).
  size_--;
  return 0;
}

uint8_t* BpfHashMap::TranslateValue(uint64_t va, uint64_t size) {
  uint64_t base = value_area_va();
  if (va < base || va + size > base + values_.size()) {
    return nullptr;
  }
  return values_.data() + (va - base);
}

bool BpfHashMap::ValueWindow(VaWindow* out) {
  out->start = value_area_va();
  out->end = out->start + values_.size();
  out->host = values_.data();
  return true;
}

// ---- RingBufMap --------------------------------------------------------------

RingBufMap::RingBufMap(MapDescriptor desc, uint64_t handle_va)
    : Map(desc, handle_va), capacity_(desc.max_entries) {}

int RingBufMap::Output(const uint8_t* data, uint32_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  // Account the record header the kernel would add (8 bytes, 8-aligned).
  uint64_t footprint = 8 + ((size + 7) & ~7u);
  if (bytes_used_ + footprint > capacity_) {
    dropped_++;
    return -1;
  }
  records_.emplace_back(data, data + size);
  bytes_used_ += footprint;
  return 0;
}

size_t RingBufMap::Drain(const std::function<void(const uint8_t*, uint32_t)>& fn) {
  std::deque<std::vector<uint8_t>> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    taken.swap(records_);
    bytes_used_ = 0;
  }
  for (const auto& record : taken) {
    fn(record.data(), static_cast<uint32_t>(record.size()));
  }
  return taken.size();
}

size_t RingBufMap::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t RingBufMap::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// ---- MapRegistry -------------------------------------------------------------

StatusOr<MapDescriptor> MapRegistry::CreateArray(uint32_t key_size, uint32_t value_size,
                                                 uint64_t max_entries) {
  if (key_size != 4 || value_size == 0 || max_entries == 0) {
    return InvalidArgument("array map requires u32 keys and nonzero value size/entries");
  }
  std::lock_guard<std::mutex> lock(mu_);
  MapDescriptor desc{static_cast<uint32_t>(maps_.size() + 1), key_size, value_size,
                     max_entries, MapType::kArray};
  maps_.push_back(std::make_unique<ArrayMap>(desc, HandleVaForId(desc.id)));
  RebuildWindows();
  return desc;
}

StatusOr<MapDescriptor> MapRegistry::CreateHash(uint32_t key_size, uint32_t value_size,
                                                uint64_t max_entries) {
  if (key_size == 0 || value_size == 0 || max_entries == 0) {
    return InvalidArgument("hash map requires nonzero key/value size and entries");
  }
  std::lock_guard<std::mutex> lock(mu_);
  MapDescriptor desc{static_cast<uint32_t>(maps_.size() + 1), key_size, value_size,
                     max_entries, MapType::kHash};
  maps_.push_back(std::make_unique<BpfHashMap>(desc, HandleVaForId(desc.id)));
  RebuildWindows();
  return desc;
}

StatusOr<PartitionedMapDesc> MapRegistry::CreateHashPartitions(
    uint32_t key_size, uint32_t value_size, uint64_t max_entries, int partitions,
    MapPartitionMode mode) {
  if (partitions <= 0) {
    return InvalidArgument("partition count must be positive");
  }
  PartitionedMapDesc out;
  out.mode = mode;
  if (mode == MapPartitionMode::kShared) {
    auto desc = CreateHash(key_size, value_size, max_entries);
    if (!desc.ok()) {
      return desc.status();
    }
    out.parts.push_back(*desc);
    return out;
  }
  // Split capacity evenly, rounding up so the partitioned aggregate never
  // holds fewer entries than the shared map it replaces.
  uint64_t per_part = (max_entries + partitions - 1) / partitions;
  out.parts.reserve(partitions);
  for (int i = 0; i < partitions; i++) {
    auto desc = CreateHash(key_size, value_size, per_part);
    if (!desc.ok()) {
      return desc.status();
    }
    out.parts.push_back(*desc);
  }
  return out;
}

StatusOr<MapDescriptor> MapRegistry::CreateRingBuf(uint64_t capacity_bytes) {
  if (capacity_bytes < 64 || capacity_bytes > (1ULL << 30)) {
    return InvalidArgument("ring buffer capacity out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  MapDescriptor desc{static_cast<uint32_t>(maps_.size() + 1), 0, 0, capacity_bytes,
                     MapType::kRingBuf};
  maps_.push_back(std::make_unique<RingBufMap>(desc, HandleVaForId(desc.id)));
  RebuildWindows();
  return desc;
}

Map* MapRegistry::Find(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > maps_.size()) {
    return nullptr;
  }
  return maps_[id - 1].get();
}

Map* MapRegistry::FindByVa(uint64_t va) {
  if (va < kMapRegion) {
    return nullptr;
  }
  uint32_t id = static_cast<uint32_t>((va - kMapRegion) >> 32);
  return Find(id);
}

std::shared_ptr<const std::vector<VaWindow>> MapRegistry::ValueWindows() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (windows_ == nullptr) {
    return std::make_shared<const std::vector<VaWindow>>();
  }
  return windows_;
}

void MapRegistry::RebuildWindows() {
  auto next = std::make_shared<std::vector<VaWindow>>();
  next->reserve(maps_.size());
  for (const auto& map : maps_) {
    VaWindow w;
    if (map->ValueWindow(&w)) {
      next->push_back(w);
    }
  }
  // Map ids (and thus value-area VAs) are assigned in ascending order, so
  // the snapshot is already sorted by start.
  windows_ = std::move(next);
}

std::vector<MapDescriptor> MapRegistry::Descriptors() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MapDescriptor> out;
  out.reserve(maps_.size());
  for (const auto& map : maps_) {
    out.push_back(map->desc());
  }
  return out;
}

}  // namespace kflex
