#include "src/runtime/object_registry.h"

namespace kflex {

uint64_t ObjectRegistry::Register(ResourceKind kind, std::function<void()> release) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = entries_.size();
    entries_.emplace_back();
  }
  Entry& entry = entries_[slot];
  entry.kind = kind;
  entry.generation++;
  entry.live = true;
  entry.release = std::move(release);
  live_++;
  return kKernelObjRegion + slot * kSlotStride +
         static_cast<uint64_t>(entry.generation & 0x1F) * 8;
}

bool ObjectRegistry::Decode(uint64_t handle, size_t& slot, uint32_t& gen_low) const {
  if (handle < kKernelObjRegion) {
    return false;
  }
  uint64_t off = handle - kKernelObjRegion;
  slot = off / kSlotStride;
  gen_low = static_cast<uint32_t>((off % kSlotStride) / 8);
  return slot < entries_.size();
}

bool ObjectRegistry::Release(uint64_t handle) {
  std::function<void()> release;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t slot;
    uint32_t gen_low;
    if (!Decode(handle, slot, gen_low)) {
      return false;
    }
    Entry& entry = entries_[slot];
    if (!entry.live || (entry.generation & 0x1F) != gen_low) {
      return false;
    }
    entry.live = false;
    release = std::move(entry.release);
    entry.release = nullptr;
    free_slots_.push_back(slot);
    live_--;
  }
  if (release) {
    release();
  }
  return true;
}

bool ObjectRegistry::IsLive(uint64_t handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t slot;
  uint32_t gen_low;
  if (!Decode(handle, slot, gen_low)) {
    return false;
  }
  const Entry& entry = entries_[slot];
  return entry.live && (entry.generation & 0x1F) == gen_low;
}

ResourceKind ObjectRegistry::KindOf(uint64_t handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t slot;
  uint32_t gen_low;
  if (!Decode(handle, slot, gen_low)) {
    return ResourceKind::kNone;
  }
  const Entry& entry = entries_[slot];
  if (!entry.live || (entry.generation & 0x1F) != gen_low) {
    return ResourceKind::kNone;
  }
  return entry.kind;
}

size_t ObjectRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

}  // namespace kflex
