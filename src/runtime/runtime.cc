#include "src/runtime/runtime.h"

#include <chrono>
#include <cstring>

#include "src/base/logging.h"
#include "src/fault/fault.h"
#include "src/jit/trampoline.h"
#include "src/runtime/helpers.h"
#include "src/runtime/spinlock.h"

namespace kflex {

std::string InvariantReport::ToString() const {
  if (violations.empty()) {
    return "ok";
  }
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) {
      out += '\n';
    }
    out += v;
  }
  return out;
}

Runtime::Runtime(const RuntimeOptions& options) : options_(options) {
  KFLEX_CHECK(options_.num_cpus > 0);
  RegisterCoreHelpers(helpers_);
  for (const std::string& spec : options_.fault_specs) {
    Status st = FaultRegistry::Instance().ArmSpec(spec);
    if (!st.ok()) {
      // Fault specs are a test/chaos knob, not production input: fail loudly.
      KFLEX_LOG(Error) << "bad fault spec \"" << spec << "\": " << st.message();
      KFLEX_CHECK(st.ok());
    }
  }
}

Runtime::~Runtime() { StopWatchdog(); }

Runtime::Extension* Runtime::Get(ExtensionId id) {
  std::shared_ptr<const std::vector<Extension*>> index =
      index_.load(std::memory_order_acquire);
  if (index == nullptr || id == 0 || id > index->size()) {
    return nullptr;
  }
  return (*index)[id - 1];
}

const Runtime::Extension* Runtime::Get(ExtensionId id) const {
  std::shared_ptr<const std::vector<Extension*>> index =
      index_.load(std::memory_order_acquire);
  if (index == nullptr || id == 0 || id > index->size()) {
    return nullptr;
  }
  return (*index)[id - 1];
}

StatusOr<ExtensionId> Runtime::Load(const Program& program, const LoadOptions& options) {
  // Observability identity is resolved up front (process-global: ExtensionIds
  // restart at 1 per Runtime and would collide across instances), and the
  // whole pipeline runs under its attribution scope so load-time events
  // (verifier decisions, Kie stats, page-ins, JIT compiles) carry it.
  uint32_t obs_id =
      Obs::Instance().RegisterExtension(program.name.empty() ? "extension" : program.name);
  ObsInvokeScope obs_scope(obs_id, kObsNoCpu);

  // Step 1 (Figure 1): kernel-interface compliance via the verifier.
  VerifyOptions vo = options.verify;
  vo.maps = maps_.Descriptors();
  StatusOr<Analysis> analysis = Verify(program, vo);
  if (!analysis.ok()) {
    return analysis.status();
  }

  auto ext = std::make_unique<Extension>();
  ext->analysis = std::move(analysis.value());

  // Create the extension heap before instrumentation so Kie can concretize
  // the mapping bases into the code (§4.1).
  HeapLayout layout;
  if (program.heap_size != 0) {
    if (options.share_heap_with != 0) {
      Extension* owner = Get(options.share_heap_with);
      if (owner == nullptr || owner->heap == nullptr) {
        return InvalidArgument("share_heap_with refers to an extension without a heap");
      }
      if (owner->heap->size() != program.heap_size) {
        return InvalidArgument("shared heap size does not match program declaration");
      }
      ext->heap = owner->heap;
      ext->allocator = owner->allocator;
    } else {
      HeapSpec spec;
      spec.size = program.heap_size;
      spec.static_bytes = options.heap_static_bytes;
      StatusOr<std::unique_ptr<ExtensionHeap>> heap = ExtensionHeap::Create(spec);
      if (!heap.ok()) {
        return heap.status();
      }
      ext->heap = std::move(heap.value());
      ext->allocator = std::make_shared<HeapAllocator>(ext->heap.get(), options_.num_cpus);
    }
    layout = ext->heap->layout();
  }

  // Step 1.5: bytecode optimizer (SCCP + dominated guards + DSE). The
  // optimized program keeps the verified program's pc layout, so the
  // (cleaned) analysis stays aligned for Kie.
  const Program* to_instrument = &program;
  const GuardPlan* plan = nullptr;
  OptResult opt;
  if (options.optimize) {
    StatusOr<OptResult> optimized = Optimize(program, ext->analysis);
    if (!optimized.ok()) {
      return optimized.status();
    }
    opt = std::move(optimized.value());
    ext->analysis = opt.analysis;
    to_instrument = &opt.program;
    plan = &opt.plan;
  }

  // Step 2 (Figure 1): Kie instrumentation.
  StatusOr<InstrumentedProgram> iprog =
      Instrument(*to_instrument, ext->analysis, layout, options.kie, plan);
  if (!iprog.ok()) {
    return iprog.status();
  }
  ext->iprog = std::move(iprog.value());

  // Step 2.5: shard-safety certificate (concurrency.h), computed over the
  // same verified (and possibly optimized) program the analysis describes.
  // The certificate is the load-time gate the sharded dispatcher (ROADMAP
  // item 1) consults; its lock-order edges also feed the cross-extension
  // deadlock audit (LockOrderAudit) and the trace stream.
  ext->iprog.concurrency = AnalyzeConcurrency(*to_instrument, &ext->analysis);
  for (const LockOrderEdge& edge : ext->iprog.concurrency.edges) {
    KFLEX_TRACE(ObsEvent::kLockOrderEdge, edge.from, edge.to);
  }

  // Step 3: native compilation, if requested. Fallback is silent at load
  // time (recorded in engine_info): the interpreter runs the identical
  // instrumented stream, so the choice is purely an execution-speed one.
  ext->engine_requested = options.engine;
  if (options.engine == ExecEngine::kJit) {
    JitCompileResult jit = JitCompile(ext->iprog, options.jit);
    if (jit.program != nullptr) {
      ext->jit = std::move(jit.program);
    } else {
      ext->jit_fallback = std::move(jit.fallback_reason);
    }
  }

  for (int i = 0; i < options_.num_cpus; i++) {
    ext->running_since.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }

  ext->obs_id = obs_id;
  ext->obs_metrics = Obs::Instance().Metrics(obs_id);
  KFLEX_TRACE(ObsEvent::kRuntimeLoad, obs_id, ext->iprog.program.insns.size());

  // The allocator arena count is the Invoke-side bound for `cpu`; a shared
  // allocator always comes from this runtime, so the counts must agree.
  KFLEX_CHECK(ext->allocator == nullptr ||
              ext->allocator->num_cpu_slots() == options_.num_cpus);

  std::lock_guard<std::mutex> lock(mu_);
  extensions_.push_back(std::move(ext));
  auto index = std::make_shared<std::vector<Extension*>>();
  index->reserve(extensions_.size());
  for (const auto& e : extensions_) {
    index->push_back(e.get());
  }
  index_.store(std::move(index), std::memory_order_release);
  return static_cast<ExtensionId>(extensions_.size());
}

int64_t Runtime::Unwind(Extension& ext, VmEnv& env, size_t fault_pc) {
  // Release every kernel-owned resource recorded in the object table of the
  // faulting cancellation point (§3.3).
  uint64_t released = 0;
  auto it = ext.iprog.object_tables.find(fault_pc);
  if (it != ext.iprog.object_tables.end()) {
    for (const ObjectTableEntry& entry : it->second) {
      switch (entry.kind) {
        case ResourceKind::kSocket: {
          uint64_t handle = 0;
          if (entry.reg >= 0) {
            handle = env.regs[entry.reg];
          } else if (entry.stack_slot >= 0) {
            std::memcpy(&handle, env.stack + entry.stack_slot * 8, 8);
          }
          if (objects_.Release(handle)) {
            released++;
          }
          break;
        }
        case ResourceKind::kLock:
          if (ext.heap != nullptr) {
            SpinLockOps::Release(ext.heap->HostAt(entry.lock_off));
            released++;
          }
          break;
        case ResourceKind::kNone:
          break;
      }
    }
  }
  KFLEX_TRACE(ObsEvent::kCancelUnwound, fault_pc, released);
  KFLEX_OBS_COUNT(kCancellations);
  // Policy (§4.3): cancellation unloads the extension everywhere, but the
  // heap is preserved for the user-space application.
  ext.unloaded.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(ext.stats_mu);
    ext.stats.cancellations++;
    ext.stats.resources_released_on_cancel += released;
  }
  int64_t verdict = HookDefaultVerdict(ext.iprog.program.hook);
  if (ext.cancel_cb) {
    verdict = ext.cancel_cb(verdict);
  }
  return verdict;
}

InvokeResult Runtime::Invoke(ExtensionId id, int cpu, uint8_t* ctx, uint32_t ctx_size) {
  return Invoke(id, cpu, ctx, ctx_size, nullptr);
}

InvokeResult Runtime::Invoke(ExtensionId id, int cpu, uint8_t* ctx, uint32_t ctx_size,
                             std::vector<std::pair<int32_t, uint64_t>>* helper_trace) {
  InvokeResult result;
  Extension* ext = Get(id);
  if (ext == nullptr || ext->unloaded.load(std::memory_order_acquire)) {
    result.attached = false;
    return result;
  }
  // `cpu` picks the per-CPU allocator arena and watchdog slot; shard workers
  // compute it from their shard index, so an out-of-range value is a caller
  // bug, not input to trust. Bound it by the extension allocator's actual
  // slot count when it has one (the Load-time check pinned that to
  // num_cpus), falling back to the runtime option for heap-less extensions.
  const int cpu_slots = ext->allocator != nullptr ? ext->allocator->num_cpu_slots()
                                                  : options_.num_cpus;
  if (cpu < 0 || cpu >= cpu_slots || cpu >= options_.num_cpus) {
    result.attached = false;
    return result;
  }

  VmEnv env;
  env.heap = ext->heap.get();
  env.allocator = ext->allocator.get();
  env.maps = &maps_;
  env.objects = &objects_;
  env.helpers = &helpers_;
  env.ctx = ctx;
  env.ctx_size = ctx_size;
  env.cpu = cpu;
  env.cancel = &ext->cancel;
  env.insn_budget = 0;
  env.fuel_quantum = options_.fuel_quantum_insns;
  env.instrumentation_mask = &ext->iprog.instrumentation_mask;
  env.helper_trace = helper_trace;

  // Observability attribution: one relaxed load decides; when everything is
  // off (the default) the hot path pays that load plus a predictable branch.
  const uint32_t obs_flags = g_obs_flags.load(std::memory_order_relaxed);
  ObsThreadContext obs_saved;
  if (obs_flags != 0) {
    obs_saved = g_obs_tls;
    g_obs_tls = {ext->obs_id, static_cast<uint16_t>(cpu), ext->obs_metrics};
  }

  auto& running = *ext->running_since[static_cast<size_t>(cpu)];
  const uint64_t started = KtimeNowNs();
  running.store(started, std::memory_order_release);
  VmResult vm = ext->jit != nullptr ? JitRun(*ext->jit, env)
                                    : VmRun(ext->iprog.program.insns, env);
  running.store(0, std::memory_order_release);

  if ((obs_flags & kObsMetricsBit) != 0 && ext->obs_metrics != nullptr) {
    ext->obs_metrics->Bump(ObsCounter::kInvocations);
    ext->obs_metrics->RecordInvokeNs(KtimeNowNs() - started);
  }

  result.insns = vm.insns_executed;
  result.instr_insns = vm.instr_insns_executed;
  result.outcome = vm.outcome;
  result.fault_pc = vm.fault_pc;
  result.fault_kind = vm.fault_kind;
  {
    std::lock_guard<std::mutex> lock(ext->stats_mu);
    ext->stats.invocations++;
  }

  struct ObsRestore {
    const uint32_t flags;
    const ObsThreadContext& saved;
    ~ObsRestore() {
      if (flags != 0) {
        g_obs_tls = saved;
      }
    }
  } obs_restore{obs_flags, obs_saved};

  switch (vm.outcome) {
    case VmResult::Outcome::kOk:
      result.verdict = vm.ret;
      return result;
    case VmResult::Outcome::kFault:
    case VmResult::Outcome::kHelperCancel:
    case VmResult::Outcome::kHelperFault:
      result.cancelled = true;
      result.verdict = Unwind(*ext, env, vm.fault_pc);
      return result;
    case VmResult::Outcome::kBudgetExceeded:
      result.cancelled = true;
      result.verdict = Unwind(*ext, env, vm.fault_pc);
      return result;
  }
  return result;
}

void Runtime::Cancel(ExtensionId id) {
  Extension* ext = Get(id);
  if (ext == nullptr) {
    return;
  }
  ext->cancel.store(true, std::memory_order_release);
  KFLEX_TRACE(ObsEvent::kCancelRequested, ext->obs_id, 0);
  if (ext->heap != nullptr) {
    ext->heap->ArmTerminate();
  }
}

void Runtime::Reset(ExtensionId id) {
  Extension* ext = Get(id);
  if (ext == nullptr) {
    return;
  }
  ext->cancel.store(false, std::memory_order_release);
  ext->unloaded.store(false, std::memory_order_release);
  if (ext->heap != nullptr) {
    ext->heap->ResetTerminate();
  }
}

void Runtime::Unload(ExtensionId id) {
  Extension* ext = Get(id);
  if (ext == nullptr) {
    return;
  }
  ext->unloaded.store(true, std::memory_order_release);
  uint64_t cancellations;
  {
    std::lock_guard<std::mutex> lock(ext->stats_mu);
    cancellations = ext->stats.cancellations;
  }
  KFLEX_TRACE(ObsEvent::kRuntimeUnload, ext->obs_id, cancellations);
}

bool Runtime::IsUnloaded(ExtensionId id) const {
  const Extension* ext = Get(id);
  return ext == nullptr || ext->unloaded.load(std::memory_order_acquire);
}

ExtensionHeap* Runtime::heap(ExtensionId id) {
  Extension* ext = Get(id);
  return ext == nullptr ? nullptr : ext->heap.get();
}

HeapAllocator* Runtime::allocator(ExtensionId id) {
  Extension* ext = Get(id);
  return ext == nullptr ? nullptr : ext->allocator.get();
}

const InstrumentedProgram& Runtime::instrumented(ExtensionId id) const {
  const Extension* ext = Get(id);
  KFLEX_CHECK(ext != nullptr);
  return ext->iprog;
}

const Analysis& Runtime::analysis(ExtensionId id) const {
  const Extension* ext = Get(id);
  KFLEX_CHECK(ext != nullptr);
  return ext->analysis;
}

EngineInfo Runtime::engine_info(ExtensionId id) const {
  const Extension* ext = Get(id);
  EngineInfo info;
  if (ext == nullptr) {
    return info;
  }
  info.requested = ext->engine_requested;
  info.used = ext->jit != nullptr ? ExecEngine::kJit : ExecEngine::kInterp;
  info.fallback_reason = ext->jit_fallback;
  if (ext->jit != nullptr) {
    info.stats = ext->jit->stats;
  }
  info.shard_safety = ext->iprog.concurrency.safety;
  return info;
}

std::vector<LockOrderGraph::Cycle> Runtime::LockOrderAudit() const {
  // Lock identities are heap offsets, so two extensions can only contend on
  // the same lock when they share an extension heap (LoadOptions::
  // share_heap_with). Build one acquisition graph per heap from the per-
  // extension certificate edges and collect cycles across all of them.
  std::map<const ExtensionHeap*, LockOrderGraph> graphs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ext : extensions_) {
      if (ext->heap == nullptr || ext->unloaded.load(std::memory_order_acquire)) {
        continue;
      }
      const std::string& name = ext->iprog.program.name.empty()
                                    ? std::string("extension")
                                    : ext->iprog.program.name;
      graphs[ext->heap.get()].AddEdges(name, ext->iprog.concurrency.edges);
    }
  }
  std::vector<LockOrderGraph::Cycle> cycles;
  for (auto& [heap, graph] : graphs) {
    for (LockOrderGraph::Cycle& cycle : graph.FindCycles()) {
      KFLEX_TRACE(ObsEvent::kLockCycle, cycle.edges.size(), cycle.programs.size());
      cycles.push_back(std::move(cycle));
    }
  }
  return cycles;
}

void Runtime::SetCancellationCallback(ExtensionId id, std::function<int64_t(int64_t)> cb) {
  Extension* ext = Get(id);
  if (ext != nullptr) {
    ext->cancel_cb = std::move(cb);
  }
}

InvariantReport Runtime::SweepInvariants(ExtensionId id) const {
  InvariantReport report;
  const Extension* ext = Get(id);
  if (ext == nullptr) {
    report.violations.push_back("unknown extension id");
    return report;
  }

  // 1. No leaked kernel references. The registry is runtime-global, but any
  // live handle after a quiesced invocation (normal exit releases via
  // helpers, cancellation via the object-table unwinder) is a leak.
  size_t live = objects_.live_count();
  if (live != 0) {
    report.violations.push_back("object registry holds " + std::to_string(live) +
                                " live kernel reference(s)");
  }

  // 2. Allocator accounting balances (free-list membership, page/class tags,
  // allocs - frees == carved - cached).
  if (ext->allocator != nullptr) {
    for (std::string& v : ext->allocator->Audit()) {
      report.violations.push_back("allocator: " + std::move(v));
    }
  }

  // 3. Heap reserved metadata / presence bookkeeping intact.
  if (ext->heap != nullptr) {
    for (std::string& v : ext->heap->AuditMetadata()) {
      report.violations.push_back("heap: " + std::move(v));
    }
  }

  // 4. No extension spin lock still held: every lock the verifier tracked
  // into an object table must be free once no invocation is running (normal
  // paths pair acquire/release; cancellation releases via Unwind).
  if (ext->heap != nullptr) {
    for (const auto& [pc, entries] : ext->iprog.object_tables) {
      for (const ObjectTableEntry& entry : entries) {
        if (entry.kind != ResourceKind::kLock) {
          continue;
        }
        if (entry.lock_off + 8 <= ext->heap->size() &&
            SpinLockOps::IsHeld(ext->heap->HostAt(entry.lock_off))) {
          report.violations.push_back("lock at heap offset " +
                                      std::to_string(entry.lock_off) +
                                      " still held (object table pc " +
                                      std::to_string(pc) + ")");
        }
      }
    }
  }

  // 5. Cancelled extensions are quiesced: unloaded => no CPU reports a
  // running invocation.
  if (ext->unloaded.load(std::memory_order_acquire)) {
    for (size_t cpu = 0; cpu < ext->running_since.size(); cpu++) {
      if (ext->running_since[cpu]->load(std::memory_order_acquire) != 0) {
        report.violations.push_back("unloaded extension still running on cpu " +
                                    std::to_string(cpu));
      }
    }
  }
  return report;
}

ObsSnapshot Runtime::SnapshotMetrics() const {
  std::vector<uint32_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(extensions_.size());
    for (const auto& ext : extensions_) {
      ids.push_back(ext->obs_id);
    }
  }
  return Obs::Instance().SnapshotMetrics(ids);
}

uint32_t Runtime::obs_id(ExtensionId id) const {
  const Extension* ext = Get(id);
  return ext == nullptr ? 0 : ext->obs_id;
}

Runtime::ExtensionStats Runtime::GetStats(ExtensionId id) const {
  const Extension* ext = Get(id);
  if (ext == nullptr) {
    return {};
  }
  std::lock_guard<std::mutex> lock(ext->stats_mu);
  return ext->stats;
}

void Runtime::WatchdogLoop() {
  while (watchdog_running_.load(std::memory_order_acquire)) {
    uint64_t now = KtimeNowNs();
    size_t count;
    {
      std::lock_guard<std::mutex> lock(mu_);
      count = extensions_.size();
    }
    for (size_t i = 0; i < count; i++) {
      Extension* ext;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ext = extensions_[i].get();
      }
      for (auto& slot : ext->running_since) {
        uint64_t since = slot->load(std::memory_order_acquire);
        if (since != 0 && now > since && now - since > options_.quantum_ns) {
          KFLEX_TRACE(ObsEvent::kWatchdogFired, ext->obs_id,
                      now - since - options_.quantum_ns);
          if (ObsMetricsEnabled() && ext->obs_metrics != nullptr) {
            ext->obs_metrics->Bump(ObsCounter::kWatchdogFires);
          }
          Cancel(static_cast<ExtensionId>(i + 1));
          break;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(options_.quantum_ns / 4 + 1));
  }
}

void Runtime::StartWatchdog() {
  bool expected = false;
  if (!watchdog_running_.compare_exchange_strong(expected, true)) {
    return;
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void Runtime::StopWatchdog() {
  if (watchdog_running_.exchange(false) && watchdog_.joinable()) {
    watchdog_.join();
  }
}

}  // namespace kflex
