#include "src/runtime/helpers.h"

#include <chrono>

#include "src/base/rng.h"
#include "src/ebpf/helper_ids.h"
#include "src/runtime/allocator.h"
#include "src/runtime/layout.h"
#include "src/runtime/spinlock.h"

namespace kflex {

uint64_t KtimeNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void RegisterCoreHelpers(HelperTable& table) {
  table.Register(kHelperKflexMalloc, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    if (env.allocator == nullptr || env.heap == nullptr) {
      return out;  // NULL: no heap configured.
    }
    uint64_t off = env.allocator->Alloc(env.cpu, args[0]);
    out.ret = off == 0 ? 0 : env.heap->layout().kernel_base + off;
    return out;
  },
                 /*virtual_cost=*/25);

  table.Register(kHelperKflexFree, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    if (env.allocator == nullptr || env.heap == nullptr) {
      return out;
    }
    // The argument may be an untrusted scalar: mask it into the heap, the
    // same sanitization the SFI applies to memory accesses.
    uint64_t off = args[0] & env.heap->layout().mask();
    env.allocator->Free(env.cpu, off);
    return out;
  },
                 /*virtual_cost=*/20);

  table.Register(kHelperKflexSpinLock, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    if (env.heap == nullptr) {
      out.fault = true;
      return out;
    }
    uint64_t off = args[0] & env.heap->layout().mask();
    // Lock words live in the statically populated region; verified constant
    // offsets guarantee this, but check defensively.
    if (!env.heap->PagesPresent(off, 8)) {
      out.fault = true;
      return out;
    }
    if (!SpinLockOps::Acquire(env.heap->HostAt(off), SpinLockOps::kKernelOwner, env.cancel)) {
      // Cancelled while waiting (deadlock / non-cooperative user holder,
      // §3.4): surface as a cancellation at this call site.
      out.cancel = true;
    }
    return out;
  },
                 /*virtual_cost=*/12);

  table.Register(kHelperKflexSpinUnlock, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    if (env.heap == nullptr) {
      out.fault = true;
      return out;
    }
    uint64_t off = args[0] & env.heap->layout().mask();
    SpinLockOps::Release(env.heap->HostAt(off));
    return out;
  },
                 /*virtual_cost=*/8);

  table.Register(kHelperMapLookupElem, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    Map* map = env.maps != nullptr ? env.maps->FindByVa(args[0]) : nullptr;
    if (map == nullptr) {
      out.fault = true;
      return out;
    }
    MemFaultKind fk = MemFaultKind::kNone;
    uint8_t* key = VmTranslate(env, args[1], map->desc().key_size, fk);
    if (key == nullptr) {
      out.fault = true;
      return out;
    }
    out.ret = map->Lookup(key);
    return out;
  },
                 /*virtual_cost=*/60);

  table.Register(kHelperMapUpdateElem, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    Map* map = env.maps != nullptr ? env.maps->FindByVa(args[0]) : nullptr;
    if (map == nullptr) {
      out.fault = true;
      return out;
    }
    MemFaultKind fk = MemFaultKind::kNone;
    uint8_t* key = VmTranslate(env, args[1], map->desc().key_size, fk);
    uint8_t* value = VmTranslate(env, args[2], map->desc().value_size, fk);
    if (key == nullptr || value == nullptr) {
      out.fault = true;
      return out;
    }
    out.ret = static_cast<uint64_t>(static_cast<int64_t>(map->Update(key, value)));
    return out;
  },
                 /*virtual_cost=*/80);

  table.Register(kHelperMapDeleteElem, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    Map* map = env.maps != nullptr ? env.maps->FindByVa(args[0]) : nullptr;
    if (map == nullptr) {
      out.fault = true;
      return out;
    }
    MemFaultKind fk = MemFaultKind::kNone;
    uint8_t* key = VmTranslate(env, args[1], map->desc().key_size, fk);
    if (key == nullptr) {
      out.fault = true;
      return out;
    }
    out.ret = static_cast<uint64_t>(static_cast<int64_t>(map->Delete(key)));
    return out;
  },
                 /*virtual_cost=*/50);

  table.Register(kHelperRingbufOutput, [](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    auto* ringbuf =
        dynamic_cast<RingBufMap*>(env.maps != nullptr ? env.maps->FindByVa(args[0]) : nullptr);
    if (ringbuf == nullptr) {
      out.fault = true;
      return out;
    }
    uint32_t size = static_cast<uint32_t>(args[2]);
    MemFaultKind fk = MemFaultKind::kNone;
    uint8_t* data = VmTranslate(env, args[1], size, fk);
    if (data == nullptr || size == 0) {
      out.fault = true;
      return out;
    }
    out.ret = static_cast<uint64_t>(static_cast<int64_t>(ringbuf->Output(data, size)));
    return out;
  },
                 /*virtual_cost=*/45);

  table.Register(kHelperKtimeGetNs, [](VmEnv& env, const uint64_t args[5]) {
    return HelperOutcome{KtimeNowNs(), false, false};
  },
                 /*virtual_cost=*/4);

  table.Register(kHelperGetPrandomU32, [](VmEnv& env, const uint64_t args[5]) {
    thread_local Rng rng(0x9E3779B97F4A7C15ULL);
    return HelperOutcome{rng.Next() & 0xFFFFFFFFULL, false, false};
  },
                 /*virtual_cost=*/4);

  table.Register(kHelperGetSmpProcessorId, [](VmEnv& env, const uint64_t args[5]) {
    return HelperOutcome{static_cast<uint64_t>(env.cpu), false, false};
  },
                 /*virtual_cost=*/2);
}

}  // namespace kflex
