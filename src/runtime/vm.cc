#include "src/runtime/vm.h"

#include <cstring>

#include "src/ebpf/helper_ids.h"
#include "src/fault/fault.h"
#include "src/kie/kie.h"
#include "src/obs/obs.h"
#include "src/runtime/layout.h"

namespace kflex {

namespace {

// Translates a simulated kernel VA to host memory, or returns nullptr with a
// fault classification.
uint8_t* Translate(VmEnv& env, uint64_t va, uint64_t size, MemFaultKind& fault) {
  // Stack frame of the running invocation.
  if (va >= kStackRegion && va + size <= kStackRegion + kStackSize) {
    return env.stack + (va - kStackRegion);
  }
  // Hook context object.
  if (va >= kCtxRegion && va + size <= kCtxRegion + env.ctx_size) {
    return env.ctx + (va - kCtxRegion);
  }
  // Extension heap (including guard zones and demand-paged pages).
  if (env.heap != nullptr) {
    if (env.heap->ContainsKernelVa(va)) {
      return env.heap->TranslateKernel(va, size, fault);
    }
    if (env.heap->ContainsUserVa(va)) {
      // Unsanitized access reached a user-space address: SMAP trap (§4.2).
      fault = MemFaultKind::kSmap;
      return nullptr;
    }
  }
  // Map value areas: binary search over the flat window snapshot (shared
  // with the JIT); fall back to a registry scan when no snapshot was taken.
  if (va >= kMapRegion && va < kKernelObjRegion &&
      (env.map_windows != nullptr || env.maps != nullptr)) {
    if (env.map_windows != nullptr) {
      const std::vector<VaWindow>& windows = *env.map_windows;
      auto it = std::upper_bound(
          windows.begin(), windows.end(), va,
          [](uint64_t v, const VaWindow& w) { return v < w.start; });
      if (it != windows.begin()) {
        const VaWindow& w = *(it - 1);
        if (va >= w.start && va + size <= w.end) {
          return w.host + (va - w.start);
        }
      }
    } else {
      Map* map = env.maps->FindByVa(va);
      if (map != nullptr) {
        uint8_t* p = map->TranslateValue(va, size);
        if (p != nullptr) {
          return p;
        }
      }
    }
    fault = MemFaultKind::kBadAddress;
    return nullptr;
  }
  fault = MemFaultKind::kBadAddress;
  return nullptr;
}

uint64_t LoadSized(const uint8_t* p, int size) {
  uint64_t v = 0;
  std::memcpy(&v, p, static_cast<size_t>(size));
  return v;
}

void StoreSized(uint8_t* p, int size, uint64_t v) {
  std::memcpy(p, &v, static_cast<size_t>(size));
}

uint64_t AluEval64(uint8_t op, uint64_t a, uint64_t b) {
  switch (op) {
    case BPF_ADD:
      return a + b;
    case BPF_SUB:
      return a - b;
    case BPF_MUL:
      return a * b;
    case BPF_DIV:
      return b == 0 ? 0 : a / b;
    case BPF_MOD:
      return b == 0 ? a : a % b;
    case BPF_OR:
      return a | b;
    case BPF_AND:
      return a & b;
    case BPF_XOR:
      return a ^ b;
    case BPF_LSH:
      return a << (b & 63);
    case BPF_RSH:
      return a >> (b & 63);
    case BPF_ARSH:
      return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
    case BPF_MOV:
      return b;
  }
  return 0;
}

uint32_t AluEval32(uint8_t op, uint32_t a, uint32_t b) {
  switch (op) {
    case BPF_ADD:
      return a + b;
    case BPF_SUB:
      return a - b;
    case BPF_MUL:
      return a * b;
    case BPF_DIV:
      return b == 0 ? 0 : a / b;
    case BPF_MOD:
      return b == 0 ? a : a % b;
    case BPF_OR:
      return a | b;
    case BPF_AND:
      return a & b;
    case BPF_XOR:
      return a ^ b;
    case BPF_LSH:
      return a << (b & 31);
    case BPF_RSH:
      return a >> (b & 31);
    case BPF_ARSH:
      return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
    case BPF_MOV:
      return b;
  }
  return 0;
}

bool JmpEval(uint8_t op, uint64_t a, uint64_t b, bool is64) {
  if (!is64) {
    a = static_cast<uint32_t>(a);
    b = static_cast<uint32_t>(b);
  }
  int64_t sa = is64 ? static_cast<int64_t>(a)
                    : static_cast<int64_t>(static_cast<int32_t>(static_cast<uint32_t>(a)));
  int64_t sb = is64 ? static_cast<int64_t>(b)
                    : static_cast<int64_t>(static_cast<int32_t>(static_cast<uint32_t>(b)));
  switch (op) {
    case BPF_JEQ:
      return a == b;
    case BPF_JNE:
      return a != b;
    case BPF_JGT:
      return a > b;
    case BPF_JGE:
      return a >= b;
    case BPF_JLT:
      return a < b;
    case BPF_JLE:
      return a <= b;
    case BPF_JSET:
      return (a & b) != 0;
    case BPF_JSGT:
      return sa > sb;
    case BPF_JSGE:
      return sa >= sb;
    case BPF_JSLT:
      return sa < sb;
    case BPF_JSLE:
      return sa <= sb;
  }
  return false;
}

}  // namespace

uint8_t* VmTranslate(VmEnv& env, uint64_t va, uint64_t size, MemFaultKind& fault) {
  return Translate(env, va, size, fault);
}

bool VmExecMemInsn(VmEnv& env, const Insn& insn, MemFaultKind& fault,
                   uint64_t& fault_va) {
  uint64_t* regs = env.regs;
  uint8_t cls = insn.Class();
  bool is_load = cls == BPF_LDX;
  uint64_t va = (is_load ? regs[insn.src] : regs[insn.dst]) +
                static_cast<uint64_t>(static_cast<int64_t>(insn.off));
  int size = insn.AccessSize();
  MemFaultKind fk = MemFaultKind::kBadAddress;
  uint8_t* p = Translate(env, va, static_cast<uint64_t>(size), fk);
  if (p == nullptr) {
    fault = fk;
    fault_va = va;
    return false;
  }
  if (is_load) {
    regs[insn.dst] = LoadSized(p, size);
    return true;
  }
  if (insn.IsAtomic()) {
    // 4- or 8-byte atomics on naturally aligned host memory.
    if (insn.imm == BPF_ATOMIC_CMPXCHG) {
      if (size == 8) {
        uint64_t expected = regs[R0];
        __atomic_compare_exchange_n(reinterpret_cast<uint64_t*>(p), &expected,
                                    regs[insn.src], false, __ATOMIC_SEQ_CST,
                                    __ATOMIC_SEQ_CST);
        regs[R0] = expected;
      } else {
        uint32_t expected = static_cast<uint32_t>(regs[R0]);
        __atomic_compare_exchange_n(reinterpret_cast<uint32_t*>(p), &expected,
                                    static_cast<uint32_t>(regs[insn.src]), false,
                                    __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
        regs[R0] = expected;
      }
    } else if (insn.imm == BPF_ATOMIC_XCHG) {
      if (size == 8) {
        regs[insn.src] = __atomic_exchange_n(reinterpret_cast<uint64_t*>(p),
                                             regs[insn.src], __ATOMIC_SEQ_CST);
      } else {
        regs[insn.src] = __atomic_exchange_n(reinterpret_cast<uint32_t*>(p),
                                             static_cast<uint32_t>(regs[insn.src]),
                                             __ATOMIC_SEQ_CST);
      }
    } else {  // ADD / ADD|FETCH
      if (size == 8) {
        uint64_t old = __atomic_fetch_add(reinterpret_cast<uint64_t*>(p),
                                          regs[insn.src], __ATOMIC_SEQ_CST);
        if ((insn.imm & BPF_ATOMIC_FETCH) != 0) {
          regs[insn.src] = old;
        }
      } else {
        uint32_t old = __atomic_fetch_add(reinterpret_cast<uint32_t*>(p),
                                          static_cast<uint32_t>(regs[insn.src]),
                                          __ATOMIC_SEQ_CST);
        if ((insn.imm & BPF_ATOMIC_FETCH) != 0) {
          regs[insn.src] = old;
        }
      }
    }
  } else if (cls == BPF_ST) {
    StoreSized(p, size, static_cast<uint64_t>(static_cast<int64_t>(insn.imm)));
  } else {
    StoreSized(p, size, regs[insn.src]);
  }
  return true;
}

const char* VmOutcomeName(VmResult::Outcome outcome) {
  switch (outcome) {
    case VmResult::Outcome::kOk:
      return "ok";
    case VmResult::Outcome::kFault:
      return "fault";
    case VmResult::Outcome::kHelperCancel:
      return "helper_cancel";
    case VmResult::Outcome::kHelperFault:
      return "helper_fault";
    case VmResult::Outcome::kBudgetExceeded:
      return "budget_exceeded";
  }
  return "?";
}

HelperOutcome VmCallHelper(VmEnv& env, int32_t helper_id, const HelperTable::Entry& entry,
                           const uint64_t args[5]) {
  if (KFLEX_FAULT_FIRE("helper.ret_err")) {
    const HelperContract* contract = FindHelperContract(helper_id);
    // Only fallible helpers are injected: releases must not be skipped (the
    // resource would leak past the cancellation unwinder) and void returns
    // have no error value an extension could observe.
    if (contract != nullptr && contract->releases == ResourceKind::kNone &&
        contract->ret != HelperRetType::kVoid) {
      HelperOutcome out;
      switch (contract->ret) {
        case HelperRetType::kMapValueOrNull:
        case HelperRetType::kHeapPtrOrNull:
        case HelperRetType::kSocketOrNull:
          out.ret = 0;  // NULL: the documented lookup/allocation failure
          break;
        case HelperRetType::kScalar:
          out.ret = static_cast<uint64_t>(int64_t{-14});  // -EFAULT
          break;
        case HelperRetType::kVoid:
          break;
      }
      KFLEX_TRACE(ObsEvent::kHelperCall, static_cast<uint64_t>(helper_id), out.ret);
      KFLEX_OBS_COUNT(kHelperCalls);
      return out;
    }
  }
  HelperOutcome out = entry.fn(env, args);
  // Semantic event shared by both engines: the JIT trampoline funnels every
  // helper call through here too, so golden traces match across engines.
  KFLEX_TRACE(ObsEvent::kHelperCall, static_cast<uint64_t>(helper_id), out.ret);
  KFLEX_OBS_COUNT(kHelperCalls);
  return out;
}

VmResult VmRun(std::span<const Insn> insns, VmEnv& env) {
  VmResult result;
  uint64_t* regs = env.regs;
  regs[R1] = kCtxRegion;
  regs[R10] = kStackRegion + kStackSize;
  if (env.maps != nullptr && env.map_windows == nullptr) {
    env.map_windows = env.maps->ValueWindows();
  }

  size_t pc = 0;
  uint64_t executed = 0;
  uint64_t instr_executed = 0;
  const uint64_t budget = env.insn_budget;
  const std::vector<uint8_t>* instr_mask = env.instrumentation_mask;

  auto fault = [&](size_t at, MemFaultKind kind, uint64_t va) {
    result.outcome = VmResult::Outcome::kFault;
    result.fault_pc = at;
    result.fault_kind = kind;
    result.fault_va = va;
    result.insns_executed = executed;
    result.instr_insns_executed = instr_executed;
  };

  while (pc < insns.size()) {
    executed++;
    if (instr_mask != nullptr && pc < instr_mask->size() && (*instr_mask)[pc] != 0) {
      instr_executed++;
    }
    if (budget != 0 && executed > budget) {
      result.outcome = VmResult::Outcome::kBudgetExceeded;
      result.insns_executed = executed;
      result.instr_insns_executed = instr_executed;
      return result;
    }
    const Insn& insn = insns[pc];
    uint8_t cls = insn.Class();

    switch (cls) {
      case BPF_ALU64:
      case BPF_ALU: {
        bool is64 = cls == BPF_ALU64;
        uint8_t op = insn.AluOpField();
        if (op == BPF_NEG) {
          if (is64) {
            regs[insn.dst] = 0 - regs[insn.dst];
          } else {
            regs[insn.dst] = static_cast<uint32_t>(0 - static_cast<uint32_t>(regs[insn.dst]));
          }
          pc++;
          continue;
        }
        uint64_t b;
        if (insn.SrcField() == BPF_X) {
          b = regs[insn.src];
        } else {
          b = is64 ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                   : static_cast<uint32_t>(insn.imm);
        }
        if (is64) {
          regs[insn.dst] = AluEval64(op, regs[insn.dst], b);
        } else {
          regs[insn.dst] = AluEval32(op, static_cast<uint32_t>(regs[insn.dst]),
                                     static_cast<uint32_t>(b));
        }
        pc++;
        continue;
      }

      case BPF_LD: {
        if (insn.IsLdImm64()) {
          uint64_t imm = LdImm64Value(insn, insns[pc + 1]);
          if (insn.src == kPseudoMapId) {
            regs[insn.dst] = MapRegistry::HandleVaForId(static_cast<uint32_t>(imm));
          } else if (insn.src == kPseudoHeapVar) {
            // Normally concretized by Kie; resolved here for uninstrumented
            // (trusted) runs.
            regs[insn.dst] =
                (env.heap != nullptr ? env.heap->layout().kernel_base : 0) + imm;
          } else {
            regs[insn.dst] = imm;
          }
          pc += 2;
          continue;
        }
        if (insn.opcode == kKieFuelCheckOpcode) {
          if ((env.fuel_quantum != 0 && executed > env.fuel_quantum) ||
              (env.cancel != nullptr && env.cancel->load(std::memory_order_relaxed))) {
            fault(pc, MemFaultKind::kTerminate, 0);
            return result;
          }
          pc++;
          continue;
        }
        if (insn.opcode == kKieSanitizeOpcode || insn.opcode == kKieTranslateOpcode) {
          if (env.heap == nullptr) {
            fault(pc, MemFaultKind::kBadAddress, 0);
            return result;
          }
          const HeapLayout& layout = env.heap->layout();
          uint64_t base = insn.opcode == kKieSanitizeOpcode ? layout.kernel_base
                                                            : layout.user_base;
          regs[insn.dst] = base + (regs[insn.dst] & layout.mask());
          pc++;
          continue;
        }
        fault(pc, MemFaultKind::kBadAddress, 0);
        return result;
      }

      case BPF_LDX:
      case BPF_ST:
      case BPF_STX: {
        MemFaultKind fk = MemFaultKind::kNone;
        uint64_t fva = 0;
        if (!VmExecMemInsn(env, insn, fk, fva)) {
          fault(pc, fk, fva);
          return result;
        }
        pc++;
        continue;
      }

      case BPF_JMP:
      case BPF_JMP32: {
        uint8_t op = insn.AluOpField();
        if (op == BPF_CALL) {
          const HelperTable::Entry* helper =
              env.helpers != nullptr ? env.helpers->Find(insn.imm) : nullptr;
          if (helper == nullptr) {
            fault(pc, MemFaultKind::kBadAddress, static_cast<uint64_t>(insn.imm));
            return result;
          }
          executed += helper->virtual_cost;
          uint64_t args[5] = {regs[R1], regs[R2], regs[R3], regs[R4], regs[R5]};
          HelperOutcome out = VmCallHelper(env, insn.imm, *helper, args);
          if (env.helper_trace != nullptr) {
            env.helper_trace->emplace_back(insn.imm, out.ret);
          }
          if (out.cancel) {
            result.outcome = VmResult::Outcome::kHelperCancel;
            result.fault_pc = pc;
            result.insns_executed = executed;
            result.instr_insns_executed = instr_executed;
            return result;
          }
          if (out.fault) {
            result.outcome = VmResult::Outcome::kHelperFault;
            result.fault_pc = pc;
            result.insns_executed = executed;
            result.instr_insns_executed = instr_executed;
            return result;
          }
          regs[R0] = out.ret;
          pc++;
          continue;
        }
        if (op == BPF_EXIT) {
          result.outcome = VmResult::Outcome::kOk;
          result.ret = static_cast<int64_t>(regs[R0]);
          result.insns_executed = executed;
          result.instr_insns_executed = instr_executed;
          return result;
        }
        if (op == BPF_JA) {
          pc = static_cast<size_t>(static_cast<int64_t>(pc) + 1 + insn.off);
          continue;
        }
        uint64_t b = insn.SrcField() == BPF_X
                         ? regs[insn.src]
                         : (cls == BPF_JMP ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                           : static_cast<uint32_t>(insn.imm));
        if (JmpEval(op, regs[insn.dst], b, cls == BPF_JMP)) {
          pc = static_cast<size_t>(static_cast<int64_t>(pc) + 1 + insn.off);
        } else {
          pc++;
        }
        continue;
      }

      default:
        fault(pc, MemFaultKind::kBadAddress, 0);
        return result;
    }
  }
  // Fell off the end (cannot happen for verified programs).
  fault(pc, MemFaultKind::kBadAddress, 0);
  return result;
}

}  // namespace kflex
