// Kernel-provided eBPF maps (§2.2): the only data structures available to
// strict-eBPF extensions. KFlex keeps them for backward compatibility; the
// BMC baseline (§5.1) is built on a pre-allocated hash map exactly like the
// original system.
//
// Map handles and value pointers are simulated kernel VAs inside kMapRegion;
// the VM translates value-pointer accesses through the registry.
#ifndef SRC_RUNTIME_MAPS_H_
#define SRC_RUNTIME_MAPS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/runtime/layout.h"
#include "src/verifier/verifier.h"

namespace kflex {

// One contiguous VA → host window (a map's value area). The registry keeps a
// flat, sorted snapshot of these so per-access translation is a lock-free
// binary search shared by the interpreter and the JIT's cold path, instead
// of a mutex-guarded registry scan.
struct VaWindow {
  uint64_t start = 0;
  uint64_t end = 0;  // exclusive
  uint8_t* host = nullptr;
};

class Map {
 public:
  Map(MapDescriptor desc, uint64_t handle_va) : desc_(desc), handle_va_(handle_va) {}
  virtual ~Map() = default;

  const MapDescriptor& desc() const { return desc_; }
  uint64_t handle_va() const { return handle_va_; }
  uint64_t value_area_va() const { return handle_va_ + kValueAreaOff; }

  // Returns the VA of the value for `key`, or 0 if absent.
  virtual uint64_t Lookup(const uint8_t* key) = 0;
  // 0 on success, negative errno-style value on failure.
  virtual int Update(const uint8_t* key, const uint8_t* value) = 0;
  virtual int Delete(const uint8_t* key) = 0;
  // Host pointer for a value-area access, or nullptr if out of bounds.
  virtual uint8_t* TranslateValue(uint64_t va, uint64_t size) = 0;
  // Fills `out` with this map's directly addressable value window, if it has
  // one whose storage stays fixed for the map's lifetime.
  virtual bool ValueWindow(VaWindow* out) {
    (void)out;
    return false;
  }

  static constexpr uint64_t kValueAreaOff = 0x100000;

 protected:
  MapDescriptor desc_;
  uint64_t handle_va_;
};

// Fixed-size array map: key is a u32 index; all values pre-allocated.
class ArrayMap final : public Map {
 public:
  ArrayMap(MapDescriptor desc, uint64_t handle_va);

  uint64_t Lookup(const uint8_t* key) override;
  int Update(const uint8_t* key, const uint8_t* value) override;
  int Delete(const uint8_t* key) override;
  uint8_t* TranslateValue(uint64_t va, uint64_t size) override;
  bool ValueWindow(VaWindow* out) override;

 private:
  std::vector<uint8_t> values_;
};

// Pre-allocated hash map (open hashing, fixed capacity) — the shape BMC uses
// for its look-aside cache.
class BpfHashMap final : public Map {
 public:
  BpfHashMap(MapDescriptor desc, uint64_t handle_va);

  uint64_t Lookup(const uint8_t* key) override;
  int Update(const uint8_t* key, const uint8_t* value) override;
  int Delete(const uint8_t* key) override;
  uint8_t* TranslateValue(uint64_t va, uint64_t size) override;
  bool ValueWindow(VaWindow* out) override;

 private:
  struct Slot {
    bool used = false;
    std::vector<uint8_t> key;
  };

  size_t FindSlot(const uint8_t* key, bool for_insert, bool& found);

  std::mutex mu_;
  std::vector<Slot> slots_;
  std::vector<uint8_t> values_;
  size_t capacity_;
  size_t size_ = 0;
};

// Ring buffer map (the kernel's BPF_MAP_TYPE_RINGBUF shape): extensions
// emit variable-size records via bpf_ringbuf_output; user space drains them
// in order. Records are dropped (helper returns -ENOSPC) when the buffer is
// full.
class RingBufMap final : public Map {
 public:
  RingBufMap(MapDescriptor desc, uint64_t handle_va);

  // Producer side (helper): returns 0 or -1 when capacity would be exceeded.
  int Output(const uint8_t* data, uint32_t size);

  // Consumer side (user space): invokes `fn` for each pending record in
  // submission order and releases them. Returns the number consumed.
  size_t Drain(const std::function<void(const uint8_t* data, uint32_t size)>& fn);

  size_t pending() const;
  uint64_t dropped() const;

  // Ring buffers expose no lookup/update/delete surface.
  uint64_t Lookup(const uint8_t* key) override { return 0; }
  int Update(const uint8_t* key, const uint8_t* value) override { return -1; }
  int Delete(const uint8_t* key) override { return -1; }
  uint8_t* TranslateValue(uint64_t va, uint64_t size) override { return nullptr; }

 private:
  mutable std::mutex mu_;
  std::deque<std::vector<uint8_t>> records_;
  uint64_t bytes_used_ = 0;
  uint64_t capacity_;
  uint64_t dropped_ = 0;
};

// Placement of a logical map under the sharded dispatcher (docs/sharding.md).
// RSS-style flow steering guarantees a key only ever reaches one shard, so
// kPartitioned gives every shard an independent slice (no cross-shard
// locking on the hot path); kShared keeps one map visible to all shards,
// serialized by the map's existing internal locking — the fallback for
// state that is genuinely global (e.g., an all-shards counter).
enum class MapPartitionMode : uint8_t { kPartitioned = 0, kShared = 1 };

struct PartitionedMapDesc {
  MapPartitionMode mode = MapPartitionMode::kPartitioned;
  // kPartitioned: one descriptor per shard; kShared: exactly one, returned
  // for every shard.
  std::vector<MapDescriptor> parts;

  const MapDescriptor& ForShard(int shard) const {
    return mode == MapPartitionMode::kShared
               ? parts.front()
               : parts[static_cast<size_t>(shard) % parts.size()];
  }
  int num_parts() const { return static_cast<int>(parts.size()); }
};

class MapRegistry {
 public:
  // Creates a map and returns its descriptor (id assigned by the registry).
  StatusOr<MapDescriptor> CreateArray(uint32_t key_size, uint32_t value_size,
                                      uint64_t max_entries);
  StatusOr<MapDescriptor> CreateHash(uint32_t key_size, uint32_t value_size,
                                     uint64_t max_entries);
  // Hash-map partitions for the sharded dispatcher: kPartitioned splits
  // `max_entries` across `partitions` independent maps (each shard's
  // extension replica is built against its own slice); kShared creates one
  // map of the full capacity that every shard uses.
  StatusOr<PartitionedMapDesc> CreateHashPartitions(
      uint32_t key_size, uint32_t value_size, uint64_t max_entries, int partitions,
      MapPartitionMode mode = MapPartitionMode::kPartitioned);
  // Ring buffer with `capacity_bytes` of record storage.
  StatusOr<MapDescriptor> CreateRingBuf(uint64_t capacity_bytes);

  Map* Find(uint32_t id);
  // Finds the map owning VA `va` (handle or value area); nullptr if none.
  Map* FindByVa(uint64_t va);

  static uint64_t HandleVaForId(uint32_t id) {
    return kMapRegion + (static_cast<uint64_t>(id) << 32);
  }

  std::vector<MapDescriptor> Descriptors() const;

  // Sorted snapshot of all fixed value-area windows, rebuilt on map
  // creation. Safe to hold across a VM run: value storage never moves after
  // construction, and snapshots are immutable.
  std::shared_ptr<const std::vector<VaWindow>> ValueWindows() const;

 private:
  void RebuildWindows();  // callers hold mu_

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Map>> maps_;
  std::shared_ptr<const std::vector<VaWindow>> windows_;
};

}  // namespace kflex

#endif  // SRC_RUNTIME_MAPS_H_
