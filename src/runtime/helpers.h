// Registration of the core helper implementations (Table 2 + the eBPF map /
// time / randomness helpers). Kernel-substrate helpers (socket lookup etc.)
// are registered by src/kernel.
#ifndef SRC_RUNTIME_HELPERS_H_
#define SRC_RUNTIME_HELPERS_H_

#include "src/runtime/vm.h"

namespace kflex {

// Registers kflex_malloc/free/spin_lock/spin_unlock, map helpers,
// bpf_ktime_get_ns, bpf_get_prandom_u32 and bpf_get_smp_processor_id.
void RegisterCoreHelpers(HelperTable& table);

// Virtual monotonic clock used by bpf_ktime_get_ns (nanoseconds).
uint64_t KtimeNowNs();

}  // namespace kflex

#endif  // SRC_RUNTIME_HELPERS_H_
