// Simulated kernel virtual-address-space layout.
//
// The KFlex runtime maps extension heaps "aligned to their size" into the
// kernel's vmalloc region (§4.1); SFI masking relies on this alignment. Our
// userspace model reproduces the layout with a simulated 64-bit VA space the
// interpreter translates on every access:
//
//   user heap view     kUserHeapRegion   (size-aligned; §3.4 shared mapping)
//   ctx objects        kCtxRegion        (hook input: packet / record buffer)
//   stack frames       kStackRegion      (one 512 B frame per invocation)
//   map value areas    kMapRegion
//   kernel objects     kKernelObjRegion  (opaque handles: sockets, ...)
//   extension heaps    kKernelHeapRegion (size-aligned + 32 KB guard zones)
#ifndef SRC_RUNTIME_LAYOUT_H_
#define SRC_RUNTIME_LAYOUT_H_

#include <cstdint>

namespace kflex {

inline constexpr uint64_t kUserHeapRegion = 0x0000'0400'0000'0000ULL;
inline constexpr uint64_t kCtxRegion = 0x0000'1000'0000'0000ULL;
inline constexpr uint64_t kStackRegion = 0x0000'2000'0000'0000ULL;
inline constexpr uint64_t kMapRegion = 0x0000'3000'0000'0000ULL;
inline constexpr uint64_t kKernelObjRegion = 0x0000'4000'0000'0000ULL;
inline constexpr uint64_t kKernelHeapRegion = 0x0000'6000'0000'0000ULL;

// Guard zones flanking each heap. eBPF load/store offsets are signed 16-bit,
// so +/-32 KB guard zones guarantee that `sanitized_base + off` stays inside
// memory owned by the extension's mapping (§4.1).
inline constexpr uint64_t kHeapGuardZone = 32 * 1024;

// Heap page granularity for demand paging (§3.2: physical memory is
// populated on demand; accesses to never-populated pages raise C2
// cancellations).
inline constexpr uint64_t kHeapPageSize = 4096;

// Offset (within the heap) of the runtime-reserved metadata page. The
// *terminate slot* lives here: it holds a pointer to a valid heap byte and is
// zeroed by the runtime to cancel long-running loops (§3.3).
inline constexpr uint64_t kHeapReservedBytes = 64;
inline constexpr uint64_t kTerminateSlotOff = 0;
// A guaranteed-mapped byte the terminate slot points at while cancellation is
// not requested.
inline constexpr uint64_t kTerminateTargetOff = 8;

// Where an extension's heap lands in kernel and user space. Both bases are
// aligned to the (power-of-two) heap size so a single mask extracts the heap
// offset in either address space.
struct HeapLayout {
  uint64_t size = 0;
  uint64_t kernel_base = 0;
  uint64_t user_base = 0;

  uint64_t mask() const { return size - 1; }
  uint64_t kernel_end() const { return kernel_base + size; }

  static HeapLayout ForSize(uint64_t size) {
    HeapLayout layout;
    layout.size = size;
    // Align each region base up to the heap size.
    layout.kernel_base = (kKernelHeapRegion + size - 1) & ~(size - 1);
    layout.user_base = (kUserHeapRegion + size - 1) & ~(size - 1);
    return layout;
  }
};

}  // namespace kflex

#endif  // SRC_RUNTIME_LAYOUT_H_
