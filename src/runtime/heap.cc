#include "src/runtime/heap.h"

#include <cstring>

namespace kflex {

StatusOr<std::unique_ptr<ExtensionHeap>> ExtensionHeap::Create(const HeapSpec& spec) {
  if (spec.size < 64 * 1024 || (spec.size & (spec.size - 1)) != 0) {
    return InvalidArgument("heap size must be a power of two >= 64 KB");
  }
  if (spec.static_bytes > spec.size / 2) {
    return InvalidArgument("static globals exceed half the heap");
  }
  return std::unique_ptr<ExtensionHeap>(new ExtensionHeap(spec));
}

ExtensionHeap::ExtensionHeap(const HeapSpec& spec)
    : layout_(HeapLayout::ForSize(spec.size)),
      data_(new uint8_t[spec.size]),
      present_(spec.size / kHeapPageSize) {
  std::memset(data_.get(), 0, spec.size);
  for (auto& p : present_) {
    p.store(0, std::memory_order_relaxed);
  }
  // The metadata area and static globals are populated at load time, exactly
  // like the data section of a loaded extension.
  uint64_t statics_end = kHeapReservedBytes + spec.static_bytes;
  dynamic_base_ = (statics_end + kHeapPageSize - 1) & ~(kHeapPageSize - 1);
  if (dynamic_base_ == 0) {
    dynamic_base_ = kHeapPageSize;
  }
  PopulatePages(0, dynamic_base_);
  ResetTerminate();
}

bool ExtensionHeap::ContainsKernelVa(uint64_t va) const {
  return va >= layout_.kernel_base - kHeapGuardZone &&
         va < layout_.kernel_end() + kHeapGuardZone;
}

bool ExtensionHeap::ContainsUserVa(uint64_t va) const {
  return va >= layout_.user_base && va < layout_.user_base + layout_.size;
}

uint8_t* ExtensionHeap::TranslateKernel(uint64_t va, uint64_t size, MemFaultKind& fault) {
  uint64_t base = layout_.kernel_base;
  if (va < base || va + size > layout_.kernel_end()) {
    // Within the guard zones (ContainsKernelVa already held) but outside the
    // heap proper.
    fault = MemFaultKind::kGuardZone;
    return nullptr;
  }
  uint64_t off = va - base;
  if (!PagesPresent(off, size)) {
    fault = MemFaultKind::kNotPresent;
    return nullptr;
  }
  return data_.get() + off;
}

uint8_t* ExtensionHeap::TranslateUser(uint64_t va, uint64_t size, MemFaultKind& fault) {
  uint64_t base = layout_.user_base;
  if (va < base || va + size > base + layout_.size) {
    fault = MemFaultKind::kBadAddress;
    return nullptr;
  }
  uint64_t off = va - base;
  if (!PagesPresent(off, size)) {
    fault = MemFaultKind::kNotPresent;
    return nullptr;
  }
  return data_.get() + off;
}

void ExtensionHeap::PopulatePages(uint64_t off, uint64_t len) {
  if (len == 0) {
    return;
  }
  uint64_t first = off / kHeapPageSize;
  uint64_t last = (off + len - 1) / kHeapPageSize;
  for (uint64_t p = first; p <= last && p < present_.size(); p++) {
    if (present_[p].exchange(1, std::memory_order_relaxed) == 0) {
      populated_pages_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool ExtensionHeap::PagesPresent(uint64_t off, uint64_t len) const {
  uint64_t first = off / kHeapPageSize;
  uint64_t last = (off + len - 1) / kHeapPageSize;
  for (uint64_t p = first; p <= last; p++) {
    if (p >= present_.size() || present_[p].load(std::memory_order_relaxed) == 0) {
      return false;
    }
  }
  return true;
}

void ExtensionHeap::ArmTerminate() {
  auto* slot = reinterpret_cast<std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  slot->store(0, std::memory_order_release);
}

void ExtensionHeap::ResetTerminate() {
  auto* slot = reinterpret_cast<std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  slot->store(layout_.kernel_base + kTerminateTargetOff, std::memory_order_release);
}

bool ExtensionHeap::terminate_armed() const {
  const auto* slot =
      reinterpret_cast<const std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  return slot->load(std::memory_order_acquire) == 0;
}

}  // namespace kflex
