#include "src/runtime/heap.h"

#include <cstring>

#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace kflex {

StatusOr<std::unique_ptr<ExtensionHeap>> ExtensionHeap::Create(const HeapSpec& spec) {
  if (spec.size < 64 * 1024 || (spec.size & (spec.size - 1)) != 0) {
    return InvalidArgument("heap size must be a power of two >= 64 KB");
  }
  if (spec.static_bytes > spec.size / 2) {
    return InvalidArgument("static globals exceed half the heap");
  }
  return std::unique_ptr<ExtensionHeap>(new ExtensionHeap(spec));
}

ExtensionHeap::ExtensionHeap(const HeapSpec& spec)
    : layout_(HeapLayout::ForSize(spec.size)),
      data_(new uint8_t[spec.size]),
      present_(spec.size / kHeapPageSize) {
  std::memset(data_.get(), 0, spec.size);
  for (auto& p : present_) {
    p.store(0, std::memory_order_relaxed);
  }
  // The metadata area and static globals are populated at load time, exactly
  // like the data section of a loaded extension.
  uint64_t statics_end = kHeapReservedBytes + spec.static_bytes;
  dynamic_base_ = (statics_end + kHeapPageSize - 1) & ~(kHeapPageSize - 1);
  if (dynamic_base_ == 0) {
    dynamic_base_ = kHeapPageSize;
  }
  PopulatePages(0, dynamic_base_);
  ResetTerminate();
}

bool ExtensionHeap::ContainsKernelVa(uint64_t va) const {
  return va >= layout_.kernel_base - kHeapGuardZone &&
         va < layout_.kernel_end() + kHeapGuardZone;
}

bool ExtensionHeap::ContainsUserVa(uint64_t va) const {
  return va >= layout_.user_base && va < layout_.user_base + layout_.size;
}

uint8_t* ExtensionHeap::TranslateKernel(uint64_t va, uint64_t size, MemFaultKind& fault) {
  uint64_t base = layout_.kernel_base;
  if (va < base || va + size > layout_.kernel_end()) {
    // Within the guard zones (ContainsKernelVa already held) but outside the
    // heap proper.
    fault = MemFaultKind::kGuardZone;
    TraceFault(fault, va);
    return nullptr;
  }
  // Injected guard fault: the access is treated as a guard-zone hit, driving
  // the C2 cancellation path for an in-bounds address.
  if (KFLEX_FAULT_FIRE("heap.guard")) {
    fault = MemFaultKind::kGuardZone;
    TraceFault(fault, va);
    return nullptr;
  }
  uint64_t off = va - base;
  // Injected pager failure: the page is treated as unpopulated even when
  // present, as if the demand pager could not back the access (§3.2).
  if (KFLEX_FAULT_FIRE("heap.pagein")) {
    fault = MemFaultKind::kNotPresent;
    TraceFault(fault, va);
    return nullptr;
  }
  if (!PagesPresent(off, size)) {
    fault = MemFaultKind::kNotPresent;
    TraceFault(fault, va);
    return nullptr;
  }
  return data_.get() + off;
}

uint8_t* ExtensionHeap::TranslateUser(uint64_t va, uint64_t size, MemFaultKind& fault) {
  uint64_t base = layout_.user_base;
  if (va < base || va + size > base + layout_.size) {
    fault = MemFaultKind::kBadAddress;
    return nullptr;
  }
  uint64_t off = va - base;
  if (!PagesPresent(off, size)) {
    fault = MemFaultKind::kNotPresent;
    return nullptr;
  }
  return data_.get() + off;
}

void ExtensionHeap::PopulatePages(uint64_t off, uint64_t len) {
  if (len == 0) {
    return;
  }
  uint64_t first = off / kHeapPageSize;
  uint64_t last = (off + len - 1) / kHeapPageSize;
  uint64_t fresh = 0;
  for (uint64_t p = first; p <= last && p < present_.size(); p++) {
    if (present_[p].exchange(1, std::memory_order_relaxed) == 0) {
      populated_pages_.fetch_add(1, std::memory_order_relaxed);
      fresh++;
    }
  }
  // Semantic event shared by both engines (the JIT's inline fast paths only
  // bypass the pager on already-resident pages): golden-trace streams key
  // off it, so it fires only on actual population.
  if (fresh != 0) {
    KFLEX_TRACE(ObsEvent::kHeapPageIn, first, fresh);
    KFLEX_OBS_COUNT(kPageIns);
  }
}

void ExtensionHeap::TraceFault(MemFaultKind kind, uint64_t va) {
  KFLEX_TRACE(ObsEvent::kHeapGuardTrip, static_cast<uint64_t>(kind), va);
  KFLEX_OBS_COUNT(kGuardTrips);
}

bool ExtensionHeap::PagesPresent(uint64_t off, uint64_t len) const {
  uint64_t first = off / kHeapPageSize;
  uint64_t last = (off + len - 1) / kHeapPageSize;
  for (uint64_t p = first; p <= last; p++) {
    if (p >= present_.size() || present_[p].load(std::memory_order_relaxed) == 0) {
      return false;
    }
  }
  return true;
}

void ExtensionHeap::ArmTerminate() {
  auto* slot = reinterpret_cast<std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  slot->store(0, std::memory_order_release);
}

void ExtensionHeap::ResetTerminate() {
  auto* slot = reinterpret_cast<std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  slot->store(layout_.kernel_base + kTerminateTargetOff, std::memory_order_release);
}

bool ExtensionHeap::terminate_armed() const {
  const auto* slot =
      reinterpret_cast<const std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  return slot->load(std::memory_order_acquire) == 0;
}

std::vector<std::string> ExtensionHeap::AuditMetadata() const {
  // Deliberately avoids TranslateKernel: the sweep must not consume fault
  // schedule hits, or a sweep between invocations would shift the replayed
  // failure sequence.
  std::vector<std::string> violations;
  const auto* slot =
      reinterpret_cast<const std::atomic<uint64_t>*>(data_.get() + kTerminateSlotOff);
  uint64_t terminate = slot->load(std::memory_order_acquire);
  if (terminate != 0 && terminate != layout_.kernel_base + kTerminateTargetOff) {
    violations.push_back("terminate slot corrupted (neither armed nor the target address)");
  }
  uint64_t present = 0;
  for (const auto& p : present_) {
    present += p.load(std::memory_order_relaxed);
  }
  if (present != populated_pages_.load(std::memory_order_relaxed)) {
    violations.push_back("populated-page counter disagrees with the presence table");
  }
  if (dynamic_base_ == 0 || dynamic_base_ % kHeapPageSize != 0 || dynamic_base_ > size()) {
    violations.push_back("dynamic base misaligned or out of bounds");
  }
  // The reserved metadata area and static globals are populated at load time
  // and must stay resident: C1 terminate loads and lock words live there.
  if (!PagesPresent(0, dynamic_base_)) {
    violations.push_back("reserved/static heap pages no longer present");
  }
  return violations;
}

}  // namespace kflex
