// Registry of kernel-owned objects handed to extensions as opaque handles
// (simulated VAs in kKernelObjRegion). Acquire-typed helpers register an
// object with a release action; bpf_sk_release-style helpers (and the
// cancellation path walking an object table, §3.3) release it exactly once.
#ifndef SRC_RUNTIME_OBJECT_REGISTRY_H_
#define SRC_RUNTIME_OBJECT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/ebpf/helper_ids.h"
#include "src/runtime/layout.h"

namespace kflex {

class ObjectRegistry {
 public:
  // Registers a live object; `release` runs exactly once when the handle is
  // released. Returns the handle VA.
  uint64_t Register(ResourceKind kind, std::function<void()> release);

  // Releases the handle. Returns false if the handle is unknown or already
  // released (the caller treats that as a no-op / verifier-prevented bug).
  bool Release(uint64_t handle);

  // True if the handle refers to a live (unreleased) object.
  bool IsLive(uint64_t handle) const;
  ResourceKind KindOf(uint64_t handle) const;

  // Number of currently live handles (quiescence checking).
  size_t live_count() const;

 private:
  struct Entry {
    ResourceKind kind = ResourceKind::kNone;
    uint32_t generation = 0;
    bool live = false;
    std::function<void()> release;
  };

  // Handle layout: kKernelObjRegion + slot * 256 + generation-low-byte * 8.
  static constexpr uint64_t kSlotStride = 256;

  bool Decode(uint64_t handle, size_t& slot, uint32_t& gen_low) const;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::vector<size_t> free_slots_;
  size_t live_ = 0;
};

}  // namespace kflex

#endif  // SRC_RUNTIME_OBJECT_REGISTRY_H_
