// The KFlex runtime (Figure 1, step 3).
//
// Owns the full load pipeline — verification (kernel-interface compliance),
// Kie instrumentation (extension correctness), heap creation — and executes
// extensions while guaranteeing memory safety and safe termination:
//
//  * faults raised by the VM (guard zone, unpopulated page, terminate load)
//    become extension cancellations: the runtime walks the object table of
//    the faulting cancellation point, releases every held kernel resource
//    via its destructor, and returns the hook's default verdict (§3.3);
//  * a watchdog monitors how long each invocation has been running and arms
//    the terminate slot when the quantum is exceeded (§4.3);
//  * cancellation is extension-wide: the extension is unloaded, but its heap
//    survives until the owner closes it (§3.4, §4.3).
#ifndef SRC_RUNTIME_RUNTIME_H_
#define SRC_RUNTIME_RUNTIME_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/jit/codegen.h"
#include "src/kie/kie.h"
#include "src/obs/obs.h"
#include "src/runtime/allocator.h"
#include "src/runtime/heap.h"
#include "src/runtime/maps.h"
#include "src/runtime/object_registry.h"
#include "src/runtime/vm.h"
#include "src/verifier/verifier.h"

namespace kflex {

using ExtensionId = uint32_t;

struct RuntimeOptions {
  RuntimeOptions() = default;
  RuntimeOptions(int cpus, uint64_t quantum = 1'000'000'000ULL, uint64_t fuel = 0)
      : num_cpus(cpus), quantum_ns(quantum), fuel_quantum_insns(fuel) {}

  int num_cpus = 8;
  // Watchdog cancellation quantum. The paper's watchdog operates at second
  // granularity (§4.3); tests shrink this for fast, deterministic runs.
  uint64_t quantum_ns = 1'000'000'000ULL;
  // Instruction quantum for clock-sampled cancellation points (extensions
  // instrumented with CancellationMode::kClockSampled); 0 = unlimited.
  uint64_t fuel_quantum_insns = 0;
  // Deterministic fault injection, "point:spec" per entry (see
  // docs/faults.md and src/fault/fault.h for the grammar). Armed in the
  // process-global FaultRegistry at construction; malformed specs abort
  // (they are a test/chaos knob, not production input).
  std::vector<std::string> fault_specs;
};

struct LoadOptions {
  KieOptions kie;
  // Extra verifier knobs (maps are filled in from the registry).
  VerifyOptions verify;
  // Run the bytecode optimizer (opt.h) between verification and Kie:
  // tnum-SCCP constant folding, dominated-guard elision, and dead stack
  // store elimination. Off reproduces the unoptimized PR-1 pipeline (and is
  // what the differential fuzzer compares against).
  bool optimize = true;
  // Static-globals bytes at the front of the heap (kflex_heap file scope
  // data). Ignored when the program declares no heap.
  uint64_t heap_static_bytes = 0;
  // Share the extension heap (and allocator) of an already-loaded extension
  // instead of creating a new one. Heaps are eBPF maps in the real system
  // (§4.1) and can back multiple programs; the declared heap sizes must
  // match.
  ExtensionId share_heap_with = 0;
  // Execution engine. kJit compiles the instrumented bytecode to native
  // x86-64 at load time and falls back to the interpreter (recording the
  // reason, see Runtime::engine_info) on unsupported hosts or constructs;
  // the load itself never fails because of the engine choice.
  ExecEngine engine = ExecEngine::kInterp;
  JitOptions jit;
};

// Engine/optimizer selection bundle for app drivers and test harnesses that
// wrap Load. The chaos harness iterates this over all three execution
// configurations (reference interpreter, optimized interpreter, JIT).
struct EngineChoice {
  bool optimize = true;
  ExecEngine engine = ExecEngine::kInterp;
  JitOptions jit;
};

// Post-load report of which engine an extension actually runs on.
struct EngineInfo {
  ExecEngine requested = ExecEngine::kInterp;
  ExecEngine used = ExecEngine::kInterp;
  std::string fallback_reason;  // set when requested == kJit but used != kJit
  JitCompileStats stats;        // meaningful when used == kJit
  // Shard-safety certificate distilled at load (concurrency.h): the sharded
  // dispatcher's gate for running invocations of this extension
  // concurrently. Full report: Runtime::instrumented(id).concurrency.
  ShardSafety shard_safety = ShardSafety::kRaceFree;
};

// Result of Runtime::SweepInvariants: human-readable violations of the
// runtime's post-fault cleanliness invariants. Empty = green.
struct InvariantReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string ToString() const;  // newline-joined, "ok" when green
};

struct InvokeResult {
  bool attached = true;      // false: extension was unloaded (post-cancellation)
  bool cancelled = false;
  int64_t verdict = 0;
  uint64_t insns = 0;        // total executed bytecode instructions
  uint64_t instr_insns = 0;  // of those, Kie-inserted instrumentation
  VmResult::Outcome outcome = VmResult::Outcome::kOk;
  size_t fault_pc = 0;
  MemFaultKind fault_kind = MemFaultKind::kNone;
};

class Runtime {
 public:
  explicit Runtime(const RuntimeOptions& options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  MapRegistry& maps() { return maps_; }
  ObjectRegistry& objects() { return objects_; }
  const ObjectRegistry& objects() const { return objects_; }
  HelperTable& helpers() { return helpers_; }
  int num_cpus() const { return options_.num_cpus; }

  // Verifies, instruments and installs `program`. Creates the extension heap
  // if the program declares one.
  StatusOr<ExtensionId> Load(const Program& program, const LoadOptions& options = {});

  // Runs one invocation of the extension on `cpu` with the given context
  // object (the hook input). ctx must stay valid for the call.
  //
  // `cpu` selects the per-CPU allocator arena and watchdog slot and must lie
  // in [0, num_cpus); the sharded dispatcher (src/shard) computes it from the
  // shard index. Out-of-range values are rejected (attached=false) after a
  // consistency check against the extension allocator's per-CPU slot count —
  // the runtime no longer trusts callers to have picked a valid arena.
  InvokeResult Invoke(ExtensionId id, int cpu, uint8_t* ctx, uint32_t ctx_size);
  // As above, additionally recording every helper call as (id, return value)
  // into `helper_trace` (may be null). Used by differential tests.
  InvokeResult Invoke(ExtensionId id, int cpu, uint8_t* ctx, uint32_t ctx_size,
                      std::vector<std::pair<int32_t, uint64_t>>* helper_trace);

  // Requests cancellation of all invocations of the extension (§4.3: scope
  // is the whole extension across CPUs).
  void Cancel(ExtensionId id);

  // Re-arms a cancelled extension (tests / repeated-cancellation benches).
  void Reset(ExtensionId id);

  // Quiesced detach: marks the extension unloaded without the cancellation
  // machinery (no unwind, no cancellation stats). The caller must have
  // drained all in-flight invocations first — the sharded dispatcher's
  // per-shard quiesce (ShardedRuntime::UnloadQuiesced) is the intended
  // caller. Subsequent Invokes return attached=false; the heap survives
  // until the owner closes it, as with cancellation (§3.4).
  void Unload(ExtensionId id);

  bool IsUnloaded(ExtensionId id) const;
  ExtensionHeap* heap(ExtensionId id);
  HeapAllocator* allocator(ExtensionId id);
  const InstrumentedProgram& instrumented(ExtensionId id) const;
  const Analysis& analysis(ExtensionId id) const;
  EngineInfo engine_info(ExtensionId id) const;

  // Static lock-acquisition audit across all live extensions (concurrency.h):
  // one LockOrderGraph per shared extension heap (lock identities are heap
  // offsets, so only extensions sharing a heap can contend on the same
  // lock), merged from each extension's certificate edges. A reported cycle
  // is a potential cross-extension AB/BA deadlock; each detection emits a
  // lock.cycle trace event.
  std::vector<LockOrderGraph::Cycle> LockOrderAudit() const;

  // §4.3: user-attached callback adjusting the verdict returned after a
  // cancellation (restricted: plain function of the default verdict).
  void SetCancellationCallback(ExtensionId id, std::function<int64_t(int64_t)> cb);

  struct ExtensionStats {
    uint64_t invocations = 0;
    uint64_t cancellations = 0;
    uint64_t resources_released_on_cancel = 0;
  };
  ExtensionStats GetStats(ExtensionId id) const;

  // Observability snapshot scoped to this runtime's extensions (plus the
  // process-global slot): per-extension counters, invoke-latency histograms
  // and trace-ring drop accounting. Serialize with ObsSnapshotToJson (the
  // `kflex_run --metrics=json` surface).
  ObsSnapshot SnapshotMetrics() const;
  // The process-global obs id of a loaded extension (0 if unknown).
  uint32_t obs_id(ExtensionId id) const;

  // Post-fault invariant sweep (§4.3 degradation story): after any
  // invocation — successful, fault-injected, or cancelled — checks that
  //  * the object registry holds no leaked kernel references,
  //  * the extension's allocator accounting balances (HeapAllocator::Audit),
  //  * the heap's reserved metadata / guard bookkeeping is intact,
  //  * no object-table lock is still held by the kernel side,
  //  * a cancelled (unloaded) extension is quiesced (no running invocation).
  // Call quiesced (no concurrent Invoke on `id`). Does not consume fault
  // injection hits, so sweeping between invocations never shifts a replayed
  // failure schedule.
  InvariantReport SweepInvariants(ExtensionId id) const;

  // Watchdog-driven monitoring of extension execution duration (§4.3).
  void StartWatchdog();
  void StopWatchdog();

 private:
  struct Extension {
    InstrumentedProgram iprog;
    Analysis analysis;
    ExecEngine engine_requested = ExecEngine::kInterp;
    std::unique_ptr<JitProgram> jit;  // non-null: Invoke runs native code
    std::string jit_fallback;         // why kJit fell back, if it did
    std::shared_ptr<ExtensionHeap> heap;
    std::shared_ptr<HeapAllocator> allocator;
    // Process-global observability identity, resolved once at load so the
    // invoke hot path installs attribution without a registry lookup.
    uint32_t obs_id = 0;
    ExtMetrics* obs_metrics = nullptr;
    std::atomic<bool> cancel{false};
    std::atomic<bool> unloaded{false};
    std::function<int64_t(int64_t)> cancel_cb;
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> running_since;  // per cpu, ns; 0 = idle
    mutable std::mutex stats_mu;
    ExtensionStats stats;
  };

  Extension* Get(ExtensionId id);
  const Extension* Get(ExtensionId id) const;
  int64_t Unwind(Extension& ext, VmEnv& env, size_t fault_pc);
  void WatchdogLoop();

  RuntimeOptions options_;
  MapRegistry maps_;
  ObjectRegistry objects_;
  HelperTable helpers_;

  // Writers (Load) take mu_ and republish index_; readers (Invoke and every
  // per-extension accessor) only load the immutable snapshot, so concurrent
  // shard workers never serialize on the registry lock in the invoke path.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Extension>> extensions_;
  std::atomic<std::shared_ptr<const std::vector<Extension*>>> index_;

  std::thread watchdog_;
  std::atomic<bool> watchdog_running_{false};
};

}  // namespace kflex

#endif  // SRC_RUNTIME_RUNTIME_H_
