// The KFlex memory allocator (§3.2, §4.1).
//
// Size-class slab allocator over an extension heap: per-CPU object caches in
// front of a global free list, with pages carved on demand from the heap's
// dynamic region (which also populates their page-table presence — demand
// paging). kflex_malloc()/kflex_free() helpers call into this allocator; a
// background refill thread keeps per-CPU caches warm, mirroring the
// user-space refiller described in §4.1.
#ifndef SRC_RUNTIME_ALLOCATOR_H_
#define SRC_RUNTIME_ALLOCATOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/runtime/heap.h"

namespace kflex {

class HeapAllocator {
 public:
  // Objects up to one page; each heap page is dedicated to one size class.
  static constexpr uint64_t kMinClass = 16;
  static constexpr uint64_t kMaxClass = 4096;
  static constexpr int kNumClasses = 9;  // 16,32,...,4096
  static constexpr size_t kCacheRefill = 32;   // objects moved per refill
  static constexpr size_t kCacheMax = 128;     // per-CPU cache cap per class

  HeapAllocator(ExtensionHeap* heap, int num_cpus);

  HeapAllocator(const HeapAllocator&) = delete;
  HeapAllocator& operator=(const HeapAllocator&) = delete;

  // Allocates `size` bytes for CPU `cpu`; returns the heap offset, or 0 on
  // failure (size too large / heap exhausted).
  uint64_t Alloc(int cpu, uint64_t size);
  // Frees an allocation by heap offset. Returns false for addresses that are
  // not live allocations (tolerated: extensions may pass garbage).
  bool Free(int cpu, uint64_t off);

  // Moves surplus objects between the global list and low per-CPU caches;
  // called by the runtime's refiller thread.
  void RefillCaches();

  static int ClassForSize(uint64_t size);
  static uint64_t ClassSize(int cls) { return kMinClass << cls; }

  // Number of per-CPU cache arenas. Runtime::Invoke bounds its `cpu`
  // argument by this (the shard dispatcher computes cpu = shard index).
  int num_cpu_slots() const { return static_cast<int>(cpus_.size()); }

  struct Stats {
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t pages_carved = 0;
    uint64_t cache_hits = 0;
    uint64_t global_refills = 0;
    uint64_t failures = 0;
  };
  Stats GetStats() const;

  // Invariant audit for the post-fault sweep (Runtime::SweepInvariants):
  // accounting balances (allocs - frees == carved capacity - free objects),
  // and every free-list offset lies in a page of its class, is
  // object-aligned, and appears at most once. Returns human-readable
  // violations; empty = consistent. Call quiesced (no concurrent ops).
  std::vector<std::string> Audit() const;

 private:
  struct PerCpu {
    std::array<std::vector<uint64_t>, kNumClasses> cache;
    // Refiller thread synchronizes with the owning CPU; mutable so the
    // (logically read-only) Audit can snapshot caches under the lock.
    mutable std::mutex mu;
  };

  // Carves a fresh page for `cls` into the global list. Caller holds mu_.
  bool CarvePageLocked(int cls);

  ExtensionHeap* heap_;
  std::vector<std::unique_ptr<PerCpu>> cpus_;

  mutable std::mutex mu_;
  std::array<std::vector<uint64_t>, kNumClasses> global_;
  uint64_t cursor_;             // next page offset to carve
  std::vector<uint8_t> page_class_;  // page index -> class + 1 (0 = unassigned)

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace kflex

#endif  // SRC_RUNTIME_ALLOCATOR_H_
