// The KFlex execution engine: an interpreter for (instrumented) eBPF
// bytecode with a software MMU over the simulated kernel address space.
//
// This stands in for the eBPF JIT + CPU of the real system. Memory accesses
// are translated per region; faults (guard zone, unpopulated heap page,
// unmapped address, SMAP) surface as VmResult::kFault with the faulting pc,
// which the runtime converts into an extension cancellation (§3.3). The
// KFlex-specific SANITIZE/TRANSLATE pseudo-instructions emitted by Kie are
// executed natively here, mirroring the augmented JIT of §4.2.
#ifndef SRC_RUNTIME_VM_H_
#define SRC_RUNTIME_VM_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/runtime/heap.h"
#include "src/runtime/maps.h"

namespace kflex {

class HeapAllocator;
class ObjectRegistry;
struct VmEnv;

struct HelperOutcome {
  uint64_t ret = 0;
  // Helper observed the invocation's cancel flag while blocked (e.g., a spin
  // lock waiter): the runtime cancels the extension at this call site.
  bool cancel = false;
  // Helper signalled a hard fault (invalid handle etc.).
  bool fault = false;
};

using HelperFn = std::function<HelperOutcome(VmEnv&, const uint64_t args[5])>;

class HelperTable {
 public:
  struct Entry {
    HelperFn fn;
    // Virtual instruction cost of the helper's internal work, charged to the
    // invocation's executed-instruction count so that kernel-helper work
    // (map probing, socket lookup, allocation) is accounted in the same
    // currency as extension bytecode.
    uint64_t virtual_cost = 0;
  };

  void Register(int32_t id, HelperFn fn, uint64_t virtual_cost = 0) {
    auto it = LowerBound(id);
    if (it != slots_.end() && it->id == id) {
      it->entry = Entry{std::move(fn), virtual_cost};
    } else {
      slots_.insert(it, Slot{id, Entry{std::move(fn), virtual_cost}});
    }
  }
  const Entry* Find(int32_t id) const {
    auto it = const_cast<HelperTable*>(this)->LowerBound(id);
    return it != slots_.end() && it->id == id ? &it->entry : nullptr;
  }
  // Registered helper ids in ascending order (drift self-checks compare this
  // against the static contract catalog in src/ebpf/helper_ids.h).
  std::vector<int32_t> Ids() const {
    std::vector<int32_t> ids;
    ids.reserve(slots_.size());
    for (const Slot& slot : slots_) {
      ids.push_back(slot.id);
    }
    return ids;
  }

 private:
  // Flat sorted array: helper lookup is on the CALL hot path of both
  // engines, and registration is load-time-only, so a binary-searched
  // vector beats a node-based map (and keeps Entry pointers stable during
  // runs, which the JIT's helper trampoline relies on).
  struct Slot {
    int32_t id;
    Entry entry;
  };
  std::vector<Slot>::iterator LowerBound(int32_t id) {
    return std::lower_bound(
        slots_.begin(), slots_.end(), id,
        [](const Slot& s, int32_t v) { return s.id < v; });
  }
  std::vector<Slot> slots_;
};

// Everything one invocation needs. Stack memory is owned by the VM run.
struct VmEnv {
  ExtensionHeap* heap = nullptr;            // null for heap-less eBPF programs
  HeapAllocator* allocator = nullptr;
  MapRegistry* maps = nullptr;
  ObjectRegistry* objects = nullptr;
  const HelperTable* helpers = nullptr;
  uint8_t* ctx = nullptr;
  uint32_t ctx_size = 0;
  int cpu = 0;
  std::atomic<bool>* cancel = nullptr;      // invocation cancel flag
  uint64_t insn_budget = 0;                 // 0 = unlimited (test safety net)
  // Per-invocation quantum for clock-sampled cancellation points (FUELCHECK
  // instructions); 0 disables the check.
  uint64_t fuel_quantum = 0;
  // Optional per-pc flags marking Kie-inserted instructions (guards,
  // terminate loads); counted separately in VmResult.
  const std::vector<uint8_t>* instrumentation_mask = nullptr;
  // Optional helper-call trace: (helper id, returned value) appended per
  // call in execution order. Differential tests compare traces across
  // optimized/unoptimized runs of the same program.
  std::vector<std::pair<int32_t, uint64_t>>* helper_trace = nullptr;
  // Flat sorted snapshot of map value-area windows, used for lock-free
  // binary-searched translation instead of a per-access registry scan.
  // Filled from `maps` at run start if unset; callers may pre-fill it to
  // amortize across invocations.
  std::shared_ptr<const std::vector<VaWindow>> map_windows;

  // Filled during execution; readable by the cancellation unwinder.
  uint64_t regs[kNumRegs] = {0};
  uint8_t stack[kStackSize] = {0};
};

struct VmResult {
  enum class Outcome {
    kOk = 0,
    kFault,          // memory fault -> cancellation point
    kHelperCancel,   // helper observed cancellation while blocked
    kHelperFault,    // helper hard failure
    kBudgetExceeded, // safety net tripped (tests only)
  };
  Outcome outcome = Outcome::kOk;
  int64_t ret = 0;
  size_t fault_pc = 0;
  MemFaultKind fault_kind = MemFaultKind::kNone;
  uint64_t fault_va = 0;
  uint64_t insns_executed = 0;
  // Of insns_executed, how many were Kie-inserted instrumentation.
  uint64_t instr_insns_executed = 0;
};

const char* VmOutcomeName(VmResult::Outcome outcome);

// Executes `insns` in `env`. R1 is set to the ctx VA, R10 to the stack top.
VmResult VmRun(std::span<const Insn> insns, VmEnv& env);

// The VM's address translation, exposed for helper implementations that take
// extension pointers (map keys, socket tuples, ...).
uint8_t* VmTranslate(VmEnv& env, uint64_t va, uint64_t size, MemFaultKind& fault);

// Executes one LDX/ST/STX instruction (including atomics) against `env`,
// with full translate + zero-extension semantics. Returns false on a memory
// fault, filling `fault` and `fault_va`. Shared between the interpreter loop
// and the JIT's cold memory stubs so both engines fault bit-for-bit alike.
bool VmExecMemInsn(VmEnv& env, const Insn& insn, MemFaultKind& fault,
                   uint64_t& fault_va);

// Invokes helper `helper_id` through `entry`, applying the `helper.ret_err`
// fault point: when it fires on a fallible helper the body is skipped and
// the helper's documented error value is returned instead (NULL for
// pointer-returning helpers, -EFAULT for status/scalar ones). Helpers that
// release resources, and void-returning helpers, are never injected —
// release operations cannot fail in the kernel, and skipping them would leak
// the resource the cancellation path is required to reclaim. Shared between
// the interpreter's CALL dispatch and the JIT's helper trampoline so both
// engines observe the same injected schedule.
HelperOutcome VmCallHelper(VmEnv& env, int32_t helper_id, const HelperTable::Entry& entry,
                           const uint64_t args[5]);

}  // namespace kflex

#endif  // SRC_RUNTIME_VM_H_
