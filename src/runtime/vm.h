// The KFlex execution engine: an interpreter for (instrumented) eBPF
// bytecode with a software MMU over the simulated kernel address space.
//
// This stands in for the eBPF JIT + CPU of the real system. Memory accesses
// are translated per region; faults (guard zone, unpopulated heap page,
// unmapped address, SMAP) surface as VmResult::kFault with the faulting pc,
// which the runtime converts into an extension cancellation (§3.3). The
// KFlex-specific SANITIZE/TRANSLATE pseudo-instructions emitted by Kie are
// executed natively here, mirroring the augmented JIT of §4.2.
#ifndef SRC_RUNTIME_VM_H_
#define SRC_RUNTIME_VM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/runtime/heap.h"
#include "src/runtime/maps.h"

namespace kflex {

class HeapAllocator;
class ObjectRegistry;
struct VmEnv;

struct HelperOutcome {
  uint64_t ret = 0;
  // Helper observed the invocation's cancel flag while blocked (e.g., a spin
  // lock waiter): the runtime cancels the extension at this call site.
  bool cancel = false;
  // Helper signalled a hard fault (invalid handle etc.).
  bool fault = false;
};

using HelperFn = std::function<HelperOutcome(VmEnv&, const uint64_t args[5])>;

class HelperTable {
 public:
  struct Entry {
    HelperFn fn;
    // Virtual instruction cost of the helper's internal work, charged to the
    // invocation's executed-instruction count so that kernel-helper work
    // (map probing, socket lookup, allocation) is accounted in the same
    // currency as extension bytecode.
    uint64_t virtual_cost = 0;
  };

  void Register(int32_t id, HelperFn fn, uint64_t virtual_cost = 0) {
    fns_[id] = Entry{std::move(fn), virtual_cost};
  }
  const Entry* Find(int32_t id) const {
    auto it = fns_.find(id);
    return it == fns_.end() ? nullptr : &it->second;
  }

 private:
  std::map<int32_t, Entry> fns_;
};

// Everything one invocation needs. Stack memory is owned by the VM run.
struct VmEnv {
  ExtensionHeap* heap = nullptr;            // null for heap-less eBPF programs
  HeapAllocator* allocator = nullptr;
  MapRegistry* maps = nullptr;
  ObjectRegistry* objects = nullptr;
  const HelperTable* helpers = nullptr;
  uint8_t* ctx = nullptr;
  uint32_t ctx_size = 0;
  int cpu = 0;
  std::atomic<bool>* cancel = nullptr;      // invocation cancel flag
  uint64_t insn_budget = 0;                 // 0 = unlimited (test safety net)
  // Per-invocation quantum for clock-sampled cancellation points (FUELCHECK
  // instructions); 0 disables the check.
  uint64_t fuel_quantum = 0;
  // Optional per-pc flags marking Kie-inserted instructions (guards,
  // terminate loads); counted separately in VmResult.
  const std::vector<uint8_t>* instrumentation_mask = nullptr;
  // Optional helper-call trace: (helper id, returned value) appended per
  // call in execution order. Differential tests compare traces across
  // optimized/unoptimized runs of the same program.
  std::vector<std::pair<int32_t, uint64_t>>* helper_trace = nullptr;

  // Filled during execution; readable by the cancellation unwinder.
  uint64_t regs[kNumRegs] = {0};
  uint8_t stack[kStackSize] = {0};
};

struct VmResult {
  enum class Outcome {
    kOk = 0,
    kFault,          // memory fault -> cancellation point
    kHelperCancel,   // helper observed cancellation while blocked
    kHelperFault,    // helper hard failure
    kBudgetExceeded, // safety net tripped (tests only)
  };
  Outcome outcome = Outcome::kOk;
  int64_t ret = 0;
  size_t fault_pc = 0;
  MemFaultKind fault_kind = MemFaultKind::kNone;
  uint64_t fault_va = 0;
  uint64_t insns_executed = 0;
  // Of insns_executed, how many were Kie-inserted instrumentation.
  uint64_t instr_insns_executed = 0;
};

const char* VmOutcomeName(VmResult::Outcome outcome);

// Executes `insns` in `env`. R1 is set to the ctx VA, R10 to the stack top.
VmResult VmRun(std::span<const Insn> insns, VmEnv& env);

// The VM's address translation, exposed for helper implementations that take
// extension pointers (map keys, socket tuples, ...).
uint8_t* VmTranslate(VmEnv& env, uint64_t va, uint64_t size, MemFaultKind& fault);

}  // namespace kflex

#endif  // SRC_RUNTIME_VM_H_
