#include "src/runtime/spinlock.h"

#include <thread>

#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace kflex {

namespace {
std::atomic<uint64_t>* Word(void* p) { return reinterpret_cast<std::atomic<uint64_t>*>(p); }
const std::atomic<uint64_t>* Word(const void* p) {
  return reinterpret_cast<const std::atomic<uint64_t>*>(p);
}
}  // namespace

bool SpinLockOps::TryAcquire(void* word, uint64_t owner_tag) {
  uint64_t expected = kFree;
  if (Word(word)->compare_exchange_strong(expected, owner_tag, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    KFLEX_TSAN_ACQUIRE(word);
    return true;
  }
  return false;
}

bool SpinLockOps::Acquire(void* word, uint64_t owner_tag, const std::atomic<bool>* cancel) {
  // Injected waiter delay (chaos, not an error): widen the race window
  // between contending acquirers and the cancellation path by a fixed,
  // wallclock-free amount of spinning before the first acquire attempt. A
  // delayed waiter must still either acquire or observe cancellation.
  if (KFLEX_FAULT_FIRE("lock.delay")) {
    for (int i = 0; i < 4096; i++) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
    std::this_thread::yield();
  }
  int backoff = 1;
  uint64_t rounds = 0;
  while (true) {
    if (TryAcquire(word, owner_tag)) {
      // Contention is only reported once the fast path failed at least once,
      // so an uncontended acquire stays silent in the trace.
      if (rounds != 0) {
        KFLEX_TRACE(ObsEvent::kLockContended, owner_tag, rounds);
        KFLEX_OBS_COUNT(kLockContended);
      }
      return true;
    }
    rounds++;
    for (int i = 0; i < backoff; i++) {
      if (Word(word)->load(std::memory_order_relaxed) == kFree) {
        break;
      }
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
    if (backoff < 1024) {
      backoff *= 2;
    } else {
      std::this_thread::yield();
    }
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return false;
    }
  }
}

void SpinLockOps::Release(void* word) {
  KFLEX_TSAN_RELEASE(word);
  Word(word)->store(kFree, std::memory_order_release);
}

bool SpinLockOps::IsHeld(const void* word) {
  return Word(word)->load(std::memory_order_acquire) != kFree;
}

uint64_t SpinLockOps::Owner(const void* word) {
  return Word(word)->load(std::memory_order_acquire);
}

}  // namespace kflex
