// KFlex spin locks (§3.1, §3.4).
//
// Lock state is an 8-byte word living *inside the extension heap*, so both
// extensions (via the kflex_spin_lock/unlock helpers) and user-space threads
// sharing the mapped heap can synchronize on it. Waiters observe the
// invocation's cancel flag so that a deadlocked or starved extension can be
// cancelled (§3.3); the cancellation path force-releases held locks through
// the object table.
//
// Substitution note: the paper uses a queue-based (MCS-style) lock. Queue
// locks cannot abandon a queue position safely when a waiter is cancelled,
// so this model uses a compare-and-swap lock with bounded exponential
// backoff, which preserves the safety-relevant behaviour (mutual exclusion,
// cancellable waiting, user/kernel sharing) at the cost of FIFO fairness.
#ifndef SRC_RUNTIME_SPINLOCK_H_
#define SRC_RUNTIME_SPINLOCK_H_

#include <atomic>
#include <cstdint>

// ThreadSanitizer annotations (see docs/concurrency.md and the `tsan` CMake
// preset). The lock is built on std::atomic, whose acquire/release ordering
// TSan models natively; the explicit annotations keep the lock word's
// happens-before edges visible to TSan even if the implementation moves to
// fences or raw __atomic builtins, and mark the word as a synchronization
// address in race reports. No-ops outside TSan builds.
#if defined(__SANITIZE_THREAD__)
#define KFLEX_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KFLEX_TSAN_ENABLED 1
#endif
#endif

#if defined(KFLEX_TSAN_ENABLED)
extern "C" void __tsan_acquire(void* addr);
extern "C" void __tsan_release(void* addr);
#define KFLEX_TSAN_ACQUIRE(addr) __tsan_acquire(addr)
#define KFLEX_TSAN_RELEASE(addr) __tsan_release(addr)
#else
#define KFLEX_TSAN_ACQUIRE(addr) ((void)0)
#define KFLEX_TSAN_RELEASE(addr) ((void)0)
#endif

namespace kflex {

class SpinLockOps {
 public:
  // Lock word values: 0 = free, otherwise an owner tag (nonzero).
  static constexpr uint64_t kFree = 0;
  static constexpr uint64_t kKernelOwner = 1;  // extension invocations
  static constexpr uint64_t kUserOwner = 2;    // user-space threads

  // Spins until the lock is acquired or `cancel` (may be null) becomes true.
  // Returns true on acquisition.
  static bool Acquire(void* word, uint64_t owner_tag, const std::atomic<bool>* cancel);

  static bool TryAcquire(void* word, uint64_t owner_tag);

  // Releases unconditionally (also used by cancellation force-release).
  static void Release(void* word);

  static bool IsHeld(const void* word);
  static uint64_t Owner(const void* word);
};

}  // namespace kflex

#endif  // SRC_RUNTIME_SPINLOCK_H_
