#include "src/runtime/allocator.h"

#include <bit>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace kflex {

HeapAllocator::HeapAllocator(ExtensionHeap* heap, int num_cpus)
    : heap_(heap),
      cursor_(heap->dynamic_base()),
      page_class_(heap->size() / kHeapPageSize, 0) {
  KFLEX_CHECK(num_cpus > 0);
  cpus_.reserve(static_cast<size_t>(num_cpus));
  for (int i = 0; i < num_cpus; i++) {
    cpus_.push_back(std::make_unique<PerCpu>());
  }
}

int HeapAllocator::ClassForSize(uint64_t size) {
  if (size == 0 || size > kMaxClass) {
    return -1;
  }
  uint64_t rounded = std::max<uint64_t>(size, kMinClass);
  int cls = 64 - std::countl_zero(rounded - 1) - 4;  // log2(ceil_pow2(size)) - log2(16)
  if (cls < 0) {
    cls = 0;
  }
  return cls;
}

bool HeapAllocator::CarvePageLocked(int cls) {
  // Injected slab failure: the page carve fails as if the heap's dynamic
  // region were exhausted; Alloc turns this into a NULL return (§4.3).
  if (KFLEX_FAULT_FIRE("alloc.slab")) {
    return false;
  }
  if (cursor_ + kHeapPageSize > heap_->size()) {
    return false;
  }
  uint64_t page_off = cursor_;
  cursor_ += kHeapPageSize;
  page_class_[page_off / kHeapPageSize] = static_cast<uint8_t>(cls + 1);
  // Demand paging: carving a page populates its PTE (§3.2).
  heap_->PopulatePages(page_off, kHeapPageSize);
  uint64_t obj_size = ClassSize(cls);
  for (uint64_t off = page_off; off + obj_size <= page_off + kHeapPageSize; off += obj_size) {
    global_[static_cast<size_t>(cls)].push_back(off);
  }
  KFLEX_TRACE(ObsEvent::kAllocCarve, obj_size, kHeapPageSize / obj_size);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.pages_carved++;
  return true;
}

uint64_t HeapAllocator::Alloc(int cpu, uint64_t size) {
  int cls = ClassForSize(size);
  if (cls < 0 || cpu < 0 || static_cast<size_t>(cpu) >= cpus_.size()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failures++;
    return 0;
  }
  // Injected per-CPU cache failure: the whole allocation attempt fails
  // before touching any free list, mirroring a refiller that cannot keep up.
  if (KFLEX_FAULT_FIRE("alloc.percpu")) {
    KFLEX_TRACE(ObsEvent::kAllocFail, size, 0);
    KFLEX_OBS_COUNT(kAllocFailures);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failures++;
    return 0;
  }
  PerCpu& pcpu = *cpus_[static_cast<size_t>(cpu)];
  {
    std::lock_guard<std::mutex> lock(pcpu.mu);
    auto& cache = pcpu.cache[static_cast<size_t>(cls)];
    if (!cache.empty()) {
      uint64_t off = cache.back();
      cache.pop_back();
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.allocs++;
      stats_.cache_hits++;
      return off;
    }
  }
  // Cache miss: pull a batch from the global list.
  std::vector<uint64_t> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& global = global_[static_cast<size_t>(cls)];
    if (global.empty() && !CarvePageLocked(cls)) {
      KFLEX_TRACE(ObsEvent::kAllocFail, size, 0);
      KFLEX_OBS_COUNT(kAllocFailures);
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.failures++;
      return 0;
    }
    size_t take = std::min(global.size(), kCacheRefill);
    batch.assign(global.end() - static_cast<ptrdiff_t>(take), global.end());
    global.resize(global.size() - take);
    KFLEX_TRACE(ObsEvent::kAllocRefill, ClassSize(cls), take);
    KFLEX_OBS_COUNT(kAllocRefills);
  }
  uint64_t result = batch.back();
  batch.pop_back();
  {
    std::lock_guard<std::mutex> lock(pcpu.mu);
    auto& cache = pcpu.cache[static_cast<size_t>(cls)];
    cache.insert(cache.end(), batch.begin(), batch.end());
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.allocs++;
  stats_.global_refills++;
  return result;
}

bool HeapAllocator::Free(int cpu, uint64_t off) {
  if (off >= heap_->size() || cpu < 0 || static_cast<size_t>(cpu) >= cpus_.size()) {
    return false;
  }
  uint8_t tag = page_class_[off / kHeapPageSize];
  if (tag == 0) {
    return false;  // Not an allocator-owned page (e.g., static globals).
  }
  int cls = tag - 1;
  uint64_t obj_size = ClassSize(cls);
  if (off % obj_size != 0) {
    return false;  // Interior pointer.
  }
  PerCpu& pcpu = *cpus_[static_cast<size_t>(cpu)];
  {
    std::lock_guard<std::mutex> lock(pcpu.mu);
    auto& cache = pcpu.cache[static_cast<size_t>(cls)];
    if (cache.size() < kCacheMax) {
      cache.push_back(off);
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.frees++;
      return true;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  global_[static_cast<size_t>(cls)].push_back(off);
  std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.frees++;
  return true;
}

void HeapAllocator::RefillCaches() {
  for (auto& pcpu_ptr : cpus_) {
    PerCpu& pcpu = *pcpu_ptr;
    for (int cls = 0; cls < kNumClasses; cls++) {
      size_t have;
      {
        std::lock_guard<std::mutex> lock(pcpu.mu);
        have = pcpu.cache[static_cast<size_t>(cls)].size();
      }
      if (have >= kCacheRefill / 2) {
        continue;
      }
      std::vector<uint64_t> batch;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto& global = global_[static_cast<size_t>(cls)];
        if (global.empty() && !CarvePageLocked(cls)) {
          continue;
        }
        size_t take = std::min(global.size(), kCacheRefill);
        batch.assign(global.end() - static_cast<ptrdiff_t>(take), global.end());
        global.resize(global.size() - take);
      }
      std::lock_guard<std::mutex> lock(pcpu.mu);
      auto& cache = pcpu.cache[static_cast<size_t>(cls)];
      cache.insert(cache.end(), batch.begin(), batch.end());
    }
  }
}

HeapAllocator::Stats HeapAllocator::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<std::string> HeapAllocator::Audit() const {
  std::vector<std::string> violations;
  auto violation = [&violations](std::string msg) { violations.push_back(std::move(msg)); };

  // Snapshot the free lists. The audit is meant to run quiesced (no
  // concurrent Alloc/Free); locks are taken one at a time, matching the
  // established order (never pcpu.mu and mu_ nested).
  std::array<std::vector<uint64_t>, kNumClasses> free_objs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int cls = 0; cls < kNumClasses; cls++) {
      free_objs[static_cast<size_t>(cls)] = global_[static_cast<size_t>(cls)];
    }
  }
  for (const auto& pcpu_ptr : cpus_) {
    std::lock_guard<std::mutex> lock(pcpu_ptr->mu);
    for (int cls = 0; cls < kNumClasses; cls++) {
      const auto& cache = pcpu_ptr->cache[static_cast<size_t>(cls)];
      auto& list = free_objs[static_cast<size_t>(cls)];
      list.insert(list.end(), cache.begin(), cache.end());
    }
  }

  uint64_t carved_pages = 0;
  uint64_t capacity = 0;
  std::vector<uint8_t> page_class;
  {
    std::lock_guard<std::mutex> lock(mu_);
    page_class = page_class_;
    if (cursor_ > heap_->size() || cursor_ % kHeapPageSize != 0) {
      violation("allocator cursor out of bounds or misaligned");
    }
  }
  for (uint8_t tag : page_class) {
    if (tag == 0) {
      continue;
    }
    if (tag > kNumClasses) {
      violation("page tagged with out-of-range size class");
      continue;
    }
    carved_pages++;
    uint64_t obj_size = ClassSize(tag - 1);
    capacity += kHeapPageSize / obj_size;
  }

  // Every free object must lie in a page of its own class, aligned to the
  // class size, and appear exactly once across all free lists.
  std::unordered_set<uint64_t> seen;
  uint64_t free_count = 0;
  for (int cls = 0; cls < kNumClasses; cls++) {
    uint64_t obj_size = ClassSize(cls);
    for (uint64_t off : free_objs[static_cast<size_t>(cls)]) {
      free_count++;
      if (off >= heap_->size()) {
        violation("free object outside the heap");
        continue;
      }
      uint8_t tag = page_class[off / kHeapPageSize];
      if (tag != static_cast<uint8_t>(cls + 1)) {
        violation("free object in a page of a different size class");
      }
      if (off % obj_size != 0) {
        violation("free object misaligned for its size class");
      }
      if (!seen.insert(off).second) {
        violation("free object appears twice (double free / list corruption)");
      }
    }
  }

  Stats stats = GetStats();
  if (stats.pages_carved != carved_pages) {
    violation("pages_carved stat disagrees with page class table");
  }
  if (stats.allocs < stats.frees) {
    violation("more frees than allocs recorded");
  } else if (capacity < free_count ||
             stats.allocs - stats.frees != capacity - free_count) {
    violation("allocator accounting does not balance: allocs-frees=" +
              std::to_string(stats.allocs - stats.frees) + " but capacity-free=" +
              std::to_string(capacity) + "-" + std::to_string(free_count));
  }
  return violations;
}

}  // namespace kflex
