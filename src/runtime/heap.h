// Extension heaps (§3.2, §4.1).
//
// A heap is a size-aligned window of the simulated kernel VA space backed by
// host memory, with:
//  * 32 KB guard zones on either side (accesses fault and cancel),
//  * software demand paging: pages become accessible only once the allocator
//    populates them; touching an unpopulated page raises a C2 cancellation,
//  * a runtime-reserved metadata area holding the *terminate* slot used by
//    extension cancellation (§3.3),
//  * a user-space alias base so applications can map the heap and share
//    pointers with the extension (§3.4).
#ifndef SRC_RUNTIME_HEAP_H_
#define SRC_RUNTIME_HEAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/runtime/layout.h"

namespace kflex {

enum class MemFaultKind : uint8_t {
  kNone = 0,
  kGuardZone,     // hit a heap guard zone
  kNotPresent,    // heap page not yet populated (C2 cancellation)
  kBadAddress,    // address outside every mapped kernel region
  kSmap,          // unsanitized access landed in user-space addresses
  kTerminate,     // terminate-slot deref after cancellation was requested
};

struct HeapSpec {
  // Total heap size in bytes; must be a power of two >= 64 KB.
  uint64_t size = 0;
  // Bytes of statically declared extension globals (kflex_heap-file scope
  // data: list heads, locks, bucket arrays). Populated at load time, placed
  // right after the runtime-reserved metadata area.
  uint64_t static_bytes = 0;
};

class ExtensionHeap {
 public:
  static StatusOr<std::unique_ptr<ExtensionHeap>> Create(const HeapSpec& spec);

  ExtensionHeap(const ExtensionHeap&) = delete;
  ExtensionHeap& operator=(const ExtensionHeap&) = delete;

  const HeapLayout& layout() const { return layout_; }
  uint64_t size() const { return layout_.size; }
  // First heap offset usable by static extension globals.
  uint64_t statics_base() const { return kHeapReservedBytes; }
  // First heap offset managed by the dynamic allocator.
  uint64_t dynamic_base() const { return dynamic_base_; }

  // Translates a kernel-VA access to host memory. On failure returns nullptr
  // and sets `fault`.
  uint8_t* TranslateKernel(uint64_t va, uint64_t size, MemFaultKind& fault);
  // Translates a user-VA access (the application's view of the heap).
  uint8_t* TranslateUser(uint64_t va, uint64_t size, MemFaultKind& fault);
  // True if `va` lies within the heap window or its guard zones (kernel VA).
  bool ContainsKernelVa(uint64_t va) const;
  bool ContainsUserVa(uint64_t va) const;

  // Direct host access to a heap offset (runtime / tests / user-space side;
  // does not consult the page-presence table).
  uint8_t* HostAt(uint64_t off) { return data_.get() + off; }
  const uint8_t* HostAt(uint64_t off) const { return data_.get() + off; }

  // Demand paging: marks pages overlapping [off, off+len) as populated.
  void PopulatePages(uint64_t off, uint64_t len);
  bool PagesPresent(uint64_t off, uint64_t len) const;
  // Raw presence byte per page (0/1), for the JIT's inline page checks; the
  // compiled code reads these as plain bytes, matching the interpreter's
  // relaxed atomic loads on x86.
  const uint8_t* present_bytes() const {
    static_assert(sizeof(std::atomic<uint8_t>) == 1);
    return reinterpret_cast<const uint8_t*>(present_.data());
  }
  uint64_t populated_pages() const { return populated_pages_.load(std::memory_order_relaxed); }

  // Invariant audit for the post-fault sweep: terminate slot holds a legal
  // value, presence table and populated-page counter agree, and the
  // runtime-reserved metadata / static pages are still resident. Returns
  // human-readable violations; empty = intact. Does not consume fault
  // injection hits.
  std::vector<std::string> AuditMetadata() const;

  // ---- Cancellation support (§3.3) ----
  // Zeroes the terminate slot: the next C1 terminate load faults.
  void ArmTerminate();
  // Restores the terminate slot to a valid heap address.
  void ResetTerminate();
  bool terminate_armed() const;

 private:
  explicit ExtensionHeap(const HeapSpec& spec);

  // Emits the heap.guard_trip trace event + counter for a translation fault.
  static void TraceFault(MemFaultKind kind, uint64_t va);

  HeapLayout layout_;
  uint64_t dynamic_base_ = 0;
  std::unique_ptr<uint8_t[]> data_;
  std::vector<std::atomic<uint8_t>> present_;  // one flag per page
  std::atomic<uint64_t> populated_pages_{0};
};

}  // namespace kflex

#endif  // SRC_RUNTIME_HEAP_H_
