#include "src/shard/steering.h"

#include <cstring>

#include "src/kernel/packet.h"

namespace kflex {

uint64_t ShardHashBytes(const uint8_t* data, uint32_t len) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (uint32_t i = 0; i < len; i++) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return ShardMix64(h);
}

uint64_t ShardHashKvCtx(const uint8_t* ctx, uint32_t ctx_size) {
  if (ctx_size >= static_cast<uint32_t>(kOffKey) + kMaxKeyLen) {
    uint8_t keylen = ctx[kOffKeyLen];
    if (keylen > 0 && keylen <= kMaxKeyLen) {
      return ShardHashBytes(ctx + kOffKey, keylen);
    }
  }
  if (ctx_size >= static_cast<uint32_t>(kOffDstPort) + 2) {
    uint32_t src_ip;
    uint16_t src_port, dst_port;
    std::memcpy(&src_ip, ctx + kOffSrcIp, 4);
    std::memcpy(&src_port, ctx + kOffSrcPort, 2);
    std::memcpy(&dst_port, ctx + kOffDstPort, 2);
    uint64_t tuple = (static_cast<uint64_t>(src_ip) << 32) |
                     (static_cast<uint64_t>(src_port) << 16) | dst_port;
    return ShardMix64(tuple);
  }
  return ShardHashBytes(ctx, ctx_size);
}

}  // namespace kflex
