#include "src/shard/shard.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/fault/fault.h"
#include "src/obs/obs.h"

namespace kflex {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 2;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// Parked workers re-arm after this even without a wakeup; it bounds the one
// benign race (producer notifies between the worker's empty-check and wait).
constexpr auto kParkTimeout = std::chrono::microseconds(200);

// Upper bound on a single dispatch batch; RunBatch stages requests in a
// stack array of this size so it can finish all accounting (traces,
// counters) before the first Execute.
constexpr int kMaxBatch = 256;

}  // namespace

ShardedRuntime::ShardedRuntime(const ShardedRuntimeOptions& options)
    : options_([&] {
        ShardedRuntimeOptions o = options;
        o.num_shards = std::max(1, o.num_shards);
        o.batch_size = std::clamp(o.batch_size, 1, kMaxBatch);
        o.queue_capacity = RoundUpPow2(std::max<size_t>(2, o.queue_capacity));
        // Workers invoke with cpu = shard index, so every extension allocator
        // needs at least one arena per shard.
        o.runtime.num_cpus = std::max(o.runtime.num_cpus, o.num_shards);
        return o;
      }()),
      runtime_(options_.runtime) {
  ext_index_.store(std::make_shared<const std::vector<LoadedExt*>>(),
                   std::memory_order_release);
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; s++) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity));
  }
  for (int s = 0; s < options_.num_shards; s++) {
    shards_[s]->worker = std::thread([this, s] { WorkerLoop(s); });
  }
}

ShardedRuntime::~ShardedRuntime() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->wake_mu);
    shard->wake_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

StatusOr<ShardExtId> ShardedRuntime::Load(const Program& program,
                                          const LoadOptions& options) {
  return LoadImpl([&program](int) { return program; }, options);
}

StatusOr<ShardExtId> ShardedRuntime::Load(const std::function<Program(int)>& make,
                                          const LoadOptions& options) {
  return LoadImpl(make, options);
}

StatusOr<ShardExtId> ShardedRuntime::LoadImpl(const std::function<Program(int)>& make,
                                              const LoadOptions& options) {
  std::lock_guard<std::mutex> lock(ext_mu_);
  const int n = options_.num_shards;
  // Home shard before safety is known: the certificate decides whether the
  // extension spreads, the table slot decides where a pinned one lives.
  const int home = static_cast<int>(exts_.size()) % n;

  auto loaded = std::make_unique<LoadedExt>();
  auto home_id = runtime_.Load(make(home), options);
  if (!home_id.ok()) {
    return home_id.status();
  }
  ShardPlacement& place = loaded->placement;
  place.safety = runtime_.engine_info(*home_id).shard_safety;
  place.replicated = place.safety != ShardSafety::kSerialOnly && n > 1;
  place.home_shard = home;
  if (place.replicated) {
    place.replicas.assign(n, 0);
    place.replicas[home] = *home_id;
    for (int s = 0; s < n; s++) {
      if (s == home) {
        continue;
      }
      auto rid = runtime_.Load(make(s), options);
      if (!rid.ok()) {
        return rid.status();
      }
      place.replicas[s] = *rid;
    }
  } else {
    place.replicas.push_back(*home_id);
  }

  exts_.push_back(std::move(loaded));
  auto index = std::make_shared<std::vector<LoadedExt*>>();
  index->reserve(exts_.size());
  for (const auto& e : exts_) {
    index->push_back(e.get());
  }
  ext_index_.store(std::move(index), std::memory_order_release);
  return static_cast<ShardExtId>(exts_.size());
}

ShardedRuntime::LoadedExt* ShardedRuntime::GetExt(ShardExtId id) const {
  auto index = ext_index_.load(std::memory_order_acquire);
  if (id == 0 || id > index->size()) {
    return nullptr;
  }
  return (*index)[id - 1];
}

const ShardPlacement& ShardedRuntime::placement(ShardExtId id) const {
  LoadedExt* e = GetExt(id);
  KFLEX_CHECK(e != nullptr);
  return e->placement;
}

ExtensionId ShardedRuntime::ReplicaFor(ShardExtId id, int shard) const {
  const ShardPlacement& place = placement(id);
  if (!place.replicated) {
    return place.replicas.front();
  }
  return place.replicas[static_cast<size_t>(shard) % place.replicas.size()];
}

bool ShardedRuntime::Submit(const ShardRequest& req) {
  LoadedExt* e = GetExt(req.ext);
  if (e == nullptr || e->draining.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return false;
  }
  int target = ShardForHash(req.flow_hash, options_.num_shards);
  if (!e->placement.replicated && target != e->placement.home_shard) {
    // Pinned extension, request steered elsewhere: forward to the home ring.
    shards_[target]->forwarded.fetch_add(1, std::memory_order_relaxed);
    KFLEX_TRACE(ObsEvent::kShardForward, target, e->placement.home_shard);
    target = e->placement.home_shard;
  }
  Shard& shard = *shards_[target];
  // Injected queue-full: exercises the drop path without needing a real
  // overrun (chaos matrix row shard.enqueue).
  bool full = KFLEX_FAULT_FIRE("shard.enqueue");
  if (!full) {
    // Count in-flight before the push: the worker may complete (and
    // decrement) before a post-push increment would land.
    e->pending.fetch_add(1, std::memory_order_acq_rel);
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    full = !shard.queue.Push(req);
    if (full) {
      e->pending.fetch_sub(1, std::memory_order_acq_rel);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  if (full) {
    shard.dropped.fetch_add(1, std::memory_order_relaxed);
    KFLEX_TRACE(ObsEvent::kShardDrop, target, shard.queue.capacity());
    return false;
  }
  shard.enqueued.fetch_add(1, std::memory_order_relaxed);
  Wake(shard);
  return true;
}

namespace {

struct SyncState {
  std::atomic<bool> done{false};
  InvokeResult result;
};

}  // namespace

InvokeResult ShardedRuntime::InvokeSync(ShardExtId id, uint64_t flow_hash,
                                        uint8_t* ctx, uint32_t ctx_size) {
  SyncState sync;
  ShardRequest req;
  req.ext = id;
  req.ctx = ctx;
  req.ctx_size = ctx_size;
  req.flow_hash = flow_hash;
  req.on_done = [](const InvokeResult& result, void* user) {
    auto* s = static_cast<SyncState*>(user);
    s->result = result;
    s->done.store(true, std::memory_order_release);
  };
  req.user = &sync;
  if (!Submit(req)) {
    InvokeResult dropped;
    dropped.attached = false;
    return dropped;
  }
  while (!sync.done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  return sync.result;
}

void ShardedRuntime::Flush() {
  while (inflight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void ShardedRuntime::UnloadQuiesced(ShardExtId id) {
  LoadedExt* e = GetExt(id);
  if (e == nullptr || e->draining.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  uint64_t drained = e->pending.load(std::memory_order_acquire);
  while (e->pending.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const ShardPlacement& place = e->placement;
  for (size_t i = 0; i < place.replicas.size(); i++) {
    runtime_.Unload(place.replicas[i]);
    int shard = place.replicated ? static_cast<int>(i) : place.home_shard;
    KFLEX_TRACE(ObsEvent::kShardQuiesce, shard, drained);
  }
}

void ShardedRuntime::WorkerLoop(int shard) {
  KFLEX_TRACE(ObsEvent::kShardStart, shard, options_.num_shards);
  Shard& self = *shards_[shard];
  for (;;) {
    if (RunBatch(shard, shard) > 0) {
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Drain the ring before exiting so no completion is lost on shutdown.
      if (self.queue.EmptyApprox()) {
        break;
      }
      continue;
    }
    if (options_.steal) {
      size_t stole = 0;
      for (int v = 0; v < options_.num_shards && stole == 0; v++) {
        if (v != shard) {
          stole = RunBatch(shard, v);
        }
      }
      if (stole > 0) {
        continue;
      }
    }
    self.sleepers.fetch_add(1, std::memory_order_acq_rel);
    {
      std::unique_lock<std::mutex> lock(self.wake_mu);
      if (self.queue.EmptyApprox() && !stop_.load(std::memory_order_acquire)) {
        self.wake_cv.wait_for(lock, kParkTimeout);
      }
    }
    self.sleepers.fetch_sub(1, std::memory_order_acq_rel);
  }
}

size_t ShardedRuntime::RunBatch(int self, int from) {
  Shard& src = *shards_[from];
  Shard& me = *shards_[self];
  const bool stealing = self != from;
  // Collect the whole batch and account for it (counters + trace events)
  // BEFORE executing: the last Execute's inflight decrement is what Flush()
  // observes, so every emission for this batch must happen-before it —
  // that's what lets callers snapshot the trace rings quiescently after a
  // Flush with no producers (the obs rings tolerate racing readers, but a
  // drained dispatcher must be genuinely silent).
  ShardRequest batch[kMaxBatch];
  size_t collected = 0;
  while (collected < static_cast<size_t>(options_.batch_size)) {
    ShardRequest req;
    if (!src.queue.Pop(&req)) {
      break;
    }
    if (stealing) {
      LoadedExt* e = GetExt(req.ext);
      if (e != nullptr && !e->placement.replicated) {
        // Pinned request: a thief must not run it (serial-only certificate).
        // Return it to its home ring — `from` IS the home shard, and the pop
        // just freed a slot, so this only fails under heavy contention.
        if (!src.queue.Push(req)) {
          src.dropped.fetch_add(1, std::memory_order_relaxed);
          KFLEX_TRACE(ObsEvent::kShardDrop, from, src.queue.capacity());
          e->pending.fetch_sub(1, std::memory_order_acq_rel);
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
        }
        break;  // stop stealing from this victim: likely more pinned work
      }
      me.stolen.fetch_add(1, std::memory_order_relaxed);
      KFLEX_TRACE(ObsEvent::kShardSteal, self, from);
    }
    batch[collected++] = req;
  }
  if (collected > 0) {
    me.batches.fetch_add(1, std::memory_order_relaxed);
    me.occupancy_sum.fetch_add(collected, std::memory_order_relaxed);
    KFLEX_TRACE(ObsEvent::kShardBatch, self, collected);
  }
  for (size_t i = 0; i < collected; i++) {
    Execute(self, from, batch[i]);
  }
  return collected;
}

void ShardedRuntime::Execute(int self, int owner, const ShardRequest& req) {
  Shard& me = *shards_[self];
  LoadedExt* e = GetExt(req.ext);
  InvokeResult result;
  if (e == nullptr) {
    result.attached = false;
  } else {
    // A thief executes the victim's replica — the flow's per-shard state
    // lives there; concurrent entry is safe by the >= lock-protected
    // certificate that admitted the extension to replication.
    ExtensionId rid = e->placement.replicated
                          ? e->placement.replicas[owner]
                          : e->placement.replicas.front();
    result = runtime_.Invoke(rid, self, req.ctx, req.ctx_size);
    me.invoked.fetch_add(1, std::memory_order_relaxed);
  }
  if (req.on_done != nullptr) {
    req.on_done(result, req.user);
  }
  if (e != nullptr) {
    e->pending.fetch_sub(1, std::memory_order_acq_rel);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ShardedRuntime::Wake(Shard& shard) {
  if (shard.sleepers.load(std::memory_order_acquire) > 0) {
    // Taking the mutex orders this notify against the worker's empty-check:
    // either the worker re-checks the ring under the lock and sees our push,
    // or it is already waiting and the notify lands.
    std::lock_guard<std::mutex> lock(shard.wake_mu);
    shard.wake_cv.notify_one();
  }
}

std::vector<ShardStats> ShardedRuntime::SnapshotStats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.enqueued = shard->enqueued.load(std::memory_order_relaxed);
    s.dropped = shard->dropped.load(std::memory_order_relaxed);
    s.invoked = shard->invoked.load(std::memory_order_relaxed);
    s.batches = shard->batches.load(std::memory_order_relaxed);
    s.batch_occupancy_sum = shard->occupancy_sum.load(std::memory_order_relaxed);
    s.forwarded = shard->forwarded.load(std::memory_order_relaxed);
    s.stolen = shard->stolen.load(std::memory_order_relaxed);
    s.queue_depth = shard->queue.SizeApprox();
    out.push_back(s);
  }
  return out;
}

std::string ShardedRuntime::StatsJson() const {
  std::string out = "[";
  std::vector<ShardStats> stats = SnapshotStats();
  for (size_t i = 0; i < stats.size(); i++) {
    const ShardStats& s = stats[i];
    if (i != 0) {
      out += ", ";
    }
    out += "{\"shard\": " + std::to_string(i);
    out += ", \"enqueued\": " + std::to_string(s.enqueued);
    out += ", \"dropped\": " + std::to_string(s.dropped);
    out += ", \"invoked\": " + std::to_string(s.invoked);
    out += ", \"batches\": " + std::to_string(s.batches);
    double mean = s.batches == 0 ? 0.0
                                 : static_cast<double>(s.batch_occupancy_sum) /
                                       static_cast<double>(s.batches);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", mean);
    out += ", \"mean_batch_occupancy\": " + std::string(buf);
    out += ", \"forwarded\": " + std::to_string(s.forwarded);
    out += ", \"stolen\": " + std::to_string(s.stolen);
    out += ", \"queue_depth\": " + std::to_string(s.queue_depth);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace kflex
