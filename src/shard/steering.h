// RSS-style flow steering (docs/sharding.md).
//
// A flow hash deterministically maps a request to a shard, exactly like a
// NIC's receive-side-scaling indirection: KV requests hash their key, raw
// packets hash the 5-tuple. Determinism is the correctness foundation of the
// sharded dispatcher — a given key only ever reaches one shard, so per-shard
// extension replicas (each with a private heap and map partition) together
// behave like one coherent store without cross-shard locking.
#ifndef SRC_SHARD_STEERING_H_
#define SRC_SHARD_STEERING_H_

#include <cstdint>

namespace kflex {

// SplitMix64 finalizer: full-avalanche mix so low-entropy inputs (sequential
// keys, small tuples) still spread evenly across shards.
inline uint64_t ShardMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// FNV-1a over the bytes, finalized with ShardMix64.
uint64_t ShardHashBytes(const uint8_t* data, uint32_t len);

// Flow hash for a 64-bit KV key (the sim/bench fast path).
inline uint64_t ShardHashKey(uint64_t key) { return ShardMix64(key); }

// Flow hash for a KV ctx buffer (src/kernel/packet.h layout): the key bytes
// when the request carries one, otherwise the (src_ip, src_port, dst_port)
// tuple — the RSS fallback for keyless packets.
uint64_t ShardHashKvCtx(const uint8_t* ctx, uint32_t ctx_size);

// Indirection table: hash -> shard index. Re-mixes so callers may pass raw
// keys directly without biasing the modulo.
inline int ShardForHash(uint64_t hash, int num_shards) {
  if (num_shards <= 1) {
    return 0;
  }
  return static_cast<int>(ShardMix64(hash) % static_cast<uint64_t>(num_shards));
}

}  // namespace kflex

#endif  // SRC_SHARD_STEERING_H_
