// Lock-free bounded ingress queue (Vyukov MPMC ring).
//
// Producers are the steering front end (any thread calling
// ShardedRuntime::Submit); the primary consumer is the owning shard's worker,
// with other workers popping occasionally to steal. Multi-consumer safety is
// what makes stealing free — the ring does not care who pops.
//
// Each cell carries a sequence number. A producer claims a cell when
// seq == pos (CAS on the enqueue cursor), writes the value, then publishes
// seq = pos + 1; a consumer waits for seq == pos + 1 and releases the cell
// at seq = pos + capacity. Full/empty are detected without locks, and a
// full queue fails the push immediately (the caller drop-counts — ingress
// never blocks, mirroring a NIC RX ring).
#ifndef SRC_SHARD_INGRESS_H_
#define SRC_SHARD_INGRESS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/base/logging.h"

namespace kflex {

template <typename T>
class IngressQueue {
 public:
  explicit IngressQueue(size_t capacity) : mask_(capacity - 1) {
    KFLEX_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    cells_ = std::make_unique<Cell[]>(capacity);
    for (size_t i = 0; i < capacity; i++) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  IngressQueue(const IngressQueue&) = delete;
  IngressQueue& operator=(const IngressQueue&) = delete;

  // False when the queue is full (never blocks).
  bool Push(const T& value) {
    Cell* cell;
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      uint64_t seq = cell->seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // False when the queue is empty.
  bool Pop(T* out) {
    Cell* cell;
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      uint64_t seq = cell->seq.load(std::memory_order_acquire);
      int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    *out = cell->value;
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  // Racy snapshot for metrics/polling only.
  size_t SizeApprox() const {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    return head > tail ? static_cast<size_t>(head - tail) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  // Cursors on separate cache lines from each other and the cell array.
  alignas(64) std::atomic<uint64_t> head_{0};  // enqueue cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // dequeue cursor
  alignas(64) size_t mask_;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace kflex

#endif  // SRC_SHARD_INGRESS_H_
