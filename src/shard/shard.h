// The multi-core sharded dispatch runtime (docs/sharding.md) — the userspace
// analogue of the paper's Fig. 8/9 setup: N worker shards, each with its own
// dispatch thread, ingress ring and per-shard extension state, fed by
// RSS-style flow steering (src/shard/steering.h).
//
// Placement is gated by the PR-7 shard-safety certificate
// (EngineInfo::shard_safety):
//
//   race-free / lock-protected  replicate across all shards: one extension
//                               instance per shard, each with a private heap
//                               (per-shard state; flow steering keeps a key
//                               on one shard so replicas never disagree).
//   serial-only                 pin to a home shard; requests steered
//                               elsewhere are forwarded to the home ring
//                               (counted, traced as shard.forward).
//
// Workers drain their ring in batches (default 32) to amortize engine entry,
// and — for certified-concurrent extensions only — steal from sibling rings
// when idle. Ingress never blocks: a full ring (or an armed shard.enqueue
// fault) drops the request and bumps the shard's drop counter.
#ifndef SRC_SHARD_SHARD_H_
#define SRC_SHARD_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/runtime/runtime.h"
#include "src/shard/ingress.h"
#include "src/shard/steering.h"

namespace kflex {

// Handle into the sharded extension table (1-based, like ExtensionId).
using ShardExtId = uint32_t;

struct ShardedRuntimeOptions {
  int num_shards = 1;
  // Requests drained per ring visit; batching amortizes wakeup + engine
  // entry across requests, like NAPI polling at the XDP hook boundary.
  int batch_size = 32;
  // Ingress ring capacity per shard (power of two).
  size_t queue_capacity = 4096;
  // Idle workers steal from sibling rings (replicated extensions only).
  bool steal = true;
  // Options for the underlying Runtime. num_cpus is raised to num_shards if
  // smaller — workers invoke with cpu = shard index.
  RuntimeOptions runtime;
};

// Where an extension's instances live, derived from its certificate.
struct ShardPlacement {
  ShardSafety safety = ShardSafety::kRaceFree;
  bool replicated = false;
  int home_shard = 0;              // meaningful when !replicated
  // Underlying Runtime ids: one per shard when replicated (index = shard),
  // exactly one (the home instance) when pinned.
  std::vector<ExtensionId> replicas;
};

// One steered request. The ctx buffer is caller-owned and must stay valid
// until on_done fires (or forever, for fire-and-forget submits).
struct ShardRequest {
  ShardExtId ext = 0;
  uint8_t* ctx = nullptr;
  uint32_t ctx_size = 0;
  uint64_t flow_hash = 0;
  // Completion callback, invoked on the worker thread that ran the request.
  // Plain function pointer + user cookie: requests live in the lock-free
  // ring, which wants trivially copyable cells.
  void (*on_done)(const InvokeResult& result, void* user) = nullptr;
  void* user = nullptr;
};

// Per-shard counter snapshot (kflex_run --shards metrics, bench/scale).
struct ShardStats {
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t invoked = 0;
  uint64_t batches = 0;
  uint64_t batch_occupancy_sum = 0;  // mean occupancy = sum / batches
  uint64_t forwarded = 0;            // steered here, re-routed to a home shard
  uint64_t stolen = 0;               // requests this shard stole from siblings
  size_t queue_depth = 0;            // racy snapshot at collection time
};

class ShardedRuntime {
 public:
  explicit ShardedRuntime(const ShardedRuntimeOptions& options = {});
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  Runtime& runtime() { return runtime_; }
  int num_shards() const { return options_.num_shards; }

  // Loads `program` on every shard the certificate allows: replicated
  // instances (private heap each) for race-free / lock-protected programs,
  // a single home-shard instance for serial-only ones.
  StatusOr<ShardExtId> Load(const Program& program, const LoadOptions& options = {});
  // Per-shard program builder for partitioned-map workloads: make(shard) is
  // loaded as shard's replica (the program typically embeds that shard's
  // MapRegistry partition id, see MapRegistry::CreateHashPartitions).
  // Requires a certificate that permits replication; serial-only programs
  // load only make(home_shard).
  StatusOr<ShardExtId> Load(const std::function<Program(int shard)>& make,
                            const LoadOptions& options = {});

  const ShardPlacement& placement(ShardExtId id) const;
  // The Runtime extension serving `shard` (the home instance when pinned).
  ExtensionId ReplicaFor(ShardExtId id, int shard) const;

  // Steers by req.flow_hash and enqueues on the target shard. False = dropped
  // (ring full, shard.enqueue fault armed, unknown/draining extension).
  // Never blocks.
  bool Submit(const ShardRequest& req);

  // Submit + wait: runs the request through the real steering/batching path
  // and blocks until its completion fires. attached=false when dropped.
  InvokeResult InvokeSync(ShardExtId id, uint64_t flow_hash, uint8_t* ctx,
                          uint32_t ctx_size);

  // Blocks until every submitted request has completed (rings empty and no
  // in-flight batches).
  void Flush();

  // Quiesced unload: stops admitting new requests for `id`, drains its
  // in-flight invocations, then detaches every replica via Runtime::Unload.
  // Safe while other extensions keep serving traffic.
  void UnloadQuiesced(ShardExtId id);

  std::vector<ShardStats> SnapshotStats() const;
  // Stable JSON fragment for the metrics surface: an array with one object
  // per shard (kflex_run --metrics=json splices it as "shards").
  std::string StatsJson() const;

 private:
  struct Shard {
    explicit Shard(size_t cap) : queue(cap) {}
    IngressQueue<ShardRequest> queue;
    std::thread worker;
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> invoked{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> occupancy_sum{0};
    std::atomic<uint64_t> forwarded{0};
    std::atomic<uint64_t> stolen{0};
    // Parked-worker wakeup: producers notify only when sleepers > 0; the
    // bounded wait_for covers the benign notify/park race.
    std::atomic<int> sleepers{0};
    std::mutex wake_mu;
    std::condition_variable wake_cv;
  };

  struct LoadedExt {
    ShardPlacement placement;
    std::atomic<uint64_t> pending{0};  // submitted, not yet completed
    std::atomic<bool> draining{false};
  };

  StatusOr<ShardExtId> LoadImpl(const std::function<Program(int)>& make,
                                const LoadOptions& options);
  LoadedExt* GetExt(ShardExtId id) const;
  void WorkerLoop(int shard);
  // Drains up to batch_size requests from `from`'s ring, executing them as
  // `self`. Returns the number executed (stolen pinned requests are
  // re-routed home and not counted).
  size_t RunBatch(int self, int from);
  // Runs one request as worker `self` against the replica owned by shard
  // `owner` (owner == self except for steals).
  void Execute(int self, int owner, const ShardRequest& req);
  void Wake(Shard& s);

  ShardedRuntimeOptions options_;
  Runtime runtime_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex ext_mu_;  // guards table growth; readers use index_
  std::vector<std::unique_ptr<LoadedExt>> exts_;
  std::atomic<std::shared_ptr<const std::vector<LoadedExt*>>> ext_index_;

  std::atomic<uint64_t> inflight_{0};  // all pending requests, all extensions
  std::atomic<bool> stop_{false};
};

}  // namespace kflex

#endif  // SRC_SHARD_SHARD_H_
