#include "src/audit/replay.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/ebpf/helper_ids.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/text_asm.h"
#include "src/fault/fault.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/verifier/cfg.h"

namespace kflex {
namespace {

// The same three execution configurations the chaos harness covers
// (tests/chaos_test.cc): fast_paths=false keeps JIT memory accesses on the
// interpreter-shared translation stub so fault points fire on the same
// schedule across engines — a prerequisite for the divergence check.
struct EngineConfig {
  const char* name;
  EngineChoice choice;
};

std::vector<EngineConfig> Engines() {
  std::vector<EngineConfig> engines;
  engines.push_back({"ref-interp", {/*optimize=*/false, ExecEngine::kInterp, {}}});
  engines.push_back({"opt-interp", {/*optimize=*/true, ExecEngine::kInterp, {}}});
  JitOptions jit;
  jit.fast_paths = false;
  engines.push_back({"jit", {/*optimize=*/true, ExecEngine::kJit, jit}});
  return engines;
}

// Fault points armed to steer the witness down its flagged error path.
// helper.ret_err makes every fallible helper fail (the error path the static
// pass speculated about); lock.delay exercises the contended-lock path for
// lock findings; map.update forces update failures for map-value findings.
std::vector<std::string> FaultSpecsFor(const AuditFinding& finding) {
  std::vector<std::string> specs;
  specs.push_back("helper.ret_err:every=1");
  if (finding.resource == ResourceKind::kLock) {
    specs.push_back("lock.delay:every=1");
  }
  if (finding.kind == ObligationKind::kCheck && finding.helper == kHelperMapLookupElem) {
    specs.push_back("map.update:every=1");
  }
  return specs;
}

uint64_t FailsOf(const std::string& spec) {
  std::string point = spec.substr(0, spec.find(':'));
  FaultPoint* p = FaultRegistry::Instance().Find(point);
  return p != nullptr ? p->fails() : 0;
}

// Map ids the witness references through ld_imm64 map-pointer loads. The
// replay runtime must pre-create a map for every one of them or the load
// fails on an unknown id.
uint32_t MaxMapId(const Program& witness) {
  uint32_t max_id = 0;
  for (size_t pc = 0; pc < witness.insns.size(); pc++) {
    const Insn& insn = witness.insns[pc];
    if (insn.IsLdImm64() && insn.src == kPseudoMapId) {
      max_id = std::max(max_id, static_cast<uint32_t>(insn.imm));
      pc++;  // skip the hi slot
    }
  }
  return max_id;
}

// Largest heap-variable offset the witness touches; the static region is
// sized to cover it so lock words live on pre-populated pages.
uint64_t MaxHeapVarEnd(const Program& witness) {
  uint64_t end = 0;
  for (size_t pc = 0; pc < witness.insns.size(); pc++) {
    const Insn& insn = witness.insns[pc];
    if (insn.IsLdImm64() && insn.src == kPseudoHeapVar) {
      uint64_t lo = static_cast<uint32_t>(insn.imm);
      uint64_t hi = pc + 1 < witness.insns.size()
                        ? static_cast<uint32_t>(witness.insns[pc + 1].imm)
                        : 0;
      end = std::max(end, (hi << 32 | lo) + 16);
      pc++;
    }
  }
  return end;
}

struct RunEnv {
  const Program& witness;
  const EngineConfig& engine;
  const AuditReplayOptions& options;
};

// One load + invoke + sweep on a fresh kernel. A fresh MockKernel per run
// keeps state (held lock words, socket refcounts, fault hit counters) from
// leaking between the baseline and armed legs or between engines.
void RunOnce(const RunEnv& env, const std::vector<std::string>& specs,
             EngineReplay& replay, EngineRun& out) {
  RuntimeOptions ropts;
  ropts.num_cpus = 1;
  ropts.quantum_ns = 500'000'000ULL;
  MockKernel kernel{ropts};
  // A resolvable socket for sk_lookup witnesses: distilled programs read a
  // zeroed stack tuple, so bind (ip=0, port=0, udp).
  kernel.sockets().Bind(0, 0, kProtoUdp);

  Runtime& runtime = kernel.runtime();
  if (!env.options.maps.empty()) {
    for (const MapDescriptor& m : env.options.maps) {
      StatusOr<MapDescriptor> made =
          m.type == MapType::kArray
              ? runtime.maps().CreateArray(m.key_size, m.value_size, m.max_entries)
              : runtime.maps().CreateHash(m.key_size, m.value_size, m.max_entries);
      if (!made.ok()) {
        replay.load_error = made.status().ToString();
        return;
      }
    }
  } else {
    uint32_t want = std::min<uint32_t>(MaxMapId(env.witness), 64);
    for (uint32_t id = 1; id <= want; id++) {
      auto made = runtime.maps().CreateHash(8, 64, 64);
      if (!made.ok()) {
        replay.load_error = made.status().ToString();
        return;
      }
    }
  }

  LoadOptions lo;
  lo.verify.audit_replay = true;
  lo.optimize = env.engine.choice.optimize;
  lo.engine = env.engine.choice.engine;
  lo.jit = env.engine.choice.jit;
  lo.heap_static_bytes =
      std::min<uint64_t>(MaxHeapVarEnd(env.witness), env.witness.heap_size);

  StatusOr<ExtensionId> id = runtime.Load(env.witness, lo);
  if (!id.ok()) {
    replay.load_error = id.status().ToString();
    return;
  }
  replay.load_ok = true;

  // Armed inside the load/invoke bracket only for the armed leg; the
  // ScopedFaultInjection destructor disarms everything and zeroes counters,
  // so per-point failure counts are read before it closes.
  ScopedFaultInjection faults;
  for (const std::string& spec : specs) {
    Status armed = faults.Arm(spec);
    if (!armed.ok()) {
      replay.load_error = armed.ToString();
      return;
    }
  }

  uint8_t ctx[64] = {0};
  InvokeResult r = runtime.Invoke(*id, /*cpu=*/0, ctx, sizeof(ctx));
  out.invoked = true;
  out.cancelled = r.cancelled;
  out.verdict = r.verdict;
  out.outcome = r.outcome;
  for (const std::string& spec : specs) {
    out.fault_fails += FailsOf(spec);
  }
  InvariantReport sweep = runtime.SweepInvariants(*id);
  out.sweep_ok = sweep.ok();
  out.sweep = sweep.ToString();
}

bool SameBehavior(const EngineRun& a, const EngineRun& b) {
  return a.cancelled == b.cancelled && a.verdict == b.verdict && a.outcome == b.outcome;
}

}  // namespace

const char* AuditVerdictName(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kConfirmed:
      return "confirmed";
    case AuditVerdict::kPruned:
      return "pruned";
  }
  return "?";
}

ReplayResult ReplayWitness(const Program& witness, const AuditFinding& finding,
                           const AuditReplayOptions& options) {
  ReplayResult result;
  result.fault_specs = FaultSpecsFor(finding);

  for (const EngineConfig& engine : Engines()) {
    EngineReplay replay;
    replay.engine = engine.name;
    RunEnv env{witness, engine, options};
    RunOnce(env, /*specs=*/{}, replay, replay.baseline);
    if (replay.load_ok) {
      EngineReplay armed_leg;
      armed_leg.engine = engine.name;
      RunOnce(env, result.fault_specs, armed_leg, replay.armed);
      if (!armed_leg.load_ok && replay.load_error.empty()) {
        replay.load_error = armed_leg.load_error;
      }
    }
    result.engines.push_back(std::move(replay));
  }

  // CONFIRMED iff some run provably leaked a resource past the hook exit
  // (invariant sweep) or the engines disagreed on the same deterministic
  // schedule. Armed-vs-baseline differences alone are expected steering, not
  // a violation. Anything else — including a witness no engine could load —
  // is PRUNED. Two verdicts, no third state.
  for (const EngineReplay& er : result.engines) {
    if (!er.load_ok) {
      continue;
    }
    if (er.baseline.invoked && !er.baseline.sweep_ok) {
      result.verdict = AuditVerdict::kConfirmed;
      result.reason = "invariant sweep tripped on " + er.engine + " (baseline): " + er.baseline.sweep;
      return result;
    }
    if (er.armed.invoked && !er.armed.sweep_ok) {
      result.verdict = AuditVerdict::kConfirmed;
      result.reason = "invariant sweep tripped on " + er.engine + " (faults armed): " + er.armed.sweep;
      return result;
    }
  }
  const EngineReplay* ref = nullptr;
  for (const EngineReplay& er : result.engines) {
    if (!er.load_ok) {
      continue;
    }
    if (ref == nullptr) {
      ref = &er;
      continue;
    }
    if (er.baseline.invoked && ref->baseline.invoked &&
        !SameBehavior(er.baseline, ref->baseline)) {
      result.verdict = AuditVerdict::kConfirmed;
      result.reason = "baseline behavior diverges: " + ref->engine + " vs " + er.engine;
      return result;
    }
    if (er.armed.invoked && ref->armed.invoked && !SameBehavior(er.armed, ref->armed)) {
      result.verdict = AuditVerdict::kConfirmed;
      result.reason = "fault-armed behavior diverges: " + ref->engine + " vs " + er.engine;
      return result;
    }
  }

  result.verdict = AuditVerdict::kPruned;
  if (ref == nullptr) {
    result.reason = "witness did not load on any engine";
  } else {
    result.reason = "all engines replay clean with faults armed (witness path bails out)";
  }
  return result;
}

StatusOr<std::vector<AuditOutcome>> AuditAndReplay(const Program& program,
                                                   const Analysis* analysis,
                                                   const AuditReplayOptions& options) {
  StatusOr<Cfg> cfg = Cfg::Build(program);
  if (!cfg.ok()) {
    return cfg.status();
  }
  std::vector<AuditFinding> findings =
      RunContractAudit(program, *cfg, analysis, options.audit);

  std::vector<AuditOutcome> outcomes;
  outcomes.reserve(findings.size());
  for (AuditFinding& finding : findings) {
    AuditOutcome outcome;
    StatusOr<DistilledWitness> witness = DistillWitness(program, finding);
    if (!witness.ok()) {
      // A witness the distiller cannot lower (e.g. an out-of-range bail
      // offset) cannot be replayed — and so cannot be confirmed.
      outcome.replay.verdict = AuditVerdict::kPruned;
      outcome.replay.reason = "distillation failed: " + witness.status().ToString();
    } else {
      outcome.witness = std::move(witness).value();
      StatusOr<std::string> text = ProgramToTextAsm(outcome.witness.program);
      if (text.ok()) {
        outcome.witness_asm = std::move(text).value();
      }
      outcome.replay = ReplayWitness(outcome.witness.program, finding, options);
    }
    outcome.finding = std::move(finding);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace kflex
