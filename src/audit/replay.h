// The dynamic half of the contract audit: replays distilled witness
// programs (src/verifier/audit.h) through the chaos harness and classifies
// each static finding.
//
// Every witness runs on all three execution engines (reference interpreter,
// optimized interpreter, JIT) twice: a baseline run, and a run with the
// finding's fault points armed (`helper.ret_err`, `lock.delay`,
// `map.update`) to steer execution down the flagged error path. A finding is
//
//  * CONFIRMED when any run trips Runtime::SweepInvariants (a resource
//    provably leaked past the hook exit) or the engines diverge on the same
//    schedule (outcome/verdict/cancellation mismatch), and
//  * PRUNED when every run replays clean — the distilled witness bails off
//    the flagged path (infeasible under real control flow), or the program
//    could not even load (witness symbolically invalid).
//
// There is no third state: the hybrid audit never leaves a finding
// unclassified.
#ifndef SRC_AUDIT_REPLAY_H_
#define SRC_AUDIT_REPLAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/runtime/runtime.h"
#include "src/verifier/audit.h"

namespace kflex {

enum class AuditVerdict : uint8_t {
  kConfirmed = 0,
  kPruned = 1,
};

const char* AuditVerdictName(AuditVerdict verdict);

struct AuditReplayOptions {
  AuditOptions audit;
  // Maps created in every fresh replay runtime (in creation order, so ids
  // are assigned 1, 2, ...). Empty = for each map id the witness references,
  // a generic hash map (8-byte key, 64-byte value, 64 entries) is created.
  std::vector<MapDescriptor> maps;
};

// One (engine, faults) execution of the witness.
struct EngineRun {
  bool invoked = false;
  bool cancelled = false;
  int64_t verdict = 0;
  VmResult::Outcome outcome = VmResult::Outcome::kOk;
  bool sweep_ok = true;
  std::string sweep;         // invariant violations, "ok" when green
  uint64_t fault_fails = 0;  // injected failures observed (armed runs)
};

struct EngineReplay {
  std::string engine;  // "ref-interp" / "opt-interp" / "jit"
  bool load_ok = false;
  std::string load_error;
  EngineRun baseline;
  EngineRun armed;
};

struct ReplayResult {
  AuditVerdict verdict = AuditVerdict::kPruned;
  std::string reason;  // one-line human explanation of the classification
  std::vector<std::string> fault_specs;
  std::vector<EngineReplay> engines;
};

// Replays one distilled witness. `finding` selects the fault points to arm.
ReplayResult ReplayWitness(const Program& witness, const AuditFinding& finding,
                           const AuditReplayOptions& options = {});

// One fully classified finding.
struct AuditOutcome {
  AuditFinding finding;
  DistilledWitness witness;
  std::string witness_asm;  // ProgramToTextAsm of the witness ("" on failure)
  ReplayResult replay;
};

// The whole pipeline: static audit over `program` (with the verifier's
// `analysis` when available, may be null), distillation of every finding,
// and chaos replay of every witness. Fails only if the program is too
// malformed to build a CFG for.
StatusOr<std::vector<AuditOutcome>> AuditAndReplay(const Program& program,
                                                   const Analysis* analysis,
                                                   const AuditReplayOptions& options = {});

}  // namespace kflex

#endif  // SRC_AUDIT_REPLAY_H_
