// Pluggable lint passes over extension bytecode, built on the CFG/dataflow
// framework (cfg.h, dataflow.h). Lint findings are advisory diagnostics —
// they never gate loading — but each pass is engineered for zero false
// positives: a finding only fires when the defect is provable from the
// whole-program structure (must-hold lock sets, constant-folded arguments,
// liveness). The kflex-lint CLI (tools/kflex_lint.cc) runs every registered
// pass and reports findings alongside the verifier's elision statistics.
#ifndef SRC_VERIFIER_LINT_H_
#define SRC_VERIFIER_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/program.h"
#include "src/verifier/analysis.h"
#include "src/verifier/cfg.h"
#include "src/verifier/concurrency.h"
#include "src/verifier/dataflow.h"

namespace kflex {

enum class LintSeverity { kNote = 0, kWarning = 1, kError = 2 };

const char* LintSeverityName(LintSeverity severity);

// One diagnostic from one pass, anchored to an instruction pc.
struct Finding {
  size_t pc = 0;
  LintSeverity severity = LintSeverity::kWarning;
  std::string pass;     // registry name of the emitting pass
  std::string message;  // human-readable description
  // Optional entry-to-anchor pc+path witness (concurrency passes; same
  // encoding as the contract audit). Empty for classic passes.
  std::vector<WitnessStep> path;

  bool operator==(const Finding& other) const = default;
};

// Everything a pass may consult. `analysis` is the verifier's output when
// the program verified, nullptr otherwise — passes must work without it
// (lint runs on rejected programs too, to explain why).
struct LintContext {
  const Program& program;
  const Cfg& cfg;
  const Liveness& liveness;
  const Analysis* analysis = nullptr;
};

using LintPassFn = void (*)(const LintContext& ctx, std::vector<Finding>& findings);

struct LintPass {
  const char* name;         // stable identifier, e.g. "dead-code"
  const char* description;  // one-line summary for --help style output
  LintPassFn run;
};

// All registered passes, built-ins first. Built-ins: "dead-code",
// "lock-order", "ref-leak", "helper-contract", "redundant-guard", the
// speculative contract-audit passes "contract-release" and "contract-check"
// (audit.h) whose findings are path witnesses meant to be confirmed or
// pruned by chaos replay (`kflex-lint --audit`), plus the concurrency
// passes "lockset", "atomicity" and "lock-cycle" (concurrency.h) backing
// the shard-safety certificate (docs/concurrency.md).
const std::vector<LintPass>& LintPasses();

// Registers an additional pass (e.g. from a tool or test). Returns false if
// a pass with the same name already exists.
bool RegisterLintPass(const LintPass& pass);

struct LintRunOptions {
  // Names of the passes to run, in registry order; empty = every registered
  // pass. RunLint fails on a name not present in the registry.
  std::vector<std::string> passes;
};

// Builds the CFG + liveness for `program` and runs the selected passes.
// Identical findings emitted by overlapping passes (same pc, severity and
// message — e.g. ref-leak and contract-release describing the same leaked
// reference) are deduplicated, keeping the earliest-registered pass's copy.
// Findings are sorted by (pc, pass). Fails only if the program is too
// malformed to build a CFG for, or if a selected pass does not exist.
StatusOr<std::vector<Finding>> RunLint(const Program& program,
                                       const Analysis* analysis = nullptr);
StatusOr<std::vector<Finding>> RunLint(const Program& program, const Analysis* analysis,
                                       const LintRunOptions& options);

}  // namespace kflex

#endif  // SRC_VERIFIER_LINT_H_
