#include "src/verifier/lint.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "src/ebpf/helper_ids.h"
#include "src/verifier/absval.h"
#include "src/verifier/audit.h"
#include "src/verifier/concurrency.h"
#include "src/verifier/opt.h"

namespace kflex {

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

std::string RegName(int reg) { return "r" + std::to_string(reg); }

// Local constant propagation (AbsVal/AbsRegs/AbsStep) lives in absval.h,
// shared with the contract-audit pass (audit.cc). Block entries start
// unknown, which keeps every derived finding provable regardless of path.

// ---- Pass: dead-code --------------------------------------------------------

void DeadCodePass(const LintContext& ctx, std::vector<Finding>& out) {
  const Program& prog = ctx.program;
  for (const BasicBlock& bb : ctx.cfg.blocks()) {
    if (!ctx.cfg.Reachable(bb.id)) {
      out.push_back({bb.start, LintSeverity::kWarning, "dead-code",
                     "unreachable code: no path from the entry reaches this instruction"});
      continue;
    }
    for (size_t pc = bb.start; pc < bb.end; pc = ctx.cfg.NextPc(pc)) {
      const Insn& insn = prog.insns[pc];
      if (insn.IsAlu() || insn.IsLdImm64()) {
        if (!ctx.liveness.RegLiveOut(pc, insn.dst)) {
          out.push_back({pc, LintSeverity::kWarning, "dead-code",
                         "dead store: value written to " + RegName(insn.dst) +
                             " is never read"});
        }
      } else if (insn.IsLoad()) {
        if (!ctx.liveness.RegLiveOut(pc, insn.dst)) {
          out.push_back({pc, LintSeverity::kNote, "dead-code",
                         "load result in " + RegName(insn.dst) + " is never read"});
        }
      } else if (insn.IsStore() && insn.dst == R10 && insn.AccessSize() == 8 &&
                 (insn.off + kStackSize) % 8 == 0) {
        int slot = Liveness::SlotForOffset(insn.off);
        if (slot >= 0 && !ctx.liveness.SlotLiveOut(pc, slot)) {
          out.push_back({pc, LintSeverity::kWarning, "dead-code",
                         "dead store: stack slot at fp" + std::to_string(insn.off) +
                             " is never read"});
        }
      }
    }
  }
}

// ---- Pass: lock-order -------------------------------------------------------
//
// Must-hold analysis over constant lock identities (heap offsets). The held
// set meets by intersection, so a lock is only "held" at a program point if
// it is held on EVERY path reaching it — acquisition-order facts derived
// from it are provable, never speculative.

// True when the verifier's symbolic execution proved this pc unreachable
// (a constant-folded branch never pushed the dead side). Resource facts
// from such code are not real: the runtime can never execute it.
bool VerifierUnreached(const LintContext& ctx, size_t pc) {
  return ctx.analysis != nullptr && pc < ctx.analysis->insn_visited.size() &&
         ctx.analysis->insn_visited[pc] == 0;
}

struct LockState {
  bool known = false;          // block visited by the fixpoint yet?
  std::set<uint64_t> held;     // lock heap offsets held on all paths
};

bool MeetLockState(LockState& into, const LockState& from) {
  if (!from.known) {
    return false;
  }
  if (!into.known) {
    into = from;
    return true;
  }
  size_t before = into.held.size();
  for (auto it = into.held.begin(); it != into.held.end();) {
    if (from.held.count(*it) == 0) {
      it = into.held.erase(it);
    } else {
      ++it;
    }
  }
  return into.held.size() != before;
}

void LockOrderPass(const LintContext& ctx, std::vector<Finding>& out) {
  const Program& prog = ctx.program;
  const size_t nb = ctx.cfg.num_blocks();
  std::vector<LockState> entry(nb);
  entry[0].known = true;

  // (outer lock, inner lock) -> pc where inner was acquired under outer.
  std::map<std::pair<uint64_t, uint64_t>, size_t> order;
  std::vector<Finding> reacquire;

  auto transfer = [&](const BasicBlock& bb, LockState s, bool collect) {
    AbsRegs regs;
    for (size_t pc = bb.start; pc < bb.end; pc = ctx.cfg.NextPc(pc)) {
      const Insn& insn = prog.insns[pc];
      if (insn.IsCall()) {
        const HelperContract* contract = FindHelperContract(insn.imm);
        if (contract != nullptr && contract->acquires == ResourceKind::kLock &&
            !VerifierUnreached(ctx, pc)) {
          if (regs.r[R1].kind == AbsVal::kHeapOff) {
            uint64_t off = regs.r[R1].v;
            if (collect) {
              for (uint64_t outer : s.held) {
                order.emplace(std::make_pair(outer, off), pc);
              }
              if (s.held.count(off) != 0) {
                reacquire.push_back(
                    {pc, LintSeverity::kError, "lock-order",
                     "deadlock: lock at heap offset " + std::to_string(off) +
                         " re-acquired while already held"});
              }
            }
            s.held.insert(off);
          }
          // Unknown lock identity: leaves the must-held set untouched.
        } else if (contract != nullptr && contract->releases == ResourceKind::kLock) {
          if (regs.r[R1].kind == AbsVal::kHeapOff) {
            s.held.erase(regs.r[R1].v);
          } else {
            s.held.clear();  // released *some* lock; drop all must-hold facts
          }
        }
      }
      AbsStep(prog, pc, regs);
    }
    return s;
  };

  // Fixpoint, then one collecting sweep with converged entry states.
  std::deque<size_t> work(ctx.cfg.rpo().begin(), ctx.cfg.rpo().end());
  while (!work.empty()) {
    size_t b = work.front();
    work.pop_front();
    if (!entry[b].known) {
      continue;
    }
    LockState exit = transfer(ctx.cfg.blocks()[b], entry[b], /*collect=*/false);
    for (size_t succ : ctx.cfg.blocks()[b].succs) {
      if (MeetLockState(entry[succ], exit)) {
        work.push_back(succ);
      }
    }
  }
  for (size_t b : ctx.cfg.rpo()) {
    if (entry[b].known) {
      transfer(ctx.cfg.blocks()[b], entry[b], /*collect=*/true);
    }
  }

  for (const auto& [pair, pc] : order) {
    auto inverse = order.find({pair.second, pair.first});
    if (pair.first < pair.second && inverse != order.end()) {
      out.push_back({pc, LintSeverity::kError, "lock-order",
                     "lock-order inversion: lock at heap offset " +
                         std::to_string(pair.second) + " acquired while holding " +
                         std::to_string(pair.first) + ", but insn " +
                         std::to_string(inverse->second) +
                         " acquires them in the opposite order (deadlock risk)"});
    }
  }
  out.insert(out.end(), reacquire.begin(), reacquire.end());
}

// ---- Pass: ref-leak ---------------------------------------------------------
//
// May-leak analysis of acquired kernel references (sockets). Handles are
// tracked through moves, spills and fills; a JEQ/JNE null check retires the
// acquisition on the NULL branch exactly like the verifier does. A release
// through an untracked register conservatively clears every open
// acquisition, so a finding means: some path provably reaches this exit
// with the reference still held.

struct RefLeakState {
  bool known = false;
  std::set<size_t> open;                        // acquire pcs possibly live
  std::array<size_t, kNumRegs> reg{};           // tag: acquire pc + 1, 0 = none
  std::array<size_t, kStackSlotCount> slot{};
};

bool MeetRefLeakState(RefLeakState& into, const RefLeakState& from) {
  if (!from.known) {
    return false;
  }
  if (!into.known) {
    into = from;
    return true;
  }
  bool changed = false;
  for (size_t pc : from.open) {
    changed |= into.open.insert(pc).second;
  }
  for (size_t i = 0; i < into.reg.size(); i++) {
    if (into.reg[i] != from.reg[i] && into.reg[i] != 0) {
      into.reg[i] = 0;
      changed = true;
    }
  }
  for (size_t i = 0; i < into.slot.size(); i++) {
    if (into.slot[i] != from.slot[i] && into.slot[i] != 0) {
      into.slot[i] = 0;
      changed = true;
    }
  }
  return changed;
}

void RefLeakKill(RefLeakState& s, size_t tag) {
  s.open.erase(tag - 1);
  for (auto& t : s.reg) {
    if (t == tag) {
      t = 0;
    }
  }
  for (auto& t : s.slot) {
    if (t == tag) {
      t = 0;
    }
  }
}

void RefLeakPass(const LintContext& ctx, std::vector<Finding>& out) {
  const Program& prog = ctx.program;
  const size_t nb = ctx.cfg.num_blocks();
  std::vector<RefLeakState> entry(nb);
  entry[0].known = true;

  auto transfer = [&](const BasicBlock& bb, RefLeakState s,
                      std::vector<Finding>* findings) {
    for (size_t pc = bb.start; pc < bb.end; pc = ctx.cfg.NextPc(pc)) {
      const Insn& insn = prog.insns[pc];
      if (insn.IsCall()) {
        const HelperContract* contract = FindHelperContract(insn.imm);
        if (contract != nullptr && contract->releases == ResourceKind::kSocket) {
          size_t tag = s.reg[R1];
          if (tag != 0) {
            RefLeakKill(s, tag);
          } else {
            s.open.clear();  // released an untracked handle: assume any
          }
        }
        for (int r = R0; r <= R5; r++) {
          s.reg[r] = 0;
        }
        if (contract != nullptr && contract->acquires == ResourceKind::kSocket &&
            !VerifierUnreached(ctx, pc)) {
          s.open.insert(pc);
          s.reg[R0] = pc + 1;
        }
      } else if (insn.IsAlu()) {
        if (insn.AluOpField() == BPF_MOV && insn.SrcField() == BPF_X &&
            insn.Class() == BPF_ALU64) {
          s.reg[insn.dst] = s.reg[insn.src];
        } else {
          s.reg[insn.dst] = 0;
        }
      } else if (insn.IsLdImm64()) {
        s.reg[insn.dst] = 0;
      } else if (insn.IsLoad()) {
        int slot = -1;
        if (insn.src == R10 && insn.AccessSize() == 8 && (insn.off + kStackSize) % 8 == 0) {
          slot = Liveness::SlotForOffset(insn.off);
        }
        s.reg[insn.dst] = slot >= 0 ? s.slot[slot] : 0;
      } else if (insn.IsStore() && insn.dst == R10) {
        int first = Liveness::SlotForOffset(insn.off);
        int last = Liveness::SlotForOffset(insn.off + insn.AccessSize() - 1);
        bool full = insn.AccessSize() == 8 && (insn.off + kStackSize) % 8 == 0;
        if (full && first >= 0 && insn.Class() == BPF_STX) {
          s.slot[first] = s.reg[insn.src];
        } else if (first >= 0 && last >= 0) {
          for (int sl = first; sl <= last; sl++) {
            s.slot[sl] = 0;
          }
        }
      } else if (insn.IsAtomic()) {
        if (insn.imm == BPF_ATOMIC_CMPXCHG) {
          s.reg[R0] = 0;
        } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
          s.reg[insn.src] = 0;
        }
      } else if (insn.IsExit() && findings != nullptr && !VerifierUnreached(ctx, pc)) {
        for (size_t acquire_pc : s.open) {
          findings->push_back({pc, LintSeverity::kError, "ref-leak",
                               "kernel reference acquired at insn " +
                                   std::to_string(acquire_pc) +
                                   " may still be held on this exit path"});
        }
      }
    }
    return s;
  };

  // Null checks retire the acquisition on the NULL edge (succ 0 = taken).
  auto edge_state = [&](const BasicBlock& bb, const RefLeakState& exit,
                        size_t succ_index) {
    RefLeakState s = exit;
    size_t last = bb.start;
    for (size_t p = bb.start; p < bb.end; p = ctx.cfg.NextPc(p)) {
      last = p;
    }
    const Insn& term = prog.insns[last];
    if (term.IsCondJmp() && term.SrcField() == BPF_K && term.imm == 0 &&
        term.Class() == BPF_JMP) {
      size_t tag = s.reg[term.dst];
      uint8_t op = term.AluOpField();
      if (tag != 0 &&
          ((op == BPF_JEQ && succ_index == 0) || (op == BPF_JNE && succ_index == 1))) {
        RefLeakKill(s, tag);  // this edge is the handle == NULL branch
      }
    }
    return s;
  };

  std::deque<size_t> work(ctx.cfg.rpo().begin(), ctx.cfg.rpo().end());
  while (!work.empty()) {
    size_t b = work.front();
    work.pop_front();
    if (!entry[b].known) {
      continue;
    }
    const BasicBlock& bb = ctx.cfg.blocks()[b];
    RefLeakState exit = transfer(bb, entry[b], nullptr);
    for (size_t i = 0; i < bb.succs.size(); i++) {
      if (MeetRefLeakState(entry[bb.succs[i]], edge_state(bb, exit, i))) {
        work.push_back(bb.succs[i]);
      }
    }
  }
  for (size_t b : ctx.cfg.rpo()) {
    if (entry[b].known) {
      transfer(ctx.cfg.blocks()[b], entry[b], &out);
    }
  }
}

// ---- Pass: helper-contract --------------------------------------------------
//
// Flags helper calls whose constant-folded arguments provably violate the
// helper's contract or can never succeed at runtime. Anything not statically
// known is left to the verifier's path-sensitive typing.

void HelperContractPass(const LintContext& ctx, std::vector<Finding>& out) {
  const Program& prog = ctx.program;
  for (const BasicBlock& bb : ctx.cfg.blocks()) {
    if (!ctx.cfg.Reachable(bb.id)) {
      continue;
    }
    AbsRegs regs;
    for (size_t pc = bb.start; pc < bb.end; pc = ctx.cfg.NextPc(pc)) {
      const Insn& insn = prog.insns[pc];
      if (insn.IsCall()) {
        const HelperContract* contract = FindHelperContract(insn.imm);
        if (contract != nullptr) {
          for (int i = 0; i < 5; i++) {
            if (contract->args[i] != HelperArgType::kMemSize) {
              continue;
            }
            const AbsVal& v = regs.r[R1 + i];
            if (v.kind == AbsVal::kConst && (v.v == 0 || v.v > kStackSize)) {
              out.push_back({pc, LintSeverity::kError, "helper-contract",
                             std::string(contract->name) + ": size argument " +
                                 std::to_string(v.v) +
                                 " is outside the valid stack-memory range [1, " +
                                 std::to_string(kStackSize) + "]"});
            }
          }
          const AbsVal& arg1 = regs.r[R1];
          switch (contract->id) {
            case kHelperKflexMalloc:
              if (arg1.kind == AbsVal::kConst) {
                if (arg1.v == 0) {
                  out.push_back({pc, LintSeverity::kWarning, "helper-contract",
                                 "kflex_malloc(0): zero-byte allocation"});
                } else if (prog.heap_size != 0 && arg1.v > prog.heap_size) {
                  out.push_back({pc, LintSeverity::kError, "helper-contract",
                                 "kflex_malloc(" + std::to_string(arg1.v) +
                                     ") can never succeed: request exceeds the " +
                                     std::to_string(prog.heap_size) +
                                     "-byte extension heap"});
                }
              }
              break;
            case kHelperKflexFree:
              if (arg1.kind == AbsVal::kConst && arg1.v == 0) {
                out.push_back({pc, LintSeverity::kWarning, "helper-contract",
                               "kflex_free(NULL) has no effect"});
              }
              break;
            case kHelperKflexSpinLock:
            case kHelperKflexSpinUnlock:
              if (arg1.kind == AbsVal::kHeapOff) {
                if (arg1.v % 8 != 0) {
                  out.push_back({pc, LintSeverity::kWarning, "helper-contract",
                                 std::string(contract->name) +
                                     ": lock address at heap offset " +
                                     std::to_string(arg1.v) + " is not 8-byte aligned"});
                }
                if (prog.heap_size != 0 && arg1.v + 8 > prog.heap_size) {
                  out.push_back({pc, LintSeverity::kError, "helper-contract",
                                 std::string(contract->name) + ": lock at heap offset " +
                                     std::to_string(arg1.v) +
                                     " lies outside the extension heap"});
                }
              }
              break;
            default:
              break;
          }
        }
      }
      AbsStep(prog, pc, regs);
    }
  }
}

// ---- Pass: redundant-guard --------------------------------------------------
//
// Surfaces where the bytecode optimizer's dominated-guard elimination fires:
// a guarded heap access whose base register was already sanitized on every
// path, with no intervening redefinition, call, or cancellation point. These
// are notes, not defects — the optimizer removes the redundancy
// automatically — but they show the developer which access patterns pay for
// repeated SANITIZEs (e.g. re-deriving a pointer instead of reusing it).
// Requires verifier facts; silent on unverified programs.

void RedundantGuardPass(const LintContext& ctx, std::vector<Finding>& out) {
  if (ctx.analysis == nullptr) {
    return;
  }
  StatusOr<OptResult> opt = Optimize(ctx.program, *ctx.analysis);
  if (!opt.ok()) {
    return;
  }
  for (size_t pc = 0; pc < opt->plan.dominated.size(); pc++) {
    if (!opt->plan.dominated[pc]) {
      continue;
    }
    const Insn& insn = ctx.program.insns[pc];
    int base = insn.IsLoad() ? insn.src : insn.dst;
    out.push_back({pc, LintSeverity::kNote, "redundant-guard",
                   "SFI guard on " + RegName(base) +
                       " is dominated by an earlier guard on the same base; the "
                       "optimizer reuses the sanitized address"});
  }
}

// ---- Passes: contract-release / contract-check ------------------------------
//
// Front ends for the path-sensitive contract audit (audit.h). Unlike the
// other passes these are deliberately speculative: the DFS carries no value
// ranges, so a finding may sit on a path the verifier proved infeasible.
// Each finding carries a path witness, and `kflex-lint --audit` distills and
// chaos-replays it to settle CONFIRMED vs PRUNED. Socket findings reproduce
// the ref-leak message byte for byte so RunLint's deduplication collapses
// the overlap.

void ContractAuditFindings(const LintContext& ctx, ObligationKind want,
                           std::vector<Finding>& out) {
  std::vector<AuditFinding> findings =
      RunContractAudit(ctx.program, ctx.cfg, ctx.analysis);
  for (AuditFinding& f : findings) {
    if (f.kind != want) {
      continue;
    }
    bool release = want == ObligationKind::kRelease;
    out.push_back({f.sink_pc, release ? LintSeverity::kError : LintSeverity::kWarning,
                   release ? "contract-release" : "contract-check",
                   std::move(f.message)});
  }
}

void ContractReleasePass(const LintContext& ctx, std::vector<Finding>& out) {
  ContractAuditFindings(ctx, ObligationKind::kRelease, out);
}

void ContractCheckPass(const LintContext& ctx, std::vector<Finding>& out) {
  ContractAuditFindings(ctx, ObligationKind::kCheck, out);
}

// ---- Passes: lockset / atomicity / lock-cycle -------------------------------
//
// Front ends for the concurrency-safety analysis (concurrency.h) that backs
// the shard-safety certificate. Severity mapping (docs/concurrency.md):
// an unprotected or non-atomic-RMW access to a *map value* is an error —
// maps are shared across extensions and CPUs today, so the race is real. The
// same pattern on the *extension heap* is NOT a lint finding: the heap is
// only shared with user space and with future concurrent invocations of the
// same extension, so an unlocked heap access merely downgrades the
// certificate to serial-only (ConcurrencyReport, `kflex_run
// --concurrency-report`) and the shipped single-threaded examples stay
// lint-clean, preserving the zero-false-positive contract. A
// lock-acquisition cycle is a warning: a deadlock needs the cross-order
// paths to actually interleave.

void ConcurrencyFindingsFor(const LintContext& ctx,
                            std::initializer_list<ConcurrencyFinding::Kind> kinds,
                            const char* pass, std::vector<Finding>& out) {
  ConcurrencyReport report = AnalyzeConcurrency(ctx.program, ctx.cfg, ctx.analysis);
  for (ConcurrencyFinding& f : report.findings) {
    bool wanted = false;
    for (ConcurrencyFinding::Kind k : kinds) {
      wanted |= f.kind == k;
    }
    if (!wanted) {
      continue;
    }
    LintSeverity severity;
    switch (f.kind) {
      case ConcurrencyFinding::Kind::kUnlockedMapAccess:
      case ConcurrencyFinding::Kind::kNonAtomicMapRmw:
        severity = LintSeverity::kError;
        break;
      case ConcurrencyFinding::Kind::kLockCycle:
        severity = LintSeverity::kWarning;
        break;
      default:
        severity = LintSeverity::kNote;
        break;
    }
    out.push_back({f.pc, severity, pass, std::move(f.message), std::move(f.path)});
  }
}

void LocksetPass(const LintContext& ctx, std::vector<Finding>& out) {
  ConcurrencyFindingsFor(ctx, {ConcurrencyFinding::Kind::kUnlockedMapAccess}, "lockset", out);
}

void AtomicityPass(const LintContext& ctx, std::vector<Finding>& out) {
  ConcurrencyFindingsFor(ctx, {ConcurrencyFinding::Kind::kNonAtomicMapRmw}, "atomicity", out);
}

// Generalizes the pairwise lock-order inversion check: build the full
// acquisition graph (with lock identities carried ACROSS blocks, which the
// block-local lock-order pass cannot see) and report every elementary
// cycle, each edge carrying a pc+path witness.
void LockCyclePass(const LintContext& ctx, std::vector<Finding>& out) {
  ConcurrencyReport report = AnalyzeConcurrency(ctx.program, ctx.cfg, ctx.analysis);
  if (report.edges.empty()) {
    return;
  }
  LockOrderGraph graph;
  graph.AddEdges(ctx.program.name.empty() ? "program" : ctx.program.name, report.edges);
  for (const LockOrderGraph::Cycle& cycle : graph.FindCycles()) {
    const LockOrderEdge& first = cycle.edges.front().edge;
    out.push_back({first.pc, LintSeverity::kWarning, "lock-cycle", cycle.Describe(),
                   first.path});
  }
}

// ---- Registry ---------------------------------------------------------------

std::vector<LintPass>& MutablePasses() {
  static std::vector<LintPass>* passes = new std::vector<LintPass>{
      {"dead-code", "dead stores and unreachable basic blocks", DeadCodePass},
      {"lock-order", "lock-order inversions and re-acquisition deadlocks", LockOrderPass},
      {"ref-leak", "kernel references that may leak on an exit path", RefLeakPass},
      {"helper-contract", "helper calls with provably invalid constant arguments",
       HelperContractPass},
      {"redundant-guard", "SFI guards dominated by an earlier guard on the same base",
       RedundantGuardPass},
      {"contract-release", "paths where an acquired resource may miss its release helper",
       ContractReleasePass},
      {"contract-check", "nullable helper results dereferenced without a NULL check",
       ContractCheckPass},
      {"lockset", "map-value accesses reachable with an empty lockset", LocksetPass},
      {"atomicity", "non-atomic unlocked read-modify-write of map values", AtomicityPass},
      {"lock-cycle", "cycles in the static lock-acquisition graph", LockCyclePass},
  };
  return *passes;
}

}  // namespace

const std::vector<LintPass>& LintPasses() { return MutablePasses(); }

bool RegisterLintPass(const LintPass& pass) {
  for (const LintPass& existing : MutablePasses()) {
    if (std::string(existing.name) == pass.name) {
      return false;
    }
  }
  MutablePasses().push_back(pass);
  return true;
}

StatusOr<std::vector<Finding>> RunLint(const Program& program, const Analysis* analysis) {
  return RunLint(program, analysis, LintRunOptions{});
}

StatusOr<std::vector<Finding>> RunLint(const Program& program, const Analysis* analysis,
                                       const LintRunOptions& options) {
  std::vector<const LintPass*> selected;
  for (const LintPass& pass : LintPasses()) {
    if (options.passes.empty() ||
        std::find(options.passes.begin(), options.passes.end(), pass.name) !=
            options.passes.end()) {
      selected.push_back(&pass);
    }
  }
  for (const std::string& name : options.passes) {
    bool known = false;
    for (const LintPass& pass : LintPasses()) {
      if (name == pass.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return InvalidArgument("unknown lint pass: " + name);
    }
  }
  auto cfg = Cfg::Build(program);
  if (!cfg.ok()) {
    return cfg.status();
  }
  Liveness liveness = Liveness::Compute(program, *cfg, analysis);
  LintContext ctx{program, *cfg, liveness, analysis};
  std::vector<Finding> findings;
  for (const LintPass* pass : selected) {
    pass->run(ctx, findings);
  }
  // Passes ran in registration order, so keeping the first occurrence of a
  // duplicated (pc, severity, message) attributes it to the earliest
  // registered pass (e.g. ref-leak over contract-release).
  std::set<std::tuple<size_t, int, std::string>> seen;
  std::vector<Finding> unique;
  unique.reserve(findings.size());
  for (Finding& f : findings) {
    if (seen.insert({f.pc, static_cast<int>(f.severity), f.message}).second) {
      unique.push_back(std::move(f));
    }
  }
  findings = std::move(unique);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.pc, a.pass, a.message) < std::tie(b.pc, b.pass, b.message);
  });
  return findings;
}

}  // namespace kflex
