// Contract audit: path-sensitive static analysis of helper-contract
// obligations, with per-finding path witnesses and a distiller that lowers
// each witness into a minimal standalone program the chaos harness can
// replay (src/audit/replay.h).
//
// The shape is ACHyb's hybrid analysis: the static pass deliberately
// explores paths the symbolic verifier prunes as infeasible (it carries no
// value ranges, only lock identities and handle locations), so every
// resource-discipline violation that *could* be a path is flagged — and the
// dynamic replay then confirms real violations or prunes infeasible ones.
//
// Obligations come from the declarative contract table derived from the
// helper catalog (helper_ids.h):
//  * kRelease — a helper that acquires a kernel resource (socket reference,
//    spin lock) obligates every path to reach the releasing helper before
//    the hook exit;
//  * kCheck — a helper returning a nullable pointer (map lookup, heap
//    malloc) obligates a NULL check before the result is dereferenced.
#ifndef SRC_VERIFIER_AUDIT_H_
#define SRC_VERIFIER_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/helper_ids.h"
#include "src/ebpf/program.h"
#include "src/verifier/analysis.h"
#include "src/verifier/cfg.h"

namespace kflex {

enum class ObligationKind : uint8_t {
  kRelease = 0,  // acquired resource must reach its release helper
  kCheck = 1,    // nullable result must be NULL-checked before dereference
};

const char* ObligationKindName(ObligationKind kind);

// One declarative obligation clause of the contract table.
struct ContractClause {
  int32_t helper = 0;  // helper whose call creates the obligation
  const char* helper_name = "";
  ObligationKind kind = ObligationKind::kRelease;
  // kRelease: the resource acquired and the helper that discharges it.
  ResourceKind resource = ResourceKind::kNone;
  int32_t release_helper = 0;
  // kCheck: the nullable return type that must be checked.
  HelperRetType ret = HelperRetType::kVoid;
};

// The contract table, derived once from AllHelperContracts(): each acquiring
// helper contributes a kRelease clause; each helper returning a nullable
// pointer *without* acquiring contributes a kCheck clause (an acquiring
// helper's NULL result is already handled by the release obligation's
// NULL-edge retirement, mirroring the verifier).
const std::vector<ContractClause>& HelperContractTable();

// One step of a path witness: the pc executed, and — when the instruction is
// a conditional jump — which edge the path took (0 = jump taken, 1 =
// fall-through, -1 = not a conditional).
struct WitnessStep {
  size_t pc = 0;
  int branch = -1;

  bool operator==(const WitnessStep& other) const = default;
};

// A resource whose obligation is open at some point of the witness path,
// with enough location information for the distiller to synthesize a
// release when execution leaves the path.
struct OpenResource {
  ResourceKind kind = ResourceKind::kNone;
  // Locks: constant heap-offset identity, when the audit could track it.
  uint64_t lock_off = 0;
  bool lock_off_known = false;
  // Sockets: where the handle lives at this point (-1/-1 = not locatable).
  int reg = -1;
  int stack_slot = -1;
};

// What must be released if execution diverges from the witness path at the
// conditional recorded at path[step_index].
struct BranchCleanup {
  size_t step_index = 0;
  std::vector<OpenResource> open;
};

struct AuditFinding {
  ObligationKind kind = ObligationKind::kRelease;
  int32_t helper = 0;  // helper whose obligation is unmet
  std::string helper_name;
  size_t source_pc = 0;  // call pc that created the obligation
  size_t sink_pc = 0;    // exit pc (kRelease) or dereference pc (kCheck)
  ResourceKind resource = ResourceKind::kNone;
  uint64_t lock_off = 0;
  bool lock_off_known = false;
  std::string message;
  // Entry through sink; every executed instruction start pc, in order.
  std::vector<WitnessStep> path;
  // One entry per conditional on the path, in step order.
  std::vector<BranchCleanup> cleanups;
  // Resources still open when the path reaches the sink (used by the
  // distiller to exit cleanly after a kCheck dereference).
  std::vector<OpenResource> open_at_sink;
};

struct AuditOptions {
  size_t max_paths = 4096;      // DFS paths explored before giving up
  size_t max_path_len = 512;    // steps per path
  size_t max_findings = 64;
  size_t max_block_visits = 2;  // per-path visits of one block (loop bound)
};

// Runs the path-sensitive audit. `analysis` (the verifier's output, may be
// null for rejected programs) suppresses obligations at instructions the
// symbolic execution proved unreachable. Findings are deduplicated by
// (kind, helper, source_pc, sink_pc), each carrying the first witness path
// found.
std::vector<AuditFinding> RunContractAudit(const Program& program, const Cfg& cfg,
                                           const Analysis* analysis,
                                           const AuditOptions& opts = {});

// A distilled witness: a standalone program that executes exactly the
// witness path when every branch resolves the way the witness recorded, and
// otherwise *bails out* through a synthesized stub releasing everything held
// at the departure point. Conditional branches are preserved (not
// linearized), so the runtime — possibly steered by injected helper faults —
// decides whether the violating path is actually taken: an infeasible
// witness always bails clean and replays PRUNED.
struct DistilledWitness {
  Program program;
  // Distilled slot index -> original program pc; SIZE_MAX for synthesized
  // bail/cleanup instructions.
  std::vector<size_t> orig_pc;
};

StatusOr<DistilledWitness> DistillWitness(const Program& program,
                                          const AuditFinding& finding);

}  // namespace kflex

#endif  // SRC_VERIFIER_AUDIT_H_
