#include "src/verifier/audit.h"

#include <algorithm>
#include <array>
#include <set>
#include <tuple>
#include <utility>

#include "src/verifier/absval.h"
#include "src/verifier/dataflow.h"

namespace kflex {

const char* ObligationKindName(ObligationKind kind) {
  switch (kind) {
    case ObligationKind::kRelease:
      return "release";
    case ObligationKind::kCheck:
      return "check";
  }
  return "unknown";
}

namespace {

bool IsNullableRet(HelperRetType ret) {
  return ret == HelperRetType::kMapValueOrNull || ret == HelperRetType::kHeapPtrOrNull ||
         ret == HelperRetType::kSocketOrNull;
}

std::vector<ContractClause> DeriveContractTable() {
  std::vector<ContractClause> table;
  for (const HelperContract& contract : AllHelperContracts()) {
    ContractClause clause;
    clause.helper = contract.id;
    clause.helper_name = contract.name;
    if (contract.acquires != ResourceKind::kNone) {
      // Acquisition dominates: the NULL-edge retirement of the release
      // obligation already covers the nullable return (a NULL lookup never
      // acquired anything), so no separate check clause is derived.
      clause.kind = ObligationKind::kRelease;
      clause.resource = contract.acquires;
      clause.release_helper = contract.destructor;
      table.push_back(clause);
    } else if (IsNullableRet(contract.ret)) {
      clause.kind = ObligationKind::kCheck;
      clause.ret = contract.ret;
      table.push_back(clause);
    }
  }
  return table;
}

const ContractClause* FindClause(int32_t helper) {
  for (const ContractClause& clause : HelperContractTable()) {
    if (clause.helper == helper) {
      return &clause;
    }
  }
  return nullptr;
}

// ---- The path-sensitive DFS -------------------------------------------------

// One open kRelease obligation on the current path.
struct Obligation {
  const ContractClause* clause = nullptr;
  size_t acquire_pc = 0;
  uint64_t lock_off = 0;
  bool lock_off_known = false;
};

// An unchecked nullable helper result flowing through a register.
struct CheckTag {
  const ContractClause* clause = nullptr;
  size_t acquire_pc = 0;
};

struct PathState {
  AbsRegs regs;
  // Socket handle tags: acquire pc + 1; 0 = no handle.
  std::array<size_t, kNumRegs> ref_reg{};
  std::array<size_t, kStackSlotCount> ref_slot{};
  std::array<CheckTag, kNumRegs> chk{};
  std::vector<Obligation> open;
};

class AuditDfs {
 public:
  AuditDfs(const Program& prog, const Cfg& cfg, const Analysis* analysis,
           const AuditOptions& opts, std::vector<AuditFinding>& out)
      : prog_(prog), cfg_(cfg), analysis_(analysis), opts_(opts), out_(out),
        visits_(cfg.num_blocks(), 0) {}

  void Run() {
    if (prog_.insns.empty()) {
      return;
    }
    WalkBlock(cfg_.BlockOf(0), PathState{});
  }

 private:
  bool VerifierUnreached(size_t pc) const {
    return analysis_ != nullptr && pc < analysis_->insn_visited.size() &&
           analysis_->insn_visited[pc] == 0;
  }

  void CountPath() {
    if (++paths_explored_ >= opts_.max_paths) {
      stop_ = true;
    }
  }

  static void KillSocket(PathState& st, size_t tag) {
    st.open.erase(std::remove_if(st.open.begin(), st.open.end(),
                                 [&](const Obligation& o) {
                                   return o.clause->resource == ResourceKind::kSocket &&
                                          o.acquire_pc + 1 == tag;
                                 }),
                  st.open.end());
    for (size_t& t : st.ref_reg) {
      if (t == tag) {
        t = 0;
      }
    }
    for (size_t& t : st.ref_slot) {
      if (t == tag) {
        t = 0;
      }
    }
  }

  static void RetireCheck(PathState& st, const CheckTag& tag) {
    for (CheckTag& t : st.chk) {
      if (t.clause == tag.clause && t.acquire_pc == tag.acquire_pc) {
        t = CheckTag{};
      }
    }
  }

  std::vector<OpenResource> Snapshot(const PathState& st) const {
    std::vector<OpenResource> out;
    for (const Obligation& o : st.open) {
      OpenResource r;
      r.kind = o.clause->resource;
      if (r.kind == ResourceKind::kLock) {
        r.lock_off = o.lock_off;
        r.lock_off_known = o.lock_off_known;
      } else {
        size_t tag = o.acquire_pc + 1;
        for (int i = 0; i < kNumRegs && r.reg < 0; i++) {
          if (st.ref_reg[static_cast<size_t>(i)] == tag) {
            r.reg = i;
          }
        }
        for (int s = 0; s < kStackSlotCount && r.reg < 0 && r.stack_slot < 0; s++) {
          if (st.ref_slot[static_cast<size_t>(s)] == tag) {
            r.stack_slot = s;
          }
        }
      }
      out.push_back(r);
    }
    return out;
  }

  void Emit(AuditFinding finding, const PathState& st) {
    auto key = std::make_tuple(static_cast<int>(finding.kind), finding.helper,
                               finding.source_pc, finding.sink_pc);
    if (!seen_.insert(key).second) {
      return;
    }
    finding.path = path_;
    finding.cleanups = cleanups_;
    finding.open_at_sink = Snapshot(st);
    out_.push_back(std::move(finding));
    if (out_.size() >= opts_.max_findings) {
      stop_ = true;
    }
  }

  void EmitCheckFinding(PathState& st, size_t pc, uint8_t base_reg) {
    CheckTag tag = st.chk[base_reg];
    // One finding per unchecked result per path: retire before emitting so a
    // chain of dereferences reports once.
    RetireCheck(st, tag);
    AuditFinding f;
    f.kind = ObligationKind::kCheck;
    f.helper = tag.clause->helper;
    f.helper_name = tag.clause->helper_name;
    f.source_pc = tag.acquire_pc;
    f.sink_pc = pc;
    f.message = std::string(tag.clause->helper_name) + " result (insn " +
                std::to_string(tag.acquire_pc) + ") may be NULL when dereferenced at insn " +
                std::to_string(pc) + "; add a null check";
    Emit(std::move(f), st);
  }

  void EmitExitFindings(const PathState& st, size_t pc) {
    for (const Obligation& o : st.open) {
      AuditFinding f;
      f.kind = ObligationKind::kRelease;
      f.helper = o.clause->helper;
      f.helper_name = o.clause->helper_name;
      f.source_pc = o.acquire_pc;
      f.sink_pc = pc;
      f.resource = o.clause->resource;
      f.lock_off = o.lock_off;
      f.lock_off_known = o.lock_off_known;
      if (o.clause->resource == ResourceKind::kSocket) {
        // Byte-identical to the ref-leak pass so RunLint's deduplication
        // collapses the overlap.
        f.message = "kernel reference acquired at insn " + std::to_string(o.acquire_pc) +
                    " may still be held on this exit path";
      } else if (o.lock_off_known) {
        f.message = "lock at heap offset " + std::to_string(o.lock_off) +
                    " acquired at insn " + std::to_string(o.acquire_pc) +
                    " may still be held on this exit path";
      } else {
        f.message = "lock acquired at insn " + std::to_string(o.acquire_pc) +
                    " may still be held on this exit path";
      }
      Emit(std::move(f), st);
      if (stop_) {
        return;
      }
    }
  }

  // Applies a helper call's contract effects. Runs before AbsStep so the
  // pre-call argument registers are still visible.
  void HandleCall(PathState& st, size_t pc) {
    const Insn& insn = prog_.insns[pc];
    const HelperContract* contract = FindHelperContract(insn.imm);
    if (contract != nullptr && contract->releases == ResourceKind::kSocket) {
      size_t tag = st.ref_reg[R1];
      if (tag != 0) {
        KillSocket(st, tag);
      } else {
        // Released an untracked handle: conservatively discharge every open
        // socket obligation (mirrors the ref-leak pass).
        st.open.erase(std::remove_if(st.open.begin(), st.open.end(),
                                     [](const Obligation& o) {
                                       return o.clause->resource == ResourceKind::kSocket;
                                     }),
                      st.open.end());
        st.ref_reg.fill(0);
        st.ref_slot.fill(0);
      }
    }
    if (contract != nullptr && contract->releases == ResourceKind::kLock) {
      if (st.regs.r[R1].kind == AbsVal::kHeapOff) {
        uint64_t off = st.regs.r[R1].v;
        st.open.erase(std::remove_if(st.open.begin(), st.open.end(),
                                     [&](const Obligation& o) {
                                       return o.clause->resource == ResourceKind::kLock &&
                                              o.lock_off_known && o.lock_off == off;
                                     }),
                      st.open.end());
      } else {
        // Unlock through an untracked address: discharge every lock.
        st.open.erase(std::remove_if(st.open.begin(), st.open.end(),
                                     [](const Obligation& o) {
                                       return o.clause->resource == ResourceKind::kLock;
                                     }),
                      st.open.end());
      }
    }
    for (int r = R0; r <= R5; r++) {
      st.ref_reg[static_cast<size_t>(r)] = 0;
      st.chk[static_cast<size_t>(r)] = CheckTag{};
    }
    const ContractClause* clause = FindClause(insn.imm);
    if (clause != nullptr && !VerifierUnreached(pc)) {
      if (clause->kind == ObligationKind::kRelease) {
        Obligation o;
        o.clause = clause;
        o.acquire_pc = pc;
        if (clause->resource == ResourceKind::kLock &&
            st.regs.r[R1].kind == AbsVal::kHeapOff) {
          o.lock_off = st.regs.r[R1].v;
          o.lock_off_known = true;
        }
        st.open.push_back(o);
        if (clause->resource == ResourceKind::kSocket) {
          st.ref_reg[R0] = pc + 1;
        }
      } else {
        st.chk[R0] = CheckTag{clause, pc};
      }
    }
  }

  // Tag tracking + dereference checks for non-control instructions.
  void HandleDataInsn(PathState& st, size_t pc) {
    const Insn& insn = prog_.insns[pc];
    if (insn.IsAlu()) {
      if (insn.AluOpField() == BPF_MOV && insn.SrcField() == BPF_X &&
          insn.Class() == BPF_ALU64) {
        st.ref_reg[insn.dst] = st.ref_reg[insn.src];
        st.chk[insn.dst] = st.chk[insn.src];
      } else {
        st.ref_reg[insn.dst] = 0;
        st.chk[insn.dst] = CheckTag{};
      }
    } else if (insn.IsLdImm64()) {
      st.ref_reg[insn.dst] = 0;
      st.chk[insn.dst] = CheckTag{};
    } else if (insn.IsLoad()) {
      if (insn.src != R10 && st.chk[insn.src].clause != nullptr) {
        EmitCheckFinding(st, pc, insn.src);
      }
      int slot = -1;
      if (insn.src == R10 && insn.AccessSize() == 8 && (insn.off + kStackSize) % 8 == 0) {
        slot = Liveness::SlotForOffset(insn.off);
      }
      st.ref_reg[insn.dst] = slot >= 0 ? st.ref_slot[static_cast<size_t>(slot)] : 0;
      st.chk[insn.dst] = CheckTag{};
    } else if (insn.IsStore()) {
      if (insn.dst != R10 && st.chk[insn.dst].clause != nullptr) {
        EmitCheckFinding(st, pc, insn.dst);
      }
      if (insn.dst == R10) {
        int first = Liveness::SlotForOffset(insn.off);
        int last = Liveness::SlotForOffset(insn.off + insn.AccessSize() - 1);
        bool full = insn.AccessSize() == 8 && (insn.off + kStackSize) % 8 == 0;
        if (full && first >= 0 && insn.Class() == BPF_STX) {
          st.ref_slot[static_cast<size_t>(first)] = st.ref_reg[insn.src];
        } else if (first >= 0 && last >= 0) {
          for (int s = first; s <= last; s++) {
            st.ref_slot[static_cast<size_t>(s)] = 0;
          }
        }
      }
    } else if (insn.IsAtomic()) {
      if (insn.dst != R10 && st.chk[insn.dst].clause != nullptr) {
        EmitCheckFinding(st, pc, insn.dst);
      }
      if (insn.imm == BPF_ATOMIC_CMPXCHG) {
        st.ref_reg[R0] = 0;
        st.chk[R0] = CheckTag{};
      } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
        st.ref_reg[insn.src] = 0;
        st.chk[insn.src] = CheckTag{};
      }
    }
  }

  // Retirements implied by taking one edge of a JMP64 null check (imm 0,
  // JEQ/JNE). edge 0 = jump taken, edge 1 = fall-through.
  static void ApplyEdge(PathState& st, const Insn& insn, int edge) {
    if (insn.SrcField() != BPF_K || insn.imm != 0 || insn.Class() != BPF_JMP) {
      return;
    }
    uint8_t op = insn.AluOpField();
    if (op != BPF_JEQ && op != BPF_JNE) {
      return;
    }
    bool null_edge = (op == BPF_JEQ && edge == 0) || (op == BPF_JNE && edge == 1);
    size_t tag = st.ref_reg[insn.dst];
    if (tag != 0 && null_edge) {
      // The handle is NULL on this edge: the acquisition never happened.
      KillSocket(st, tag);
    }
    if (st.chk[insn.dst].clause != nullptr) {
      // Either edge of a null check discharges the check obligation.
      RetireCheck(st, st.chk[insn.dst]);
    }
  }

  void WalkBlock(size_t block, PathState st) {
    if (stop_) {
      return;
    }
    if (visits_[block] >= opts_.max_block_visits) {
      CountPath();
      return;
    }
    visits_[block]++;
    const size_t path_mark = path_.size();
    const size_t cleanup_mark = cleanups_.size();
    const BasicBlock& bb = cfg_.blocks()[block];
    bool ended = false;
    for (size_t pc = bb.start; pc < bb.end && !stop_; pc = cfg_.NextPc(pc)) {
      if (path_.size() >= opts_.max_path_len) {
        CountPath();
        ended = true;
        break;
      }
      path_.push_back({pc, -1});
      const Insn& insn = prog_.insns[pc];
      if (insn.IsExit()) {
        if (!VerifierUnreached(pc)) {
          EmitExitFindings(st, pc);
        }
        CountPath();
        ended = true;
        break;
      }
      if (insn.IsCondJmp()) {
        cleanups_.push_back({path_.size() - 1, Snapshot(st)});
        size_t taken = bb.succs[0];
        size_t fall = bb.succs.size() > 1 ? bb.succs[1] : bb.succs[0];
        for (int edge = 0; edge < 2 && !stop_; edge++) {
          path_.back().branch = edge;
          PathState next = st;
          ApplyEdge(next, insn, edge);
          WalkBlock(edge == 0 ? taken : fall, std::move(next));
        }
        ended = true;
        break;
      }
      if (insn.IsUncondJmp()) {
        WalkBlock(bb.succs[0], std::move(st));
        ended = true;
        break;
      }
      if (insn.IsCall()) {
        HandleCall(st, pc);
      } else {
        HandleDataInsn(st, pc);
      }
      AbsStep(prog_, pc, st.regs);
    }
    if (!ended) {
      if (!bb.succs.empty()) {
        WalkBlock(bb.succs[0], std::move(st));
      } else {
        CountPath();
      }
    }
    path_.resize(path_mark);
    cleanups_.resize(cleanup_mark);
    visits_[block]--;
  }

  const Program& prog_;
  const Cfg& cfg_;
  const Analysis* analysis_;
  const AuditOptions& opts_;
  std::vector<AuditFinding>& out_;

  std::vector<WitnessStep> path_;
  std::vector<BranchCleanup> cleanups_;
  std::vector<uint8_t> visits_;
  size_t paths_explored_ = 0;
  bool stop_ = false;
  std::set<std::tuple<int, int32_t, size_t, size_t>> seen_;
};

}  // namespace

const std::vector<ContractClause>& HelperContractTable() {
  static const std::vector<ContractClause>* table =
      new std::vector<ContractClause>(DeriveContractTable());
  return *table;
}

std::vector<AuditFinding> RunContractAudit(const Program& program, const Cfg& cfg,
                                           const Analysis* analysis,
                                           const AuditOptions& opts) {
  std::vector<AuditFinding> findings;
  AuditDfs dfs(program, cfg, analysis, opts, findings);
  dfs.Run();
  std::sort(findings.begin(), findings.end(),
            [](const AuditFinding& a, const AuditFinding& b) {
              return std::tie(a.sink_pc, a.source_pc, a.helper) <
                     std::tie(b.sink_pc, b.source_pc, b.helper);
            });
  return findings;
}

// ---- The distiller ----------------------------------------------------------

namespace {

void EmitCleanup(const std::vector<OpenResource>& open, std::vector<Insn>& out,
                 std::vector<size_t>& orig) {
  for (const OpenResource& r : open) {
    if (r.kind == ResourceKind::kLock) {
      if (!r.lock_off_known) {
        continue;  // identity untracked: nothing safe to synthesize
      }
      out.push_back(LdImm64Insn(R1, r.lock_off, kPseudoHeapVar));
      orig.push_back(SIZE_MAX);
      out.push_back(LdImm64HiInsn(r.lock_off));
      orig.push_back(SIZE_MAX);
      out.push_back(CallInsn(kHelperKflexSpinUnlock));
      orig.push_back(SIZE_MAX);
    } else if (r.kind == ResourceKind::kSocket) {
      if (r.reg >= 0) {
        if (r.reg != R1) {
          out.push_back(MovRegInsn(R1, static_cast<Reg>(r.reg)));
          orig.push_back(SIZE_MAX);
        }
      } else if (r.stack_slot >= 0) {
        out.push_back(LdxInsn(BPF_DW, R1, R10,
                              static_cast<int16_t>(r.stack_slot * 8 - kStackSize)));
        orig.push_back(SIZE_MAX);
      } else {
        continue;  // handle location untracked
      }
      // The handle may be NULL before its null check: only release when set.
      out.push_back(JmpImmInsn(BPF_JEQ, R1, 0, 1));
      orig.push_back(SIZE_MAX);
      out.push_back(CallInsn(kHelperSkRelease));
      orig.push_back(SIZE_MAX);
    }
  }
}

}  // namespace

StatusOr<DistilledWitness> DistillWitness(const Program& program,
                                          const AuditFinding& finding) {
  if (finding.path.empty()) {
    return InvalidArgument("witness path is empty");
  }
  for (const WitnessStep& step : finding.path) {
    if (step.pc >= program.insns.size()) {
      return InvalidArgument("witness step pc out of range");
    }
  }

  DistilledWitness dw;
  std::vector<Insn>& out = dw.program.insns;
  std::vector<size_t>& orig = dw.orig_pc;

  // Branch instructions (and the JA companions of taken branches) that must
  // be retargeted at their bail stub once stub addresses are known.
  struct Patch {
    size_t insn_index;
    size_t cleanup_index;
  };
  std::vector<Patch> patches;

  size_t cleanup_cursor = 0;
  for (size_t si = 0; si < finding.path.size(); si++) {
    const WitnessStep& step = finding.path[si];
    const Insn& insn = program.insns[step.pc];
    if (insn.IsCondJmp()) {
      while (cleanup_cursor < finding.cleanups.size() &&
             finding.cleanups[cleanup_cursor].step_index < si) {
        cleanup_cursor++;
      }
      if (cleanup_cursor >= finding.cleanups.size() ||
          finding.cleanups[cleanup_cursor].step_index != si ||
          (step.branch != 0 && step.branch != 1)) {
        return InvalidArgument("witness branch without cleanup record");
      }
      if (step.branch == 0) {
        // Path takes the jump: keep the condition, hop over a JA to the bail
        // stub so a runtime fall-through leaves the path cleanly.
        Insn b = insn;
        b.off = 1;
        out.push_back(b);
        orig.push_back(step.pc);
        patches.push_back({out.size(), cleanup_cursor});
        out.push_back(JmpAlwaysInsn(0));
        orig.push_back(SIZE_MAX);
      } else {
        // Path falls through: the taken edge becomes the bail edge.
        Insn b = insn;
        b.off = 0;
        patches.push_back({out.size(), cleanup_cursor});
        out.push_back(b);
        orig.push_back(step.pc);
      }
      cleanup_cursor++;
    } else if (insn.IsUncondJmp()) {
      // Linearized away: the successor is the next path step.
    } else if (insn.IsLdImm64()) {
      out.push_back(insn);
      orig.push_back(step.pc);
      out.push_back(program.insns[step.pc + 1]);
      orig.push_back(step.pc + 1);
    } else {
      out.push_back(insn);
      orig.push_back(step.pc);
    }
  }

  if (finding.kind == ObligationKind::kCheck) {
    // The sink is a dereference, not an exit: release whatever is still held
    // and return a neutral verdict.
    EmitCleanup(finding.open_at_sink, out, orig);
    out.push_back(MovImmInsn(R0, 0));
    orig.push_back(SIZE_MAX);
    out.push_back(ExitInsn());
    orig.push_back(SIZE_MAX);
  } else if (out.empty() || !out.back().IsExit()) {
    return InvalidArgument("release witness does not end at an exit");
  }

  // Bail stubs, one per conditional on the path, after the terminal exit.
  std::vector<size_t> stub_start(finding.cleanups.size(), 0);
  std::vector<bool> stub_needed(finding.cleanups.size(), false);
  for (const Patch& p : patches) {
    stub_needed[p.cleanup_index] = true;
  }
  for (size_t i = 0; i < finding.cleanups.size(); i++) {
    if (!stub_needed[i]) {
      continue;
    }
    stub_start[i] = out.size();
    EmitCleanup(finding.cleanups[i].open, out, orig);
    out.push_back(MovImmInsn(R0, 0));
    orig.push_back(SIZE_MAX);
    out.push_back(ExitInsn());
    orig.push_back(SIZE_MAX);
  }
  for (const Patch& p : patches) {
    int64_t off = static_cast<int64_t>(stub_start[p.cleanup_index]) -
                  static_cast<int64_t>(p.insn_index) - 1;
    if (off < INT16_MIN || off > INT16_MAX) {
      return InvalidArgument("distilled witness exceeds branch range");
    }
    out[p.insn_index].off = static_cast<int16_t>(off);
  }

  dw.program.name = program.name.empty() ? "witness" : program.name + "-witness";
  dw.program.hook = program.hook;
  dw.program.mode = program.mode;
  dw.program.heap_size = program.heap_size;
  return dw;
}

}  // namespace kflex
