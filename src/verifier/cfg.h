// Control-flow graph over extension bytecode: basic blocks, reachability,
// reverse postorder, immediate dominators, and natural loops.
//
// This is the whole-program skeleton the dataflow solvers (dataflow.h) and
// the lint passes (lint.h) walk, and what the verifier consults to decide
// which loop back edges genuinely need cancellation points and which object
// table entries are live at a Cp (§3.2, §3.3). It is purely structural: no
// value tracking, so it can be built for any structurally valid program,
// including ones the symbolic verifier later rejects.
#ifndef SRC_VERIFIER_CFG_H_
#define SRC_VERIFIER_CFG_H_

#include <cstddef>
#include <set>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/program.h"

namespace kflex {

// Half-open pc range [start, end) of straight-line code. `end` points one
// past the last slot of the terminator (so an ld_imm64 pair contributes two
// slots but one instruction).
struct BasicBlock {
  size_t id = 0;
  size_t start = 0;
  size_t end = 0;
  std::vector<size_t> succs;  // successor block ids, jump-taken edge first
  std::vector<size_t> preds;  // predecessor block ids
};

class Cfg {
 public:
  // Requires a structurally valid program (in-range jump targets, no jump
  // into the hi slot of an ld_imm64, non-empty). Returns InvalidArgument
  // otherwise.
  static StatusOr<Cfg> Build(const Program& program);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  size_t num_blocks() const { return blocks_.size(); }

  // Block containing `pc` (valid for any slot, including ld_imm64 hi slots).
  size_t BlockOf(size_t pc) const { return block_of_[pc]; }

  // True if the block is reachable from the entry block.
  bool Reachable(size_t block) const { return reachable_[block]; }

  // True if `pc` is the first slot of an instruction (not an ld_imm64 hi
  // slot).
  bool IsInsnStart(size_t pc) const { return insn_start_[pc]; }

  // Pc of the instruction following the one at `pc` in program order
  // (pc + 2 for ld_imm64, else pc + 1).
  size_t NextPc(size_t pc) const;

  // Reachable blocks in reverse postorder (entry first).
  const std::vector<size_t>& rpo() const { return rpo_; }

  // Immediate dominator of a reachable block; the entry block is its own
  // idom. Unreachable blocks report themselves.
  size_t ImmediateDominator(size_t block) const { return idom_[block]; }

  // True if block `a` dominates block `b` (reflexive). Unreachable blocks
  // are dominated by nothing but themselves.
  bool Dominates(size_t a, size_t b) const;

  // A natural loop: the back edge's jump pc, its head block, and the set of
  // blocks in the loop (head and tail included).
  struct Loop {
    size_t back_edge_pc = 0;  // pc of the backward jump forming the edge
    size_t head = 0;          // loop header block id (dominates the tail)
    std::set<size_t> blocks;  // block ids in the natural loop
  };
  const std::vector<Loop>& loops() const { return loops_; }

  // True if `back_edge_pc` closes a natural loop (its target dominates its
  // source). Retreating edges of irreducible control flow return false and
  // must be treated conservatively by callers.
  bool IsNaturalBackEdge(size_t back_edge_pc) const;

  // True if the instruction at `pc` lies inside the natural loop closed by
  // the back edge at `back_edge_pc`. False if that edge is not a natural
  // back edge.
  bool InLoopOfBackEdge(size_t back_edge_pc, size_t pc) const;

  // Backward jump pcs (target <= source) that do NOT close a natural loop:
  // retreating edges of irreducible regions.
  const std::set<size_t>& irreducible_edge_pcs() const { return irreducible_edge_pcs_; }

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<size_t> block_of_;   // pc -> block id
  std::vector<bool> insn_start_;   // pc -> first slot of an instruction?
  std::vector<bool> reachable_;    // block id -> reachable from entry?
  std::vector<size_t> rpo_;        // reachable block ids, reverse postorder
  std::vector<size_t> rpo_index_;  // block id -> position in rpo_
  std::vector<size_t> idom_;       // block id -> immediate dominator
  std::vector<Loop> loops_;
  std::set<size_t> irreducible_edge_pcs_;
};

}  // namespace kflex

#endif  // SRC_VERIFIER_CFG_H_
