// Symbolic state tracked by the verifier: per-register abstract values,
// stack-slot contents, acquired kernel references and held locks.
//
// This mirrors (a simplified form of) the Linux verifier's bpf_reg_state /
// bpf_func_state. Scalars carry a tnum plus signed/unsigned bounds; pointers
// carry their region and an offset tracked with the same machinery, which is
// what KFlex's SFI consumes to elide guards (§3.2).
#ifndef SRC_VERIFIER_STATE_H_
#define SRC_VERIFIER_STATE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/helper_ids.h"
#include "src/ebpf/insn.h"
#include "src/verifier/tnum.h"

namespace kflex {

enum class RegType : uint8_t {
  kNotInit = 0,
  kScalar,
  kPtrToCtx,
  kPtrToStack,
  kPtrToHeap,
  kPtrToHeapOrNull,
  kConstPtrToMap,
  kPtrToMapValue,
  kPtrToMapValueOrNull,
  kPtrToSocket,
  kPtrToSocketOrNull,
};

const char* RegTypeName(RegType type);

inline bool IsPointerType(RegType type) {
  return type != RegType::kNotInit && type != RegType::kScalar;
}
inline bool IsNullablePtr(RegType type) {
  return type == RegType::kPtrToHeapOrNull || type == RegType::kPtrToMapValueOrNull ||
         type == RegType::kPtrToSocketOrNull;
}
// The non-null variant of a nullable pointer type.
RegType NonNullVariant(RegType type);

struct RegState {
  RegType type = RegType::kNotInit;
  // For scalars: the value. For pointers: the offset from the region base.
  Tnum var = Tnum::Const(0);
  int64_t smin = 0;
  int64_t smax = 0;
  uint64_t umin = 0;
  uint64_t umax = 0;
  uint32_t map_id = 0;  // kConstPtrToMap / kPtrToMapValue*
  uint32_t ref_id = 0;  // kPtrToSocket*: which acquired reference this is

  static RegState NotInit() { return RegState{}; }
  static RegState ConstScalar(uint64_t v);
  static RegState UnknownScalar();
  // Scalar known to fit in `bytes` bytes (e.g., result of a u8 load).
  static RegState ScalarMaxBytes(int bytes);
  static RegState Pointer(RegType type, int64_t off);

  bool IsConst() const { return type == RegType::kScalar && var.IsConst(); }
  uint64_t ConstValue() const { return var.value; }
  // Pointer with a statically known offset?
  bool HasConstOffset() const { return var.IsConst(); }

  // Widen scalar value / pointer offset to "completely unknown".
  void MarkOffsetUnknown();

  // Re-derive bounds from the tnum and cross-propagate signed/unsigned
  // bounds. Returns false if the state is impossible (empty range) — the
  // caller should treat the path as dead.
  bool DeduceBounds();

  // True if `other` is fully represented by *this (state subsumption).
  bool Covers(const RegState& other) const;

  // Join (least upper bound-ish) used for widening at loop heads.
  void JoinWith(const RegState& other);

  std::string ToString() const;

  bool operator==(const RegState& other) const = default;
};

// One 8-byte stack slot.
struct StackSlot {
  enum class Kind : uint8_t { kInvalid = 0, kMisc, kSpill };
  Kind kind = Kind::kInvalid;
  RegState spill;  // Valid when kind == kSpill.

  bool operator==(const StackSlot& other) const = default;
};

// An acquired kernel-owned reference (e.g., a socket from bpf_sk_lookup_udp).
struct RefInfo {
  uint32_t id = 0;
  ResourceKind kind = ResourceKind::kNone;
  HelperId destructor = static_cast<HelperId>(0);
  size_t acquire_pc = 0;

  bool operator==(const RefInfo& other) const = default;
};

// A held KFlex spin lock, identified by its constant heap offset.
struct LockInfo {
  uint64_t heap_off = 0;
  size_t acquire_pc = 0;

  bool operator==(const LockInfo& other) const = default;
};

inline constexpr int kStackSlots = kStackSize / 8;

// ---- Shared scalar transfer functions ----------------------------------------
// Used by both the verifier's symbolic execution and the bytecode optimizer's
// SCCP pass (opt.h), so the two agree bit-for-bit on eBPF ALU semantics.

// Sign-extend the 32-bit immediate (eBPF semantics for 64-bit ALU with K).
inline uint64_t SextImm(int32_t imm) {
  return static_cast<uint64_t>(static_cast<int64_t>(imm));
}

// Abstract 64-bit ALU over scalars: tnum plus signed/unsigned bounds.
RegState ScalarBinop(AluOp op, const RegState& a, const RegState& b);

// Concrete evaluation of a conditional-jump predicate on two known values.
bool EvalConstCond(JmpOp op, uint64_t a, uint64_t b, bool is64);

struct VerifierState {
  std::array<RegState, kNumRegs> regs;
  std::array<StackSlot, kStackSlots> stack;
  std::vector<RefInfo> refs;
  std::vector<LockInfo> locks;
  // Next fresh reference id (normalized at prune points for comparability).
  uint32_t next_ref_id = 1;
  // Back-edge jump pcs this exploration path has followed. When a state is
  // pruned (its continuation is covered by an already-verified state), every
  // loop on the path is one whose termination was NOT proven concretely, so
  // each of these edges needs a cancellation point (§3.3). Bounded loops
  // unroll concretely and are never pruned, leaving this set unused.
  std::vector<size_t> active_edges;

  static VerifierState Initial();

  // Rewrites reference ids to 1..n in `refs` order so that structurally
  // identical states compare equal at prune points.
  void NormalizeRefIds();

  // Subsumption: exploration from *this covers exploration from `other`.
  bool Covers(const VerifierState& other) const;

  // Widening join at loop heads. refs/locks must already match.
  void JoinWith(const VerifierState& other);
};

}  // namespace kflex

#endif  // SRC_VERIFIER_STATE_H_
