// The static verifier: symbolic execution of extension bytecode enforcing
// kernel-interface compliance (helper contracts, reference and lock
// discipline, ctx/stack/map bounds) and — in strict eBPF mode — extension
// correctness too (bounded loops, no extension heap).
//
// In KFlex mode the verifier additionally computes everything Kie needs:
// which heap accesses are provably in bounds (guard elision), which loop
// back edges need cancellation points, and the object tables describing the
// kernel resources held at each potential cancellation point (§3).
#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/program.h"
#include "src/verifier/analysis.h"

namespace kflex {

enum class MapType { kArray, kHash, kRingBuf };

// Kernel-provided map metadata the verifier checks helper calls against.
struct MapDescriptor {
  uint32_t id = 0;
  uint32_t key_size = 0;
  uint32_t value_size = 0;
  uint64_t max_entries = 0;
  MapType type = MapType::kHash;
};

struct VerifyOptions {
  // Size of the guard zones flanking the extension heap; accesses proven to
  // stay within [heap - guard, heap_end + guard) are elidable because faults
  // in the guard zone are caught and converted into cancellations (§4.1).
  uint64_t guard_zone_size = 32 * 1024;
  // Context object size for the hook (defaults chosen per hook if 0).
  uint32_t ctx_size = 0;
  // Exploration limits.
  size_t max_states = 1 << 20;
  size_t max_insn_visits = 4096;  // per-insn cap before widening / rejection
  size_t widen_threshold = 64;    // visits at a prune point before widening
  std::vector<MapDescriptor> maps;
  // Audit-replay mode (contract-audit subsystem, src/verifier/audit.h): load
  // a distilled witness program even though it violates a helper contract on
  // purpose, so the chaos harness can confirm or prune the finding
  // dynamically. Two relaxations, both backed by runtime defense in depth:
  //  * exit with held resources is accepted; held locks are recorded in an
  //    object table at the exit pc so Runtime::SweepInvariants can observe
  //    the violation (held sockets trip the object-registry leak check),
  //  * possibly-NULL pointer dereferences are accepted by assuming non-NULL;
  //    a NULL at runtime surfaces as a memory fault and cancellation.
  // Memory safety (SFI guards, bounds, ctx typing) is NOT relaxed. Never set
  // for production loads.
  bool audit_replay = false;
};

// Default ctx size for a hook: XDP / sk_skb carry a packet buffer,
// tracepoint / LSM a small record.
uint32_t DefaultCtxSize(Hook hook);

// Verifies `program` and, on success, returns the analysis consumed by Kie.
StatusOr<Analysis> Verify(const Program& program, const VerifyOptions& options);

}  // namespace kflex

#endif  // SRC_VERIFIER_VERIFIER_H_
