#include "src/verifier/dataflow.h"

#include <algorithm>

namespace kflex {
namespace {

std::vector<size_t> BlockPcs(const Cfg& cfg, const BasicBlock& bb) {
  std::vector<size_t> pcs;
  for (size_t p = bb.start; p < bb.end; p = cfg.NextPc(p)) {
    pcs.push_back(p);
  }
  return pcs;
}

}  // namespace

DataflowSolution SolveDataflow(const Program& program, const Cfg& cfg,
                               const DataflowProblem& problem) {
  const size_t nb = cfg.num_blocks();
  const bool forward = problem.Direction() == DataflowDirection::kForward;

  BitVec init(problem.NumBits());
  if (problem.Meet() == MeetOp::kIntersect) {
    init.SetAll();
  }
  std::vector<BitVec> in(nb, init);
  std::vector<BitVec> out(nb, init);

  // Iterate in (reverse) RPO until stable. Bit-vector frameworks over these
  // small programs converge in a handful of sweeps.
  std::vector<size_t> order = cfg.rpo();
  if (!forward) {
    std::reverse(order.begin(), order.end());
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b : order) {
      const BasicBlock& bb = cfg.blocks()[b];
      // Meet over the relevant neighbors into the block-entry value.
      const std::vector<size_t>& neighbors = forward ? bb.preds : bb.succs;
      BitVec entry(problem.NumBits());
      bool boundary_block = forward ? (b == 0) : bb.succs.empty();
      if (boundary_block) {
        entry = problem.Boundary();
      } else if (problem.Meet() == MeetOp::kIntersect) {
        entry.SetAll();
      }
      bool first = !boundary_block;
      for (size_t nb_id : neighbors) {
        const BitVec& nv = forward ? out[nb_id] : in[nb_id];
        if (problem.Meet() == MeetOp::kUnion) {
          entry.UnionWith(nv);
        } else if (first) {
          entry = nv;
          first = false;
        } else {
          entry.IntersectWith(nv);
        }
      }
      BitVec& entry_slot = forward ? in[b] : out[b];
      entry_slot = entry;

      // Transfer through the block.
      BitVec v = entry;
      std::vector<size_t> pcs = BlockPcs(cfg, bb);
      if (!forward) {
        std::reverse(pcs.begin(), pcs.end());
      }
      for (size_t pc : pcs) {
        problem.Transfer(pc, program.insns[pc], v);
      }
      BitVec& exit_slot = forward ? out[b] : in[b];
      if (!(exit_slot == v)) {
        exit_slot = v;
        changed = true;
      }
    }
  }

  // Materialize the per-instruction value.
  DataflowSolution solution;
  solution.at_.assign(program.size(), BitVec(problem.NumBits()));
  for (size_t b = 0; b < nb; b++) {
    const BasicBlock& bb = cfg.blocks()[b];
    std::vector<size_t> pcs = BlockPcs(cfg, bb);
    if (forward) {
      BitVec v = in[b];
      for (size_t pc : pcs) {
        solution.at_[pc] = v;
        problem.Transfer(pc, program.insns[pc], v);
      }
    } else {
      BitVec v = out[b];
      for (auto it = pcs.rbegin(); it != pcs.rend(); ++it) {
        problem.Transfer(*it, program.insns[*it], v);
        solution.at_[*it] = v;
      }
    }
  }
  return solution;
}

// ---- Liveness ---------------------------------------------------------------

namespace {

class LivenessProblem : public DataflowProblem {
 public:
  LivenessProblem(const Analysis* analysis) : analysis_(analysis) {}

  size_t NumBits() const override {
    return static_cast<size_t>(kNumRegs) + kStackSlotCount;
  }
  DataflowDirection Direction() const override { return DataflowDirection::kBackward; }
  MeetOp Meet() const override { return MeetOp::kUnion; }

  void Transfer(size_t pc, const Insn& insn, BitVec& v) const override {
    // v is live-out; produce live-in = (v - def) | use.
    BitVec use(NumBits());
    BitVec def(NumBits());
    CollectUsesDefs(pc, insn, use, def);
    v.Subtract(def);
    v.UnionWith(use);
  }

 private:
  static size_t SlotBit(int slot) { return static_cast<size_t>(kNumRegs) + slot; }

  void UseSlotsInRange(const Insn& insn, BitVec& use) const {
    int first = Liveness::SlotForOffset(insn.off);
    int last = Liveness::SlotForOffset(insn.off + insn.AccessSize() - 1);
    if (first < 0 || last < 0) {
      return;  // out-of-frame access; the verifier rejects it anyway
    }
    for (int s = first; s <= last; s++) {
      use.Set(SlotBit(s));
    }
  }

  void UseAllSlots(BitVec& use) const {
    for (int s = 0; s < kStackSlotCount; s++) {
      use.Set(SlotBit(s));
    }
  }

  // True if this memory instruction may read the stack through a non-R10
  // pointer (stack aliases with verifier-tracked constant offsets).
  bool MayReadStackViaAlias(size_t pc) const {
    if (analysis_ == nullptr) {
      return true;  // unverified program: assume any pointer can alias stack
    }
    if (pc >= analysis_->mem.size()) {
      return true;
    }
    const MemAccessInfo& info = analysis_->mem[pc];
    return info.visited && info.region == MemRegion::kStack;
  }

  void CollectUsesDefs(size_t pc, const Insn& insn, BitVec& use, BitVec& def) const {
    if (insn.IsLdImm64()) {
      def.Set(insn.dst);
      return;
    }
    if (insn.IsAlu()) {
      uint8_t op = insn.AluOpField();
      if (op == BPF_MOV) {
        if (insn.SrcField() == BPF_X) {
          use.Set(insn.src);
        }
        def.Set(insn.dst);
      } else if (op == BPF_NEG) {
        use.Set(insn.dst);
        def.Set(insn.dst);
      } else {
        use.Set(insn.dst);
        if (insn.SrcField() == BPF_X) {
          use.Set(insn.src);
        }
        def.Set(insn.dst);
      }
      return;
    }
    if (insn.IsLoad()) {
      use.Set(insn.src);
      if (insn.src == R10) {
        UseSlotsInRange(insn, use);
      } else if (MayReadStackViaAlias(pc)) {
        UseAllSlots(use);
      }
      def.Set(insn.dst);
      return;
    }
    if (insn.IsStore()) {
      use.Set(insn.dst);
      if (insn.Class() == BPF_STX) {
        use.Set(insn.src);
      }
      // A full, aligned 8-byte store through the frame pointer strongly
      // kills its slot; anything narrower or through an alias does not.
      if (insn.dst == R10 && insn.AccessSize() == 8 && (insn.off + kStackSize) % 8 == 0) {
        int slot = Liveness::SlotForOffset(insn.off);
        if (slot >= 0) {
          def.Set(SlotBit(slot));
        }
      }
      return;
    }
    if (insn.IsAtomic()) {
      use.Set(insn.dst);
      use.Set(insn.src);
      if (insn.dst == R10) {
        UseSlotsInRange(insn, use);
      } else if (MayReadStackViaAlias(pc)) {
        UseAllSlots(use);
      }
      if (insn.imm == BPF_ATOMIC_CMPXCHG) {
        use.Set(R0);
        def.Set(R0);
      } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
        def.Set(insn.src);
      }
      // Read-modify-write: never a strong kill of the slot.
      return;
    }
    if (insn.IsCall()) {
      // Conservative: helpers may consume any argument register and read any
      // stack memory passed by pointer; they clobber the caller-saved set.
      for (int r = R1; r <= R5; r++) {
        use.Set(r);
      }
      UseAllSlots(use);
      for (int r = R0; r <= R5; r++) {
        def.Set(r);
      }
      return;
    }
    if (insn.IsExit()) {
      use.Set(R0);
      return;
    }
    if (insn.IsCondJmp()) {
      use.Set(insn.dst);
      if (insn.SrcField() == BPF_X) {
        use.Set(insn.src);
      }
      return;
    }
    // Unconditional jump: no uses or defs.
  }

  const Analysis* analysis_;
};

}  // namespace

Liveness Liveness::Compute(const Program& program, const Cfg& cfg, const Analysis* analysis) {
  Liveness live;
  LivenessProblem problem(analysis);
  live.solution_ = SolveDataflow(program, cfg, problem);

  // Live-out per instruction: union of live-in over the instructions that
  // can execute next (exit instructions have empty live-out).
  const size_t bits = problem.NumBits();
  live.out_.assign(program.size(), BitVec(bits));
  for (const BasicBlock& bb : cfg.blocks()) {
    size_t last = bb.start;
    for (size_t p = bb.start; p < bb.end; p = cfg.NextPc(p)) {
      last = p;
      size_t next = cfg.NextPc(p);
      if (next < bb.end) {
        live.out_[p] = live.solution_.At(next);
      }
    }
    for (size_t succ : bb.succs) {
      live.out_[last].UnionWith(live.solution_.At(cfg.blocks()[succ].start));
    }
  }
  return live;
}

}  // namespace kflex
