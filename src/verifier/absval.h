// Block-local constant propagation shared by the lint passes (lint.cc) and
// the contract-audit pass (audit.cc).
//
// A tiny abstract value: statically known scalar, or statically known
// extension-heap offset (lock identity). Starting every block (or path) from
// "unknown" keeps derived findings provable regardless of how control
// reached the code under analysis.
#ifndef SRC_VERIFIER_ABSVAL_H_
#define SRC_VERIFIER_ABSVAL_H_

#include <array>
#include <cstdint>

#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"

namespace kflex {

struct AbsVal {
  enum Kind { kUnknown, kConst, kHeapOff } kind = kUnknown;
  uint64_t v = 0;

  static AbsVal Const(uint64_t v) { return {kConst, v}; }
  static AbsVal HeapOff(uint64_t v) { return {kHeapOff, v}; }
};

struct AbsRegs {
  std::array<AbsVal, kNumRegs> r;
};

// Applies the instruction at `pc` to `regs`. For ld_imm64 the second slot is
// read from the program; callers advance pc with Cfg::NextPc so the hi slot
// is never stepped directly.
inline void AbsStep(const Program& prog, size_t pc, AbsRegs& regs) {
  const Insn& insn = prog.insns[pc];
  if (insn.IsLdImm64()) {
    uint64_t imm = LdImm64Value(insn, prog.insns[pc + 1]);
    if (insn.src == kPseudoHeapVar) {
      regs.r[insn.dst] = AbsVal::HeapOff(imm);
    } else if (insn.src == kPseudoNone) {
      regs.r[insn.dst] = AbsVal::Const(imm);
    } else {
      regs.r[insn.dst] = AbsVal();
    }
    return;
  }
  if (insn.IsAlu()) {
    bool is64 = insn.Class() == BPF_ALU64;
    uint8_t op = insn.AluOpField();
    AbsVal src = insn.SrcField() == BPF_X
                     ? regs.r[insn.src]
                     : AbsVal::Const(is64 ? static_cast<uint64_t>(static_cast<int64_t>(insn.imm))
                                          : static_cast<uint32_t>(insn.imm));
    AbsVal& dst = regs.r[insn.dst];
    switch (op) {
      case BPF_MOV:
        dst = src;
        if (!is64 && dst.kind == AbsVal::kConst) {
          dst.v = static_cast<uint32_t>(dst.v);
        } else if (!is64) {
          dst = AbsVal();
        }
        break;
      case BPF_ADD:
        if (dst.kind != AbsVal::kUnknown && src.kind == AbsVal::kConst) {
          dst.v += src.v;
        } else if (dst.kind == AbsVal::kConst && src.kind == AbsVal::kHeapOff) {
          dst = AbsVal::HeapOff(dst.v + src.v);
        } else {
          dst = AbsVal();
        }
        if (!is64 && dst.kind == AbsVal::kConst) {
          dst.v = static_cast<uint32_t>(dst.v);
        }
        break;
      case BPF_SUB:
        if (dst.kind != AbsVal::kUnknown && src.kind == AbsVal::kConst) {
          dst.v -= src.v;
          if (!is64 && dst.kind == AbsVal::kConst) {
            dst.v = static_cast<uint32_t>(dst.v);
          }
        } else {
          dst = AbsVal();
        }
        break;
      default:
        dst = AbsVal();
        break;
    }
    return;
  }
  if (insn.IsLoad()) {
    regs.r[insn.dst] = AbsVal();
    return;
  }
  if (insn.IsAtomic()) {
    if (insn.imm == BPF_ATOMIC_CMPXCHG) {
      regs.r[R0] = AbsVal();
    } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
      regs.r[insn.src] = AbsVal();
    }
    return;
  }
  if (insn.IsCall()) {
    for (int r = R0; r <= R5; r++) {
      regs.r[r] = AbsVal();
    }
    return;
  }
}

}  // namespace kflex

#endif  // SRC_VERIFIER_ABSVAL_H_
