#include "src/verifier/opt.h"

#include <algorithm>
#include <array>
#include <optional>
#include <set>

#include "src/ebpf/insn.h"
#include "src/verifier/cfg.h"
#include "src/verifier/dataflow.h"
#include "src/verifier/state.h"

namespace kflex {

namespace {

// ---- SCCP --------------------------------------------------------------------
//
// Per-register lattice value: RegState with type kScalar is a tracked scalar
// (tnum + min/max bounds, exactly the verifier's lattice); type kNotInit is
// "untracked" — a pointer, an uninitialized register, or anything loaded from
// memory. Untracked is the top element and is deliberately absorbing: a value
// with any pointer in its history never folds, so every SCCP decision remains
// valid even when an SFI guard redirects an out-of-bounds pointer at runtime.

using SccpRegs = std::array<RegState, kNumRegs>;

RegState Untracked() { return RegState::NotInit(); }
bool Tracked(const RegState& r) { return r.type == RegType::kScalar; }

// 32-bit ALU result adjustment, mirroring the verifier's ApplyAlu.
void Cast32(RegState& r) {
  r.var = TnumCast(r.var, 4);
  r.umin = 0;
  r.umax = 0xFFFFFFFFULL;
  r.smin = 0;
  r.smax = 0xFFFFFFFFLL;
  r.DeduceBounds();
}

// Untracked values (pointers, loads, uninitialized registers) still hold
// SOME 64-bit value at runtime — Kie's instrumentation never mutates
// user-visible registers, only its scratch register and the effective access
// address. Lowering untracked to the full-range scalar is therefore sound
// and lets masking recover bounds (e.g. `x & 0xFF` is in [0, 255] whatever
// x was).
RegState AsScalar(const RegState& r) {
  return Tracked(r) ? r : RegState::UnknownScalar();
}

// The abstract value an ALU instruction computes. Never called for non-ALU
// instructions.
RegState EvalAlu(const Insn& insn, const SccpRegs& regs) {
  bool is64 = insn.Class() == BPF_ALU64;
  uint8_t op = insn.AluOpField();

  RegState r;
  if (op == BPF_MOV) {
    if (insn.SrcField() == BPF_K) {
      return RegState::ConstScalar(is64 ? SextImm(insn.imm)
                                        : static_cast<uint32_t>(insn.imm));
    }
    r = AsScalar(regs[insn.src]);
  } else if (op == BPF_NEG) {
    r = ScalarBinop(BPF_SUB, RegState::ConstScalar(0), AsScalar(regs[insn.dst]));
  } else {
    RegState operand = insn.SrcField() == BPF_K
                           ? RegState::ConstScalar(is64 ? SextImm(insn.imm)
                                                        : static_cast<uint32_t>(insn.imm))
                           : AsScalar(regs[insn.src]);
    r = ScalarBinop(static_cast<AluOp>(op), AsScalar(regs[insn.dst]), operand);
  }
  if (!is64) {
    Cast32(r);
  }
  return r;
}

// Applies one instruction's register effects to the SCCP state.
void ApplyInsn(const Program& prog, size_t pc, SccpRegs& regs) {
  const Insn& insn = prog.insns[pc];
  if (insn.IsLdImm64()) {
    regs[insn.dst] = insn.src == kPseudoNone
                         ? RegState::ConstScalar(LdImm64Value(insn, prog.insns[pc + 1]))
                         : Untracked();  // heap var / map fd: a pointer
    return;
  }
  if (insn.IsAlu()) {
    regs[insn.dst] = EvalAlu(insn, regs);
    return;
  }
  if (insn.IsLoad()) {
    // Sub-word loads zero-extend: the result fits the access width.
    regs[insn.dst] = RegState::ScalarMaxBytes(static_cast<int>(insn.AccessSize()));
    return;
  }
  if (insn.IsAtomic()) {
    if (insn.imm == BPF_ATOMIC_CMPXCHG) {
      regs[R0] = Untracked();
    } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
      regs[insn.src] = Untracked();
    }
    return;
  }
  if (insn.IsCall()) {
    for (int r = R0; r <= R5; r++) {
      regs[r] = Untracked();
    }
    return;
  }
}

// Decides a conditional branch from the lattice: true = always taken,
// false = never taken, nullopt = undecidable.
std::optional<bool> EvalCond(const Insn& insn, const SccpRegs& regs) {
  bool is64 = insn.Class() == BPF_JMP;
  JmpOp op = static_cast<JmpOp>(insn.AluOpField());
  RegState a = AsScalar(regs[insn.dst]);
  RegState b = insn.SrcField() == BPF_X
                   ? AsScalar(regs[insn.src])
                   : RegState::ConstScalar(is64 ? SextImm(insn.imm)
                                                : static_cast<uint32_t>(insn.imm));
  if (a.IsConst() && b.IsConst()) {
    return EvalConstCond(op, a.ConstValue(), b.ConstValue(), is64);
  }
  if (!is64) {
    return std::nullopt;  // range reasoning below is 64-bit only
  }
  // Tnum bit reasoning: bits known in both values.
  uint64_t known_both = ~a.var.mask & ~b.var.mask;
  bool bit_conflict = (a.var.value & known_both) != (b.var.value & known_both);
  bool ranges_disjoint = a.umax < b.umin || b.umax < a.umin || a.smax < b.smin ||
                         b.smax < a.smin || bit_conflict;
  switch (op) {
    case BPF_JEQ:
      if (ranges_disjoint) {
        return false;
      }
      break;
    case BPF_JNE:
      if (ranges_disjoint) {
        return true;
      }
      break;
    case BPF_JGT:
      if (a.umin > b.umax) {
        return true;
      }
      if (a.umax <= b.umin) {
        return false;
      }
      break;
    case BPF_JGE:
      if (a.umin >= b.umax) {
        return true;
      }
      if (a.umax < b.umin) {
        return false;
      }
      break;
    case BPF_JLT:
      if (a.umax < b.umin) {
        return true;
      }
      if (a.umin >= b.umax) {
        return false;
      }
      break;
    case BPF_JLE:
      if (a.umax <= b.umin) {
        return true;
      }
      if (a.umin > b.umax) {
        return false;
      }
      break;
    case BPF_JSGT:
      if (a.smin > b.smax) {
        return true;
      }
      if (a.smax <= b.smin) {
        return false;
      }
      break;
    case BPF_JSGE:
      if (a.smin >= b.smax) {
        return true;
      }
      if (a.smax < b.smin) {
        return false;
      }
      break;
    case BPF_JSLT:
      if (a.smax < b.smin) {
        return true;
      }
      if (a.smin >= b.smax) {
        return false;
      }
      break;
    case BPF_JSLE:
      if (a.smax <= b.smin) {
        return true;
      }
      if (a.smin > b.smax) {
        return false;
      }
      break;
    case BPF_JSET:
      // Known-one bits present in both: some tested bit is certainly set.
      if ((a.var.value & b.var.value) != 0) {
        return true;
      }
      // No possibly-one bit in common: the intersection is certainly zero.
      if (((a.var.value | a.var.mask) & (b.var.value | b.var.mask)) == 0) {
        return false;
      }
      break;
    default:
      break;
  }
  return std::nullopt;
}

// Joins `from` into `into`. Returns true if `into` changed. With `widen`,
// changing registers jump straight to the unknown scalar so loop bodies
// converge (the precise envelope join has long chains).
bool JoinRegs(SccpRegs& into, const SccpRegs& from, bool widen) {
  bool changed = false;
  for (int i = 0; i < kNumRegs; i++) {
    RegState& a = into[i];
    const RegState& b = from[i];
    if (a == b) {
      continue;
    }
    RegState joined;
    if (!Tracked(a) || !Tracked(b)) {
      joined = Untracked();
    } else if (widen) {
      joined = RegState::UnknownScalar();
    } else {
      joined = RegState::UnknownScalar();
      joined.var = TnumUnion(a.var, b.var);
      joined.umin = std::min(a.umin, b.umin);
      joined.umax = std::max(a.umax, b.umax);
      joined.smin = std::min(a.smin, b.smin);
      joined.smax = std::max(a.smax, b.smax);
      joined.DeduceBounds();
    }
    if (!(joined == a)) {
      a = joined;
      changed = true;
    }
  }
  return changed;
}

// After this many joins at one block the join starts widening.
constexpr int kWidenJoins = 32;

struct SccpResult {
  std::vector<uint8_t> block_exec;            // block id -> feasibly reachable
  std::vector<std::optional<SccpRegs>> in;    // block id -> entry state
};

SccpResult RunSccp(const Program& prog, const Cfg& cfg) {
  SccpResult r;
  r.block_exec.assign(cfg.num_blocks(), 0);
  r.in.assign(cfg.num_blocks(), std::nullopt);
  std::vector<int> joins(cfg.num_blocks(), 0);

  SccpRegs entry;
  entry.fill(Untracked());
  r.in[0] = entry;
  std::vector<size_t> worklist{0};

  auto propagate = [&](size_t target, const SccpRegs& state) {
    if (!r.in[target].has_value()) {
      r.in[target] = state;
      worklist.push_back(target);
      return;
    }
    joins[target]++;
    if (JoinRegs(*r.in[target], state, joins[target] > kWidenJoins)) {
      worklist.push_back(target);
    }
  };

  while (!worklist.empty()) {
    size_t b = worklist.back();
    worklist.pop_back();
    r.block_exec[b] = 1;
    const BasicBlock& bb = cfg.blocks()[b];
    SccpRegs regs = *r.in[b];
    size_t last = bb.start;
    for (size_t p = bb.start; p < bb.end; p = cfg.NextPc(p)) {
      last = p;
      ApplyInsn(prog, p, regs);
    }
    const Insn& term = prog.insns[last];
    if (term.IsExit()) {
      continue;
    }
    if (term.IsUncondJmp()) {
      propagate(cfg.BlockOf(static_cast<size_t>(
                    static_cast<int64_t>(last) + 1 + term.off)),
                regs);
      continue;
    }
    if (term.IsCondJmp()) {
      size_t taken = cfg.BlockOf(
          static_cast<size_t>(static_cast<int64_t>(last) + 1 + term.off));
      size_t fall = cfg.BlockOf(last + 1);
      std::optional<bool> decided = EvalCond(term, regs);
      if (!decided.has_value() || *decided) {
        propagate(taken, regs);
      }
      if (!decided.has_value() || !*decided) {
        propagate(fall, regs);
      }
      continue;
    }
    // Straight-line block split by a jump target: falls into the next block.
    if (bb.end < prog.insns.size()) {
      propagate(cfg.BlockOf(bb.end), regs);
    }
  }
  return r;
}

// ---- Available-guard analysis ------------------------------------------------
//
// Bit i set before pc means: the Kie scratch register RAX holds
// sanitize(r_i), and r_i is unmodified since the guard that computed it.
// At most one bit is ever set on a feasible path (each guard overwrites RAX),
// but the bit-vector form drops into the generic intersect solver directly.
class AvailGuardProblem : public DataflowProblem {
 public:
  AvailGuardProblem(const Analysis& analysis, const std::vector<uint8_t>& removed)
      : analysis_(analysis), removed_(removed) {}

  size_t NumBits() const override { return kNumRegs; }
  DataflowDirection Direction() const override { return DataflowDirection::kForward; }
  MeetOp Meet() const override { return MeetOp::kIntersect; }
  // Boundary (program entry): nothing available — the default zero vector.

  void Transfer(size_t pc, const Insn& insn, BitVec& v) const override {
    if (removed_[pc]) {
      return;  // deleted at emission; removable insns never write registers
    }
    // C1 cancellation point: the terminate-load sequence Kie inserts before
    // this jump clobbers RAX on both outgoing paths.
    if (analysis_.cancellation_back_edges.count(pc) != 0) {
      v.ClearAll();
    }
    bool is_access = insn.IsLoad() || insn.IsStore() || insn.IsAtomic();
    if (is_access && pc < analysis_.mem.size()) {
      const MemAccessInfo& info = analysis_.mem[pc];
      if (info.visited && info.region == MemRegion::kHeap &&
          (info.needs_guard || info.formation)) {
        // Guarded site: MOV RAX, base; SANITIZE RAX precedes the access, so
        // RAX now holds sanitize(base). Formation guards (§5.4) are executed
        // unconditionally and generate no availability.
        v.ClearAll();
        if (!info.formation) {
          v.Set(insn.IsLoad() ? insn.src : insn.dst);
        }
      }
    }
    // Register redefinitions invalidate the pairing with RAX.
    if (insn.IsLdImm64() || insn.IsAlu() || insn.IsLoad()) {
      v.Clear(insn.dst);
    } else if (insn.IsAtomic()) {
      if (insn.imm == BPF_ATOMIC_CMPXCHG) {
        v.Clear(R0);
      } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
        v.Clear(insn.src);
      }
    } else if (insn.IsCall()) {
      v.ClearAll();  // helpers clobber R0-R5 and may block/cancel
    }
  }

 private:
  const Analysis& analysis_;
  const std::vector<uint8_t>& removed_;
};

}  // namespace

StatusOr<OptResult> Optimize(const Program& program, const Analysis& analysis) {
  if (analysis.mem.size() != program.insns.size() ||
      analysis.insn_visited.size() != program.insns.size()) {
    return InvalidArgument("analysis does not match program");
  }

  OptResult out;
  out.program = program;
  out.analysis = analysis;
  out.plan.dominated.assign(program.insns.size(), 0);
  out.plan.removed.assign(program.insns.size(), 0);
  OptStats& stats = out.plan.stats;

  StatusOr<Cfg> cfg = Cfg::Build(program);
  if (!cfg.ok()) {
    return cfg.status();
  }

  // Pass 1: SCCP. Rewrite decided branches and constant ALU results, mark
  // infeasible code removable.
  SccpResult sccp = RunSccp(program, *cfg);
  for (size_t b = 0; b < cfg->num_blocks(); b++) {
    const BasicBlock& bb = cfg->blocks()[b];
    if (!sccp.block_exec[b]) {
      for (size_t p = bb.start; p < bb.end; p = cfg->NextPc(p)) {
        out.plan.removed[p] = 1;
        if (program.insns[p].IsLdImm64()) {
          out.plan.removed[p + 1] = 1;
        }
        stats.unreachable_removed++;
      }
      continue;
    }
    SccpRegs regs = *sccp.in[b];
    for (size_t p = bb.start; p < bb.end; p = cfg->NextPc(p)) {
      const Insn& insn = program.insns[p];
      if (insn.IsAlu()) {
        RegState value = EvalAlu(insn, regs);
        if (value.IsConst()) {
          uint64_t v = value.ConstValue();
          bool is64 = insn.Class() == BPF_ALU64;
          int32_t imm = static_cast<int32_t>(v);
          // Rewritable when MOV's immediate semantics reproduce the value
          // (64-bit MOV sign-extends; 32-bit MOV zero-extends).
          if (!is64 || v == SextImm(imm)) {
            Insn folded = MovImmInsn(static_cast<Reg>(insn.dst), imm, is64);
            if (!(folded == insn)) {
              out.program.insns[p] = folded;
              stats.alu_folded++;
            }
          }
        }
      } else if (insn.IsCondJmp()) {
        std::optional<bool> decided = EvalCond(insn, regs);
        if (decided.has_value()) {
          if (*decided) {
            out.program.insns[p] = JmpAlwaysInsn(insn.off);
          } else {
            // Falls through; a zero-offset JA is a semantic no-op that Kie
            // deletes during relayout.
            out.program.insns[p] = JmpAlwaysInsn(0);
            out.plan.removed[p] = 1;
          }
          stats.const_branches_folded++;
        }
      }
      ApplyInsn(program, p, regs);
    }
  }

  // Facts attached to removed instructions no longer apply: a folded-away
  // back edge needs no cancellation point, and an unreachable Cp has no
  // object table for Kie to remap.
  for (auto it = out.analysis.cancellation_back_edges.begin();
       it != out.analysis.cancellation_back_edges.end();) {
    if (out.plan.removed[*it]) {
      out.analysis.object_tables.erase(*it);
      it = out.analysis.cancellation_back_edges.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = out.analysis.object_tables.begin();
       it != out.analysis.object_tables.end();) {
    if (out.plan.removed[it->first]) {
      it = out.analysis.object_tables.erase(it);
    } else {
      ++it;
    }
  }

  // The folded program has different edges (JA where conditional jumps
  // were); the remaining passes run on its CFG.
  StatusOr<Cfg> folded_cfg = Cfg::Build(out.program);
  if (!folded_cfg.ok()) {
    return folded_cfg.status();
  }

  // Pass 3 (before the guard pass only for ordering convenience; the two are
  // independent): dead stack stores. A store through the frame pointer whose
  // slots are all dead-out can be dropped — unless an object table records a
  // resource handle in one of them, which the cancellation unwinder reads.
  Liveness liveness = Liveness::Compute(out.program, *folded_cfg, &out.analysis);
  std::set<int> unwind_slots;
  for (const auto& [pc, table] : out.analysis.object_tables) {
    for (const ObjectTableEntry& entry : table) {
      if (entry.stack_slot >= 0) {
        unwind_slots.insert(entry.stack_slot);
      }
    }
  }
  for (size_t b = 0; b < folded_cfg->num_blocks(); b++) {
    if (!folded_cfg->Reachable(b)) {
      continue;
    }
    const BasicBlock& bb = folded_cfg->blocks()[b];
    for (size_t p = bb.start; p < bb.end; p = folded_cfg->NextPc(p)) {
      const Insn& insn = out.program.insns[p];
      if (out.plan.removed[p] || !insn.IsStore() || insn.dst != R10) {
        continue;
      }
      int first = Liveness::SlotForOffset(insn.off);
      int last = Liveness::SlotForOffset(insn.off + insn.AccessSize() - 1);
      if (first < 0 || last < 0) {
        continue;
      }
      bool dead = true;
      for (int s = first; s <= last; s++) {
        dead = dead && !liveness.SlotLiveOut(p, s) && unwind_slots.count(s) == 0;
      }
      if (dead) {
        out.plan.removed[p] = 1;
        stats.dead_stores_removed++;
      }
    }
  }

  // Pass 2: available sanitized bases -> dominated guards.
  AvailGuardProblem avail(out.analysis, out.plan.removed);
  DataflowSolution solution = SolveDataflow(out.program, *folded_cfg, avail);
  for (size_t b = 0; b < folded_cfg->num_blocks(); b++) {
    if (!folded_cfg->Reachable(b)) {
      continue;  // intersect problems report all-ones for unreachable code
    }
    const BasicBlock& bb = folded_cfg->blocks()[b];
    for (size_t p = bb.start; p < bb.end; p = folded_cfg->NextPc(p)) {
      const Insn& insn = out.program.insns[p];
      if (out.plan.removed[p] ||
          !(insn.IsLoad() || insn.IsStore() || insn.IsAtomic())) {
        continue;
      }
      const MemAccessInfo& info = out.analysis.mem[p];
      if (!info.visited || info.region != MemRegion::kHeap || !info.needs_guard ||
          info.formation) {
        continue;  // only range-unprovable pointer guards can be dominated
      }
      int base = insn.IsLoad() ? insn.src : insn.dst;
      if (solution.At(p).Test(base)) {
        out.plan.dominated[p] = 1;
        stats.guards_dominated++;
      }
    }
  }

  return out;
}

}  // namespace kflex
