// Tracked numbers ("tnums"): the abstract domain the Linux eBPF verifier uses
// for bit-level value tracking. A tnum (value, mask) represents every 64-bit
// integer x with (x & ~mask) == value: mask bits are unknown, the rest equal
// `value`. KFlex's SFI leans on this analysis to elide guard instructions when
// heap accesses are provably in bounds (§3.2, §5.4).
//
// The operations mirror kernel/bpf/tnum.c.
#ifndef SRC_VERIFIER_TNUM_H_
#define SRC_VERIFIER_TNUM_H_

#include <cstdint>
#include <string>

namespace kflex {

struct Tnum {
  uint64_t value = 0;
  uint64_t mask = 0;

  static Tnum Const(uint64_t v) { return Tnum{v, 0}; }
  static Tnum Unknown() { return Tnum{0, ~0ULL}; }
  // Smallest tnum containing every integer in [min, max].
  static Tnum Range(uint64_t min, uint64_t max);

  bool IsConst() const { return mask == 0; }
  bool IsUnknown() const { return mask == ~0ULL; }
  // True if every concretization of `other` is also represented by *this.
  bool Contains(const Tnum& other) const;
  // True if the concrete value x is represented by this tnum.
  bool ContainsValue(uint64_t x) const { return (x & ~mask) == value; }

  // Smallest / largest representable unsigned concretization.
  uint64_t UMin() const { return value; }
  uint64_t UMax() const { return value | mask; }

  bool operator==(const Tnum& other) const = default;

  std::string ToString() const;
};

Tnum TnumAdd(Tnum a, Tnum b);
Tnum TnumSub(Tnum a, Tnum b);
Tnum TnumAnd(Tnum a, Tnum b);
Tnum TnumOr(Tnum a, Tnum b);
Tnum TnumXor(Tnum a, Tnum b);
Tnum TnumMul(Tnum a, Tnum b);
Tnum TnumLshift(Tnum a, uint8_t shift);
Tnum TnumRshift(Tnum a, uint8_t shift);
Tnum TnumArshift(Tnum a, uint8_t shift);
// Intersection: values representable by both (used on JEQ refinement).
// Precondition: the intersection must be non-empty for meaningful results.
Tnum TnumIntersect(Tnum a, Tnum b);
// Union / join: smallest tnum containing both (used at CFG merge points).
Tnum TnumUnion(Tnum a, Tnum b);
// Truncate to the low `size` bytes (e.g., after 32-bit ALU ops).
Tnum TnumCast(Tnum a, int size);

}  // namespace kflex

#endif  // SRC_VERIFIER_TNUM_H_
