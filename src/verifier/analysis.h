// Per-instruction facts the verifier exports to the instrumentation engine
// (Kie): memory-region classification, guard-elision decisions from range
// analysis, translate-on-store candidates, cancellation back edges, and
// per-cancellation-point object tables (§3.2, §3.3).
#ifndef SRC_VERIFIER_ANALYSIS_H_
#define SRC_VERIFIER_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/ebpf/helper_ids.h"

namespace kflex {

enum class MemRegion : uint8_t {
  kNone = 0,
  kCtx,
  kStack,
  kHeap,      // extension heap, via a verifier-typed heap pointer
  kMapValue,  // kernel-provided map value
};

// Facts about one memory-access instruction, merged over all verifier paths
// reaching it.
struct MemAccessInfo {
  bool visited = false;
  MemRegion region = MemRegion::kNone;
  // Heap access whose bounds could NOT be proven by range analysis on some
  // path: Kie must emit a sanitizing guard.
  bool needs_guard = false;
  // The access dereferences an untrusted scalar (a pointer loaded from the
  // extension heap, which user space may corrupt): the guard "forms a new
  // heap pointer" and must never be elided (§5.4).
  bool formation = false;
  // STX DW storing a verifier-typed heap pointer on every path: candidate
  // for translate-on-store (§3.4).
  bool stores_heap_ptr = false;
  // Conflicting source types across paths: translation must be suppressed.
  bool stores_mixed = false;
};

// One entry of a cancellation-point object table: where a kernel-owned
// resource lives when execution reaches the Cp, and how to destroy it.
struct ObjectTableEntry {
  ResourceKind kind = ResourceKind::kNone;
  HelperId destructor = static_cast<HelperId>(0);
  // Resource handle location: register index, or spilled stack slot.
  int reg = -1;         // >= 0: register holding the handle
  int stack_slot = -1;  // >= 0: 8-byte stack slot index holding the handle
  // For locks: the lock's constant heap offset (identity).
  uint64_t lock_off = 0;

  bool operator==(const ObjectTableEntry& other) const = default;
  bool operator<(const ObjectTableEntry& other) const {
    return std::tie(kind, destructor, reg, stack_slot, lock_off) <
           std::tie(other.kind, other.destructor, other.reg, other.stack_slot, other.lock_off);
  }
};

struct Analysis {
  // Indexed by instruction pc.
  std::vector<MemAccessInfo> mem;
  // Jump pcs that are back edges of loops whose termination could not be
  // proven: Kie inserts the *terminate heap access before these (C1 Cps).
  std::set<size_t> cancellation_back_edges;
  // Object table per potential cancellation point pc (heap accesses and
  // cancellation back edges). Empty table = nothing to release.
  std::map<size_t, std::set<ObjectTableEntry>> object_tables;
  // Per-pc: 1 if symbolic execution reached the instruction. Stronger than
  // CFG reachability (constant-folded branches never push the dead side);
  // lint passes use it to skip code the verifier proved unreachable.
  std::vector<uint8_t> insn_visited;

  // Statistics (feed Table 3 and EXPERIMENTS.md).
  size_t heap_access_insns = 0;   // accesses classified kHeap (incl. formation)
  size_t elided_guards = 0;       // provably-safe accesses needing no guard
  size_t required_guards = 0;     // pointer-manipulation guards Kie must emit
  size_t formation_guards = 0;    // untrusted-scalar guards (never elidable)
  size_t explored_insns = 0;      // total symbolic steps taken
  size_t explored_states = 0;     // states pushed on the exploration stack
  // CFG/liveness refinements (cfg.h, dataflow.h): conservative back-edge
  // marks the natural-loop scoping removed, and object-table entries the
  // pre-liveness location policy would have emitted at a dead location.
  size_t pruned_back_edges = 0;
  size_t pruned_object_entries = 0;
};

}  // namespace kflex

#endif  // SRC_VERIFIER_ANALYSIS_H_
