#include "src/verifier/verifier.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "src/base/logging.h"
#include "src/ebpf/helper_ids.h"
#include "src/obs/obs.h"
#include "src/verifier/cfg.h"
#include "src/verifier/dataflow.h"
#include "src/verifier/state.h"

namespace kflex {

namespace {

constexpr int64_t kS64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kS64Max = std::numeric_limits<int64_t>::max();
constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

std::string PcMsg(size_t pc, const std::string& msg) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "insn %zu: ", pc);
  return buf + msg;
}

// Atomic result registers (eBPF semantics): CMPXCHG loads the old value into
// R0; XCHG and fetching ADD load it into the source register.
void ApplyAtomicResult(VerifierState& st, const Insn& insn) {
  int size = insn.AccessSize();
  if (insn.imm == BPF_ATOMIC_CMPXCHG) {
    st.regs[R0] = RegState::ScalarMaxBytes(size);
  } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
    st.regs[insn.src] = RegState::ScalarMaxBytes(size);
  }
}

// ---- Conditional-branch bound refinement -------------------------------------

// Refines `reg` assuming `reg <op> [lo_other, hi_other]` holds (value operand
// described by its unsigned and signed bounds). Returns false if the refined
// range is empty (dead branch).
bool RefineAgainst(JmpOp op, RegState& reg, uint64_t o_umin, uint64_t o_umax, int64_t o_smin,
                   int64_t o_smax, const Tnum& o_var) {
  switch (op) {
    case BPF_JEQ:
      reg.umin = std::max(reg.umin, o_umin);
      reg.umax = std::min(reg.umax, o_umax);
      reg.smin = std::max(reg.smin, o_smin);
      reg.smax = std::min(reg.smax, o_smax);
      {
        // Intersect tnums; detect contradiction on known bits.
        uint64_t known_both = ~reg.var.mask & ~o_var.mask;
        if ((reg.var.value & known_both) != (o_var.value & known_both)) {
          return false;
        }
        reg.var = TnumIntersect(reg.var, o_var);
      }
      break;
    case BPF_JNE:
      // Only useful when the other side is a constant equal to our constant.
      if (reg.var.IsConst() && o_var.IsConst() && reg.var.value == o_var.value) {
        return false;
      }
      break;
    case BPF_JGT:
      if (o_umin == kU64Max) {
        return false;
      }
      reg.umin = std::max(reg.umin, o_umin + 1);
      break;
    case BPF_JGE:
      reg.umin = std::max(reg.umin, o_umin);
      break;
    case BPF_JLT:
      if (o_umax == 0) {
        return false;
      }
      reg.umax = std::min(reg.umax, o_umax - 1);
      break;
    case BPF_JLE:
      reg.umax = std::min(reg.umax, o_umax);
      break;
    case BPF_JSGT:
      if (o_smin == kS64Max) {
        return false;
      }
      reg.smin = std::max(reg.smin, o_smin + 1);
      break;
    case BPF_JSGE:
      reg.smin = std::max(reg.smin, o_smin);
      break;
    case BPF_JSLT:
      if (o_smax == kS64Min) {
        return false;
      }
      reg.smax = std::min(reg.smax, o_smax - 1);
      break;
    case BPF_JSLE:
      reg.smax = std::min(reg.smax, o_smax);
      break;
    case BPF_JSET:
    default:
      break;  // No refinement.
  }
  return reg.DeduceBounds();
}

// The condition that holds on the fall-through (not-taken) path.
JmpOp NegateJmpOp(JmpOp op) {
  switch (op) {
    case BPF_JEQ:
      return BPF_JNE;
    case BPF_JNE:
      return BPF_JEQ;
    case BPF_JGT:
      return BPF_JLE;
    case BPF_JLE:
      return BPF_JGT;
    case BPF_JGE:
      return BPF_JLT;
    case BPF_JLT:
      return BPF_JGE;
    case BPF_JSGT:
      return BPF_JSLE;
    case BPF_JSLE:
      return BPF_JSGT;
    case BPF_JSGE:
      return BPF_JSLT;
    case BPF_JSLT:
      return BPF_JSGE;
    default:
      return BPF_JSET;  // Sentinel: no refinement possible.
  }
}

// Do two states hold structurally identical resource sets? (Used to pick a
// widening partner.)
bool RefsSameShape(const VerifierState& a, const VerifierState& b) {
  if (a.refs.size() != b.refs.size() || a.locks.size() != b.locks.size()) {
    return false;
  }
  for (size_t i = 0; i < a.refs.size(); i++) {
    if (a.refs[i].kind != b.refs[i].kind || a.refs[i].acquire_pc != b.refs[i].acquire_pc) {
      return false;
    }
  }
  for (size_t i = 0; i < a.locks.size(); i++) {
    if (a.locks[i].heap_off != b.locks[i].heap_off) {
      return false;
    }
  }
  return true;
}

// The mirrored condition: a <op> b  <=>  b <mirror(op)> a.
JmpOp MirrorJmpOp(JmpOp op) {
  switch (op) {
    case BPF_JEQ:
      return BPF_JEQ;
    case BPF_JNE:
      return BPF_JNE;
    case BPF_JGT:
      return BPF_JLT;
    case BPF_JLT:
      return BPF_JGT;
    case BPF_JGE:
      return BPF_JLE;
    case BPF_JLE:
      return BPF_JGE;
    case BPF_JSGT:
      return BPF_JSLT;
    case BPF_JSLT:
      return BPF_JSGT;
    case BPF_JSGE:
      return BPF_JSLE;
    case BPF_JSLE:
      return BPF_JSGE;
    default:
      return BPF_JSET;
  }
}

// ---- Verifier ----------------------------------------------------------------

class VerifierImpl {
 public:
  VerifierImpl(const Program& program, const VerifyOptions& options)
      : prog_(program), opts_(options) {
    heap_size_ = program.heap_size;
    ctx_size_ = options.ctx_size != 0 ? options.ctx_size : DefaultCtxSize(program.hook);
    mode_ = program.mode;
    analysis_.mem.resize(program.insns.size());
    analysis_.insn_visited.assign(program.insns.size(), 0);
    visit_count_.resize(program.insns.size(), 0);
  }

  StatusOr<Analysis> Run();

 private:
  struct Pending {
    size_t pc;
    VerifierState st;
  };

  Status ValidateStructure();
  Status ExplorePath(size_t pc, VerifierState st);

  Status ApplyAlu(VerifierState& st, const Insn& insn, size_t pc);
  Status ApplyLdImm64(VerifierState& st, const Insn& lo, const Insn& hi, size_t pc);
  Status CheckMem(VerifierState& st, const Insn& insn, size_t pc);
  Status CheckCall(VerifierState& st, const Insn& insn, size_t pc);
  Status CheckExit(VerifierState& st, size_t pc);
  Status CheckStackAccess(VerifierState& st, const Insn& insn, size_t pc, const RegState& base,
                          bool is_store, bool is_atomic);
  Status CheckStackMemArg(const VerifierState& st, const RegState& ptr, uint32_t size,
                          size_t pc, const char* what);
  // Handles a conditional jump: refines both branch states, pushes the
  // fall-through state, and advances pc to the taken target. Sets path_done
  // when no live successor continues inline.
  Status HandleCondJmp(VerifierState& st, const Insn& insn, size_t& pc, bool& path_done);
  void MarkNull(VerifierState& st, uint8_t reg_idx);
  static void MarkNonNull(VerifierState& st, uint8_t reg_idx);
  // Registers the back edge at `edge_pc` on the path's active set and
  // records the object table for the state at the edge (the precise held
  // set if the edge later becomes a cancellation point).
  Status FollowBackEdge(VerifierState& st, size_t edge_pc);

  Status RecordMemInfo(size_t pc, MemRegion region, bool needs_guard, bool formation);
  void RecordStoreSource(size_t pc, bool src_is_heap_ptr);
  Status RecordObjectTable(size_t pc, const VerifierState& st);

  // Returns true if the state was pruned.
  enum class PruneResult { kContinue, kPrune, kError };
  PruneResult PruneOrWiden(size_t pc, VerifierState& st, Status& error);

  // A path failed to converge concretely at `converge_pc` with `edges` on
  // its active back-edge set: decide which of them become cancellation
  // points.
  void MarkCancellationEdges(size_t converge_pc, const std::vector<size_t>& edges);

  bool IsValidTarget(size_t pc) const {
    return pc < prog_.insns.size() && valid_start_[pc];
  }

  const MapDescriptor* FindMap(uint32_t id) const {
    for (const MapDescriptor& m : opts_.maps) {
      if (m.id == id) {
        return &m;
      }
    }
    return nullptr;
  }

  const Program& prog_;
  VerifyOptions opts_;
  Analysis analysis_;
  uint64_t heap_size_;
  uint32_t ctx_size_;
  ExtensionMode mode_;

  std::vector<Pending> work_;
  std::vector<bool> valid_start_;
  std::set<size_t> prune_points_;
  std::map<size_t, std::vector<VerifierState>> stored_;
  std::vector<size_t> visit_count_;

  // Whole-program structure (built once after ValidateStructure) used to
  // scope cancellation points to the loops that actually fail to converge
  // and to prune dead object-table entries.
  std::optional<Cfg> cfg_;
  std::optional<Liveness> liveness_;
  // Every back edge the path-sensitive rule would have marked (the
  // pre-refinement, conservative set), for the pruned_back_edges counter.
  std::set<size_t> conservative_edges_;
  // Object-table entries the conservative location policy would have used
  // but liveness replaced with a live alias, per pc.
  std::map<size_t, std::set<ObjectTableEntry>> pruned_entry_candidates_;
};

Status VerifierImpl::ValidateStructure() {
  const auto& insns = prog_.insns;
  if (insns.empty()) {
    return VerificationFailed("empty program");
  }
  valid_start_.assign(insns.size(), true);
  for (size_t pc = 0; pc < insns.size(); pc++) {
    const Insn& insn = insns[pc];
    if (insn.dst >= kNumRegs || insn.src >= kNumRegs) {
      return VerificationFailed(PcMsg(pc, "invalid register number"));
    }
    if (insn.dst > kMaxUserReg || insn.src > kMaxUserReg) {
      return VerificationFailed(PcMsg(pc, "R11 (AX) is reserved for instrumentation"));
    }
    if (insn.IsLdImm64()) {
      if (pc + 1 >= insns.size() || insns[pc + 1].opcode != 0) {
        return VerificationFailed(PcMsg(pc, "truncated ld_imm64"));
      }
      valid_start_[pc + 1] = false;
      pc++;
      continue;
    }
    if (insn.opcode == 0) {
      return VerificationFailed(PcMsg(pc, "invalid opcode 0"));
    }
    if (insn.IsAlu()) {
      uint8_t op = insn.AluOpField();
      bool known = op == BPF_ADD || op == BPF_SUB || op == BPF_MUL || op == BPF_DIV ||
                   op == BPF_OR || op == BPF_AND || op == BPF_LSH || op == BPF_RSH ||
                   op == BPF_NEG || op == BPF_MOD || op == BPF_XOR || op == BPF_MOV ||
                   op == BPF_ARSH;
      if (!known) {
        return VerificationFailed(PcMsg(pc, "unknown ALU op"));
      }
      if (insn.dst == R10) {
        return VerificationFailed(PcMsg(pc, "R10 (frame pointer) is read-only"));
      }
      if (insn.SrcField() == BPF_K) {
        if ((op == BPF_DIV || op == BPF_MOD) && insn.imm == 0) {
          return VerificationFailed(PcMsg(pc, "division by constant zero"));
        }
        int width = insn.Class() == BPF_ALU64 ? 64 : 32;
        if ((op == BPF_LSH || op == BPF_RSH || op == BPF_ARSH) &&
            (insn.imm < 0 || insn.imm >= width)) {
          return VerificationFailed(PcMsg(pc, "shift amount out of range"));
        }
      }
      continue;
    }
    if (insn.IsLoad() || insn.IsStore() || insn.IsAtomic()) {
      if (insn.IsAtomic()) {
        int32_t aop = insn.imm;
        bool ok = aop == BPF_ATOMIC_ADD || aop == (BPF_ATOMIC_ADD | BPF_ATOMIC_FETCH) ||
                  aop == BPF_ATOMIC_XCHG || aop == BPF_ATOMIC_CMPXCHG;
        if (!ok) {
          return VerificationFailed(PcMsg(pc, "unknown atomic op"));
        }
        if (insn.SizeField() != BPF_W && insn.SizeField() != BPF_DW) {
          return VerificationFailed(PcMsg(pc, "atomic requires 4- or 8-byte size"));
        }
      }
      continue;
    }
    if (insn.IsJmp()) {
      uint8_t op = insn.AluOpField();
      if (op == BPF_CALL) {
        if (FindHelperContract(insn.imm) == nullptr) {
          return VerificationFailed(PcMsg(pc, "call to unknown helper"));
        }
        continue;
      }
      if (op == BPF_EXIT) {
        continue;
      }
      bool known = op == BPF_JA || op == BPF_JEQ || op == BPF_JGT || op == BPF_JGE ||
                   op == BPF_JSET || op == BPF_JNE || op == BPF_JSGT || op == BPF_JSGE ||
                   op == BPF_JLT || op == BPF_JLE || op == BPF_JSLT || op == BPF_JSLE;
      if (!known) {
        return VerificationFailed(PcMsg(pc, "unknown jump op"));
      }
      continue;
    }
    return VerificationFailed(PcMsg(pc, "unsupported instruction class"));
  }
  // Jump targets must land on instruction boundaries.
  for (size_t pc = 0; pc < insns.size(); pc++) {
    const Insn& insn = insns[pc];
    if (insn.IsLdImm64()) {
      pc++;
      continue;
    }
    if (insn.IsJmp() && !insn.IsCall() && !insn.IsExit()) {
      int64_t target = static_cast<int64_t>(pc) + 1 + insn.off;
      if (target < 0 || target >= static_cast<int64_t>(insns.size()) ||
          !valid_start_[static_cast<size_t>(target)]) {
        return VerificationFailed(PcMsg(pc, "jump out of range"));
      }
      prune_points_.insert(static_cast<size_t>(target));
      if (insn.IsCondJmp()) {
        prune_points_.insert(pc + 1);
      }
    }
  }
  prune_points_.insert(0);
  return OkStatus();
}

Status VerifierImpl::ApplyLdImm64(VerifierState& st, const Insn& lo, const Insn& hi, size_t pc) {
  uint64_t imm = LdImm64Value(lo, hi);
  RegState& dst = st.regs[lo.dst];
  switch (lo.src) {
    case kPseudoNone:
      dst = RegState::ConstScalar(imm);
      return OkStatus();
    case kPseudoHeapVar:
      if (mode_ != ExtensionMode::kKflex) {
        return VerificationFailed(PcMsg(pc, "extension heap requires KFlex mode"));
      }
      if (heap_size_ == 0) {
        return VerificationFailed(PcMsg(pc, "program declares no heap (kflex_heap missing)"));
      }
      if (imm >= heap_size_) {
        return VerificationFailed(PcMsg(pc, "heap variable offset beyond heap size"));
      }
      dst = RegState::Pointer(RegType::kPtrToHeap, static_cast<int64_t>(imm));
      return OkStatus();
    case kPseudoMapId: {
      const MapDescriptor* map = FindMap(static_cast<uint32_t>(imm));
      if (map == nullptr) {
        return VerificationFailed(PcMsg(pc, "reference to unknown map"));
      }
      dst = RegState::Pointer(RegType::kConstPtrToMap, 0);
      dst.map_id = map->id;
      return OkStatus();
    }
    default:
      return VerificationFailed(PcMsg(pc, "unknown ld_imm64 pseudo kind"));
  }
}

Status VerifierImpl::ApplyAlu(VerifierState& st, const Insn& insn, size_t pc) {
  bool is64 = insn.Class() == BPF_ALU64;
  uint8_t op = insn.AluOpField();
  RegState& dst = st.regs[insn.dst];

  // MOV is special: it overwrites rather than reads dst.
  if (op == BPF_MOV) {
    if (insn.SrcField() == BPF_K) {
      uint64_t v = is64 ? SextImm(insn.imm) : static_cast<uint32_t>(insn.imm);
      dst = RegState::ConstScalar(v);
      return OkStatus();
    }
    const RegState& src = st.regs[insn.src];
    if (src.type == RegType::kNotInit) {
      return VerificationFailed(PcMsg(pc, "read of uninitialized register"));
    }
    if (is64) {
      dst = src;
      return OkStatus();
    }
    // 32-bit move truncates: pointers lose provenance.
    if (IsPointerType(src.type)) {
      if (mode_ != ExtensionMode::kKflex) {
        return VerificationFailed(PcMsg(pc, "32-bit move of pointer"));
      }
      dst = RegState::UnknownScalar();
      dst.umax = 0xFFFFFFFFULL;
      dst.DeduceBounds();
      return OkStatus();
    }
    dst = src;
    dst.var = TnumCast(dst.var, 4);
    dst.umin = 0;
    dst.umax = 0xFFFFFFFFULL;
    dst.smin = 0;
    dst.smax = 0xFFFFFFFFLL;
    dst.DeduceBounds();
    return OkStatus();
  }

  if (dst.type == RegType::kNotInit) {
    return VerificationFailed(PcMsg(pc, "ALU on uninitialized register"));
  }
  if (op == BPF_NEG) {
    if (IsPointerType(dst.type)) {
      if (mode_ != ExtensionMode::kKflex) {
        return VerificationFailed(PcMsg(pc, "arithmetic on pointer"));
      }
      dst = RegState::UnknownScalar();
      return OkStatus();
    }
    RegState zero = RegState::ConstScalar(0);
    dst = ScalarBinop(BPF_SUB, zero, dst);
    if (!is64) {
      dst.var = TnumCast(dst.var, 4);
      dst.umin = 0;
      dst.umax = 0xFFFFFFFFULL;
      dst.smin = 0;
      dst.smax = 0xFFFFFFFFLL;
      dst.DeduceBounds();
    }
    return OkStatus();
  }

  // Materialize the operand.
  RegState operand;
  if (insn.SrcField() == BPF_K) {
    operand = RegState::ConstScalar(is64 ? SextImm(insn.imm) : static_cast<uint32_t>(insn.imm));
  } else {
    operand = st.regs[insn.src];
    if (operand.type == RegType::kNotInit) {
      return VerificationFailed(PcMsg(pc, "read of uninitialized register"));
    }
  }

  bool dst_ptr = IsPointerType(dst.type);
  bool src_ptr = IsPointerType(operand.type);

  if (!dst_ptr && !src_ptr) {
    RegState result = ScalarBinop(static_cast<AluOp>(op), dst, operand);
    if (!is64) {
      result.var = TnumCast(result.var, 4);
      result.umin = 0;
      result.umax = 0xFFFFFFFFULL;
      result.smin = 0;
      result.smax = 0xFFFFFFFFLL;
      result.DeduceBounds();
    }
    dst = result;
    return OkStatus();
  }

  // Pointer arithmetic. Only 64-bit ADD/SUB keep pointer provenance.
  auto scalarize = [&]() -> Status {
    if (mode_ != ExtensionMode::kKflex) {
      return VerificationFailed(PcMsg(pc, "disallowed arithmetic on pointer"));
    }
    dst = RegState::UnknownScalar();
    return OkStatus();
  };

  if (!is64) {
    return scalarize();
  }

  if (op == BPF_ADD) {
    // ptr + scalar or scalar + ptr.
    const RegState& ptr = dst_ptr ? dst : operand;
    const RegState& delta = dst_ptr ? operand : dst;
    if (IsPointerType(delta.type)) {
      return scalarize();  // ptr + ptr has no meaning.
    }
    if (IsNullablePtr(ptr.type) || ptr.type == RegType::kPtrToSocket ||
        ptr.type == RegType::kConstPtrToMap) {
      return VerificationFailed(PcMsg(pc, "arithmetic on non-memory pointer"));
    }
    if ((ptr.type == RegType::kPtrToStack || ptr.type == RegType::kPtrToCtx ||
         ptr.type == RegType::kPtrToMapValue) &&
        !delta.IsConst()) {
      // Keep stack/ctx/map pointer offsets statically known. Variable ctx /
      // map-value offsets are checked against bounds at the access.
      if (ptr.type == RegType::kPtrToStack) {
        return VerificationFailed(PcMsg(pc, "variable offset on stack pointer"));
      }
    }
    RegState result = ptr;
    RegState off = ScalarBinop(BPF_ADD, [&] {
      RegState tmp = RegState::UnknownScalar();
      tmp.var = ptr.var;
      tmp.umin = ptr.umin;
      tmp.umax = ptr.umax;
      tmp.smin = ptr.smin;
      tmp.smax = ptr.smax;
      tmp.type = RegType::kScalar;
      return tmp;
    }(), delta);
    result.var = off.var;
    result.umin = off.umin;
    result.umax = off.umax;
    result.smin = off.smin;
    result.smax = off.smax;
    dst = result;
    return OkStatus();
  }

  if (op == BPF_SUB) {
    if (dst_ptr && !src_ptr) {
      if (IsNullablePtr(dst.type) || dst.type == RegType::kPtrToSocket ||
          dst.type == RegType::kConstPtrToMap) {
        return VerificationFailed(PcMsg(pc, "arithmetic on non-memory pointer"));
      }
      if (dst.type == RegType::kPtrToStack && !operand.IsConst()) {
        return VerificationFailed(PcMsg(pc, "variable offset on stack pointer"));
      }
      RegState offreg = RegState::UnknownScalar();
      offreg.var = dst.var;
      offreg.umin = dst.umin;
      offreg.umax = dst.umax;
      offreg.smin = dst.smin;
      offreg.smax = dst.smax;
      RegState off = ScalarBinop(BPF_SUB, offreg, operand);
      RegState result = dst;
      result.var = off.var;
      result.umin = off.umin;
      result.umax = off.umax;
      result.smin = off.smin;
      result.smax = off.smax;
      dst = result;
      return OkStatus();
    }
    if (dst_ptr && src_ptr && dst.type == operand.type) {
      // ptr - ptr of the same region yields a scalar offset difference.
      RegState a = RegState::UnknownScalar();
      a.var = dst.var;
      a.umin = dst.umin;
      a.umax = dst.umax;
      a.smin = dst.smin;
      a.smax = dst.smax;
      RegState b = RegState::UnknownScalar();
      b.var = operand.var;
      b.umin = operand.umin;
      b.umax = operand.umax;
      b.smin = operand.smin;
      b.smax = operand.smax;
      dst = ScalarBinop(BPF_SUB, a, b);
      return OkStatus();
    }
    return scalarize();
  }

  return scalarize();
}

Status VerifierImpl::CheckStackAccess(VerifierState& st, const Insn& insn, size_t pc,
                                      const RegState& base, bool is_store, bool is_atomic) {
  if (!base.HasConstOffset()) {
    return VerificationFailed(PcMsg(pc, "variable-offset stack access"));
  }
  int64_t total = static_cast<int64_t>(base.var.value) + insn.off;
  int size = insn.AccessSize();
  if (total < -kStackSize || total + size > 0) {
    return VerificationFailed(PcMsg(pc, "stack access out of bounds"));
  }
  int first_slot = static_cast<int>((kStackSize + total) / 8);
  int last_slot = static_cast<int>((kStackSize + total + size - 1) / 8);

  if (is_store || is_atomic) {
    bool aligned_full = size == 8 && (kStackSize + total) % 8 == 0;
    if (aligned_full && !is_atomic && insn.Class() == BPF_STX) {
      // Full-width spill preserves the source register's abstract state.
      st.stack[static_cast<size_t>(first_slot)] =
          StackSlot{StackSlot::Kind::kSpill, st.regs[insn.src]};
    } else if (aligned_full && !is_atomic && insn.Class() == BPF_ST) {
      st.stack[static_cast<size_t>(first_slot)] =
          StackSlot{StackSlot::Kind::kSpill, RegState::ConstScalar(SextImm(insn.imm))};
    } else {
      for (int s = first_slot; s <= last_slot; s++) {
        st.stack[static_cast<size_t>(s)] = StackSlot{StackSlot::Kind::kMisc, RegState::NotInit()};
      }
    }
    if (is_atomic) {
      for (int s = first_slot; s <= last_slot; s++) {
        if (st.stack[static_cast<size_t>(s)].kind == StackSlot::Kind::kInvalid) {
          return VerificationFailed(PcMsg(pc, "atomic on uninitialized stack"));
        }
      }
    }
  }
  if (!is_store || is_atomic) {
    for (int s = first_slot; s <= last_slot; s++) {
      if (st.stack[static_cast<size_t>(s)].kind == StackSlot::Kind::kInvalid) {
        return VerificationFailed(PcMsg(pc, "read of uninitialized stack"));
      }
    }
    if (is_atomic) {
      ApplyAtomicResult(st, insn);
    }
    if (!is_atomic) {
      const StackSlot& slot = st.stack[static_cast<size_t>(first_slot)];
      if (size == 8 && (kStackSize + total) % 8 == 0 && slot.kind == StackSlot::Kind::kSpill) {
        st.regs[insn.dst] = slot.spill;
      } else {
        st.regs[insn.dst] = RegState::ScalarMaxBytes(size);
      }
    }
  }
  return RecordMemInfo(pc, MemRegion::kStack, /*needs_guard=*/false, /*formation=*/false);
}

Status VerifierImpl::CheckMem(VerifierState& st, const Insn& insn, size_t pc) {
  bool is_load = insn.IsLoad();
  bool is_atomic = insn.IsAtomic();
  bool is_store = insn.IsStore() || is_atomic;
  if (is_atomic && insn.imm == BPF_ATOMIC_CMPXCHG &&
      st.regs[R0].type != RegType::kScalar) {
    return VerificationFailed(PcMsg(pc, "cmpxchg requires a scalar in R0"));
  }
  uint8_t base_reg = is_load ? insn.src : insn.dst;
  RegState& base = st.regs[base_reg];
  int size = insn.AccessSize();

  if (insn.Class() == BPF_STX || is_atomic) {
    if (st.regs[insn.src].type == RegType::kNotInit) {
      return VerificationFailed(PcMsg(pc, "store of uninitialized register"));
    }
  }
  if (base.type == RegType::kNotInit) {
    return VerificationFailed(PcMsg(pc, "memory access via uninitialized register"));
  }
  if (IsNullablePtr(base.type)) {
    if (!opts_.audit_replay) {
      return VerificationFailed(PcMsg(pc, "possibly-NULL pointer dereference; add a null check"));
    }
    // Contract-audit replay: assume non-NULL and keep going — a NULL at
    // runtime faults in the guard zone and cancels the invocation, which is
    // exactly the divergence the replay confirmer is looking for.
    MarkNonNull(st, base_reg);
  }

  switch (base.type) {
    case RegType::kPtrToStack:
      return CheckStackAccess(st, insn, pc, base, is_store, is_atomic);

    case RegType::kPtrToCtx: {
      int64_t lo = base.smin + insn.off;
      int64_t hi = base.smax + insn.off + size;
      if (lo < 0 || hi > static_cast<int64_t>(ctx_size_)) {
        return VerificationFailed(PcMsg(pc, "ctx access out of bounds"));
      }
      if (is_load) {
        st.regs[insn.dst] = RegState::ScalarMaxBytes(size);
      } else if (is_atomic) {
        ApplyAtomicResult(st, insn);
      }
      return RecordMemInfo(pc, MemRegion::kCtx, false, false);
    }

    case RegType::kPtrToMapValue: {
      const MapDescriptor* map = FindMap(base.map_id);
      if (map == nullptr) {
        return Internal(PcMsg(pc, "map vanished"));
      }
      int64_t lo = base.smin + insn.off;
      int64_t hi = base.smax + insn.off + size;
      if (lo < 0 || hi > static_cast<int64_t>(map->value_size)) {
        return VerificationFailed(PcMsg(pc, "map value access out of bounds"));
      }
      if (is_load) {
        st.regs[insn.dst] = RegState::ScalarMaxBytes(size);
      } else if (is_atomic) {
        ApplyAtomicResult(st, insn);
      }
      return RecordMemInfo(pc, MemRegion::kMapValue, false, false);
    }

    case RegType::kPtrToHeap: {
      if (mode_ != ExtensionMode::kKflex) {
        return VerificationFailed(PcMsg(pc, "heap access requires KFlex mode"));
      }
      // Range analysis: provably within heap +/- guard zones => elide guard.
      int64_t guard = static_cast<int64_t>(opts_.guard_zone_size);
      bool in_bounds = false;
      // Use 128-bit arithmetic to avoid overflow traps in the bound check.
      __int128 lo = static_cast<__int128>(base.smin) + insn.off;
      __int128 hi = static_cast<__int128>(base.smax) + insn.off + size;
      if (lo >= -static_cast<__int128>(guard) &&
          hi <= static_cast<__int128>(heap_size_) + guard) {
        in_bounds = true;
      }
      if (insn.Class() == BPF_STX && !is_atomic && size == 8) {
        RecordStoreSource(pc, st.regs[insn.src].type == RegType::kPtrToHeap);
      }
      if (is_load) {
        st.regs[insn.dst] = RegState::ScalarMaxBytes(size);
      } else if (is_atomic) {
        ApplyAtomicResult(st, insn);
      }
      KFLEX_RETURN_IF_ERROR(RecordMemInfo(pc, MemRegion::kHeap, !in_bounds, false));
      return RecordObjectTable(pc, st);
    }

    case RegType::kScalar: {
      // Dereferencing an untrusted scalar: in KFlex this is a heap access
      // through a pointer loaded from (user-shared) heap memory. Kie emits a
      // formation guard; the runtime masks the address into the heap.
      if (mode_ != ExtensionMode::kKflex) {
        return VerificationFailed(PcMsg(pc, "dereference of scalar value"));
      }
      if (heap_size_ == 0) {
        return VerificationFailed(PcMsg(pc, "scalar dereference without extension heap"));
      }
      if (insn.Class() == BPF_STX && !is_atomic && size == 8) {
        RecordStoreSource(pc, st.regs[insn.src].type == RegType::kPtrToHeap);
      }
      if (is_load) {
        st.regs[insn.dst] = RegState::ScalarMaxBytes(size);
      } else if (is_atomic) {
        ApplyAtomicResult(st, insn);
      }
      KFLEX_RETURN_IF_ERROR(RecordMemInfo(pc, MemRegion::kHeap, true, true));
      return RecordObjectTable(pc, st);
    }

    default:
      return VerificationFailed(PcMsg(pc, std::string("cannot access memory via ") +
                                              RegTypeName(base.type)));
  }
}

Status VerifierImpl::CheckStackMemArg(const VerifierState& st, const RegState& ptr,
                                      uint32_t size, size_t pc, const char* what) {
  if (ptr.type != RegType::kPtrToStack) {
    return VerificationFailed(PcMsg(pc, std::string(what) + ": expected stack pointer"));
  }
  if (!ptr.HasConstOffset()) {
    return VerificationFailed(PcMsg(pc, std::string(what) + ": variable stack offset"));
  }
  int64_t total = static_cast<int64_t>(ptr.var.value);
  if (total < -kStackSize || total + static_cast<int64_t>(size) > 0) {
    return VerificationFailed(PcMsg(pc, std::string(what) + ": stack range out of bounds"));
  }
  int first_slot = static_cast<int>((kStackSize + total) / 8);
  int last_slot = static_cast<int>((kStackSize + total + size - 1) / 8);
  for (int s = first_slot; s <= last_slot; s++) {
    if (st.stack[static_cast<size_t>(s)].kind == StackSlot::Kind::kInvalid) {
      return VerificationFailed(PcMsg(pc, std::string(what) + ": uninitialized stack bytes"));
    }
  }
  return OkStatus();
}

Status VerifierImpl::CheckCall(VerifierState& st, const Insn& insn, size_t pc) {
  const HelperContract* contract = FindHelperContract(insn.imm);
  if (contract == nullptr) {
    return VerificationFailed(PcMsg(pc, "unknown helper"));
  }
  if (mode_ == ExtensionMode::kEbpf && !contract->ebpf_compatible) {
    return VerificationFailed(
        PcMsg(pc, std::string(contract->name) + " is unavailable in strict eBPF mode"));
  }

  const MapDescriptor* map = nullptr;
  uint64_t lock_off = 0;
  uint32_t released_ref = 0;
  uint64_t const_size_arg = 0;
  uint64_t malloc_size = 0;
  if (contract->id == kHelperKflexMalloc && st.regs[R1].IsConst()) {
    malloc_size = st.regs[R1].ConstValue();
  }

  for (int i = 0; i < 5; i++) {
    HelperArgType arg_type = contract->args[i];
    if (arg_type == HelperArgType::kNone) {
      continue;
    }
    const RegState& arg = st.regs[static_cast<size_t>(R1 + i)];
    if (arg.type == RegType::kNotInit) {
      return VerificationFailed(PcMsg(pc, std::string(contract->name) + ": uninitialized arg"));
    }
    switch (arg_type) {
      case HelperArgType::kScalar:
        if (arg.type != RegType::kScalar) {
          return VerificationFailed(PcMsg(pc, std::string(contract->name) + ": expected scalar"));
        }
        break;
      case HelperArgType::kConstScalar:
        if (!arg.IsConst()) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": expected constant"));
        }
        break;
      case HelperArgType::kPtrToCtx:
        if (arg.type != RegType::kPtrToCtx) {
          return VerificationFailed(PcMsg(pc, std::string(contract->name) + ": expected ctx"));
        }
        break;
      case HelperArgType::kConstMapPtr: {
        if (arg.type != RegType::kConstPtrToMap) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": expected map pointer"));
        }
        map = FindMap(arg.map_id);
        if (map == nullptr) {
          return Internal(PcMsg(pc, "map vanished"));
        }
        // Map-kind compatibility: ring buffers only work with
        // bpf_ringbuf_output, and vice versa.
        bool wants_ringbuf = contract->id == kHelperRingbufOutput;
        if (wants_ringbuf != (map->type == MapType::kRingBuf)) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": incompatible map type"));
        }
        break;
      }
      case HelperArgType::kStackMem: {
        // Size is helper-specific: map key/value size or a following
        // kMemSize constant argument.
        uint32_t size = 0;
        if (contract->id == kHelperMapLookupElem || contract->id == kHelperMapDeleteElem) {
          size = map != nullptr ? map->key_size : 0;
        } else if (contract->id == kHelperMapUpdateElem) {
          size = (i == 1) ? (map != nullptr ? map->key_size : 0)
                          : (map != nullptr ? map->value_size : 0);
        } else if (i + 1 < 5 && contract->args[i + 1] == HelperArgType::kMemSize) {
          const RegState& size_arg = st.regs[static_cast<size_t>(R1 + i + 1)];
          if (!size_arg.IsConst()) {
            return VerificationFailed(
                PcMsg(pc, std::string(contract->name) + ": size must be constant"));
          }
          const_size_arg = size_arg.ConstValue();
          size = static_cast<uint32_t>(const_size_arg);
        }
        if (size == 0 || size > kStackSize) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": bad memory size"));
        }
        KFLEX_RETURN_IF_ERROR(CheckStackMemArg(st, arg, size, pc, contract->name));
        break;
      }
      case HelperArgType::kMemSize:
        if (!arg.IsConst()) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": size must be constant"));
        }
        break;
      case HelperArgType::kHeapAddr:
        if (arg.type != RegType::kPtrToHeap &&
            !(mode_ == ExtensionMode::kKflex && arg.type == RegType::kScalar)) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": expected heap address"));
        }
        break;
      case HelperArgType::kHeapConstAddr:
        if (arg.type != RegType::kPtrToHeap || !arg.HasConstOffset()) {
          return VerificationFailed(PcMsg(
              pc, std::string(contract->name) + ": expected heap pointer with constant offset"));
        }
        lock_off = arg.var.value;
        break;
      case HelperArgType::kSocket: {
        if (arg.type != RegType::kPtrToSocket || arg.ref_id == 0) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": expected referenced socket"));
        }
        bool found = false;
        for (const RefInfo& ref : st.refs) {
          if (ref.id == arg.ref_id) {
            found = true;
            break;
          }
        }
        if (!found) {
          return VerificationFailed(
              PcMsg(pc, std::string(contract->name) + ": reference already released"));
        }
        released_ref = arg.ref_id;
        break;
      }
      case HelperArgType::kNone:
        break;
    }
  }

  // Resource effects.
  if (contract->releases == ResourceKind::kSocket) {
    std::erase_if(st.refs, [&](const RefInfo& r) { return r.id == released_ref; });
    for (RegState& reg : st.regs) {
      if (reg.ref_id == released_ref) {
        reg = RegState::UnknownScalar();
      }
    }
    for (StackSlot& slot : st.stack) {
      if (slot.kind == StackSlot::Kind::kSpill && slot.spill.ref_id == released_ref) {
        slot = StackSlot{StackSlot::Kind::kMisc, RegState::NotInit()};
      }
    }
  }
  if (contract->acquires == ResourceKind::kLock) {
    // A spin-lock waiter may be cancelled while blocked (deadlock, §3.4):
    // record the resources held *before* this acquisition so the runtime can
    // release them at this call site.
    KFLEX_RETURN_IF_ERROR(RecordObjectTable(pc, st));
    if (mode_ == ExtensionMode::kEbpf && !st.locks.empty()) {
      return VerificationFailed(PcMsg(pc, "eBPF mode permits at most one held lock"));
    }
    for (const LockInfo& lock : st.locks) {
      if (lock.heap_off == lock_off) {
        return VerificationFailed(PcMsg(pc, "deadlock: lock already held"));
      }
    }
    st.locks.push_back(LockInfo{lock_off, pc});
  }
  if (contract->releases == ResourceKind::kLock) {
    auto it = std::find_if(st.locks.begin(), st.locks.end(),
                           [&](const LockInfo& l) { return l.heap_off == lock_off; });
    if (it == st.locks.end()) {
      return VerificationFailed(PcMsg(pc, "unlock of a lock that is not held"));
    }
    st.locks.erase(it);
  }

  // Clobber caller-saved registers and type the return value.
  for (int r = R1; r <= R5; r++) {
    st.regs[static_cast<size_t>(r)] = RegState::NotInit();
  }
  switch (contract->ret) {
    case HelperRetType::kVoid:
      st.regs[R0] = RegState::NotInit();
      break;
    case HelperRetType::kScalar:
      st.regs[R0] = RegState::UnknownScalar();
      break;
    case HelperRetType::kMapValueOrNull:
      st.regs[R0] = RegState::Pointer(RegType::kPtrToMapValueOrNull, 0);
      st.regs[R0].map_id = map != nullptr ? map->id : 0;
      break;
    case HelperRetType::kHeapPtrOrNull: {
      // The allocator returns memory inside the heap; with a constant request
      // size the object starts no later than heap_size - size, which lets the
      // range analysis elide guards on field accesses (§3.2).
      uint64_t limit = heap_size_ > 0 ? heap_size_ - 1 : 0;
      if (malloc_size > 0 && malloc_size <= heap_size_) {
        limit = heap_size_ - malloc_size;
      }
      st.regs[R0] = RegState::Pointer(RegType::kPtrToHeapOrNull, 0);
      st.regs[R0].umin = 0;
      st.regs[R0].umax = limit;
      st.regs[R0].smin = 0;
      st.regs[R0].smax = static_cast<int64_t>(limit);
      st.regs[R0].var = Tnum::Range(0, limit);
      break;
    }
    case HelperRetType::kSocketOrNull: {
      RegState sock = RegState::Pointer(RegType::kPtrToSocketOrNull, 0);
      sock.ref_id = st.next_ref_id++;
      st.refs.push_back(RefInfo{sock.ref_id, contract->acquires, contract->destructor, pc});
      st.regs[R0] = sock;
      break;
    }
  }
  return OkStatus();
}

Status VerifierImpl::CheckExit(VerifierState& st, size_t pc) {
  if (st.regs[R0].type != RegType::kScalar) {
    return VerificationFailed(PcMsg(pc, "R0 must hold a scalar verdict at exit"));
  }
  if (opts_.audit_replay) {
    // Contract-audit replay: the distilled witness is expected to exit with
    // resources held. Record held locks in an object table at the exit pc so
    // Runtime::SweepInvariants can observe the still-held lock word; leaked
    // socket refs are caught by the object-registry live count without any
    // table entry (and the handle may already be clobbered here, so the
    // alias scan in RecordObjectTable could not place one anyway).
    for (const LockInfo& lock : st.locks) {
      ObjectTableEntry entry;
      entry.kind = ResourceKind::kLock;
      entry.destructor = kHelperKflexSpinUnlock;
      entry.lock_off = lock.heap_off;
      analysis_.object_tables[pc].insert(entry);
    }
    return OkStatus();
  }
  if (!st.refs.empty()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "unreleased kernel reference acquired at insn %zu",
                  st.refs.front().acquire_pc);
    return VerificationFailed(PcMsg(pc, buf));
  }
  if (!st.locks.empty()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "lock (heap offset %llu) still held at exit",
                  static_cast<unsigned long long>(st.locks.front().heap_off));
    return VerificationFailed(PcMsg(pc, buf));
  }
  return OkStatus();
}

Status VerifierImpl::RecordMemInfo(size_t pc, MemRegion region, bool needs_guard,
                                   bool formation) {
  MemAccessInfo& info = analysis_.mem[pc];
  if (info.visited && info.region != region) {
    return VerificationFailed(
        PcMsg(pc, "memory access reaches this instruction with conflicting pointer types"));
  }
  info.visited = true;
  info.region = region;
  info.needs_guard = info.needs_guard || needs_guard;
  info.formation = info.formation || formation;
  return OkStatus();
}

void VerifierImpl::RecordStoreSource(size_t pc, bool src_is_heap_ptr) {
  MemAccessInfo& info = analysis_.mem[pc];
  if (!info.visited) {
    info.stores_heap_ptr = src_is_heap_ptr;
    return;
  }
  if (info.stores_mixed) {
    return;
  }
  if (info.stores_heap_ptr != src_is_heap_ptr) {
    info.stores_mixed = true;
    info.stores_heap_ptr = false;
  }
}

Status VerifierImpl::RecordObjectTable(size_t pc, const VerifierState& st) {
  if (st.refs.empty() && st.locks.empty()) {
    return OkStatus();
  }
  auto& table = analysis_.object_tables[pc];
  for (const RefInfo& ref : st.refs) {
    ObjectTableEntry base;
    base.kind = ref.kind;
    base.destructor = ref.destructor;
    // Collect every location aliasing the handle, in the conservative scan
    // order (registers ascending, then spilled stack slots) the table used
    // before liveness pruning.
    std::vector<ObjectTableEntry> aliases;
    std::vector<bool> alias_live;
    for (int r = 0; r <= kMaxUserReg; r++) {
      if (st.regs[static_cast<size_t>(r)].ref_id == ref.id) {
        ObjectTableEntry e = base;
        e.reg = r;
        aliases.push_back(e);
        alias_live.push_back(!liveness_ || liveness_->RegLiveIn(pc, r));
      }
    }
    for (int s = 0; s < kStackSlots; s++) {
      const StackSlot& slot = st.stack[static_cast<size_t>(s)];
      if (slot.kind == StackSlot::Kind::kSpill && slot.spill.ref_id == ref.id) {
        ObjectTableEntry e = base;
        e.stack_slot = s;
        aliases.push_back(e);
        alias_live.push_back(!liveness_ || liveness_->SlotLiveIn(pc, s));
      }
    }
    if (aliases.empty()) {
      return VerificationFailed(PcMsg(
          pc, "acquired reference is not addressable at a cancellation point"));
    }
    // Exactly one entry per reference (the runtime releases every table
    // entry on cancellation). Prefer the first location the program still
    // reads — a dead location may be clobbered by Kie or later code before
    // the fault surfaces. A handle that is dead everywhere must still be
    // released, so fall back to the first alias.
    size_t chosen = 0;
    for (size_t i = 0; i < aliases.size(); i++) {
      if (alias_live[i]) {
        chosen = i;
        break;
      }
    }
    table.insert(aliases[chosen]);
    if (chosen != 0) {
      pruned_entry_candidates_[pc].insert(aliases[0]);
    }
  }
  for (const LockInfo& lock : st.locks) {
    ObjectTableEntry entry;
    entry.kind = ResourceKind::kLock;
    entry.destructor = kHelperKflexSpinUnlock;
    entry.lock_off = lock.heap_off;
    table.insert(entry);
  }
  return OkStatus();
}

VerifierImpl::PruneResult VerifierImpl::PruneOrWiden(size_t pc, VerifierState& st,
                                                     Status& error) {
  st.NormalizeRefIds();
  auto& stored = stored_[pc];
  for (const VerifierState& seen : stored) {
    if (seen.Covers(st)) {
      // The continuation of this path was already verified from a wider
      // state: every loop the path is inside was not proven to terminate
      // concretely, so all of its back edges become cancellation points.
      if (!st.active_edges.empty()) {
        if (mode_ == ExtensionMode::kEbpf) {
          error = VerificationFailed(PcMsg(st.active_edges.back(),
                                           "back edge with unprovable termination (eBPF mode)"));
          return PruneResult::kError;
        }
        MarkCancellationEdges(pc, st.active_edges);
      }
      return PruneResult::kPrune;
    }
  }
  visit_count_[pc]++;
  if (visit_count_[pc] > opts_.max_insn_visits) {
    error = VerificationFailed(PcMsg(
        pc, mode_ == ExtensionMode::kEbpf
                ? "loop state does not converge (unbounded loop in eBPF mode)"
                : "loop does not converge; kernel resources must be released per iteration"));
    return PruneResult::kError;
  }
  if (visit_count_[pc] > opts_.widen_threshold && mode_ == ExtensionMode::kKflex) {
    // Widen against a stored state with identical resource shape so that
    // repeated visits converge.
    for (const VerifierState& seen : stored) {
      if (!RefsSameShape(seen, st)) {
        continue;
      }
      VerifierState widened = seen;
      widened.JoinWith(st);
      widened.active_edges = st.active_edges;
      st = widened;
      MarkCancellationEdges(pc, st.active_edges);
      break;
    }
  }
  stored.push_back(st);
  return PruneResult::kContinue;
}

void VerifierImpl::MarkCancellationEdges(size_t converge_pc, const std::vector<size_t>& edges) {
  for (size_t edge_pc : edges) {
    conservative_edges_.insert(edge_pc);
    // Only the loops that contain the point where convergence was forced
    // can actually iterate unboundedly: a loop whose body was fully
    // unrolled from concrete states never fails to converge at any pc
    // inside itself (its header is a prune point revisited each iteration).
    // Back edges that don't close a natural loop (irreducible control flow)
    // keep the conservative treatment.
    if (!cfg_ || !cfg_->IsNaturalBackEdge(edge_pc) ||
        cfg_->InLoopOfBackEdge(edge_pc, converge_pc)) {
      analysis_.cancellation_back_edges.insert(edge_pc);
    }
  }
}

Status VerifierImpl::ExplorePath(size_t start_pc, VerifierState start_st) {
  work_.push_back(Pending{start_pc, std::move(start_st)});
  while (!work_.empty()) {
    analysis_.explored_states++;
    if (analysis_.explored_states > opts_.max_states) {
      return VerificationFailed("program too complex: state limit exceeded");
    }
    size_t pc = work_.back().pc;
    VerifierState st = std::move(work_.back().st);
    work_.pop_back();

    bool path_done = false;
    while (!path_done) {
      if (pc >= prog_.insns.size()) {
        return VerificationFailed("execution falls off the end of the program");
      }
      analysis_.explored_insns++;
      if (analysis_.explored_insns > opts_.max_states * 8) {
        return VerificationFailed("program too complex: instruction visit limit exceeded");
      }
      analysis_.insn_visited[pc] = 1;

      if (prune_points_.count(pc) != 0) {
        Status error = OkStatus();
        PruneResult pr = PruneOrWiden(pc, st, error);
        if (pr == PruneResult::kError) {
          return error;
        }
        if (pr == PruneResult::kPrune) {
          break;
        }
      }

      const Insn& insn = prog_.insns[pc];
      if (insn.IsLdImm64()) {
        KFLEX_RETURN_IF_ERROR(ApplyLdImm64(st, insn, prog_.insns[pc + 1], pc));
        pc += 2;
        continue;
      }
      if (insn.IsAlu()) {
        KFLEX_RETURN_IF_ERROR(ApplyAlu(st, insn, pc));
        pc++;
        continue;
      }
      if (insn.IsLoad() || insn.IsStore() || insn.IsAtomic()) {
        KFLEX_RETURN_IF_ERROR(CheckMem(st, insn, pc));
        pc++;
        continue;
      }
      if (insn.IsCall()) {
        KFLEX_RETURN_IF_ERROR(CheckCall(st, insn, pc));
        pc++;
        continue;
      }
      if (insn.IsExit()) {
        KFLEX_RETURN_IF_ERROR(CheckExit(st, pc));
        path_done = true;
        continue;
      }
      if (insn.IsUncondJmp()) {
        size_t target = static_cast<size_t>(static_cast<int64_t>(pc) + 1 + insn.off);
        if (insn.off < 0) {
          KFLEX_RETURN_IF_ERROR(FollowBackEdge(st, pc));
        }
        pc = target;
        continue;
      }
      if (insn.IsCondJmp()) {
        KFLEX_RETURN_IF_ERROR(HandleCondJmp(st, insn, pc, path_done));
        continue;
      }
      return VerificationFailed(PcMsg(pc, "unsupported instruction"));
    }
  }
  return OkStatus();
}

Status VerifierImpl::FollowBackEdge(VerifierState& st, size_t edge_pc) {
  bool present = false;
  for (size_t e : st.active_edges) {
    if (e == edge_pc) {
      present = true;
      break;
    }
  }
  if (!present) {
    st.active_edges.push_back(edge_pc);
  }
  return RecordObjectTable(edge_pc, st);
}

void VerifierImpl::MarkNonNull(VerifierState& st, uint8_t reg_idx) {
  RegState& reg = st.regs[reg_idx];
  reg.type = NonNullVariant(reg.type);
}

void VerifierImpl::MarkNull(VerifierState& st, uint8_t reg_idx) {
  RegState& reg = st.regs[reg_idx];
  uint32_t rid = reg.ref_id;
  if (reg.type == RegType::kPtrToSocketOrNull && rid != 0) {
    // A NULL lookup result never acquired the reference: drop it.
    std::erase_if(st.refs, [&](const RefInfo& r) { return r.id == rid; });
    for (RegState& other : st.regs) {
      if (other.ref_id == rid) {
        other = RegState::ConstScalar(0);
      }
    }
    for (StackSlot& slot : st.stack) {
      if (slot.kind == StackSlot::Kind::kSpill && slot.spill.ref_id == rid) {
        slot.spill = RegState::ConstScalar(0);
      }
    }
    return;
  }
  reg = RegState::ConstScalar(0);
}

Status VerifierImpl::HandleCondJmp(VerifierState& st, const Insn& insn, size_t& pc,
                                   bool& path_done) {
  JmpOp op = static_cast<JmpOp>(insn.AluOpField());
  bool is64 = insn.Class() == BPF_JMP;
  RegState& dst = st.regs[insn.dst];
  if (dst.type == RegType::kNotInit) {
    return VerificationFailed(PcMsg(pc, "branch on uninitialized register"));
  }
  bool use_reg = insn.SrcField() == BPF_X;
  RegState operand;
  if (use_reg) {
    operand = st.regs[insn.src];
    if (operand.type == RegType::kNotInit) {
      return VerificationFailed(PcMsg(pc, "branch on uninitialized register"));
    }
  } else {
    operand =
        RegState::ConstScalar(is64 ? SextImm(insn.imm) : static_cast<uint32_t>(insn.imm));
  }

  size_t taken_pc = static_cast<size_t>(static_cast<int64_t>(pc) + 1 + insn.off);
  size_t fall_pc = pc + 1;
  bool backward = insn.off < 0;

  // NULL check on a nullable pointer: retype per branch.
  if (IsNullablePtr(dst.type) && !use_reg && insn.imm == 0 &&
      (op == BPF_JEQ || op == BPF_JNE) && is64) {
    VerifierState other = st;
    if (op == BPF_JEQ) {
      MarkNonNull(other, insn.dst);  // fall-through: != 0
      MarkNull(st, insn.dst);        // taken: == 0
    } else {
      MarkNull(other, insn.dst);
      MarkNonNull(st, insn.dst);
    }
    work_.push_back(Pending{fall_pc, std::move(other)});
    if (backward) {
      KFLEX_RETURN_IF_ERROR(FollowBackEdge(st, pc));
    }
    pc = taken_pc;
    return OkStatus();
  }

  bool dst_ptr = IsPointerType(dst.type);
  bool op_ptr = IsPointerType(operand.type);
  if (dst_ptr || op_ptr) {
    // Pointer comparison: allowed (e.g., list-walk termination p != head),
    // but no range refinement is derived.
    if (mode_ == ExtensionMode::kEbpf &&
        !(dst_ptr && op_ptr && dst.type == operand.type)) {
      return VerificationFailed(PcMsg(pc, "pointer comparison leaks pointer value (eBPF mode)"));
    }
    VerifierState other = st;
    work_.push_back(Pending{fall_pc, std::move(other)});
    if (backward) {
      KFLEX_RETURN_IF_ERROR(FollowBackEdge(st, pc));
    }
    pc = taken_pc;
    return OkStatus();
  }

  if (dst.IsConst() && operand.IsConst()) {
    if (EvalConstCond(op, dst.ConstValue(), operand.ConstValue(), is64)) {
      if (backward) {
        KFLEX_RETURN_IF_ERROR(FollowBackEdge(st, pc));
      }
      pc = taken_pc;
    } else {
      pc = fall_pc;
    }
    return OkStatus();
  }

  VerifierState else_st = st;
  bool taken_alive = true;
  bool else_alive = true;
  // JMP32 compares the low 32 bits. When both operands provably fit in
  // 32 bits (non-negative, below 2^32) the comparison coincides with the
  // 64-bit one and the same refinement applies; otherwise stay conservative
  // and explore both branches unrefined.
  bool refinable = is64 || (dst.umax <= 0xFFFFFFFFULL && dst.smin >= 0 &&
                            operand.umax <= 0xFFFFFFFFULL && operand.smin >= 0);
  if (refinable && op != BPF_JSET) {
    taken_alive = RefineAgainst(op, dst, operand.umin, operand.umax, operand.smin, operand.smax,
                                operand.var);
    if (use_reg && taken_alive) {
      const RegState refined = dst;
      taken_alive = RefineAgainst(MirrorJmpOp(op), st.regs[insn.src], refined.umin, refined.umax,
                                  refined.smin, refined.smax, refined.var);
    }
    JmpOp neg = NegateJmpOp(op);
    RegState& edst = else_st.regs[insn.dst];
    const RegState eoperand = use_reg ? else_st.regs[insn.src] : operand;
    else_alive = RefineAgainst(neg, edst, eoperand.umin, eoperand.umax, eoperand.smin,
                               eoperand.smax, eoperand.var);
    if (use_reg && else_alive) {
      const RegState erefined = edst;
      else_alive = RefineAgainst(MirrorJmpOp(neg), else_st.regs[insn.src], erefined.umin,
                                 erefined.umax, erefined.smin, erefined.smax, erefined.var);
    }
  }
  if (else_alive) {
    work_.push_back(Pending{fall_pc, std::move(else_st)});
  }
  if (taken_alive) {
    if (backward) {
      KFLEX_RETURN_IF_ERROR(FollowBackEdge(st, pc));
    }
    pc = taken_pc;
  } else {
    path_done = true;
  }
  return OkStatus();
}

StatusOr<Analysis> VerifierImpl::Run() {
  KFLEX_RETURN_IF_ERROR(ValidateStructure());
  if (heap_size_ != 0 && (heap_size_ & (heap_size_ - 1)) != 0) {
    return VerificationFailed("heap size must be a power of two");
  }

  // Whole-program structure: the CFG scopes cancellation points to the
  // loops that fail to converge, and liveness steers object-table entries
  // toward locations the program still reads.
  auto cfg = Cfg::Build(prog_);
  if (!cfg.ok()) {
    return Internal("cfg construction failed on a validated program: " +
                    cfg.status().ToString());
  }
  cfg_ = std::move(cfg).value();
  liveness_ = Liveness::Compute(prog_, *cfg_);

  KFLEX_RETURN_IF_ERROR(ExplorePath(0, VerifierState::Initial()));

  // Back edges the conservative path rule would have marked but the CFG
  // refinement exonerated are not cancellation points; neither are back
  // edges of loops that unrolled concretely. Drop their provisional object
  // tables so Kie never anchors a table to a plain jump.
  for (auto it = analysis_.object_tables.begin(); it != analysis_.object_tables.end();) {
    const Insn& insn = prog_.insns[it->first];
    bool non_cp_jump = (insn.IsUncondJmp() || insn.IsCondJmp()) &&
                       analysis_.cancellation_back_edges.count(it->first) == 0;
    if (non_cp_jump || it->second.empty()) {
      it = analysis_.object_tables.erase(it);
    } else {
      ++it;
    }
  }
  for (size_t edge_pc : conservative_edges_) {
    if (analysis_.cancellation_back_edges.count(edge_pc) == 0) {
      analysis_.pruned_back_edges++;
    }
  }
  // Count entries the pre-liveness policy would have emitted that no state
  // ended up needing (a state with no live alias re-inserts the fallback
  // entry, which then must not count as pruned).
  for (const auto& [pc, candidates] : pruned_entry_candidates_) {
    auto it = analysis_.object_tables.find(pc);
    if (it == analysis_.object_tables.end()) {
      continue;
    }
    for (const ObjectTableEntry& e : candidates) {
      if (it->second.count(e) == 0) {
        analysis_.pruned_object_entries++;
      }
    }
  }

  // Final statistics over statically classified accesses.
  for (const MemAccessInfo& info : analysis_.mem) {
    if (!info.visited || info.region != MemRegion::kHeap) {
      continue;
    }
    analysis_.heap_access_insns++;
    if (info.formation) {
      analysis_.formation_guards++;
    } else if (info.needs_guard) {
      analysis_.required_guards++;
    } else {
      analysis_.elided_guards++;
    }
  }
  if (analysis_.heap_access_insns !=
      analysis_.elided_guards + analysis_.required_guards + analysis_.formation_guards) {
    return Internal("analysis statistics inconsistent: heap accesses != elided + required + formation");
  }
  return analysis_;
}

}  // namespace

uint32_t DefaultCtxSize(Hook hook) {
  switch (hook) {
    case Hook::kXdp:
    case Hook::kSkSkb:
      return 2048;
    case Hook::kTracepoint:
    case Hook::kLsm:
      return 64;
  }
  return 64;
}

StatusOr<Analysis> Verify(const Program& program, const VerifyOptions& options) {
  VerifierImpl impl(program, options);
  StatusOr<Analysis> analysis = impl.Run();
  if (analysis.ok()) {
    KFLEX_TRACE(ObsEvent::kVerifierAccept,
                analysis->required_guards + analysis->formation_guards,
                analysis->pruned_object_entries);
  } else {
    KFLEX_TRACE(ObsEvent::kVerifierReject, program.insns.size(), 0);
  }
  return analysis;
}

}  // namespace kflex
