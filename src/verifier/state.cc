#include "src/verifier/state.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace kflex {

namespace {
constexpr int64_t kS64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kS64Max = std::numeric_limits<int64_t>::max();
constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();
}  // namespace

RegState ScalarBinop(AluOp op, const RegState& a, const RegState& b) {
  RegState r = RegState::UnknownScalar();
  switch (op) {
    case BPF_ADD: {
      r.var = TnumAdd(a.var, b.var);
      uint64_t lo = a.umin + b.umin;
      uint64_t hi = a.umax + b.umax;
      if (lo >= a.umin && hi >= a.umax) {  // no unsigned wrap
        r.umin = lo;
        r.umax = hi;
      }
      int64_t slo;
      int64_t shi;
      if (!__builtin_add_overflow(a.smin, b.smin, &slo) &&
          !__builtin_add_overflow(a.smax, b.smax, &shi)) {
        r.smin = slo;
        r.smax = shi;
      }
      break;
    }
    case BPF_SUB: {
      r.var = TnumSub(a.var, b.var);
      if (a.umin >= b.umax) {  // no unsigned wrap
        r.umin = a.umin - b.umax;
        r.umax = a.umax - b.umin;
      }
      int64_t slo;
      int64_t shi;
      if (!__builtin_sub_overflow(a.smin, b.smax, &slo) &&
          !__builtin_sub_overflow(a.smax, b.smin, &shi)) {
        r.smin = slo;
        r.smax = shi;
      }
      break;
    }
    case BPF_AND:
      r.var = TnumAnd(a.var, b.var);
      r.umin = 0;
      r.umax = std::min(a.umax, b.umax);
      if (a.smin >= 0 && b.smin >= 0) {
        r.smin = 0;
        r.smax = static_cast<int64_t>(r.umax);
      }
      break;
    case BPF_OR:
      r.var = TnumOr(a.var, b.var);
      r.umin = std::max(a.umin, b.umin);
      break;
    case BPF_XOR:
      r.var = TnumXor(a.var, b.var);
      break;
    case BPF_MUL:
      r.var = TnumMul(a.var, b.var);
      if (a.umax <= 0xFFFFFFFFULL && b.umax <= 0xFFFFFFFFULL) {
        r.umin = a.umin * b.umin;
        r.umax = a.umax * b.umax;
        if (a.smin >= 0 && b.smin >= 0) {
          r.smin = static_cast<int64_t>(r.umin);
          r.smax = static_cast<int64_t>(r.umax);
        }
      }
      break;
    case BPF_LSH:
      if (b.IsConst() && b.ConstValue() < 64) {
        uint8_t sh = static_cast<uint8_t>(b.ConstValue());
        r.var = TnumLshift(a.var, sh);
        if (sh == 0 || a.umax <= (kU64Max >> sh)) {
          r.umin = a.umin << sh;
          r.umax = a.umax << sh;
          if (a.smin >= 0 && r.umax <= static_cast<uint64_t>(kS64Max)) {
            r.smin = static_cast<int64_t>(r.umin);
            r.smax = static_cast<int64_t>(r.umax);
          }
        }
      }
      break;
    case BPF_RSH:
      if (b.IsConst() && b.ConstValue() < 64) {
        uint8_t sh = static_cast<uint8_t>(b.ConstValue());
        r.var = TnumRshift(a.var, sh);
        r.umin = a.umin >> sh;
        r.umax = a.umax >> sh;
        r.smin = static_cast<int64_t>(r.umin);
        r.smax = static_cast<int64_t>(r.umax);
      }
      break;
    case BPF_ARSH:
      if (b.IsConst() && b.ConstValue() < 64) {
        uint8_t sh = static_cast<uint8_t>(b.ConstValue());
        r.var = TnumArshift(a.var, sh);
        r.smin = a.smin >> sh;
        r.smax = a.smax >> sh;
      }
      break;
    case BPF_DIV:
      // eBPF: unsigned divide; x / 0 == 0.
      if (a.var.IsConst() && b.var.IsConst() && b.ConstValue() != 0) {
        return RegState::ConstScalar(a.ConstValue() / b.ConstValue());
      }
      r.umin = 0;
      r.umax = a.umax;
      r.smin = 0;
      r.smax = static_cast<int64_t>(std::min(a.umax, static_cast<uint64_t>(kS64Max)));
      break;
    case BPF_MOD:
      // eBPF: unsigned modulo; x % 0 == x.
      if (a.var.IsConst() && b.var.IsConst() && b.ConstValue() != 0) {
        return RegState::ConstScalar(a.ConstValue() % b.ConstValue());
      }
      r.umin = 0;
      if (b.umin > 0) {
        r.umax = b.umax - 1;
      } else {
        r.umax = std::max(a.umax, b.umax == 0 ? 0 : b.umax - 1);
      }
      r.smin = 0;
      r.smax = static_cast<int64_t>(std::min(r.umax, static_cast<uint64_t>(kS64Max)));
      break;
    default:
      break;
  }
  r.DeduceBounds();
  return r;
}

bool EvalConstCond(JmpOp op, uint64_t a, uint64_t b, bool is64) {
  if (!is64) {
    a = static_cast<uint32_t>(a);
    b = static_cast<uint32_t>(b);
  }
  int64_t sa = is64 ? static_cast<int64_t>(a) : static_cast<int32_t>(static_cast<uint32_t>(a));
  int64_t sb = is64 ? static_cast<int64_t>(b) : static_cast<int32_t>(static_cast<uint32_t>(b));
  switch (op) {
    case BPF_JEQ:
      return a == b;
    case BPF_JNE:
      return a != b;
    case BPF_JGT:
      return a > b;
    case BPF_JGE:
      return a >= b;
    case BPF_JLT:
      return a < b;
    case BPF_JLE:
      return a <= b;
    case BPF_JSGT:
      return sa > sb;
    case BPF_JSGE:
      return sa >= sb;
    case BPF_JSLT:
      return sa < sb;
    case BPF_JSLE:
      return sa <= sb;
    case BPF_JSET:
      return (a & b) != 0;
    default:
      return false;
  }
}

const char* RegTypeName(RegType type) {
  switch (type) {
    case RegType::kNotInit:
      return "not_init";
    case RegType::kScalar:
      return "scalar";
    case RegType::kPtrToCtx:
      return "ctx";
    case RegType::kPtrToStack:
      return "stack_ptr";
    case RegType::kPtrToHeap:
      return "heap_ptr";
    case RegType::kPtrToHeapOrNull:
      return "heap_ptr_or_null";
    case RegType::kConstPtrToMap:
      return "map_ptr";
    case RegType::kPtrToMapValue:
      return "map_value";
    case RegType::kPtrToMapValueOrNull:
      return "map_value_or_null";
    case RegType::kPtrToSocket:
      return "socket";
    case RegType::kPtrToSocketOrNull:
      return "socket_or_null";
  }
  return "?";
}

RegType NonNullVariant(RegType type) {
  switch (type) {
    case RegType::kPtrToHeapOrNull:
      return RegType::kPtrToHeap;
    case RegType::kPtrToMapValueOrNull:
      return RegType::kPtrToMapValue;
    case RegType::kPtrToSocketOrNull:
      return RegType::kPtrToSocket;
    default:
      return type;
  }
}

RegState RegState::ConstScalar(uint64_t v) {
  RegState reg;
  reg.type = RegType::kScalar;
  reg.var = Tnum::Const(v);
  reg.smin = static_cast<int64_t>(v);
  reg.smax = static_cast<int64_t>(v);
  reg.umin = v;
  reg.umax = v;
  return reg;
}

RegState RegState::UnknownScalar() {
  RegState reg;
  reg.type = RegType::kScalar;
  reg.var = Tnum::Unknown();
  reg.smin = kS64Min;
  reg.smax = kS64Max;
  reg.umin = 0;
  reg.umax = kU64Max;
  return reg;
}

RegState RegState::ScalarMaxBytes(int bytes) {
  RegState reg = UnknownScalar();
  if (bytes < 8) {
    uint64_t max = (1ULL << (bytes * 8)) - 1;
    reg.var = Tnum{0, max};
    reg.umin = 0;
    reg.umax = max;
    reg.smin = 0;
    reg.smax = static_cast<int64_t>(max);
  }
  return reg;
}

RegState RegState::Pointer(RegType type, int64_t off) {
  RegState reg;
  reg.type = type;
  reg.var = Tnum::Const(static_cast<uint64_t>(off));
  reg.smin = off;
  reg.smax = off;
  reg.umin = static_cast<uint64_t>(off);
  reg.umax = static_cast<uint64_t>(off);
  return reg;
}

void RegState::MarkOffsetUnknown() {
  var = Tnum::Unknown();
  smin = kS64Min;
  smax = kS64Max;
  umin = 0;
  umax = kU64Max;
}

bool RegState::DeduceBounds() {
  // Tighten unsigned bounds from the tnum.
  umin = std::max(umin, var.UMin());
  umax = std::min(umax, var.UMax());
  // Cross-propagate unsigned -> signed when the whole range shares a sign.
  if (umax <= static_cast<uint64_t>(kS64Max)) {
    // Entirely non-negative.
    smin = std::max(smin, static_cast<int64_t>(umin));
    smax = std::min(smax, static_cast<int64_t>(umax));
  } else if (umin > static_cast<uint64_t>(kS64Max)) {
    // Entirely negative.
    smin = std::max(smin, static_cast<int64_t>(umin));
    smax = std::min(smax, static_cast<int64_t>(umax));
  }
  // Signed -> unsigned when entirely non-negative.
  if (smin >= 0) {
    umin = std::max(umin, static_cast<uint64_t>(smin));
    umax = std::min(umax, static_cast<uint64_t>(smax));
  }
  return umin <= umax && smin <= smax;
}

bool RegState::Covers(const RegState& other) const {
  // A register that verification never read (kNotInit) imposes no constraint
  // on the continuation, so it covers any concrete value.
  if (type == RegType::kNotInit) {
    return true;
  }
  if (type != other.type) {
    return false;
  }
  if (map_id != other.map_id || ref_id != other.ref_id) {
    return false;
  }
  return var.Contains(other.var) && umin <= other.umin && umax >= other.umax &&
         smin <= other.smin && smax >= other.smax;
}

void RegState::JoinWith(const RegState& other) {
  if (type == RegType::kNotInit) {
    return;  // Already top.
  }
  if (type != other.type || map_id != other.map_id || ref_id != other.ref_id) {
    // Incompatible: drop to "unread" which covers everything.
    *this = NotInit();
    return;
  }
  if (Covers(other)) {
    return;
  }
  // Proper widening: jump straight to the least precise value of this type so
  // loop exploration converges quickly. Soundness is preserved (wider state),
  // precision inside unbounded loops is deliberately sacrificed.
  MarkOffsetUnknown();
}

std::string RegState::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s var=%s u=[%llu,%llu] s=[%lld,%lld]", RegTypeName(type),
                var.ToString().c_str(), static_cast<unsigned long long>(umin),
                static_cast<unsigned long long>(umax), static_cast<long long>(smin),
                static_cast<long long>(smax));
  return buf;
}

VerifierState VerifierState::Initial() {
  VerifierState st;
  st.regs[R1] = RegState::Pointer(RegType::kPtrToCtx, 0);
  st.regs[R10] = RegState::Pointer(RegType::kPtrToStack, 0);
  return st;
}

void VerifierState::NormalizeRefIds() {
  if (refs.empty()) {
    return;
  }
  // old id -> new id (index + 1).
  std::vector<std::pair<uint32_t, uint32_t>> remap;
  remap.reserve(refs.size());
  for (size_t i = 0; i < refs.size(); i++) {
    remap.emplace_back(refs[i].id, static_cast<uint32_t>(i + 1));
    refs[i].id = static_cast<uint32_t>(i + 1);
  }
  auto rewrite = [&remap](RegState& reg) {
    if (reg.ref_id == 0) {
      return;
    }
    for (const auto& [from, to] : remap) {
      if (reg.ref_id == from) {
        reg.ref_id = to;
        return;
      }
    }
    // Reference no longer tracked (should not happen; treated as released).
    reg.ref_id = 0;
  };
  for (RegState& reg : regs) {
    rewrite(reg);
  }
  for (StackSlot& slot : stack) {
    if (slot.kind == StackSlot::Kind::kSpill) {
      rewrite(slot.spill);
    }
  }
  next_ref_id = static_cast<uint32_t>(refs.size() + 1);
}

namespace {

bool RefsEquivalent(const std::vector<RefInfo>& a, const std::vector<RefInfo>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].kind != b[i].kind || a[i].acquire_pc != b[i].acquire_pc ||
        a[i].destructor != b[i].destructor) {
      return false;
    }
  }
  return true;
}

bool LocksEquivalent(const std::vector<LockInfo>& a, const std::vector<LockInfo>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].heap_off != b[i].heap_off) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool VerifierState::Covers(const VerifierState& other) const {
  // Resource state must match exactly: a continuation verified with one set
  // of held refs/locks says nothing about a path holding a different set.
  if (!RefsEquivalent(refs, other.refs) || !LocksEquivalent(locks, other.locks)) {
    return false;
  }
  for (int i = 0; i < kNumRegs; i++) {
    if (!regs[static_cast<size_t>(i)].Covers(other.regs[static_cast<size_t>(i)])) {
      return false;
    }
  }
  for (int i = 0; i < kStackSlots; i++) {
    const StackSlot& mine = stack[static_cast<size_t>(i)];
    const StackSlot& theirs = stack[static_cast<size_t>(i)];
    (void)theirs;
    const StackSlot& others = other.stack[static_cast<size_t>(i)];
    switch (mine.kind) {
      case StackSlot::Kind::kInvalid:
        break;  // Never read in the verified continuation: covers anything.
      case StackSlot::Kind::kMisc:
        // Covers Misc and Spill (both are initialized bytes).
        if (others.kind == StackSlot::Kind::kInvalid) {
          return false;
        }
        break;
      case StackSlot::Kind::kSpill:
        if (others.kind != StackSlot::Kind::kSpill || !mine.spill.Covers(others.spill)) {
          return false;
        }
        break;
    }
  }
  return true;
}

void VerifierState::JoinWith(const VerifierState& other) {
  for (int i = 0; i < kNumRegs; i++) {
    regs[static_cast<size_t>(i)].JoinWith(other.regs[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < kStackSlots; i++) {
    StackSlot& mine = stack[static_cast<size_t>(i)];
    const StackSlot& others = other.stack[static_cast<size_t>(i)];
    if (mine.kind == others.kind) {
      if (mine.kind == StackSlot::Kind::kSpill && !(mine.spill == others.spill)) {
        mine.spill.JoinWith(others.spill);
        if (mine.spill.type == RegType::kNotInit) {
          mine.kind = StackSlot::Kind::kMisc;
          mine.spill = RegState::NotInit();
        }
      }
      continue;
    }
    if (mine.kind == StackSlot::Kind::kInvalid || others.kind == StackSlot::Kind::kInvalid) {
      mine = StackSlot{};  // Unknown whether initialized: must treat as invalid.
    } else {
      mine = StackSlot{StackSlot::Kind::kMisc, RegState::NotInit()};
    }
  }
}

}  // namespace kflex
