#include "src/verifier/concurrency.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "src/ebpf/helper_ids.h"
#include "src/ebpf/insn.h"
#include "src/verifier/absval.h"

namespace kflex {

const char* ShardSafetyName(ShardSafety safety) {
  switch (safety) {
    case ShardSafety::kRaceFree:
      return "race-free";
    case ShardSafety::kLockProtected:
      return "lock-protected";
    case ShardSafety::kSerialOnly:
      return "serial-only";
  }
  return "unknown";
}

const char* ConcurrencyFindingKindName(ConcurrencyFinding::Kind kind) {
  switch (kind) {
    case ConcurrencyFinding::Kind::kUnlockedMapAccess:
      return "unlocked-map-access";
    case ConcurrencyFinding::Kind::kUnlockedHeapAccess:
      return "unlocked-heap-access";
    case ConcurrencyFinding::Kind::kNonAtomicMapRmw:
      return "non-atomic-map-rmw";
    case ConcurrencyFinding::Kind::kNonAtomicHeapRmw:
      return "non-atomic-heap-rmw";
    case ConcurrencyFinding::Kind::kLockCycle:
      return "lock-cycle";
  }
  return "unknown";
}

namespace {

// Self-contained pointer provenance, so the analysis classifies shared
// accesses even when the verifier rejected the program (analysis == null).
// Conservative: anything not provably a map-value or heap pointer is
// unknown, and unknown never produces a finding.
enum class PtrClass : uint8_t { kUnknown = 0, kMapValue, kHeapPtr, kCtx, kStack };

// The forward fixpoint state: the must-held lockset (meet = intersection,
// as in lint.cc's lock-order pass), pointer provenance per register, and
// constant/lock-identity propagation (AbsRegs) carried ACROSS blocks —
// unlike the block-local lint passes, lock identities loaded once in the
// entry block survive into the branches that acquire them.
struct ConcState {
  bool known = false;
  std::set<uint64_t> held;
  std::array<PtrClass, kNumRegs> cls{};
  AbsRegs regs;
};

bool MeetAbsVal(AbsVal& into, const AbsVal& from) {
  if (into.kind == AbsVal::kUnknown) {
    return false;
  }
  if (into.kind != from.kind || into.v != from.v) {
    into = AbsVal();
    return true;
  }
  return false;
}

bool MeetConcState(ConcState& into, const ConcState& from) {
  if (!from.known) {
    return false;
  }
  if (!into.known) {
    into = from;
    return true;
  }
  bool changed = false;
  for (auto it = into.held.begin(); it != into.held.end();) {
    if (from.held.count(*it) == 0) {
      it = into.held.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  for (size_t i = 0; i < into.cls.size(); i++) {
    if (into.cls[i] != from.cls[i] && into.cls[i] != PtrClass::kUnknown) {
      into.cls[i] = PtrClass::kUnknown;
      changed = true;
    }
  }
  for (size_t i = 0; i < into.regs.r.size(); i++) {
    changed |= MeetAbsVal(into.regs.r[i], from.regs.r[i]);
  }
  return changed;
}

bool VerifierUnreached(const Analysis* analysis, size_t pc) {
  return analysis != nullptr && pc < analysis->insn_visited.size() &&
         analysis->insn_visited[pc] == 0;
}

// Region of the memory access at `pc` with base-register class `cls`:
// verifier classification when available, provenance otherwise.
MemRegion AccessRegion(const Analysis* analysis, size_t pc, PtrClass cls) {
  if (analysis != nullptr && pc < analysis->mem.size() && analysis->mem[pc].visited &&
      analysis->mem[pc].region != MemRegion::kNone) {
    return analysis->mem[pc].region;
  }
  switch (cls) {
    case PtrClass::kMapValue:
      return MemRegion::kMapValue;
    case PtrClass::kHeapPtr:
      return MemRegion::kHeap;
    case PtrClass::kCtx:
      return MemRegion::kCtx;
    case PtrClass::kStack:
      return MemRegion::kStack;
    case PtrClass::kUnknown:
      break;
  }
  return MemRegion::kNone;
}

// A block-local load->alu->store candidate: the value register holding a
// loaded shared word that has since been modified in place.
struct RmwCandidate {
  bool valid = false;
  bool modified = false;
  size_t load_pc = 0;
  int base = -1;
  int16_t off = 0;
  uint32_t size = 0;
  MemRegion region = MemRegion::kNone;
};

class ConcurrencyAnalyzer {
 public:
  ConcurrencyAnalyzer(const Program& program, const Cfg& cfg, const Analysis* analysis)
      : prog_(program), cfg_(cfg), analysis_(analysis) {}

  ConcurrencyReport Run() {
    const size_t nb = cfg_.num_blocks();
    entry_.assign(nb, ConcState{});
    entry_[0].known = true;
    entry_[0].cls[R1] = PtrClass::kCtx;
    entry_[0].cls[R10] = PtrClass::kStack;

    std::deque<size_t> work(cfg_.rpo().begin(), cfg_.rpo().end());
    while (!work.empty()) {
      size_t b = work.front();
      work.pop_front();
      if (!entry_[b].known) {
        continue;
      }
      ConcState exit = Transfer(cfg_.blocks()[b], entry_[b], /*collect=*/false);
      for (size_t succ : cfg_.blocks()[b].succs) {
        if (MeetConcState(entry_[succ], exit)) {
          work.push_back(succ);
        }
      }
    }
    for (size_t b : cfg_.rpo()) {
      if (entry_[b].known) {
        Transfer(cfg_.blocks()[b], entry_[b], /*collect=*/true);
      }
    }

    ConcurrencyReport report;
    report.map_accesses = map_accesses_;
    report.heap_accesses = heap_accesses_;
    report.atomic_accesses = atomic_accesses_;
    report.locked_accesses = locked_accesses_;
    report.unprotected_map_accesses = unprotected_map_;
    report.unprotected_heap_accesses = unprotected_heap_;
    report.findings = std::move(findings_);
    std::sort(report.findings.begin(), report.findings.end(),
              [](const ConcurrencyFinding& a, const ConcurrencyFinding& b) {
                return std::tie(a.pc, a.kind, a.message) < std::tie(b.pc, b.kind, b.message);
              });
    for (auto& [key, edge] : edges_) {
      report.edges.push_back(std::move(edge));
    }
    report.safety = unprotected_map_ + unprotected_heap_ > 0 ? ShardSafety::kSerialOnly
                    : locked_accesses_ > 0                   ? ShardSafety::kLockProtected
                                                             : ShardSafety::kRaceFree;
    return report;
  }

 private:
  // Shortest entry-to-anchor path at block granularity, lowered to the
  // contract-audit witness encoding: every executed pc, with the branch
  // decision (0 = jump taken, 1 = fall-through) at each conditional.
  std::vector<WitnessStep> WitnessTo(size_t anchor_pc) {
    size_t target = cfg_.BlockOf(anchor_pc);
    std::vector<int> parent(cfg_.num_blocks(), -1);
    std::deque<size_t> bfs{0};
    parent[0] = 0;
    while (!bfs.empty() && parent[target] < 0) {
      size_t b = bfs.front();
      bfs.pop_front();
      for (size_t succ : cfg_.blocks()[b].succs) {
        if (parent[succ] < 0) {
          parent[succ] = static_cast<int>(b);
          bfs.push_back(succ);
        }
      }
    }
    if (parent[target] < 0) {
      return {};
    }
    std::vector<size_t> chain{target};
    while (chain.back() != 0) {
      chain.push_back(static_cast<size_t>(parent[chain.back()]));
    }
    std::reverse(chain.begin(), chain.end());

    std::vector<WitnessStep> path;
    for (size_t i = 0; i < chain.size(); i++) {
      const BasicBlock& bb = cfg_.blocks()[chain[i]];
      for (size_t pc = bb.start; pc < bb.end; pc = cfg_.NextPc(pc)) {
        if (i + 1 == chain.size() && pc > anchor_pc) {
          break;
        }
        int branch = -1;
        const Insn& insn = prog_.insns[pc];
        bool is_terminator = cfg_.NextPc(pc) >= bb.end;
        if (insn.IsCondJmp() && is_terminator && i + 1 < chain.size()) {
          // succs[0] is the jump-taken edge (cfg.h contract).
          branch = !bb.succs.empty() && bb.succs[0] == chain[i + 1] ? 0 : 1;
        }
        path.push_back({pc, branch});
      }
    }
    return path;
  }

  void RecordAccess(size_t pc, MemRegion region, bool atomic, const std::set<uint64_t>& held) {
    if (region == MemRegion::kMapValue) {
      map_accesses_++;
    } else if (region == MemRegion::kHeap) {
      heap_accesses_++;
    } else {
      return;
    }
    if (atomic) {
      atomic_accesses_++;
      return;
    }
    if (!held.empty()) {
      locked_accesses_++;
      return;
    }
    if (region == MemRegion::kMapValue) {
      unprotected_map_++;
      findings_.push_back({ConcurrencyFinding::Kind::kUnlockedMapAccess, pc,
                           "shared map value accessed with no lock held: concurrent "
                           "invocations race on this word",
                           WitnessTo(pc)});
    } else {
      unprotected_heap_++;
      findings_.push_back({ConcurrencyFinding::Kind::kUnlockedHeapAccess, pc,
                           "extension heap accessed with no lock held: unsafe if "
                           "invocations of this extension run concurrently",
                           WitnessTo(pc)});
    }
  }

  void KillCandidatesUsing(std::array<RmwCandidate, kNumRegs>& rmw, int reg) {
    for (auto& c : rmw) {
      if (c.valid && c.base == reg) {
        c.valid = false;
      }
    }
  }

  ConcState Transfer(const BasicBlock& bb, ConcState s, bool collect) {
    std::array<RmwCandidate, kNumRegs> rmw{};
    for (size_t pc = bb.start; pc < bb.end; pc = cfg_.NextPc(pc)) {
      const Insn& insn = prog_.insns[pc];
      bool unreached = VerifierUnreached(analysis_, pc);

      if (insn.IsCall()) {
        const HelperContract* contract = FindHelperContract(insn.imm);
        if (contract != nullptr && contract->acquires == ResourceKind::kLock && !unreached) {
          if (s.regs.r[R1].kind == AbsVal::kHeapOff) {
            uint64_t off = s.regs.r[R1].v;
            if (collect) {
              for (uint64_t outer : s.held) {
                auto key = std::make_pair(outer, off);
                if (edges_.count(key) == 0) {
                  edges_.emplace(key, LockOrderEdge{outer, off, pc, WitnessTo(pc)});
                }
              }
            }
            s.held.insert(off);
          }
          // Unknown lock identity: must-held set unchanged (conservative).
        } else if (contract != nullptr && contract->releases == ResourceKind::kLock) {
          if (s.regs.r[R1].kind == AbsVal::kHeapOff) {
            s.held.erase(s.regs.r[R1].v);
          } else {
            s.held.clear();  // released *some* lock; drop all must-hold facts
          }
        }
        rmw.fill(RmwCandidate{});  // calls may publish or synchronize
        AbsStep(prog_, pc, s.regs);
        for (int r = R0; r <= R5; r++) {
          s.cls[r] = PtrClass::kUnknown;
        }
        if (contract != nullptr && !unreached) {
          if (contract->ret == HelperRetType::kMapValueOrNull) {
            s.cls[R0] = PtrClass::kMapValue;
          } else if (contract->ret == HelperRetType::kHeapPtrOrNull) {
            s.cls[R0] = PtrClass::kHeapPtr;
          }
        }
        continue;
      }

      if (insn.IsLoad()) {  // LDX through a register
        MemRegion region = AccessRegion(analysis_, pc, s.cls[insn.src]);
        if (collect && !unreached) {
          RecordAccess(pc, region, /*atomic=*/false, s.held);
          KillCandidatesUsing(rmw, insn.dst);
          if ((region == MemRegion::kMapValue || region == MemRegion::kHeap) &&
              s.held.empty() && insn.dst != insn.src) {
            rmw[insn.dst] = {true,       false,    pc,
                             insn.src,   insn.off, static_cast<uint32_t>(insn.AccessSize()),
                             region};
          }
        }
        s.cls[insn.dst] = PtrClass::kUnknown;
        AbsStep(prog_, pc, s.regs);
        continue;
      }

      if (insn.IsAtomic()) {
        if (collect && !unreached) {
          MemRegion region = AccessRegion(analysis_, pc, s.cls[insn.dst]);
          RecordAccess(pc, region, /*atomic=*/true, s.held);
          KillCandidatesUsing(rmw, insn.dst);
          if (rmw[insn.src].valid) {
            rmw[insn.src].valid = false;
          }
        }
        AbsStep(prog_, pc, s.regs);
        if (insn.imm == BPF_ATOMIC_CMPXCHG) {
          s.cls[R0] = PtrClass::kUnknown;
        } else if (insn.imm == BPF_ATOMIC_XCHG || (insn.imm & BPF_ATOMIC_FETCH) != 0) {
          s.cls[insn.src] = PtrClass::kUnknown;
        }
        continue;
      }

      if (insn.IsStore()) {
        if (collect && !unreached) {
          MemRegion region = AccessRegion(analysis_, pc, s.cls[insn.dst]);
          RecordAccess(pc, region, /*atomic=*/false, s.held);
          if (insn.Class() == BPF_STX && insn.src < kNumRegs) {
            const RmwCandidate& c = rmw[insn.src];
            if (c.valid && c.modified && c.base == insn.dst && c.off == insn.off &&
                c.size == static_cast<uint32_t>(insn.AccessSize())) {
              const char* what =
                  c.region == MemRegion::kMapValue ? "shared map value" : "extension heap word";
              findings_.push_back(
                  {c.region == MemRegion::kMapValue ? ConcurrencyFinding::Kind::kNonAtomicMapRmw
                                                    : ConcurrencyFinding::Kind::kNonAtomicHeapRmw,
                   pc,
                   std::string("read-modify-write of ") + what + " (loaded at insn " +
                       std::to_string(c.load_pc) +
                       ") is neither an atomic instruction nor inside a lock region: "
                       "concurrent updates lose increments",
                   WitnessTo(pc)});
              rmw[insn.src].valid = false;
            }
          }
        }
        AbsStep(prog_, pc, s.regs);
        continue;
      }

      if (insn.IsAlu() || insn.IsLdImm64()) {
        if (collect) {
          KillCandidatesUsing(rmw, insn.dst);
          if (rmw[insn.dst].valid) {
            bool overwrite = insn.IsLdImm64() ||
                             (insn.AluOpField() == BPF_MOV && insn.IsAlu());
            if (overwrite) {
              rmw[insn.dst].valid = false;
            } else {
              rmw[insn.dst].modified = true;
            }
          }
        }
        // Provenance through moves and pointer arithmetic.
        if (insn.IsLdImm64()) {
          s.cls[insn.dst] =
              insn.src == kPseudoHeapVar ? PtrClass::kHeapPtr : PtrClass::kUnknown;
        } else {
          uint8_t op = insn.AluOpField();
          bool is64 = insn.Class() == BPF_ALU64;
          if (op == BPF_MOV && insn.SrcField() == BPF_X && is64) {
            s.cls[insn.dst] = s.cls[insn.src];
          } else if ((op == BPF_ADD || op == BPF_SUB) && is64 &&
                     (insn.SrcField() == BPF_K ||
                      s.cls[insn.src] == PtrClass::kUnknown)) {
            // Pointer +- scalar keeps the provenance class.
          } else {
            s.cls[insn.dst] = PtrClass::kUnknown;
          }
        }
        AbsStep(prog_, pc, s.regs);
        continue;
      }

      AbsStep(prog_, pc, s.regs);
    }
    return s;
  }

  const Program& prog_;
  const Cfg& cfg_;
  const Analysis* analysis_;

  std::vector<ConcState> entry_;
  std::vector<ConcurrencyFinding> findings_;
  std::map<std::pair<uint64_t, uint64_t>, LockOrderEdge> edges_;
  size_t map_accesses_ = 0;
  size_t heap_accesses_ = 0;
  size_t atomic_accesses_ = 0;
  size_t locked_accesses_ = 0;
  size_t unprotected_map_ = 0;
  size_t unprotected_heap_ = 0;
};

}  // namespace

ConcurrencyReport AnalyzeConcurrency(const Program& program, const Cfg& cfg,
                                     const Analysis* analysis) {
  ConcurrencyAnalyzer analyzer(program, cfg, analysis);
  return analyzer.Run();
}

ConcurrencyReport AnalyzeConcurrency(const Program& program, const Analysis* analysis) {
  auto cfg = Cfg::Build(program);
  if (!cfg.ok()) {
    return ConcurrencyReport{};
  }
  return AnalyzeConcurrency(program, *cfg, analysis);
}

// ---------------------------------------------------------------------------
// LockOrderGraph
// ---------------------------------------------------------------------------

void LockOrderGraph::AddEdges(const std::string& program,
                              const std::vector<LockOrderEdge>& edges) {
  for (const LockOrderEdge& e : edges) {
    edges_.push_back({program, e});
  }
}

std::string LockOrderGraph::Cycle::Describe() const {
  std::string nodes = "lock-acquisition cycle: heap offset ";
  std::string sites;
  for (size_t i = 0; i < edges.size(); i++) {
    nodes += std::to_string(edges[i].edge.from) + " -> ";
    if (!sites.empty()) {
      sites += ", ";
    }
    sites += edges[i].program + " insn " + std::to_string(edges[i].edge.pc);
  }
  nodes += std::to_string(edges.front().edge.from);
  return nodes + " (" + sites + ") - potential deadlock";
}

std::vector<LockOrderGraph::Cycle> LockOrderGraph::FindCycles() const {
  // Deterministic adjacency: edge indices sorted by (from, to, program, pc).
  std::vector<size_t> order(edges_.size());
  for (size_t i = 0; i < order.size(); i++) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const CycleEdge& ea = edges_[a];
    const CycleEdge& eb = edges_[b];
    return std::tie(ea.edge.from, ea.edge.to, ea.program, ea.edge.pc) <
           std::tie(eb.edge.from, eb.edge.to, eb.program, eb.edge.pc);
  });
  std::map<uint64_t, std::vector<size_t>> adj;
  std::set<uint64_t> nodes;
  for (size_t i : order) {
    adj[edges_[i].edge.from].push_back(i);
    nodes.insert(edges_[i].edge.from);
    nodes.insert(edges_[i].edge.to);
  }

  std::vector<Cycle> out;
  std::set<std::vector<uint64_t>> seen;  // canonical node sequences
  constexpr size_t kMaxCycleLen = 16;    // elementary cycles only; tiny graphs

  // Rooted search from each node ascending, visiting only nodes >= root:
  // every elementary cycle is found exactly once, rooted at its smallest
  // lock offset (so the canonical rotation is the discovery order).
  for (uint64_t root : nodes) {
    std::vector<size_t> path;        // edge indices
    std::set<uint64_t> on_path{root};
    // Iterative DFS with explicit frames to keep stack depth bounded.
    struct Frame {
      uint64_t node;
      size_t next = 0;  // next adjacency index to try
    };
    std::vector<Frame> stack{{root}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<size_t>* edges_from = nullptr;
      auto it = adj.find(f.node);
      if (it != adj.end()) {
        edges_from = &it->second;
      }
      if (edges_from == nullptr || f.next >= edges_from->size() ||
          stack.size() > kMaxCycleLen) {
        on_path.erase(f.node);
        stack.pop_back();
        if (!path.empty()) {
          path.pop_back();
        }
        continue;
      }
      size_t ei = (*edges_from)[f.next++];
      const CycleEdge& e = edges_[ei];
      if (e.edge.to == root) {
        std::vector<size_t> cycle_edges = path;
        cycle_edges.push_back(ei);
        std::vector<uint64_t> canon;
        for (size_t idx : cycle_edges) {
          canon.push_back(edges_[idx].edge.from);
        }
        if (seen.insert(canon).second) {
          Cycle c;
          std::set<std::string> progs;
          for (size_t idx : cycle_edges) {
            c.edges.push_back(edges_[idx]);
            progs.insert(edges_[idx].program);
          }
          c.programs.assign(progs.begin(), progs.end());
          out.push_back(std::move(c));
        }
      } else if (e.edge.to > root && on_path.count(e.edge.to) == 0) {
        on_path.insert(e.edge.to);
        path.push_back(ei);
        stack.push_back({e.edge.to});
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Cycle& a, const Cycle& b) {
    return std::make_tuple(a.edges.front().edge.from, a.edges.size(), a.Describe()) <
           std::make_tuple(b.edges.front().edge.from, b.edges.size(), b.Describe());
  });
  return out;
}

}  // namespace kflex
