// Generic bit-vector dataflow over the CFG, plus the backward liveness
// analysis (registers + stack slots) the verifier uses to prune object-table
// entries whose handle location is dead at a cancellation point (§3.3) and
// the lint passes use to find dead stores.
#ifndef SRC_VERIFIER_DATAFLOW_H_
#define SRC_VERIFIER_DATAFLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/ebpf/program.h"
#include "src/verifier/analysis.h"
#include "src/verifier/cfg.h"

namespace kflex {

// Dense fixed-width bitset sized at construction.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }
  void Set(size_t i) { words_[i / 64] |= 1ULL << (i % 64); }
  void Clear(size_t i) { words_[i / 64] &= ~(1ULL << (i % 64)); }
  bool Test(size_t i) const { return (words_[i / 64] >> (i % 64)) & 1; }
  void SetAll() {
    for (auto& w : words_) {
      w = ~0ULL;
    }
    TrimTail();
  }
  void ClearAll() {
    for (auto& w : words_) {
      w = 0;
    }
  }

  // In-place set operations; the mutating forms report whether bits changed.
  bool UnionWith(const BitVec& o) {
    bool changed = false;
    for (size_t i = 0; i < words_.size(); i++) {
      uint64_t next = words_[i] | o.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }
  bool IntersectWith(const BitVec& o) {
    bool changed = false;
    for (size_t i = 0; i < words_.size(); i++) {
      uint64_t next = words_[i] & o.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }
  void Subtract(const BitVec& o) {
    for (size_t i = 0; i < words_.size(); i++) {
      words_[i] &= ~o.words_[i];
    }
  }

  bool operator==(const BitVec& o) const = default;

 private:
  void TrimTail() {
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (bits_ % 64)) - 1;
    }
  }
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

enum class DataflowDirection { kForward, kBackward };
enum class MeetOp { kUnion, kIntersect };

// A gen/kill style problem over a finite bit domain. Transfer() is applied
// per instruction in execution order (forward) or reverse execution order
// (backward); the solver handles block iteration and the meet.
class DataflowProblem {
 public:
  virtual ~DataflowProblem() = default;
  virtual size_t NumBits() const = 0;
  virtual DataflowDirection Direction() const = 0;
  virtual MeetOp Meet() const = 0;
  // Value at the entry point (forward) or at every exit (backward).
  virtual BitVec Boundary() const { return BitVec(NumBits()); }
  // Mutate `v` through the instruction at `pc`.
  virtual void Transfer(size_t pc, const Insn& insn, BitVec& v) const = 0;
};

// Fixed-point solution with a per-instruction value:
//   forward problems:  At(pc) = facts holding immediately BEFORE pc executes
//   backward problems: At(pc) = facts holding immediately BEFORE pc executes
//                      (i.e. live-in for liveness)
class DataflowSolution {
 public:
  const BitVec& At(size_t pc) const { return at_[pc]; }

 private:
  friend DataflowSolution SolveDataflow(const Program&, const Cfg&, const DataflowProblem&);
  std::vector<BitVec> at_;
};

DataflowSolution SolveDataflow(const Program& program, const Cfg& cfg,
                               const DataflowProblem& problem);

// ---- Liveness ---------------------------------------------------------------

inline constexpr int kStackSlotCount = kStackSize / 8;

// Bit layout of the liveness domain: [0, kNumRegs) are registers,
// [kNumRegs, kNumRegs + kStackSlotCount) are 8-byte stack slots (slot i
// covers bytes [R10 - kStackSize + 8*i, +8)).
class Liveness {
 public:
  // `analysis` (from a successful Verify) sharpens stack-slot tracking:
  // loads through non-R10 registers only touch stack slots when the
  // verifier classified the access kStack. Pass nullptr for unverified
  // programs; every load through a non-R10 register then conservatively
  // reads all slots.
  static Liveness Compute(const Program& program, const Cfg& cfg,
                          const Analysis* analysis = nullptr);

  bool RegLiveIn(size_t pc, int reg) const { return solution_.At(pc).Test(reg); }
  bool SlotLiveIn(size_t pc, int slot) const {
    return solution_.At(pc).Test(static_cast<size_t>(kNumRegs) + slot);
  }
  // Live after the instruction at `pc` (union over successors for
  // terminators).
  bool RegLiveOut(size_t pc, int reg) const { return out_[pc].Test(reg); }
  bool SlotLiveOut(size_t pc, int slot) const {
    return out_[pc].Test(static_cast<size_t>(kNumRegs) + slot);
  }

  const BitVec& LiveIn(size_t pc) const { return solution_.At(pc); }
  const BitVec& LiveOut(size_t pc) const { return out_[pc]; }

  // Stack slot index for a frame-pointer offset, or -1 if out of frame.
  static int SlotForOffset(int64_t off) {
    int64_t byte = off + kStackSize;
    if (byte < 0 || byte >= kStackSize) {
      return -1;
    }
    return static_cast<int>(byte / 8);
  }

 private:
  DataflowSolution solution_;
  std::vector<BitVec> out_;
};

}  // namespace kflex

#endif  // SRC_VERIFIER_DATAFLOW_H_
