#include "src/verifier/cfg.h"

#include <algorithm>

namespace kflex {
namespace {

// Jump-taken target of a jump instruction at `pc` (not calls/exits).
size_t JumpTarget(size_t pc, const Insn& insn) {
  return pc + 1 + static_cast<size_t>(insn.off);
}

}  // namespace

size_t Cfg::NextPc(size_t pc) const {
  size_t next = pc + 1;
  if (next < insn_start_.size() && !insn_start_[next]) {
    next++;  // skip the hi slot of an ld_imm64
  }
  return next;
}

StatusOr<Cfg> Cfg::Build(const Program& program) {
  const size_t n = program.size();
  if (n == 0) {
    return InvalidArgument("cfg: empty program");
  }

  Cfg cfg;
  cfg.insn_start_.assign(n, false);
  for (size_t pc = 0; pc < n; pc++) {
    cfg.insn_start_[pc] = true;
    if (program.insns[pc].IsLdImm64()) {
      if (pc + 1 >= n) {
        return InvalidArgument("cfg: truncated ld_imm64");
      }
      pc++;  // hi slot stays marked false
    }
  }

  // Leaders: pc 0, every jump target, and the instruction after every
  // jump/exit (start of the fall-through or dead-code region).
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (size_t pc = 0; pc < n; pc++) {
    if (!cfg.insn_start_[pc]) {
      continue;
    }
    const Insn& insn = program.insns[pc];
    size_t next = pc + (insn.IsLdImm64() ? 2 : 1);
    if (insn.IsExit() || insn.IsUncondJmp() || insn.IsCondJmp()) {
      if (next < n) {
        leader[next] = true;
      }
      if (!insn.IsExit()) {
        size_t target = JumpTarget(pc, insn);
        if (target >= n || !cfg.insn_start_[target]) {
          return InvalidArgument("cfg: jump target out of range or mid-instruction");
        }
        leader[target] = true;
      }
    }
  }

  // Carve blocks.
  cfg.block_of_.assign(n, 0);
  for (size_t pc = 0; pc < n;) {
    BasicBlock bb;
    bb.id = cfg.blocks_.size();
    bb.start = pc;
    size_t cur = pc;
    while (true) {
      const Insn& insn = program.insns[cur];
      size_t next = cur + (insn.IsLdImm64() ? 2 : 1);
      bool terminates = insn.IsExit() || insn.IsUncondJmp() || insn.IsCondJmp();
      if (terminates || next >= n || leader[next]) {
        bb.end = next;
        break;
      }
      cur = next;
    }
    for (size_t p = bb.start; p < bb.end && p < n; p++) {
      cfg.block_of_[p] = bb.id;
    }
    cfg.blocks_.push_back(bb);
    pc = bb.end;
  }

  // Successor edges. Jump-taken edge first so callers can distinguish it.
  for (BasicBlock& bb : cfg.blocks_) {
    size_t last = bb.start;
    for (size_t p = bb.start; p < bb.end; p = p + (program.insns[p].IsLdImm64() ? 2 : 1)) {
      last = p;
    }
    const Insn& term = program.insns[last];
    if (term.IsExit()) {
      // no successors
    } else if (term.IsUncondJmp()) {
      bb.succs.push_back(cfg.block_of_[JumpTarget(last, term)]);
    } else if (term.IsCondJmp()) {
      bb.succs.push_back(cfg.block_of_[JumpTarget(last, term)]);
      if (bb.end < n) {
        bb.succs.push_back(cfg.block_of_[bb.end]);
      }
    } else if (bb.end < n) {
      bb.succs.push_back(cfg.block_of_[bb.end]);
    }
  }
  for (const BasicBlock& bb : cfg.blocks_) {
    for (size_t s : bb.succs) {
      cfg.blocks_[s].preds.push_back(bb.id);
    }
  }

  // Reachability + postorder DFS from the entry block (iterative).
  const size_t nb = cfg.blocks_.size();
  cfg.reachable_.assign(nb, false);
  std::vector<size_t> postorder;
  {
    std::vector<size_t> next_child(nb, 0);
    std::vector<size_t> stack;
    stack.push_back(0);
    cfg.reachable_[0] = true;
    while (!stack.empty()) {
      size_t b = stack.back();
      if (next_child[b] < cfg.blocks_[b].succs.size()) {
        size_t s = cfg.blocks_[b].succs[next_child[b]++];
        if (!cfg.reachable_[s]) {
          cfg.reachable_[s] = true;
          stack.push_back(s);
        }
      } else {
        postorder.push_back(b);
        stack.pop_back();
      }
    }
  }
  cfg.rpo_.assign(postorder.rbegin(), postorder.rend());
  cfg.rpo_index_.assign(nb, nb);
  for (size_t i = 0; i < cfg.rpo_.size(); i++) {
    cfg.rpo_index_[cfg.rpo_[i]] = i;
  }

  // Iterative dominators (Cooper/Harvey/Kennedy) over reachable blocks.
  constexpr size_t kUndef = static_cast<size_t>(-1);
  std::vector<size_t> idom(nb, kUndef);
  idom[0] = 0;
  auto intersect = [&](size_t a, size_t b) {
    while (a != b) {
      while (cfg.rpo_index_[a] > cfg.rpo_index_[b]) {
        a = idom[a];
      }
      while (cfg.rpo_index_[b] > cfg.rpo_index_[a]) {
        b = idom[b];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b : cfg.rpo_) {
      if (b == 0) {
        continue;
      }
      size_t new_idom = kUndef;
      for (size_t p : cfg.blocks_[b].preds) {
        if (!cfg.reachable_[p] || idom[p] == kUndef) {
          continue;
        }
        new_idom = (new_idom == kUndef) ? p : intersect(p, new_idom);
      }
      if (new_idom != kUndef && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  cfg.idom_.assign(nb, 0);
  for (size_t b = 0; b < nb; b++) {
    cfg.idom_[b] = (idom[b] == kUndef) ? b : idom[b];
  }

  // Natural loops: for each backward jump pc whose target block dominates
  // the source block, collect the loop body by walking predecessors from the
  // tail until the head.
  for (size_t pc = 0; pc < n; pc++) {
    if (!cfg.insn_start_[pc]) {
      continue;
    }
    const Insn& insn = program.insns[pc];
    if (!(insn.IsUncondJmp() || insn.IsCondJmp())) {
      continue;
    }
    size_t target = JumpTarget(pc, insn);
    if (target > pc) {
      continue;  // forward edge
    }
    size_t tail = cfg.block_of_[pc];
    size_t head = cfg.block_of_[target];
    if (!cfg.reachable_[tail] || !cfg.reachable_[head] || !cfg.Dominates(head, tail) ||
        target != cfg.blocks_[head].start) {
      // Retreating edge that does not close a natural loop (irreducible
      // region, or a jump into the middle of a block — the latter cannot
      // happen since targets are leaders, kept for clarity).
      cfg.irreducible_edge_pcs_.insert(pc);
      continue;
    }
    Loop loop;
    loop.back_edge_pc = pc;
    loop.head = head;
    loop.blocks.insert(head);
    std::vector<size_t> work;
    if (loop.blocks.insert(tail).second) {
      work.push_back(tail);
    }
    while (!work.empty()) {
      size_t b = work.back();
      work.pop_back();
      for (size_t p : cfg.blocks_[b].preds) {
        if (cfg.reachable_[p] && loop.blocks.insert(p).second) {
          work.push_back(p);
        }
      }
    }
    cfg.loops_.push_back(std::move(loop));
  }

  return cfg;
}

bool Cfg::Dominates(size_t a, size_t b) const {
  if (!reachable_[a] || !reachable_[b]) {
    return a == b;
  }
  // Walk b's dominator chain toward the entry.
  size_t cur = b;
  while (true) {
    if (cur == a) {
      return true;
    }
    size_t up = idom_[cur];
    if (up == cur) {
      return false;  // reached the entry (or a self-idom'd unreachable block)
    }
    cur = up;
  }
}

bool Cfg::IsNaturalBackEdge(size_t back_edge_pc) const {
  for (const Loop& loop : loops_) {
    if (loop.back_edge_pc == back_edge_pc) {
      return true;
    }
  }
  return false;
}

bool Cfg::InLoopOfBackEdge(size_t back_edge_pc, size_t pc) const {
  for (const Loop& loop : loops_) {
    if (loop.back_edge_pc == back_edge_pc) {
      return loop.blocks.count(block_of_[pc]) > 0;
    }
  }
  return false;
}

}  // namespace kflex
