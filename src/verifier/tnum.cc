#include "src/verifier/tnum.h"

#include <bit>
#include <cstdio>

namespace kflex {

Tnum Tnum::Range(uint64_t min, uint64_t max) {
  if (min > max) {
    return Unknown();
  }
  uint64_t chi = min ^ max;
  int bits = 64 - std::countl_zero(chi);
  if (bits > 63) {
    return Unknown();
  }
  uint64_t delta = (1ULL << bits) - 1;
  return Tnum{min & ~delta, delta};
}

bool Tnum::Contains(const Tnum& other) const {
  // Every unknown bit of `other` must be unknown here, and known bits must
  // agree wherever *this knows them.
  if ((other.mask & ~mask) != 0) {
    return false;
  }
  return (other.value & ~mask) == value;
}

std::string Tnum::ToString() const {
  char buf[64];
  if (IsConst()) {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "(v=0x%llx,m=0x%llx)",
                  static_cast<unsigned long long>(value),
                  static_cast<unsigned long long>(mask));
  }
  return buf;
}

Tnum TnumAdd(Tnum a, Tnum b) {
  uint64_t sm = a.mask + b.mask;
  uint64_t sv = a.value + b.value;
  uint64_t sigma = sm + sv;
  uint64_t chi = sigma ^ sv;
  uint64_t mu = chi | a.mask | b.mask;
  return Tnum{sv & ~mu, mu};
}

Tnum TnumSub(Tnum a, Tnum b) {
  uint64_t dv = a.value - b.value;
  uint64_t alpha = dv + a.mask;
  uint64_t beta = dv - b.mask;
  uint64_t chi = alpha ^ beta;
  uint64_t mu = chi | a.mask | b.mask;
  return Tnum{dv & ~mu, mu};
}

Tnum TnumAnd(Tnum a, Tnum b) {
  uint64_t alpha = a.value | a.mask;
  uint64_t beta = b.value | b.mask;
  uint64_t v = a.value & b.value;
  return Tnum{v, alpha & beta & ~v};
}

Tnum TnumOr(Tnum a, Tnum b) {
  uint64_t v = a.value | b.value;
  uint64_t mu = a.mask | b.mask;
  return Tnum{v, mu & ~v};
}

Tnum TnumXor(Tnum a, Tnum b) {
  uint64_t v = a.value ^ b.value;
  uint64_t mu = a.mask | b.mask;
  return Tnum{v & ~mu, mu};
}

// Kernel's tnum_mul: decompose a into known bits and unknown bits, shifting
// partial products into an accumulator.
Tnum TnumMul(Tnum a, Tnum b) {
  uint64_t acc_v = a.value * b.value;
  Tnum acc_m = Tnum::Const(0);
  while (a.value != 0 || a.mask != 0) {
    if ((a.value & 1) != 0) {
      acc_m = TnumAdd(acc_m, Tnum{0, b.mask});
    } else if ((a.mask & 1) != 0) {
      acc_m = TnumAdd(acc_m, Tnum{0, b.value | b.mask});
    }
    a = TnumRshift(a, 1);
    b = TnumLshift(b, 1);
  }
  return TnumAdd(Tnum{acc_v, 0}, acc_m);
}

Tnum TnumLshift(Tnum a, uint8_t shift) { return Tnum{a.value << shift, a.mask << shift}; }

Tnum TnumRshift(Tnum a, uint8_t shift) { return Tnum{a.value >> shift, a.mask >> shift}; }

Tnum TnumArshift(Tnum a, uint8_t shift) {
  return Tnum{static_cast<uint64_t>(static_cast<int64_t>(a.value) >> shift),
              static_cast<uint64_t>(static_cast<int64_t>(a.mask) >> shift)};
}

Tnum TnumIntersect(Tnum a, Tnum b) {
  uint64_t v = a.value | b.value;
  uint64_t mu = a.mask & b.mask;
  return Tnum{v & ~mu, mu};
}

Tnum TnumUnion(Tnum a, Tnum b) {
  uint64_t mu = a.mask | b.mask | (a.value ^ b.value);
  return Tnum{a.value & ~mu, mu};
}

Tnum TnumCast(Tnum a, int size) {
  if (size >= 8) {
    return a;
  }
  a.value &= (1ULL << (size * 8)) - 1;
  a.mask &= (1ULL << (size * 8)) - 1;
  return a;
}

}  // namespace kflex
