// Bytecode optimizer: an SSA-lite pass pipeline between Verify() and
// Kie::Instrument(), built on the CFG/dataflow framework (cfg.h, dataflow.h).
//
// Passes, in order:
//
//  1. Sparse conditional constant propagation (SCCP) over the verifier's
//     tnum + min/max scalar lattice (state.h shares the exact transfer
//     functions): constant ALU results are rewritten to MOV-immediates,
//     conditional branches whose outcome is decided by the lattice are folded
//     to unconditional jumps (taken) or marked removable (fall-through), and
//     code only reachable through infeasible edges is deleted. The SCCP
//     lattice deliberately treats every pointer-derived value as unknown, so
//     its folding decisions stay valid for ANY runtime pointer value —
//     including a pointer an SFI guard redirected back into the heap.
//
//  2. Available-guard analysis: a forward, intersecting dataflow computing,
//     before each instruction, the register (if any) whose sanitized address
//     the Kie scratch register RAX is known to hold. A guarded heap access
//     whose base register is available is "dominated": Kie skips the
//     MOV+SANITIZE pair and rewrites the access to go through RAX, which
//     still holds exactly the address a fresh guard would compute (the base
//     register and RAX are both unmodified since the dominating guard).
//     Availability is killed on any redefinition of the base register, on
//     helper calls, and at C1 cancellation points (whose terminate-load
//     sequence clobbers RAX). Formation guards — untrusted scalar to heap
//     pointer, §5.4 — are never dominated and never generate availability.
//
//  3. Dead-store elimination over stack slots using the liveness pass:
//     a full-width store through the frame pointer whose slot is dead-out is
//     marked removable, unless any object table records a resource handle in
//     that slot (the cancellation unwinder reads handles from the stack).
//
// The rewritten program preserves the pc layout of the input (folded
// branches become JA, removable instructions are only *marked*), so the
// verifier's per-pc Analysis remains aligned; Kie physically deletes marked
// instructions during its relayout.
#ifndef SRC_VERIFIER_OPT_H_
#define SRC_VERIFIER_OPT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/ebpf/program.h"
#include "src/verifier/analysis.h"

namespace kflex {

struct OptStats {
  size_t const_branches_folded = 0;  // cond jumps decided by the lattice
  size_t alu_folded = 0;             // ALU results rewritten to MOV-imm
  size_t guards_dominated = 0;       // guard sites covered by a dominating guard
  size_t dead_stores_removed = 0;    // stack stores with a dead slot
  size_t unreachable_removed = 0;    // instructions beyond any feasible edge
};

// What Kie consumes instead of raw per-insn elision bits. Indexed by the pc
// of the (same-layout) optimized program.
struct GuardPlan {
  // Guarded heap-access sites whose SANITIZE is covered by a dominating
  // guard on the same base register: Kie rewrites the access through the
  // still-valid scratch register instead of re-sanitizing.
  std::vector<uint8_t> dominated;
  // Instructions Kie should drop during relayout (semantic no-ops: folded
  // fall-through branches, dead stack stores, unreachable code).
  std::vector<uint8_t> removed;
  OptStats stats;
};

struct OptResult {
  // Same instruction count and pc layout as the input program.
  Program program;
  // The input analysis with facts for removed instructions dropped
  // (cancellation back edges and object tables of deleted pcs).
  Analysis analysis;
  GuardPlan plan;
};

// Runs the pipeline on a verified program. `analysis` must be the result of
// a successful Verify() on `program`.
StatusOr<OptResult> Optimize(const Program& program, const Analysis& analysis);

}  // namespace kflex

#endif  // SRC_VERIFIER_OPT_H_
