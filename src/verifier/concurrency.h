// Concurrency-safety analysis: lockset + atomicity + lock-order over the
// CFG/dataflow framework (cfg.h, dataflow.h) and the helper contracts.
//
// ROADMAP item 1 (the multi-core sharded runtime) needs a *certifiable*
// answer to "is this extension safe to invoke concurrently?". The verifier
// proves memory and termination safety but says nothing about data races;
// this analysis fills the gap in the mold the kernel eBPF ecosystem uses
// (per-CPU maps, bpf_spin_lock regions, atomic instructions) and distills
// the result into a per-program shard-safety certificate:
//
//  * kRaceFree       — every shared-state access is an atomic instruction
//                      (or the program touches no shared state at all):
//                      invocations may run concurrently with no ordering.
//  * kLockProtected  — every shared-state access is atomic or performed
//                      with at least one spin lock definitely held: safe to
//                      shard, at the cost of lock contention.
//  * kSerialOnly     — some shared access is reachable with an empty
//                      lockset: the dispatcher must serialize invocations
//                      of this extension (or refuse to shard it).
//
// "Shared state" is split in two classes with different blast radii:
// kernel map values (shared across extensions and CPUs today — an
// unprotected access is a race outright) and the extension heap (shared
// with user space and future concurrent invocations of the same extension —
// unprotected accesses only downgrade the certificate). The lint layer
// (lint.cc) maps the first class to error findings and the second to notes,
// keeping the shipped single-threaded examples clean while still refusing
// them a concurrency certificate.
//
// Like the contract audit (audit.h), every lock-acquisition-order edge
// carries a pc+path witness (WitnessStep sequence from the entry to the
// acquisition) so a reported deadlock cycle names concrete code paths.
#ifndef SRC_VERIFIER_CONCURRENCY_H_
#define SRC_VERIFIER_CONCURRENCY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ebpf/program.h"
#include "src/verifier/analysis.h"
#include "src/verifier/audit.h"
#include "src/verifier/cfg.h"

namespace kflex {

// The per-program shard-safety certificate consumed by the (future) sharded
// dispatcher as its load-time gate, ordered by decreasing strength.
enum class ShardSafety : uint8_t {
  kRaceFree = 0,
  kLockProtected = 1,
  kSerialOnly = 2,
};

const char* ShardSafetyName(ShardSafety safety);

// One concurrency defect (or advisory) found by the analysis. The lint
// front ends (lockset / atomicity / lock-cycle passes in lint.cc) select by
// kind and assign severities; the raw report keeps everything.
struct ConcurrencyFinding {
  enum class Kind : uint8_t {
    kUnlockedMapAccess = 0,  // map value touched with an empty lockset
    kUnlockedHeapAccess,     // extension heap touched with an empty lockset
    kNonAtomicMapRmw,        // load->alu->store on a map value, no lock/atomic
    kNonAtomicHeapRmw,       // load->alu->store on the heap, no lock/atomic
    kLockCycle,              // cycle in the lock-acquisition graph
  };

  Kind kind = Kind::kUnlockedMapAccess;
  size_t pc = 0;        // anchoring access / acquisition pc
  std::string message;  // human-readable description
  // Entry-to-anchor pc+path witness (same encoding as the contract audit:
  // branch 0 = jump taken, 1 = fall-through, -1 = not a conditional).
  std::vector<WitnessStep> path;

  bool operator==(const ConcurrencyFinding& other) const = default;
};

const char* ConcurrencyFindingKindName(ConcurrencyFinding::Kind kind);

// One edge of the static lock-acquisition graph: lock `to` acquired at `pc`
// while lock `from` (both constant heap offsets) was definitely held, with
// the path witness of one concrete entry-to-acquisition path.
struct LockOrderEdge {
  uint64_t from = 0;
  uint64_t to = 0;
  size_t pc = 0;
  std::vector<WitnessStep> path;

  bool operator==(const LockOrderEdge& other) const = default;
};

// The distilled analysis result stored on InstrumentedProgram and surfaced
// through Runtime::engine_info / kflex_run --concurrency-report.
struct ConcurrencyReport {
  ShardSafety safety = ShardSafety::kRaceFree;

  // Access accounting over reachable memory instructions.
  size_t map_accesses = 0;          // accesses classified as map values
  size_t heap_accesses = 0;         // accesses classified as extension heap
  size_t atomic_accesses = 0;       // of the above, atomic instructions
  size_t locked_accesses = 0;       // of the above, under >= 1 held lock
  size_t unprotected_map_accesses = 0;
  size_t unprotected_heap_accesses = 0;

  // Findings sorted by (pc, kind, message) — deterministic across runs.
  std::vector<ConcurrencyFinding> findings;
  // Acquisition-order edges sorted by (from, to), earliest witness kept.
  std::vector<LockOrderEdge> edges;
};

// Analyzes one program. `analysis` (the verifier's output) is optional:
// when present, memory accesses use the verifier's region classification
// and symbolically-unreached code is skipped; when absent (rejected
// programs, plain lint runs) a self-contained pointer-provenance analysis
// classifies accesses, so the passes still fire on unverified input.
ConcurrencyReport AnalyzeConcurrency(const Program& program, const Cfg& cfg,
                                     const Analysis* analysis);
// Convenience overload building the CFG internally; returns an empty
// (kRaceFree, no findings) report when the program is too malformed for a
// CFG — callers on the load path treat that as "nothing provable".
ConcurrencyReport AnalyzeConcurrency(const Program& program, const Analysis* analysis);

// The cross-program lock-acquisition graph: Runtime builds one per shared
// heap over all loaded extensions' report edges, kflex-lint builds one over
// all files on the command line. Cycles are potential AB/BA deadlocks.
class LockOrderGraph {
 public:
  // Contributes `edges` under the given program name (witnesses are kept).
  void AddEdges(const std::string& program, const std::vector<LockOrderEdge>& edges);

  struct CycleEdge {
    std::string program;  // contributing program name
    LockOrderEdge edge;
  };
  struct Cycle {
    std::vector<CycleEdge> edges;  // rotated to start at the smallest lock
    // Distinct contributing program names, sorted.
    std::vector<std::string> programs;
    // "lock-order cycle: heap offset 64 -> 128 -> 64 (prog_a pc 5, ...)".
    std::string Describe() const;
  };

  // Every elementary cycle in the graph, deduplicated by its lock set and
  // rotation-normalized, sorted by the smallest lock offset then length.
  std::vector<Cycle> FindCycles() const;

  size_t num_edges() const { return edges_.size(); }

 private:
  std::vector<CycleEdge> edges_;
};

}  // namespace kflex

#endif  // SRC_VERIFIER_CONCURRENCY_H_
