// Deterministic fault injection (kernel failslab / fail_page_alloc style).
//
// Named fault points are compiled into the error-prone hot paths of the
// runtime: the slab allocator (`alloc.slab`, `alloc.percpu`), the demand
// pager (`heap.pagein`, `heap.guard`), the W^X code cache (`jit.mmap`,
// `jit.mprotect`), map updates (`map.update`), helper dispatch
// (`helper.ret_err`) and spin-lock acquisition (`lock.delay`). A disarmed
// point costs one relaxed counter increment and a branch.
//
// Armed points fail according to a policy that is a pure function of
// (policy, hit index): no wallclock or shared randomness is consulted at
// fire time, so a failure schedule replays exactly from its printed
// `point:spec` string. Policies are armed per point via RuntimeOptions
// (fault_specs), `kflex_run --fault=point:spec`, or the KFLEX_FAULT
// environment variable (';'-separated specs, applied on first registry use —
// the fuzzer knob).
#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace kflex {

// What happens when an armed point's schedule fires.
struct FaultPolicy {
  enum class Kind : uint8_t {
    kOff = 0,
    kNth,     // fail exactly the Nth hit (1-based)
    kEveryN,  // fail every Nth hit
    kProb,    // seeded-probabilistic schedule
  };
  Kind kind = Kind::kOff;
  uint64_t n = 0;         // kNth: which hit; kEveryN: the period
  uint32_t prob_ppm = 0;  // kProb: failure probability, parts per million
  uint64_t seed = 0;      // kProb: schedule seed
  uint64_t times = 0;     // cap on total failures; 0 = unlimited

  // Canonical spec form; round-trips through ParseFaultPolicy.
  std::string ToString() const;
};

// Spec grammar (comma-separated key=value):
//   "off"                          disarm
//   "nth=N[,times=T]"              fail the Nth hit
//   "every=N[,times=T]"            fail every Nth hit
//   "prob=P[,seed=S][,times=T]"    fail with probability P in [0,1]
StatusOr<FaultPolicy> ParseFaultPolicy(std::string_view spec);

// Splits "point:spec" into its point name and parsed policy.
StatusOr<std::pair<std::string, FaultPolicy>> ParseFaultSpec(std::string_view spec);

// The pure schedule function: does 0-based hit number `hit` fail under
// `policy`? Exposed for tests; FaultPoint::ShouldFail applies it plus the
// `times` cap.
bool FaultScheduleFires(const FaultPolicy& policy, uint64_t hit);

// One named injection site. Instances live forever in the FaultRegistry;
// hot paths cache a pointer via KFLEX_FAULT_FIRE.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }

  // Hot path: counts the hit and reports whether this hit should fail.
  bool ShouldFail();

  // Arming resets the hit/fail counters so the schedule starts fresh.
  void Arm(const FaultPolicy& policy);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  FaultPolicy policy() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t fails() const { return fails_.load(std::memory_order_relaxed); }
  void ResetCounters();

  // Stable registration index; stamped into fault.fired trace events (the
  // obs catalog carries it as `point_index`).
  uint32_t obs_index() const { return obs_index_; }
  void set_obs_index(uint32_t index) { obs_index_ = index; }

 private:
  std::string name_;
  uint32_t obs_index_ = 0;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fails_{0};
  mutable std::mutex mu_;  // guards policy_
  FaultPolicy policy_;
};

// Process-wide registry of fault points. The built-in catalog is registered
// eagerly at construction so tools and the chaos harness can enumerate every
// point whether or not its code path has executed yet.
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  // Find-or-create; the returned reference is stable for process lifetime.
  FaultPoint& Point(std::string_view name);
  FaultPoint* Find(std::string_view name);
  // Sorted names of every registered point.
  std::vector<std::string> Names() const;

  // Arm `name` with `policy`; error if the point is unknown (catches typos:
  // every injectable site registers itself in the built-in catalog).
  Status Arm(std::string_view name, const FaultPolicy& policy);
  // Arms from one "point:spec" string.
  Status ArmSpec(std::string_view spec);
  // Arms from a ';'-separated spec list in environment variable `env_var`.
  // Missing/empty variable is OK (no-op).
  Status ArmFromEnv(const char* env_var = "KFLEX_FAULT");

  void DisarmAll();
  void ResetCounters();

  struct PointStats {
    std::string name;
    bool armed = false;
    std::string policy;  // canonical spec, "off" when disarmed
    uint64_t hits = 0;
    uint64_t fails = 0;
  };
  std::vector<PointStats> Stats() const;

 private:
  FaultRegistry();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<FaultPoint>> points_;
};

// RAII arming for tests: arms specs on construction, disarms *all* points
// and zeroes counters on destruction. Scopes do not nest (the registry is
// process-global).
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() = default;
  explicit ScopedFaultInjection(std::initializer_list<std::string_view> specs);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  Status Arm(std::string_view spec) { return FaultRegistry::Instance().ArmSpec(spec); }
};

// Hot-path test: one static pointer resolution on first execution, then a
// counter increment + relaxed flag load per hit.
#define KFLEX_FAULT_FIRE(point_name)                               \
  ([]() -> bool {                                                  \
    static ::kflex::FaultPoint* kflex_fault_point =                \
        &::kflex::FaultRegistry::Instance().Point(point_name);     \
    return kflex_fault_point->ShouldFail();                        \
  })()

}  // namespace kflex

#endif  // SRC_FAULT_FAULT_H_
