#include "src/fault/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/obs/obs.h"

namespace kflex {

namespace {

// The built-in fault-point catalog. Sites created with KFLEX_FAULT_FIRE must
// appear here so that enumeration (chaos harness, --fault=list) sees every
// point before its code path first executes. chaos_test's self-check fails
// if an entry is added here without matrix coverage.
constexpr const char* kCatalog[] = {
    "alloc.slab",      // HeapAllocator::CarvePageLocked: page carve fails
    "alloc.percpu",    // HeapAllocator::Alloc: per-CPU cache path fails
    "heap.pagein",     // ExtensionHeap::TranslateKernel: page treated absent
    "heap.guard",      // ExtensionHeap::TranslateKernel: forced guard fault
    "jit.mmap",        // CodeBuffer::Allocate: executable mapping refused
    "jit.mprotect",    // CodeBuffer::Seal: W^X seal refused
    "map.update",      // Map::Update: -ENOMEM
    "helper.ret_err",  // helper dispatch: documented error, body skipped
    "lock.delay",      // SpinLockOps::Acquire: deterministic waiter delay
    "shard.enqueue",   // ShardedRuntime::Submit: ingress treated as full
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 19) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// Probability in [0,1] with up to 6 fractional digits -> parts per million.
bool ParseProbPpm(std::string_view s, uint32_t* out) {
  size_t dot = s.find('.');
  std::string_view whole = dot == std::string_view::npos ? s : s.substr(0, dot);
  std::string_view frac = dot == std::string_view::npos ? "" : s.substr(dot + 1);
  uint64_t w = 0;
  if (!whole.empty() && !ParseU64(whole, &w)) {
    return false;
  }
  if (w > 1 || frac.size() > 6) {
    return false;
  }
  uint64_t f = 0;
  if (!frac.empty()) {
    if (!ParseU64(frac, &f)) {
      return false;
    }
    for (size_t i = frac.size(); i < 6; i++) {
      f *= 10;
    }
  }
  uint64_t ppm = w * 1'000'000 + f;
  if (ppm > 1'000'000) {
    return false;
  }
  *out = static_cast<uint32_t>(ppm);
  return true;
}

}  // namespace

std::string FaultPolicy::ToString() const {
  char buf[128];
  switch (kind) {
    case Kind::kOff:
      return "off";
    case Kind::kNth:
      std::snprintf(buf, sizeof(buf), "nth=%llu", static_cast<unsigned long long>(n));
      break;
    case Kind::kEveryN:
      std::snprintf(buf, sizeof(buf), "every=%llu", static_cast<unsigned long long>(n));
      break;
    case Kind::kProb:
      std::snprintf(buf, sizeof(buf), "prob=0.%06u,seed=%llu", prob_ppm,
                    static_cast<unsigned long long>(seed));
      break;
  }
  std::string out = buf;
  if (times != 0) {
    std::snprintf(buf, sizeof(buf), ",times=%llu", static_cast<unsigned long long>(times));
    out += buf;
  }
  return out;
}

StatusOr<FaultPolicy> ParseFaultPolicy(std::string_view spec) {
  if (spec == "off") {
    return FaultPolicy{};
  }
  FaultPolicy policy;
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view kv = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgument("fault spec: expected key=value, got '" + std::string(kv) + "'");
    }
    std::string_view key = kv.substr(0, eq);
    std::string_view val = kv.substr(eq + 1);
    if (key == "nth" || key == "every") {
      if (policy.kind != FaultPolicy::Kind::kOff) {
        return InvalidArgument("fault spec: multiple policy kinds in '" + std::string(spec) + "'");
      }
      uint64_t v = 0;
      if (!ParseU64(val, &v) || v == 0) {
        return InvalidArgument("fault spec: bad count '" + std::string(val) + "'");
      }
      policy.kind = key == "nth" ? FaultPolicy::Kind::kNth : FaultPolicy::Kind::kEveryN;
      policy.n = v;
    } else if (key == "prob") {
      if (policy.kind != FaultPolicy::Kind::kOff) {
        return InvalidArgument("fault spec: multiple policy kinds in '" + std::string(spec) + "'");
      }
      if (!ParseProbPpm(val, &policy.prob_ppm)) {
        return InvalidArgument("fault spec: bad probability '" + std::string(val) +
                               "' (want 0..1, <= 6 fractional digits)");
      }
      policy.kind = FaultPolicy::Kind::kProb;
    } else if (key == "seed") {
      if (!ParseU64(val, &policy.seed)) {
        return InvalidArgument("fault spec: bad seed '" + std::string(val) + "'");
      }
    } else if (key == "times") {
      if (!ParseU64(val, &policy.times) || policy.times == 0) {
        return InvalidArgument("fault spec: bad times '" + std::string(val) + "'");
      }
    } else {
      return InvalidArgument("fault spec: unknown key '" + std::string(key) + "'");
    }
  }
  if (policy.kind == FaultPolicy::Kind::kOff) {
    return InvalidArgument("fault spec: no policy (want nth=, every= or prob=) in '" +
                           std::string(spec) + "'");
  }
  return policy;
}

StatusOr<std::pair<std::string, FaultPolicy>> ParseFaultSpec(std::string_view spec) {
  size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return InvalidArgument("fault spec: expected point:policy, got '" + std::string(spec) + "'");
  }
  StatusOr<FaultPolicy> policy = ParseFaultPolicy(spec.substr(colon + 1));
  if (!policy.ok()) {
    return policy.status();
  }
  return std::make_pair(std::string(spec.substr(0, colon)), *policy);
}

bool FaultScheduleFires(const FaultPolicy& policy, uint64_t hit) {
  switch (policy.kind) {
    case FaultPolicy::Kind::kOff:
      return false;
    case FaultPolicy::Kind::kNth:
      return hit + 1 == policy.n;
    case FaultPolicy::Kind::kEveryN:
      return (hit + 1) % policy.n == 0;
    case FaultPolicy::Kind::kProb:
      // Counter-based hash: the schedule is a pure function of (seed, hit),
      // i.e. precomputed in the mathematical sense — nothing is sampled at
      // fire time, and hit K fires identically on every replay.
      return SplitMix64(policy.seed ^ SplitMix64(hit)) % 1'000'000 < policy.prob_ppm;
  }
  return false;
}

bool FaultPoint::ShouldFail() {
  uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed)) {
    return false;
  }
  FaultPolicy policy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = policy_;
  }
  if (!FaultScheduleFires(policy, hit)) {
    return false;
  }
  // The `times` cap is best-effort under concurrent hits (the counters are
  // not transactional); deterministic replay assumes the armed point is
  // exercised from one thread at a time, which the chaos harness guarantees.
  if (policy.times != 0 && fails_.load(std::memory_order_relaxed) >= policy.times) {
    return false;
  }
  fails_.fetch_add(1, std::memory_order_relaxed);
  KFLEX_TRACE(ObsEvent::kFaultFired, obs_index_, hit);
  KFLEX_OBS_COUNT(kFaultsFired);
  return true;
}

void FaultPoint::Arm(const FaultPolicy& policy) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy;
  }
  hits_.store(0, std::memory_order_relaxed);
  fails_.store(0, std::memory_order_relaxed);
  armed_.store(policy.kind != FaultPolicy::Kind::kOff, std::memory_order_relaxed);
}

void FaultPoint::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = FaultPolicy{};
}

FaultPolicy FaultPoint::policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_;
}

void FaultPoint::ResetCounters() {
  hits_.store(0, std::memory_order_relaxed);
  fails_.store(0, std::memory_order_relaxed);
}

FaultRegistry::FaultRegistry() {
  for (const char* name : kCatalog) {
    points_.push_back(std::make_unique<FaultPoint>(name));
    points_.back()->set_obs_index(static_cast<uint32_t>(points_.size() - 1));
  }
  // The fuzzer/env knob: arm from KFLEX_FAULT on first use so any binary in
  // the tree honors it without plumbing. Errors are reported, not fatal.
  Status env = ArmFromEnv();
  if (!env.ok()) {
    std::fprintf(stderr, "kflex: ignoring bad KFLEX_FAULT: %s\n", env.ToString().c_str());
  }
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultPoint& FaultRegistry::Point(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : points_) {
    if (p->name() == name) {
      return *p;
    }
  }
  points_.push_back(std::make_unique<FaultPoint>(std::string(name)));
  points_.back()->set_obs_index(static_cast<uint32_t>(points_.size() - 1));
  return *points_.back();
}

FaultPoint* FaultRegistry::Find(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : points_) {
    if (p->name() == name) {
      return p.get();
    }
  }
  return nullptr;
}

std::vector<std::string> FaultRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(points_.size());
    for (const auto& p : points_) {
      names.push_back(p->name());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status FaultRegistry::Arm(std::string_view name, const FaultPolicy& policy) {
  FaultPoint* point = Find(name);
  if (point == nullptr) {
    return Status(StatusCode::kNotFound,
                  "unknown fault point '" + std::string(name) + "' (see --fault=list)");
  }
  point->Arm(policy);
  return OkStatus();
}

Status FaultRegistry::ArmSpec(std::string_view spec) {
  StatusOr<std::pair<std::string, FaultPolicy>> parsed = ParseFaultSpec(spec);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return Arm(parsed->first, parsed->second);
}

Status FaultRegistry::ArmFromEnv(const char* env_var) {
  const char* value = std::getenv(env_var);
  if (value == nullptr || value[0] == '\0') {
    return OkStatus();
  }
  std::string_view rest = value;
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view spec = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    if (spec.empty()) {
      continue;
    }
    Status s = ArmSpec(spec);
    if (!s.ok()) {
      return s;
    }
  }
  return OkStatus();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : points_) {
    p->Disarm();
  }
}

void FaultRegistry::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& p : points_) {
    p->ResetCounters();
  }
}

std::vector<FaultRegistry::PointStats> FaultRegistry::Stats() const {
  std::vector<PointStats> stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.reserve(points_.size());
    for (const auto& p : points_) {
      PointStats s;
      s.name = p->name();
      s.armed = p->armed();
      s.policy = p->armed() ? p->policy().ToString() : "off";
      s.hits = p->hits();
      s.fails = p->fails();
      stats.push_back(std::move(s));
    }
  }
  std::sort(stats.begin(), stats.end(),
            [](const PointStats& a, const PointStats& b) { return a.name < b.name; });
  return stats;
}

ScopedFaultInjection::ScopedFaultInjection(std::initializer_list<std::string_view> specs) {
  for (std::string_view spec : specs) {
    Status s = Arm(spec);
    if (!s.ok()) {
      std::fprintf(stderr, "kflex: ScopedFaultInjection: %s\n", s.ToString().c_str());
    }
  }
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultRegistry::Instance().DisarmAll();
  FaultRegistry::Instance().ResetCounters();
}

}  // namespace kflex
