// Latency histogram with logarithmic buckets and percentile queries.
//
// Used by the discrete-event load generator to report p50/p99/p999 tail
// latencies for the end-to-end experiments (Figures 2, 3, 4, 6, 7).
#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kflex {

class Histogram {
 public:
  Histogram();

  // Records a nanosecond-scale sample.
  void Record(uint64_t value_ns);

  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Returns the approximate value at quantile q in [0, 1].
  uint64_t Percentile(double q) const;

  std::string Summary() const;

 private:
  // Buckets: [0,1), [1,2), ..., then log2 ranges split into 16 sub-buckets.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t min_;
  uint64_t max_;
  double sum_;
};

}  // namespace kflex

#endif  // SRC_BASE_HISTOGRAM_H_
