// Zipfian key-popularity generator.
//
// The paper's load generator issues requests "according to a Zipfian access
// pattern with s = 0.99" (§5). We use the rejection-inversion-free classic
// Gray et al. / YCSB-style generator with precomputed constants.
#ifndef SRC_BASE_ZIPF_H_
#define SRC_BASE_ZIPF_H_

#include <cstdint>

#include "src/base/rng.h"

namespace kflex {

class ZipfGenerator {
 public:
  // Generates values in [0, n). theta is the skew (paper uses 0.99).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace kflex

#endif  // SRC_BASE_ZIPF_H_
