#include "src/base/logging.h"

#include <atomic>
#include <mutex>

#include "src/base/status.h"

namespace kflex {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kVerificationFailed:
      return "VERIFICATION_FAILED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace kflex
