#include "src/base/zipf.h"

#include <cmath>

#include "src/base/logging.h"

namespace kflex {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t /*seed*/)
    : n_(n), theta_(theta) {
  KFLEX_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  double v = eta_ * u - eta_ + 1.0;
  uint64_t rank = static_cast<uint64_t>(static_cast<double>(n_) * std::pow(v, alpha_));
  if (rank >= n_) {
    rank = n_ - 1;
  }
  return rank;
}

}  // namespace kflex
