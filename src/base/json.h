// Minimal JSON value + recursive-descent parser. Just enough for the
// tooling surface: kflex-top consumes `kflex_run --metrics=json` output and
// the schema smoke test validates the contract. Numbers are stored as
// double (the metrics schema only emits unsigned integers that fit).
#ifndef SRC_BASE_JSON_H_
#define SRC_BASE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace kflex {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  // Ordered map keeps output diffable; metrics keys are unique.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_bool() const { return type == Type::kBool; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  uint64_t AsU64() const { return number < 0 ? 0 : static_cast<uint64_t>(number); }
};

// Parses `text`; on failure returns false and sets `error` (with offset).
bool JsonParse(const std::string& text, JsonValue* out, std::string* error);

}  // namespace kflex

#endif  // SRC_BASE_JSON_H_
