#include "src/base/json.h"

#include <cctype>
#include <cstdlib>

namespace kflex {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': out->type = JsonValue::Type::kString; return ParseString(&out->str);
      case 't':
      case 'f': return ParseBool(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    pos_++;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      pos_++;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    pos_++;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    pos_++;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("bad \\u escape");
          }
          unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // Metrics output only escapes control characters; anything else
          // is stored as '?' rather than implementing full UTF-16.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos_ += 5;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) {
      return Fail("expected value");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};  // callers reuse values; never append to a dirty one
  Parser p(text, error);
  return p.Parse(out);
}

}  // namespace kflex
