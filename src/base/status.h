// Lightweight Status / StatusOr types used across the KFlex codebase.
//
// The project avoids C++ exceptions (systems-code convention): fallible
// operations return Status or StatusOr<T> and callers branch on ok().
#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace kflex {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  // Verifier-specific rejection: program violates kernel-interface compliance
  // or (in eBPF mode) extension-correctness rules.
  kVerificationFailed,
};

const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "<code>: <message>" for logging and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status VerificationFailed(std::string msg) {
  return Status(StatusCode::kVerificationFailed, std::move(msg));
}

// StatusOr<T> holds either a value or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(data_).ok() && "OK status without a value");
  }
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

#define KFLEX_RETURN_IF_ERROR(expr)      \
  do {                                   \
    ::kflex::Status kflex_status_ = (expr); \
    if (!kflex_status_.ok()) {           \
      return kflex_status_;              \
    }                                    \
  } while (0)

}  // namespace kflex

#endif  // SRC_BASE_STATUS_H_
