// Deterministic pseudo-random number generation (xorshift64* / splitmix64).
//
// Benchmarks and property tests need reproducible randomness that does not
// depend on libstdc++'s distribution implementations.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace kflex {

// splitmix64: used for seeding and hashing seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xorshift64* generator. Small, fast, good enough statistical quality for
// workload generation; identical algorithm is re-implemented in extension
// bytecode for the skip list (so both sides can be cross-checked).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL) {
    uint64_t s = seed;
    state_ = SplitMix64(s);
    if (state_ == 0) {
      state_ = 0x2545F4914F6CDD1DULL;
    }
  }

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace kflex

#endif  // SRC_BASE_RNG_H_
