// Minimal logging and check macros.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace kflex {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace kflex

#define KFLEX_LOG(level) ::kflex::LogStream(::kflex::LogLevel::k##level, __FILE__, __LINE__)

#define KFLEX_CHECK(cond)                                                        \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::kflex::LogMessage(::kflex::LogLevel::kError, __FILE__, __LINE__,         \
                          "CHECK failed: " #cond);                               \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#define KFLEX_DCHECK(cond) assert(cond)

#endif  // SRC_BASE_LOGGING_H_
