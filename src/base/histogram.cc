#include "src/base/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace kflex {

Histogram::Histogram() : buckets_(kNumBuckets, 0), count_(0), min_(~0ULL), max_(0), sum_(0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  int log = 63 - std::countl_zero(value);
  int shift = log - kSubBucketBits;
  int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  int bucket = (log - kSubBucketBits + 1) * kSubBuckets + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket);
  }
  int range = bucket / kSubBuckets;      // >= 1
  int sub = bucket % kSubBuckets;
  int log = range + kSubBucketBits - 1;  // exponent of the range start
  uint64_t base = 1ULL << log;
  uint64_t step = base >> kSubBucketBits;
  return base + static_cast<uint64_t>(sub + 1) * step - 1;
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[static_cast<size_t>(BucketFor(value_ns))]++;
  count_++;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
  sum_ += static_cast<double>(value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p99=%llu p999=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(Percentile(0.999)),
                static_cast<unsigned long long>(max_));
  return std::string(buf);
}

}  // namespace kflex
