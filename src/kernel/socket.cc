#include "src/kernel/socket.h"

#include <cstring>

#include "src/ebpf/helper_ids.h"
#include "src/kernel/packet.h"

namespace kflex {

Socket* SocketTable::Bind(uint32_t ip, uint16_t port, uint8_t proto) {
  std::lock_guard<std::mutex> lock(mu_);
  auto socket = std::make_unique<Socket>();
  socket->ip = ip;
  socket->port = port;
  socket->proto = proto;
  Socket* raw = socket.get();
  sockets_[KeyOf(ip, port, proto)] = std::move(socket);
  return raw;
}

Socket* SocketTable::Find(uint32_t ip, uint16_t port, uint8_t proto) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sockets_.find(KeyOf(ip, port, proto));
  return it == sockets_.end() ? nullptr : it->second.get();
}

bool SocketTable::Quiescent() const { return TotalExtraRefs() == 0; }

int64_t SocketTable::TotalExtraRefs() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t extra = 0;
  for (const auto& [key, socket] : sockets_) {
    extra += socket->refcount.load(std::memory_order_acquire) - 1;
  }
  return extra;
}

void SocketTable::RegisterHelpers(HelperTable& helpers, ObjectRegistry& objects) {
  // bpf_sk_lookup_udp(ctx, tuple*, tuple_size, netns, flags).
  // The tuple is {u32 ip; u16 port; u8 proto; u8 pad} on the extension stack.
  helpers.Register(kHelperSkLookupUdp, [this, &objects](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    MemFaultKind fk = MemFaultKind::kNone;
    uint64_t tuple_size = args[2];
    if (tuple_size < 8) {
      out.fault = true;
      return out;
    }
    uint8_t* tuple = VmTranslate(env, args[1], 8, fk);
    if (tuple == nullptr) {
      out.fault = true;
      return out;
    }
    uint32_t ip;
    uint16_t port;
    std::memcpy(&ip, tuple, 4);
    std::memcpy(&port, tuple + 4, 2);
    Socket* socket = Find(ip, port, kProtoUdp);
    if (socket == nullptr) {
      out.ret = 0;  // NULL: no such socket.
      return out;
    }
    socket->refcount.fetch_add(1, std::memory_order_acq_rel);
    out.ret = objects.Register(ResourceKind::kSocket, [socket] {
      socket->refcount.fetch_sub(1, std::memory_order_acq_rel);
    });
    return out;
  },
                   /*virtual_cost=*/25);

  helpers.Register(kHelperSkRelease, [&objects](VmEnv& env, const uint64_t args[5]) {
    HelperOutcome out;
    if (!objects.Release(args[0])) {
      // The verifier guarantees releases match acquisitions; reaching this
      // indicates a runtime bug.
      out.fault = true;
    }
    return out;
  },
                   /*virtual_cost=*/10);
}

}  // namespace kflex
