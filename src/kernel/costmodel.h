// Kernel network-path cost model.
//
// The paper's end-to-end numbers come from a two-machine 10 GbE testbed we
// do not have. What produces the *shape* of Figures 2/3/4/6/7 is structural:
// XDP offloads skip the IP/TCP stack, socket wakeups, syscalls and context
// switches; sk_skb offloads skip only the syscall/wakeup part; BMC pays the
// full user-space path on every SET. We reproduce that structure with
// per-stage costs (nanoseconds) calibrated against published
// microsecond-scale measurements (IX [22], the killer-microseconds analysis
// [21], and the BMC paper [42]); see EXPERIMENTS.md for the calibration
// notes.
#ifndef SRC_KERNEL_COSTMODEL_H_
#define SRC_KERNEL_COSTMODEL_H_

#include <cstdint>

namespace kflex {

struct CostModel {
  // NIC driver RX processing up to the XDP hook.
  uint64_t driver_rx = 300;
  // Transmitting a reply directly from the XDP hook (XDP_TX).
  uint64_t xdp_tx = 250;
  // IP layer processing.
  uint64_t ip_rx = 250;
  // UDP receive processing up to the socket.
  uint64_t udp_rx = 400;
  // TCP receive processing up to the socket (heavier: seq/ack, reassembly).
  uint64_t tcp_rx = 1200;
  // KFlex's TCP fast path handled at the XDP hook (§5.1): a trimmed ack/seq
  // update instead of the full stack.
  uint64_t tcp_fastpath_xdp = 350;
  // Socket enqueue + application wakeup + epoll/read syscall + context
  // switch + copy to user.
  uint64_t socket_wake_syscall = 920;
  // Reply through the socket API (sendmsg syscall + stack TX).
  uint64_t syscall_tx = 800;
  // Reply transmitted by an sk_skb extension (kernel TX path, no syscall).
  uint64_t skb_tx = 250;
  // Cost of converting one executed bytecode instruction into nanoseconds
  // ("JIT-equivalent" execution speed). All systems' compute is expressed in
  // the same currency, so relative overheads are preserved.
  double ns_per_insn = 2.5;
  // Relative cost of Kie-inserted instrumentation instructions (the guard
  // AND, the terminate load). On real hardware these pipeline behind the
  // access they protect — "typically optimized down to one hardware
  // instruction" (§3.2), with *terminate resident in L1 (§3.3) — so they
  // cost a fraction of an ordinary instruction.
  double instrumentation_cost_factor = 0.25;

  // Effective compute cost of an invocation in nanoseconds.
  uint64_t ComputeNs(uint64_t insns, uint64_t instr_insns) const {
    double plain = static_cast<double>(insns - instr_insns);
    double instr = static_cast<double>(instr_insns) * instrumentation_cost_factor;
    return static_cast<uint64_t>((plain + instr) * ns_per_insn);
  }

  // ---- Path costs ----
  // User-space server, request over UDP (Memcached GET).
  uint64_t UserPathUdp() const {
    return driver_rx + ip_rx + udp_rx + socket_wake_syscall + syscall_tx;
  }
  // User-space server, request over TCP (Memcached SET, all Redis ops).
  uint64_t UserPathTcp() const {
    return driver_rx + ip_rx + tcp_rx + socket_wake_syscall + syscall_tx;
  }
  // XDP extension consumed the packet and replied (UDP request).
  uint64_t XdpPathUdp() const { return driver_rx + xdp_tx; }
  // XDP extension consumed a TCP request using the XDP TCP fast path.
  uint64_t XdpPathTcp() const { return driver_rx + tcp_fastpath_xdp + xdp_tx; }
  // sk_skb extension: full RX stack, but reply from the kernel (no syscall,
  // no wakeup/context switch).
  uint64_t SkSkbPathTcp() const { return driver_rx + ip_rx + tcp_rx + skb_tx; }
  // BMC miss / SET: the XDP program ran, then the packet continued through
  // the full user-space path.
  uint64_t XdpThenUserUdp() const { return UserPathUdp(); }
  uint64_t XdpThenUserTcp() const { return UserPathTcp(); }
};

}  // namespace kflex

#endif  // SRC_KERNEL_COSTMODEL_H_
