#include "src/kernel/kernel.h"

namespace kflex {

MockKernel::MockKernel(const RuntimeOptions& options) : runtime_(options) {
  sockets_.RegisterHelpers(runtime_.helpers(), runtime_.objects());
  attached_.fill(0);
}

Status MockKernel::Attach(ExtensionId id) {
  const InstrumentedProgram& iprog = runtime_.instrumented(id);
  size_t hook = static_cast<size_t>(iprog.program.hook);
  if (attached_[hook] != 0) {
    return AlreadyExists("hook already has an extension attached");
  }
  attached_[hook] = id;
  return OkStatus();
}

void MockKernel::Detach(Hook hook) { attached_[static_cast<size_t>(hook)] = 0; }

ExtensionId MockKernel::Attached(Hook hook) const {
  return attached_[static_cast<size_t>(hook)];
}

InvokeResult MockKernel::Deliver(Hook hook, int cpu, uint8_t* ctx, uint32_t ctx_size) {
  ExtensionId id = attached_[static_cast<size_t>(hook)];
  if (id == 0) {
    InvokeResult result;
    result.attached = false;
    result.verdict = HookDefaultVerdict(hook);
    return result;
  }
  InvokeResult result = runtime_.Invoke(id, cpu, ctx, ctx_size);
  if (!result.attached) {
    result.verdict = HookDefaultVerdict(hook);
  }
  return result;
}

bool MockKernel::Quiescent() const {
  return sockets_.Quiescent() && runtime_.objects().live_count() == 0;
}

}  // namespace kflex
