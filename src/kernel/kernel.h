// The mock kernel: hook dispatch over the KFlex runtime plus the socket
// table substrate. This is the "Linux" of the reproduction — extensions
// attach to hooks; packets delivered to a hook either get consumed by the
// extension (XDP_TX fast path) or fall through to the user-space
// application, paying the stack costs of src/kernel/costmodel.h.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <array>
#include <cstdint>

#include "src/kernel/packet.h"
#include "src/kernel/socket.h"
#include "src/runtime/runtime.h"

namespace kflex {

class MockKernel {
 public:
  explicit MockKernel(const RuntimeOptions& options = {});

  Runtime& runtime() { return runtime_; }
  SocketTable& sockets() { return sockets_; }

  // Attaches a loaded extension to its hook (one extension per hook).
  Status Attach(ExtensionId id);
  void Detach(Hook hook);
  ExtensionId Attached(Hook hook) const;

  // Delivers a hook event. Returns the extension verdict; if no live
  // extension is attached, returns the hook's pass-through verdict so the
  // caller routes the event to user space.
  InvokeResult Deliver(Hook hook, int cpu, uint8_t* ctx, uint32_t ctx_size);

  // Kernel invariant check: every socket refcount is back at baseline and no
  // acquired object is live — the quiescent state cancellations must restore
  // (§3.3).
  bool Quiescent() const;

 private:
  static constexpr int kNumHooks = 4;

  Runtime runtime_;
  SocketTable sockets_;
  std::array<ExtensionId, kNumHooks> attached_{};
};

}  // namespace kflex

#endif  // SRC_KERNEL_KERNEL_H_
