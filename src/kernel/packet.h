// Hook context objects and the KV wire protocol.
//
// XDP / sk_skb extensions receive a 2048-byte context holding the (parsed-
// at-driver) packet. The evaluation applications (§5.1) speak a fixed binary
// key-value protocol modeled after Memcached's binary protocol: 32-byte keys
// and up-to-64-byte values, GETs over UDP and SETs over TCP for Memcached,
// everything over TCP for Redis.
#ifndef SRC_KERNEL_PACKET_H_
#define SRC_KERNEL_PACKET_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace kflex {

inline constexpr uint32_t kCtxSize = 2048;

// Protocol field offsets within the ctx buffer.
//
//   u16 pkt_len      @ 0
//   u8  l4_proto     @ 2   (17 = UDP, 6 = TCP)
//   u8  op           @ 3   (KvOp)
//   u32 src_ip       @ 4
//   u16 src_port     @ 8
//   u16 dst_port     @ 10
//   u8  keylen       @ 12
//   u8  resp_flag    @ 13  (written by the server: 1 = hit/ok, 0 = miss)
//   u16 vallen       @ 14
//   u64 zscore       @ 16  (ZADD only)
//   u8  key[32]      @ 24  (zero padded)
//   u8  value[64]    @ 56  (request payload)
//   u8  resp[64]     @ 120 (response payload)
enum KvCtxOff : int16_t {
  kOffPktLen = 0,
  kOffProto = 2,
  kOffOp = 3,
  kOffSrcIp = 4,
  kOffSrcPort = 8,
  kOffDstPort = 10,
  kOffKeyLen = 12,
  kOffRespFlag = 13,
  kOffValLen = 14,
  kOffZScore = 16,
  kOffKey = 24,
  kOffValue = 56,
  kOffResp = 120,
};

inline constexpr uint32_t kMaxKeyLen = 32;
inline constexpr uint32_t kMaxValLen = 64;

enum class KvOp : uint8_t { kGet = 0, kSet = 1, kDel = 2, kZadd = 3 };

inline constexpr uint8_t kProtoUdp = 17;
inline constexpr uint8_t kProtoTcp = 6;

// XDP verdicts (subset of the kernel's).
inline constexpr int64_t kXdpAborted = 0;
inline constexpr int64_t kXdpTx = 1;    // reply emitted from the hook
inline constexpr int64_t kXdpPass = 2;  // continue up the stack
inline constexpr int64_t kXdpDrop = 3;

// Host-side view of a ctx buffer (the "packet").
class KvPacket {
 public:
  KvPacket() { buf_.fill(0); }

  uint8_t* data() { return buf_.data(); }
  const uint8_t* data() const { return buf_.data(); }
  uint32_t size() const { return kCtxSize; }

  void SetOp(KvOp op) { buf_[kOffOp] = static_cast<uint8_t>(op); }
  KvOp op() const { return static_cast<KvOp>(buf_[kOffOp]); }
  void SetProto(uint8_t proto) { buf_[kOffProto] = proto; }
  uint8_t proto() const { return buf_[kOffProto]; }

  void SetTuple(uint32_t src_ip, uint16_t src_port, uint16_t dst_port) {
    std::memcpy(buf_.data() + kOffSrcIp, &src_ip, 4);
    std::memcpy(buf_.data() + kOffSrcPort, &src_port, 2);
    std::memcpy(buf_.data() + kOffDstPort, &dst_port, 2);
  }

  void SetKey(std::string_view key);
  void SetKeyU64(uint64_t k) {
    buf_[kOffKeyLen] = 8;
    std::memset(buf_.data() + kOffKey, 0, kMaxKeyLen);
    std::memcpy(buf_.data() + kOffKey, &k, 8);
  }
  void SetValue(std::string_view value);
  void SetZScore(uint64_t score) { std::memcpy(buf_.data() + kOffZScore, &score, 8); }

  uint8_t resp_flag() const { return buf_[kOffRespFlag]; }
  uint16_t vallen() const {
    uint16_t v;
    std::memcpy(&v, buf_.data() + kOffValLen, 2);
    return v;
  }
  std::string_view resp() const {
    return std::string_view(reinterpret_cast<const char*>(buf_.data() + kOffResp), vallen());
  }

 private:
  std::array<uint8_t, kCtxSize> buf_;
};

// Tracepoint-style ctx for the data-structure microbenchmarks (Fig. 5):
//   u64 op @0 (0=update, 1=lookup, 2=delete), u64 key @8, u64 value @16,
//   u64 result @24 (found flag / looked-up value), u64 aux @32.
enum DsCtxOff : int16_t {
  kDsOffOp = 0,
  kDsOffKey = 8,
  kDsOffValue = 16,
  kDsOffResult = 24,
  kDsOffAux = 32,
};
inline constexpr uint32_t kDsCtxSize = 64;

struct DsCtx {
  uint64_t op = 0;
  uint64_t key = 0;
  uint64_t value = 0;
  uint64_t result = 0;
  uint64_t aux = 0;
  uint64_t pad[3] = {0};

  uint8_t* bytes() { return reinterpret_cast<uint8_t*>(this); }
};
static_assert(sizeof(DsCtx) == kDsCtxSize);

}  // namespace kflex

#endif  // SRC_KERNEL_PACKET_H_
