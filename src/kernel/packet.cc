#include "src/kernel/packet.h"

#include <algorithm>

namespace kflex {

void KvPacket::SetKey(std::string_view key) {
  uint32_t len = static_cast<uint32_t>(std::min<size_t>(key.size(), kMaxKeyLen));
  buf_[kOffKeyLen] = static_cast<uint8_t>(len);
  std::memset(buf_.data() + kOffKey, 0, kMaxKeyLen);
  std::memcpy(buf_.data() + kOffKey, key.data(), len);
}

void KvPacket::SetValue(std::string_view value) {
  uint16_t len = static_cast<uint16_t>(std::min<size_t>(value.size(), kMaxValLen));
  std::memcpy(buf_.data() + kOffValLen, &len, 2);
  std::memset(buf_.data() + kOffValue, 0, kMaxValLen);
  std::memcpy(buf_.data() + kOffValue, value.data(), len);
}

}  // namespace kflex
