// Reference-counted socket objects and the bpf_sk_lookup_udp /
// bpf_sk_release helpers.
//
// Sockets are the kernel-owned objects the paper's example extension
// acquires (Listing 1): bpf_sk_lookup_udp returns a referenced socket that
// MUST be released before the extension exits — or, on cancellation, by the
// runtime via the cancellation point's object table (§3.3).
#ifndef SRC_KERNEL_SOCKET_H_
#define SRC_KERNEL_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/runtime/runtime.h"

namespace kflex {

struct Socket {
  uint32_t ip = 0;
  uint16_t port = 0;
  uint8_t proto = 0;
  // Base refcount is 1 (owned by the table); each outstanding extension
  // reference adds 1.
  std::atomic<int64_t> refcount{1};
};

class SocketTable {
 public:
  // Creates a socket bound to (ip, port, proto).
  Socket* Bind(uint32_t ip, uint16_t port, uint8_t proto);
  Socket* Find(uint32_t ip, uint16_t port, uint8_t proto);

  // True when no extension holds an extra socket reference — the
  // "quiescent state" invariant the paper's cancellations must restore.
  bool Quiescent() const;
  int64_t TotalExtraRefs() const;

  // Registers bpf_sk_lookup_udp / bpf_sk_release against this table.
  // Acquired references are registered in `objects` so cancellation unwinds
  // can release them.
  void RegisterHelpers(HelperTable& helpers, ObjectRegistry& objects);

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<Socket>> sockets_;

  static uint64_t KeyOf(uint32_t ip, uint16_t port, uint8_t proto) {
    return (static_cast<uint64_t>(ip) << 32) | (static_cast<uint64_t>(port) << 8) | proto;
  }
};

}  // namespace kflex

#endif  // SRC_KERNEL_SOCKET_H_
