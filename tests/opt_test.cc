// Bytecode optimizer (src/verifier/opt.h): one test block per pass.
//
//  * SCCP: constant ALU folding, decided-branch folding, infeasible-code
//    removal — all on the verifier's own tnum + bounds lattice.
//  * Available-guard analysis: dominated SANITIZEs are skipped, including
//    the sharp cases — §5.4 formation guards are never elided, availability
//    dies at base redefinitions, helper calls, and C1 cancellation points.
//  * Dead stack-store elimination, including the unwinder's object-table
//    slot protection.
#include <gtest/gtest.h>

#include <cstring>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kie/kie.h"
#include "src/runtime/runtime.h"
#include "src/verifier/dataflow.h"
#include "src/verifier/opt.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

constexpr uint64_t kHeap = 1 << 20;

Program MustFinish(Assembler& a, ExtensionMode mode, uint64_t heap_size) {
  auto p = a.Finish("opt_test", Hook::kXdp, mode, heap_size);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

struct Optimized {
  Program program;
  Analysis analysis;
  OptResult opt;
};

Optimized MustOptimize(const Program& p) {
  auto analysis = Verify(p, VerifyOptions{});
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString() << "\n" << ProgramToString(p);
  auto opt = Optimize(p, *analysis);
  EXPECT_TRUE(opt.ok()) << opt.status().ToString();
  return {p, std::move(analysis).value(), std::move(opt).value()};
}

// ---- SCCP -------------------------------------------------------------------

TEST(SccpTest, ConstantAluChainsFoldToMovImm) {
  Assembler a;
  a.MovImm(R2, 5);
  a.AluImm(BPF_ADD, R2, 3);   // r2 = 8
  a.AluImm(BPF_LSH, R2, 4);   // r2 = 128
  a.Mov(R3, R2);              // r3 = 128, breaks the dependency
  a.AluReg(BPF_ADD, R3, R2);  // r3 = 256
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  Optimized o = MustOptimize(p);
  EXPECT_EQ(o.opt.plan.stats.alu_folded, 4u);
  EXPECT_EQ(o.opt.program.insns[1], MovImmInsn(R2, 8));
  EXPECT_EQ(o.opt.program.insns[2], MovImmInsn(R2, 128));
  EXPECT_EQ(o.opt.program.insns[3], MovImmInsn(R3, 128));
  EXPECT_EQ(o.opt.program.insns[4], MovImmInsn(R3, 256));
  // Layout is preserved: same instruction count as the input.
  EXPECT_EQ(o.opt.program.insns.size(), p.insns.size());
}

TEST(SccpTest, UntrackedOperandsNeverFold) {
  Assembler a;
  a.Ldx(BPF_W, R2, R1, 0);   // ctx load: unknown at compile time
  a.AluImm(BPF_ADD, R2, 3);  // must stay an ADD
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  Optimized o = MustOptimize(p);
  EXPECT_EQ(o.opt.plan.stats.alu_folded, 0u);
  EXPECT_EQ(o.opt.program.insns[1], p.insns[1]);
}

TEST(SccpTest, DecidedBranchFoldsAndDeadSideIsRemoved) {
  Assembler a;
  a.MovImm(R2, 7);
  auto iff = a.IfImm(BPF_JEQ, R2, 7);  // always the then-branch
  a.MovImm(R0, 1);
  a.Else(iff);
  a.MovImm(R0, 2);  // infeasible
  a.EndIf(iff);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  Optimized o = MustOptimize(p);
  EXPECT_EQ(o.opt.plan.stats.const_branches_folded, 1u);
  EXPECT_GE(o.opt.plan.stats.unreachable_removed, 1u);
  size_t removed = 0;
  for (uint8_t r : o.opt.plan.removed) {
    removed += r;
  }
  EXPECT_GE(removed, 1u);

  // End to end through the default (optimizing) runtime: verdict 1.
  Runtime rt{RuntimeOptions{1}};
  auto id = rt.Load(p, LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // The instrumented program physically shrank.
  EXPECT_LT(rt.instrumented(*id).program.insns.size(), p.insns.size());
  uint8_t ctx[64] = {0};
  InvokeResult r = rt.Invoke(*id, 0, ctx, sizeof(ctx));
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 1);
}

TEST(SccpTest, RangeDisjointnessDecidesNonConstBranches) {
  Assembler a;
  a.Ldx(BPF_B, R2, R1, 0);  // unknown, but provably in [0, 255]
  auto iff = a.IfImm(BPF_JGT, R2, 300);  // never true
  a.MovImm(R0, 1);
  a.Else(iff);
  a.MovImm(R0, 2);
  a.EndIf(iff);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  Optimized o = MustOptimize(p);
  EXPECT_EQ(o.opt.plan.stats.const_branches_folded, 1u);
}

// ---- Dominated guards -------------------------------------------------------

// Base pointer with an unprovable offset: guard required at every access.
// R7 = heap_base + (unknown 32-bit ctx value).
void EmitUnprovenBase(Assembler& a, Reg base) {
  a.Ldx(BPF_W, R6, R1, 0);
  a.LoadHeapAddr(base, 0);
  a.Add(base, R6);
}

TEST(DominatedGuardTest, StraightLineRunOfAccessesKeepsOneGuard) {
  Assembler a;
  a.MovImm(R2, 1);
  EmitUnprovenBase(a, R7);
  size_t s1 = a.CurrentPc();
  a.Stx(BPF_DW, R7, 0, R2);   // guard emitted
  size_t s2 = a.CurrentPc();
  a.Stx(BPF_DW, R7, 8, R2);   // dominated
  size_t s3 = a.CurrentPc();
  a.Ldx(BPF_DW, R3, R7, 16);  // dominated (load through the same base)
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  Optimized o = MustOptimize(p);
  EXPECT_FALSE(o.opt.plan.dominated[s1]);
  EXPECT_TRUE(o.opt.plan.dominated[s2]);
  EXPECT_TRUE(o.opt.plan.dominated[s3]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 2u);

  HeapLayout layout = HeapLayout::ForSize(kHeap);
  auto with_plan = Instrument(o.opt.program, o.opt.analysis, layout, KieOptions{}, &o.opt.plan);
  ASSERT_TRUE(with_plan.ok());
  EXPECT_EQ(with_plan->stats.guards_emitted, 1u);
  EXPECT_EQ(with_plan->stats.guards_dominated, 2u);

  auto without = Instrument(p, o.analysis, layout, KieOptions{});
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->stats.guards_emitted, 3u);
  EXPECT_EQ(without->stats.guards_dominated, 0u);
  // Dominated sites drop their MOV+SANITIZE pair: two instructions each.
  EXPECT_EQ(without->program.insns.size(), with_plan->program.insns.size() + 4);
}

TEST(DominatedGuardTest, OptimizedAndUnoptimizedAgreeAtRuntime) {
  Assembler a;
  a.MovImm(R2, 0x2A);
  EmitUnprovenBase(a, R7);
  a.Stx(BPF_DW, R7, 0, R2);
  a.Stx(BPF_DW, R7, 8, R2);
  a.Ldx(BPF_DW, R0, R7, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  LoadOptions lo;
  lo.heap_static_bytes = 4096;
  LoadOptions lo_noopt = lo;
  lo_noopt.optimize = false;

  Runtime rt_opt{RuntimeOptions{1}};
  Runtime rt_ref{RuntimeOptions{1}};
  auto id_opt = rt_opt.Load(p, lo);
  auto id_ref = rt_ref.Load(p, lo_noopt);
  ASSERT_TRUE(id_opt.ok() && id_ref.ok());
  EXPECT_GT(rt_opt.instrumented(*id_opt).stats.guards_dominated, 0u);
  EXPECT_EQ(rt_ref.instrumented(*id_ref).stats.guards_dominated, 0u);

  uint8_t ctx[64] = {0};  // offset 0: lands in the populated statics area
  InvokeResult ro = rt_opt.Invoke(*id_opt, 0, ctx, sizeof(ctx));
  InvokeResult rr = rt_ref.Invoke(*id_ref, 0, ctx, sizeof(ctx));
  EXPECT_FALSE(ro.cancelled);
  EXPECT_FALSE(rr.cancelled);
  EXPECT_EQ(ro.verdict, 0x2A);
  EXPECT_EQ(rr.verdict, 0x2A);
  EXPECT_EQ(0, std::memcmp(rt_opt.heap(*id_opt)->HostAt(0), rt_ref.heap(*id_ref)->HostAt(0),
                           kHeap));
  // The dominated guard saves executed instructions.
  EXPECT_LT(ro.insns, rr.insns);
}

TEST(DominatedGuardTest, FormationGuardsAreNeverDominated) {
  Assembler a;
  a.MovImm(R2, 1);
  a.Ldx(BPF_DW, R6, R1, 0);  // untrusted scalar from ctx
  size_t f1 = a.CurrentPc();
  a.Stx(BPF_DW, R6, 0, R2);  // formation guard (§5.4)
  size_t f2 = a.CurrentPc();
  a.Stx(BPF_DW, R6, 8, R2);  // still a formation guard: never dominated
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  Optimized o = MustOptimize(p);
  ASSERT_TRUE(o.analysis.mem[f1].formation);
  ASSERT_TRUE(o.analysis.mem[f2].formation);
  EXPECT_FALSE(o.opt.plan.dominated[f1]);
  EXPECT_FALSE(o.opt.plan.dominated[f2]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 0u);

  auto ip = Instrument(o.opt.program, o.opt.analysis, HeapLayout::ForSize(kHeap), KieOptions{},
                       &o.opt.plan);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.formation_guards, 2u);
}

TEST(DominatedGuardTest, BaseRedefinitionKillsAvailability) {
  Assembler a;
  a.MovImm(R2, 1);
  EmitUnprovenBase(a, R7);
  a.Stx(BPF_DW, R7, 0, R2);
  a.AddImm(R7, 8);  // base changed: RAX no longer matches sanitize(r7)
  size_t s2 = a.CurrentPc();
  a.Stx(BPF_DW, R7, 0, R2);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  Optimized o = MustOptimize(p);
  EXPECT_FALSE(o.opt.plan.dominated[s2]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 0u);
}

TEST(DominatedGuardTest, HelperCallKillsAvailability) {
  Assembler a;
  a.MovImm(R2, 1);
  EmitUnprovenBase(a, R7);
  a.Stx(BPF_DW, R7, 0, R2);
  a.Call(kHelperKtimeGetNs);
  size_t s2 = a.CurrentPc();
  a.Stx(BPF_DW, R7, 0, R0);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  Optimized o = MustOptimize(p);
  EXPECT_FALSE(o.opt.plan.dominated[s2]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 0u);
}

TEST(DominatedGuardTest, OnlyJoinOfGuardedPathsDominates) {
  // Guard on one branch arm only: the meet over paths must not claim
  // availability at the join point.
  Assembler a;
  a.MovImm(R2, 1);
  EmitUnprovenBase(a, R7);
  a.Ldx(BPF_W, R3, R1, 4);
  auto iff = a.IfImm(BPF_JEQ, R3, 0);
  a.Stx(BPF_DW, R7, 0, R2);  // guard only on this arm
  a.EndIf(iff);
  size_t s2 = a.CurrentPc();
  a.Stx(BPF_DW, R7, 8, R2);  // join point: not dominated
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  Optimized o = MustOptimize(p);
  EXPECT_FALSE(o.opt.plan.dominated[s2]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 0u);
}

// The sharp cancellation-point pair. Identical loops over a guarded store;
// the only difference is the loop bound (constant vs. ctx-loaded). The
// bounded loop needs no cancellation point, so availability flows around the
// back edge and both the in-loop and after-loop stores are dominated by the
// pre-loop guard. The unbounded loop gets a C1 Cp on its back edge, whose
// terminate-load sequence clobbers the scratch register on both outgoing
// paths — availability dies, every store pays its own guard.
struct LoopSites {
  Program program;
  size_t pre, in_loop, after;
};

LoopSites BuildLoopProgram(bool bounded) {
  Assembler a;
  a.MovImm(R2, 1);
  EmitUnprovenBase(a, R7);
  if (bounded) {
    a.MovImm(R8, 4);
  } else {
    a.Ldx(BPF_W, R8, R1, 4);
  }
  LoopSites s;
  s.pre = a.CurrentPc();
  a.Stx(BPF_DW, R7, 0, R2);  // pre-loop guard: generates availability
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R8, 0);
  s.in_loop = a.CurrentPc();
  a.Stx(BPF_DW, R7, 8, R2);
  a.SubImm(R8, 1);
  a.LoopEnd(loop);
  s.after = a.CurrentPc();
  a.Stx(BPF_DW, R7, 16, R2);
  a.MovImm(R0, 0);
  a.Exit();
  s.program = MustFinish(a, ExtensionMode::kKflex, kHeap);
  return s;
}

TEST(DominatedGuardTest, BoundedLoopCarriesAvailabilityAroundBackEdge) {
  LoopSites s = BuildLoopProgram(/*bounded=*/true);
  Optimized o = MustOptimize(s.program);
  ASSERT_TRUE(o.analysis.cancellation_back_edges.empty());
  EXPECT_FALSE(o.opt.plan.dominated[s.pre]);
  EXPECT_TRUE(o.opt.plan.dominated[s.in_loop]);
  EXPECT_TRUE(o.opt.plan.dominated[s.after]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 2u);
}

TEST(DominatedGuardTest, CancellationPointKillsAvailability) {
  LoopSites s = BuildLoopProgram(/*bounded=*/false);
  Optimized o = MustOptimize(s.program);
  ASSERT_FALSE(o.analysis.cancellation_back_edges.empty());
  EXPECT_FALSE(o.opt.plan.dominated[s.pre]);
  EXPECT_FALSE(o.opt.plan.dominated[s.in_loop]);
  EXPECT_FALSE(o.opt.plan.dominated[s.after]);
  EXPECT_EQ(o.opt.plan.stats.guards_dominated, 0u);
}

TEST(DominatedGuardTest, PlanIsIgnoredUnderMismatchedKieOptions) {
  Assembler a;
  a.MovImm(R2, 1);
  EmitUnprovenBase(a, R7);
  a.Stx(BPF_DW, R7, 0, R2);
  a.Stx(BPF_DW, R7, 8, R2);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kKflex, kHeap);

  Optimized o = MustOptimize(p);
  ASSERT_EQ(o.opt.plan.stats.guards_dominated, 1u);

  // Translate-on-store and performance mode change which instructions write
  // the scratch register: the availability model no longer holds and Kie
  // must fall back to full guards.
  KieOptions translate;
  translate.translate_on_store = true;
  auto ip = Instrument(o.opt.program, o.opt.analysis, HeapLayout::ForSize(kHeap), translate,
                       &o.opt.plan);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->stats.guards_dominated, 0u);
  EXPECT_EQ(ip->stats.guards_emitted, 2u);

  KieOptions perf;
  perf.performance_mode = true;
  auto ip2 = Instrument(o.opt.program, o.opt.analysis, HeapLayout::ForSize(kHeap), perf,
                        &o.opt.plan);
  ASSERT_TRUE(ip2.ok());
  EXPECT_EQ(ip2->stats.guards_dominated, 0u);
}

// ---- Dead stack stores ------------------------------------------------------

TEST(DeadStoreTest, UnreadSlotIsRemovedLiveSlotIsKept) {
  Assembler a;
  a.MovImm(R2, 42);
  size_t d1 = a.CurrentPc();
  a.Stx(BPF_DW, R10, -8, R2);   // never read
  size_t d2 = a.CurrentPc();
  a.Stx(BPF_DW, R10, -16, R2);  // read back below
  a.Ldx(BPF_DW, R0, R10, -16);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  Optimized o = MustOptimize(p);
  EXPECT_TRUE(o.opt.plan.removed[d1]);
  EXPECT_FALSE(o.opt.plan.removed[d2]);
  EXPECT_EQ(o.opt.plan.stats.dead_stores_removed, 1u);

  // Runs identically without the dead store.
  Runtime rt{RuntimeOptions{1}};
  auto id = rt.Load(p, LoadOptions{});
  ASSERT_TRUE(id.ok());
  uint8_t ctx[64] = {0};
  EXPECT_EQ(rt.Invoke(*id, 0, ctx, sizeof(ctx)).verdict, 42);
}

TEST(DeadStoreTest, StoreBeforeHelperCallStaysLive) {
  // Helpers may read any stack slot (they receive pointers into the frame),
  // so liveness keeps stores ahead of calls.
  Assembler a;
  a.MovImm(R2, 42);
  size_t d1 = a.CurrentPc();
  a.Stx(BPF_DW, R10, -8, R2);
  a.Call(kHelperKtimeGetNs);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  Optimized o = MustOptimize(p);
  EXPECT_FALSE(o.opt.plan.removed[d1]);
  EXPECT_EQ(o.opt.plan.stats.dead_stores_removed, 0u);
}

TEST(DeadStoreTest, ObjectTableSlotsAreProtected) {
  // The cancellation unwinder reads resource handles from stack slots named
  // by object tables (runtime.cc Unwind); a store into such a slot must
  // survive DSE even when the bytecode itself never reads it back.
  Assembler a;
  a.MovImm(R2, 42);
  size_t d1 = a.CurrentPc();
  a.Stx(BPF_DW, R10, -8, R2);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustFinish(a, ExtensionMode::kEbpf, 0);

  auto analysis = Verify(p, VerifyOptions{});
  ASSERT_TRUE(analysis.ok());
  const int slot = Liveness::SlotForOffset(-8);
  ASSERT_GE(slot, 0);

  // Without a table entry the store is dead.
  auto plain = Optimize(p, *analysis);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->plan.removed[d1]);

  // With a table entry naming the slot it must be preserved.
  Analysis guarded = *analysis;
  ObjectTableEntry entry;
  entry.kind = ResourceKind::kSocket;
  entry.destructor = kHelperSkRelease;
  entry.stack_slot = slot;
  guarded.object_tables[d1].insert(entry);
  auto kept = Optimize(p, guarded);
  ASSERT_TRUE(kept.ok());
  EXPECT_FALSE(kept->plan.removed[d1]);
  EXPECT_EQ(kept->plan.stats.dead_stores_removed, 0u);
}

}  // namespace
}  // namespace kflex
