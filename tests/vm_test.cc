// VM semantics: ALU / jump behaviour checked against native C++ semantics
// (parameterized property sweeps), memory translation, atomics, faults.
#include "src/runtime/vm.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kie/kie.h"
#include "src/runtime/allocator.h"
#include "src/runtime/helpers.h"
#include "src/runtime/layout.h"

namespace kflex {
namespace {

// Runs a tiny program computing `op(a, b)` into R0 and returns the result.
uint64_t RunAlu(uint8_t op, bool is64, bool via_reg, uint64_t a_val, uint64_t b_val) {
  Assembler a;
  a.LoadImm64(R1, a_val);
  if (via_reg) {
    a.LoadImm64(R2, b_val);
    a.AluReg(static_cast<AluOp>(op), R1, R2, is64);
  } else {
    a.AluImm(static_cast<AluOp>(op), R1, static_cast<int32_t>(b_val), is64);
  }
  a.Mov(R0, R1);
  a.Exit();
  auto p = a.Finish("alu", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  EXPECT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  VmResult r = VmRun(p->insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kOk);
  return static_cast<uint64_t>(r.ret);
}

uint64_t Native64(uint8_t op, uint64_t a, uint64_t b) {
  switch (op) {
    case BPF_ADD:
      return a + b;
    case BPF_SUB:
      return a - b;
    case BPF_MUL:
      return a * b;
    case BPF_DIV:
      return b ? a / b : 0;
    case BPF_MOD:
      return b ? a % b : a;
    case BPF_AND:
      return a & b;
    case BPF_OR:
      return a | b;
    case BPF_XOR:
      return a ^ b;
    case BPF_LSH:
      return a << (b & 63);
    case BPF_RSH:
      return a >> (b & 63);
    case BPF_ARSH:
      return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
  }
  return 0;
}

class VmAluProperty : public ::testing::TestWithParam<uint8_t> {};

TEST_P(VmAluProperty, MatchesNative64) {
  uint8_t op = GetParam();
  Rng rng(op * 977);
  for (int i = 0; i < 40; i++) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next();
    if (op == BPF_LSH || op == BPF_RSH || op == BPF_ARSH) {
      b &= 63;
    }
    EXPECT_EQ(RunAlu(op, true, true, a, b), Native64(op, a, b))
        << "op=" << int{op} << " a=" << a << " b=" << b;
  }
}

TEST_P(VmAluProperty, MatchesNative32) {
  uint8_t op = GetParam();
  Rng rng(op * 1093);
  for (int i = 0; i < 40; i++) {
    uint32_t a = static_cast<uint32_t>(rng.Next());
    uint32_t b = static_cast<uint32_t>(rng.Next());
    if (op == BPF_LSH || op == BPF_RSH || op == BPF_ARSH) {
      b &= 31;
    }
    uint32_t expect;
    switch (op) {
      case BPF_ADD:
        expect = a + b;
        break;
      case BPF_SUB:
        expect = a - b;
        break;
      case BPF_MUL:
        expect = a * b;
        break;
      case BPF_DIV:
        expect = b ? a / b : 0;
        break;
      case BPF_MOD:
        expect = b ? a % b : a;
        break;
      case BPF_AND:
        expect = a & b;
        break;
      case BPF_OR:
        expect = a | b;
        break;
      case BPF_XOR:
        expect = a ^ b;
        break;
      case BPF_LSH:
        expect = a << b;
        break;
      case BPF_RSH:
        expect = a >> b;
        break;
      case BPF_ARSH:
        expect = static_cast<uint32_t>(static_cast<int32_t>(a) >> b);
        break;
      default:
        expect = 0;
    }
    EXPECT_EQ(RunAlu(op, false, true, a, b), expect) << "op=" << int{op};
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, VmAluProperty,
                         ::testing::Values(BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV, BPF_MOD, BPF_AND,
                                           BPF_OR, BPF_XOR, BPF_LSH, BPF_RSH, BPF_ARSH));

struct JmpCase {
  uint8_t op;
  uint64_t a;
  uint64_t b;
  bool expect_taken;
};

class VmJmpProperty : public ::testing::TestWithParam<JmpCase> {};

TEST_P(VmJmpProperty, BranchDecision) {
  const JmpCase& c = GetParam();
  Assembler a;
  auto taken = a.NewLabel();
  a.LoadImm64(R1, c.a);
  a.LoadImm64(R2, c.b);
  a.JmpReg(static_cast<JmpOp>(c.op), R1, R2, taken);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(taken);
  a.MovImm(R0, 1);
  a.Exit();
  auto p = a.Finish("jmp", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  VmResult r = VmRun(p->insns, env);
  EXPECT_EQ(r.ret, c.expect_taken ? 1 : 0);
}

constexpr uint64_t kNeg1 = ~0ULL;

INSTANTIATE_TEST_SUITE_P(
    Cases, VmJmpProperty,
    ::testing::Values(JmpCase{BPF_JEQ, 5, 5, true}, JmpCase{BPF_JEQ, 5, 6, false},
                      JmpCase{BPF_JNE, 5, 6, true}, JmpCase{BPF_JGT, 6, 5, true},
                      JmpCase{BPF_JGT, kNeg1, 0, true},   // unsigned
                      JmpCase{BPF_JSGT, kNeg1, 0, false},  // signed: -1 > 0 is false
                      JmpCase{BPF_JLT, 5, 6, true}, JmpCase{BPF_JSLT, kNeg1, 0, true},
                      JmpCase{BPF_JGE, 5, 5, true}, JmpCase{BPF_JLE, 5, 5, true},
                      JmpCase{BPF_JSGE, kNeg1, kNeg1, true},
                      JmpCase{BPF_JSLE, 0, kNeg1, false}, JmpCase{BPF_JSET, 6, 2, true},
                      JmpCase{BPF_JSET, 4, 2, false}));

TEST(Vm, StackReadWrite) {
  Assembler a;
  a.LoadImm64(R2, 0x1122334455667788ULL);
  a.Stx(BPF_DW, R10, -8, R2);
  a.Ldx(BPF_W, R0, R10, -8);  // low word
  a.Exit();
  auto p = a.Finish("stk", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  VmResult r = VmRun(p->insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kOk);
  EXPECT_EQ(static_cast<uint64_t>(r.ret), 0x55667788ULL);
}

TEST(Vm, CtxReadWrite) {
  Assembler a;
  a.Ldx(BPF_H, R2, R1, 0);
  a.AddImm(R2, 1);
  a.Stx(BPF_H, R1, 2, R2);
  a.Mov(R0, R2);
  a.Exit();
  auto p = a.Finish("ctx", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  ctx[0] = 41;
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  VmResult r = VmRun(p->insns, env);
  EXPECT_EQ(r.ret, 42);
  EXPECT_EQ(ctx[2], 42);
}

TEST(Vm, UnmappedAccessFaults) {
  Assembler a;
  a.LoadImm64(R2, 0xDEAD0000ULL);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto p = a.Finish("bad", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  ASSERT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  VmResult r = VmRun(p->insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kFault);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kBadAddress);
  EXPECT_EQ(r.fault_pc, 2u);  // after the 2-slot ld_imm64
}

TEST(Vm, SanitizeMasksIntoHeap) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();

  Assembler a;
  a.LoadImm64(R2, layout.kernel_base + layout.size + 12345);  // out of bounds
  a.Exit();  // placeholder; we splice SANITIZE manually below
  auto p = a.Finish("san", Hook::kTracepoint, ExtensionMode::kKflex, spec.size);
  ASSERT_TRUE(p.ok());
  std::vector<Insn> insns = p->insns;
  insns.pop_back();
  insns.push_back(KieSanitizeInsn(R2));
  insns.push_back(MovRegInsn(R0, R2));
  insns.push_back(ExitInsn());

  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  VmResult r = VmRun(insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kOk);
  uint64_t sanitized = static_cast<uint64_t>(r.ret);
  EXPECT_GE(sanitized, layout.kernel_base);
  EXPECT_LT(sanitized, layout.kernel_end());
  EXPECT_EQ(sanitized & layout.mask(), 12345u & layout.mask());
}

TEST(Vm, GuardZoneAccessFaults) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();

  std::vector<Insn> insns;
  insns.push_back(LdImm64Insn(R2, layout.kernel_base));
  insns.push_back(LdImm64HiInsn(layout.kernel_base));
  insns.push_back(LdxInsn(BPF_DW, R0, R2, -8));  // below heap start: guard zone
  insns.push_back(ExitInsn());

  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  VmResult r = VmRun(insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kFault);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kGuardZone);
}

TEST(Vm, UnpopulatedHeapPageFaults) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();

  std::vector<Insn> insns;
  uint64_t va = layout.kernel_base + 512 * 1024;  // never populated
  insns.push_back(LdImm64Insn(R2, va));
  insns.push_back(LdImm64HiInsn(va));
  insns.push_back(LdxInsn(BPF_DW, R0, R2, 0));
  insns.push_back(ExitInsn());

  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  VmResult r = VmRun(insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kFault);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kNotPresent);
}

TEST(Vm, UserAliasAccessIsSmapFault) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();

  std::vector<Insn> insns;
  uint64_t va = layout.user_base + 64;
  insns.push_back(LdImm64Insn(R2, va));
  insns.push_back(LdImm64HiInsn(va));
  insns.push_back(LdxInsn(BPF_DW, R0, R2, 0));
  insns.push_back(ExitInsn());

  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  VmResult r = VmRun(insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kFault);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kSmap);
}

TEST(Vm, AtomicAddFetchXchgCmpxchg) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();
  uint64_t va = layout.kernel_base + 64;  // metadata page is populated

  std::vector<Insn> insns;
  insns.push_back(LdImm64Insn(R2, va));
  insns.push_back(LdImm64HiInsn(va));
  insns.push_back(MovImmInsn(R3, 5));
  insns.push_back(AtomicInsn(BPF_DW, R2, 0, R3, BPF_ATOMIC_ADD));  // [va] = 5
  insns.push_back(MovImmInsn(R4, 7));
  insns.push_back(AtomicInsn(BPF_DW, R2, 0, R4, BPF_ATOMIC_ADD | BPF_ATOMIC_FETCH));
  // R4 = old (5), [va] = 12
  insns.push_back(MovImmInsn(R5, 100));
  insns.push_back(AtomicInsn(BPF_DW, R2, 0, R5, BPF_ATOMIC_XCHG));  // R5 = 12, [va]=100
  insns.push_back(MovImmInsn(R0, 100));                              // expected
  insns.push_back(MovImmInsn(R6, 55));
  insns.push_back(AtomicInsn(BPF_DW, R2, 0, R6, BPF_ATOMIC_CMPXCHG));  // [va]=55, R0=100
  // result = R4 + R5 + R0 = 5 + 12 + 100 = 117
  insns.push_back(AluRegInsn(BPF_ADD, R4, R5));
  insns.push_back(AluRegInsn(BPF_ADD, R4, R0));
  insns.push_back(MovRegInsn(R0, R4));
  insns.push_back(ExitInsn());

  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  VmResult r = VmRun(insns, env);
  ASSERT_EQ(r.outcome, VmResult::Outcome::kOk);
  EXPECT_EQ(r.ret, 117);
  uint64_t final;
  std::memcpy(&final, heap.value()->HostAt(64), 8);
  EXPECT_EQ(final, 55u);
}

TEST(Vm, HelperCallMallocFree) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  HeapAllocator alloc(heap.value().get(), 2);
  HelperTable helpers;
  RegisterCoreHelpers(helpers);

  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  a.Mov(R6, R0);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.StImm(BPF_DW, R6, 0, 99);
  a.Mov(R1, R6);
  a.Call(kHelperKflexFree);
  a.EndIf(iff);
  a.Mov(R0, R6);
  a.Exit();
  auto p = a.Finish("mf", Hook::kTracepoint, ExtensionMode::kKflex, spec.size);
  ASSERT_TRUE(p.ok());

  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  env.allocator = &alloc;
  env.helpers = &helpers;
  VmResult r = VmRun(p->insns, env);
  ASSERT_EQ(r.outcome, VmResult::Outcome::kOk);
  EXPECT_NE(r.ret, 0);  // malloc succeeded
  EXPECT_GE(static_cast<uint64_t>(r.ret), heap.value()->layout().kernel_base);
  auto stats = alloc.GetStats();
  EXPECT_EQ(stats.allocs, 1u);
  EXPECT_EQ(stats.frees, 1u);
}

TEST(Vm, BudgetStopsRunawayLoop) {
  Assembler a;
  auto head = a.NewLabel();
  a.MovImm(R0, 0);
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  auto p = a.Finish("loop", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.insn_budget = 1000;
  VmResult r = VmRun(p->insns, env);
  EXPECT_EQ(r.outcome, VmResult::Outcome::kBudgetExceeded);
}

}  // namespace
}  // namespace kflex
