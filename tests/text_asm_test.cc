// Textual assembly parser: statement coverage, directives, labels, error
// reporting, and end-to-end execution of parsed programs.
#include "src/ebpf/text_asm.h"

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

int64_t ParseAndRun(const std::string& source, uint8_t* ctx, uint32_t ctx_size) {
  auto p = ParseTextProgram(source);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  MockKernel kernel;
  auto id = kernel.runtime().Load(*p, LoadOptions{});
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  InvokeResult r = kernel.runtime().Invoke(*id, 0, ctx, ctx_size);
  EXPECT_FALSE(r.cancelled);
  return r.verdict;
}

TEST(TextAsm, MinimalProgram) {
  auto p = ParseTextProgram("r0 = 7\nexit\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->size(), 2u);
  uint8_t ctx[64] = {0};
  EXPECT_EQ(ParseAndRun("r0 = 7\nexit", ctx, sizeof(ctx)), 7);
}

TEST(TextAsm, DirectivesSetMetadata) {
  auto p = ParseTextProgram(
      ".name myprog\n.hook lsm\n.mode ebpf\nr0 = 0\nexit\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->name, "myprog");
  EXPECT_EQ(p->hook, Hook::kLsm);
  EXPECT_EQ(p->mode, ExtensionMode::kEbpf);
  EXPECT_EQ(p->heap_size, 0u);
}

TEST(TextAsm, ArithmeticAndShifts) {
  uint8_t ctx[64] = {0};
  // ((5 + 10) * 4 - 3) ^ 1 = 56, then << 1 = 112, >> 2 = 28, % 5 = 3
  std::string src = R"(
    r2 = 5
    r2 += 10
    r2 *= 4
    r2 -= 3
    r2 ^= 1
    r2 <<= 1
    r2 >>= 2
    r2 %= 5
    r0 = r2
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), ((((5 + 10) * 4 - 3) ^ 1) << 1 >> 2) % 5);
}

TEST(TextAsm, SignedShiftAndNegation) {
  uint8_t ctx[64] = {0};
  std::string src = R"(
    r2 = 16
    r2 = -r2
    r2 s>>= 2
    r0 = r2
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), -4);
}

TEST(TextAsm, MemoryAndHeap) {
  uint8_t ctx[64] = {0};
  ctx[0] = 42;
  std::string src = R"(
    .heap 1048576
    r2 = *(u8*)(r1 + 0)
    r3 = heap 128
    *(u64*)(r3 + 0) = r2
    *(u16*)(r3 + 8) = 999
    r4 = *(u64*)(r3 + 0)
    r5 = *(u16*)(r3 + 8)
    r0 = r4
    r0 += r5
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), 42 + 999);
}

TEST(TextAsm, Imm64AndHex) {
  uint8_t ctx[64] = {0};
  std::string src = R"(
    r2 = imm64 0x1122334455667788
    r2 >>= 32
    r0 = r2
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), 0x11223344);
}

TEST(TextAsm, AtomicAdd) {
  uint8_t ctx[64] = {0};
  std::string src = R"(
    .heap 1048576
    r2 = heap 64
    r3 = 5
    lock *(u64*)(r2 + 0) += r3
    lock *(u64*)(r2 + 0) += r3
    r0 = *(u64*)(r2 + 0)
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), 10);
}

TEST(TextAsm, ConditionalsAndLoops) {
  uint8_t ctx[64] = {0};
  // Sum 1..10 with a bounded loop.
  std::string src = R"(
    r2 = 10
    r0 = 0
    loop:
    if r2 == 0 goto done
    r0 += r2
    r2 -= 1
    goto loop
    done:
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), 55);
}

TEST(TextAsm, SignedComparisons) {
  uint8_t ctx[64] = {0};
  std::string src = R"(
    r2 = -5
    if r2 s< 0 goto neg
    r0 = 1
    exit
    neg:
    r0 = 2
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), 2);
}

TEST(TextAsm, CallByName) {
  auto p = ParseTextProgram(R"(
    .heap 1048576
    r1 = 64
    call kflex_malloc
    if r0 == 0 goto fail
    *(u64*)(r0 + 0) = 1
    r1 = r0
    call kflex_free
    fail:
    r0 = 0
    exit
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(Verify(*p, VerifyOptions{}).ok());
}

TEST(TextAsm, ForwardAndBackwardLabels) {
  uint8_t ctx[64] = {0};
  std::string src = R"(
    goto skip
    dead:
    r0 = 99
    exit
    skip:
    r0 = 1
    exit
  )";
  EXPECT_EQ(ParseAndRun(src, ctx, sizeof(ctx)), 1);
}

TEST(TextAsm, CommentsAndBlankLines) {
  auto p = ParseTextProgram(R"(
    ; full-line comment

    r0 = 3   ; trailing comment
    exit     ; done
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->size(), 2u);
}

// ---- Errors ----

TEST(TextAsmErrors, UnknownStatementReportsLine) {
  auto p = ParseTextProgram("r0 = 0\nfrobnicate the bits\nexit\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2"), std::string::npos);
}

TEST(TextAsmErrors, UnboundLabel) {
  auto p = ParseTextProgram("goto nowhere\nexit\n");
  EXPECT_FALSE(p.ok());
}

TEST(TextAsmErrors, DuplicateLabel) {
  auto p = ParseTextProgram("x:\nr0 = 0\nx:\nexit\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("bound twice"), std::string::npos);
}

TEST(TextAsmErrors, UnknownHelper) {
  auto p = ParseTextProgram("call not_a_helper\nexit\n");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("unknown helper"), std::string::npos);
}

TEST(TextAsmErrors, BadHookDirective) {
  auto p = ParseTextProgram(".hook warp_drive\nr0 = 0\nexit\n");
  EXPECT_FALSE(p.ok());
}

TEST(TextAsmErrors, BadMemorySize) {
  auto p = ParseTextProgram("r2 = *(u128*)(r1 + 0)\nexit\n");
  EXPECT_FALSE(p.ok());
}

}  // namespace
}  // namespace kflex
