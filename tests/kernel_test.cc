// Mock-kernel substrate: socket table refcounting, packet/wire format,
// hook dispatch defaults, and cost-model structure.
#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/costmodel.h"
#include "src/kernel/packet.h"

namespace kflex {
namespace {

TEST(SocketTable, BindAndFind) {
  SocketTable table;
  Socket* s = table.Bind(0x0A000001, 80, kProtoTcp);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(table.Find(0x0A000001, 80, kProtoTcp), s);
  EXPECT_EQ(table.Find(0x0A000001, 80, kProtoUdp), nullptr);
  EXPECT_EQ(table.Find(0x0A000001, 81, kProtoTcp), nullptr);
  EXPECT_TRUE(table.Quiescent());
}

TEST(SocketTable, HelperLookupAcquiresReference) {
  MockKernel kernel;
  Socket* s = kernel.sockets().Bind(7, 9, kProtoUdp);

  Assembler a;
  a.StImm(BPF_W, R10, -16, 7);
  a.StImm(BPF_W, R10, -12, 9);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto hit = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.Mov(R1, R6);
  a.Call(kHelperSkRelease);
  a.MovImm(R0, 1);
  a.Exit();
  a.EndIf(hit);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("sk", Hook::kXdp, ExtensionMode::kKflex, 1 << 20);
  ASSERT_TRUE(p.ok());
  auto id = kernel.runtime().Load(*p, LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_EQ(r.verdict, 1) << "lookup must find the bound socket";
  EXPECT_EQ(s->refcount.load(), 1) << "refcount back at baseline after release";
  EXPECT_TRUE(kernel.Quiescent());
}

TEST(KvPacketTest, FieldRoundTrips) {
  KvPacket pkt;
  pkt.SetOp(KvOp::kSet);
  pkt.SetProto(kProtoTcp);
  pkt.SetTuple(0x01020304, 1111, 2222);
  pkt.SetKey("hello");
  pkt.SetValue("world-value");
  pkt.SetZScore(987654321);

  EXPECT_EQ(pkt.op(), KvOp::kSet);
  EXPECT_EQ(pkt.proto(), kProtoTcp);
  EXPECT_EQ(pkt.data()[kOffKeyLen], 5);
  EXPECT_EQ(std::memcmp(pkt.data() + kOffKey, "hello", 5), 0);
  // Key is zero-padded to 32 bytes.
  for (int i = 5; i < 32; i++) {
    EXPECT_EQ(pkt.data()[kOffKey + i], 0) << i;
  }
  EXPECT_EQ(pkt.vallen(), 11);
  uint64_t score;
  std::memcpy(&score, pkt.data() + kOffZScore, 8);
  EXPECT_EQ(score, 987654321u);
}

TEST(KvPacketTest, OversizedInputsClamped) {
  KvPacket pkt;
  pkt.SetKey(std::string(100, 'k'));
  EXPECT_EQ(pkt.data()[kOffKeyLen], kMaxKeyLen);
  pkt.SetValue(std::string(200, 'v'));
  EXPECT_EQ(pkt.vallen(), kMaxValLen);
}

TEST(HookDispatch, DefaultsPerHook) {
  EXPECT_EQ(HookDefaultVerdict(Hook::kXdp), kXdpPass);
  EXPECT_EQ(HookDefaultVerdict(Hook::kLsm), -1);
  EXPECT_EQ(HookDefaultVerdict(Hook::kSkSkb), 0);
  MockKernel kernel;
  uint8_t ctx[64] = {0};
  // Nothing attached: pass-through verdicts.
  EXPECT_FALSE(kernel.Deliver(Hook::kLsm, 0, ctx, sizeof(ctx)).attached);
  EXPECT_EQ(kernel.Deliver(Hook::kLsm, 0, ctx, sizeof(ctx)).verdict, -1);
  EXPECT_EQ(kernel.Deliver(Hook::kXdp, 0, ctx, sizeof(ctx)).verdict, kXdpPass);
}

TEST(CostModelTest, StructuralOrdering) {
  CostModel cost;
  // The structural relationships the end-to-end figures rest on.
  EXPECT_LT(cost.XdpPathUdp(), cost.SkSkbPathTcp())
      << "XDP skips the whole stack; sk_skb pays TCP RX";
  EXPECT_LT(cost.SkSkbPathTcp(), cost.UserPathTcp())
      << "sk_skb skips wakeup + syscalls";
  EXPECT_LT(cost.UserPathUdp(), cost.UserPathTcp()) << "TCP RX > UDP RX";
  EXPECT_LT(cost.XdpPathTcp(), cost.UserPathTcp())
      << "the XDP TCP fast path undercuts the full stack";
}

TEST(CostModelTest, InstrumentationWeighting) {
  CostModel cost;
  // 100 plain insns vs 100 plain + 40 instrumentation.
  uint64_t plain = cost.ComputeNs(100, 0);
  uint64_t instrumented = cost.ComputeNs(140, 40);
  EXPECT_GT(instrumented, plain);
  EXPECT_LT(instrumented - plain, cost.ComputeNs(40, 0))
      << "instrumentation must cost less than ordinary instructions";
  EXPECT_EQ(cost.ComputeNs(0, 0), 0u);
}

TEST(CostModelTest, DISABLED_PrintCalibration) {
  // Not a test: handy dump of the calibrated path costs (run with
  // --gtest_also_run_disabled_tests).
  CostModel cost;
  std::printf("UserUdp=%llu UserTcp=%llu XdpUdp=%llu XdpTcp=%llu SkSkb=%llu\n",
              static_cast<unsigned long long>(cost.UserPathUdp()),
              static_cast<unsigned long long>(cost.UserPathTcp()),
              static_cast<unsigned long long>(cost.XdpPathUdp()),
              static_cast<unsigned long long>(cost.XdpPathTcp()),
              static_cast<unsigned long long>(cost.SkSkbPathTcp()));
}

}  // namespace
}  // namespace kflex
