// Deterministic fault injection (src/fault): spec grammar, schedule
// determinism, registry semantics, and the previously untested null/error
// paths each fault point simulates — allocator exhaustion, pager failures,
// code-cache refusals with engine fallback, map update failure, and
// helper-error injection that must never skip a release.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/fault/fault.h"
#include "src/jit/codegen.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/allocator.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;

Program MustBuild(Assembler& a, uint64_t heap_size = kHeapSize) {
  auto p = a.Finish("t", Hook::kXdp, ExtensionMode::kKflex, heap_size);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// ---- spec grammar -----------------------------------------------------------

TEST(FaultSpec, ParsesNth) {
  auto p = ParseFaultPolicy("nth=3");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->kind, FaultPolicy::Kind::kNth);
  EXPECT_EQ(p->n, 3u);
  EXPECT_EQ(p->times, 0u);
}

TEST(FaultSpec, ParsesEveryWithTimes) {
  auto p = ParseFaultPolicy("every=7,times=2");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->kind, FaultPolicy::Kind::kEveryN);
  EXPECT_EQ(p->n, 7u);
  EXPECT_EQ(p->times, 2u);
}

TEST(FaultSpec, ParsesProbSeedTimes) {
  auto p = ParseFaultPolicy("prob=0.25,seed=42,times=5");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->kind, FaultPolicy::Kind::kProb);
  EXPECT_EQ(p->prob_ppm, 250'000u);
  EXPECT_EQ(p->seed, 42u);
  EXPECT_EQ(p->times, 5u);
}

TEST(FaultSpec, ParsesProbEdgeValues) {
  auto one = ParseFaultPolicy("prob=1");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->prob_ppm, 1'000'000u);
  auto tiny = ParseFaultPolicy("prob=0.000001");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->prob_ppm, 1u);
  auto off = ParseFaultPolicy("off");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->kind, FaultPolicy::Kind::kOff);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "nth", "nth=0", "nth=x", "every=0", "prob=1.5",
                          "prob=0.1234567", "bogus=1", "nth=1,every=2",
                          "times=3", "nth=1,times=0"}) {
    EXPECT_FALSE(ParseFaultPolicy(bad).ok()) << "accepted: " << bad;
  }
  EXPECT_FALSE(ParseFaultSpec("no-colon").ok());
  EXPECT_FALSE(ParseFaultSpec(":nth=1").ok());
}

TEST(FaultSpec, ToStringRoundTrips) {
  for (const char* spec : {"nth=3", "every=7,times=2", "prob=0.250000,seed=42",
                           "prob=0.000001,seed=9,times=1"}) {
    auto p = ParseFaultPolicy(spec);
    ASSERT_TRUE(p.ok()) << spec;
    auto again = ParseFaultPolicy(p->ToString());
    ASSERT_TRUE(again.ok()) << p->ToString();
    EXPECT_EQ(again->kind, p->kind);
    EXPECT_EQ(again->n, p->n);
    EXPECT_EQ(again->prob_ppm, p->prob_ppm);
    EXPECT_EQ(again->seed, p->seed);
    EXPECT_EQ(again->times, p->times);
  }
}

// ---- schedule determinism ---------------------------------------------------

TEST(FaultSchedule, NthFiresExactlyOnce) {
  auto p = ParseFaultPolicy("nth=5");
  ASSERT_TRUE(p.ok());
  int fires = 0;
  for (uint64_t hit = 0; hit < 100; hit++) {
    if (FaultScheduleFires(*p, hit)) {
      EXPECT_EQ(hit, 4u);  // 1-based nth == 0-based hit 4
      fires++;
    }
  }
  EXPECT_EQ(fires, 1);
}

TEST(FaultSchedule, EveryNFiresPeriodically) {
  auto p = ParseFaultPolicy("every=3");
  ASSERT_TRUE(p.ok());
  for (uint64_t hit = 0; hit < 30; hit++) {
    EXPECT_EQ(FaultScheduleFires(*p, hit), (hit + 1) % 3 == 0) << hit;
  }
}

TEST(FaultSchedule, ProbIsPureFunctionOfSeedAndHit) {
  auto p = ParseFaultPolicy("prob=0.25,seed=1234");
  ASSERT_TRUE(p.ok());
  std::set<uint64_t> first;
  for (uint64_t hit = 0; hit < 10'000; hit++) {
    if (FaultScheduleFires(*p, hit)) {
      first.insert(hit);
    }
  }
  // Replay: identical schedule, no state consulted.
  for (uint64_t hit = 0; hit < 10'000; hit++) {
    EXPECT_EQ(FaultScheduleFires(*p, hit), first.count(hit) != 0) << hit;
  }
  // The rate is in the right ballpark for 25%.
  EXPECT_GT(first.size(), 2'200u);
  EXPECT_LT(first.size(), 2'800u);
  // A different seed yields a different schedule.
  auto other = ParseFaultPolicy("prob=0.25,seed=1235");
  ASSERT_TRUE(other.ok());
  bool differs = false;
  for (uint64_t hit = 0; hit < 10'000 && !differs; hit++) {
    differs = FaultScheduleFires(*other, hit) != (first.count(hit) != 0);
  }
  EXPECT_TRUE(differs);
}

// ---- registry ---------------------------------------------------------------

TEST(FaultRegistryTest, CatalogIsPreRegistered) {
  std::vector<std::string> names = FaultRegistry::Instance().Names();
  for (const char* expected :
       {"alloc.slab", "alloc.percpu", "heap.pagein", "heap.guard", "jit.mmap",
        "jit.mprotect", "map.update", "helper.ret_err", "lock.delay"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing catalog point " << expected;
  }
}

TEST(FaultRegistryTest, ArmingUnknownPointFails) {
  Status s = FaultRegistry::Instance().ArmSpec("alloc.bogus:nth=1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(FaultRegistryTest, ScopedInjectionDisarmsAndResetsOnExit) {
  {
    ScopedFaultInjection faults{"alloc.slab:nth=1"};
    FaultPoint* point = FaultRegistry::Instance().Find("alloc.slab");
    ASSERT_NE(point, nullptr);
    EXPECT_TRUE(point->armed());
    EXPECT_TRUE(point->ShouldFail());  // nth=1: first hit fails
    EXPECT_EQ(point->fails(), 1u);
  }
  FaultPoint* point = FaultRegistry::Instance().Find("alloc.slab");
  ASSERT_NE(point, nullptr);
  EXPECT_FALSE(point->armed());
  EXPECT_EQ(point->hits(), 0u);
  EXPECT_EQ(point->fails(), 0u);
}

TEST(FaultRegistryTest, TimesCapsTotalFailures) {
  ScopedFaultInjection faults{"alloc.slab:every=1,times=2"};
  FaultPoint* point = FaultRegistry::Instance().Find("alloc.slab");
  ASSERT_NE(point, nullptr);
  int fails = 0;
  for (int i = 0; i < 10; i++) {
    fails += point->ShouldFail() ? 1 : 0;
  }
  EXPECT_EQ(fails, 2);
}

TEST(FaultRegistryTest, ArmFromEnvParsesSpecList) {
  ASSERT_EQ(setenv("KFLEX_FAULT_TEST_ENV", "alloc.slab:nth=3;heap.pagein:every=2", 1), 0);
  ASSERT_TRUE(FaultRegistry::Instance().ArmFromEnv("KFLEX_FAULT_TEST_ENV").ok());
  EXPECT_TRUE(FaultRegistry::Instance().Find("alloc.slab")->armed());
  EXPECT_TRUE(FaultRegistry::Instance().Find("heap.pagein")->armed());
  FaultRegistry::Instance().DisarmAll();
  FaultRegistry::Instance().ResetCounters();

  ASSERT_EQ(setenv("KFLEX_FAULT_TEST_ENV", "alloc.slab:nth=oops", 1), 0);
  EXPECT_FALSE(FaultRegistry::Instance().ArmFromEnv("KFLEX_FAULT_TEST_ENV").ok());
  unsetenv("KFLEX_FAULT_TEST_ENV");
}

// ---- allocator exhaustion (real, uninjected null path) ----------------------

TEST(AllocatorExhaustion, EverySizeClassExhaustsCleanly) {
  for (int cls = 0; cls < HeapAllocator::kNumClasses; cls++) {
    HeapSpec spec;
    spec.size = 1 << 16;  // minimum heap: few pages, exhausts fast
    auto heap = ExtensionHeap::Create(spec);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    HeapAllocator alloc(heap->get(), /*num_cpus=*/1);

    uint64_t size = HeapAllocator::ClassSize(cls);
    std::vector<uint64_t> offs;
    while (true) {
      uint64_t off = alloc.Alloc(0, size);
      if (off == 0) {
        break;
      }
      offs.push_back(off);
      ASSERT_LT(offs.size(), 100'000u);  // safety net
    }
    EXPECT_FALSE(offs.empty()) << "class " << cls << " never allocated";
    EXPECT_GT(alloc.GetStats().failures, 0u);
    // Exhausted allocator still balances.
    EXPECT_TRUE(alloc.Audit().empty())
        << "class " << cls << ":\n" << alloc.Audit()[0];
    for (uint64_t off : offs) {
      EXPECT_TRUE(alloc.Free(0, off));
    }
    EXPECT_TRUE(alloc.Audit().empty()) << "class " << cls << " after free";
  }
}

// ---- injected allocator failures --------------------------------------------

// An extension that kflex_mallocs 64 bytes and reports what it saw: verdict 1
// on success (after touching the memory and freeing it), 0 on NULL.
Program MallocProbeProgram() {
  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  {
    auto null = a.IfImm(BPF_JEQ, R0, 0);
    a.MovImm(R0, 0);
    a.Exit();
    a.EndIf(null);
  }
  a.StImm(BPF_DW, R0, 0, 1);
  a.Mov(R1, R0);
  a.Call(kHelperKflexFree);
  a.MovImm(R0, 1);
  a.Exit();
  return MustBuild(a);
}

TEST(InjectedAllocFault, SlabCarveFailureYieldsNullNotCancellation) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(MallocProbeProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  ScopedFaultInjection faults{"alloc.slab:nth=1"};
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled) << "--fault=alloc.slab:nth=1";
  EXPECT_EQ(r.verdict, 0) << "extension must observe NULL";
  InvariantReport sweep = kernel.runtime().SweepInvariants(*id);
  EXPECT_TRUE(sweep.ok()) << sweep.ToString();

  // The schedule was nth=1: the next invocation allocates normally.
  InvokeResult r2 = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_EQ(r2.verdict, 1);
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());
}

TEST(InjectedAllocFault, PercpuFailureYieldsNullNotCancellation) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(MallocProbeProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  ScopedFaultInjection faults{"alloc.percpu:nth=1"};
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled) << "--fault=alloc.percpu:nth=1";
  EXPECT_EQ(r.verdict, 0);
  EXPECT_GT(kernel.runtime().allocator(*id)->GetStats().failures, 0u);
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());
}

// ---- injected pager failures ------------------------------------------------

// Straight-line store into the static heap area (populated at load): only
// the store itself goes through TranslateKernel, so nth=1 hits mid-store.
Program StaticStoreProgram() {
  Assembler a;
  a.LoadHeapAddr(R6, 64);
  a.StImm(BPF_DW, R6, 0, 42);
  a.MovImm(R0, 7);
  a.Exit();
  return MustBuild(a);
}

TEST(InjectedPagerFault, PageinFailureMidStoreCancels) {
  MockKernel kernel;
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  auto id = kernel.runtime().Load(StaticStoreProgram(), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  KvPacket pkt;
  {
    ScopedFaultInjection faults{"heap.pagein:nth=1"};
    InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
    EXPECT_TRUE(r.cancelled) << "--fault=heap.pagein:nth=1";
    EXPECT_EQ(r.fault_kind, MemFaultKind::kNotPresent);
    EXPECT_EQ(r.verdict, kXdpPass);
    InvariantReport sweep = kernel.runtime().SweepInvariants(*id);
    EXPECT_TRUE(sweep.ok()) << sweep.ToString();
    EXPECT_TRUE(kernel.runtime().IsUnloaded(*id));
  }
  // Disarmed + reset: the extension runs clean again.
  kernel.runtime().Reset(*id);
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 7);
}

TEST(InjectedPagerFault, GuardFaultInjectionCancelsAsGuardZone) {
  MockKernel kernel;
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  auto id = kernel.runtime().Load(StaticStoreProgram(), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  ScopedFaultInjection faults{"heap.guard:nth=1"};
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled) << "--fault=heap.guard:nth=1";
  EXPECT_EQ(r.fault_kind, MemFaultKind::kGuardZone);
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());
}

// ---- injected code-cache refusals: the auto-fallback matrix -----------------

TEST(InjectedJitFault, MmapRefusalFallsBackToInterpreter) {
  if (!JitHostSupported()) {
    GTEST_SKIP() << "JIT backend unsupported on this host";
  }
  MockKernel kernel;
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  lo.engine = ExecEngine::kJit;

  ScopedFaultInjection faults{"jit.mmap:nth=1"};
  auto id = kernel.runtime().Load(StaticStoreProgram(), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  EngineInfo ei = kernel.runtime().engine_info(*id);
  EXPECT_EQ(ei.requested, ExecEngine::kJit);
  EXPECT_EQ(ei.used, ExecEngine::kInterp) << "--fault=jit.mmap:nth=1";
  EXPECT_NE(ei.fallback_reason.find("(mmap)"), std::string::npos)
      << "fallback reason: " << ei.fallback_reason;

  // The interpreter serves the invocation; load never fails on engine.
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 7);
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());

  // The nth=1 schedule is spent: a second load compiles natively.
  auto id2 = kernel.runtime().Load(StaticStoreProgram(), lo);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(kernel.runtime().engine_info(*id2).used, ExecEngine::kJit);
}

TEST(InjectedJitFault, MprotectRefusalFallsBackToInterpreter) {
  if (!JitHostSupported()) {
    GTEST_SKIP() << "JIT backend unsupported on this host";
  }
  MockKernel kernel;
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  lo.engine = ExecEngine::kJit;

  ScopedFaultInjection faults{"jit.mprotect:nth=1"};
  auto id = kernel.runtime().Load(StaticStoreProgram(), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  EngineInfo ei = kernel.runtime().engine_info(*id);
  EXPECT_EQ(ei.requested, ExecEngine::kJit);
  EXPECT_EQ(ei.used, ExecEngine::kInterp) << "--fault=jit.mprotect:nth=1";
  EXPECT_NE(ei.fallback_reason.find("(mprotect)"), std::string::npos)
      << "fallback reason: " << ei.fallback_reason;

  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 7);
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());
}

// ---- injected map failure ---------------------------------------------------

TEST(InjectedMapFault, UpdateReturnsEnomem) {
  MapRegistry maps;
  auto desc = maps.CreateArray(/*key_size=*/4, /*value_size=*/8, /*max_entries=*/4);
  ASSERT_TRUE(desc.ok());
  Map* map = maps.Find(desc->id);
  ASSERT_NE(map, nullptr);

  uint32_t key = 1;
  uint64_t value = 99;
  ScopedFaultInjection faults{"map.update:nth=1"};
  EXPECT_EQ(map->Update(reinterpret_cast<uint8_t*>(&key),
                        reinterpret_cast<uint8_t*>(&value)),
            -12)
      << "--fault=map.update:nth=1";
  // Schedule spent: the retry lands.
  EXPECT_EQ(map->Update(reinterpret_cast<uint8_t*>(&key),
                        reinterpret_cast<uint8_t*>(&value)),
            0);
}

// ---- injected helper errors -------------------------------------------------

TEST(InjectedHelperFault, MallocHelperReturnsNullOnInjection) {
  MockKernel kernel;
  auto id = kernel.runtime().Load(MallocProbeProgram(), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  ScopedFaultInjection faults{"helper.ret_err:nth=1"};
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled) << "--fault=helper.ret_err:nth=1";
  EXPECT_EQ(r.verdict, 0) << "malloc body skipped, NULL returned";
  // The skipped body allocated nothing: accounting still balances.
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());
}

// sk_lookup (hit 1) is injectable, sk_release (hit 2) must NOT be: a release
// helper whose body were skipped would leak the socket reference.
TEST(InjectedHelperFault, ReleaseHelpersAreNeverInjected) {
  MockKernel kernel;
  kernel.sockets().Bind(0x0A000001, 7000, kProtoUdp);

  Assembler a;
  a.StImm(BPF_W, R10, -16, 0x0A000001);
  a.StImm(BPF_W, R10, -12, 7000);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R1, R0);
  a.Call(kHelperSkRelease);
  a.MovImm(R0, 1);
  a.Else(iff);
  a.MovImm(R0, 0);
  a.EndIf(iff);
  a.Exit();
  auto id = kernel.runtime().Load(MustBuild(a), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  // nth=2 targets the second helper call (sk_release). The exemption makes
  // the schedule a no-op: the release body must run anyway.
  ScopedFaultInjection faults{"helper.ret_err:nth=2"};
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 1) << "socket lookup + release must both execute";
  EXPECT_TRUE(kernel.Quiescent()) << "socket reference leaked";
  EXPECT_EQ(kernel.sockets().TotalExtraRefs(), 0);
  EXPECT_TRUE(kernel.runtime().SweepInvariants(*id).ok());
}

// ---- RuntimeOptions arming --------------------------------------------------

TEST(RuntimeFaultSpecs, OptionsArmTheRegistry) {
  RuntimeOptions opts;
  opts.fault_specs = {"alloc.slab:nth=1"};
  {
    MockKernel kernel{opts};
    auto id = kernel.runtime().Load(MallocProbeProgram(), LoadOptions{});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(kernel.Attach(*id).ok());
    KvPacket pkt;
    InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
    EXPECT_EQ(r.verdict, 0) << "RuntimeOptions fault_specs must arm alloc.slab";
  }
  FaultRegistry::Instance().DisarmAll();
  FaultRegistry::Instance().ResetCounters();
}

}  // namespace
}  // namespace kflex
