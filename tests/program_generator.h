// Shared random-program generator for the fuzz suites. Produces structurally
// valid programs: R1 stays the ctx pointer, R9 holds a heap pointer in KFlex
// mode, loops are concretely bounded so generated programs always terminate.
// Extracted from fuzz_test.cc so the assembler round-trip property test can
// replay the exact differential-fuzz corpus (same Rng seed, same parameters)
// against the text-assembly writer/parser.
#ifndef TESTS_PROGRAM_GENERATOR_H_
#define TESTS_PROGRAM_GENERATOR_H_

#include <gtest/gtest.h>

#include <utility>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"

namespace kflex {

inline constexpr uint64_t kFuzzHeap = 1 << 20;

class ProgramGenerator {
 public:
  // `resources` additionally emits lock pairs and socket acquire/release
  // sequences (sometimes deliberately broken) for the lint-vs-verifier
  // consistency test; those helpers are not wired into the fuzz Runtime, so
  // the runtime soundness tests keep it off. `helper_calls` sprinkles in
  // calls to side-effect-free core helpers so differential runs can compare
  // helper-call traces.
  ProgramGenerator(Rng& rng, bool kflex, bool resources = false, bool helper_calls = false)
      : rng_(rng), kflex_(kflex), resources_(resources), helper_calls_(helper_calls) {}

  Program Generate() {
    Assembler a;
    // Initialize the register file (except R1 = ctx, R10 = fp).
    for (Reg r : {R0, R2, R3, R4, R5, R6, R7, R8}) {
      a.MovImm(r, static_cast<int32_t>(rng_.NextBounded(1 << 16)));
    }
    if (kflex_) {
      a.LoadHeapAddr(R9, 64 + rng_.NextBounded(kFuzzHeap / 2));
    } else {
      a.MovImm(R9, 1);
    }
    int ops = 5 + static_cast<int>(rng_.NextBounded(30));
    for (int i = 0; i < ops; i++) {
      EmitRandomOp(a, /*depth=*/0);
    }
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("fuzz", Hook::kXdp,
                      kflex_ ? ExtensionMode::kKflex : ExtensionMode::kEbpf,
                      kflex_ ? kFuzzHeap : 0);
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  }

 private:
  Reg Scratch() { return static_cast<Reg>(R2 + rng_.NextBounded(6)); }  // R2..R7

  MemSize RandomSize() {
    switch (rng_.NextBounded(4)) {
      case 0:
        return BPF_B;
      case 1:
        return BPF_H;
      case 2:
        return BPF_W;
      default:
        return BPF_DW;
    }
  }

  // Spin-lock pair on a constant heap offset, occasionally nested with a
  // second lock (and occasionally the SAME lock: a provable deadlock the
  // verifier rejects and the lock-order lint pass must also explain).
  void EmitLockPair(Assembler& a) {
    int32_t off_a = static_cast<int32_t>(8u << rng_.NextBounded(2));  // 8 or 16
    a.Stx(BPF_DW, R10, -512, R1);  // stash ctx: calls clobber R1-R5
    a.LoadHeapAddr(R1, static_cast<uint64_t>(off_a));
    a.Call(kHelperKflexSpinLock);
    if (rng_.NextBounded(3) == 0) {  // nested pair, maybe colliding with A
      int32_t off_b = static_cast<int32_t>(8u << rng_.NextBounded(2));
      a.LoadHeapAddr(R1, static_cast<uint64_t>(off_b));
      a.Call(kHelperKflexSpinLock);
      a.LoadHeapAddr(R1, static_cast<uint64_t>(off_b));
      a.Call(kHelperKflexSpinUnlock);
    }
    a.LoadHeapAddr(R1, static_cast<uint64_t>(off_a));
    a.Call(kHelperKflexSpinUnlock);
    a.Ldx(BPF_DW, R1, R10, -512);  // restore ctx
  }

  // Socket lookup with contract-conforming arguments; with probability 1/4
  // the non-null branch "forgets" the release (verifier rejects with an
  // unreleased-reference error; the ref-leak lint pass must agree).
  void EmitSocketPair(Assembler& a) {
    a.Stx(BPF_DW, R10, -512, R1);
    a.StImm(BPF_W, R10, -16, 1);
    a.StImm(BPF_W, R10, -12, 2);
    a.Mov(R2, R10);
    a.AddImm(R2, -16);
    a.MovImm(R3, 8);
    a.MovImm(R4, 0);
    a.MovImm(R5, 0);
    a.Call(kHelperSkLookupUdp);
    auto iff = a.IfImm(BPF_JNE, R0, 0);
    if (rng_.NextBounded(4) != 0) {
      a.Mov(R1, R0);
      a.Call(kHelperSkRelease);
    }
    a.EndIf(iff);
    a.Ldx(BPF_DW, R1, R10, -512);
  }

  // A call to a zero-argument core helper, with the ctx pointer saved across
  // the call (calls clobber R1-R5). The result lands in a scratch register so
  // traced return values can influence control flow downstream.
  void EmitHelperCall(Assembler& a) {
    a.Stx(BPF_DW, R10, -512, R1);
    switch (rng_.NextBounded(3)) {
      case 0:
        a.Call(kHelperKtimeGetNs);
        break;
      case 1:
        a.Call(kHelperGetPrandomU32);
        break;
      default:
        a.Call(kHelperGetSmpProcessorId);
        break;
    }
    a.Ldx(BPF_DW, R1, R10, -512);
    // The call left R2-R5 uninitialized; re-seed them so later ops verify.
    for (Reg r : {R2, R3, R4, R5}) {
      a.MovImm(r, static_cast<int32_t>(rng_.NextBounded(1 << 16)));
    }
    a.AluReg(BPF_ADD, rng_.NextBounded(2) == 0 ? R6 : R7, R0);
  }

  void EmitRandomOp(Assembler& a, int depth) {
    if (helper_calls_ && rng_.NextBounded(6) == 0) {
      EmitHelperCall(a);
      return;
    }
    switch (rng_.NextBounded(resources_ ? 12u : (kflex_ ? 10u : 7u))) {
      case 0: {  // ALU immediate
        static constexpr AluOp kOps[] = {BPF_ADD, BPF_SUB, BPF_AND, BPF_OR,
                                         BPF_XOR, BPF_MUL, BPF_LSH, BPF_RSH};
        AluOp op = kOps[rng_.NextBounded(8)];
        int32_t imm = static_cast<int32_t>(rng_.NextBounded(1 << 20));
        if (op == BPF_LSH || op == BPF_RSH) {
          imm = static_cast<int32_t>(rng_.NextBounded(64));
        }
        a.AluImm(op, Scratch(), imm);
        break;
      }
      case 1: {  // ALU register
        static constexpr AluOp kOps[] = {BPF_ADD, BPF_SUB, BPF_AND, BPF_OR, BPF_XOR};
        a.AluReg(kOps[rng_.NextBounded(5)], Scratch(), Scratch());
        break;
      }
      case 2:  // ctx load
        a.Ldx(RandomSize(), Scratch(), R1,
              static_cast<int16_t>(rng_.NextBounded(56)));
        break;
      case 3: {  // stack store + load
        int16_t off = static_cast<int16_t>(-8 * (1 + rng_.NextBounded(16)));
        a.Stx(BPF_DW, R10, off, Scratch());
        a.Ldx(BPF_DW, Scratch(), R10, off);
        break;
      }
      case 4: {  // conditional block
        if (depth >= 2) {
          break;
        }
        static constexpr JmpOp kConds[] = {BPF_JEQ, BPF_JNE, BPF_JGT, BPF_JLT,
                                           BPF_JSGT, BPF_JSLT};
        auto iff = a.IfImm(kConds[rng_.NextBounded(6)], Scratch(),
                           static_cast<int32_t>(rng_.NextBounded(1024)));
        int inner = 1 + static_cast<int>(rng_.NextBounded(3));
        for (int i = 0; i < inner; i++) {
          EmitRandomOp(a, depth + 1);
        }
        if (rng_.NextBounded(2) == 0) {
          a.Else(iff);
          EmitRandomOp(a, depth + 1);
        }
        a.EndIf(iff);
        break;
      }
      case 5: {  // bounded loop on R8
        if (depth >= 1) {
          break;
        }
        a.MovImm(R8, static_cast<int32_t>(1 + rng_.NextBounded(12)));
        auto loop = a.LoopBegin();
        a.LoopBreakIfImm(loop, BPF_JEQ, R8, 0);
        EmitRandomOp(a, depth + 1);
        a.SubImm(R8, 1);
        a.LoopEnd(loop);
        break;
      }
      case 6:  // 32-bit ALU
        a.AluImm(BPF_ADD, Scratch(), static_cast<int32_t>(rng_.Next()), /*is64=*/false);
        break;
      // ---- KFlex-only ops ----
      case 7:  // heap pointer arithmetic + access via R9
        a.AluImm(rng_.NextBounded(2) == 0 ? BPF_ADD : BPF_SUB, R9,
                 static_cast<int32_t>(rng_.NextBounded(1 << 18)));
        if (rng_.NextBounded(2) == 0) {
          a.Ldx(RandomSize(), Scratch(), R9, static_cast<int16_t>(rng_.NextBounded(64)));
        } else {
          a.Stx(RandomSize(), R9, static_cast<int16_t>(rng_.NextBounded(64)), Scratch());
        }
        break;
      case 8: {  // untrusted-scalar dereference (formation guard)
        Reg reg = Scratch();
        if (rng_.NextBounded(2) == 0) {
          a.Ldx(BPF_DW, Scratch(), reg, static_cast<int16_t>(rng_.NextBounded(32)));
        } else {
          a.Stx(BPF_DW, reg, static_cast<int16_t>(rng_.NextBounded(32)), Scratch());
        }
        break;
      }
      case 9:  // mix a ctx value into the heap pointer
        a.Ldx(BPF_W, R6, R1, static_cast<int16_t>(rng_.NextBounded(32)));
        a.Add(R9, R6);
        break;
      // ---- resource ops (lint-consistency fuzzing only) ----
      case 10:
        EmitLockPair(a);
        break;
      case 11:
        EmitSocketPair(a);
        break;
    }
  }

  Rng& rng_;
  bool kflex_;
  bool resources_;
  bool helper_calls_ = false;
};

}  // namespace kflex

#endif  // TESTS_PROGRAM_GENERATOR_H_
