// Second VM suite: 32-bit jump semantics, partial-width loads/stores,
// little-endian byte order, register-file behaviour across helpers,
// multi-region translation, and object-registry handle hygiene.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/runtime/helpers.h"
#include "src/runtime/object_registry.h"
#include "src/runtime/vm.h"

namespace kflex {
namespace {

VmResult RunRaw(const std::vector<Insn>& insns, uint8_t* ctx, uint32_t ctx_size) {
  VmEnv env;
  env.ctx = ctx;
  env.ctx_size = ctx_size;
  return VmRun(insns, env);
}

VmResult RunProgram(Assembler& a, uint8_t* ctx, uint32_t ctx_size) {
  auto p = a.Finish("t", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  EXPECT_TRUE(p.ok());
  return RunRaw(p->insns, ctx, ctx_size);
}

TEST(Vm2, Jmp32ComparesLowWordOnly) {
  // 64-bit values differ, low 32 bits equal: JMP32 JEQ taken, JMP JEQ not.
  for (bool is64 : {false, true}) {
    Assembler a;
    auto taken = a.NewLabel();
    a.LoadImm64(R2, 0x1111111100000005ULL);
    a.LoadImm64(R3, 0x2222222200000005ULL);
    a.JmpReg(BPF_JEQ, R2, R3, taken, is64);
    a.MovImm(R0, 0);
    a.Exit();
    a.Bind(taken);
    a.MovImm(R0, 1);
    a.Exit();
    uint8_t ctx[64] = {0};
    VmResult r = RunProgram(a, ctx, sizeof(ctx));
    EXPECT_EQ(r.ret, is64 ? 0 : 1);
  }
}

TEST(Vm2, Jmp32SignedUsesLowWordSign) {
  // Low word 0xFFFFFFFF is -1 in 32-bit signed: s< 0 is true under JMP32.
  Assembler a;
  auto taken = a.NewLabel();
  a.LoadImm64(R2, 0x00000000FFFFFFFFULL);  // +4294967295 as 64-bit
  a.JmpImm(BPF_JSLT, R2, 0, taken, /*is64=*/false);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(taken);
  a.MovImm(R0, 1);
  a.Exit();
  uint8_t ctx[64] = {0};
  EXPECT_EQ(RunProgram(a, ctx, sizeof(ctx)).ret, 1);
}

TEST(Vm2, PartialLoadsAreLittleEndianAndZeroExtended) {
  uint8_t ctx[64] = {0};
  uint64_t value = 0x8877665544332211ULL;
  std::memcpy(ctx, &value, 8);
  struct Case {
    MemSize size;
    uint64_t expect;
  };
  for (const auto& c : {Case{BPF_B, 0x11}, Case{BPF_H, 0x2211}, Case{BPF_W, 0x44332211},
                        Case{BPF_DW, value}}) {
    Assembler a;
    a.LoadImm64(R0, ~0ULL);  // poison: loads must fully overwrite
    a.Ldx(c.size, R0, R1, 0);
    a.Exit();
    EXPECT_EQ(static_cast<uint64_t>(RunProgram(a, ctx, sizeof(ctx)).ret), c.expect);
  }
}

TEST(Vm2, PartialStoresTouchOnlyTheirBytes) {
  uint8_t ctx[64];
  std::memset(ctx, 0xEE, sizeof(ctx));
  Assembler a;
  a.StImm(BPF_B, R1, 8, 0xAB);
  a.StImm(BPF_H, R1, 16, 0x1234);
  a.MovImm(R0, 0);
  a.Exit();
  RunProgram(a, ctx, sizeof(ctx));
  EXPECT_EQ(ctx[8], 0xAB);
  EXPECT_EQ(ctx[9], 0xEE);  // neighbour untouched
  uint16_t h;
  std::memcpy(&h, ctx + 16, 2);
  EXPECT_EQ(h, 0x1234);
  EXPECT_EQ(ctx[18], 0xEE);
}

TEST(Vm2, MovImmSignExtends64) {
  Assembler a;
  a.MovImm(R0, -1);
  a.Exit();
  uint8_t ctx[64] = {0};
  EXPECT_EQ(static_cast<uint64_t>(RunProgram(a, ctx, sizeof(ctx)).ret), ~0ULL);
}

TEST(Vm2, Mov32ZeroExtends) {
  Assembler a;
  a.LoadImm64(R2, ~0ULL);
  a.Mov32(R0, R2);  // low 32 bits, zero-extended
  a.Exit();
  uint8_t ctx[64] = {0};
  EXPECT_EQ(static_cast<uint64_t>(RunProgram(a, ctx, sizeof(ctx)).ret), 0xFFFFFFFFULL);
}

TEST(Vm2, DivModByZeroSemantics) {
  uint8_t ctx[64] = {0};
  {
    Assembler a;
    a.MovImm(R2, 100);
    a.MovImm(R3, 0);
    a.AluReg(BPF_DIV, R2, R3);
    a.Mov(R0, R2);
    a.Exit();
    EXPECT_EQ(RunProgram(a, ctx, sizeof(ctx)).ret, 0) << "x / 0 == 0";
  }
  {
    Assembler a;
    a.MovImm(R2, 100);
    a.MovImm(R3, 0);
    a.AluReg(BPF_MOD, R2, R3);
    a.Mov(R0, R2);
    a.Exit();
    EXPECT_EQ(RunProgram(a, ctx, sizeof(ctx)).ret, 100) << "x % 0 == x";
  }
}

TEST(Vm2, HelperPreservesCalleeSavedRegisters) {
  HelperTable helpers;
  RegisterCoreHelpers(helpers);
  Assembler a;
  a.MovImm(R6, 11);
  a.MovImm(R7, 22);
  a.MovImm(R8, 33);
  a.MovImm(R9, 44);
  a.Call(kHelperKtimeGetNs);
  a.Mov(R0, R6);
  a.Add(R0, R7);
  a.Add(R0, R8);
  a.Add(R0, R9);
  a.Exit();
  auto p = a.Finish("t", Hook::kTracepoint, ExtensionMode::kKflex, 0);
  ASSERT_TRUE(p.ok());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.helpers = &helpers;
  EXPECT_EQ(VmRun(p->insns, env).ret, 11 + 22 + 33 + 44);
}

TEST(Vm2, AtomicWord32Variants) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  uint64_t va = heap.value()->layout().kernel_base + 64;
  std::vector<Insn> insns;
  insns.push_back(LdImm64Insn(R2, va));
  insns.push_back(LdImm64HiInsn(va));
  insns.push_back(MovImmInsn(R3, 7));
  insns.push_back(AtomicInsn(BPF_W, R2, 0, R3, BPF_ATOMIC_ADD));
  insns.push_back(MovImmInsn(R4, 100));
  insns.push_back(AtomicInsn(BPF_W, R2, 0, R4, BPF_ATOMIC_XCHG));  // R4 = 7
  insns.push_back(MovRegInsn(R0, R4));
  insns.push_back(ExitInsn());
  VmEnv env;
  uint8_t ctx[64] = {0};
  env.ctx = ctx;
  env.ctx_size = sizeof(ctx);
  env.heap = heap.value().get();
  VmResult r = VmRun(insns, env);
  ASSERT_EQ(r.outcome, VmResult::Outcome::kOk);
  EXPECT_EQ(r.ret, 7);
  uint32_t word;
  std::memcpy(&word, heap.value()->HostAt(64), 4);
  EXPECT_EQ(word, 100u);
}

TEST(Vm2, CtxBoundaryIsExact) {
  uint8_t ctx[64] = {0};
  {
    Assembler a;
    a.Ldx(BPF_DW, R0, R1, 56);  // last valid 8-byte slot
    a.Exit();
    EXPECT_EQ(RunProgram(a, ctx, sizeof(ctx)).outcome, VmResult::Outcome::kOk);
  }
  {
    // One past the end: raw VM faults (the verifier would reject earlier).
    std::vector<Insn> insns;
    insns.push_back(LdxInsn(BPF_DW, R0, R1, 57));
    insns.push_back(ExitInsn());
    EXPECT_EQ(RunRaw(insns, ctx, sizeof(ctx)).outcome, VmResult::Outcome::kFault);
  }
}

TEST(ObjectRegistryTest, ExactlyOnceRelease) {
  ObjectRegistry registry;
  int released = 0;
  uint64_t handle = registry.Register(ResourceKind::kSocket, [&released] { released++; });
  EXPECT_TRUE(registry.IsLive(handle));
  EXPECT_EQ(registry.KindOf(handle), ResourceKind::kSocket);
  EXPECT_EQ(registry.live_count(), 1u);
  EXPECT_TRUE(registry.Release(handle));
  EXPECT_EQ(released, 1);
  EXPECT_FALSE(registry.Release(handle)) << "double release must be a no-op";
  EXPECT_EQ(released, 1);
  EXPECT_FALSE(registry.IsLive(handle));
  EXPECT_EQ(registry.live_count(), 0u);
}

TEST(ObjectRegistryTest, StaleHandleFromRecycledSlotRejected) {
  ObjectRegistry registry;
  uint64_t first = registry.Register(ResourceKind::kSocket, [] {});
  registry.Release(first);
  uint64_t second = registry.Register(ResourceKind::kSocket, [] {});
  // The slot is recycled but the generation differs: the stale handle is dead.
  EXPECT_NE(first, second);
  EXPECT_FALSE(registry.IsLive(first));
  EXPECT_TRUE(registry.IsLive(second));
  EXPECT_FALSE(registry.Release(first));
  EXPECT_TRUE(registry.Release(second));
}

TEST(ObjectRegistryTest, GarbageHandlesRejected) {
  ObjectRegistry registry;
  EXPECT_FALSE(registry.Release(0));
  EXPECT_FALSE(registry.Release(12345));
  EXPECT_FALSE(registry.Release(kKernelObjRegion + 99999));
  EXPECT_EQ(registry.KindOf(777), ResourceKind::kNone);
}

}  // namespace
}  // namespace kflex
