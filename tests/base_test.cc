// Base utilities: Status/StatusOr, RNG determinism, Zipfian skew,
// histogram percentiles.
#include <gtest/gtest.h>

#include <map>

#include "src/base/histogram.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/zipf.h"

namespace kflex {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_NE(s.ToString().find("INVALID_ARGUMENT"), std::string::npos);
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(VerificationFailed("x").code(), StatusCode::kVerificationFailed);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFound("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, StaysInRange) {
  Rng rng(1);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 20000; i++) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(Zipf, IsSkewedTowardLowRanks) {
  Rng rng(2);
  ZipfGenerator zipf(10000, 0.99);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    counts[zipf.Next(rng)]++;
  }
  // Rank 0 must dominate; the top-10 ranks get a large share.
  int top10 = 0;
  for (uint64_t r = 0; r < 10; r++) {
    top10 += counts[r];
  }
  EXPECT_GT(counts[0], kSamples / 30);
  EXPECT_GT(top10, kSamples / 5);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  Rng rng(3);
  ZipfGenerator zipf(100, 0.01);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[zipf.Next(rng)]++;
  }
  EXPECT_LT(counts[0], 100000 / 20);  // nothing dominates hard
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 1234.0, 1234.0 * 0.07);
}

TEST(Histogram, PercentilesOfUniformRange) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; v++) {
    h.Record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5000.0, 5000.0 * 0.08);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9900.0, 9900.0 * 0.08);
  EXPECT_EQ(h.Percentile(1.0), 10000u);
  EXPECT_NEAR(h.Mean(), 5000.5, 1.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; i++) {
    a.Record(10);
    b.Record(1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, LargeValuesBucketedApproximately) {
  Histogram h;
  uint64_t v = 123'456'789'012ULL;
  h.Record(v);
  uint64_t p = h.Percentile(0.5);
  EXPECT_GE(p, v - v / 10);
  EXPECT_LE(p, v);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  EXPECT_NE(h.Summary().find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace kflex
