// Closed-loop simulator: deterministic scenarios with analytically known
// outcomes, plus smoke checks that the paper's qualitative ordering
// (KFlex > BMC > user space) emerges from the real data planes.
#include "src/sim/closedloop.h"

#include <gtest/gtest.h>

#include "src/sim/kv_models.h"

namespace kflex {
namespace {

// Fixed-service-time model for analytic checks.
class FixedModel : public ServiceModel {
 public:
  explicit FixedModel(uint64_t ns) : ns_(ns) {}
  uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override {
    calls_++;
    return ns_;
  }
  uint64_t calls() const { return calls_; }

 private:
  uint64_t ns_;
  uint64_t calls_ = 0;
};

TEST(ClosedLoop, SaturatedThroughputMatchesServiceRate) {
  // Many clients, 4 servers, 1 us per request -> ~4 requests/us total.
  FixedModel model(1000);
  ClosedLoopConfig config;
  config.server_threads = 4;
  config.clients = 256;
  config.total_requests = 50'000;
  config.key_space = 100;
  ClosedLoopResult result = RunClosedLoop(model, config);
  EXPECT_NEAR(result.throughput_mops, 4.0, 0.4);
  EXPECT_EQ(model.calls(), config.total_requests);
}

TEST(ClosedLoop, LatencyScalesWithLoad) {
  FixedModel model(1000);
  ClosedLoopConfig light;
  light.server_threads = 8;
  light.clients = 8;  // one client per server: no queueing
  light.total_requests = 20'000;
  light.key_space = 100;
  ClosedLoopResult idle = RunClosedLoop(model, light);

  ClosedLoopConfig heavy = light;
  heavy.clients = 512;
  ClosedLoopResult busy = RunClosedLoop(model, heavy);

  // Under light load latency ~= rtt + service.
  EXPECT_LT(idle.latency.Percentile(0.5), light.rtt_ns + 1000 + 500);
  EXPECT_GT(busy.latency.Percentile(0.99), idle.latency.Percentile(0.99) * 4);
}

TEST(ClosedLoop, BackgroundTaskInflatesTail) {
  FixedModel model(1000);
  ClosedLoopConfig config;
  config.server_threads = 4;
  config.clients = 64;
  config.total_requests = 50'000;
  config.key_space = 100;
  ClosedLoopResult base = RunClosedLoop(model, config);

  BackgroundTask task;
  task.interval_ns = 2'000'000;                      // every 2 ms
  task.run = [](uint64_t) { return 400'000ULL; };    // 400 us stall
  ClosedLoopResult with_gc = RunClosedLoop(model, config, &task);

  EXPECT_GT(with_gc.latency.Percentile(0.99), base.latency.Percentile(0.99));
  EXPECT_LT(with_gc.throughput_mops, base.throughput_mops);
}

TEST(KvModels, MemcachedOrderingMatchesPaper) {
  CostModel cost;
  constexpr int kThreads = 2;
  constexpr uint64_t kKeys = 512;

  auto kflex = KflexMemcachedSystem::Create(cost, kThreads);
  ASSERT_TRUE(kflex.ok()) << kflex.status().ToString();
  (*kflex)->Prepopulate(kKeys);
  auto bmc = BmcSystem::Create(cost, kThreads);
  ASSERT_TRUE(bmc.ok());
  (*bmc)->Prepopulate(kKeys);
  auto user = UserMemcachedSystem::Create(cost, kThreads);
  ASSERT_TRUE(user.ok());
  (*user)->Prepopulate(kKeys);

  ClosedLoopConfig config;
  config.server_threads = kThreads;
  config.clients = 64;
  config.total_requests = 20'000;
  config.key_space = kKeys;
  config.get_fraction = 0.5;

  double kflex_mops = RunClosedLoop(**kflex, config).throughput_mops;
  double bmc_mops = RunClosedLoop(**bmc, config).throughput_mops;
  double user_mops = RunClosedLoop(**user, config).throughput_mops;

  EXPECT_GT(kflex_mops, bmc_mops) << "KFlex must beat BMC on mixed workloads";
  EXPECT_GT(bmc_mops, user_mops) << "BMC must beat pure user space";
  double speedup = kflex_mops / user_mops;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 6.0);
}

TEST(KvModels, RedisOrderingMatchesPaper) {
  CostModel cost;
  constexpr int kThreads = 2;
  constexpr uint64_t kKeys = 512;
  auto kflex = KflexRedisSystem::Create(cost, kThreads);
  ASSERT_TRUE(kflex.ok()) << kflex.status().ToString();
  (*kflex)->Prepopulate(kKeys);
  auto keydb = UserRedisSystem::Create(cost, kThreads);
  ASSERT_TRUE(keydb.ok());
  (*keydb)->Prepopulate(kKeys);

  ClosedLoopConfig config;
  config.server_threads = kThreads;
  config.clients = 64;
  config.total_requests = 20'000;
  config.key_space = kKeys;
  config.get_fraction = 0.9;

  double kflex_mops = RunClosedLoop(**kflex, config).throughput_mops;
  double keydb_mops = RunClosedLoop(**keydb, config).throughput_mops;
  double speedup = kflex_mops / keydb_mops;
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 4.0) << "sk_skb keeps the TCP stack: gains must be moderate";
}

TEST(ClosedLoop, DeterministicForSeed) {
  FixedModel model_a(1500);
  FixedModel model_b(1500);
  ClosedLoopConfig config;
  config.server_threads = 4;
  config.clients = 128;
  config.total_requests = 30'000;
  config.key_space = 1000;
  config.seed = 77;
  ClosedLoopResult a = RunClosedLoop(model_a, config);
  ClosedLoopResult b = RunClosedLoop(model_b, config);
  EXPECT_EQ(a.simulated_ns, b.simulated_ns);
  EXPECT_EQ(a.latency.Percentile(0.99), b.latency.Percentile(0.99));
  EXPECT_DOUBLE_EQ(a.throughput_mops, b.throughput_mops);
}

TEST(ClosedLoop, MoreServersMoreThroughput) {
  FixedModel model(2000);
  ClosedLoopConfig config;
  config.clients = 256;
  config.total_requests = 30'000;
  config.key_space = 100;
  config.server_threads = 2;
  double two = RunClosedLoop(model, config).throughput_mops;
  config.server_threads = 8;
  double eight = RunClosedLoop(model, config).throughput_mops;
  EXPECT_GT(eight, two * 3.0) << "saturated throughput must scale with servers";
}

TEST(ClosedLoop, OpMixFollowsGetFraction) {
  class CountingModel : public ServiceModel {
   public:
    uint64_t ServeNs(int cpu, KvOp op, uint64_t key) override {
      (op == KvOp::kGet ? gets : sets)++;
      return 500;
    }
    uint64_t gets = 0;
    uint64_t sets = 0;
  };
  CountingModel model;
  ClosedLoopConfig config;
  config.server_threads = 2;
  config.clients = 32;
  config.total_requests = 40'000;
  config.key_space = 100;
  config.get_fraction = 0.9;
  RunClosedLoop(model, config);
  double frac =
      static_cast<double>(model.gets) / static_cast<double>(model.gets + model.sets);
  EXPECT_NEAR(frac, 0.9, 0.01);
}

}  // namespace
}  // namespace kflex
