// Redis offload: GET/SET round trips, ZADD into extension-built skip lists,
// and randomized equivalence against the user-space oracle.
#include "src/apps/redis.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace kflex {
namespace {

TEST(KflexRedis, SetGetRoundTrip) {
  MockKernel kernel;
  auto driver = KflexRedisDriver::Create(kernel);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  ASSERT_TRUE(driver->Set(0, 1, "redis-value").hit);
  auto got = driver->Get(0, 1);
  ASSERT_TRUE(got.hit);
  EXPECT_EQ(got.value.substr(0, 11), "redis-value");
  EXPECT_FALSE(driver->Get(0, 2).hit);
}

TEST(KflexRedis, ZaddBuildsSortedSet) {
  MockKernel kernel;
  auto driver = KflexRedisDriver::Create(kernel);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();

  EXPECT_TRUE(driver->Zadd(0, 10, /*score=*/30, /*member=*/300).hit);
  EXPECT_TRUE(driver->Zadd(0, 10, 10, 100).hit);
  EXPECT_TRUE(driver->Zadd(0, 10, 20, 200).hit);
  EXPECT_TRUE(driver->Zadd(0, 10, 20, 222).hit);  // update member at score 20

  auto zset = driver->ReadZset(10);
  ASSERT_EQ(zset.size(), 3u);
  auto it = zset.begin();
  EXPECT_EQ(it->first, 10u);
  EXPECT_EQ(it->second, 100u);
  ++it;
  EXPECT_EQ(it->first, 20u);
  EXPECT_EQ(it->second, 222u);
  ++it;
  EXPECT_EQ(it->first, 30u);
  EXPECT_EQ(it->second, 300u);
}

TEST(KflexRedis, ZaddRandomizedAgainstOracle) {
  MockKernel kernel;
  auto driver = KflexRedisDriver::Create(kernel);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  UserRedis oracle;

  Rng rng(99);
  for (int i = 0; i < 3000; i++) {
    uint64_t key = rng.NextBounded(8);
    uint64_t score = rng.NextBounded(200);
    uint64_t member = 1 + rng.Next() % 100000;
    ASSERT_TRUE(driver->Zadd(0, key, score, member).hit) << "op " << i;
    oracle.Zadd(key, score, member);
  }
  for (uint64_t key = 0; key < 8; key++) {
    auto got = driver->ReadZset(key);
    const auto* want = oracle.Zset(key);
    if (want == nullptr) {
      EXPECT_TRUE(got.empty());
      continue;
    }
    ASSERT_EQ(got.size(), want->size()) << "key " << key;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want->begin()));
  }
}

TEST(KflexRedis, StringsAndZsetsCoexist) {
  MockKernel kernel;
  auto driver = KflexRedisDriver::Create(kernel);
  ASSERT_TRUE(driver.ok());
  UserRedis oracle;
  Rng rng(4);
  for (int i = 0; i < 2000; i++) {
    uint64_t key = rng.NextBounded(64);
    switch (rng.NextBounded(3)) {
      case 0: {
        std::string value = "s" + std::to_string(rng.NextBounded(1000));
        ASSERT_TRUE(driver->Set(0, key, value).hit);
        oracle.Set(key, value);
        break;
      }
      case 1: {
        auto got = driver->Get(0, key);
        auto want = oracle.Get(key);
        // A ZADD-created key exists with an empty string value.
        if (want.has_value()) {
          ASSERT_TRUE(got.hit);
          ASSERT_EQ(got.value.substr(0, want->size()), *want);
        }
        break;
      }
      case 2: {
        // Use a different key range so zsets don't clobber string values.
        uint64_t zkey = 1000 + key;
        uint64_t score = rng.NextBounded(50);
        uint64_t member = rng.Next();
        ASSERT_TRUE(driver->Zadd(0, zkey, score, member).hit);
        oracle.Zadd(zkey, score, member);
        break;
      }
    }
  }
  for (uint64_t zkey = 1000; zkey < 1064; zkey++) {
    const auto* want = oracle.Zset(zkey);
    auto got = driver->ReadZset(zkey);
    if (want == nullptr) {
      EXPECT_TRUE(got.empty());
    } else {
      ASSERT_EQ(got.size(), want->size());
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want->begin()));
    }
  }
}

TEST(KflexRedis, VerifiesWithCancellationPoints) {
  Program p = BuildRedisExtension({});
  auto analysis = Verify(p, VerifyOptions{});
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  // Hash-chain walk, skip-list walk: unbounded loops need Cps.
  EXPECT_GE(analysis->cancellation_back_edges.size(), 2u);
  // Bucket access is elided; node accesses are formation guards.
  EXPECT_GE(analysis->elided_guards, 1u);
  EXPECT_GE(analysis->formation_guards, 10u);
}

}  // namespace
}  // namespace kflex
