// End-to-end runtime tests: load -> verify -> instrument -> invoke through
// the mock kernel, SFI containment, allocator behaviour, spin locks, maps,
// heaps, and the eBPF backward-compatibility mode.
#include "src/runtime/runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/spinlock.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;

Program MustBuild(Assembler& a, ExtensionMode mode = ExtensionMode::kKflex,
                  uint64_t heap = kHeapSize, Hook hook = Hook::kXdp) {
  auto p = a.Finish("t", hook, mode, heap);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

TEST(RuntimeE2E, HeapGlobalRoundTrip) {
  MockKernel kernel;
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 4242);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.attached);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 4242);

  uint64_t stored;
  std::memcpy(&stored, kernel.runtime().heap(*id)->HostAt(64), 8);
  EXPECT_EQ(stored, 4242u);
}

// Invoke's cpu argument selects a per-CPU allocator arena and watchdog slot;
// out-of-range values must be rejected (attached=false), not trusted — shard
// workers compute it, and a bad index would corrupt a foreign arena.
TEST(RuntimeE2E, InvokeRejectsOutOfRangeCpu) {
  RuntimeOptions opts;
  opts.num_cpus = 2;
  Runtime runtime{opts};
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 1);
  a.MovImm(R0, 0);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  auto id = runtime.Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  uint8_t ctx[64] = {0};
  EXPECT_TRUE(runtime.Invoke(*id, 0, ctx, sizeof(ctx)).attached);
  EXPECT_TRUE(runtime.Invoke(*id, 1, ctx, sizeof(ctx)).attached);
  EXPECT_FALSE(runtime.Invoke(*id, 2, ctx, sizeof(ctx)).attached)
      << "cpu == num_cpus is out of range";
  EXPECT_FALSE(runtime.Invoke(*id, -1, ctx, sizeof(ctx)).attached);
  EXPECT_FALSE(runtime.Invoke(*id, 1 << 20, ctx, sizeof(ctx)).attached);
  // Rejected invocations leave no trace in the stats or invariants.
  EXPECT_EQ(runtime.GetStats(*id).invocations, 2u);
  InvariantReport sweep = runtime.SweepInvariants(*id);
  EXPECT_TRUE(sweep.ok()) << sweep.ToString();
}

// Quiesced detach (Runtime::Unload): subsequent Invokes bounce, the heap
// survives, and Reset re-arms — the sharded dispatcher's unload primitive.
TEST(RuntimeE2E, UnloadDetachesWithoutCancellation) {
  Runtime runtime;
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 7);
  a.MovImm(R0, 0);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 128;
  auto id = runtime.Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok());
  uint8_t ctx[64] = {0};
  ASSERT_TRUE(runtime.Invoke(*id, 0, ctx, sizeof(ctx)).attached);

  runtime.Unload(*id);
  EXPECT_TRUE(runtime.IsUnloaded(*id));
  EXPECT_FALSE(runtime.Invoke(*id, 0, ctx, sizeof(ctx)).attached);
  EXPECT_EQ(runtime.GetStats(*id).cancellations, 0u)
      << "quiesced unload is not a cancellation";
  ASSERT_NE(runtime.heap(*id), nullptr);
  uint64_t stored;
  std::memcpy(&stored, runtime.heap(*id)->HostAt(64), 8);
  EXPECT_EQ(stored, 7u) << "the heap survives the detach (§3.4)";

  runtime.Reset(*id);
  EXPECT_TRUE(runtime.Invoke(*id, 0, ctx, sizeof(ctx)).attached);
}

TEST(RuntimeE2E, OutOfBoundsWriteIsContainedBySfi) {
  MockKernel kernel;
  Assembler a;
  // ptr = heap[64] + unknown scalar from ctx: Kie must guard the store.
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 7777);
  a.MovImm(R0, 0);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  KvPacket pkt;
  // Offset chosen so that the unmasked address would be far outside the
  // heap but the masked address lands back on the metadata page.
  uint64_t delta = kHeapSize * 3;  // masks to 0 -> final addr = heap[64]
  std::memcpy(pkt.data(), &delta, 8);
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled) << VmOutcomeName(r.outcome);
  uint64_t stored;
  std::memcpy(&stored, kernel.runtime().heap(*id)->HostAt(64), 8);
  EXPECT_EQ(stored, 7777u);  // contained within the heap
}

TEST(RuntimeE2E, UnpopulatedPageAccessCancelsC2) {
  MockKernel kernel;
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);
  a.MovImm(R0, 0);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());

  KvPacket pkt;
  uint64_t delta = kHeapSize / 2;  // masked address stays on an unpopulated page
  std::memcpy(pkt.data(), &delta, 8);
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.fault_kind, MemFaultKind::kNotPresent);
  EXPECT_EQ(r.verdict, kXdpPass);  // XDP default on cancellation
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*id));
  EXPECT_TRUE(kernel.Quiescent());
}

TEST(RuntimeE2E, MallocedMemoryIsUsable) {
  MockKernel kernel;
  Assembler a;
  a.MovImm(R1, 96);
  a.Call(kHelperKflexMalloc);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.StImm(BPF_DW, R6, 0, 31337);
  a.Ldx(BPF_DW, R7, R6, 0);
  a.Mov(R0, R7);
  a.Else(iff);
  a.MovImm(R0, 0);
  a.EndIf(iff);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 31337);
}

TEST(RuntimeE2E, EbpfModeProgramStillRuns) {
  MockKernel kernel;
  auto desc = kernel.runtime().maps().CreateArray(4, 8, 16);
  ASSERT_TRUE(desc.ok());
  Assembler a;
  a.LoadMapPtr(R1, desc->id);
  a.StImm(BPF_W, R10, -4, 3);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.StImm(BPF_DW, R0, 0, 555);
  a.Ldx(BPF_DW, R0, R0, 0);
  a.EndIf(iff);
  a.Exit();
  auto id = kernel.runtime().Load(MustBuild(a, ExtensionMode::kEbpf, /*heap=*/0));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 555);
}

TEST(RuntimeE2E, SpinLockProtectsCounterAcrossThreads) {
  MockKernel kernel{RuntimeOptions{4, 1'000'000'000ULL}};
  Assembler a;
  // lock; counter++ (non-atomically: load, add, store); unlock.
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.LoadHeapAddr(R2, 72);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R2, 0, R3);
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinUnlock);
  a.MovImm(R0, 0);
  a.Exit();
  LoadOptions lo;
  lo.heap_static_bytes = 64;
  auto id = kernel.runtime().Load(MustBuild(a), lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&kernel, t] {
      KvPacket pkt;
      for (int i = 0; i < kIters; i++) {
        kernel.Deliver(Hook::kXdp, t, pkt.data(), pkt.size());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t counter;
  std::memcpy(&counter, kernel.runtime().heap(*id)->HostAt(72), 8);
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads * kIters));
}

TEST(Allocator, SizeClassesAndReuse) {
  HeapSpec spec;
  spec.size = kHeapSize;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  HeapAllocator alloc(heap.value().get(), 2);

  EXPECT_EQ(HeapAllocator::ClassForSize(1), 0);
  EXPECT_EQ(HeapAllocator::ClassForSize(16), 0);
  EXPECT_EQ(HeapAllocator::ClassForSize(17), 1);
  EXPECT_EQ(HeapAllocator::ClassForSize(4096), 8);
  EXPECT_EQ(HeapAllocator::ClassForSize(4097), -1);

  uint64_t a1 = alloc.Alloc(0, 100);
  uint64_t a2 = alloc.Alloc(0, 100);
  ASSERT_NE(a1, 0u);
  ASSERT_NE(a2, 0u);
  EXPECT_NE(a1, a2);
  EXPECT_TRUE(alloc.Free(0, a1));
  uint64_t a3 = alloc.Alloc(0, 100);
  EXPECT_EQ(a3, a1);  // per-CPU cache LIFO reuse
  EXPECT_FALSE(alloc.Free(0, a2 + 4));  // interior pointer rejected
  EXPECT_FALSE(alloc.Free(0, 64));      // static region not allocator-owned
}

TEST(Allocator, RandomizedAllocFreeStress) {
  HeapSpec spec;
  spec.size = kHeapSize;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  HeapAllocator alloc(heap.value().get(), 2);
  Rng rng(99);
  std::vector<std::pair<uint64_t, uint64_t>> live;  // (off, size)
  for (int i = 0; i < 20000; i++) {
    if (live.empty() || rng.NextBounded(100) < 60) {
      uint64_t size = 1 + rng.NextBounded(4096);
      uint64_t off = alloc.Alloc(static_cast<int>(rng.NextBounded(2)), size);
      if (off != 0) {
        // No overlap with any live allocation.
        uint64_t cls_size =
            HeapAllocator::ClassSize(HeapAllocator::ClassForSize(size));
        for (const auto& [o, s] : live) {
          ASSERT_TRUE(off + cls_size <= o || o + s <= off)
              << "overlap: " << off << " vs " << o;
        }
        live.emplace_back(off, cls_size);
      }
    } else {
      size_t idx = rng.NextBounded(live.size());
      ASSERT_TRUE(alloc.Free(static_cast<int>(rng.NextBounded(2)), live[idx].first));
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
  }
}

TEST(SpinLock, MutualExclusionStress) {
  alignas(8) uint64_t word = 0;
  uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&word, &counter] {
      for (int i = 0; i < kIters; i++) {
        ASSERT_TRUE(SpinLockOps::Acquire(&word, SpinLockOps::kKernelOwner, nullptr));
        counter++;
        SpinLockOps::Release(&word);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads * kIters));
  EXPECT_FALSE(SpinLockOps::IsHeld(&word));
}

TEST(SpinLock, CancelWhileWaiting) {
  alignas(8) uint64_t word = 0;
  ASSERT_TRUE(SpinLockOps::Acquire(&word, SpinLockOps::kUserOwner, nullptr));
  std::atomic<bool> cancel{false};
  std::thread waiter([&word, &cancel] {
    EXPECT_FALSE(SpinLockOps::Acquire(&word, SpinLockOps::kKernelOwner, &cancel));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.store(true);
  waiter.join();
  SpinLockOps::Release(&word);
}

TEST(Maps, HashMapInsertLookupDelete) {
  MapRegistry registry;
  auto desc = registry.CreateHash(8, 16, 128);
  ASSERT_TRUE(desc.ok());
  Map* map = registry.Find(desc->id);
  ASSERT_NE(map, nullptr);

  uint64_t key = 0xABCD;
  uint8_t value[16] = {1, 2, 3};
  EXPECT_EQ(map->Update(reinterpret_cast<uint8_t*>(&key), value), 0);
  uint64_t va = map->Lookup(reinterpret_cast<uint8_t*>(&key));
  ASSERT_NE(va, 0u);
  uint8_t* host = map->TranslateValue(va, 16);
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host[0], 1);
  EXPECT_EQ(map->Delete(reinterpret_cast<uint8_t*>(&key)), 0);
  EXPECT_EQ(map->Lookup(reinterpret_cast<uint8_t*>(&key)), 0u);
  EXPECT_EQ(map->Delete(reinterpret_cast<uint8_t*>(&key)), -1);
}

TEST(Maps, HashMapCapacityBound) {
  MapRegistry registry;
  auto desc = registry.CreateHash(8, 8, 4);
  ASSERT_TRUE(desc.ok());
  Map* map = registry.Find(desc->id);
  uint8_t value[8] = {0};
  for (uint64_t k = 0; k < 4; k++) {
    EXPECT_EQ(map->Update(reinterpret_cast<uint8_t*>(&k), value), 0);
  }
  uint64_t k = 99;
  EXPECT_EQ(map->Update(reinterpret_cast<uint8_t*>(&k), value), -1);
  // Overwriting an existing key still works at capacity.
  k = 2;
  EXPECT_EQ(map->Update(reinterpret_cast<uint8_t*>(&k), value), 0);
}

TEST(Maps, RandomizedVsReferenceModel) {
  MapRegistry registry;
  auto desc = registry.CreateHash(8, 8, 256);
  ASSERT_TRUE(desc.ok());
  Map* map = registry.Find(desc->id);
  std::map<uint64_t, uint64_t> model;
  Rng rng(7);
  for (int i = 0; i < 20000; i++) {
    uint64_t key = rng.NextBounded(512);
    switch (rng.NextBounded(3)) {
      case 0: {
        uint64_t value = rng.Next();
        int rc = map->Update(reinterpret_cast<uint8_t*>(&key),
                             reinterpret_cast<uint8_t*>(&value));
        if (model.size() < 256 || model.count(key) != 0) {
          ASSERT_EQ(rc, 0);
          model[key] = value;
        } else {
          ASSERT_EQ(rc, -1);
        }
        break;
      }
      case 1: {
        uint64_t va = map->Lookup(reinterpret_cast<uint8_t*>(&key));
        if (model.count(key) != 0) {
          ASSERT_NE(va, 0u);
          uint64_t got;
          std::memcpy(&got, map->TranslateValue(va, 8), 8);
          ASSERT_EQ(got, model[key]);
        } else {
          ASSERT_EQ(va, 0u);
        }
        break;
      }
      case 2: {
        int rc = map->Delete(reinterpret_cast<uint8_t*>(&key));
        ASSERT_EQ(rc == 0, model.erase(key) == 1);
        break;
      }
    }
  }
}

TEST(Heap, UserAndKernelViewsShareMemory) {
  HeapSpec spec;
  spec.size = kHeapSize;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  const HeapLayout& layout = heap.value()->layout();
  MemFaultKind fk = MemFaultKind::kNone;
  uint8_t* kernel_view = heap.value()->TranslateKernel(layout.kernel_base + 64, 8, fk);
  ASSERT_NE(kernel_view, nullptr);
  uint8_t* user_view = heap.value()->TranslateUser(layout.user_base + 64, 8, fk);
  ASSERT_NE(user_view, nullptr);
  EXPECT_EQ(kernel_view, user_view);
  // Bases are size-aligned: one mask extracts the same offset in both views.
  EXPECT_EQ(layout.kernel_base & layout.mask(), 0u);
  EXPECT_EQ(layout.user_base & layout.mask(), 0u);
}

}  // namespace
}  // namespace kflex
