// Ring buffer maps: producer/consumer semantics, capacity + drop behaviour,
// verifier map-type checking, and an end-to-end event-log extension.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/maps.h"

namespace kflex {
namespace {

TEST(RingBuf, OutputAndDrainInOrder) {
  MapRegistry registry;
  auto desc = registry.CreateRingBuf(4096);
  ASSERT_TRUE(desc.ok());
  auto* ringbuf = dynamic_cast<RingBufMap*>(registry.Find(desc->id));
  ASSERT_NE(ringbuf, nullptr);

  for (uint64_t i = 0; i < 10; i++) {
    EXPECT_EQ(ringbuf->Output(reinterpret_cast<uint8_t*>(&i), 8), 0);
  }
  EXPECT_EQ(ringbuf->pending(), 10u);
  std::vector<uint64_t> seen;
  size_t drained = ringbuf->Drain([&seen](const uint8_t* data, uint32_t size) {
    ASSERT_EQ(size, 8u);
    uint64_t v;
    std::memcpy(&v, data, 8);
    seen.push_back(v);
  });
  EXPECT_EQ(drained, 10u);
  for (uint64_t i = 0; i < 10; i++) {
    EXPECT_EQ(seen[i], i);
  }
  EXPECT_EQ(ringbuf->pending(), 0u);
}

TEST(RingBuf, FullBufferDropsAndCounts) {
  MapRegistry registry;
  auto desc = registry.CreateRingBuf(64);  // fits exactly 4 x (8 hdr + 8 data)
  ASSERT_TRUE(desc.ok());
  auto* ringbuf = dynamic_cast<RingBufMap*>(registry.Find(desc->id));
  uint64_t v = 1;
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(ringbuf->Output(reinterpret_cast<uint8_t*>(&v), 8), 0) << i;
  }
  EXPECT_EQ(ringbuf->Output(reinterpret_cast<uint8_t*>(&v), 8), -1);
  EXPECT_EQ(ringbuf->dropped(), 1u);
  // Draining frees the space again.
  ringbuf->Drain([](const uint8_t*, uint32_t) {});
  EXPECT_EQ(ringbuf->Output(reinterpret_cast<uint8_t*>(&v), 8), 0);
}

TEST(RingBuf, NoKvSurface) {
  MapRegistry registry;
  auto desc = registry.CreateRingBuf(4096);
  Map* map = registry.Find(desc->id);
  uint8_t key[8] = {0};
  EXPECT_EQ(map->Lookup(key), 0u);
  EXPECT_EQ(map->Update(key, key), -1);
  EXPECT_EQ(map->Delete(key), -1);
  EXPECT_EQ(map->TranslateValue(map->value_area_va(), 8), nullptr);
}

Program EventLogProgram(uint32_t map_id) {
  // Logs {op, key-word} for every request, then passes the packet on.
  Assembler a;
  a.Ldx(BPF_B, R2, R1, kOffOp);
  a.Stx(BPF_DW, R10, -16, R2);
  a.Ldx(BPF_DW, R3, R1, kOffKey);
  a.Stx(BPF_DW, R10, -8, R3);
  a.LoadMapPtr(R1, map_id);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 16);
  a.MovImm(R4, 0);
  a.Call(kHelperRingbufOutput);
  a.MovImm(R0, static_cast<int32_t>(kXdpPass));
  a.Exit();
  return a.Finish("eventlog", Hook::kXdp, ExtensionMode::kEbpf, 0).value();
}

TEST(RingBuf, EndToEndEventLogExtension) {
  MockKernel kernel;
  auto desc = kernel.runtime().maps().CreateRingBuf(1 << 16);
  ASSERT_TRUE(desc.ok());
  auto id = kernel.runtime().Load(EventLogProgram(desc->id), LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  for (uint64_t i = 0; i < 20; i++) {
    KvPacket pkt;
    pkt.SetOp(i % 2 == 0 ? KvOp::kGet : KvOp::kSet);
    pkt.SetKeyU64(1000 + i);
    InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
    ASSERT_FALSE(r.cancelled);
  }

  auto* ringbuf = dynamic_cast<RingBufMap*>(kernel.runtime().maps().Find(desc->id));
  ASSERT_NE(ringbuf, nullptr);
  uint64_t n = 0;
  ringbuf->Drain([&n](const uint8_t* data, uint32_t size) {
    ASSERT_EQ(size, 16u);
    uint64_t op;
    uint64_t key;
    std::memcpy(&op, data, 8);
    std::memcpy(&key, data + 8, 8);
    EXPECT_EQ(op, n % 2 == 0 ? 0u : 1u);
    EXPECT_EQ(key, 1000 + n);
    n++;
  });
  EXPECT_EQ(n, 20u);
}

TEST(RingBuf, VerifierRejectsWrongMapKinds) {
  // ringbuf_output on a hash map: rejected statically.
  {
    Assembler a;
    a.StImm(BPF_DW, R10, -8, 1);
    a.LoadMapPtr(R1, 1);
    a.Mov(R2, R10);
    a.AddImm(R2, -8);
    a.MovImm(R3, 8);
    a.MovImm(R4, 0);
    a.Call(kHelperRingbufOutput);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("bad", Hook::kXdp, ExtensionMode::kEbpf, 0);
    VerifyOptions opts;
    opts.maps.push_back(MapDescriptor{1, 8, 8, 16, MapType::kHash});
    auto r = Verify(*p, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("incompatible map type"), std::string::npos);
  }
  // map_lookup on a ring buffer: rejected statically.
  {
    Assembler a;
    a.StImm(BPF_DW, R10, -8, 1);
    a.LoadMapPtr(R1, 1);
    a.Mov(R2, R10);
    a.AddImm(R2, -8);
    a.Call(kHelperMapLookupElem);
    a.MovImm(R0, 0);
    a.Exit();
    auto p = a.Finish("bad2", Hook::kXdp, ExtensionMode::kEbpf, 0);
    VerifyOptions opts;
    opts.maps.push_back(MapDescriptor{1, 0, 0, 4096, MapType::kRingBuf});
    EXPECT_FALSE(Verify(*p, opts).ok());
  }
}

TEST(RingBuf, WorksFromKflexModeToo) {
  MockKernel kernel;
  auto desc = kernel.runtime().maps().CreateRingBuf(1 << 12);
  ASSERT_TRUE(desc.ok());
  Assembler a;
  // Log the current heap counter value, then bump it.
  a.LoadHeapAddr(R2, 64);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.Stx(BPF_DW, R10, -8, R3);
  a.AddImm(R3, 1);
  a.Stx(BPF_DW, R2, 0, R3);
  a.LoadMapPtr(R1, desc->id);
  a.Mov(R2, R10);
  a.AddImm(R2, -8);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.Call(kHelperRingbufOutput);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("kflexlog", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  ASSERT_TRUE(p.ok());
  auto id = kernel.runtime().Load(*p, LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  uint8_t ctx[64] = {0};
  for (int i = 0; i < 5; i++) {
    ASSERT_FALSE(kernel.runtime().Invoke(*id, 0, ctx, sizeof(ctx)).cancelled);
  }
  auto* ringbuf = dynamic_cast<RingBufMap*>(kernel.runtime().maps().Find(desc->id));
  uint64_t expect = 0;
  ringbuf->Drain([&expect](const uint8_t* data, uint32_t size) {
    uint64_t v;
    std::memcpy(&v, data, 8);
    EXPECT_EQ(v, expect++);
  });
  EXPECT_EQ(expect, 5u);
}

}  // namespace
}  // namespace kflex
