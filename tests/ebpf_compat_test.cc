// Backward-compatibility regression suite (§4: "Our code passes all the
// tests in the eBPF test suite, ensuring backward compatibility and no
// regressions for existing extensions").
//
// Strict eBPF mode must keep enforcing the classic rules — bounded loops,
// no extension heap, single lock, no pointer leaks — and classic eBPF
// programs must verify and run unchanged under the KFlex runtime.
#include <gtest/gtest.h>

#include <cstring>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/kie/kie.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

Program Strict(Assembler& a, Hook hook = Hook::kXdp) {
  auto p = a.Finish("compat", hook, ExtensionMode::kEbpf, /*heap=*/0);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

// ---- Programs that must be ACCEPTED in strict mode ----

TEST(EbpfCompat, MinimalReturn) {
  Assembler a;
  a.MovImm(R0, 2);
  a.Exit();
  EXPECT_TRUE(Verify(Strict(a), {}).ok());
}

TEST(EbpfCompat, CtxParsing) {
  Assembler a;
  a.Ldx(BPF_H, R2, R1, 0);
  a.Ldx(BPF_B, R3, R1, 3);
  a.Add(R2, R3);
  a.Mov(R0, R2);
  a.Exit();
  EXPECT_TRUE(Verify(Strict(a), {}).ok());
}

TEST(EbpfCompat, BoundedByteLoop) {
  // The classic per-byte parser: bounded by a constant.
  Assembler a;
  a.MovImm(R2, 0);   // i
  a.MovImm(R0, 0);   // checksum
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 32);
  a.Mov(R3, R1);
  a.Add(R3, R2);
  a.Ldx(BPF_B, R4, R3, 24);
  a.Add(R0, R4);
  a.AddImm(R2, 1);
  a.LoopEnd(loop);
  a.Exit();
  auto r = Verify(Strict(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancellation_back_edges.empty()) << "bounded loop must not be instrumented";
}

TEST(EbpfCompat, MapLookupNullCheckedAccess) {
  Assembler a;
  a.LoadMapPtr(R1, 1);
  a.StImm(BPF_W, R10, -4, 5);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  auto hit = a.IfImm(BPF_JNE, R0, 0);
  a.Ldx(BPF_DW, R0, R0, 0);
  a.Else(hit);
  a.MovImm(R0, 0);
  a.EndIf(hit);
  a.Exit();
  VerifyOptions opts;
  opts.maps.push_back(MapDescriptor{1, 4, 16, 64});
  EXPECT_TRUE(Verify(Strict(a), opts).ok());
}

TEST(EbpfCompat, MapUpdateDelete) {
  Assembler a;
  a.StImm(BPF_W, R10, -4, 5);
  a.StImm(BPF_DW, R10, -16, 99);
  a.StImm(BPF_DW, R10, -24, 0);
  a.LoadMapPtr(R1, 1);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Mov(R3, R10);
  a.AddImm(R3, -24);
  a.MovImm(R4, 0);
  a.Call(kHelperMapUpdateElem);
  a.LoadMapPtr(R1, 1);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapDeleteElem);
  a.MovImm(R0, 0);
  a.Exit();
  VerifyOptions opts;
  opts.maps.push_back(MapDescriptor{1, 4, 16, 64});
  EXPECT_TRUE(Verify(Strict(a), opts).ok());
}

TEST(EbpfCompat, SocketAcquireReleaseOverBranches) {
  Assembler a;
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto hit = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R1, R0);
  a.Call(kHelperSkRelease);
  a.EndIf(hit);
  a.MovImm(R0, 2);
  a.Exit();
  EXPECT_TRUE(Verify(Strict(a), {}).ok());
}

TEST(EbpfCompat, TimeAndRandomHelpers) {
  Assembler a;
  a.Call(kHelperKtimeGetNs);
  a.Mov(R6, R0);
  a.Call(kHelperGetPrandomU32);
  a.Add(R0, R6);
  a.Call(kHelperGetSmpProcessorId);
  a.Exit();
  EXPECT_TRUE(Verify(Strict(a), {}).ok());
}

TEST(EbpfCompat, StackScratchUsage) {
  Assembler a;
  for (int off = 8; off <= 64; off += 8) {
    a.StImm(BPF_DW, R10, static_cast<int16_t>(-off), off);
  }
  a.Ldx(BPF_DW, R0, R10, -64);
  a.Exit();
  EXPECT_TRUE(Verify(Strict(a), {}).ok());
}

// ---- Programs that must be REJECTED in strict mode (and the same program
// accepted in KFlex mode where the paper lifts the restriction) ----

TEST(EbpfCompat, UnboundedLoopRejectedButKflexAccepts) {
  auto build = [](ExtensionMode mode) {
    Assembler a;
    a.Ldx(BPF_DW, R2, R1, 0);
    a.MovImm(R0, 0);
    auto loop = a.LoopBegin();
    a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
    a.SubImm(R2, 3);
    a.LoopEnd(loop);
    a.Exit();
    return a.Finish("loop", Hook::kXdp, mode, mode == ExtensionMode::kKflex ? 1 << 20 : 0)
        .value();
  };
  EXPECT_FALSE(Verify(build(ExtensionMode::kEbpf), {}).ok());
  EXPECT_TRUE(Verify(build(ExtensionMode::kKflex), {}).ok());
}

TEST(EbpfCompat, PointerLeakRejectedButKflexAccepts) {
  auto build = [](ExtensionMode mode) {
    Assembler a;
    a.Mov(R2, R10);
    a.MovImm(R3, 1);
    auto skip = a.IfReg(BPF_JGT, R2, R3);  // leaks pointer value via compare
    a.EndIf(skip);
    a.MovImm(R0, 0);
    a.Exit();
    return a.Finish("leak", Hook::kXdp, mode, mode == ExtensionMode::kKflex ? 1 << 20 : 0)
        .value();
  };
  EXPECT_FALSE(Verify(build(ExtensionMode::kEbpf), {}).ok());
  EXPECT_TRUE(Verify(build(ExtensionMode::kKflex), {}).ok());
}

TEST(EbpfCompat, PointerArithmeticScalarizationRejected) {
  Assembler a;
  a.Mov(R2, R10);
  a.AluImm(BPF_AND, R2, 0xFF);  // masking a pointer
  a.MovImm(R0, 0);
  a.Exit();
  EXPECT_FALSE(Verify(Strict(a), {}).ok());
}

TEST(EbpfCompat, KflexHelpersUnavailable) {
  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  a.MovImm(R0, 0);
  a.Exit();
  EXPECT_FALSE(Verify(Strict(a), {}).ok());
}

// ---- Execution: classic eBPF programs run unchanged under KFlex ----

TEST(EbpfCompat, ClassicProgramRunsUnderKflexRuntime) {
  MockKernel kernel;
  auto desc = kernel.runtime().maps().CreateHash(4, 8, 32);
  ASSERT_TRUE(desc.ok());
  Assembler a;
  // counter[key]++ via map helpers: the canonical eBPF tracing pattern.
  a.Ldx(BPF_W, R2, R1, 0);
  a.Stx(BPF_W, R10, -4, R2);
  a.LoadMapPtr(R1, desc->id);
  a.Mov(R2, R10);
  a.AddImm(R2, -4);
  a.Call(kHelperMapLookupElem);
  {
    auto hit = a.IfImm(BPF_JNE, R0, 0);
    a.MovImm(R2, 1);
    a.AtomicAdd(BPF_DW, R0, 0, R2);
    a.Else(hit);
    a.StImm(BPF_DW, R10, -16, 1);
    a.LoadMapPtr(R1, desc->id);
    a.Mov(R2, R10);
    a.AddImm(R2, -4);
    a.Mov(R3, R10);
    a.AddImm(R3, -16);
    a.MovImm(R4, 0);
    a.Call(kHelperMapUpdateElem);
    a.EndIf(hit);
  }
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("tracer", Hook::kTracepoint, ExtensionMode::kEbpf, 0);
  ASSERT_TRUE(p.ok());
  auto id = kernel.runtime().Load(*p, LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(kernel.Attach(*id).ok());

  uint8_t ctx[64] = {0};
  ctx[0] = 7;
  for (int i = 0; i < 5; i++) {
    InvokeResult r = kernel.Deliver(Hook::kTracepoint, 0, ctx, sizeof(ctx));
    ASSERT_FALSE(r.cancelled);
  }
  Map* map = kernel.runtime().maps().Find(desc->id);
  uint32_t key = 7;
  uint64_t va = map->Lookup(reinterpret_cast<uint8_t*>(&key));
  ASSERT_NE(va, 0u);
  uint64_t count;
  std::memcpy(&count, map->TranslateValue(va, 8), 8);
  EXPECT_EQ(count, 5u);
}

TEST(EbpfCompat, StrictProgramsGetZeroInstrumentation) {
  Assembler a;
  a.Ldx(BPF_W, R2, R1, 0);
  a.Mov(R0, R2);
  a.Exit();
  Program p = Strict(a);
  auto analysis = Verify(p, {});
  ASSERT_TRUE(analysis.ok());
  auto ip = Instrument(p, *analysis, HeapLayout{}, KieOptions{});
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->program.insns.size(), p.insns.size());
  EXPECT_EQ(ip->stats.guards_emitted, 0u);
  EXPECT_EQ(ip->stats.cancellation_points, 0u);
}

}  // namespace
}  // namespace kflex
