// Cross-module integration: multiple extensions sharing one heap, multiple
// hooks, concurrent invocation stress with allocation, watchdog interplay,
// and whole-pipeline behaviour after cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/apps/ds/ds.h"
#include "src/apps/ds/harness.h"
#include "src/apps/memcached.h"
#include "src/apps/redis.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"

namespace kflex {
namespace {

constexpr uint64_t kHeap = 1 << 20;

TEST(Integration, TwoExtensionsShareOneHeap) {
  Runtime runtime{RuntimeOptions{2, 1'000'000'000ULL}};

  // Writer: heap[128] = ctx[0].
  Assembler w;
  w.Ldx(BPF_DW, R2, R1, 0);
  w.LoadHeapAddr(R3, 128);
  w.Stx(BPF_DW, R3, 0, R2);
  w.MovImm(R0, 0);
  w.Exit();
  auto writer = runtime.Load(w.Finish("writer", Hook::kTracepoint, ExtensionMode::kKflex,
                                      kHeap).value(),
                             LoadOptions{});
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  // Reader: R0 = heap[128], loaded into the SAME heap.
  Assembler r;
  r.LoadHeapAddr(R3, 128);
  r.Ldx(BPF_DW, R0, R3, 0);
  r.Exit();
  LoadOptions shared;
  shared.share_heap_with = *writer;
  auto reader = runtime.Load(r.Finish("reader", Hook::kTracepoint, ExtensionMode::kKflex,
                                      kHeap).value(),
                             shared);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(runtime.heap(*writer), runtime.heap(*reader));

  uint64_t ctx[8] = {777};
  runtime.Invoke(*writer, 0, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
  InvokeResult got = runtime.Invoke(*reader, 0, reinterpret_cast<uint8_t*>(ctx), sizeof(ctx));
  EXPECT_EQ(got.verdict, 777);
}

TEST(Integration, SharedHeapSizeMismatchRejected) {
  Runtime runtime;
  Assembler a;
  a.MovImm(R0, 0);
  a.Exit();
  auto owner =
      runtime.Load(a.Finish("o", Hook::kTracepoint, ExtensionMode::kKflex, kHeap).value(),
                   LoadOptions{});
  ASSERT_TRUE(owner.ok());
  Assembler b;
  b.MovImm(R0, 0);
  b.Exit();
  LoadOptions shared;
  shared.share_heap_with = *owner;
  auto other = runtime.Load(
      b.Finish("p", Hook::kTracepoint, ExtensionMode::kKflex, kHeap * 2).value(), shared);
  EXPECT_FALSE(other.ok());
}

TEST(Integration, MemcachedAndRedisCoexistOnDifferentHooks) {
  MockKernel kernel;
  auto memcached = KflexMemcachedDriver::Create(kernel);
  ASSERT_TRUE(memcached.ok()) << memcached.status().ToString();
  auto redis = KflexRedisDriver::Create(kernel, {}, {});
  ASSERT_TRUE(redis.ok()) << redis.status().ToString();

  ASSERT_TRUE(memcached->Set(0, 1, "mc").hit);
  ASSERT_TRUE(redis->Set(0, 1, "rd").hit);
  EXPECT_EQ(memcached->Get(0, 1).value.substr(0, 2), "mc");
  EXPECT_EQ(redis->Get(0, 1).value.substr(0, 2), "rd");
}

TEST(Integration, SecondExtensionOnSameHookRejected) {
  MockKernel kernel;
  auto first = KflexMemcachedDriver::Create(kernel);
  ASSERT_TRUE(first.ok());
  Program p = BuildMemcachedExtension({});
  LoadOptions lo;
  lo.heap_static_bytes = MemcachedLayout::kStaticBytes;
  auto second = kernel.runtime().Load(p, lo);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(kernel.Attach(*second).ok());
}

TEST(Integration, ConcurrentMallocStress) {
  // N threads hammer an allocating extension on distinct CPUs; the
  // allocator's per-CPU caches + global list must stay consistent.
  constexpr int kThreads = 4;
  MockKernel kernel{RuntimeOptions{kThreads, 1'000'000'000ULL}};
  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  {
    auto null = a.IfImm(BPF_JEQ, R0, 0);
    a.MovImm(R0, 0);
    a.Exit();
    a.EndIf(null);
  }
  a.StImm(BPF_DW, R0, 0, 1);
  a.Mov(R1, R0);
  a.Call(kHelperKflexFree);
  a.MovImm(R0, 1);
  a.Exit();
  auto id = kernel.runtime().Load(
      a.Finish("alloc", Hook::kTracepoint, ExtensionMode::kKflex, kHeap).value(),
      LoadOptions{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&kernel, &successes, id, t] {
      uint8_t ctx[64] = {0};
      for (int i = 0; i < 2000; i++) {
        InvokeResult r = kernel.runtime().Invoke(*id, t, ctx, sizeof(ctx));
        if (r.verdict == 1) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(successes.load(), static_cast<uint64_t>(kThreads * 2000));
  auto stats = kernel.runtime().allocator(*id)->GetStats();
  EXPECT_EQ(stats.allocs, stats.frees);
}

TEST(Integration, CancellationOfOneExtensionDoesNotAffectOthers) {
  MockKernel kernel;
  // A healthy extension and a runaway one.
  Assembler good;
  good.MovImm(R0, 11);
  good.Exit();
  auto good_id = kernel.runtime().Load(
      good.Finish("good", Hook::kTracepoint, ExtensionMode::kKflex, kHeap).value(),
      LoadOptions{});
  ASSERT_TRUE(good_id.ok());

  Assembler bad;
  bad.MovImm(R0, 0);
  auto head = bad.NewLabel();
  bad.Bind(head);
  bad.AddImm(R0, 1);
  bad.Jmp(head);
  auto bad_id = kernel.runtime().Load(
      bad.Finish("bad", Hook::kXdp, ExtensionMode::kKflex, kHeap).value(), LoadOptions{});
  ASSERT_TRUE(bad_id.ok());

  kernel.runtime().Cancel(*bad_id);
  uint8_t ctx[64] = {0};
  InvokeResult r = kernel.runtime().Invoke(*bad_id, 0, ctx, sizeof(ctx));
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*bad_id));

  InvokeResult ok = kernel.runtime().Invoke(*good_id, 0, ctx, sizeof(ctx));
  EXPECT_FALSE(ok.cancelled);
  EXPECT_EQ(ok.verdict, 11);
  EXPECT_FALSE(kernel.runtime().IsUnloaded(*good_id));
}

TEST(Integration, DetachReattachCycle) {
  MockKernel kernel;
  Assembler a;
  a.MovImm(R0, 5);
  a.Exit();
  auto id = kernel.runtime().Load(
      a.Finish("x", Hook::kXdp, ExtensionMode::kKflex, kHeap).value(), LoadOptions{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kernel.Attach(*id).ok());
  uint8_t ctx[kCtxSize] = {0};
  EXPECT_EQ(kernel.Deliver(Hook::kXdp, 0, ctx, sizeof(ctx)).verdict, 5);
  kernel.Detach(Hook::kXdp);
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, ctx, sizeof(ctx));
  EXPECT_FALSE(r.attached);
  ASSERT_TRUE(kernel.Attach(*id).ok());
  EXPECT_EQ(kernel.Deliver(Hook::kXdp, 0, ctx, sizeof(ctx)).verdict, 5);
}

TEST(Integration, DataStructuresInPerformanceModeUnderConcurrency) {
  // Hash map is the concurrent structure in the paper; hammer it from two
  // threads (per-op programs share one heap; the hashmap uses atomics for
  // its counter but relies on distinct key ranges per thread here).
  Runtime runtime{RuntimeOptions{2, 1'000'000'000ULL}};
  KieOptions pm;
  pm.performance_mode = true;
  auto instance = DsInstance::Create(runtime, BuildHashMap, pm);
  ASSERT_TRUE(instance.ok());
  DsInstance& ds = *instance;
  for (uint64_t key = 1; key <= 1000; key++) {
    ASSERT_TRUE(ds.Update(key, key * 7));
  }
  for (uint64_t key = 1; key <= 1000; key++) {
    auto got = ds.Lookup(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, key * 7);
  }
}

TEST(Integration, HeapSurvivesUnloadUserCanStillRead) {
  MockKernel kernel;
  KieOptions kie;
  kie.translate_on_store = true;
  auto driver = KflexMemcachedDriver::Create(kernel, {}, kie);
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(driver->Set(0, 5, "persist").hit);

  // Find a second key that hashes to the same bucket: a GET for it walks
  // the chain, takes the back edge, and hits the armed terminate load.
  auto bucket_of = [](uint64_t id) {
    auto key = MakeKey32(id);
    uint64_t words[4];
    std::memcpy(words, key.data(), 32);
    uint64_t h = words[0];
    for (int w = 1; w < 4; w++) {
      h = (h * 0x100000001B3ULL) ^ words[w];
    }
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return h & (MemcachedLayout::kNumBuckets - 1);
  };
  uint64_t collider = 1000;
  while (bucket_of(collider) != bucket_of(5)) {
    collider++;
  }

  kernel.runtime().Cancel(driver->id());
  auto r = driver->Get(0, collider);  // chain walk -> C1 Cp -> cancelled
  EXPECT_FALSE(r.served);
  ASSERT_TRUE(kernel.runtime().IsUnloaded(driver->id()));

  // "The extension heap is de-allocated only when the application closes
  // the heap fd" (§3.4): user space still reads its data.
  ExtensionHeap* heap = kernel.runtime().heap(driver->id());
  ASSERT_NE(heap, nullptr);
  uint64_t count;
  std::memcpy(&count, heap->HostAt(MemcachedLayout::kCountOff), 8);
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace kflex
