// Round-trip property test for the text assembly writer/parser pair.
//
// The property: for any program P the Assembler can produce,
//   ParseTextProgram(ProgramToTextAsm(P)) == P   (instruction-exact), and
//   ProgramToTextAsm(parse result) re-renders byte for byte.
// It is checked two ways: a handwritten program exercising every expressible
// instruction form, and a replay of the exact differential-fuzz corpus (same
// Rng seed and generator parameters as FuzzDifferential, 1100 programs) so
// the writer is tested against everything the fuzz pipeline can emit.

#include "src/ebpf/text_asm.h"

#include <gtest/gtest.h>

#include <string>

#include "src/base/rng.h"
#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/ebpf/insn.h"
#include "src/ebpf/program.h"
#include "tests/program_generator.h"

namespace kflex {
namespace {

// Renders, re-parses, and re-renders `p`, asserting instruction-exact
// equality and writer fixpoint. Returns the rendered text for inspection.
std::string ExpectRoundTrips(const Program& p) {
  auto text = ProgramToTextAsm(p);
  EXPECT_TRUE(text.ok()) << text.status().message();
  if (!text.ok()) {
    return "";
  }
  auto reparsed = ParseTextProgram(*text);
  EXPECT_TRUE(reparsed.ok()) << reparsed.status().message() << "\n--- text ---\n" << *text;
  if (!reparsed.ok()) {
    return *text;
  }
  const Program& p2 = *reparsed;
  EXPECT_EQ(p.name, p2.name);
  EXPECT_EQ(p.hook, p2.hook);
  EXPECT_EQ(static_cast<int>(p.mode), static_cast<int>(p2.mode));
  EXPECT_EQ(p.heap_size, p2.heap_size);
  EXPECT_EQ(p.insns.size(), p2.insns.size()) << "--- text ---\n" << *text;
  if (p.insns.size() != p2.insns.size()) {
    return *text;
  }
  for (size_t i = 0; i < p.insns.size(); i++) {
    EXPECT_EQ(p.insns[i], p2.insns[i])
        << "insn " << i << ": " << InsnToString(p.insns[i]) << " vs "
        << InsnToString(p2.insns[i]) << "\n--- text ---\n"
        << *text;
  }
  auto text2 = ProgramToTextAsm(p2);
  EXPECT_TRUE(text2.ok()) << text2.status().message();
  if (text2.ok()) {
    EXPECT_EQ(*text, *text2) << "writer is not a fixpoint of the parser";
  }
  return *text;
}

// One handwritten program touching every instruction form the text grammar
// can express: all ALU64/ALU32 ops in both operand forms, negation in both
// widths, every ld_imm64 pseudo, every memory size for loads/stores/atomics,
// negative offsets, every comparison in JMP and JMP32, calls, and labels.
TEST(AsmRoundTrip, FullInstructionSurface) {
  Assembler a;
  constexpr AluOp kAluOps[] = {BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV, BPF_MOD, BPF_AND,
                               BPF_OR,  BPF_XOR, BPF_LSH, BPF_RSH, BPF_ARSH};
  for (AluOp op : kAluOps) {
    a.AluImm(op, R2, 7);
    a.AluReg(op, R3, R4);
    a.AluImm(op, R2, 7, /*is64=*/false);
    a.AluReg(op, R3, R4, /*is64=*/false);
  }
  a.MovImm(R5, -123);
  a.Mov(R5, R6);
  a.AluImm(BPF_MOV, R5, 99, /*is64=*/false);
  a.AluReg(BPF_MOV, R5, R6, /*is64=*/false);
  a.Neg(R7);
  a.Neg(R7, /*is64=*/false);
  a.LoadImm64(R2, 0xDEADBEEFCAFEF00DULL);
  a.LoadImm64(R2, 5);  // small imm64 must stay an ld_imm64, not collapse to mov
  a.LoadHeapAddr(R9, 4096);
  a.LoadMapPtr(R8, 3);
  for (MemSize size : {BPF_B, BPF_H, BPF_W, BPF_DW}) {
    a.Ldx(size, R2, R9, 16);
    a.Stx(size, R9, -16, R2);
    a.StImm(size, R9, 0, 42);
  }
  a.AtomicAdd(BPF_DW, R9, 8, R3);
  a.AtomicAdd(BPF_W, R9, 8, R3);
  a.AtomicAdd(BPF_DW, R9, 8, R3, /*fetch=*/true);
  a.AtomicAdd(BPF_W, R9, 8, R3, /*fetch=*/true);
  a.AtomicXchg(BPF_DW, R9, 16, R4);
  a.AtomicXchg(BPF_W, R9, 16, R4);
  a.AtomicCmpXchg(BPF_DW, R9, 24, R5);
  a.AtomicCmpXchg(BPF_W, R9, 24, R5);
  constexpr JmpOp kCondOps[] = {BPF_JEQ, BPF_JNE, BPF_JGT, BPF_JGE,  BPF_JLT, BPF_JLE,
                                BPF_JSGT, BPF_JSGE, BPF_JSLT, BPF_JSLE, BPF_JSET};
  Assembler::Label out = a.NewLabel();
  for (JmpOp op : kCondOps) {
    a.JmpImm(op, R2, 11, out);
    a.JmpReg(op, R2, R3, out);
    a.JmpImm(op, R2, 11, out, /*is64=*/false);
    a.JmpReg(op, R2, R3, out, /*is64=*/false);
  }
  Assembler::Label back = a.NewLabel();
  a.Bind(back);
  a.Call(kHelperKtimeGetNs);
  a.JmpImm(BPF_JEQ, R0, 0, back);  // backward edge
  a.Jmp(out);
  a.Bind(out);
  a.MovImm(R0, 0);
  a.Exit();
  auto p = a.Finish("surface", Hook::kTracepoint, ExtensionMode::kKflex, 1 << 20);
  ASSERT_TRUE(p.ok()) << p.status().message();
  ExpectRoundTrips(*p);
}

// Programs with no heap and eBPF mode render a minimal header.
TEST(AsmRoundTrip, EbpfModeWithoutHeap) {
  Assembler a;
  a.MovImm(R0, 1);
  a.Exit();
  auto p = a.Finish("plain", Hook::kXdp, ExtensionMode::kEbpf, 0);
  ASSERT_TRUE(p.ok());
  std::string text = ExpectRoundTrips(*p);
  EXPECT_EQ(text.find(".heap"), std::string::npos);
}

// A jump to the end of the program needs a trailing label.
TEST(AsmRoundTrip, JumpToEndOfProgram) {
  Assembler a;
  Assembler::Label end = a.NewLabel();
  a.JmpImm(BPF_JEQ, R1, 0, end);
  a.MovImm(R0, 7);
  a.Bind(end);
  a.Exit();
  auto p = a.Finish("tail", Hook::kXdp, ExtensionMode::kEbpf, 0);
  ASSERT_TRUE(p.ok());
  ExpectRoundTrips(*p);
}

// Kie pseudo-instructions (and anything else outside the user ISA) must be
// rejected by the writer, not silently mangled.
TEST(AsmRoundTrip, KieInstrumentationIsNotExpressible) {
  Program p;
  p.name = "kie";
  p.insns = {KieSanitizeInsn(R2), ExitInsn()};
  auto text = ProgramToTextAsm(p);
  EXPECT_FALSE(text.ok());

  Program translate;
  translate.name = "kie2";
  translate.insns = {KieTranslateInsn(R3), ExitInsn()};
  EXPECT_FALSE(ProgramToTextAsm(translate).ok());

  Program fuel;
  fuel.name = "kie3";
  fuel.insns = {KieFuelCheckInsn(), ExitInsn()};
  EXPECT_FALSE(ProgramToTextAsm(fuel).ok());
}

// Replays the exact differential-fuzz corpus (same seed, same generator
// parameters as FuzzDifferential) through the writer/parser pair. Every
// program the fuzz pipeline can produce must round-trip instruction-exactly.
TEST(AsmRoundTrip, DifferentialFuzzCorpusRoundTrips) {
  Rng rng(0x0B7C0DEULL);
  constexpr int kPrograms = 1100;
  for (int n = 0; n < kPrograms; n++) {
    bool kflex = n % 4 != 3;  // mostly KFlex, some strict eBPF
    ProgramGenerator gen(rng, kflex, /*resources=*/false, /*helper_calls=*/true);
    Program p = gen.Generate();
    SCOPED_TRACE("program " + std::to_string(n));
    ExpectRoundTrips(p);
    if (::testing::Test::HasFailure()) {
      break;  // one broken program is enough to debug; don't spam 1100 diffs
    }
  }
}

// The new 32-bit and atomic grammar also has to survive a text-first trip:
// parse handwritten source, render, and re-parse.
TEST(AsmRoundTrip, TextFirstGrammarForms) {
  constexpr const char* kSource = R"(.name grammar
.hook xdp
.mode kflex
.heap 4096

w2 = 7
w3 = w2
w2 += 5
w3 *= w2
w2 = -w2
r4 = heap 64
r5 = lock_fetch_add *(u64*)(r4 + 0)
r6 = lock_xchg *(u32*)(r4 + 8)
r0 = 1
r7 = lock_cmpxchg *(u64*)(r4 + 16)
lock *(u64*)(r4 + 0) += r5
if w2 == 7 goto out
if w2 s< w3 goto out
r0 = 0
out:
exit
)";
  auto p = ParseTextProgram(kSource);
  ASSERT_TRUE(p.ok()) << p.status().message();
  // Spot-check the encodings the new grammar selects.
  const Program& prog = *p;
  EXPECT_EQ(prog.insns[0], AluImmInsn(BPF_MOV, R2, 7, /*is64=*/false));
  EXPECT_EQ(prog.insns[1], AluRegInsn(BPF_MOV, R3, R2, /*is64=*/false));
  EXPECT_EQ(prog.insns[2], AluImmInsn(BPF_ADD, R2, 5, /*is64=*/false));
  EXPECT_EQ(prog.insns[4], NegInsn(R2, /*is64=*/false));
  EXPECT_EQ(prog.insns[7],
            AtomicInsn(BPF_DW, R4, 0, R5, BPF_ATOMIC_ADD | BPF_ATOMIC_FETCH));
  EXPECT_EQ(prog.insns[8], AtomicInsn(BPF_W, R4, 8, R6, BPF_ATOMIC_XCHG));
  EXPECT_EQ(prog.insns[10], AtomicInsn(BPF_DW, R4, 16, R7, BPF_ATOMIC_CMPXCHG));
  EXPECT_EQ(prog.insns[11], AtomicInsn(BPF_DW, R4, 0, R5, BPF_ATOMIC_ADD));
  EXPECT_EQ(prog.insns[12].Class(), BPF_JMP32);
  ExpectRoundTrips(prog);
}

}  // namespace
}  // namespace kflex
