// Second verifier suite: branch refinement precision, 32-bit semantics,
// widening/termination behaviour, translate-on-store typing, region
// consistency, and rejection corner cases.
#include <gtest/gtest.h>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/verifier/verifier.h"

namespace kflex {
namespace {

constexpr uint64_t kHeap = 1 << 20;

Program Build(Assembler& a, ExtensionMode mode = ExtensionMode::kKflex,
              uint64_t heap = kHeap) {
  auto p = a.Finish("t2", Hook::kXdp, mode, heap);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

// ---- Branch refinement drives elision ----

TEST(VerifierRefine, JltBoundsIndexForElision) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  auto done = a.NewLabel();
  auto ok = a.NewLabel();
  a.JmpImm(BPF_JLT, R3, 1024, ok);  // only proceed when R3 < 1024
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(ok);
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R2, 4096);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);  // provably within heap: elided
  a.Jmp(done);
  a.Bind(done);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
  EXPECT_EQ(r->required_guards, 0u);
}

TEST(VerifierRefine, JgtOnWrongSideDoesNotElide) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  auto ok = a.NewLabel();
  a.JmpImm(BPF_JGT, R3, 1024, ok);  // proceed when R3 > 1024 (unbounded above)
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(ok);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->required_guards, 1u);
}

TEST(VerifierRefine, JeqPinsConstant) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  auto is_five = a.NewLabel();
  a.JmpImm(BPF_JEQ, R3, 5, is_five);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(is_five);
  a.LshImm(R3, 3);               // 40, known exactly
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);      // heap[104]: elided
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierRefine, RegRegComparisonRefinesBoth) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);   // unknown
  a.MovImm(R4, 512);
  auto ok = a.NewLabel();
  a.JmpReg(BPF_JLT, R3, R4, ok);  // R3 < 512 on the taken path
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(ok);
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);  // <= 64 + 511*8 + 8: elided
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierRefine, SignedComparisonRefinesSignedBounds) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  auto ok = a.NewLabel();
  auto fail = a.NewLabel();
  a.JmpImm(BPF_JSLT, R3, 0, fail);   // discard negative
  a.JmpImm(BPF_JSGT, R3, 100, fail);  // discard > 100
  a.Jmp(ok);
  a.Bind(fail);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(ok);
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);  // [64, 864]: elided
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierRefine, DeadBranchIsPruned) {
  Assembler a;
  a.MovImm(R2, 5);
  auto never = a.NewLabel();
  a.JmpImm(BPF_JEQ, R2, 6, never);  // statically false
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(never);
  // This path would be invalid (uninitialized R7) but is unreachable.
  a.Mov(R0, R7);
  a.Exit();
  auto r = Verify(Build(a), {});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// ---- Scalar op typing ----

TEST(VerifierAlu, ModBoundsResult) {
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.ModImm(R3, 100);  // [0, 99]
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierAlu, ByteLoadBoundsIndex) {
  Assembler a;
  a.Ldx(BPF_B, R3, R1, 0);  // [0, 255]
  a.LshImm(R3, 3);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);  // <= 64 + 2040 + 8: elided
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierAlu, MulOfBoundedValuesStaysBounded) {
  Assembler a;
  a.Ldx(BPF_B, R3, R1, 0);  // [0, 255]
  a.MulImm(R3, 16);         // [0, 4080]
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierAlu, SubtractionUnderflowTrackedViaSignedBounds) {
  // u8 - 10 wraps unsigned but stays in [-10, 245] signed: the resulting
  // heap offset is provably within [base - 10, base + 245], which the guard
  // zones absorb, so the access is still elidable (and still safe).
  Assembler a;
  a.Ldx(BPF_B, R3, R1, 0);
  a.SubImm(R3, 10);
  a.LoadHeapAddr(R2, 4096);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
}

TEST(VerifierAlu, UnknownDeltaNeedsGuard) {
  Assembler a;
  a.Ldx(BPF_B, R3, R1, 0);
  a.LshImm(R3, 40);  // enormous possible offset
  a.LoadHeapAddr(R2, 4096);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->required_guards, 1u);
}

TEST(VerifierAlu, PtrMinusPtrIsScalar) {
  Assembler a;
  a.LoadHeapAddr(R2, 128);
  a.LoadHeapAddr(R3, 64);
  a.Sub(R2, R3);  // heap-ptr difference: a scalar
  a.Mov(R0, R2);
  a.Exit();
  EXPECT_TRUE(Verify(Build(a), {}).ok());
}

TEST(VerifierAlu, ThirtyTwoBitTruncationLosesPointer) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.Mov32(R3, R2);           // truncated: scalar now
  a.Ldx(BPF_DW, R0, R3, 0);  // formation guard, not elided
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->formation_guards, 1u);
}

// ---- Loops & widening ----

TEST(VerifierLoops, NestedBoundedLoops) {
  Assembler a;
  a.MovImm(R0, 0);
  a.MovImm(R2, 4);
  auto outer = a.LoopBegin();
  a.LoopBreakIfImm(outer, BPF_JEQ, R2, 0);
  a.MovImm(R3, 4);
  {
    auto inner = a.LoopBegin();
    a.LoopBreakIfImm(inner, BPF_JEQ, R3, 0);
    a.AddImm(R0, 1);
    a.SubImm(R3, 1);
    a.LoopEnd(inner);
  }
  a.SubImm(R2, 1);
  a.LoopEnd(outer);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cancellation_back_edges.empty());
}

TEST(VerifierLoops, UnboundedInnerBoundedOuter) {
  Assembler a;
  a.Ldx(BPF_DW, R4, R1, 0);
  a.MovImm(R0, 0);
  a.MovImm(R2, 3);
  auto outer = a.LoopBegin();
  a.LoopBreakIfImm(outer, BPF_JEQ, R2, 0);
  a.Mov(R3, R4);
  {
    auto inner = a.LoopBegin();  // data-dependent: unbounded
    a.LoopBreakIfImm(inner, BPF_JEQ, R3, 0);
    a.SubImm(R3, 2);
    a.LoopEnd(inner);
  }
  a.SubImm(R2, 1);
  a.LoopEnd(outer);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->cancellation_back_edges.size(), 1u);
}

TEST(VerifierLoops, RefsAcquiredMonotonicallyRejected) {
  // Acquire a socket each iteration without releasing: violates the
  // paper's loop-convergence requirement for kernel resources (§3.1).
  Assembler a;
  a.Mov(R8, R1);  // ctx survives helper calls
  a.Ldx(BPF_DW, R6, R1, 0);
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R6, 0);
  a.Mov(R1, R8);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  {
    auto got = a.IfImm(BPF_JNE, R0, 0);
    a.Mov(R7, R0);  // keep the newest; older ones leak
    a.EndIf(got);
  }
  a.SubImm(R6, 1);
  a.LoopEnd(loop);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  EXPECT_FALSE(r.ok());
}

TEST(VerifierLoops, RefsReleasedPerIterationAccepted) {
  // The Listing-1 pattern: acquire and release within the iteration.
  Assembler a;
  a.Mov(R8, R1);  // ctx survives helper calls
  a.Ldx(BPF_DW, R6, R1, 0);
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R6, 0);
  a.Mov(R1, R8);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  {
    auto got = a.IfImm(BPF_JNE, R0, 0);
    a.Mov(R1, R0);
    a.Call(kHelperSkRelease);
    a.EndIf(got);
  }
  a.SubImm(R6, 1);
  a.LoopEnd(loop);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// ---- Translate-on-store typing ----

TEST(VerifierStores, HeapPointerStoreFlagged) {
  Assembler a;
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  a.MovImm(R0, 0);
  a.Exit();
  a.EndIf(null);
  a.LoadHeapAddr(R2, 64);
  a.Stx(BPF_DW, R2, 0, R0);  // stores a heap pointer
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool found = false;
  for (const MemAccessInfo& info : r->mem) {
    if (info.visited && info.stores_heap_ptr) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierStores, ScalarStoreNotFlagged) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.MovImm(R3, 77);
  a.Stx(BPF_DW, R2, 0, R3);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const MemAccessInfo& info : r->mem) {
    EXPECT_FALSE(info.stores_heap_ptr);
  }
}

TEST(VerifierStores, MixedStoreSuppressesTranslation) {
  Assembler a;
  a.Ldx(BPF_DW, R6, R1, 0);
  a.MovImm(R1, 64);
  a.Call(kHelperKflexMalloc);
  auto null = a.IfImm(BPF_JEQ, R0, 0);
  a.MovImm(R0, 0);
  a.Exit();
  a.EndIf(null);
  a.Mov(R3, R0);  // heap ptr
  {
    auto flag = a.IfImm(BPF_JEQ, R6, 0);
    a.MovImm(R3, 1234);  // scalar on the other path
    a.EndIf(flag);
  }
  a.LoadHeapAddr(R2, 64);
  a.Stx(BPF_DW, R2, 0, R3);  // sometimes ptr, sometimes scalar
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool any_mixed = false;
  for (const MemAccessInfo& info : r->mem) {
    if (info.stores_mixed) {
      any_mixed = true;
      EXPECT_FALSE(info.stores_heap_ptr);
    }
  }
  EXPECT_TRUE(any_mixed);
}

// ---- Misc rejections ----

TEST(VerifierReject, SocketMemoryAccess) {
  Assembler a;
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto got = a.IfImm(BPF_JNE, R0, 0);
  a.Ldx(BPF_DW, R2, R0, 0);  // direct socket memory access: opaque object
  a.Mov(R1, R0);
  a.Call(kHelperSkRelease);
  a.EndIf(got);
  a.MovImm(R0, 0);
  a.Exit();
  EXPECT_FALSE(Verify(Build(a), {}).ok());
}

TEST(VerifierReject, VariableStackOffset) {
  Assembler a;
  a.Ldx(BPF_B, R2, R1, 0);
  a.Mov(R3, R10);
  a.Add(R3, R2);  // stack pointer + runtime value
  a.MovImm(R0, 0);
  a.Exit();
  EXPECT_FALSE(Verify(Build(a), {}).ok());
}

TEST(VerifierReject, CmpxchgWithoutR0) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.MovImm(R3, 1);
  a.AtomicCmpXchg(BPF_DW, R2, 0, R3);  // R0 never initialized
  a.MovImm(R0, 0);
  a.Exit();
  EXPECT_FALSE(Verify(Build(a), {}).ok());
}

TEST(VerifierReject, MapHandleArithmetic) {
  Assembler a;
  a.LoadMapPtr(R2, 1);
  a.AddImm(R2, 8);  // arithmetic on a map handle
  a.MovImm(R0, 0);
  a.Exit();
  VerifyOptions opts;
  opts.maps.push_back(MapDescriptor{1, 4, 8, 8});
  EXPECT_FALSE(Verify(Build(a), {}).ok());
}

TEST(VerifierAccept, AtomicsOnHeapAndStack) {
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.MovImm(R3, 5);
  a.AtomicAdd(BPF_DW, R2, 0, R3, /*fetch=*/true);   // R3 = old
  a.StImm(BPF_DW, R10, -8, 0);
  a.MovImm(R4, 1);
  a.AtomicAdd(BPF_DW, R10, -8, R4);
  a.MovImm(R0, 7);
  a.AtomicCmpXchg(BPF_DW, R2, 0, R3);
  a.Mov(R0, R3);
  a.Exit();
  auto r = Verify(Build(a), {});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(VerifierAccept, SpilledSocketStillReleasable) {
  Assembler a;
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto got = a.IfImm(BPF_JNE, R0, 0);
  a.Stx(BPF_DW, R10, -32, R0);  // spill the socket pointer
  a.MovImm(R0, 0);
  a.Ldx(BPF_DW, R1, R10, -32);  // restore it
  a.Call(kHelperSkRelease);
  a.EndIf(got);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(VerifierAccept, ObjectTableUsesStackSlotForSpilledRef) {
  Assembler a;
  a.StImm(BPF_W, R10, -16, 1);
  a.StImm(BPF_W, R10, -12, 2);
  a.Mov(R2, R10);
  a.AddImm(R2, -16);
  a.MovImm(R3, 8);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.Call(kHelperSkLookupUdp);
  auto got = a.IfImm(BPF_JNE, R0, 0);
  a.Stx(BPF_DW, R10, -32, R0);
  a.MovImm(R0, 0);  // no register holds the ref now
  a.MovImm(R1, 0);
  a.MovImm(R2, 0);
  a.MovImm(R3, 0);
  a.MovImm(R4, 0);
  a.MovImm(R5, 0);
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 9);  // heap Cp while the ref lives only on the stack
  a.Ldx(BPF_DW, R1, R10, -32);
  a.Call(kHelperSkRelease);
  a.EndIf(got);
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool stack_entry = false;
  for (const auto& [pc, table] : r->object_tables) {
    for (const ObjectTableEntry& e : table) {
      if (e.stack_slot >= 0) {
        stack_entry = true;
      }
    }
  }
  EXPECT_TRUE(stack_entry);
}

TEST(VerifierRefine, Jmp32RefinesWhenOperandsFit32Bits) {
  // A u16 value shifted by 9 would span [0, 32 M) — way beyond the heap —
  // unless the 32-bit branch refinement pins it below 64 first.
  Assembler a;
  a.Ldx(BPF_H, R3, R1, 0);  // [0, 65535]: fits 32 bits, refinement applies
  auto ok = a.NewLabel();
  a.JmpImm(BPF_JLT, R3, 64, ok, /*is64=*/false);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(ok);
  a.LshImm(R3, 9);  // [0, 32256] with refinement
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->elided_guards, 1u);
  EXPECT_EQ(r->required_guards, 0u);
}

TEST(VerifierRefine, Jmp32ConservativeForWideValues) {
  // A full-width value under JMP32: low-32-bit comparison says nothing
  // about the 64-bit range, so the access must stay guarded.
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);  // unknown 64-bit
  auto ok = a.NewLabel();
  a.JmpImm(BPF_JLT, R3, 64, ok, /*is64=*/false);
  a.MovImm(R0, 0);
  a.Exit();
  a.Bind(ok);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.Ldx(BPF_DW, R0, R2, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->required_guards, 1u);
  EXPECT_EQ(r->elided_guards, 0u);
}

TEST(VerifierLoops, BoundedLoopBeforeUnboundedIsNotACancellationPoint) {
  // The concrete loop unrolls fully; its back edge stays on the path's
  // active-edge list when the later data-dependent loop forces convergence.
  // Natural-loop scoping must keep only the unbounded loop's edge and count
  // the bounded one as pruned.
  Assembler a;
  a.Ldx(BPF_DW, R4, R1, 0);
  a.MovImm(R0, 0);
  a.MovImm(R2, 4);
  auto bounded = a.LoopBegin();
  a.LoopBreakIfImm(bounded, BPF_JEQ, R2, 0);
  a.AddImm(R0, 1);
  a.SubImm(R2, 1);
  a.LoopEnd(bounded);
  auto unbounded = a.LoopBegin();  // data-dependent trip count
  a.LoopBreakIfImm(unbounded, BPF_JEQ, R4, 0);
  a.SubImm(R4, 2);
  a.LoopEnd(unbounded);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->cancellation_back_edges.size(), 1u);
  EXPECT_GE(r->pruned_back_edges, 1u);
}

TEST(VerifierStats, GuardAccountingPinsExactCounts) {
  // Regression pin for the Verify() self-consistency invariant:
  // heap_access_insns == elided_guards + required_guards + formation_guards.
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);   // ctx load: not a heap access
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 1);  // elided
  a.Ldx(BPF_DW, R4, R2, 8);   // elided; R4 becomes an untrusted scalar
  a.LoadHeapAddr(R5, 128);
  a.Add(R5, R3);              // unproven base
  a.StImm(BPF_DW, R5, 0, 2);  // required guard
  a.Ldx(BPF_DW, R0, R4, 0);   // formation guard
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->heap_access_insns, 4u);
  EXPECT_EQ(r->elided_guards, 2u);
  EXPECT_EQ(r->required_guards, 1u);
  EXPECT_EQ(r->formation_guards, 1u);
  EXPECT_EQ(r->heap_access_insns,
            r->elided_guards + r->required_guards + r->formation_guards);
}

TEST(VerifierStats, ExplorationCountersPopulated) {
  Assembler a;
  a.MovImm(R0, 0);
  a.Exit();
  auto r = Verify(Build(a), {});
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->explored_insns, 2u);
  EXPECT_GE(r->explored_states, 1u);
}

}  // namespace
}  // namespace kflex
