// User-space heap interface (§3.4): mapped views, fault behaviour, pointer
// normalization helpers.
#include "src/uapi/user_heap.h"

#include <gtest/gtest.h>

namespace kflex {
namespace {

TEST(UserHeapView, LoadStoreRoundTrip) {
  HeapSpec spec;
  spec.size = 1 << 20;
  spec.static_bytes = 256;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  UserHeapView view(heap.value().get());

  uint64_t addr = view.AddrOf(128);
  ASSERT_TRUE(view.Store<uint64_t>(addr, 0xFEEDFACE));
  uint64_t got = 0;
  ASSERT_TRUE(view.Load(addr, got));
  EXPECT_EQ(got, 0xFEEDFACEu);

  // The kernel view observes the same bytes.
  uint64_t kernel_word;
  std::memcpy(&kernel_word, heap.value()->HostAt(128), 8);
  EXPECT_EQ(kernel_word, 0xFEEDFACEu);
}

TEST(UserHeapView, UnpopulatedPageFaults) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  UserHeapView view(heap.value().get());
  uint64_t out;
  EXPECT_FALSE(view.Load(view.AddrOf(512 * 1024), out));
  heap.value()->PopulatePages(512 * 1024, 8);
  EXPECT_TRUE(view.Load(view.AddrOf(512 * 1024), out));
}

TEST(UserHeapView, OutOfRangeFaults) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  UserHeapView view(heap.value().get());
  uint64_t out;
  EXPECT_FALSE(view.Load(view.base() - 8, out));
  EXPECT_FALSE(view.Load(view.base() + view.size(), out));
  EXPECT_FALSE(view.Load<uint64_t>(0, out));
}

TEST(UserHeapView, OffsetOfNormalizesBothAddressSpaces) {
  HeapSpec spec;
  spec.size = 1 << 20;
  auto heap = ExtensionHeap::Create(spec);
  ASSERT_TRUE(heap.ok());
  UserHeapView view(heap.value().get());
  const HeapLayout& layout = heap.value()->layout();
  EXPECT_EQ(view.OffsetOf(layout.user_base + 4242), 4242u);
  EXPECT_EQ(view.OffsetOf(layout.kernel_base + 4242), 4242u);
}

}  // namespace
}  // namespace kflex
