// Co-designed Memcached (§5.3): user-space GC over the shared heap must
// evict expired entries, keep live ones, and interoperate with the kernel
// fast path before and after collection.
#include "src/apps/codesign.h"

#include <gtest/gtest.h>

#include "src/base/rng.h"

namespace kflex {
namespace {

TEST(Codesign, GcEvictsExpiredEntries) {
  MockKernel kernel;
  auto app = CodesignMemcached::Create(kernel);
  ASSERT_TRUE(app.ok()) << app.status().ToString();

  // Epoch 10 entries expire at 12; epoch 20 entries at 22.
  for (uint64_t key = 0; key < 50; key++) {
    ASSERT_TRUE(app->Set(0, key, "old", /*expiry_epoch=*/12).hit);
  }
  for (uint64_t key = 100; key < 150; key++) {
    ASSERT_TRUE(app->Set(0, key, "new", /*expiry_epoch=*/22).hit);
  }
  EXPECT_EQ(app->Count(), 100u);

  auto gc = app->RunGc(/*current_epoch=*/15);
  EXPECT_EQ(gc.evicted, 50u);
  EXPECT_EQ(gc.scanned, 100u);
  EXPECT_EQ(app->Count(), 50u);

  // Expired entries are gone; fresh ones survive — and the kernel fast path
  // still works over the GC-mutated table.
  for (uint64_t key = 0; key < 50; key++) {
    EXPECT_FALSE(app->Get(0, key).hit) << key;
  }
  for (uint64_t key = 100; key < 150; key++) {
    auto got = app->Get(0, key);
    ASSERT_TRUE(got.hit) << key;
    EXPECT_EQ(got.value.substr(0, 3), "new");
  }
}

TEST(Codesign, FastPathReusesGcFreedMemory) {
  MockKernel kernel;
  auto app = CodesignMemcached::Create(kernel);
  ASSERT_TRUE(app.ok());
  for (uint64_t key = 0; key < 200; key++) {
    ASSERT_TRUE(app->Set(0, key, "x", 1).hit);
  }
  auto gc = app->RunGc(5);
  EXPECT_EQ(gc.evicted, 200u);
  // Freed nodes go back to the allocator; the extension allocates them
  // again.
  for (uint64_t key = 1000; key < 1200; key++) {
    ASSERT_TRUE(app->Set(0, key, "y", 10).hit);
  }
  for (uint64_t key = 1000; key < 1200; key++) {
    ASSERT_TRUE(app->Get(0, key).hit);
  }
}

TEST(Codesign, InterleavedGcAndMutations) {
  MockKernel kernel;
  auto app = CodesignMemcached::Create(kernel);
  ASSERT_TRUE(app.ok());
  Rng rng(17);
  uint64_t epoch = 10;
  std::map<uint64_t, std::pair<std::string, uint64_t>> oracle;  // key -> (value, expiry)
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 200; i++) {
      uint64_t key = rng.NextBounded(300);
      std::string value = "v" + std::to_string(rng.NextBounded(1000));
      uint64_t expiry = epoch + 1 + rng.NextBounded(5);
      ASSERT_TRUE(app->Set(0, key, value, expiry).hit);
      oracle[key] = {value, expiry};
    }
    epoch++;
    app->RunGc(epoch);
    std::erase_if(oracle, [&](const auto& kv) { return kv.second.second < epoch; });
    for (const auto& [key, entry] : oracle) {
      auto got = app->Get(0, key);
      ASSERT_TRUE(got.hit) << "round " << round << " key " << key;
      ASSERT_EQ(got.value.substr(0, entry.first.size()), entry.first);
    }
  }
  EXPECT_EQ(app->Count(), oracle.size());
}

TEST(Codesign, TimeSliceExtensionSemantics) {
  TimeSliceExtension slice;
  EXPECT_FALSE(slice.InCritical());
  slice.EnterCritical(1000);
  slice.EnterCritical(2000);  // nested
  EXPECT_EQ(slice.depth(), 2);
  // Inside the slice: no preemption.
  EXPECT_FALSE(slice.ShouldPreempt(1000 + TimeSliceExtension::kSliceNs));
  // Past the slice: preempt.
  EXPECT_TRUE(slice.ShouldPreempt(1000 + TimeSliceExtension::kSliceNs + 1));
  slice.LeaveCritical();
  EXPECT_TRUE(slice.InCritical());
  slice.LeaveCritical();
  EXPECT_FALSE(slice.InCritical());
  // Not in a critical section: never preempt.
  EXPECT_FALSE(slice.ShouldPreempt(1 << 30));
}

}  // namespace
}  // namespace kflex
