// Native x86-64 JIT backend: bit-for-bit parity with the interpreter over
// ALU/memory/branch programs, fault and cancellation behaviour (guard zone,
// unpopulated page, C1 terminate loads, clock-sampled fuel), atomics, forced
// fallback, and the engine_info load report.
//
// Every parity test loads the same program into two runtimes — one
// interpreting, one JITed — and compares the full observable state:
// acceptance, verdict, outcome, fault pc/kind, instruction counts, helper
// traces, and heap contents.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "src/ebpf/assembler.h"
#include "src/ebpf/helper_ids.h"
#include "src/jit/codegen.h"
#include "src/jit/trampoline.h"
#include "src/kernel/kernel.h"
#include "src/kernel/packet.h"
#include "src/runtime/runtime.h"
#include "src/runtime/spinlock.h"

namespace kflex {
namespace {

constexpr uint64_t kHeapSize = 1 << 20;

Program MustBuild(Assembler& a, uint64_t heap = kHeapSize, Hook hook = Hook::kXdp) {
  auto p = a.Finish("t", hook, ExtensionMode::kKflex, heap);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

struct EngineRun {
  bool loaded = false;
  EngineInfo info;
  InvokeResult result;
  std::vector<std::pair<int32_t, uint64_t>> helper_trace;
  std::vector<uint8_t> heap;
};

EngineRun RunOn(const Program& program, ExecEngine engine, const uint8_t* ctx,
                uint32_t ctx_size, LoadOptions lo = {}, RuntimeOptions ro = {},
                bool cancel_before_invoke = false) {
  EngineRun out;
  ro.num_cpus = 1;
  Runtime rt(ro);
  lo.engine = engine;
  auto id = rt.Load(program, lo);
  out.loaded = id.ok();
  if (!out.loaded) {
    return out;
  }
  out.info = rt.engine_info(*id);
  if (cancel_before_invoke) {
    rt.Cancel(*id);
    // Cancel() unloads nothing by itself; re-arm attachment for the invoke.
    // (Invoke refuses only *unloaded* extensions, so nothing to do.)
  }
  std::vector<uint8_t> ctx_copy(ctx, ctx + ctx_size);
  out.result = rt.Invoke(*id, 0, ctx_copy.data(), ctx_size, &out.helper_trace);
  if (rt.heap(*id) != nullptr) {
    uint64_t n = rt.heap(*id)->size();
    out.heap.assign(rt.heap(*id)->HostAt(0), rt.heap(*id)->HostAt(0) + n);
  }
  return out;
}

// Loads + invokes on both engines and compares everything observable.
// Returns the JIT run for additional assertions.
EngineRun ExpectParity(const Program& program, const uint8_t* ctx, uint32_t ctx_size,
                       LoadOptions lo = {}, RuntimeOptions ro = {},
                       bool cancel_before_invoke = false) {
  EngineRun interp =
      RunOn(program, ExecEngine::kInterp, ctx, ctx_size, lo, ro, cancel_before_invoke);
  EngineRun jit =
      RunOn(program, ExecEngine::kJit, ctx, ctx_size, lo, ro, cancel_before_invoke);
  EXPECT_EQ(interp.loaded, jit.loaded);
  if (!interp.loaded || !jit.loaded) {
    return jit;
  }
  EXPECT_EQ(jit.info.used, ExecEngine::kJit)
      << "unexpected fallback: " << jit.info.fallback_reason;
  EXPECT_EQ(interp.result.attached, jit.result.attached);
  EXPECT_EQ(interp.result.cancelled, jit.result.cancelled);
  EXPECT_EQ(interp.result.verdict, jit.result.verdict);
  EXPECT_EQ(interp.result.outcome, jit.result.outcome)
      << VmOutcomeName(interp.result.outcome) << " vs "
      << VmOutcomeName(jit.result.outcome);
  EXPECT_EQ(interp.result.fault_pc, jit.result.fault_pc);
  EXPECT_EQ(interp.result.fault_kind, jit.result.fault_kind);
  EXPECT_EQ(interp.result.insns, jit.result.insns);
  EXPECT_EQ(interp.result.instr_insns, jit.result.instr_insns);
  EXPECT_EQ(interp.helper_trace, jit.helper_trace);
  EXPECT_EQ(interp.heap.size(), jit.heap.size());
  if (interp.heap.size() == jit.heap.size() && !interp.heap.empty()) {
    EXPECT_EQ(std::memcmp(interp.heap.data(), jit.heap.data(), interp.heap.size()), 0)
        << "heap contents diverged";
  }
  return jit;
}

#define SKIP_WITHOUT_JIT()                                     \
  do {                                                         \
    if (!JitHostSupported()) {                                 \
      GTEST_SKIP() << "JIT backend unsupported on this host";  \
    }                                                          \
  } while (0)

TEST(Jit, AluAndBranchParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);     // unknown scalar from ctx
  a.MovImm(R3, 13);
  a.Mov(R4, R2);
  a.Mul(R4, R3);
  a.AluImm(BPF_LSH, R4, 7);
  a.AluReg(BPF_ARSH, R4, R3);
  a.Xor(R4, R2);
  a.AluImm(BPF_OR, R4, 0x5a5a);
  a.Mov32(R5, R4);              // 32-bit mov zero-extends
  a.AluImm(BPF_RSH, R5, 3, /*is64=*/false);
  auto iff = a.IfImm(BPF_JSGT, R5, 1000);
  a.AddImm(R5, 7);
  a.Else(iff);
  a.SubImm(R5, 7);
  a.EndIf(iff);
  a.Mod(R5, R3);
  a.AluImm(BPF_DIV, R4, 10);
  a.Add(R5, R4);
  a.Mov(R0, R5);
  a.Exit();
  Program p = MustBuild(a);

  for (uint64_t seed : {0ull, 1ull, 0xdeadbeefull, 0xffffffffffffffffull,
                        0x8000000000000000ull, 1234567ull}) {
    KvPacket pkt;
    std::memcpy(pkt.data(), &seed, 8);
    ExpectParity(p, pkt.data(), pkt.size());
  }
}

TEST(Jit, DivisionByZeroParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);  // runtime zero the verifier cannot see
  a.MovImm(R3, 77);
  a.AluReg(BPF_DIV, R3, R2);      // 64-bit div by 0 -> 0
  a.MovImm(R4, -5);
  a.AluReg(BPF_MOD, R4, R2);      // 64-bit mod by 0 -> dividend
  a.MovImm(R5, -5);
  a.AluReg(BPF_MOD, R5, R2, /*is64=*/false);  // 32-bit mod 0 -> u32(dividend)
  a.Mov(R0, R3);
  a.Add(R0, R4);
  a.Add(R0, R5);
  a.Exit();
  Program p = MustBuild(a);
  KvPacket pkt;  // ctx zeroed
  ExpectParity(p, pkt.data(), pkt.size());
}

TEST(Jit, ThirtyTwoBitShiftByZeroParity) {
  SKIP_WITHOUT_JIT();
  // rhs shift count 0 must still zero-extend the 32-bit destination.
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);          // 0 at runtime
  a.LoadImm64(R3, 0xffffffff12345678ull);
  a.AluReg(BPF_LSH, R3, R2, /*is64=*/false);
  a.Mov(R0, R3);                     // must be 0x12345678, upper bits gone
  a.Exit();
  Program p = MustBuild(a);
  KvPacket pkt;
  EngineRun jit = ExpectParity(p, pkt.data(), pkt.size());
  EXPECT_EQ(jit.result.verdict, 0x12345678);
}

TEST(Jit, HeapAndStackMemoryParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 424242);
  a.StImm(BPF_W, R2, 8, -1);
  a.StImm(BPF_H, R2, 12, 0x7fff);
  a.StImm(BPF_B, R2, 14, 0x80);
  a.Ldx(BPF_DW, R3, R2, 0);
  a.Ldx(BPF_W, R4, R2, 8);     // zero-extends
  a.Ldx(BPF_H, R5, R2, 12);
  a.Ldx(BPF_B, R6, R2, 14);
  a.Stx(BPF_DW, R10, -8, R3);
  a.Stx(BPF_W, R10, -16, R4);
  a.Ldx(BPF_DW, R7, R10, -8);
  a.Ldx(BPF_W, R8, R10, -16);
  a.Mov(R0, R3);
  a.Add(R0, R4);
  a.Add(R0, R5);
  a.Add(R0, R6);
  a.Add(R0, R7);
  a.Add(R0, R8);
  a.Exit();
  Program p = MustBuild(a);
  KvPacket pkt;
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  ExpectParity(p, pkt.data(), pkt.size(), lo);
}

TEST(Jit, CtxLoadParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.Ldx(BPF_W, R2, R1, 4);
  a.Ldx(BPF_B, R3, R1, 1);
  a.Ldx(BPF_H, R4, R1, 2);
  a.Mov(R0, R2);
  a.Add(R0, R3);
  a.Add(R0, R4);
  a.Exit();
  Program p = MustBuild(a);
  KvPacket pkt;
  for (size_t i = 0; i < 16; i++) {
    pkt.data()[i] = static_cast<uint8_t>(0xa0 + i);
  }
  ExpectParity(p, pkt.data(), pkt.size());
}

TEST(Jit, GuardedScatterParity) {
  SKIP_WITHOUT_JIT();
  // The guarded store goes through MOV+SANITIZE: the masked address always
  // lands inside the heap regardless of the untrusted scalar.
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 7777);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  for (uint64_t delta : {uint64_t{0}, uint64_t{8}, kHeapSize * 3, kHeapSize * 7 + 8}) {
    KvPacket pkt;
    std::memcpy(pkt.data(), &delta, 8);
    ExpectParity(p, pkt.data(), pkt.size(), lo);
  }
}

TEST(Jit, UnpopulatedPageFaultParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  KvPacket pkt;
  uint64_t delta = kHeapSize / 2;  // masked address on an unpopulated page
  std::memcpy(pkt.data(), &delta, 8);
  EngineRun jit = ExpectParity(p, pkt.data(), pkt.size(), lo);
  EXPECT_TRUE(jit.result.cancelled);
  EXPECT_EQ(jit.result.fault_kind, MemFaultKind::kNotPresent);
}

TEST(Jit, GuardZoneFaultParity) {
  SKIP_WITHOUT_JIT();
  // KMod baseline (sfi off): the out-of-bounds store is not sanitized, so
  // the computed address walks off the end of the heap into the guard zone.
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.kie.sfi = false;
  lo.heap_static_bytes = 256;
  KvPacket pkt;
  uint64_t delta = kHeapSize;  // base+64+heap -> 64 bytes into the top guard zone
  std::memcpy(pkt.data(), &delta, 8);
  EngineRun jit = ExpectParity(p, pkt.data(), pkt.size(), lo);
  EXPECT_TRUE(jit.result.cancelled);
  EXPECT_EQ(jit.result.outcome, VmResult::Outcome::kFault);
  EXPECT_EQ(jit.result.fault_kind, MemFaultKind::kGuardZone);
}

TEST(Jit, AtomicsParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.LoadHeapAddr(R2, 64);
  a.StImm(BPF_DW, R2, 0, 100);
  a.MovImm(R3, 5);
  a.AtomicAdd(BPF_DW, R2, 0, R3);                 // mem = 105
  a.MovImm(R4, 7);
  a.AtomicAdd(BPF_DW, R2, 0, R4, /*fetch=*/true); // R4 = 105, mem = 112
  a.MovImm(R5, 999);
  a.AtomicXchg(BPF_DW, R2, 0, R5);                // R5 = 112, mem = 999
  a.MovImm(R0, 999);                              // expected
  a.MovImm(R6, 31337);
  a.AtomicCmpXchg(BPF_DW, R2, 0, R6);             // R0 = 999, mem = 31337
  a.StImm(BPF_W, R2, 16, 50);
  a.MovImm(R7, 3);
  a.AtomicAdd(BPF_W, R2, 16, R7, /*fetch=*/true); // R7 = 50 (32-bit)
  a.MovImm(R0, 12345);                            // expected mismatch
  a.MovImm(R8, 1);
  a.AtomicCmpXchg(BPF_W, R2, 16, R8);             // R0 = u32(53), mem keeps 53
  a.Add(R0, R4);
  a.Add(R0, R5);
  a.Add(R0, R7);
  a.Exit();
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.heap_static_bytes = 256;
  KvPacket pkt;
  ExpectParity(p, pkt.data(), pkt.size(), lo);
}

TEST(Jit, HelperCallParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.MovImm(R1, 96);
  a.Call(kHelperKflexMalloc);
  auto iff = a.IfImm(BPF_JNE, R0, 0);
  a.Mov(R6, R0);
  a.StImm(BPF_DW, R6, 0, 31337);
  a.Ldx(BPF_DW, R7, R6, 0);
  a.Mov(R0, R7);
  a.Else(iff);
  a.MovImm(R0, 0);
  a.EndIf(iff);
  a.Exit();
  Program p = MustBuild(a);
  KvPacket pkt;
  EngineRun jit = ExpectParity(p, pkt.data(), pkt.size());
  EXPECT_EQ(jit.result.verdict, 31337);
  EXPECT_FALSE(jit.helper_trace.empty());
}

TEST(Jit, UnknownHelperFaultParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.MovImm(R0, 0);
  a.Call(123456);  // not registered
  a.Exit();
  auto p = a.Finish("t", Hook::kXdp, ExtensionMode::kKflex, kHeapSize);
  if (!p.ok()) {
    GTEST_SKIP() << "verifier rejects unknown helpers: " << p.status().ToString();
  }
  KvPacket pkt;
  ExpectParity(*p, pkt.data(), pkt.size());
}

TEST(Jit, BoundedLoopParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.Ldx(BPF_DW, R2, R1, 0);
  a.MovImm(R0, 0);
  auto loop = a.LoopBegin();
  a.LoopBreakIfImm(loop, BPF_JEQ, R2, 0);
  a.AddImm(R0, 3);
  a.SubImm(R2, 1);
  a.LoopEnd(loop);
  a.Exit();
  Program p = MustBuild(a);
  for (uint64_t n : {0ull, 1ull, 17ull, 1000ull}) {
    KvPacket pkt;
    std::memcpy(pkt.data(), &n, 8);
    ExpectParity(p, pkt.data(), pkt.size());
  }
}

TEST(Jit, PreArmedCancellationParity) {
  SKIP_WITHOUT_JIT();
  // C1 terminate load: the runtime zeroes the terminate slot; the second
  // load of the pair dereferences VA 0 and faults. Both engines must fault
  // at the same instrumented pc with the same kind.
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  Program p = MustBuild(a);
  KvPacket pkt;
  EngineRun jit = ExpectParity(p, pkt.data(), pkt.size(), {}, {},
                               /*cancel_before_invoke=*/true);
  EXPECT_TRUE(jit.result.cancelled);
  EXPECT_LT(jit.result.insns, 64u);
}

TEST(Jit, ClockSampledFuelParity) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.kie.cancellation_mode = CancellationMode::kClockSampled;
  RuntimeOptions ro;
  ro.fuel_quantum_insns = 10'000;
  KvPacket pkt;
  EngineRun jit = ExpectParity(p, pkt.data(), pkt.size(), lo, ro);
  EXPECT_TRUE(jit.result.cancelled);
  EXPECT_EQ(jit.result.fault_kind, MemFaultKind::kTerminate);
  EXPECT_GT(jit.result.insns, 9'000u);
  EXPECT_LT(jit.result.insns, 12'000u);
}

TEST(Jit, WatchdogCancelsRunawayJitCode) {
  SKIP_WITHOUT_JIT();
  RuntimeOptions opts;
  opts.num_cpus = 2;
  opts.quantum_ns = 20'000'000;  // 20 ms
  MockKernel kernel{opts};
  Assembler a;
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.engine = ExecEngine::kJit;
  auto id = kernel.runtime().Load(p, lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_EQ(kernel.runtime().engine_info(*id).used, ExecEngine::kJit)
      << kernel.runtime().engine_info(*id).fallback_reason;
  ASSERT_TRUE(kernel.Attach(*id).ok());
  kernel.runtime().StartWatchdog();

  KvPacket pkt;
  auto start = std::chrono::steady_clock::now();
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  auto elapsed = std::chrono::steady_clock::now() - start;
  kernel.runtime().StopWatchdog();

  EXPECT_TRUE(r.cancelled);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 15);
  EXPECT_TRUE(kernel.runtime().IsUnloaded(*id));
}

TEST(Jit, ObjectTableUnwindReleasesLockFromJitFault) {
  SKIP_WITHOUT_JIT();
  MockKernel kernel;
  Assembler a;
  a.LoadHeapAddr(R1, 64);
  a.Call(kHelperKflexSpinLock);
  a.MovImm(R0, 0);
  auto head = a.NewLabel();
  a.Bind(head);
  a.AddImm(R0, 1);
  a.Jmp(head);
  Program p = MustBuild(a);
  LoadOptions lo;
  lo.engine = ExecEngine::kJit;
  auto id = kernel.runtime().Load(p, lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_EQ(kernel.runtime().engine_info(*id).used, ExecEngine::kJit)
      << kernel.runtime().engine_info(*id).fallback_reason;
  ASSERT_TRUE(kernel.Attach(*id).ok());

  kernel.runtime().Cancel(*id);
  KvPacket pkt;
  InvokeResult r = kernel.Deliver(Hook::kXdp, 0, pkt.data(), pkt.size());
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(SpinLockOps::IsHeld(kernel.runtime().heap(*id)->HostAt(64)))
      << "lock must be force-released when the JITed code faults";
  auto stats = kernel.runtime().GetStats(*id);
  EXPECT_EQ(stats.resources_released_on_cancel, 1u);
}

TEST(Jit, MapAccessParity) {
  SKIP_WITHOUT_JIT();
  // Array-map value access (lookup helper + direct value deref) exercises
  // the flat VA-window translation cache shared between the engines.
  auto run = [&](ExecEngine engine) {
    EngineRun out;
    Runtime rt;
    auto desc = rt.maps().CreateArray(4, 8, 16);
    EXPECT_TRUE(desc.ok());
    Assembler a;
    a.LoadMapPtr(R1, desc->id);
    a.StImm(BPF_W, R10, -4, 3);
    a.Mov(R2, R10);
    a.AddImm(R2, -4);
    a.Call(kHelperMapLookupElem);
    auto iff = a.IfImm(BPF_JNE, R0, 0);
    a.StImm(BPF_DW, R0, 0, 11);
    a.Ldx(BPF_DW, R0, R0, 0);
    a.EndIf(iff);
    a.Exit();
    auto p = a.Finish("m", Hook::kXdp, ExtensionMode::kEbpf, /*heap=*/0);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    LoadOptions lo;
    lo.engine = engine;
    auto id = rt.Load(*p, lo);
    out.loaded = id.ok();
    if (!out.loaded) {
      return out;
    }
    out.info = rt.engine_info(*id);
    KvPacket pkt;
    out.result = rt.Invoke(*id, 0, pkt.data(), pkt.size(), &out.helper_trace);
    return out;
  };
  EngineRun interp = run(ExecEngine::kInterp);
  EngineRun jit = run(ExecEngine::kJit);
  ASSERT_TRUE(interp.loaded);
  ASSERT_TRUE(jit.loaded);
  EXPECT_EQ(jit.info.used, ExecEngine::kJit) << jit.info.fallback_reason;
  EXPECT_EQ(interp.result.verdict, jit.result.verdict);
  EXPECT_EQ(interp.result.outcome, jit.result.outcome);
  EXPECT_EQ(interp.result.insns, jit.result.insns);
  EXPECT_EQ(jit.result.verdict, 11);
}

TEST(Jit, ForcedFallbackRunsOnInterpreter) {
  // Works on every host: force_fallback must yield a working interpreter
  // extension and a populated fallback reason.
  Assembler a;
  a.MovImm(R0, 55);
  a.Exit();
  Program p = MustBuild(a);
  Runtime rt;
  LoadOptions lo;
  lo.engine = ExecEngine::kJit;
  lo.jit.force_fallback = true;
  auto id = rt.Load(p, lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EngineInfo info = rt.engine_info(*id);
  EXPECT_EQ(info.requested, ExecEngine::kJit);
  EXPECT_EQ(info.used, ExecEngine::kInterp);
  EXPECT_FALSE(info.fallback_reason.empty());
  KvPacket pkt;
  InvokeResult r = rt.Invoke(*id, 0, pkt.data(), pkt.size());
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.verdict, 55);
}

TEST(Jit, EngineInfoReportsCompileStats) {
  SKIP_WITHOUT_JIT();
  Assembler a;
  a.Ldx(BPF_DW, R3, R1, 0);
  a.LoadHeapAddr(R2, 64);
  a.Add(R2, R3);
  a.StImm(BPF_DW, R2, 0, 1);
  a.MovImm(R0, 0);
  a.Exit();
  Program p = MustBuild(a);
  Runtime rt;
  LoadOptions lo;
  lo.engine = ExecEngine::kJit;
  lo.heap_static_bytes = 256;
  auto id = rt.Load(p, lo);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EngineInfo info = rt.engine_info(*id);
  ASSERT_EQ(info.used, ExecEngine::kJit) << info.fallback_reason;
  EXPECT_GT(info.stats.code_bytes, 0u);
  EXPECT_GT(info.stats.insns_compiled, 0u);
  EXPECT_GT(info.stats.mem_sites, 0u);
  EXPECT_GT(info.stats.inline_fast_paths, 0u);
  EXPECT_GT(info.stats.compile_ns, 0u);
}

TEST(Jit, InterpreterEngineNeverCompiles) {
  Assembler a;
  a.MovImm(R0, 1);
  a.Exit();
  Program p = MustBuild(a);
  Runtime rt;
  auto id = rt.Load(p, LoadOptions{});
  ASSERT_TRUE(id.ok());
  EngineInfo info = rt.engine_info(*id);
  EXPECT_EQ(info.requested, ExecEngine::kInterp);
  EXPECT_EQ(info.used, ExecEngine::kInterp);
  EXPECT_EQ(info.stats.code_bytes, 0u);
}

TEST(Jit, EbpfCompatModeParity) {
  SKIP_WITHOUT_JIT();
  // Stack + ctx only, no heap: the classic eBPF subset.
  Assembler a;
  a.Ldx(BPF_W, R2, R1, 0);
  a.Stx(BPF_W, R10, -4, R2);
  a.Ldx(BPF_W, R0, R10, -4);
  a.AddImm(R0, 9);
  a.Exit();
  auto p = a.Finish("compat", Hook::kXdp, ExtensionMode::kEbpf, 0);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  KvPacket pkt;
  uint32_t v = 0x1000;
  std::memcpy(pkt.data(), &v, 4);
  ExpectParity(*p, pkt.data(), pkt.size());
}

}  // namespace
}  // namespace kflex
